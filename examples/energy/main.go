// Energy: explore the paper's optical energy model (Equation 1) directly —
// per-path switch energy for each switch class, how intra- vs inter-rack
// placements differ in steady-state power, and what a VM's lifetime costs.
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"
	"time"

	"risa/internal/network"
	"risa/internal/optics"
	"risa/internal/power"
	"risa/internal/topology"
	"risa/internal/units"
)

func main() {
	ocfg := optics.DefaultConfig()
	model, err := power.NewModel(ocfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Equation 1 components per switch class:")
	for _, sw := range []struct {
		name  string
		ports int
	}{{"box (64p)", 64}, {"rack (256p)", 256}, {"inter-rack (512p)", 512}} {
		n, _ := optics.PathCells(sw.ports)
		lat, _ := ocfg.SwitchLatency(sw.ports)
		trim, _ := ocfg.PathTrimmingPower(sw.ports)
		setup, _ := ocfg.PathSwitchingEnergy(sw.ports)
		fmt.Printf("  %-18s n=%2d cells, lat_sw=%v, setup=%.3g J, trimming=%.1f mW\n",
			sw.name, n, lat, setup, trim*1000)
	}

	// Two placements of the same typical VM, one intra- one inter-rack.
	cl, err := topology.New(topology.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fab, err := network.NewFabric(cl, network.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	bw := units.DefaultConfig().CPURAMDemand(units.Vec(8, 16, 128))
	intra, err := fab.AllocateFlow(cl.Rack(0).BoxesOf(units.CPU)[0],
		cl.Rack(0).BoxesOf(units.RAM)[0], bw, network.FirstFit)
	if err != nil {
		log.Fatal(err)
	}
	inter, err := fab.AllocateFlow(cl.Rack(0).BoxesOf(units.CPU)[1],
		cl.Rack(1).BoxesOf(units.RAM)[0], bw, network.FirstFit)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nA %v CPU-RAM flow (typical VM, 16 GB RAM):\n", bw)
	fmt.Printf("  intra-rack: %.2f W steady state (%.2f W transceivers + %.2f W trimming)\n",
		model.FlowPower(intra), model.TransceiverPower(intra), model.TrimmingPower(intra))
	fmt.Printf("  inter-rack: %.2f W steady state (%.2f W transceivers + %.2f W trimming)\n",
		model.FlowPower(inter), model.TransceiverPower(inter), model.TrimmingPower(inter))
	fmt.Printf("  inter-rack premium: %.1f%%\n",
		(model.FlowPower(inter)/model.FlowPower(intra)-1)*100)

	fmt.Println("\nLifetime energy (Equation 1 + transceivers):")
	for _, life := range []time.Duration{time.Minute, time.Hour, 24 * time.Hour} {
		fmt.Printf("  T=%-6v intra %9.1f J   inter %9.1f J\n",
			life, model.FlowEnergy(intra, life), model.FlowEnergy(inter, life))
	}
}
