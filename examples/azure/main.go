// Azure: the paper's §5.2 practical-workload comparison in one program.
// Replays an Azure-like trace through all four schedulers and prints the
// Figure 7/9/10 metrics side by side.
//
//	go run ./examples/azure             # Azure-3000
//	go run ./examples/azure -subset 7500 -seed 3
package main

import (
	"flag"
	"fmt"
	"log"

	"risa/internal/experiments"
	"risa/internal/workload"
)

func main() {
	subset := flag.Int("subset", 3000, "Azure subset: 3000, 5000 or 7500")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	var sub workload.AzureSubset
	switch *subset {
	case 3000:
		sub = workload.Azure3000
	case 5000:
		sub = workload.Azure5000
	case 7500:
		sub = workload.Azure7500
	default:
		log.Fatalf("unknown subset %d", *subset)
	}

	setup := experiments.AzureSetup()
	setup.Seed = *seed
	tr, err := setup.AzureTrace(sub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d VMs over %d time units\n\n", tr.Name, tr.Len(), tr.Makespan())
	fmt.Printf("%-8s %9s %9s %12s %12s %12s %12s\n",
		"algo", "scheduled", "dropped", "inter-rack", "peak power", "CPU-RAM RTT", "sched time")
	for _, alg := range experiments.Algorithms {
		res, err := setup.RunOne(alg, tr)
		if err != nil {
			log.Fatalf("%s: %v", alg, err)
		}
		fmt.Printf("%-8s %9d %9d %7d (%4.1f%%) %9.2f kW %12v %12v\n",
			alg, res.Scheduled, res.Dropped, res.InterRack, res.InterRackPct,
			res.PeakPowerW/1000, res.MeanCPURAMLatency, res.SchedulingTime.Round(100_000))
	}
	fmt.Println("\nRISA keeps every VM inside one rack: zero inter-rack assignments,")
	fmt.Println("the 110ns latency floor, and the lowest optical power.")
}
