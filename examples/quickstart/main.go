// Quickstart: build the paper's disaggregated datacenter, schedule one VM
// with RISA, inspect the placement, and release it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"risa/internal/core"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

func main() {
	// 1. A fresh Table 1 datacenter: 18 racks x 6 boxes x 8 bricks x 16
	//    units, with the calibrated optical fabric.
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 2. The RISA scheduler bound to it.
	risa := core.New(st)

	// 3. The paper's "typical VM": 8 cores, 16 GB RAM, 128 GB storage.
	vm := workload.VM{ID: 0, Arrival: 0, Lifetime: 1000, Req: units.Vec(8, 16, 128)}
	a, err := risa.Schedule(vm)
	if err != nil {
		log.Fatalf("schedule: %v", err)
	}

	fmt.Printf("VM %d scheduled (%s)\n", vm.ID, vm.Req)
	fmt.Printf("  CPU  → %v\n", a.CPU.Box)
	fmt.Printf("  RAM  → %v\n", a.RAM.Box)
	fmt.Printf("  STO  → %v\n", a.STO.Box)
	fmt.Printf("  inter-rack: %v, CPU-RAM round trip: %v\n", a.InterRack(), a.CPURAMLatency())
	fmt.Printf("  CPU-RAM flow: %v, RAM-STO flow: %v\n",
		a.CPURAMFlow.BW(), a.RAMSTOFlow.BW())
	fmt.Printf("  cluster RAM utilization: %.3f%%\n",
		st.Cluster.Utilization(units.RAM)*100)

	// 4. Release when the VM departs; the datacenter is pristine again.
	risa.Release(a)
	fmt.Printf("released; RAM utilization back to %.3f%%\n",
		st.Cluster.Utilization(units.RAM)*100)
}
