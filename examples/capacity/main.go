// Capacity: a planning sweep a datacenter operator would run — how many
// racks does a given arrival rate need before VMs start dropping, and how
// does RISA's placement quality hold up as the cluster shrinks?
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"risa/internal/experiments"
	"risa/internal/workload"
)

func main() {
	base := experiments.DefaultSetup()
	tr, err := workload.AzureLike(workload.AzureConfig{Subset: workload.Azure3000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s (%d VMs)\n\n", tr.Name, tr.Len())
	fmt.Printf("%5s %10s %9s %12s %14s\n", "racks", "scheduled", "dropped", "inter-rack", "peak STO util")

	for _, racks := range []int{6, 9, 12, 15, 18} {
		setup := base
		setup.Topology.Racks = racks
		res, err := setup.RunOne("RISA", tr)
		if err != nil {
			log.Fatalf("racks=%d: %v", racks, err)
		}
		fmt.Printf("%5d %10d %9d %8d (%3.0f%%) %13.1f%%\n",
			racks, res.Scheduled, res.Dropped, res.InterRack, res.InterRackPct,
			res.PeakUtil[2])
	}
	fmt.Println("\nThe sweep finds the smallest cluster that still serves the trace")
	fmt.Println("without drops — the storage plane is the binding resource.")
}
