// Replay: serialize a workload to CSV, read it back, and replay it —
// the archival path for reproducible experiments.
//
//	go run ./examples/replay
package main

import (
	"bytes"
	"fmt"
	"log"

	"risa/internal/experiments"
	"risa/internal/trace"
	"risa/internal/workload"
)

func main() {
	// Generate a small synthetic workload.
	cfg := workload.DefaultSyntheticConfig()
	cfg.N = 500
	original, err := workload.Synthetic(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Archive it as CSV (a file in real use; a buffer here).
	var buf bytes.Buffer
	if err := trace.Write(&buf, original); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %d VMs as %d bytes of CSV\n", original.Len(), buf.Len())

	// Read it back and replay through RISA.
	replayed, err := trace.Read(&buf, "replayed")
	if err != nil {
		log.Fatal(err)
	}
	res, err := experiments.DefaultSetup().RunOne("RISA", replayed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: %d scheduled, %d dropped, %d inter-rack, peak power %.2f kW\n",
		res.Scheduled, res.Dropped, res.InterRack, res.PeakPowerW/1000)

	// Determinism check: the replay equals a direct run.
	direct, err := experiments.DefaultSetup().RunOne("RISA", original)
	if err != nil {
		log.Fatal(err)
	}
	if direct.InterRack == res.InterRack && direct.Scheduled == res.Scheduled {
		fmt.Println("deterministic: direct run and CSV replay agree exactly")
	} else {
		fmt.Println("MISMATCH between direct run and replay")
	}
}
