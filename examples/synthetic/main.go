// Synthetic: the paper's §5.1 random-workload experiment (Figure 5).
// Generates the 2500-VM Poisson workload and compares inter-rack
// assignment counts across the four schedulers.
//
//	go run ./examples/synthetic
package main

import (
	"fmt"
	"log"

	"risa/internal/experiments"
	"risa/internal/metrics"
	"risa/internal/units"
)

func main() {
	setup := experiments.DefaultSetup()
	tr, err := setup.SyntheticTrace()
	if err != nil {
		log.Fatal(err)
	}
	mean := tr.MeanRequest()
	fmt.Printf("synthetic workload: %d VMs, mean request %.1f cores / %.1f GB / %.0f GB\n\n",
		tr.Len(), mean[units.CPU], mean[units.RAM], mean[units.Storage])

	var bars []metrics.Bar
	for _, alg := range experiments.Algorithms {
		res, err := setup.RunOne(alg, tr)
		if err != nil {
			log.Fatalf("%s: %v", alg, err)
		}
		bars = append(bars, metrics.Bar{Label: alg, Value: float64(res.InterRack)})
		fmt.Printf("%-8s scheduled %4d, dropped %3d, utilization CPU %.2f%% RAM %.2f%% STO %.2f%%\n",
			alg, res.Scheduled, res.Dropped,
			res.AvgUtil[units.CPU], res.AvgUtil[units.RAM], res.AvgUtil[units.Storage])
	}
	fmt.Println()
	fmt.Print(metrics.RenderBars("Inter-rack VM assignments (paper Figure 5)", bars, 40, "%.0f"))
}
