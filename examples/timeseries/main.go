// Timeseries: sample the simulator's utilization and power signals over
// an Azure-like run and draw them as terminal sparklines — the dynamic
// view behind the paper's aggregate Figures 8 and 9.
//
//	go run ./examples/timeseries
package main

import (
	"fmt"
	"log"

	"risa/internal/core"
	"risa/internal/experiments"
	"risa/internal/metrics"
	"risa/internal/sim"
	"risa/internal/units"
	"risa/internal/workload"
)

func main() {
	setup := experiments.AzureSetup()
	tr, err := setup.AzureTrace(workload.Azure3000)
	if err != nil {
		log.Fatal(err)
	}
	st, err := setup.NewState()
	if err != nil {
		log.Fatal(err)
	}
	runner, err := sim.NewRunner(st, core.New(st), sim.Config{SampleEvery: 2000})
	if err != nil {
		log.Fatal(err)
	}
	res, err := runner.Run(tr)
	if err != nil {
		log.Fatal(err)
	}

	series := func(pick func(sim.Sample) float64) []float64 {
		out := make([]float64, len(res.Samples))
		for i, s := range res.Samples {
			out[i] = pick(s)
		}
		return out
	}
	fmt.Printf("%s under RISA: %d samples over %d time units\n\n", tr.Name, len(res.Samples), res.Makespan)
	rows := []struct {
		label string
		pick  func(sim.Sample) float64
		max   float64
	}{
		{"resident VMs", func(s sim.Sample) float64 { return float64(s.Resident) }, 0},
		{"CPU util %", func(s sim.Sample) float64 { return s.Util[units.CPU] }, 0},
		{"RAM util %", func(s sim.Sample) float64 { return s.Util[units.RAM] }, 0},
		{"STO util %", func(s sim.Sample) float64 { return s.Util[units.Storage] }, 0},
		{"intra net %", func(s sim.Sample) float64 { return s.IntraUtil }, 0},
		{"power kW", func(s sim.Sample) float64 { return s.PowerW / 1000 }, 0},
	}
	for _, row := range rows {
		vals := series(row.pick)
		var peak float64
		for _, v := range vals {
			if v > peak {
				peak = v
			}
		}
		fmt.Printf("  %-12s %s  peak %.1f\n", row.label, metrics.Sparkline(vals), peak)
	}
	fmt.Println("\nThe workload ramps up, plateaus near the storage bound, and drains.")
}
