package sim

import (
	"container/heap"
	"math/rand"
	"testing"

	"risa/internal/sched"
	"risa/internal/workload"
)

// sameEvent compares the comparable projection of two events (the do
// field is a func and only compares against nil).
func sameEvent(a, b event) bool {
	return a.t == b.t && a.kind == b.kind && a.seq == b.seq && a.vm == b.vm && a.a == b.a
}

// isZeroEvent reports whether e holds nothing.
func isZeroEvent(e event) bool {
	return e.t == 0 && e.kind == 0 && e.seq == 0 &&
		e.vm == (workload.VM{}) && e.a == nil && e.do == nil
}

// refHeap is a minimal container/heap implementation over events — the
// code the 4-ary heap replaced — kept as the test oracle.
type refHeap []event

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].Less(h[j]) }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestHeap4MatchesContainerHeap drives the 4-ary heap and the
// container/heap oracle with the same random push/pop sequence and
// requires identical pops throughout — the property behind the
// bit-identical experiment outputs.
func TestHeap4MatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var h eventQueue
		var ref refHeap
		seq := 0
		for step := 0; step < 400; step++ {
			if h.Len() != ref.Len() {
				t.Fatalf("trial %d step %d: len %d vs oracle %d", trial, step, h.Len(), ref.Len())
			}
			if h.Len() == 0 || rng.Intn(3) > 0 {
				e := event{
					t:    int64(rng.Intn(50)),
					kind: eventKind(rng.Intn(3)),
					seq:  seq,
				}
				seq++
				h.Push(e)
				heap.Push(&ref, e)
				continue
			}
			got := h.Pop()
			want := heap.Pop(&ref).(event)
			if !sameEvent(got, want) {
				t.Fatalf("trial %d step %d: popped %+v, oracle %+v", trial, step, got, want)
			}
		}
		for h.Len() > 0 {
			got := h.Pop()
			want := heap.Pop(&ref).(event)
			if !sameEvent(got, want) {
				t.Fatalf("trial %d drain: popped %+v, oracle %+v", trial, got, want)
			}
		}
	}
}

// TestHeap4OrdersSimultaneousEvents pins the simulator's event ordering
// contract: at one timestamp, injections fire before departures before
// arrivals, FIFO within a class.
func TestHeap4OrdersSimultaneousEvents(t *testing.T) {
	var h eventQueue
	h.Push(event{t: 5, kind: arrival, seq: 3})
	h.Push(event{t: 5, kind: departure, seq: 2})
	h.Push(event{t: 5, kind: inject, seq: 1})
	h.Push(event{t: 5, kind: departure, seq: 0})
	h.Push(event{t: 4, kind: arrival, seq: 4})
	want := []event{
		{t: 4, kind: arrival, seq: 4},
		{t: 5, kind: inject, seq: 1},
		{t: 5, kind: departure, seq: 0},
		{t: 5, kind: departure, seq: 2},
		{t: 5, kind: arrival, seq: 3},
	}
	for i, w := range want {
		if got := h.Pop(); !sameEvent(got, w) {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
}

// TestHeap4PopClearsSlot is the regression test for the event-queue
// memory retention bug: the old container/heap Pop moved the popped event
// to the end of the backing array and re-sliced, leaving the event — and
// through its *Assignment, the departed VM's whole placement record —
// reachable until the slot happened to be overwritten. The new Pop must
// zero every slot it vacates.
func TestHeap4PopClearsSlot(t *testing.T) {
	var h eventQueue
	for i := 0; i < 8; i++ {
		h.Push(event{
			t:    int64(i),
			kind: departure,
			seq:  i,
			vm:   workload.VM{ID: i},
			a:    &sched.Assignment{},
		})
	}
	backing := h.s[:cap(h.s)]
	for h.Len() > 0 {
		h.Pop()
	}
	for i, e := range backing {
		if !isZeroEvent(e) {
			t.Fatalf("backing slot %d still holds %+v after pop (assignment retained: %v)",
				i, e, e.a != nil)
		}
	}
}

// TestHeap4PushPopDoesNotAllocate asserts the non-boxing contract: at
// steady state (capacity already grown) a push/pop cycle performs zero
// heap allocations, where the container/heap API boxed every pushed event.
func TestHeap4PushPopDoesNotAllocate(t *testing.T) {
	var h eventQueue
	for i := 0; i < 64; i++ {
		h.Push(event{t: int64(i), seq: i})
	}
	i := 1000
	avg := testing.AllocsPerRun(100, func() {
		h.Push(event{t: int64(i), seq: i})
		i++
		h.Pop()
	})
	if avg != 0 {
		t.Fatalf("push/pop allocates %.2f times per cycle at steady state, want 0", avg)
	}
}
