package sim

import (
	"bytes"
	"testing"

	"risa/internal/core"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/units"
	"risa/internal/workload"
)

// assignmentEligible mirrors sched.PreemptScratch.FilterEligible from the
// outside: a candidate is preemptible by an arrival of the given tier iff
// it is strictly lower priority, not stranded on failed hardware, and
// carries no flow over a failed link.
func assignmentEligible(a *sched.Assignment, tier int) bool {
	if a.VM.Tier <= tier || a.OnFailedHardware() {
		return false
	}
	for _, fl := range []*network.Flow{a.CPURAMFlow, a.RAMSTOFlow} {
		if fl == nil {
			continue
		}
		for _, l := range fl.Links() {
			if l.Failed() {
				return false
			}
		}
	}
	return true
}

// eligibleOracle recomputes the contract's victim order independently of
// PreemptScratch: eligible candidates sorted cheapest-first by summed
// request, VM id breaking ties. Returned as live-set indices.
func eligibleOracle(live []*sched.Assignment, tier int) []int {
	var elig []int
	cost := func(i int) int64 {
		var c int64
		for _, amt := range live[i].VM.Req {
			c += int64(amt)
		}
		return c
	}
	for j, a := range live {
		if assignmentEligible(a, tier) {
			elig = append(elig, j)
		}
	}
	// Insertion sort: the lists are small and the order must be exactly
	// (cost asc, id asc).
	for i := 1; i < len(elig); i++ {
		for j := i; j > 0; j-- {
			a, b := elig[j-1], elig[j]
			if cost(a) < cost(b) || (cost(a) == cost(b) && live[a].VM.ID < live[b].VM.ID) {
				break
			}
			elig[j-1], elig[j] = elig[j], elig[j-1]
		}
	}
	return elig
}

// restoreTwin rebuilds the pre-preemption world from a snapshot into a
// fresh instance and returns it plus its live set keyed by VM id.
func restoreTwin(t *testing.T, snap *StateSnapshot) (*fuzzInstance, map[int]*sched.Assignment) {
	t.Helper()
	twin := newFuzzInstance(t)
	live, err := RestoreState(twin.st, twin.sch, snap)
	if err != nil {
		t.Fatalf("oracle restore: %v", err)
	}
	twin.live = live
	byID := make(map[int]*sched.Assignment, len(live))
	for _, a := range live {
		byID[a.VM.ID] = a
	}
	return twin, byID
}

// preemptWithOracle runs one preemption attempt on the instance and
// brute-forces its two contractual claims on snapshot-restored twins:
//
//   - victim selection: the consumed victims are exactly the
//     cheapest-first prefix of the independently computed eligible list,
//     all of them strictly lower tier than the arrival;
//   - minimality: releasing only the first k-1 oracle victims on a
//     restored twin must leave the arrival unplaceable — every eviction
//     in the chain was necessary;
//   - refusal: when Preempt returns nil, releasing every eligible victim
//     on a restored twin must still leave the arrival unplaceable — the
//     refusal was genuine, not an early bailout.
func preemptWithOracle(t *testing.T, in *fuzzInstance, scr *sched.Scratch, vm workload.VM, opIdx int) {
	t.Helper()
	snap, err := CaptureState(in.st, in.sch, in.live)
	if err != nil {
		t.Fatalf("op %d: oracle capture: %v", opIdx, err)
	}
	elig := eligibleOracle(in.live, vm.Tier)

	ps := scr.Preemption()
	ps.Reset()
	for j, a := range in.live {
		ps.Add(a, j)
	}
	a, k := core.Preempt(in.st, in.sch, ps, vm)

	if a == nil {
		twin, byID := restoreTwin(t, snap)
		for _, j := range elig {
			twin.sch.Release(byID[in.live[j].VM.ID])
		}
		if _, err := twin.sch.Schedule(vm); err == nil {
			t.Fatalf("op %d: preemption refused VM %d, but releasing all %d eligible victims admits it",
				opIdx, vm.ID, len(elig))
		}
		return
	}

	if k == 0 || k > len(elig) {
		t.Fatalf("op %d: preemption consumed %d victims with %d eligible", opIdx, k, len(elig))
	}
	for v := 0; v < k; v++ {
		victim := ps.Victim(v).VM
		if victim.Tier <= vm.Tier {
			t.Fatalf("op %d: tier-%d arrival evicted tier-%d VM %d", opIdx, vm.Tier, victim.Tier, victim.ID)
		}
		if want := in.live[elig[v]].VM.ID; victim.ID != want {
			t.Fatalf("op %d: victim %d is VM %d, oracle prefix has VM %d", opIdx, v, victim.ID, want)
		}
	}
	twin, byID := restoreTwin(t, snap)
	for v := 0; v < k-1; v++ {
		twin.sch.Release(byID[in.live[elig[v]].VM.ID])
	}
	if _, err := twin.sch.Schedule(vm); err == nil {
		t.Fatalf("op %d: chain of %d victims is not minimal: %d suffice for VM %d", opIdx, k, k-1, vm.ID)
	}

	// Simulator bookkeeping: victims leave the live set high-index-first
	// (ps.Ref holds live indices), shells go back to the pool, the
	// preemptor joins.
	idxs := make([]int, 0, k)
	for v := 0; v < k; v++ {
		idxs = append(idxs, ps.Ref(v))
	}
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && idxs[j-1] < idxs[j]; j-- {
			idxs[j-1], idxs[j] = idxs[j], idxs[j-1]
		}
	}
	for _, j := range idxs {
		in.st.ReleaseVM(in.live[j])
		in.live = append(in.live[:j], in.live[j+1:]...)
	}
	in.live = append(in.live, a)
}

// FuzzPreemptionChain drives one instance through an arbitrary tiered
// alloc/release/fail/heal/link/displace script in which every failed
// schedule becomes a preemption attempt, and checks each attempt against
// a brute-force oracle on a snapshot-restored twin: victims are exactly
// the cheapest-first eligible prefix, the chain is minimal (k-1 victims
// never suffice), refusals are genuine, and the datacenter holds its
// invariants after every op.
func FuzzPreemptionChain(f *testing.F) {
	// One op is three bytes: opcode, selector, amount. The long seeds
	// saturate the 3-rack instance with low-tier VMs, then land
	// high-tier arrivals on the full cluster to force preemption chains.
	// Preemption VMs are up to four times the base fuzz shape (the
	// oracle restores a twin of the whole live set per attempt, so a
	// smaller saturated population keeps executions fast): the 3-rack
	// instance holds 48 VMs of the largest shape (64/64/32), and 70 fill
	// ops guarantee a saturated cluster.
	fill := bytes.Repeat([]byte{0, 2, 255}, 70) // tier-2 max-size allocs
	f.Add(append(append([]byte{}, fill...), 0, 0, 255, 0, 0, 127, 0, 1, 255))
	f.Add(append(append([]byte{}, fill...), 2, 3, 0, 0, 0, 255, 3, 3, 0, 0, 1, 9))
	f.Add(append(append([]byte{}, bytes.Repeat([]byte{0, 1, 255}, 75)...), 0, 0, 3, 1, 4, 0, 0, 0, 200))
	// Multi-victim chain: saturate, free one big slot, refill it with
	// three small tier-2 VMs (the cheapest-first order picks those), then
	// land a big tier-0 arrival that needs several of them evicted.
	f.Add(append(append([]byte{}, fill...), 1, 0, 0, 0, 2, 20, 0, 2, 20, 0, 2, 20, 0, 0, 255))
	f.Add([]byte{0, 2, 10, 0, 1, 200, 1, 0, 0, 0, 0, 30}) // light churn, mixed tiers
	f.Add([]byte{0, 5, 31, 5, 0, 0, 2, 4, 0, 0, 0, 7})    // displace + fail around tiered allocs
	f.Fuzz(func(t *testing.T, ops []byte) {
		in := newFuzzInstance(t)
		var scr sched.Scratch
		vmID := 0
		nOps := len(ops) / 3
		// Every failed schedule costs two snapshot-restored oracle twins,
		// so unbounded mutated inputs would make executions arbitrarily
		// slow; 512 ops is plenty to saturate and then churn the cluster.
		if nOps > 512 {
			nOps = 512
		}
		for i := 0; i < nOps; i++ {
			op, sel, amt := ops[i*3], ops[i*3+1], ops[i*3+2]
			if op%6 == 0 {
				vm := workload.VM{
					ID: vmID, Lifetime: 1000, Tier: int(sel) % workload.NumTiers,
					Req: units.Vec(1+units.Amount(amt)%64, 1+units.Amount(amt>>2)%64, 32),
				}
				vmID++
				if a, err := in.sch.Schedule(vm); err == nil {
					in.live = append(in.live, a)
				} else {
					preemptWithOracle(t, in, &scr, vm, i)
				}
			} else {
				in.step(t, op, sel, amt, vmID)
			}
			in.check(t, i)
		}
	})
}
