package sim

import (
	"fmt"
	"reflect"
	"testing"

	"risa/internal/baseline"
	"risa/internal/core"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// burstTrace builds an arrival stream dominated by same-instant bursts:
// at every 10-tu tick a burst of 1–8 VMs arrives in one instant, sizes
// and lifetimes varied deterministically so the run sees acceptances,
// drops and same-instant departures interleaved with the bursts. It is the
// batch-admission fixture: the serial loop samples utilization after
// every arrival, the batched loop once per burst.
func burstTrace(n int) *workload.Trace {
	tr := &workload.Trace{Name: "burst-fixture"}
	reqs := []units.Vector{
		units.Vec(4, 8, 128),
		units.Vec(16, 32, 256),
		units.Vec(8, 64, 128),
		units.Vec(32, 16, 512),
	}
	id := 0
	for tick := 0; id < n; tick++ {
		burst := 1 + (tick*5)%8
		for j := 0; j < burst && id < n; j++ {
			tr.VMs = append(tr.VMs, workload.VM{
				ID:       id,
				Arrival:  int64(tick * 10),
				Lifetime: int64(50 + (id%7)*40),
				Tier:     id % workload.NumTiers,
				Req:      reqs[id%len(reqs)],
			})
			id++
		}
	}
	return tr
}

// normalizeSteady zeroes every wall-clock-derived field of a SteadyState
// so two runs can be compared on their deterministic outputs alone —
// placements, counters, windows, utilization integrals and sample
// counts all remain.
func normalizeSteady(ss *SteadyState) *SteadyState {
	c := *ss
	c.SchedulingTime, c.WallTime = 0, 0
	c.LatencyP50, c.LatencyP95, c.LatencyP99 = 0, 0, 0
	c.ReplaceP50, c.ReplaceP95, c.ReplaceP99 = 0, 0, 0
	for i := range c.Tiers {
		c.Tiers[i].LatencyP50, c.Tiers[i].LatencyP95, c.Tiers[i].LatencyP99 = 0, 0, 0
	}
	c.Windows = append([]WindowStats(nil), ss.Windows...)
	return &c
}

// runBurst runs the burst fixture through RunStream under one scheduler
// constructor and returns the normalized result plus the cluster's final
// visible-free vectors.
func runBurst(t *testing.T, mk func(*sched.State) sched.Scheduler, cfg StreamConfig) (*SteadyState, [units.NumResources][]units.Amount) {
	t.Helper()
	st, r := newRunner(t, mk)
	ss, err := r.RunStream(workload.NewTraceStream(burstTrace(500)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var vecs [units.NumResources][]units.Amount
	for _, k := range units.Resources() {
		vecs[k] = append([]units.Amount(nil), st.Cluster.FreeVec(k)...)
	}
	return normalizeSteady(ss), vecs
}

// TestBatchAdmissionMatchesSerial pins the batch-admission equivalence:
// for every scheduler, a batched run must reproduce the serial oracle's
// SteadyState (wall-clock fields excluded) and leave the cluster in the
// bit-identical free state — placements, counters, windows and window
// metrics all agree.
func TestBatchAdmissionMatchesSerial(t *testing.T) {
	mks := map[string]func(*sched.State) sched.Scheduler{
		"RISA":    func(s *sched.State) sched.Scheduler { return core.New(s) },
		"RISA-BF": func(s *sched.State) sched.Scheduler { return core.NewBF(s) },
		"NULB":    baseline.NewNULB,
		"NALB":    baseline.NewNALB,
	}
	base := StreamConfig{
		Workload: StreamWorkload{MaxArrivals: 500},
		Windows:  StreamWindows{Warmup: 100, Window: 150},
	}
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			serial, serialVecs := runBurst(t, mk, base)
			batched := base
			batched.Concurrency.Batch = true
			got, gotVecs := runBurst(t, mk, batched)
			if !reflect.DeepEqual(serial, got) {
				t.Errorf("batched SteadyState diverges from serial:\nserial: %+v\nbatch:  %+v", serial, got)
			}
			if !reflect.DeepEqual(serialVecs, gotVecs) {
				t.Errorf("batched run leaves different cluster free state")
			}
		})
	}
}

// TestBatchAdmissionMatchesSerialUnderRetryAndPreempt covers the arrival
// block's other paths under batching: the retry queue (arrivals joining
// behind a blocked head, drains inside a burst) and tiered preemption.
func TestBatchAdmissionMatchesSerialUnderRetryAndPreempt(t *testing.T) {
	mk := func(s *sched.State) sched.Scheduler { return core.New(s) }
	for _, tc := range []struct {
		name string
		f    StreamFaults
	}{
		{"retry", StreamFaults{Retry: true}},
		{"retry+preempt", StreamFaults{Retry: true, Preempt: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := StreamConfig{
				Workload: StreamWorkload{MaxArrivals: 500},
				Windows:  StreamWindows{Warmup: 100, Window: 150},
				Faults:   tc.f,
			}
			serial, serialVecs := runBurst(t, mk, cfg)
			batched := cfg
			batched.Concurrency.Batch = true
			got, gotVecs := runBurst(t, mk, batched)
			if !reflect.DeepEqual(serial, got) {
				t.Errorf("batched SteadyState diverges from serial:\nserial: %+v\nbatch:  %+v", serial, got)
			}
			if !reflect.DeepEqual(serialVecs, gotVecs) {
				t.Errorf("batched run leaves different cluster free state")
			}
		})
	}
}

// TestBatchAdmissionSnapshotBoundary proves the snapshot boundary cannot
// diverge under batching: armed at an instant that lands exactly on (and
// inside) a same-instant burst, the serial and batched runs capture
// bit-identical snapshots — the boundary condition is monotone in the
// next-event time at a fixed instant, so it always fires before the
// burst's first arrival, never between two of them.
func TestBatchAdmissionSnapshotBoundary(t *testing.T) {
	// 205 sits past burst instants 0..200; arming at 200 makes the
	// boundary coincide with a burst's exact instant.
	for _, at := range []int64{200, 205} {
		t.Run(fmt.Sprintf("at=%d", at), func(t *testing.T) {
			capture := func(batch bool) *Snapshot {
				var snap *Snapshot
				cfg := StreamConfig{
					Workload: StreamWorkload{MaxArrivals: 500},
					Windows:  StreamWindows{Warmup: 100, Window: 150},
					Snapshot: StreamSnapshot{At: at, OnSnapshot: func(s *Snapshot) { snap = s.Clone() }},
				}
				cfg.Concurrency.Batch = batch
				_, r := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
				if _, err := r.RunStream(workload.NewTraceStream(burstTrace(500)), cfg); err != nil {
					t.Fatal(err)
				}
				if snap == nil {
					t.Fatal("no snapshot captured")
				}
				// Strip the wall-clock observations a snapshot carries:
				// the aggregate Schedule time and the latency reservoirs'
				// sample values. Their counts and draw positions stay —
				// those are decision-count-deterministic.
				snap.Counters.SchedulingTime = 0
				for i := range snap.Lat.Vals {
					snap.Lat.Vals[i] = 0
				}
				for i := range snap.Rep.Vals {
					snap.Rep.Vals[i] = 0
				}
				for ti := range snap.TierLat {
					for i := range snap.TierLat[ti].Vals {
						snap.TierLat[ti].Vals[i] = 0
					}
				}
				return snap
			}
			serial, batched := capture(false), capture(true)
			if !reflect.DeepEqual(serial, batched) {
				t.Errorf("snapshot at %d diverges between serial and batched runs", at)
			}
		})
	}
}

// TestBatchRejectsAgentMode pins the Validate rule: batch admission is a
// serial-loop construct and cannot combine with the agent pool.
func TestBatchRejectsAgentMode(t *testing.T) {
	cfg := StreamConfig{
		Workload:    StreamWorkload{MaxArrivals: 10},
		Windows:     StreamWindows{Window: 100},
		Concurrency: StreamConcurrency{Agents: 2, Batch: true},
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Batch with Agents=2 validated")
	}
}

// TestPlaceBatchMatchesSequentialPlace pins Driver.PlaceBatch against the
// one-at-a-time oracle: same per-VM outcomes (assignment presence,
// effective times, error text — including invalid VMs mid-batch) and a
// bit-identical driver afterwards, compared through DriverSnapshot.
func TestPlaceBatchMatchesSequentialPlace(t *testing.T) {
	mkDriver := func(t *testing.T) *Driver {
		st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return NewDriver(st, core.New(st))
	}
	vms := burstTrace(200).VMs
	// Splice in invalid VMs (zero lifetime) and an over-sized request so
	// the batch path's error handling is exercised mid-burst.
	vms = append(vms[:50:50], append([]workload.VM{
		{ID: 9000, Arrival: vms[49].Arrival, Lifetime: 0, Req: units.Vec(1, 1, 1)},
		{ID: 9001, Arrival: vms[49].Arrival, Lifetime: 100, Req: units.Vec(1<<40, 1, 1)},
	}, vms[50:]...)...)

	serial := mkDriver(t)
	var want []BatchResult
	for _, vm := range vms {
		a, at, err := serial.Place(vm)
		want = append(want, BatchResult{A: a, T: at, Err: err})
	}

	batched := mkDriver(t)
	var got []BatchResult
	// Feed the VMs in uneven chunks so batches straddle burst boundaries.
	for lo := 0; lo < len(vms); {
		hi := lo + 1 + (lo % 7)
		if hi > len(vms) {
			hi = len(vms)
		}
		got = append(got, batched.PlaceBatch(vms[lo:hi])...)
		lo = hi
	}

	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if (want[i].A == nil) != (got[i].A == nil) || want[i].T != got[i].T ||
			fmt.Sprint(want[i].Err) != fmt.Sprint(got[i].Err) {
			t.Errorf("vm %d: PlaceBatch = (%v, %d, %v), Place = (%v, %d, %v)",
				vms[i].ID, got[i].A != nil, got[i].T, got[i].Err, want[i].A != nil, want[i].T, want[i].Err)
		}
	}
	if serial.Now() != batched.Now() || serial.Resident() != batched.Resident() {
		t.Fatalf("driver clocks/occupancy diverge: serial (%d, %d), batched (%d, %d)",
			serial.Now(), serial.Resident(), batched.Now(), batched.Resident())
	}
	ss, err := serial.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bs, err := batched.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss, bs) {
		t.Error("driver snapshots diverge between Place and PlaceBatch")
	}
}

// fuzzBurstTrace decodes fuzz bytes into an arrival stream of bursts.
// Each 3-byte op is (burst, shape, life): `burst%8+1` VMs arrive in one
// instant, requests rotate from `shape`, lifetimes vary with `life`, and
// the clock advances `burst%3` ticks — an advance of 0 merges adjacent
// decoded bursts into one larger same-instant burst, so the coalescing
// window sees runs of every length the input can express.
func fuzzBurstTrace(data []byte) *workload.Trace {
	const maxVMs = 160
	tr := &workload.Trace{Name: "fuzz-burst"}
	reqs := []units.Vector{
		units.Vec(4, 8, 128),
		units.Vec(16, 32, 256),
		units.Vec(8, 64, 128),
		units.Vec(32, 16, 512),
	}
	var at int64
	for i := 0; i+2 < len(data) && len(tr.VMs) < maxVMs; i += 3 {
		burst := 1 + int(data[i])%8
		for j := 0; j < burst && len(tr.VMs) < maxVMs; j++ {
			id := len(tr.VMs)
			tr.VMs = append(tr.VMs, workload.VM{
				ID:       id,
				Arrival:  at,
				Lifetime: int64(20 + (int(data[i+2])+j)%5*35),
				Tier:     id % workload.NumTiers,
				Req:      reqs[(int(data[i+1])+j)%len(reqs)],
			})
		}
		at += int64(int(data[i])%3) * 10
	}
	return tr
}

// FuzzBatchAdmission fuzzes the batch-admission equivalence: an
// arbitrary byte string becomes a burst-shaped arrival stream (same
// decoding for both runs), the first byte picks the scheduler and
// whether the retry queue is armed, and the serial loop's SteadyState
// and final free vectors are the oracle the batched loop must
// reproduce exactly.
func FuzzBatchAdmission(f *testing.F) {
	f.Add([]byte{0, 0, 0, 7, 1, 3, 2, 2, 4})          // merged same-instant runs
	f.Add([]byte{5, 3, 1, 1, 0, 0, 4, 2, 3, 7, 1, 0}) // mixed bursts, RISA-BF
	f.Add([]byte{2, 1, 4, 2, 1, 4, 2, 1, 4, 2, 1, 4}) // steady rhythm, NULB+retry
	f.Add([]byte{255, 255, 255, 128, 64, 32, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := fuzzBurstTrace(data)
		if len(tr.VMs) == 0 {
			t.Skip("no ops decoded")
		}
		mks := []func(*sched.State) sched.Scheduler{
			func(s *sched.State) sched.Scheduler { return core.New(s) },
			func(s *sched.State) sched.Scheduler { return core.NewBF(s) },
			baseline.NewNULB,
			baseline.NewNALB,
		}
		mk := mks[int(data[0])%len(mks)]
		cfg := StreamConfig{
			Workload: StreamWorkload{MaxArrivals: len(tr.VMs)},
			Windows:  StreamWindows{Warmup: 20, Window: 60},
			Faults:   StreamFaults{Retry: data[0]%2 == 1},
		}
		run := func(batch bool) (*SteadyState, [units.NumResources][]units.Amount) {
			st, r := newRunner(t, mk)
			c := cfg
			c.Concurrency.Batch = batch
			ss, err := r.RunStream(workload.NewTraceStream(tr), c)
			if err != nil {
				t.Fatal(err)
			}
			var vecs [units.NumResources][]units.Amount
			for _, k := range units.Resources() {
				vecs[k] = append([]units.Amount(nil), st.Cluster.FreeVec(k)...)
			}
			return normalizeSteady(ss), vecs
		}
		serial, serialVecs := run(false)
		batched, batchedVecs := run(true)
		if !reflect.DeepEqual(serial, batched) {
			t.Errorf("batched SteadyState diverges from serial:\nserial: %+v\nbatch:  %+v", serial, batched)
		}
		if !reflect.DeepEqual(serialVecs, batchedVecs) {
			t.Errorf("batched run leaves different cluster free state")
		}
	})
}
