package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"risa/internal/baseline" // registers NULB/NALB with the sched registry
	"risa/internal/faults"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

var _ = baseline.NewNULB // keep the registration import explicit

// agentTrace is a churn-like fixture with varied request shapes: enough
// arrivals for several windows and enough size diversity that agents
// genuinely contend for the same racks.
func agentTrace(n int) *workload.Trace {
	rng := rand.New(rand.NewSource(17))
	tr := &workload.Trace{Name: "agent-fixture"}
	for i := 0; i < n; i++ {
		tr.VMs = append(tr.VMs, workload.VM{
			ID: i, Arrival: int64(i * 3), Lifetime: 400, Req: units.Vec(
				units.Amount(rng.Int63n(32)+1),
				units.Amount(rng.Int63n(64)+1),
				128),
		})
	}
	return tr
}

// stripWall zeroes every wall-clock-derived SteadyState field so two runs
// can be compared on their deterministic content alone.
func stripWall(ss *SteadyState) *SteadyState {
	c := *ss
	c.LatencyP50, c.LatencyP95, c.LatencyP99, c.LatencySamples = 0, 0, 0, 0
	c.ReplaceP50, c.ReplaceP95, c.ReplaceP99, c.ReplaceSamples = 0, 0, 0, 0
	c.SchedulingTime, c.WallTime = 0, 0
	for t := range c.Tiers {
		c.Tiers[t].LatencyP50, c.Tiers[t].LatencyP95, c.Tiers[t].LatencyP99, c.Tiers[t].LatencySamples = 0, 0, 0, 0
	}
	return &c
}

// registryRunner builds a Runner whose scheduler comes from the sched
// registry — the same construction path the agent pool uses.
func registryRunner(t *testing.T, algorithm string, cfg Config) (*sched.State, *Runner) {
	t.Helper()
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(algorithm, st, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, r
}

// TestAgentsOneEquivalence: Agents:1 must be bit-identical to the plain
// serial path for every registered scheduler, under plain churn and
// under a fault plan with eviction and the retry queue — the agent
// machinery may only engage at N >= 2.
func TestAgentsOneEquivalence(t *testing.T) {
	plan := &faults.Plan{Events: []faults.Event{
		{T: 600, Tier: faults.RackTier, Rack: 2},
		{T: 900, Repair: true, Tier: faults.RackTier, Rack: 2},
	}}
	scenarios := []struct {
		name string
		cfg  Config
		fl   StreamFaults
	}{
		{name: "churn"},
		{name: "faults", cfg: Config{RetryDropped: true}, fl: StreamFaults{Plan: plan, Evict: true, Retry: true}},
	}
	for _, algorithm := range sched.Registered() {
		for _, sc := range scenarios {
			t.Run(algorithm+"/"+sc.name, func(t *testing.T) {
				run := func(agents int) *SteadyState {
					cfg := sc.cfg
					if sc.fl.Retry {
						cfg = Config{} // the fault surface rides in via StreamFaults
					}
					_, r := registryRunner(t, algorithm, cfg)
					scfg := StreamConfig{
						Workload:    StreamWorkload{MaxArrivals: 500},
						Windows:     StreamWindows{Warmup: 300, Window: 200},
						Concurrency: StreamConcurrency{Agents: agents},
					}
					if sc.fl.Retry {
						scfg.Faults = sc.fl
					}
					ss, err := r.RunStream(workload.NewTraceStream(agentTrace(500)), scfg)
					if err != nil {
						t.Fatal(err)
					}
					return stripWall(ss)
				}
				serial, one := run(0), run(1)
				if !reflect.DeepEqual(serial, one) {
					t.Errorf("Agents:1 diverged from serial:\nserial %+v\nagents %+v", serial, one)
				}
			})
		}
	}
}

// TestAgentsDeterminism: the same seed and the same agent count must
// reproduce the merged windows and counters exactly, run after run.
func TestAgentsDeterminism(t *testing.T) {
	for _, algorithm := range sched.Registered() {
		t.Run(algorithm, func(t *testing.T) {
			run := func() *SteadyState {
				_, r := registryRunner(t, algorithm, Config{})
				ss, err := r.RunStream(workload.NewTraceStream(agentTrace(600)), StreamConfig{
					Workload:    StreamWorkload{MaxArrivals: 600},
					Windows:     StreamWindows{Warmup: 300, Window: 200},
					Concurrency: StreamConcurrency{Agents: 4},
				})
				if err != nil {
					t.Fatal(err)
				}
				return stripWall(ss)
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("two identical %d-agent runs diverged:\nfirst  %+v\nsecond %+v", 4, a, b)
			}
			if a.AgentCommits == 0 {
				t.Error("agent pool committed nothing — the optimistic path never engaged")
			}
			if a.TotalAccepted+a.TotalDropped != a.TotalArrivals {
				t.Errorf("conservation: accepted %d + dropped %d != arrivals %d",
					a.TotalAccepted, a.TotalDropped, a.TotalArrivals)
			}
		})
	}
}

// TestAgentsMatchSerialOutcome: agent mode takes a different path to the
// same placements only when no commit conflicts occur; in general the
// outcome may differ decision-by-decision, but the aggregate accounting
// must stay conserved and the final state must satisfy every invariant.
func TestAgentsMatchSerialOutcome(t *testing.T) {
	st, r := registryRunner(t, "RISA", Config{})
	ss, err := r.RunStream(workload.NewTraceStream(agentTrace(600)), StreamConfig{
		Workload:    StreamWorkload{MaxArrivals: 600},
		Windows:     StreamWindows{Warmup: 300, Window: 200},
		Concurrency: StreamConcurrency{Agents: 3, Round: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ss.TotalArrivals != 600 {
		t.Errorf("arrivals %d, want 600", ss.TotalArrivals)
	}
	if ss.TotalAccepted+ss.TotalDropped != ss.TotalArrivals {
		t.Errorf("conservation: accepted %d + dropped %d != arrivals %d",
			ss.TotalAccepted, ss.TotalDropped, ss.TotalArrivals)
	}
	if ss.AgentCommits+ss.AgentConflicts == 0 {
		t.Error("no proposals resolved — agent mode did not run")
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestAgentsRetryQueue: under overload with the retry queue on, agent
// mode must keep the queue's conservation properties — arrivals either
// place (possibly from the queue) or count as dropped, never both, and
// the final state stays consistent.
func TestAgentsRetryQueue(t *testing.T) {
	cfg := topology.DefaultConfig()
	cfg.Racks = 4
	st, err := sched.NewState(cfg, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New("RISA", st, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, s, Config{RetryDropped: true})
	if err != nil {
		t.Fatal(err)
	}
	// Big VMs against a small cluster: the queue must engage.
	tr := &workload.Trace{Name: "agent-overload"}
	for i := 0; i < 200; i++ {
		tr.VMs = append(tr.VMs, workload.VM{
			ID: i, Arrival: int64(i * 2), Lifetime: 300, Req: units.Vec(128, 128, 1024),
		})
	}
	ss, err := r.RunStream(workload.NewTraceStream(tr), StreamConfig{
		Workload:    StreamWorkload{MaxArrivals: 200, Drain: true},
		Windows:     StreamWindows{Window: 100},
		Concurrency: StreamConcurrency{Agents: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Enqueued == 0 || ss.RetrySucceeded == 0 {
		t.Fatalf("retry path idle under overload: enqueued %d, retried %d", ss.Enqueued, ss.RetrySucceeded)
	}
	if ss.TotalAccepted+ss.TotalDropped != 200 {
		t.Errorf("conservation: accepted %d + dropped %d != 200", ss.TotalAccepted, ss.TotalDropped)
	}
	if free, cap := st.Cluster.TotalFree(units.CPU), st.Cluster.TotalCapacity(units.CPU); free != cap {
		t.Errorf("drain left %d of %d CPU allocated", cap-free, cap)
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestAdmitKeepsArrivalOrder pins the retry-queue admission fix: a
// conflict loser re-queues with its ORIGINAL arrival sequence, so an
// out-of-order admit must insert mid-queue, not append — and ties keep
// append order so the serial path stays a pure append.
func TestAdmitKeepsArrivalOrder(t *testing.T) {
	sr := &streamRun{}
	vm := func(id int) workload.VM { return workload.VM{ID: id} }
	for _, q := range []queuedVM{
		{vm: vm(0), seq: 1},
		{vm: vm(1), seq: 4},
		{vm: vm(2), seq: 2}, // late conflict loser: belongs between 1 and 4
		{vm: vm(3), seq: 4}, // tie: stays after the existing seq-4 entry
		{vm: vm(4), seq: 7},
	} {
		sr.admit(q)
	}
	want := []int{0, 2, 1, 3, 4}
	for i, q := range sr.waiting {
		if q.vm.ID != want[i] {
			ids := make([]int, len(sr.waiting))
			for j, w := range sr.waiting {
				ids[j] = w.vm.ID
			}
			t.Fatalf("queue order %v, want %v", ids, want)
		}
	}
	// A consumed head (wHead > 0) must not be disturbed by a later
	// low-seq admit: insertion stops at the head boundary.
	sr.wHead = 2
	sr.admit(queuedVM{vm: vm(5), seq: 0})
	if sr.waiting[2].vm.ID != 5 {
		t.Errorf("low-seq admit landed at %d, want the wHead boundary", sr.waiting[2].vm.ID)
	}
	if sr.waiting[0].vm.ID != 0 || sr.waiting[1].vm.ID != 2 {
		t.Error("admit disturbed the consumed prefix")
	}
}

// TestAdmitKeepsArrivalOrderPerTier pins the tier-ordered retry queue:
// priority tier orders before admission sequence (tier 0 drains first
// regardless of when it queued), while equal-tier entries keep the
// original arrival-sequence discipline — so an all-tier-0 workload
// orders exactly as the untiered queue did.
func TestAdmitKeepsArrivalOrderPerTier(t *testing.T) {
	sr := &streamRun{}
	vm := func(id, tier int) workload.VM { return workload.VM{ID: id, Tier: tier} }
	for _, q := range []queuedVM{
		{vm: vm(0, 2), seq: 1},
		{vm: vm(1, 0), seq: 5}, // higher tier, later seq: drains first anyway
		{vm: vm(2, 1), seq: 3},
		{vm: vm(3, 0), seq: 2}, // tier 0, earlier seq: ahead of the other tier-0
		{vm: vm(4, 2), seq: 0}, // tier 2, earliest seq: ahead of the first tier-2
		{vm: vm(5, 1), seq: 9},
	} {
		sr.admit(q)
	}
	want := []int{3, 1, 2, 5, 4, 0}
	for i, q := range sr.waiting {
		if q.vm.ID != want[i] {
			ids := make([]int, len(sr.waiting))
			for j, w := range sr.waiting {
				ids[j] = w.vm.ID
			}
			t.Fatalf("queue order %v, want %v", ids, want)
		}
	}
	// The consumed prefix stays untouched even for a tier-0 admit that
	// would otherwise sort to the very front.
	sr.wHead = 2
	sr.admit(queuedVM{vm: vm(6, 0), seq: 0})
	if sr.waiting[2].vm.ID != 6 {
		t.Errorf("tier-0 admit landed at %d, want the wHead boundary", sr.waiting[2].vm.ID)
	}
	if sr.waiting[0].vm.ID != 3 || sr.waiting[1].vm.ID != 1 {
		t.Error("admit disturbed the consumed prefix")
	}
}

// TestTierTwoDrainsAfterPressure is the starvation guard on the
// tier-ordered queue: tier-2 entries queued behind a wall of tier-0
// residents must all place once the pressure departs — lowest priority
// means drained last, never never.
func TestTierTwoDrainsAfterPressure(t *testing.T) {
	tr := &workload.Trace{Name: "tiered-pressure"}
	id := 0
	// 96 × 64 CPU units fill the 6-rack fixture's 6144 exactly.
	for i := 0; i < 96; i++ {
		tr.VMs = append(tr.VMs, workload.VM{ID: id, Arrival: int64(i), Lifetime: 1000, Tier: 0, Req: units.Vec(64, 64, 32)})
		id++
	}
	// Tier-2 arrivals against the full cluster: nothing to preempt below
	// them, so they queue and wait.
	for i := 0; i < 20; i++ {
		tr.VMs = append(tr.VMs, workload.VM{ID: id, Arrival: int64(100 + i), Lifetime: 1000, Tier: 2, Req: units.Vec(64, 64, 32)})
		id++
	}
	// A late sentinel arrival keeps the event loop running past the
	// tier-0 wall's departures (a finite trace otherwise ends the run at
	// its last arrival, stranding the queue).
	tr.VMs = append(tr.VMs, workload.VM{ID: id, Arrival: 2500, Lifetime: 100, Tier: 2, Req: units.Vec(1, 1, 32)})
	_, r := eqRunner(t, "RISA", Config{})
	cfg := StreamConfig{Workload: StreamWorkload{Duration: 3000}, Windows: StreamWindows{Window: 500}}
	cfg.Faults = StreamFaults{Retry: true, Preempt: true}
	ss, err := r.RunStream(workload.NewTraceStream(tr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Enqueued < 20 {
		t.Fatalf("fixture queued only %d arrivals, want at least the 20 tier-2", ss.Enqueued)
	}
	if ss.Preempted != 0 {
		t.Errorf("tier-2 arrivals preempted %d victims; nothing sits below tier 2", ss.Preempted)
	}
	if got := ss.Tiers[2].TotalAccepted; got != 21 {
		t.Errorf("tier-2 accepted %d of 21 after the tier-0 wall departed", got)
	}
	if got := ss.Tiers[0].TotalAccepted; got != 96 {
		t.Errorf("tier-0 accepted %d of 96", got)
	}
}
