package sim

import (
	"reflect"
	"testing"
	"time"

	"risa/internal/core"
	"risa/internal/faults"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// faultRunner builds a RISA runner on the default datacenter with the
// given fault configuration.
func faultRunner(t testing.TB, cfg Config) (*sched.State, *Runner) {
	t.Helper()
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, core.New(st), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, r
}

func TestNewRunnerValidatesFaultConfig(t *testing.T) {
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// An out-of-range plan is rejected up front.
	bad := &faults.Plan{Events: []faults.Event{{T: 0, Tier: faults.RackTier, Rack: 99}}}
	if _, err := NewRunner(st, core.New(st), Config{Faults: bad}); err == nil {
		t.Error("out-of-range plan accepted")
	}
	// Evict without a plan is meaningless.
	if _, err := NewRunner(st, core.New(st), Config{Evict: true}); err == nil {
		t.Error("Evict without a fault plan accepted")
	}
}

// TestRunFaultPlanMatchesInjections: a rack-outage plan must reproduce
// the injection-based equivalent bit for bit — the property the
// resilience experiment's rewrite onto the plan abstraction rests on.
func TestRunFaultPlanMatchesInjections(t *testing.T) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.N = 500
	tr, err := workload.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := tr.VMs[tr.Len()-1].Arrival
	fail := func(failed bool, at int64) Injection {
		return Injection{T: at, Do: func(st *sched.State) {
			for _, b := range st.Cluster.Rack(2).Boxes() {
				st.Cluster.SetBoxFailed(b, failed)
			}
		}}
	}
	_, withInj := faultRunner(t, Config{Injections: []Injection{
		fail(true, last/4), fail(false, last/2),
	}})
	a, err := withInj.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	_, withPlan := faultRunner(t, Config{Faults: faults.RackFailure(2, last/4, last/2)})
	b, err := withPlan.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	a.SchedulingTime, b.SchedulingTime = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("plan result differs from injection result:\n%+v\nvs\n%+v", a, b)
	}
	// The fixture must actually bite: the same trace without the outage
	// produces a different result (placements shifted off rack 2).
	_, healthy := faultRunner(t, Config{})
	c, err := healthy.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	c.SchedulingTime = 0
	if reflect.DeepEqual(a, c) {
		t.Error("fixture too weak: the outage changed nothing")
	}
}

// streamFor yields a stationary synthetic arrival stream dense enough
// that the default cluster holds a meaningful resident population.
func streamFor(t testing.TB) workload.Stream {
	t.Helper()
	cfg := workload.DefaultSyntheticConfig()
	cfg.LifetimeStep = 0
	cfg.MeanInterarrival = 2
	s, err := cfg.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunStreamFaultsNoEvict: resident VMs ride out an outage in place —
// nothing is displaced, the capacity dips and returns, and the state
// drains to pristine.
func TestRunStreamFaultsNoEvict(t *testing.T) {
	plan := faults.RackFailure(0, 400, 900)
	st, r := faultRunner(t, Config{Faults: plan})
	res, err := r.RunStream(streamFor(t), StreamConfig{Workload: StreamWorkload{MaxArrivals: 2000, Drain: true}, Windows: StreamWindows{Warmup: 200, Window: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Displaced != 0 || res.Recovered != 0 || res.DisplacedLost != 0 {
		t.Errorf("no-evict run displaced %d/%d/%d VMs", res.Displaced, res.Recovered, res.DisplacedLost)
	}
	for _, k := range units.Resources() {
		if st.Cluster.TotalFree(k) != st.Cluster.TotalCapacity(k) {
			t.Errorf("%v not pristine after drain", k)
		}
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestRunStreamEviction: with Evict, VMs resident on the failed rack are
// displaced; on the default cluster the 17 healthy racks absorb them
// all, their departure events stay valid, and the run drains pristine
// after the repair.
func TestRunStreamEviction(t *testing.T) {
	plan := faults.RackFailure(0, 400, 900)
	st, r := faultRunner(t, Config{Faults: plan, Evict: true})
	res, err := r.RunStream(streamFor(t), StreamConfig{Workload: StreamWorkload{MaxArrivals: 2000, Drain: true}, Windows: StreamWindows{Warmup: 200, Window: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Displaced == 0 {
		t.Fatal("fixture too weak: nothing was resident on the failed rack")
	}
	if res.Recovered != res.Displaced || res.DisplacedLost != 0 || res.DisplacedQueued != 0 {
		t.Errorf("displaced %d, recovered %d, lost %d, queued %d — a near-empty cluster must absorb all",
			res.Displaced, res.Recovered, res.DisplacedLost, res.DisplacedQueued)
	}
	if res.ReplaceSamples == 0 {
		t.Error("no re-placement latency samples")
	}
	var winDisplaced, winRecovered int
	for _, w := range res.Windows {
		winDisplaced += w.Displaced
		winRecovered += w.Recovered
	}
	if winDisplaced != res.Displaced || winRecovered != res.Recovered {
		t.Errorf("windows count %d/%d displaced/recovered, run counts %d/%d",
			winDisplaced, winRecovered, res.Displaced, res.Recovered)
	}
	for _, k := range units.Resources() {
		if st.Cluster.TotalFree(k) != st.Cluster.TotalCapacity(k) {
			t.Errorf("%v not pristine after drain", k)
		}
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestRunStreamEvictionLoss: when the whole cluster fails there is
// nowhere to go — every resident VM is lost, its departure event turns
// into a ghost, and the repaired cluster keeps serving fresh arrivals.
func TestRunStreamEvictionLoss(t *testing.T) {
	plan := &faults.Plan{Events: []faults.Event{}}
	for rack := 0; rack < topology.DefaultConfig().Racks; rack++ {
		plan.Events = append(plan.Events, faults.Event{T: 500, Tier: faults.RackTier, Rack: rack})
	}
	for rack := 0; rack < topology.DefaultConfig().Racks; rack++ {
		plan.Events = append(plan.Events,
			faults.Event{T: 600, Tier: faults.RackTier, Rack: rack, Repair: true})
	}
	st, r := faultRunner(t, Config{Faults: plan, Evict: true})
	res, err := r.RunStream(streamFor(t), StreamConfig{Workload: StreamWorkload{MaxArrivals: 2000, Drain: true}, Windows: StreamWindows{Warmup: 200, Window: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Displaced == 0 || res.DisplacedLost != res.Displaced || res.Recovered != 0 {
		t.Errorf("displaced %d, lost %d, recovered %d — total failure must lose all",
			res.Displaced, res.DisplacedLost, res.Recovered)
	}
	// Life goes on after the repair: the post-outage accept count grows.
	if res.TotalAccepted <= res.Displaced {
		t.Error("no arrivals accepted after the repair")
	}
	for _, k := range units.Resources() {
		if st.Cluster.TotalFree(k) != st.Cluster.TotalCapacity(k) {
			t.Errorf("%v not pristine after drain", k)
		}
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestRunStreamEvictionRetryQueue: displaced VMs that cannot be
// re-placed park on the retry queue instead of dying, and the repair
// drains them back in.
func TestRunStreamEvictionRetryQueue(t *testing.T) {
	plan := &faults.Plan{Events: []faults.Event{}}
	racks := topology.DefaultConfig().Racks
	for rack := 0; rack < racks; rack++ {
		plan.Events = append(plan.Events, faults.Event{T: 500, Tier: faults.RackTier, Rack: rack})
	}
	for rack := 0; rack < racks; rack++ {
		plan.Events = append(plan.Events,
			faults.Event{T: 600, Tier: faults.RackTier, Rack: rack, Repair: true})
	}
	st, r := faultRunner(t, Config{Faults: plan, Evict: true, RetryDropped: true})
	res, err := r.RunStream(streamFor(t), StreamConfig{Workload: StreamWorkload{MaxArrivals: 2000, Drain: true}, Windows: StreamWindows{Warmup: 200, Window: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DisplacedQueued == 0 || res.DisplacedLost != 0 {
		t.Errorf("queued %d, lost %d — retry must park displaced VMs", res.DisplacedQueued, res.DisplacedLost)
	}
	if res.RetrySucceeded == 0 {
		t.Error("repair never drained the queue")
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestRunStreamFaultDeterminism: two identically configured fault runs
// report identical metrics (wall-clock fields excluded), including under
// a generated stochastic plan.
func TestRunStreamFaultDeterminism(t *testing.T) {
	tcfg := topology.DefaultConfig()
	plan, err := faults.Generate(faults.GenConfig{
		Seed: 7, Horizon: 4000,
		Racks: tcfg.Racks, BoxesPerRack: tcfg.BoxesPerRack(),
		Box:  faults.TierRates{MTBF: 20000, MTTR: 300},
		Rack: faults.TierRates{MTBF: 150000, MTTR: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *SteadyState {
		_, r := faultRunner(t, Config{Faults: plan, Evict: true})
		res, err := r.RunStream(streamFor(t), StreamConfig{Workload: StreamWorkload{MaxArrivals: 2000, Drain: true}, Windows: StreamWindows{Warmup: 200, Window: 200}})
		if err != nil {
			t.Fatal(err)
		}
		res.SchedulingTime, res.WallTime = 0, 0
		res.LatencyP50, res.LatencyP95, res.LatencyP99 = 0, 0, 0
		res.ReplaceP50, res.ReplaceP95, res.ReplaceP99 = 0, 0, 0
		for t := range res.Tiers {
			res.Tiers[t].LatencyP50, res.Tiers[t].LatencyP95, res.Tiers[t].LatencyP99 = 0, 0, 0
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fault runs diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.Displaced == 0 {
		t.Error("fixture too weak: the generated plan displaced nothing")
	}
}

// TestOverlappingTierOutages: a box covered by two outage scopes at
// once (its own box-tier failure and its rack's failure) stays down
// until the LAST covering scope is repaired — the per-box refcounts
// behind applyFault. Before the refcounts, the box-tier repair at t=300
// un-failed the box mid-rack-outage.
func TestOverlappingTierOutages(t *testing.T) {
	plan := &faults.Plan{Events: []faults.Event{
		{T: 100, Tier: faults.BoxTier, Rack: 0, Box: 0},
		{T: 200, Tier: faults.RackTier, Rack: 0},
		{T: 300, Repair: true, Tier: faults.BoxTier, Rack: 0, Box: 0},
		{T: 800, Repair: true, Tier: faults.RackTier, Rack: 0},
	}}
	var during, after bool
	probe := func(out *bool) func(st *sched.State) {
		return func(st *sched.State) { *out = st.Cluster.Rack(0).Boxes()[0].Failed() }
	}
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, core.New(st), Config{
		Faults: plan,
		Injections: []Injection{
			{T: 350, Do: probe(&during)},
			{T: 900, Do: probe(&after)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{Name: "probe", VMs: []workload.VM{
		{ID: 0, Arrival: 0, Lifetime: 1000, Req: units.Vec(1, 1, 1)},
	}}
	if _, err := r.Run(tr); err != nil {
		t.Fatal(err)
	}
	if !during {
		t.Error("box un-failed by the box-tier repair while its rack was still down")
	}
	if after {
		t.Error("box still failed after the last covering repair")
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestEvictionSparesSameInstantDepartures: a VM whose departure is due
// at the failure instant itself is leaving anyway — it must not be
// displaced, killed or counted.
func TestEvictionSparesSameInstantDepartures(t *testing.T) {
	// The VM arrives at 0 and lives exactly until the whole-cluster
	// outage at t=100; eviction would have to kill it (nowhere to go).
	plan := &faults.Plan{}
	racks := topology.DefaultConfig().Racks
	for rack := 0; rack < racks; rack++ {
		plan.Events = append(plan.Events, faults.Event{T: 100, Tier: faults.RackTier, Rack: rack})
	}
	for rack := 0; rack < racks; rack++ {
		plan.Events = append(plan.Events,
			faults.Event{T: 150, Repair: true, Tier: faults.RackTier, Rack: rack})
	}
	st, r := faultRunner(t, Config{Faults: plan, Evict: true})
	tr := &workload.Trace{Name: "same-instant", VMs: []workload.VM{
		{ID: 0, Arrival: 0, Lifetime: 100, Req: units.Vec(8, 16, 128)},
	}}
	res, err := r.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Displaced != 0 || res.DisplacedLost != 0 {
		t.Errorf("same-instant departure displaced %d / lost %d, want 0/0", res.Displaced, res.DisplacedLost)
	}
	if res.Scheduled != 1 || res.Dropped != 0 {
		t.Errorf("scheduled %d dropped %d, want 1/0", res.Scheduled, res.Dropped)
	}
	for _, k := range units.Resources() {
		if st.Cluster.TotalFree(k) != st.Cluster.TotalCapacity(k) {
			t.Errorf("%v not pristine after the run", k)
		}
	}
}

// TestDisplacedRequeueCountsOnce: with Evict+RetryDropped, a VM that is
// displaced, parked on the retry queue and re-placed after the repair
// counts as ONE acceptance (at its arrival) plus one recovery — not
// two acceptances.
func TestDisplacedRequeueCountsOnce(t *testing.T) {
	racks := topology.DefaultConfig().Racks
	plan := &faults.Plan{}
	for rack := 0; rack < racks; rack++ {
		plan.Events = append(plan.Events, faults.Event{T: 50, Tier: faults.RackTier, Rack: rack})
	}
	for rack := 0; rack < racks; rack++ {
		plan.Events = append(plan.Events,
			faults.Event{T: 60, Repair: true, Tier: faults.RackTier, Rack: rack})
	}
	_, r := faultRunner(t, Config{Faults: plan, Evict: true, RetryDropped: true})
	// One resident VM displaced by the total outage at t=50, re-admitted
	// by the repair at t=60; a second arrival keeps the run going.
	tr := &workload.Trace{Name: "requeue", VMs: []workload.VM{
		{ID: 0, Arrival: 0, Lifetime: 100, Req: units.Vec(8, 16, 128)},
		{ID: 1, Arrival: 200, Lifetime: 10, Req: units.Vec(8, 16, 128)},
	}}
	res, err := r.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 2 {
		t.Errorf("scheduled %d, want 2 (a recovery is not a second acceptance)", res.Scheduled)
	}
	if res.Displaced != 1 || res.Recovered != 1 || res.DisplacedLost != 0 {
		t.Errorf("displaced/recovered/lost = %d/%d/%d, want 1/1/0",
			res.Displaced, res.Recovered, res.DisplacedLost)
	}
	if res.Dropped != 0 {
		t.Errorf("dropped %d, want 0", res.Dropped)
	}
}

// TestEvictDisplacedSkipsHealthyAndGhosts exercises the queue scan
// directly: only departures on failed hardware are touched.
func TestEvictDisplacedSkipsHealthyAndGhosts(t *testing.T) {
	st, r := faultRunner(t, Config{})
	var h eventQueue
	a1, err := r.sch.Schedule(workload.VM{ID: 1, Lifetime: 10, Req: units.Vec(8, 16, 128)})
	if err != nil {
		t.Fatal(err)
	}
	h.Push(event{t: 10, kind: departure, seq: 0, vm: workload.VM{ID: 1, Lifetime: 10}, a: a1})
	h.Push(event{t: 11, kind: departure, seq: 1, a: nil}) // ghost
	h.Push(event{t: 12, kind: fault, seq: 2})
	var touched int
	r.evictDisplaced(&h, 0, evictHooks{
		after: func(_ *sched.Assignment, _ bool, _ time.Duration) { touched++ },
	})
	if touched != 0 {
		t.Errorf("healthy departure displaced %d times", touched)
	}
	// Fail the VM's CPU rack: now exactly one displacement.
	for _, b := range st.Cluster.Rack(a1.CPU.Box.Rack()).Boxes() {
		st.Cluster.SetBoxFailed(b, true)
	}
	r.evictDisplaced(&h, 0, evictHooks{
		after: func(a *sched.Assignment, recovered bool, _ time.Duration) {
			touched++
			if !recovered {
				t.Error("displacement must recover on a near-empty cluster")
			}
			if a.OnFailedHardware() {
				t.Error("recovered assignment still on failed hardware")
			}
		},
	})
	if touched != 1 {
		t.Errorf("displaced %d, want 1", touched)
	}
}
