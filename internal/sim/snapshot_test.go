package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"risa/internal/core"
	"risa/internal/faults"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// eqTopology is a small cluster so the equivalence matrix stays fast:
// 6 racks × (2+2+2) boxes, 1536 units of each compute resource.
func eqTopology() topology.Config {
	cfg := topology.DefaultConfig()
	cfg.Racks = 6
	return cfg
}

func eqScheduler(t testing.TB, name string, st *sched.State) sched.Scheduler {
	t.Helper()
	s, err := sched.New(name, st, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var eqAlgorithms = []string{"NULB", "NALB", "RISA", "RISA-BF"}

// eqStream builds the controlled synthetic stream the equivalence matrix
// uses: the churn ladder's §5.1 mix with stationary lifetimes, loaded to
// ~85% of the binding resource so placements, drops and the controller
// all stay active. Each call returns a fresh, identically configured
// stream — the snapshot contract repositions it by replay.
func eqStream(t testing.TB) workload.Stream {
	t.Helper()
	cfg := eqStreamConfig()
	s, err := cfg.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func eqStreamConfig() workload.SyntheticConfig {
	cfg := workload.DefaultSyntheticConfig()
	cfg.LifetimeStep = 0
	// 1536 units / (6300 tu × 16.5 mean req) ≈ 0.0148 VMs/tu at full
	// occupancy; target 85% of it.
	cfg.MeanInterarrival = 1 / (0.85 * 1536 / (6300 * 16.5))
	cfg.Controller = &workload.UtilizationController{Target: 0.85}
	return cfg
}

// tieredStream is eqStream with the default priority mix stamped on
// arrivals and the cluster overdriven to ~2.5× the binding resource
// (no controller), so higher-tier arrivals keep landing on a full
// datacenter and the preemption path actually fires — a few hundred
// preemptions per cell, pinned non-vacuous by the equivalence test.
func tieredStream(t testing.TB) workload.Stream {
	t.Helper()
	cfg := eqStreamConfig()
	cfg.Tiers = workload.DefaultTierMix()
	cfg.MeanInterarrival = 1 / (2.5 * 1536 / (6300 * 16.5))
	cfg.Controller = nil
	s, err := cfg.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// eqPlan is the fault plan the under-faults equivalence cells share.
func eqPlan(t testing.TB, horizon int64) *faults.Plan {
	t.Helper()
	tcfg := eqTopology()
	plan, err := faults.Generate(faults.GenConfig{
		Seed: 7, Horizon: horizon,
		Racks: tcfg.Racks, BoxesPerRack: tcfg.BoxesPerRack(),
		Box: faults.TierRates{MTBF: 30000, MTTR: 3000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// eqCase is one cell of the equivalence matrix.
type eqCase struct {
	name   string
	sim    func(t testing.TB) Config       // runner config (fault plan, evict, retry)
	stream func(t testing.TB) StreamConfig // stop bounds shared by fresh/warm/resume
	src    func(t testing.TB) workload.Stream
}

func eqCases() []eqCase {
	churn := StreamConfig{Workload: StreamWorkload{MaxArrivals: 2500}, Windows: StreamWindows{Warmup: 12600, Window: 6300}}
	faulty := StreamConfig{Workload: StreamWorkload{Duration: 160000}, Windows: StreamWindows{Warmup: 12600, Window: 6300}}
	return []eqCase{
		{
			name:   "churn",
			sim:    func(testing.TB) Config { return Config{} },
			stream: func(testing.TB) StreamConfig { return churn },
			src:    eqStream,
		},
		{
			name:   "churn-retry",
			sim:    func(testing.TB) Config { return Config{RetryDropped: true} },
			stream: func(testing.TB) StreamConfig { return churn },
			src:    eqStream,
		},
		{
			name: "faults-evict-retry",
			sim: func(t testing.TB) Config {
				return Config{Faults: eqPlan(t, 160000), Evict: true, RetryDropped: true}
			},
			stream: func(testing.TB) StreamConfig { return faulty },
			src:    eqStream,
		},
		{
			// The whole tiered fault surface at once, configured on the
			// stream plane (Config{} keeps the runner plane empty — the
			// two planes reject being mixed): priority mix on arrivals,
			// fault plan, eviction, retry queue and preemption. The
			// snapshot must carry tier counters, per-tier reservoirs and
			// preempted retry entries across the warm/resume boundary.
			name: "tiered-preempt",
			sim:  func(testing.TB) Config { return Config{} },
			stream: func(t testing.TB) StreamConfig {
				cfg := faulty
				cfg.Faults = StreamFaults{Plan: eqPlan(t, 160000), Evict: true, Retry: true, Preempt: true}
				return cfg
			},
			src: tieredStream,
		},
	}
}

// eqRunner builds a pristine state + runner for one cell.
func eqRunner(t testing.TB, alg string, cfg Config) (*sched.State, *Runner) {
	t.Helper()
	st, err := sched.NewState(eqTopology(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, eqScheduler(t, alg, st), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st, r
}

// deterministic strips the wall-clock-derived fields (latency
// percentile estimates and wall times), which legitimately differ
// between two executions of the same simulation. Everything else —
// counters, windows, utilization integrals, sample counts, simulated
// times — must match bit for bit.
func deterministic(ss *SteadyState) SteadyState {
	c := *ss
	c.LatencyP50, c.LatencyP95, c.LatencyP99 = 0, 0, 0
	c.ReplaceP50, c.ReplaceP95, c.ReplaceP99 = 0, 0, 0
	c.SchedulingTime, c.WallTime = 0, 0
	for t := range c.Tiers {
		c.Tiers[t].LatencyP50, c.Tiers[t].LatencyP95, c.Tiers[t].LatencyP99 = 0, 0, 0
	}
	return c
}

func requireEqual(t *testing.T, fresh, cloned *SteadyState) {
	t.Helper()
	f, c := deterministic(fresh), deterministic(cloned)
	if !reflect.DeepEqual(f, c) {
		t.Errorf("cloned run diverged from fresh run:\nfresh:  %+v\ncloned: %+v", f, c)
	}
}

// TestSnapshotEquivalence is the tentpole acceptance suite: for every
// scheduler × scenario, a warm-then-resume run must report windowed
// metrics bit-identical to an uninterrupted fresh run.
func TestSnapshotEquivalence(t *testing.T) {
	const snapAt = 40000
	for _, tc := range eqCases() {
		for _, alg := range eqAlgorithms {
			t.Run(tc.name+"/"+alg, func(t *testing.T) {
				_, fr := eqRunner(t, alg, tc.sim(t))
				fresh, err := fr.RunStream(tc.src(t), tc.stream(t))
				if err != nil {
					t.Fatal(err)
				}

				warmCfg := tc.stream(t)
				warmCfg.Snapshot.At = snapAt
				_, wr := eqRunner(t, alg, tc.sim(t))
				snap, err := wr.WarmStream(tc.src(t), warmCfg)
				if err != nil {
					t.Fatal(err)
				}
				if snap.T != snapAt || snap.LastT >= snapAt {
					t.Fatalf("snapshot boundary: T=%d LastT=%d, want T=%d LastT<T", snap.T, snap.LastT, snapAt)
				}

				_, rr := eqRunner(t, alg, tc.sim(t))
				resumed, err := rr.ResumeStream(tc.src(t), snap, tc.stream(t))
				if err != nil {
					t.Fatal(err)
				}
				requireEqual(t, fresh, resumed)
				if fresh.Windows == nil || len(fresh.Windows) < 4 {
					t.Fatalf("fixture too small: only %d windows", len(fresh.Windows))
				}
				if tc.name == "tiered-preempt" && fresh.Preempted == 0 {
					t.Error("tiered fixture exercised no preemption")
				}
			})
		}
	}
}

// TestSnapshotObservationPurity: arming OnSnapshot on a full run must
// not perturb it, and the mid-run capture must equal WarmStream's.
func TestSnapshotObservationPurity(t *testing.T) {
	cfg := StreamConfig{Workload: StreamWorkload{MaxArrivals: 2000}, Windows: StreamWindows{Warmup: 12600, Window: 6300}}
	_, plain := eqRunner(t, "RISA", Config{})
	want, err := plain.RunStream(eqStream(t), cfg)
	if err != nil {
		t.Fatal(err)
	}

	observed := cfg
	observed.Snapshot.At = 30000
	var mid *Snapshot
	observed.Snapshot.OnSnapshot = func(s *Snapshot) { mid = s }
	_, obs := eqRunner(t, "RISA", Config{})
	got, err := obs.RunStream(eqStream(t), observed)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, want, got)
	if mid == nil {
		t.Fatal("OnSnapshot never fired")
	}

	warm := cfg
	warm.Snapshot.At = 30000
	_, wr := eqRunner(t, "RISA", Config{})
	snap, err := wr.WarmStream(eqStream(t), warm)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshots embed wall-clock observations (SchedulingTime, the
	// reservoirs' sampled latency values); strip those before comparing
	// — everything else must match exactly.
	norm := func(s *Snapshot) *Snapshot {
		c := s.Clone()
		c.Counters = deterministic(&c.Counters)
		c.Lat.Vals, c.Rep.Vals = nil, nil
		for t := range c.TierLat {
			c.TierLat[t].Vals = nil
		}
		return c
	}
	if !reflect.DeepEqual(norm(mid), norm(snap)) {
		t.Error("mid-run snapshot differs from WarmStream snapshot")
	}
	if mid.Lat.N != snap.Lat.N || mid.Lat.Draws != snap.Lat.Draws || len(mid.Lat.Vals) != len(snap.Lat.Vals) {
		t.Error("reservoir positions diverge between mid-run and warm captures")
	}
}

// TestSnapshotSharedAcrossWidths resumes one snapshot from many
// goroutines at once — the worker-pool pattern the experiment ladders
// use — and every resume must agree with the serial one.
func TestSnapshotSharedAcrossWidths(t *testing.T) {
	cfg := StreamConfig{Workload: StreamWorkload{MaxArrivals: 2000}, Windows: StreamWindows{Warmup: 12600, Window: 6300}}
	warm := cfg
	warm.Snapshot.At = 30000
	_, wr := eqRunner(t, "RISA", Config{})
	snap, err := wr.WarmStream(eqStream(t), warm)
	if err != nil {
		t.Fatal(err)
	}
	_, sr := eqRunner(t, "RISA", Config{})
	want, err := sr.ResumeStream(eqStream(t), snap, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const width = 4
	results := make([]*SteadyState, width)
	errs := make([]error, width)
	var wg sync.WaitGroup
	for i := 0; i < width; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := sched.NewState(eqTopology(), network.DefaultConfig())
			if err != nil {
				errs[i] = err
				return
			}
			r, err := NewRunner(st, core.New(st), Config{})
			if err != nil {
				errs[i] = err
				return
			}
			cfgW := workload.DefaultSyntheticConfig()
			cfgW.LifetimeStep = 0
			cfgW.MeanInterarrival = 1 / (0.85 * 1536 / (6300 * 16.5))
			cfgW.Controller = &workload.UtilizationController{Target: 0.85}
			s, err := cfgW.NewStream()
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = r.ResumeStream(s, snap, cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < width; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		requireEqual(t, want, results[i])
	}
}

// TestSnapshotCloneIsDeep: mutating a clone must not reach the original.
func TestSnapshotCloneIsDeep(t *testing.T) {
	warm := StreamConfig{Workload: StreamWorkload{MaxArrivals: 2000}, Windows: StreamWindows{Warmup: 12600, Window: 6300}, Snapshot: StreamSnapshot{At: 30000}}
	_, wr := eqRunner(t, "RISA", Config{Faults: eqPlan(t, 160000), Evict: true, RetryDropped: true})
	snap, err := wr.WarmStream(eqStream(t), warm)
	if err != nil {
		t.Fatal(err)
	}
	clone := snap.Clone()
	if !reflect.DeepEqual(snap, clone) {
		t.Fatal("clone not equal to original")
	}
	if len(clone.Events) > 0 {
		clone.Events[0].T = -99
	}
	if len(clone.State.Assignments) > 0 {
		as := &clone.State.Assignments[0]
		if len(as.CPU.Shares) > 0 {
			as.CPU.Shares[0].Amount = -99
		}
	}
	clone.Windower.Windows = append(clone.Windower.Windows, WindowStats{})
	if reflect.DeepEqual(snap, clone) {
		t.Fatal("mutating the clone reached the original")
	}
}

// TestSnapshotGobRoundtrip: the -snapshot/-restore serialization must
// preserve resumability exactly.
func TestSnapshotGobRoundtrip(t *testing.T) {
	cfg := StreamConfig{Workload: StreamWorkload{MaxArrivals: 2000}, Windows: StreamWindows{Warmup: 12600, Window: 6300}}
	warm := cfg
	warm.Snapshot.At = 30000
	_, wr := eqRunner(t, "RISA", Config{})
	snap, err := wr.WarmStream(eqStream(t), warm)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	_, r1 := eqRunner(t, "RISA", Config{})
	want, err := r1.ResumeStream(eqStream(t), snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, r2 := eqRunner(t, "RISA", Config{})
	got, err := r2.ResumeStream(eqStream(t), decoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, want, got)
}

// TestResumeCrossAlgorithm: the clone-mode ladders warm with one
// scheduler and resume with another; the resumed run must be
// deterministic (the foreign scheduler starts from its zero state).
func TestResumeCrossAlgorithm(t *testing.T) {
	cfg := StreamConfig{Workload: StreamWorkload{MaxArrivals: 2000}, Windows: StreamWindows{Warmup: 12600, Window: 6300}}
	warm := cfg
	warm.Snapshot.At = 30000
	_, wr := eqRunner(t, "RISA", Config{})
	snap, err := wr.WarmStream(eqStream(t), warm)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range eqAlgorithms {
		var prev *SteadyState
		for rep := 0; rep < 2; rep++ {
			_, rr := eqRunner(t, alg, Config{})
			got, err := rr.ResumeStream(eqStream(t), snap, cfg)
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if got.Algorithm != alg {
				t.Fatalf("resumed run labeled %q, want %q", got.Algorithm, alg)
			}
			if prev != nil {
				requireEqual(t, prev, got)
			}
			prev = got
		}
	}
}

// TestResumePlanFreeWarmWithPlan: a fault-free warm snapshot resumed on
// a runner with a plan schedules the plan's events from the snapshot
// point on — deterministically, and with faults actually striking.
func TestResumePlanFreeWarmWithPlan(t *testing.T) {
	cfg := StreamConfig{Workload: StreamWorkload{Duration: 160000}, Windows: StreamWindows{Warmup: 12600, Window: 6300}}
	warm := cfg
	warm.Snapshot.At = 30000
	_, wr := eqRunner(t, "RISA", Config{})
	snap, err := wr.WarmStream(eqStream(t), warm)
	if err != nil {
		t.Fatal(err)
	}
	if snap.PlanLen != -1 {
		t.Fatalf("plan-free warm snapshot has PlanLen %d", snap.PlanLen)
	}
	var prev *SteadyState
	for rep := 0; rep < 2; rep++ {
		_, rr := eqRunner(t, "RISA", Config{Faults: eqPlan(t, 160000), Evict: true})
		got, err := rr.ResumeStream(eqStream(t), snap, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Displaced == 0 {
			t.Error("plan installed on resume displaced nobody — faults never struck")
		}
		if prev != nil {
			requireEqual(t, prev, got)
		}
		prev = got
	}
}

// TestSnapshotErrors covers the rejection paths.
func TestSnapshotErrors(t *testing.T) {
	cfg := StreamConfig{Workload: StreamWorkload{MaxArrivals: 500}, Windows: StreamWindows{Warmup: 0, Window: 1000}}

	t.Run("warm-requires-snapshot-at", func(t *testing.T) {
		_, r := eqRunner(t, "RISA", Config{})
		if _, err := r.WarmStream(eqStream(t), cfg); err == nil {
			t.Fatal("WarmStream without SnapshotAt succeeded")
		}
	})
	t.Run("on-snapshot-requires-snapshot-at", func(t *testing.T) {
		bad := cfg
		bad.Snapshot.OnSnapshot = func(*Snapshot) {}
		_, r := eqRunner(t, "RISA", Config{})
		if _, err := r.RunStream(eqStream(t), bad); err == nil {
			t.Fatal("OnSnapshot without SnapshotAt succeeded")
		}
	})
	t.Run("stream-ends-before-boundary", func(t *testing.T) {
		warm := cfg
		warm.Snapshot.At = 1 << 40
		_, r := eqRunner(t, "RISA", Config{})
		if _, err := r.WarmStream(eqStream(t), warm); err == nil {
			t.Fatal("snapshot point past the run's end succeeded")
		}
	})
	t.Run("trace-stream-supported", func(t *testing.T) {
		// TraceStream snapshots too (its position is just an index).
		tr := &workload.Trace{Name: "t"}
		for i := 0; i < 200; i++ {
			tr.VMs = append(tr.VMs, workload.VM{ID: i, Arrival: int64(i * 10), Lifetime: 300, Req: units.Vec(2, 2, 2)})
		}
		warm := StreamConfig{Workload: StreamWorkload{MaxArrivals: 200}, Windows: StreamWindows{Window: 500}, Snapshot: StreamSnapshot{At: 900}}
		_, r := eqRunner(t, "RISA", Config{})
		snap, err := r.WarmStream(workload.NewTraceStream(tr), warm)
		if err != nil {
			t.Fatal(err)
		}
		_, r2 := eqRunner(t, "RISA", Config{})
		if _, err := r2.ResumeStream(workload.NewTraceStream(tr), snap, StreamConfig{Workload: StreamWorkload{MaxArrivals: 200}, Windows: StreamWindows{Window: 500}}); err != nil {
			t.Fatal(err)
		}
	})

	warmCfg := cfg
	warmCfg.Snapshot.At = 2000
	_, wr := eqRunner(t, "RISA", Config{})
	snap, err := wr.WarmStream(eqStream(t), warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	plannedCfg := Config{Faults: eqPlan(t, 160000)}
	_, pwr := eqRunner(t, "RISA", plannedCfg)
	warmPlanned := warmCfg
	warmPlanned.Workload.Duration, warmPlanned.Workload.MaxArrivals = 160000, 0
	plannedSnap, err := pwr.WarmStream(eqStream(t), warmPlanned)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("resume-plan-length-mismatch", func(t *testing.T) {
		_, rr := eqRunner(t, "RISA", Config{})
		if _, err := rr.ResumeStream(eqStream(t), plannedSnap, cfg); err == nil {
			t.Fatal("plan-bearing snapshot resumed without a plan")
		}
	})
	t.Run("resume-with-injections", func(t *testing.T) {
		_, rr := eqRunner(t, "RISA", Config{Injections: []Injection{{T: 5000, Do: func(*sched.State) {}}}})
		if _, err := rr.ResumeStream(eqStream(t), snap, cfg); err == nil {
			t.Fatal("resume with ad-hoc injections succeeded")
		}
	})
	t.Run("capture-with-pending-injection", func(t *testing.T) {
		inj := cfg
		inj.Snapshot.At = 2000
		_, r := eqRunner(t, "RISA", Config{Injections: []Injection{{T: 1 << 30, Do: func(*sched.State) {}}}})
		if _, err := r.WarmStream(eqStream(t), inj); err == nil {
			t.Fatal("capture with a pending injection succeeded")
		}
	})
	t.Run("restore-into-dirty-state", func(t *testing.T) {
		st, r := eqRunner(t, "RISA", Config{})
		if _, err := r.sch.Schedule(workload.VM{ID: 1, Lifetime: 10, Req: units.Vec(4, 4, 4)}); err != nil {
			t.Fatal(err)
		}
		_ = st
		if _, err := r.ResumeStream(eqStream(t), snap, cfg); err == nil {
			t.Fatal("resume into a dirty state succeeded")
		}
	})
	t.Run("restore-dimension-mismatch", func(t *testing.T) {
		tcfg := eqTopology()
		tcfg.Racks = 4
		st, err := sched.NewState(tcfg, network.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(st, core.New(st), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.ResumeStream(eqStream(t), snap, cfg); err == nil {
			t.Fatal("resume onto a smaller cluster succeeded")
		}
	})
}

// TestCaptureRestoreStateRoundtrip exercises the datacenter-plane
// primitives directly: capture a loaded, partially failed state, restore
// it into a pristine twin, and require every observable to match.
func TestCaptureRestoreStateRoundtrip(t *testing.T) {
	st, err := sched.NewState(eqTopology(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sch := core.New(st)
	var live []*sched.Assignment
	for i := 0; i < 120; i++ {
		a, err := sch.Schedule(workload.VM{ID: i, Lifetime: 1000, Req: units.Vec(1+units.Amount(i%16), 1+units.Amount(i%24), 64)})
		if err == nil {
			live = append(live, a)
		}
	}
	if len(live) < 100 {
		t.Fatalf("only %d live placements", len(live))
	}
	// Release a few to fragment, then fail a box and a link.
	for i := 0; i < len(live); i += 7 {
		sch.Release(live[i])
		live[i] = nil
	}
	compact := live[:0]
	for _, a := range live {
		if a != nil {
			compact = append(compact, a)
		}
	}
	live = compact
	boxes := st.Cluster.Boxes()
	st.Cluster.SetBoxFailed(boxes[3], true)
	failLink, err := st.Fabric.LinkByRef(network.LinkRef{Tier: network.BoxUplink, Rack: 0, Box: 0, Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	st.Fabric.SetLinkFailed(failLink, true)

	snap, err := CaptureState(st, sch, live)
	if err != nil {
		t.Fatal(err)
	}

	st2, err := sched.NewState(eqTopology(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sch2 := core.New(st2)
	live2, err := RestoreState(st2, sch2, snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(live2) != len(live) {
		t.Fatalf("restored %d assignments, want %d", len(live2), len(live))
	}
	if err := st2.Cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Fabric.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range units.Resources() {
		if st.Cluster.TotalFree(k) != st2.Cluster.TotalFree(k) {
			t.Errorf("%v free: %d vs %d", k, st.Cluster.TotalFree(k), st2.Cluster.TotalFree(k))
		}
	}
	if st.Fabric.IntraRackFree() != st2.Fabric.IntraRackFree() ||
		st.Fabric.InterRackFree() != st2.Fabric.InterRackFree() ||
		st.Fabric.InterPodFree() != st2.Fabric.InterPodFree() {
		t.Error("fabric aggregate frees diverge after restore")
	}
	snap2, err := CaptureState(st2, sch2, live2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, snap2) {
		t.Error("re-captured state differs from the original capture")
	}

	// Both instances must now make identical decisions.
	for i := 0; i < 50; i++ {
		vm := workload.VM{ID: 10000 + i, Lifetime: 10, Req: units.Vec(units.Amount(1+i%8), units.Amount(1+i%8), 32)}
		a1, err1 := sch.Schedule(vm)
		a2, err2 := sch2.Schedule(vm)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("decision %d diverged: %v vs %v", i, err1, err2)
		}
		if err1 == nil {
			if sig1, sig2 := placementSig(st, a1), placementSig(st2, a2); sig1 != sig2 {
				t.Fatalf("decision %d placed differently: %s vs %s", i, sig1, sig2)
			}
		}
	}
}

// placementSig summarizes where an assignment landed, for decision
// comparison across instances.
func placementSig(st *sched.State, a *sched.Assignment) string {
	bpr := st.Cluster.Config().BoxesPerRack()
	box := func(p topology.Placement) int {
		if p.IsZero() {
			return -1
		}
		return p.Box.Rack()*bpr + p.Box.Index()
	}
	return fmt.Sprintf("%d/%d/%d", box(a.CPU), box(a.RAM), box(a.STO))
}

// TestReservoirSnapshotPercentiles pins satellite 4: a restored
// reservoir fed the same remaining values reports bit-identical
// percentiles, including its sampling RNG position.
func TestReservoirSnapshotPercentiles(t *testing.T) {
	r := newReservoir(8, 42)
	for i := 0; i < 100; i++ {
		r.add(float64(i * 37 % 101))
	}
	st := r.state()
	r2 := restoreReservoir(st)

	for i := 100; i < 300; i++ {
		v := float64(i * 61 % 211)
		r.add(v)
		r2.add(v)
	}
	if r.samples() != r2.samples() {
		t.Fatalf("samples: %d vs %d", r.samples(), r2.samples())
	}
	for _, p := range []float64{50, 95, 99} {
		if a, b := r.percentile(p), r2.percentile(p); a != b {
			t.Errorf("p%.0f: %g vs %g", p, a, b)
		}
	}
	if !reflect.DeepEqual(r.vals, r2.vals) {
		t.Error("reservoir buffers diverged — sampling RNG not restored to position")
	}
}
