// Snapshot support: deterministic capture of a complete mid-run
// simulation state and its restoration into a pristine datacenter, such
// that a restored run is bit-identical to the original continuing.
//
// Capture happens only at an event boundary (every event strictly before
// the snapshot point processed, nothing at or after it started), so no
// same-instant fault burst or half-applied transaction can be in flight.
// A snapshot holds plain serializable data — no live pointers: compute
// placements are recorded as exact per-brick shares, optical flows as
// structural link paths, heap entries as (time, kind, seq, plan-index,
// VM, assignment-index) tuples in the heap's own array order (the order
// evictDisplaced scans), and every RNG as (seed, draw count) replayed on
// restore (workload.CountingSource). Restoration replays placements and
// flows onto a pristine state first and applies hardware failures
// afterwards; the resulting brick, link and aggregate values equal the
// original's exactly, because releases return shares to bricks even on
// failed hardware, so live placements fully determine the planes.
//
// The determinism contract: resuming a snapshot under the same
// configuration (same stream construction, same stop bounds, same fault
// plan, same scheduler) yields windowed metrics bit-identical to the
// original run continuing, wall-clock-derived values (latency
// percentiles, SchedulingTime, WallTime) excepted. A snapshot is
// immutable after capture — ResumeStream copies out of it and never
// writes into it — so one snapshot may warm many cells, concurrently,
// without cloning; Clone exists for callers that want an owned copy.
package sim

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// PlacementState is the serializable form of one compute placement: the
// box's rack-major global index and the exact per-brick shares. Box is
// -1 for the zero placement (resource not requested).
type PlacementState struct {
	Box    int
	Shares []topology.BrickShare
	Total  units.Amount
}

// FlowState is the serializable form of one optical flow: the exact
// links it reserves bandwidth on, by structural address. Present
// distinguishes a real flow from an absent one (gob cannot round-trip
// that through a nil pointer inside a slice element).
type FlowState struct {
	Present             bool
	BW                  units.Bandwidth
	Links               []network.LinkRef
	InterRack, InterPod bool
}

// AssignmentState is the serializable form of one live assignment.
type AssignmentState struct {
	VM            workload.VM
	CPU, RAM, STO PlacementState
	CPURAM        FlowState
	RAMSTO        FlowState
}

// StateSnapshot captures the datacenter planes — cluster occupancy,
// fabric occupancy, hardware failures — plus the scheduler's carried
// decision state, as the set of live assignments that produce them.
// It is the part of a Snapshot that FuzzSnapshotRoundtrip and the
// conformance suite's SnapshotHygiene exercise directly, without an
// event loop around it.
type StateSnapshot struct {
	Racks        int
	BoxesPerRack int
	Assignments  []AssignmentState
	FailedBoxes  []int // rack-major global box indices
	FailedLinks  []network.LinkRef

	// SchedName names the scheduler the state was captured under; Sched
	// holds its carried decision state when it has any (HasSched).
	// Restore replays Sched only onto a scheduler of the same name —
	// cross-algorithm restores (the experiment ladders' clone mode) start
	// the new scheduler from its zero state instead.
	SchedName string
	Sched     sched.SchedulerState
	HasSched  bool
}

// EventState is one serialized event-heap entry. A references the
// snapshot's Assignments by index (-1 for none — arrivals, fault events,
// and the ghost departures of displaced VMs). Entries are stored in the
// heap's backing-array order and restored verbatim, preserving both the
// heap property (any valid heap array round-trips) and the array scan
// order evictDisplaced depends on.
type EventState struct {
	T    int64
	Kind int
	Seq  int
	FX   int
	VM   workload.VM
	A    int
}

// QueuedVMState is one serialized retry-queue entry. Seq is the entry's
// admission sequence (zero in snapshots written before sequences
// existed — old snapshots decode and resume unchanged, because equal
// sequences keep append order).
type QueuedVMState struct {
	VM        workload.VM
	Displaced bool
	// Preempted marks a preemption victim awaiting re-placement (false
	// in snapshots from before preemption existed).
	Preempted bool
	Seq       int
}

// ReservoirState is the serializable position of one latency reservoir:
// its buffer plus the (seed, draw-count) replay coordinates of its
// sampling RNG, so a restored run keeps sampling exactly as the
// original would have.
type ReservoirState struct {
	K     int
	N     int64
	Seed  int64
	Draws uint64
	Vals  []float64
}

// WindowerState is the serializable position of the windowed-metrics
// integrator: the open window, its partial integrals, every closed
// window, and the overall measured integral.
type WindowerState struct {
	Warmup, Window int64
	Cur            WindowStats
	CurIntegral    [units.NumResources]float64
	Windows        []WindowStats
	Overall        [units.NumResources]float64
	Val            [units.NumResources]float64
	LastT          int64
}

// Snapshot is the complete state of a RunStream execution at an event
// boundary. It is plain data: gob-serializable (Encode/DecodeSnapshot),
// deep-copyable (Clone), and immutable under ResumeStream.
type Snapshot struct {
	// T is the snapshot boundary (the arming StreamSnapshot.At):
	// every event with time < T is reflected in the state, nothing at or
	// after T is. LastT is the time of the last event actually processed
	// (≤ T).
	T     int64
	LastT int64

	State StateSnapshot

	// Events is the pending event heap in backing-array order; Seq the
	// next event sequence number.
	Events []EventState
	Seq    int

	Resident int

	Waiting []QueuedVMState
	WaitSum float64
	// AdmitSeq is the retry queue's admission counter (zero in snapshots
	// from before admission sequences existed).
	AdmitSeq int

	// PlanLen is the length of the fault plan the run was driven by, or
	// -1 when it had none. Resuming a snapshot with PlanLen ≥ 0 requires
	// the runner to carry a plan of exactly that length (the heap's fault
	// events index into it); resuming a plan-free snapshot (PlanLen < 0)
	// with a runner that has a plan schedules the plan's events from T on
	// — the clone-mode ladders' "faults begin after the warm point".
	PlanLen   int
	DownCount []int

	// Counters is the partial SteadyState at the boundary (Windows nil —
	// they live in Windower until the run finishes; WallTime zero — wall
	// clock restarts on resume).
	Counters SteadyState
	Windower WindowerState
	Lat, Rep ReservoirState
	// TierLat holds the per-tier direct-decision latency reservoirs
	// (zero-valued in snapshots from before priority tiers existed, which
	// resume with empty degenerate reservoirs).
	TierLat [workload.NumTiers]ReservoirState

	// Stream is the workload stream's replay position, captured after
	// drawing PendingVM: the stream's next yield is PendingVM's
	// successor. More mirrors the run's arrival-budget flag.
	Stream    workload.StreamState
	PendingVM workload.VM
	More      bool
}

// Clone returns a deep copy sharing nothing with s. ResumeStream never
// mutates a snapshot, so cloning is only needed when a caller wants an
// independently owned copy (e.g. to serialize one while resuming
// another); the experiment ladders resume one snapshot many times
// directly.
func (s *Snapshot) Clone() *Snapshot {
	c := *s
	c.State.Assignments = make([]AssignmentState, len(s.State.Assignments))
	for i, a := range s.State.Assignments {
		a.CPU.Shares = append([]topology.BrickShare(nil), a.CPU.Shares...)
		a.RAM.Shares = append([]topology.BrickShare(nil), a.RAM.Shares...)
		a.STO.Shares = append([]topology.BrickShare(nil), a.STO.Shares...)
		a.CPURAM.Links = append([]network.LinkRef(nil), a.CPURAM.Links...)
		a.RAMSTO.Links = append([]network.LinkRef(nil), a.RAMSTO.Links...)
		c.State.Assignments[i] = a
	}
	c.State.FailedBoxes = append([]int(nil), s.State.FailedBoxes...)
	c.State.FailedLinks = append([]network.LinkRef(nil), s.State.FailedLinks...)
	c.State.Sched.BoxCursors = append([][units.NumResources]int(nil), s.State.Sched.BoxCursors...)
	c.Events = append([]EventState(nil), s.Events...)
	c.Waiting = append([]QueuedVMState(nil), s.Waiting...)
	c.DownCount = append([]int(nil), s.DownCount...)
	c.Counters.Windows = append([]WindowStats(nil), s.Counters.Windows...)
	c.Windower.Windows = append([]WindowStats(nil), s.Windower.Windows...)
	c.Lat.Vals = append([]float64(nil), s.Lat.Vals...)
	c.Rep.Vals = append([]float64(nil), s.Rep.Vals...)
	for t := range c.TierLat {
		c.TierLat[t].Vals = append([]float64(nil), s.TierLat[t].Vals...)
	}
	return &c
}

// Encode writes the snapshot in gob form (the -snapshot/-restore CLI
// crash-recovery format).
func (s *Snapshot) Encode(w io.Writer) error { return gob.NewEncoder(w).Encode(s) }

// DecodeSnapshot reads a snapshot written by Encode.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// CaptureState captures the datacenter planes and the scheduler's
// carried state, with the live assignments serialized in the given
// order (callers that also serialize an event heap pass them in heap
// order so events can reference them by index). The state is read, not
// mutated.
func CaptureState(st *sched.State, sch sched.Scheduler, live []*sched.Assignment) (*StateSnapshot, error) {
	cl := st.Cluster
	bpr := cl.Config().BoxesPerRack()
	snap := &StateSnapshot{
		Racks:        cl.NumRacks(),
		BoxesPerRack: bpr,
		FailedBoxes:  cl.FailedBoxes(),
		FailedLinks:  st.Fabric.FailedLinks(),
	}
	snap.Assignments = make([]AssignmentState, 0, len(live))
	for _, a := range live {
		if a == nil {
			return nil, fmt.Errorf("sim: cannot capture a nil assignment")
		}
		snap.Assignments = append(snap.Assignments, AssignmentState{
			VM:     a.VM,
			CPU:    capturePlacement(bpr, a.CPU),
			RAM:    capturePlacement(bpr, a.RAM),
			STO:    capturePlacement(bpr, a.STO),
			CPURAM: captureFlow(st.Fabric, a.CPURAMFlow),
			RAMSTO: captureFlow(st.Fabric, a.RAMSTOFlow),
		})
	}
	if sch != nil {
		snap.SchedName = sch.Name()
		if ss, ok := sch.(sched.StatefulScheduler); ok {
			snap.Sched = ss.SchedulerState()
			snap.HasSched = true
		}
	}
	return snap, nil
}

// capturePlacement serializes one placement (Box -1 for the zero one).
func capturePlacement(boxesPerRack int, p topology.Placement) PlacementState {
	if p.IsZero() {
		return PlacementState{Box: -1}
	}
	return PlacementState{
		Box:    p.Box.Rack()*boxesPerRack + p.Box.Index(),
		Shares: append([]topology.BrickShare(nil), p.Shares...),
		Total:  p.Total,
	}
}

// captureFlow serializes one flow (zero FlowState for nil).
func captureFlow(f *network.Fabric, fl *network.Flow) FlowState {
	if fl == nil {
		return FlowState{}
	}
	fs := FlowState{Present: true, BW: fl.BW(), InterRack: fl.InterRack(), InterPod: fl.InterPod()}
	for _, l := range fl.Links() {
		fs.Links = append(fs.Links, f.Ref(l))
	}
	return fs
}

// RestoreState replays a captured state onto a pristine st: every live
// assignment's placements are re-carved with their exact brick shares
// and its flows re-reserved on their exact links, then hardware
// failures are applied, then the scheduler's carried state is replayed
// (only when sch bears the same name the state was captured under —
// cross-algorithm restores start sch from its zero state). It returns
// the restored assignments in the snapshot's order. On error the state
// is partially mutated and must be discarded.
func RestoreState(st *sched.State, sch sched.Scheduler, snap *StateSnapshot) ([]*sched.Assignment, error) {
	cl := st.Cluster
	if cl.NumRacks() != snap.Racks || cl.Config().BoxesPerRack() != snap.BoxesPerRack {
		return nil, fmt.Errorf("sim: snapshot is for a %d-rack × %d-box cluster, state has %d × %d",
			snap.Racks, snap.BoxesPerRack, cl.NumRacks(), cl.Config().BoxesPerRack())
	}
	if err := checkPristine(st); err != nil {
		return nil, err
	}
	boxes := cl.Boxes()
	live := make([]*sched.Assignment, 0, len(snap.Assignments))
	for i := range snap.Assignments {
		as := &snap.Assignments[i]
		cpu, err := restorePlacement(cl, boxes, as.CPU)
		if err != nil {
			return nil, fmt.Errorf("sim: VM %d CPU: %w", as.VM.ID, err)
		}
		ram, err := restorePlacement(cl, boxes, as.RAM)
		if err != nil {
			return nil, fmt.Errorf("sim: VM %d RAM: %w", as.VM.ID, err)
		}
		sto, err := restorePlacement(cl, boxes, as.STO)
		if err != nil {
			return nil, fmt.Errorf("sim: VM %d STO: %w", as.VM.ID, err)
		}
		cpuram, err := restoreFlow(st.Fabric, as.CPURAM)
		if err != nil {
			return nil, fmt.Errorf("sim: VM %d CPU-RAM flow: %w", as.VM.ID, err)
		}
		ramsto, err := restoreFlow(st.Fabric, as.RAMSTO)
		if err != nil {
			return nil, fmt.Errorf("sim: VM %d RAM-STO flow: %w", as.VM.ID, err)
		}
		live = append(live, st.RestoreAssignment(as.VM, cpu, ram, sto, cpuram, ramsto))
	}
	for _, bi := range snap.FailedBoxes {
		if bi < 0 || bi >= len(boxes) {
			return nil, fmt.Errorf("sim: failed box index %d out of range", bi)
		}
		cl.SetBoxFailed(boxes[bi], true)
	}
	for _, ref := range snap.FailedLinks {
		l, err := st.Fabric.LinkByRef(ref)
		if err != nil {
			return nil, err
		}
		st.Fabric.SetLinkFailed(l, true)
	}
	if snap.HasSched && sch != nil && sch.Name() == snap.SchedName {
		if ss, ok := sch.(sched.StatefulScheduler); ok {
			ss.RestoreSchedulerState(snap.Sched)
		}
	}
	return live, nil
}

// checkPristine rejects restore targets that already carry state: a
// freshly built State has every plane at full capacity and no failures.
func checkPristine(st *sched.State) error {
	cl := st.Cluster
	for _, k := range units.Resources() {
		if cl.TotalFree(k) != cl.TotalCapacity(k) {
			return fmt.Errorf("sim: restore target not pristine: %v free %d != capacity %d",
				k, cl.TotalFree(k), cl.TotalCapacity(k))
		}
	}
	f := st.Fabric
	if f.IntraRackFree() != f.IntraRackCapacity() ||
		f.InterRackFree() != f.InterRackCapacity() ||
		f.InterPodFree() != f.InterPodCapacity() {
		return fmt.Errorf("sim: restore target not pristine: fabric carries reservations")
	}
	if len(cl.FailedBoxes()) > 0 || len(f.FailedLinks()) > 0 {
		return fmt.Errorf("sim: restore target not pristine: hardware failures present")
	}
	return nil
}

// restorePlacement re-carves one serialized placement.
func restorePlacement(cl *topology.Cluster, boxes []*topology.Box, ps PlacementState) (topology.Placement, error) {
	if ps.Box < 0 {
		return topology.Placement{}, nil
	}
	if ps.Box >= len(boxes) {
		return topology.Placement{}, fmt.Errorf("box index %d out of range", ps.Box)
	}
	return cl.RestorePlacement(boxes[ps.Box], ps.Shares)
}

// restoreFlow re-reserves one serialized flow (nil for the absent one).
func restoreFlow(f *network.Fabric, fs FlowState) (*network.Flow, error) {
	if !fs.Present {
		return nil, nil
	}
	return f.RestoreFlow(fs.BW, fs.Links, fs.InterRack, fs.InterPod)
}

// capture assembles the full Snapshot at the current event boundary.
// It only reads — the run can continue unperturbed afterwards.
func (sr *streamRun) capture() (*Snapshot, error) {
	if sr.burstFail || sr.burstRepair {
		// Unreachable: a same-instant burst never spans the boundary
		// (its events share one time < Snapshot.At). Guard loudly anyway.
		return nil, fmt.Errorf("sim: internal: snapshot inside a same-instant fault burst")
	}
	snapper, ok := sr.s.(workload.StreamSnapshotter)
	if !ok {
		return nil, fmt.Errorf("sim: stream %q does not support snapshots", sr.s.Name())
	}
	snap := &Snapshot{
		T:        sr.snapAt,
		LastT:    sr.lastT,
		Seq:      sr.seq,
		Resident: sr.resident,
		WaitSum:  sr.waitSum,
		AdmitSeq: sr.admitSeq,
		PlanLen:  -1,
	}
	live := make([]*sched.Assignment, 0, sr.h.Len())
	snap.Events = make([]EventState, 0, sr.h.Len())
	for i := range sr.h.s {
		e := &sr.h.s[i]
		if e.kind == inject {
			return nil, fmt.Errorf("sim: cannot snapshot with a pending ad-hoc injection at t=%d (closures are not serializable)", e.t)
		}
		es := EventState{T: e.t, Kind: int(e.kind), Seq: e.seq, FX: e.fx, VM: e.vm, A: -1}
		if e.kind == departure && e.a != nil {
			es.A = len(live)
			live = append(live, e.a)
		}
		snap.Events = append(snap.Events, es)
	}
	state, err := CaptureState(sr.r.st, sr.r.sch, live)
	if err != nil {
		return nil, err
	}
	snap.State = *state
	for i := sr.wHead; i < len(sr.waiting); i++ {
		q := sr.waiting[i]
		snap.Waiting = append(snap.Waiting, QueuedVMState{VM: q.vm, Displaced: q.displaced, Preempted: q.preempted, Seq: q.seq})
	}
	if sr.r.plan != nil {
		snap.PlanLen = len(sr.r.plan.Events)
		snap.DownCount = append([]int(nil), sr.r.downCount...)
	}
	snap.Counters = *sr.res
	snap.Counters.Windows = nil // res.Windows only materializes at finish
	snap.Windower = sr.wind.state()
	snap.Lat = sr.lat.state()
	snap.Rep = sr.rep.state()
	for t := range sr.tlat {
		snap.TierLat[t] = sr.tlat[t].state()
	}
	snap.Stream = snapper.StreamState()
	snap.PendingVM = sr.pending
	snap.More = sr.more
	return snap, nil
}

// WarmStream runs the stream up to cfg.Snapshot.At (required) and returns
// the snapshot captured there, leaving the runner's state warm. The
// warm configuration's stop bounds (MaxArrivals, Duration, Warmup,
// Window) must equal the resume configuration's for a resumed run to be
// bit-identical to an uninterrupted one — the experiment ladders pass
// the same StreamConfig to both. It fails if the run ends before the
// snapshot point.
func (r *Runner) WarmStream(s workload.Stream, cfg StreamConfig) (*Snapshot, error) {
	if cfg.Snapshot.At <= 0 {
		return nil, fmt.Errorf("sim: WarmStream requires Snapshot.At")
	}
	sr, err := r.newStreamRun(s, cfg)
	if err != nil {
		return nil, err
	}
	sr.stopAtSnap = true
	if err := sr.loop(); err != nil {
		return nil, err
	}
	if sr.snap == nil {
		return nil, fmt.Errorf("sim: stream %q ended at t=%d, before the snapshot point %d",
			s.Name(), sr.lastT, cfg.Snapshot.At)
	}
	return sr.snap, nil
}

// ResumeStream continues a snapshotted run on this runner: the runner's
// state must be pristine (it is restored from the snapshot), s must be
// a pristine stream built with the same configuration as the snapshot's
// (it is repositioned by replay), and cfg must carry the same stop
// bounds as the warm run's for bit-identical equivalence (Warmup,
// Window and the reservoir parameters are inherited from the snapshot;
// cfg.Workload.Drain, Snapshot.At and OnSnapshot apply to the resumed part).
//
// Fault-plan linkage follows Snapshot.PlanLen: a snapshot taken under a
// plan requires this runner to carry an equally long plan (the pending
// fault events reference it by index); a plan-free snapshot resumed on
// a runner with a plan schedules the plan's events from the snapshot
// point on — events before it are dropped, which is exactly the
// clone-mode ladders' fault-free warm semantics. Ad-hoc injections are
// not resumable.
//
// The snapshot itself is never written to: many cells may resume the
// same snapshot, including concurrently from separate goroutines each
// with their own runner and stream.
func (r *Runner) ResumeStream(s workload.Stream, snap *Snapshot, cfg StreamConfig) (*SteadyState, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Concurrency.Agents > 1 {
		return nil, fmt.Errorf("sim: agent mode (Agents=%d) cannot resume a snapshot", cfg.Concurrency.Agents)
	}
	if err := r.adoptStreamFaults(cfg.Faults); err != nil {
		return nil, err
	}
	if len(r.injections) > 0 {
		return nil, fmt.Errorf("sim: cannot resume with ad-hoc injections (not part of the snapshot)")
	}
	if snap.PlanLen >= 0 {
		if r.plan == nil || len(r.plan.Events) != snap.PlanLen {
			got := 0
			if r.plan != nil {
				got = len(r.plan.Events)
			}
			return nil, fmt.Errorf("sim: snapshot was taken under a %d-event fault plan, runner has %d", snap.PlanLen, got)
		}
	}
	snapper, ok := s.(workload.StreamSnapshotter)
	if !ok {
		return nil, fmt.Errorf("sim: stream %q does not support snapshots", s.Name())
	}
	live, err := RestoreState(r.st, r.sch, &snap.State)
	if err != nil {
		return nil, err
	}
	if err := snapper.RestoreStreamState(snap.Stream); err != nil {
		return nil, err
	}

	obs, _ := s.(workload.UtilizationObserver)
	resCopy := snap.Counters
	resCopy.Algorithm = r.sch.Name()
	resCopy.Workload = s.Name()
	resCopy.Windows = nil
	sr := &streamRun{
		r: r, s: s, cfg: cfg, obs: obs,
		res:      &resCopy,
		lat:      restoreReservoir(snap.Lat),
		rep:      restoreReservoir(snap.Rep),
		wind:     restoreWindower(snap.Windower),
		seq:      snap.Seq,
		resident: snap.Resident,
		lastT:    snap.LastT,
		waitSum:  snap.WaitSum,
		pending:  snap.PendingVM,
		more:     snap.More,
		admitSeq: snap.AdmitSeq,
		snapAt:   cfg.Snapshot.At,
		onSnap:   cfg.Snapshot.OnSnapshot,
	}
	for t := range sr.tlat {
		sr.tlat[t] = restoreReservoir(snap.TierLat[t])
	}
	// Rebuild the heap's backing array verbatim: the snapshot recorded a
	// valid heap in array order, so assigning it preserves both the heap
	// property and the eviction scan order.
	sr.h.s = make([]event, len(snap.Events))
	for i, es := range snap.Events {
		e := event{t: es.T, kind: eventKind(es.Kind), seq: es.Seq, fx: es.FX, vm: es.VM}
		if es.A >= 0 {
			if es.A >= len(live) {
				return nil, fmt.Errorf("sim: event %d references assignment %d of %d", i, es.A, len(live))
			}
			e.a = live[es.A]
		}
		sr.h.s[i] = e
	}
	for _, q := range snap.Waiting {
		sr.waiting = append(sr.waiting, queuedVM{vm: q.VM, displaced: q.Displaced, preempted: q.Preempted, seq: q.Seq})
	}
	r.resetFaultCounts()
	if snap.PlanLen >= 0 {
		copy(r.downCount, snap.DownCount)
	} else if r.plan != nil {
		// Plan-free warm, planned resume: faults begin after the
		// snapshot point. Events before it never apply.
		for i := range r.plan.Events {
			if r.plan.Events[i].T >= snap.T {
				sr.h.Push(event{t: r.plan.Events[i].T, kind: fault, seq: sr.seq, fx: i})
				sr.seq++
			}
		}
	}
	// The pending arrival was drawn under the warm bounds; re-apply this
	// configuration's Duration to it (a no-op when the bounds agree). If
	// it no longer fits, the run is already past its bound: stop before
	// processing anything, exactly as a fresh run stops at its last
	// in-bound arrival without draining the resident departures.
	ranOut := false
	if sr.more && cfg.Workload.Duration > 0 && sr.pending.Arrival > cfg.Workload.Duration {
		sr.more = false
		sr.res.TotalArrivals--
		ranOut = true
	}
	sr.wallStart = time.Now()
	if !ranOut {
		if err := sr.loop(); err != nil {
			return nil, err
		}
	}
	return sr.finish(), nil
}

// state captures the windower's position.
func (w *windower) state() WindowerState {
	return WindowerState{
		Warmup: w.warmup, Window: w.window,
		Cur: w.cur, CurIntegral: w.curIntegral,
		Windows: append([]WindowStats(nil), w.windows...),
		Overall: w.overall, Val: w.val, LastT: w.lastT,
	}
}

// restoreWindower rebuilds a windower from its captured position.
func restoreWindower(ws WindowerState) *windower {
	return &windower{
		warmup: ws.Warmup, window: ws.Window,
		cur: ws.Cur, curIntegral: ws.CurIntegral,
		windows: append([]WindowStats(nil), ws.Windows...),
		overall: ws.Overall, val: ws.Val, lastT: ws.LastT,
	}
}

// state captures the reservoir's position.
func (r *reservoir) state() ReservoirState {
	return ReservoirState{
		K: r.k, N: r.n, Seed: r.seed, Draws: r.src.Draws(),
		Vals: append([]float64(nil), r.vals...),
	}
}

// restoreReservoir rebuilds a reservoir from its captured position: the
// buffer is copied and the sampling RNG replayed to its exact draw.
func restoreReservoir(st ReservoirState) *reservoir {
	r := newReservoir(st.K, st.Seed)
	r.src.Replay(st.Seed, st.Draws)
	r.n = st.N
	r.vals = append(r.vals, st.Vals...)
	return r
}
