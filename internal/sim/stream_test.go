package sim

import (
	"testing"

	"risa/internal/core"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// streamTrace is a trace big enough for meaningful windows: 400 VMs,
// one arrival every 5 time units, fixed 200 tu lifetimes.
func streamTrace() *workload.Trace {
	tr := &workload.Trace{Name: "stream-fixture"}
	for i := 0; i < 400; i++ {
		tr.VMs = append(tr.VMs, workload.VM{
			ID: i, Arrival: int64(i * 5), Lifetime: 200, Req: units.Vec(4, 8, 128),
		})
	}
	return tr
}

func TestRunStreamMatchesFiniteRun(t *testing.T) {
	tr := streamTrace()
	_, r1 := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
	res, err := r1.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	_, r2 := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
	ss, err := r2.RunStream(workload.NewTraceStream(tr), StreamConfig{Workload: StreamWorkload{MaxArrivals: tr.Len()}, Windows: StreamWindows{Window: 100}})
	if err != nil {
		t.Fatal(err)
	}
	// The stream run stops at the last arrival instead of draining, but
	// every placement decision is shared with the finite run.
	if ss.TotalArrivals != tr.Len() || ss.TotalAccepted != res.Scheduled || ss.TotalDropped != res.Dropped {
		t.Errorf("stream run arrivals/accepted/dropped = %d/%d/%d, finite run scheduled/dropped = %d/%d",
			ss.TotalArrivals, ss.TotalAccepted, ss.TotalDropped, res.Scheduled, res.Dropped)
	}
	if ss.Workload != tr.Name || ss.Algorithm != "RISA" {
		t.Errorf("labels: %s/%s", ss.Algorithm, ss.Workload)
	}
	if ss.End != tr.VMs[tr.Len()-1].Arrival {
		t.Errorf("end = %d, want last arrival %d", ss.End, tr.VMs[tr.Len()-1].Arrival)
	}
}

func TestRunStreamWarmupAndWindows(t *testing.T) {
	tr := streamTrace() // arrivals at 0,5,...,1995
	_, r := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
	ss, err := r.RunStream(workload.NewTraceStream(tr), StreamConfig{Workload: StreamWorkload{MaxArrivals: tr.Len()}, Windows: StreamWindows{Warmup: 500, Window: 250}})
	if err != nil {
		t.Fatal(err)
	}
	// Measured arrivals: t in [500, 1995] → IDs 100..399.
	if ss.Arrivals != 300 {
		t.Errorf("measured arrivals = %d, want 300", ss.Arrivals)
	}
	if ss.TotalArrivals != 400 {
		t.Errorf("total arrivals = %d, want 400", ss.TotalArrivals)
	}
	// Complete windows partition [500, 1995): [500,750) ... [1750,2000)
	// is incomplete (run ends at 1995), so 5 complete windows.
	if len(ss.Windows) != 5 {
		t.Fatalf("windows = %d, want 5", len(ss.Windows))
	}
	for i, w := range ss.Windows {
		wantStart := int64(500 + 250*i)
		if w.Start != wantStart || w.End != wantStart+250 {
			t.Errorf("window %d spans [%d,%d), want [%d,%d)", i, w.Start, w.End, wantStart, wantStart+250)
		}
		if w.Arrivals != 50 {
			t.Errorf("window %d arrivals = %d, want 50", i, w.Arrivals)
		}
		if w.Arrivals != w.Accepted+w.Dropped {
			t.Errorf("window %d: %d arrivals but %d accepted + %d dropped",
				i, w.Arrivals, w.Accepted, w.Dropped)
		}
		// Steady state: 40 resident VMs × 4 cores on the 18-rack cluster.
		if w.AvgUtil[units.CPU] <= 0 {
			t.Errorf("window %d CPU utilization = %g, want > 0", i, w.AvgUtil[units.CPU])
		}
		if w.AcceptancePct() != 100 {
			t.Errorf("window %d acceptance = %g%%, want 100", i, w.AcceptancePct())
		}
	}
	winSum := 0
	for _, w := range ss.Windows {
		winSum += w.Arrivals
	}
	// The trailing partial window holds the remainder.
	if winSum > ss.Arrivals {
		t.Errorf("windows count %d arrivals, more than the %d measured", winSum, ss.Arrivals)
	}
	if ss.AvgUtil[units.CPU] <= 0 || ss.AvgUtil[units.Storage] <= 0 {
		t.Error("measured utilization should be positive")
	}
	if ss.LatencySamples != 300 {
		t.Errorf("latency samples = %d, want 300 (one per measured arrival)", ss.LatencySamples)
	}
	if ss.LatencyP50 <= 0 || ss.LatencyP99 < ss.LatencyP50 {
		t.Errorf("latency percentiles out of order: p50 %v p99 %v", ss.LatencyP50, ss.LatencyP99)
	}
	if ss.Resident <= 0 {
		t.Error("a mid-stream stop must leave residents")
	}
}

func TestRunStreamDrain(t *testing.T) {
	tr := streamTrace()
	st, r := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
	ss, err := r.RunStream(workload.NewTraceStream(tr), StreamConfig{Workload: StreamWorkload{MaxArrivals: tr.Len(), Drain: true}, Windows: StreamWindows{Window: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if ss.TotalAccepted != 400 {
		t.Fatalf("accepted %d, want 400", ss.TotalAccepted)
	}
	if free, cap := st.Cluster.TotalFree(units.CPU), st.Cluster.TotalCapacity(units.CPU); free != cap {
		t.Errorf("drain left %d of %d CPU allocated", cap-free, cap)
	}
	if st.Fabric.IntraRackFree() != st.Fabric.IntraRackCapacity() {
		t.Error("drain left bandwidth allocated")
	}
}

func TestRunStreamDurationBound(t *testing.T) {
	tr := streamTrace()
	_, r := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
	ss, err := r.RunStream(workload.NewTraceStream(tr), StreamConfig{Workload: StreamWorkload{Duration: 1000}, Windows: StreamWindows{Window: 100}})
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals beyond t=1000 are not consumed: IDs 0..200 (t=0..1000).
	if ss.TotalArrivals != 201 {
		t.Errorf("total arrivals = %d, want 201", ss.TotalArrivals)
	}
	if ss.End > 1000 {
		t.Errorf("end = %d, beyond the duration bound", ss.End)
	}
}

func TestRunStreamDurationExcludesFirstArrival(t *testing.T) {
	// A stream whose very first arrival lies beyond the Duration bound
	// must consume nothing.
	tr := &workload.Trace{Name: "late", VMs: []workload.VM{
		{ID: 0, Arrival: 500, Lifetime: 10, Req: units.Vec(1, 1, 1)},
	}}
	_, r := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
	ss, err := r.RunStream(workload.NewTraceStream(tr), StreamConfig{Workload: StreamWorkload{Duration: 100}, Windows: StreamWindows{Window: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if ss.TotalArrivals != 0 || ss.TotalAccepted != 0 || ss.End != 0 {
		t.Errorf("arrival beyond Duration consumed: arrivals=%d accepted=%d end=%d",
			ss.TotalArrivals, ss.TotalAccepted, ss.End)
	}
}

func TestRunStreamConfigValidation(t *testing.T) {
	tr := streamTrace()
	_, r := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
	for name, cfg := range map[string]StreamConfig{
		"no stop criterion": {Windows: StreamWindows{Window: 10}},
		"no window":         {Workload: StreamWorkload{MaxArrivals: 10}},
		"negative warmup":   {Workload: StreamWorkload{MaxArrivals: 10}, Windows: StreamWindows{Window: 10, Warmup: -1}},
		"warmup>=duration":  {Workload: StreamWorkload{Duration: 10}, Windows: StreamWindows{Warmup: 10, Window: 5}},
		"round w/o agents":  {Workload: StreamWorkload{MaxArrivals: 10}, Windows: StreamWindows{Window: 10}, Concurrency: StreamConcurrency{Round: 4}},
		"agents+snapshot":   {Workload: StreamWorkload{MaxArrivals: 10}, Windows: StreamWindows{Window: 10}, Snapshot: StreamSnapshot{At: 5}, Concurrency: StreamConcurrency{Agents: 2}},
	} {
		if _, err := r.RunStream(workload.NewTraceStream(tr), cfg); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

// TestRunStreamRetryQueue: RunStream supports the FIFO retry queue (a
// PR 5 extension — it used to reject it): on an overloaded single-rack
// cluster, arrivals that find no capacity wait and are served by later
// departures instead of being dropped, FIFO and with restarted
// lifetimes, mirroring Run's semantics.
func TestRunStreamRetryQueue(t *testing.T) {
	cfg := topology.DefaultConfig()
	cfg.Racks = 1
	cfg.CPUBoxes = 1 // one CPU box: whole-box CPU requests serialize
	st, err := sched.NewState(cfg, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, core.New(st), Config{RetryDropped: true})
	if err != nil {
		t.Fatal(err)
	}
	// Each VM takes the rack's only CPU box whole. VMs 1 and 2 arrive while VM 0
	// still runs and must wait; the departures at t=10 and t=20 (fired
	// ahead of the later arrivals in the merged event order) serve them
	// head-first. The stragglers at t=12/t=22 keep the run alive past
	// those departures and are themselves still waiting when the arrival
	// budget ends the run, so they count as dropped.
	tr := &workload.Trace{Name: "retry", VMs: []workload.VM{
		{ID: 0, Arrival: 0, Lifetime: 10, Req: units.Vec(512, 16, 128)},
		{ID: 1, Arrival: 1, Lifetime: 10, Req: units.Vec(512, 16, 128)},
		{ID: 2, Arrival: 2, Lifetime: 10, Req: units.Vec(512, 16, 128)},
		{ID: 3, Arrival: 12, Lifetime: 10, Req: units.Vec(512, 16, 128)},
		{ID: 4, Arrival: 22, Lifetime: 10, Req: units.Vec(512, 16, 128)},
	}}
	res, err := r.RunStream(workload.NewTraceStream(tr), StreamConfig{Workload: StreamWorkload{MaxArrivals: 5, Drain: true}, Windows: StreamWindows{Window: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAccepted != 3 || res.TotalDropped != 2 {
		t.Fatalf("accepted %d dropped %d, want 3/2", res.TotalAccepted, res.TotalDropped)
	}
	if res.Enqueued != 4 || res.RetrySucceeded != 2 {
		t.Fatalf("enqueued %d retried %d, want 4/2", res.Enqueued, res.RetrySucceeded)
	}
	// VM 1 waits from t=1 to the t=10 departure (9), VM 2 from t=2 to
	// t=20 (18): mean 13.5.
	if res.MeanWait != 13.5 {
		t.Errorf("mean wait %g, want 13.5", res.MeanWait)
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestRetryQueueUnderStreamAdapter pins the Queueing experiment's FIFO
// retry path now that Run consumes every trace through the stream
// adapter: an overloaded single-rack cluster queues arrivals and serves
// them from departures instead of dropping.
func TestRetryQueueUnderStreamAdapter(t *testing.T) {
	cfg := topology.DefaultConfig()
	cfg.Racks = 1
	st, err := sched.NewState(cfg, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, core.New(st), Config{RetryDropped: true})
	if err != nil {
		t.Fatal(err)
	}
	// 40 VMs of 128 cores each against a 1024-core rack: 8 fit at a
	// time, the rest must wait for departures.
	tr := &workload.Trace{Name: "overload"}
	for i := 0; i < 40; i++ {
		tr.VMs = append(tr.VMs, workload.VM{
			ID: i, Arrival: int64(i), Lifetime: 100, Req: units.Vec(128, 128, 1024),
		})
	}
	res, err := r.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Enqueued == 0 || res.RetrySucceeded == 0 {
		t.Fatalf("retry path idle: enqueued %d, retried %d", res.Enqueued, res.RetrySucceeded)
	}
	if res.Scheduled+res.Dropped != tr.Len() {
		t.Errorf("conservation: scheduled %d + dropped %d != %d VMs",
			res.Scheduled, res.Dropped, tr.Len())
	}
	if res.Scheduled <= 8 {
		t.Errorf("scheduled %d, want the queue to serve beyond the first fill", res.Scheduled)
	}
	if res.MeanWait <= 0 {
		t.Errorf("mean wait %g, want positive", res.MeanWait)
	}
}
