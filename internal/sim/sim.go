// Package sim is the discrete-event simulator that drives one scheduling
// algorithm over one workload trace against one datacenter state.
//
// Events are VM arrivals (from the trace), departures (scheduled when a
// VM is placed), ad-hoc injections and fault-plan events (hardware
// failing and recovering, see Config.Faults and DESIGN.md §10). Between
// events the simulator integrates the time-weighted signals the paper
// reports: compute utilization per resource (§5.1's 64.66/65.11/31.72 %),
// intra- and inter-rack network utilization (Figure 8), and optical power
// (Figure 9). Injections and faults at a timestamp are processed before
// its departures, and departures before arrivals, so releasing VMs make
// room for arriving ones.
//
// One simulated time unit is modeled as one second for energy accounting;
// the paper leaves the unit unspecified and only relative comparisons
// matter.
package sim

import (
	"fmt"
	"time"

	"risa/internal/faults"
	"risa/internal/metrics"
	"risa/internal/optics"
	"risa/internal/power"
	"risa/internal/sched"
	"risa/internal/units"
	"risa/internal/workload"
)

// SecondsPerTimeUnit converts trace time units into seconds for energy
// integration.
const SecondsPerTimeUnit = 1.0

// eventKind orders simultaneous events: ad-hoc injections fire first,
// then fault-plan events, then departures free resources, then arrivals
// claim them. Plan events outrank departures so a VM departing at the
// exact instant its box fails still releases into a failed box (the
// deferred-capacity path), matching the order the injection-based
// resilience experiment always used.
type eventKind int

const (
	inject eventKind = iota
	fault
	departure
	arrival
)

// event is one heap entry.
type event struct {
	t    int64
	kind eventKind
	seq  int // tie-break: FIFO among equal (t, kind)
	fx   int // fault only: index into the runner's fault plan
	vm   workload.VM
	a    *sched.Assignment     // departure only
	do   func(st *sched.State) // inject only
}

// Less orders events by (time, kind, sequence): earlier times first, then
// kind order (inject < fault < departure < arrival), then FIFO. It is the
// ordering the event queue (an eventQueue, see heap4.go) pops by.
func (e event) Less(o event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	if e.kind != o.kind {
		return e.kind < o.kind
	}
	return e.seq < o.seq
}

// eventQueue is the simulator's pending-event queue: a non-boxing 4-ary
// min-heap of events. Unlike the container/heap implementation it
// replaces, Push does not allocate (no interface{} boxing) and Pop zeroes
// the vacated slot, so a departed VM's assignment is unreachable the
// moment its departure fires.
type eventQueue = heap4[event]

// queuedVM is one retry-queue entry. displaced marks a VM that was
// already accepted at its arrival and then evicted off failed hardware:
// placing it again is a recovery, not a second acceptance, and losing
// it for good counts as DisplacedLost rather than a drop.
type queuedVM struct {
	vm        workload.VM
	displaced bool
	// preempted marks a VM evicted by a higher-priority arrival
	// (core.Preempt): like displaced, it was already accepted once, so
	// re-placing it is a PreemptRecovered, losing it a PreemptLost.
	preempted bool
	// seq is the admission sequence (stream runs only): a monotone
	// counter stamped once per arrival processed and once per eviction,
	// so a conflict loser from the agent pool re-queues under its
	// ORIGINAL arrival order, not its commit-attempt order (see
	// streamRun.admit). Run's whole-trace queue leaves it zero.
	seq int
}

// Result aggregates everything one run produces. All percentages are in
// [0, 100].
type Result struct {
	Algorithm string
	Workload  string

	Scheduled int
	Dropped   int

	// InterRack counts assignments spanning racks (Figures 5 and 7);
	// InterPod counts assignments spanning pods (three-tier extension
	// only, always 0 on the paper's fabric).
	InterRack    int
	InterRackPct float64
	InterPod     int

	// Time-averaged and peak compute utilization per resource, percent.
	AvgUtil  [units.NumResources]float64
	PeakUtil [units.NumResources]float64

	// Network utilization, percent (Figure 8).
	AvgIntraUtil, PeakIntraUtil float64
	AvgInterUtil, PeakInterUtil float64

	// Mean CPU-RAM round-trip latency over scheduled VMs (Figure 10).
	MeanCPURAMLatency time.Duration

	// Optical power (Figure 9) and integrated energy.
	PeakPowerW float64
	AvgPowerW  float64
	EnergyJ    float64
	// Eq1EnergyJ is the per-VM Equation 1 energy summed over completed
	// VMs (switch setup + trimming over the actual lifetime), an
	// alternative view of the same physics.
	Eq1EnergyJ float64

	// SchedulingTime is the wall-clock time spent inside Schedule calls
	// (Figures 11 and 12).
	SchedulingTime time.Duration

	// Makespan is the simulated time of the last event.
	Makespan int64

	// Samples is the optional time series (see Config.SampleEvery).
	Samples []Sample

	// Retry-queue statistics (see Config.RetryDropped). Enqueued counts
	// arrivals that found no capacity and waited; RetrySucceeded counts
	// those eventually placed; MeanWait is their average queue time in
	// time units. VMs still waiting at the end of the run count as
	// Dropped.
	Enqueued       int
	RetrySucceeded int
	MeanWait       float64

	// Fault statistics (see Config.Faults/Evict). Displaced counts VMs
	// evicted off failed hardware; Recovered those re-placed elsewhere
	// (immediately, or later from the retry queue — never a second
	// acceptance in Scheduled); DisplacedLost those gone for good. All
	// zero when eviction is off — VMs then ride out the outage in place.
	Displaced     int
	Recovered     int
	DisplacedLost int
}

// Sample is one point of the optional utilization/power time series.
type Sample struct {
	T         int64                       // simulation time
	Util      [units.NumResources]float64 // compute utilization, percent
	IntraUtil float64                     // intra-rack network utilization, percent
	InterUtil float64                     // inter-rack network utilization, percent
	PowerW    float64                     // aggregate optical power
	Resident  int                         // VMs currently placed
}

// Injection is a timed state mutation — a fault (or repair) fired during
// the run, e.g. failing a box or link at time T. Injections at the same
// timestamp run before departures and arrivals.
type Injection struct {
	T  int64
	Do func(st *sched.State)
}

// Config parameterizes a run.
type Config struct {
	// Power model; nil uses optics defaults.
	PowerModel *power.Model
	// SampleEvery, when positive, records one Sample whenever simulated
	// time crosses a multiple of this interval (plus one final sample at
	// makespan). Zero disables the time series.
	SampleEvery int64
	// Injections are applied at their timestamps, in slice order among
	// equal times.
	Injections []Injection
	// RetryDropped, when set, turns the paper's drop-on-failure semantics
	// into a FIFO wait queue (an extension beyond the paper): arrivals
	// that cannot be placed wait, and every departure retries the queue
	// head-first. A waiting VM's lifetime starts when it is placed.
	RetryDropped bool
	// Faults is an optional fault plan merged into the event loop: each
	// event toggles box failure over its scope (box, rack or pod) at its
	// timestamp, between any ad-hoc Injections and the departures of the
	// same instant. Both Run and RunStream consume it.
	Faults *faults.Plan
	// Evict, with Faults, activates displaced-VM recovery: when hardware
	// fails, VMs resident on it are evicted and re-placed through the
	// scheduler's own policy (core.Displace); a VM that cannot be
	// re-placed is lost — or parks on the retry queue when RetryDropped
	// is also set. Without Evict, resident VMs ride out the outage in
	// place (their circuits are established) and only new arrivals route
	// around the hole.
	Evict bool
}

// Runner binds a scheduler and a state and runs traces.
type Runner struct {
	st          *sched.State
	sch         sched.Scheduler
	model       *power.Model
	sampleEvery int64
	injections  []Injection
	retry       bool
	plan        *faults.Plan
	evict       bool
	preempt     bool          // stream runs only (StreamFaults.Preempt)
	scratch     sched.Scratch // victim-selection workspace (preempt.go)
	downCount   []int         // per-box overlapping-outage refcounts (faults.go)
}

// NewRunner builds a Runner. The scheduler must be bound to st.
func NewRunner(st *sched.State, sch sched.Scheduler, cfg Config) (*Runner, error) {
	m := cfg.PowerModel
	if m == nil {
		var err error
		m, err = power.NewModel(optics.DefaultConfig())
		if err != nil {
			return nil, err
		}
	}
	if cfg.SampleEvery < 0 {
		return nil, fmt.Errorf("sim: negative sample interval %d", cfg.SampleEvery)
	}
	for i, inj := range cfg.Injections {
		if inj.T < 0 || inj.Do == nil {
			return nil, fmt.Errorf("sim: injection %d invalid (t=%d, do=%v)", i, inj.T, inj.Do != nil)
		}
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(st.Cluster.NumRacks(), st.Cluster.Config().BoxesPerRack()); err != nil {
			return nil, err
		}
	}
	if cfg.Evict && cfg.Faults == nil {
		return nil, fmt.Errorf("sim: Evict requires a fault plan")
	}
	return &Runner{
		st: st, sch: sch, model: m,
		sampleEvery: cfg.SampleEvery,
		injections:  cfg.Injections,
		retry:       cfg.RetryDropped,
		plan:        cfg.Faults,
		evict:       cfg.Evict,
	}, nil
}

// Run plays the whole trace and returns the aggregated result. The state
// is left as the trace leaves it (all VMs depart by trace makespan, so a
// full run restores the initial state).
//
// Internally the trace is consumed through the workload.Stream adapter:
// arrivals are pulled lazily one at a time, so the event heap only ever
// holds the pending departures (plus injections) — the same bounded
// event loop RunStream uses for open-ended workloads.
func (r *Runner) Run(tr *workload.Trace) (*Result, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	src := workload.NewTraceStream(tr)
	res := &Result{Algorithm: r.sch.Name(), Workload: tr.Name}
	acct := power.NewAccountant(r.model)

	var h eventQueue
	seq := 0
	for _, inj := range r.injections {
		h.Push(event{t: inj.T, kind: inject, seq: seq, do: inj.Do})
		seq++
	}
	if r.plan != nil {
		for i := range r.plan.Events {
			h.Push(event{t: r.plan.Events[i].T, kind: fault, seq: seq, fx: i})
			seq++
		}
	}

	var utilW [units.NumResources]metrics.TimeWeighted
	var intraW, interW, powerW metrics.TimeWeighted
	var latencySum time.Duration
	var lastT int64
	resident := 0
	nextSample := int64(0)
	var waiting []queuedVM // retry queue (FIFO), arrival-stamped
	var waitSum float64
	// Same-instant fault events form one atomic burst: all of them apply
	// before any eviction or queue drain, so a correlated outage cannot
	// leak VMs onto hardware that fails in the same tick.
	var burstFail, burstRepair bool
	r.resetFaultCounts()

	place := func(vm workload.VM, now int64) bool {
		start := time.Now()
		a, err := r.sch.Schedule(vm)
		res.SchedulingTime += time.Since(start)
		if err != nil {
			return false
		}
		res.Scheduled++
		resident++
		if a.InterRack() {
			res.InterRack++
		}
		if a.InterPod() {
			res.InterPod++
		}
		latencySum += a.CPURAMLatency()
		if a.CPURAMFlow != nil {
			acct.Add(a.CPURAMFlow)
		}
		if a.RAMSTOFlow != nil {
			acct.Add(a.RAMSTOFlow)
		}
		h.Push(event{t: now + vm.Lifetime, kind: departure, seq: seq, vm: vm, a: a})
		seq++
		return true
	}
	drainQueue := func(now int64) {
		for len(waiting) > 0 {
			q := waiting[0]
			if !place(q.vm, now) {
				return // FIFO: the head blocks the rest
			}
			waiting = waiting[1:]
			res.RetrySucceeded++
			waitSum += float64(now - q.vm.Arrival)
			if q.displaced {
				// place counted a second acceptance for a VM already
				// scheduled at its arrival; reclassify it as a recovery.
				res.Scheduled--
				res.Recovered++
			}
		}
	}

	snapshot := func(t int64) Sample {
		s := Sample{
			T:         t,
			IntraUtil: r.st.Fabric.IntraRackUtilization() * 100,
			InterUtil: r.st.Fabric.InterRackUtilization() * 100,
			PowerW:    acct.Power(),
			Resident:  resident,
		}
		for _, k := range units.Resources() {
			s.Util[k] = r.st.Cluster.Utilization(k) * 100
		}
		return s
	}
	record := func(t int64) {
		for _, k := range units.Resources() {
			utilW[k].Set(float64(t), r.st.Cluster.Utilization(k)*100)
		}
		intraW.Set(float64(t), r.st.Fabric.IntraRackUtilization()*100)
		interW.Set(float64(t), r.st.Fabric.InterRackUtilization()*100)
		powerW.Set(float64(t), acct.Power())
		if r.sampleEvery > 0 && t >= nextSample {
			res.Samples = append(res.Samples, snapshot(t))
			nextSample = (t/r.sampleEvery + 1) * r.sampleEvery
		}
	}
	record(0)

	pending, more := src.Next()
	for h.Len() > 0 || more {
		// Next event: the heap's minimum, unless the pending arrival
		// comes first (see heapFirst for the simultaneous-event order).
		var e event
		if heapFirst(&h, pending, more) {
			e = h.Pop()
		} else {
			e = event{t: pending.Arrival, kind: arrival, vm: pending}
			pending, more = src.Next()
		}
		if e.t < lastT {
			return nil, fmt.Errorf("sim: event time went backwards: %d < %d", e.t, lastT)
		}
		acct.AdvanceSeconds(float64(e.t-lastT) * SecondsPerTimeUnit)
		lastT = e.t

		switch e.kind {
		case inject:
			e.do(r.st)
			if r.retry {
				drainQueue(e.t) // repairs may free capacity
			}
		case fault:
			ev := r.plan.Events[e.fx]
			r.applyFault(ev)
			if ev.Repair {
				burstRepair = true
			} else {
				burstFail = true
			}
			if sameInstantFaultPending(&h, e.t) {
				break // finish the whole same-instant burst first
			}
			if r.evict && burstFail {
				r.evictDisplaced(&h, e.t, evictHooks{
					// The accountant holds the evicted VM's circuits;
					// swap them for the re-placement's (Eq1EnergyJ skips
					// evicted circuits — their lifetime is cut short).
					before: func(a *sched.Assignment) {
						for _, fl := range a.Flows() {
							acct.Remove(fl)
						}
					},
					after: func(a *sched.Assignment, recovered bool, _ time.Duration) {
						res.Displaced++
						if recovered {
							res.Recovered++
							for _, fl := range a.Flows() {
								acct.Add(fl)
							}
						}
					},
					lost: func(vm workload.VM) {
						resident--
						if r.retry {
							// The displaced VM re-enters the queue now:
							// its wait is measured from the eviction and
							// its lifetime restarts when re-placed.
							vm.Arrival = e.t
							waiting = append(waiting, queuedVM{vm: vm, displaced: true})
							res.Enqueued++
						} else {
							res.DisplacedLost++
						}
					},
				})
			}
			if r.retry && burstRepair {
				drainQueue(e.t) // repairs free capacity
			}
			burstFail, burstRepair = false, false
		case departure:
			if e.a == nil {
				break // ghost: the VM was displaced and lost or re-queued
			}
			life := time.Duration(float64(e.vm.Lifetime) * SecondsPerTimeUnit * float64(time.Second))
			if fl := e.a.CPURAMFlow; fl != nil {
				acct.Remove(fl)
				res.Eq1EnergyJ += r.model.FlowEnergy(fl, life)
			}
			if fl := e.a.RAMSTOFlow; fl != nil {
				acct.Remove(fl)
				res.Eq1EnergyJ += r.model.FlowEnergy(fl, life)
			}
			r.sch.Release(e.a)
			resident--
			if r.retry {
				drainQueue(e.t)
			}
		case arrival:
			if r.retry && len(waiting) > 0 {
				// FIFO fairness: queued VMs go first.
				waiting = append(waiting, queuedVM{vm: e.vm})
				res.Enqueued++
				drainQueue(e.t)
				break
			}
			if !place(e.vm, e.t) {
				if r.retry {
					waiting = append(waiting, queuedVM{vm: e.vm})
					res.Enqueued++
				} else {
					res.Dropped++
				}
			}
		}
		record(e.t)
	}

	if r.sampleEvery > 0 && (len(res.Samples) == 0 || res.Samples[len(res.Samples)-1].T != lastT) {
		res.Samples = append(res.Samples, snapshot(lastT))
	}
	for _, q := range waiting { // still queued at the end: never placed
		if q.displaced {
			res.DisplacedLost++ // was accepted once; its re-admission failed
		} else {
			res.Dropped++
		}
	}
	if res.RetrySucceeded > 0 {
		res.MeanWait = waitSum / float64(res.RetrySucceeded)
	}
	res.Makespan = lastT
	end := float64(lastT)
	for _, k := range units.Resources() {
		res.AvgUtil[k] = utilW[k].Average(end)
		res.PeakUtil[k] = utilW[k].Peak()
	}
	res.AvgIntraUtil = intraW.Average(end)
	res.PeakIntraUtil = intraW.Peak()
	res.AvgInterUtil = interW.Average(end)
	res.PeakInterUtil = interW.Peak()
	res.AvgPowerW = powerW.Average(end)
	res.PeakPowerW = acct.PeakPower()
	res.EnergyJ = acct.EnergyJoules()
	if res.Scheduled > 0 {
		res.MeanCPURAMLatency = latencySum / time.Duration(res.Scheduled)
	}
	if total := res.Scheduled + res.Dropped; total > 0 {
		res.InterRackPct = float64(res.InterRack) / float64(total) * 100
	}
	return res, nil
}
