package sim

import (
	"strings"
	"testing"

	"risa/internal/units"
	"risa/internal/workload"
)

// edgeTrace arrives every 10 tu with 100 tu lifetimes, so event times
// are easy to reason about against window boundaries.
func edgeTrace(n int) *workload.Trace {
	tr := &workload.Trace{Name: "edge"}
	for i := 0; i < n; i++ {
		tr.VMs = append(tr.VMs, workload.VM{
			ID: i, Arrival: int64(i * 10), Lifetime: 100, Req: units.Vec(2, 4, 64),
		})
	}
	return tr
}

// TestRunStreamDurationOnWindowBoundary: a run whose Duration lands
// exactly on a window boundary must not report the window that starts
// there — windows are complete only when an event at or past their end
// closes them.
func TestRunStreamDurationOnWindowBoundary(t *testing.T) {
	tr := edgeTrace(200) // arrivals 0..1990
	_, r := eqRunner(t, "RISA", Config{})
	ss, err := r.RunStream(workload.NewTraceStream(tr), StreamConfig{Workload: StreamWorkload{Duration: 1000}, Windows: StreamWindows{Window: 250}})
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals at 0..1000 inclusive: 101 of them (Duration is an
	// inclusive bound on arrival times).
	if ss.TotalArrivals != 101 {
		t.Errorf("total arrivals = %d, want 101", ss.TotalArrivals)
	}
	if ss.End != 1000 {
		t.Errorf("end = %d, want 1000", ss.End)
	}
	// Windows [0,250) [250,500) [500,750) [750,1000) are complete; the
	// event at t=1000 closes the fourth exactly at its boundary.
	if len(ss.Windows) != 4 {
		t.Fatalf("windows = %d, want 4", len(ss.Windows))
	}
	last := ss.Windows[3]
	if last.Start != 750 || last.End != 1000 {
		t.Errorf("last window [%d,%d), want [750,1000)", last.Start, last.End)
	}
	// The boundary arrival at t=1000 belongs to the (unreported) fifth
	// window, not the fourth: 25 arrivals at 750..990.
	if last.Arrivals != 25 {
		t.Errorf("last window arrivals = %d, want 25", last.Arrivals)
	}
}

// TestRunStreamMaxArrivalsZero: MaxArrivals=0 means unbounded — the run
// is clipped by Duration alone; with both zero the config is invalid.
func TestRunStreamMaxArrivalsZero(t *testing.T) {
	tr := edgeTrace(50) // arrivals 0..490
	_, r := eqRunner(t, "RISA", Config{})
	ss, err := r.RunStream(workload.NewTraceStream(tr), StreamConfig{Workload: StreamWorkload{MaxArrivals: 0, Duration: 10000}, Windows: StreamWindows{Window: 100}})
	if err != nil {
		t.Fatal(err)
	}
	// Duration exceeds the trace: every arrival is consumed, and the run
	// stops at the last one (no drain).
	if ss.TotalArrivals != 50 {
		t.Errorf("total arrivals = %d, want all 50", ss.TotalArrivals)
	}
	if ss.End != 490 {
		t.Errorf("end = %d, want 490 (last arrival, not Duration)", ss.End)
	}
	if ss.Resident == 0 {
		t.Error("resident = 0: run drained although Drain was unset")
	}

	_, r2 := eqRunner(t, "RISA", Config{})
	if _, err := r2.RunStream(workload.NewTraceStream(tr), StreamConfig{Windows: StreamWindows{Window: 100}}); err == nil {
		t.Fatal("MaxArrivals=0 with Duration=0 validated")
	}
}

// TestRunStreamDrainAfterRestore: a resumed run with Drain set must
// leave its restored state completely empty again — every restored
// placement, flow and queue entry released.
func TestRunStreamDrainAfterRestore(t *testing.T) {
	cfg := StreamConfig{Workload: StreamWorkload{MaxArrivals: 1500}, Windows: StreamWindows{Warmup: 12600, Window: 6300}}
	warm := cfg
	warm.Snapshot.At = 25000
	_, wr := eqRunner(t, "RISA", Config{})
	snap, err := wr.WarmStream(eqStream(t), warm)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.State.Assignments) == 0 {
		t.Fatal("warm snapshot carries no live placements — fixture too small")
	}

	drainCfg := cfg
	drainCfg.Workload.Drain = true
	st, rr := eqRunner(t, "RISA", Config{})
	if _, err := rr.ResumeStream(eqStream(t), snap, drainCfg); err != nil {
		t.Fatal(err)
	}
	for _, k := range units.Resources() {
		if st.Cluster.TotalFree(k) != st.Cluster.TotalCapacity(k) {
			t.Errorf("%v not fully released after drain: free %d, capacity %d",
				k, st.Cluster.TotalFree(k), st.Cluster.TotalCapacity(k))
		}
	}
	f := st.Fabric
	if f.IntraRackFree() != f.IntraRackCapacity() ||
		f.InterRackFree() != f.InterRackCapacity() ||
		f.InterPodFree() != f.InterPodCapacity() {
		t.Error("fabric still carries reservations after drain")
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestRunStreamSnapshotAtValidation: negative SnapshotAt is rejected up
// front, and a SnapshotAt past the run's end simply never fires during
// RunStream (it is only an error for WarmStream, which needs the
// snapshot).
func TestRunStreamSnapshotAtValidation(t *testing.T) {
	tr := edgeTrace(50)
	_, r := eqRunner(t, "RISA", Config{})
	if _, err := r.RunStream(workload.NewTraceStream(tr), StreamConfig{Workload: StreamWorkload{MaxArrivals: 50}, Windows: StreamWindows{Window: 100}, Snapshot: StreamSnapshot{At: -1}}); err == nil {
		t.Fatal("negative SnapshotAt validated")
	}

	fired := false
	_, r2 := eqRunner(t, "RISA", Config{})
	ss, err := r2.RunStream(workload.NewTraceStream(tr), StreamConfig{Workload: StreamWorkload{MaxArrivals: 50}, Windows: StreamWindows{Window: 100}, Snapshot: StreamSnapshot{At: 1 << 40, OnSnapshot: func(*Snapshot) { fired = true }}})
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("OnSnapshot fired past the run's end")
	}
	if ss.TotalArrivals != 50 {
		t.Errorf("arrivals = %d, want 50", ss.TotalArrivals)
	}
}

// TestPreemptConfigValidation: preemption is a serial, retry-queue
// feature — Faults.Preempt without Faults.Retry is rejected, as is
// combining it with agent-mode concurrency; both errors name the rule.
func TestPreemptConfigValidation(t *testing.T) {
	tr := edgeTrace(10)
	base := StreamConfig{Workload: StreamWorkload{MaxArrivals: 10}, Windows: StreamWindows{Window: 100}}

	noRetry := base
	noRetry.Faults = StreamFaults{Preempt: true}
	_, r := eqRunner(t, "RISA", Config{})
	_, err := r.RunStream(workload.NewTraceStream(tr), noRetry)
	if err == nil || !strings.Contains(err.Error(), "Faults.Preempt requires Faults.Retry") {
		t.Fatalf("preempt without retry: got %v", err)
	}

	agents := base
	agents.Faults = StreamFaults{Retry: true, Preempt: true}
	agents.Concurrency.Agents = 4
	_, r2 := eqRunner(t, "RISA", Config{})
	_, err = r2.RunStream(workload.NewTraceStream(tr), agents)
	if err == nil || !strings.Contains(err.Error(), "incompatible with agent mode") {
		t.Fatalf("preempt with agents: got %v", err)
	}
}
