// Step-wise drive API: the placement-as-a-service daemon (internal/svc)
// owns a live cluster but has no workload stream to pull from — arrivals
// come one at a time over HTTP, interleaved with live cluster mutations.
// Driver exposes the simulator's event machinery one externally supplied
// event at a time: each Place advances virtual time to the VM's arrival
// (releasing every departure due by then, departures-before-arrivals
// exactly like the batch loops), each Apply toggles hardware failure
// through the same per-box outage refcounts the fault plans use, and
// Snapshot/RestoreDriver capture and restore the complete driver state
// at a decision boundary — the foundation of the daemon's
// restore-then-replay crash recovery.
//
// Determinism contract: a Driver's visible decisions are a pure function
// of the sequence of Place/Apply/SetScheduler calls (and the initial
// state), never of wall-clock time. Replaying the same call sequence on
// a fresh driver — or the suffix of it on a restored snapshot —
// reproduces every placement bit-identically, which is what the daemon's
// write-ahead journal relies on.
package sim

import (
	"fmt"

	"risa/internal/faults"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/workload"
)

// Driver drives one scheduler over one datacenter state, one externally
// supplied event at a time. It is single-writer: not safe for concurrent
// use (the daemon serializes all calls through its worker loop).
type Driver struct {
	st  *sched.State
	sch sched.Scheduler

	h        eventQueue
	seq      int
	lastT    int64
	resident int

	// downCount is the per-box outage refcount shared with the fault-plan
	// machinery (see faults.go): overlapping box- and rack-scope outages
	// only return a box to service at the last covering repair.
	downCount []int
}

// NewDriver binds a driver to st and sch. The scheduler must be bound to
// st (sched.New does that).
func NewDriver(st *sched.State, sch sched.Scheduler) *Driver {
	return &Driver{st: st, sch: sch, downCount: make([]int, len(st.Cluster.Boxes()))}
}

// Now returns the driver's current virtual time: the time of the last
// event processed.
func (d *Driver) Now() int64 { return d.lastT }

// Resident returns the number of VMs currently placed.
func (d *Driver) Resident() int { return d.resident }

// Scheduler returns the currently bound scheduler.
func (d *Driver) Scheduler() sched.Scheduler { return d.sch }

// SetScheduler hot-swaps the bound scheduler at a decision boundary: the
// cluster's lazy index tiers are settled first (topology.Settle), so the
// incoming algorithm starts from exact candidate bounds. Pending
// departures made by the old scheduler release fine through the new one
// — Release operates on the shared State and its pools, exactly like a
// cross-algorithm snapshot resume.
func (d *Driver) SetScheduler(sch sched.Scheduler) {
	d.st.Cluster.Settle()
	d.sch = sch
}

// Advance moves virtual time to t, releasing every pending departure due
// at or before t (departures precede arrivals at equal times, the batch
// loops' event order). Time never goes backwards: t earlier than the
// current time is clamped, and the effective time is returned.
func (d *Driver) Advance(t int64) int64 {
	if t < d.lastT {
		t = d.lastT
	}
	for d.h.Len() > 0 && d.h.Min().t <= t {
		e := d.h.Pop()
		if e.a != nil {
			d.sch.Release(e.a)
			d.resident--
		}
	}
	d.lastT = t
	return t
}

// Place advances virtual time to the VM's arrival (clamped to now — a
// late-stamped request places at the current time) and schedules it. On
// success the VM's departure is queued at its lifetime's end and the
// assignment returned with the effective placement time; on failure the
// scheduling error describes why the VM was rejected, the state
// untouched. Invalid VMs are rejected before time advances.
func (d *Driver) Place(vm workload.VM) (*sched.Assignment, int64, error) {
	if err := vm.Validate(); err != nil {
		return nil, d.lastT, err
	}
	t := d.Advance(vm.Arrival)
	a, err := d.sch.Schedule(vm)
	if err != nil {
		return nil, t, err
	}
	d.h.Push(event{t: t + vm.Lifetime, kind: departure, seq: d.seq, vm: vm, a: a})
	d.seq++
	d.resident++
	return a, t, nil
}

// BatchResult is one VM's outcome from PlaceBatch, carrying exactly what
// the corresponding Place call would have returned.
type BatchResult struct {
	A   *sched.Assignment
	T   int64
	Err error
}

// PlaceBatch admits a burst of VMs in order, equivalent call for call to
// invoking Place on each — same placements, same effective times, same
// per-VM errors, invalid VMs rejected without advancing time. What the
// batch amortizes is the departure-release sweep: Advance runs once per
// distinct arrival instant instead of once per VM. The skip is provably
// a no-op, not an approximation — the heap never holds a departure at or
// before the current virtual time (every push lands at place-time plus a
// positive lifetime, and time is monotone), so a repeated Advance to an
// instant already reached could never pop anything.
func (d *Driver) PlaceBatch(vms []workload.VM) []BatchResult {
	out := make([]BatchResult, len(vms))
	for i, vm := range vms {
		if err := vm.Validate(); err != nil {
			out[i] = BatchResult{T: d.lastT, Err: err}
			continue
		}
		t := d.lastT
		if vm.Arrival > t {
			t = d.Advance(vm.Arrival)
		}
		a, err := d.sch.Schedule(vm)
		if err != nil {
			out[i] = BatchResult{T: t, Err: err}
			continue
		}
		d.h.Push(event{t: t + vm.Lifetime, kind: departure, seq: d.seq, vm: vm, a: a})
		d.seq++
		d.resident++
		out[i] = BatchResult{A: a, T: t}
	}
	return out
}

// Apply advances virtual time to the event's timestamp and applies one
// box- or rack-scope failure or repair through the per-box outage
// refcounts (a box returns to service only at the last covering repair).
// Resident VMs ride out the outage in place — their circuits are
// established and releases return shares even on failed hardware — while
// new arrivals route around the hole; this is the batch loops' default
// (non-Evict) fault semantics. Pod-scope events are not supported: the
// driver has no fault plan to carry a pod size.
func (d *Driver) Apply(ev faults.Event) error {
	cl := d.st.Cluster
	switch ev.Tier {
	case faults.BoxTier:
		if ev.Rack < 0 || ev.Rack >= cl.NumRacks() || ev.Box < 0 || ev.Box >= cl.Config().BoxesPerRack() {
			return fmt.Errorf("sim: mutation %v outside %d racks × %d boxes", ev, cl.NumRacks(), cl.Config().BoxesPerRack())
		}
	case faults.RackTier:
		if ev.Rack < 0 || ev.Rack >= cl.NumRacks() {
			return fmt.Errorf("sim: mutation %v outside %d racks", ev, cl.NumRacks())
		}
	default:
		return fmt.Errorf("sim: driver mutations are box- or rack-scope, got %v", ev.Tier)
	}
	d.Advance(ev.T)
	switch ev.Tier {
	case faults.BoxTier:
		noteFault(cl, d.downCount, cl.Rack(ev.Rack).Boxes()[ev.Box], ev.Repair)
	case faults.RackTier:
		for _, b := range cl.Rack(ev.Rack).Boxes() {
			noteFault(cl, d.downCount, b, ev.Repair)
		}
	}
	return nil
}

// DriverSnapshot is the complete serializable state of a Driver at a
// decision boundary: the datacenter planes and scheduler state
// (StateSnapshot), the pending departures in heap array order, the
// virtual clock, and the outage refcounts. It is plain data —
// gob-serializable and immutable once captured.
type DriverSnapshot struct {
	LastT     int64
	Seq       int
	Resident  int
	State     StateSnapshot
	Events    []EventState
	DownCount []int
}

// Snapshot captures the driver's complete state at the current decision
// boundary. It only reads — the driver continues unperturbed.
func (d *Driver) Snapshot() (*DriverSnapshot, error) {
	live := make([]*sched.Assignment, 0, d.h.Len())
	events := make([]EventState, 0, d.h.Len())
	for i := range d.h.s {
		e := &d.h.s[i]
		if e.kind != departure {
			return nil, fmt.Errorf("sim: driver heap holds a non-departure event (kind %d)", e.kind)
		}
		es := EventState{T: e.t, Kind: int(e.kind), Seq: e.seq, VM: e.vm, A: -1}
		if e.a != nil {
			es.A = len(live)
			live = append(live, e.a)
		}
		events = append(events, es)
	}
	state, err := CaptureState(d.st, d.sch, live)
	if err != nil {
		return nil, err
	}
	return &DriverSnapshot{
		LastT:     d.lastT,
		Seq:       d.seq,
		Resident:  d.resident,
		State:     *state,
		Events:    events,
		DownCount: append([]int(nil), d.downCount...),
	}, nil
}

// RestoreDriver rebuilds a driver from a snapshot onto a pristine st:
// placements and flows are replayed through the real allocation paths,
// hardware failures re-applied, the pending-departure heap rebuilt
// verbatim, and the scheduler's carried cursor state replayed when sch
// bears the name the snapshot was captured under (a swapped-algorithm
// snapshot restores its own algorithm's cursors; cross-algorithm
// restores start sch from zero state). Continuing the restored driver
// with the original call-sequence suffix reproduces the original's
// decisions bit-identically.
func RestoreDriver(st *sched.State, sch sched.Scheduler, snap *DriverSnapshot) (*Driver, error) {
	live, err := RestoreState(st, sch, &snap.State)
	if err != nil {
		return nil, err
	}
	d := NewDriver(st, sch)
	d.lastT = snap.LastT
	d.seq = snap.Seq
	d.resident = snap.Resident
	if len(snap.DownCount) != len(d.downCount) {
		return nil, fmt.Errorf("sim: snapshot carries %d outage refcounts, cluster has %d boxes",
			len(snap.DownCount), len(d.downCount))
	}
	copy(d.downCount, snap.DownCount)
	// Rebuild the heap's backing array verbatim: the snapshot recorded a
	// valid heap in array order, so assigning it preserves the heap
	// property.
	d.h.s = make([]event, len(snap.Events))
	for i, es := range snap.Events {
		e := event{t: es.T, kind: eventKind(es.Kind), seq: es.Seq, vm: es.VM}
		if e.kind != departure {
			return nil, fmt.Errorf("sim: driver snapshot event %d is not a departure (kind %d)", i, es.Kind)
		}
		if es.A >= 0 {
			if es.A >= len(live) {
				return nil, fmt.Errorf("sim: driver snapshot event %d references assignment %d of %d", i, es.A, len(live))
			}
			e.a = live[es.A]
		}
		d.h.s[i] = e
	}
	return d, nil
}

// noteFault adjusts one box's outage refcount and toggles the topology
// failure flag on the 0↔positive edges. It is the shared core of the
// fault-plan machinery (Runner.applyFault) and the driver's live
// mutations.
func noteFault(cl *topology.Cluster, downCount []int, b *topology.Box, repair bool) {
	i := b.Rack()*cl.Config().BoxesPerRack() + b.Index()
	if repair {
		if downCount[i] > 0 {
			downCount[i]--
		}
		if downCount[i] == 0 {
			cl.SetBoxFailed(b, false)
		}
		return
	}
	downCount[i]++
	cl.SetBoxFailed(b, true)
}
