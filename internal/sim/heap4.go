package sim

// heap4 is a generic 4-ary min-heap ordered by the element's Less method.
// It replaces container/heap for the simulator's event queue: the
// heap.Interface API boxes every element through interface{}, which costs
// one allocation per Push — on the steady-state churn path that was one
// allocation per scheduled VM. This heap is monomorphized by the compiler
// instead, so Push and Pop move concrete values and never touch the
// allocator beyond the amortized growth of the backing slice.
//
// A 4-ary layout (children of i at 4i+1..4i+4) halves the tree depth of
// the binary heap: sift-down does more comparisons per level but those hit
// one cache line, which is the better trade for the simulator's
// pop-heavy loop. The heap property and the total event order (time, kind,
// sequence — see event.Less) are exactly those of the old container/heap
// code, so the sequence of popped events is bit-identical.
//
// Pop zeroes the vacated slot so popped elements do not linger in the
// backing array: the old eventHeap.Pop left the last element (and through
// it the departed VM's *Assignment) reachable until the slot was
// overwritten, pinning arbitrarily old placements past their release (the
// memory retention bug fixed in this refactor; see TestHeap4PopClearsSlot).
type heap4[T lesser[T]] struct {
	s []T
}

// lesser is the ordering constraint: a type orders itself via Less.
type lesser[T any] interface {
	// Less reports whether the receiver orders strictly before other.
	Less(other T) bool
}

// Len returns the number of queued elements.
func (h *heap4[T]) Len() int { return len(h.s) }

// Min returns the minimum element without removing it. It must not be
// called on an empty heap.
func (h *heap4[T]) Min() T { return h.s[0] }

// Push adds v to the heap.
func (h *heap4[T]) Push(v T) {
	h.s = append(h.s, v)
	i := len(h.s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.s[i].Less(h.s[parent]) {
			break
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

// Pop removes and returns the minimum element, zeroing the slot it
// vacates so the backing array retains nothing.
func (h *heap4[T]) Pop() T {
	n := len(h.s) - 1
	min := h.s[0]
	h.s[0] = h.s[n]
	var zero T
	h.s[n] = zero // do not retain the moved element in the dead slot
	h.s = h.s[:n]

	// Sift the relocated root down to its place.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		smallest := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.s[c].Less(h.s[smallest]) {
				smallest = c
			}
		}
		if !h.s[smallest].Less(h.s[i]) {
			break
		}
		h.s[i], h.s[smallest] = h.s[smallest], h.s[i]
		i = smallest
	}
	return min
}
