package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"risa/internal/faults"
	"risa/internal/sched"
	"risa/internal/units"
	"risa/internal/workload"
)

// StreamWorkload bounds one open-ended run: at least one of MaxArrivals
// and Duration must stop it.
type StreamWorkload struct {
	// MaxArrivals stops the run after this many arrivals have been
	// processed (0 = unbounded, then Duration must be set).
	MaxArrivals int
	// Duration stops the run at this simulated time: arrivals beyond it
	// are not consumed (0 = unbounded, then MaxArrivals must be set).
	Duration int64
	// Drain, when set, keeps simulating departures after the arrival
	// budget is exhausted until the cluster is empty again (excluded from
	// all metrics — an emptying cluster is not steady state). The default
	// stops at the last arrival and leaves the state loaded.
	Drain bool
}

// StreamWindows shapes the steady-state measurement: the warmup cut, the
// reporting windows and the latency reservoir.
type StreamWindows struct {
	// Warmup excludes the first Warmup time units from every metric:
	// windows, utilization averages, acceptance counts and the latency
	// reservoir all start at t = Warmup. The controller (if the stream
	// has one) receives feedback from t = 0 so it converges during
	// warmup.
	Warmup int64
	// Window is the steady-state reporting window length in time units;
	// must be positive. Only complete windows are reported.
	Window int64
	// ReservoirSize bounds the placement-decision latency sample kept for
	// the percentile estimates (default 4096).
	ReservoirSize int
	// ReservoirSeed seeds the reservoir's sampling randomness, so a run
	// is reproducible end to end (default 1).
	ReservoirSeed int64
}

// StreamFaults is the stream-level fault surface: a fault plan merged
// into the event loop, displaced-VM recovery and the retry queue. It is
// the StreamConfig home of what Config.Faults/Evict/RetryDropped carry
// for Runner.Run — a stream run accepts the surface through either, but
// not both at once.
type StreamFaults struct {
	// Plan is the fault plan merged into the event loop (see
	// Config.Faults).
	Plan *faults.Plan
	// Evict, with Plan, activates displaced-VM recovery (see
	// Config.Evict).
	Evict bool
	// Retry turns drop-on-failure into the FIFO wait queue (see
	// Config.RetryDropped).
	Retry bool
	// Preempt lets a high-priority arrival that fails placement displace
	// strictly-lower-tier victims via core.Preempt, the victims entering
	// the retry queue (hence Preempt requires Retry). Serial stream runs
	// only: agent mode is rejected (preemption mutates the event heap
	// mid-decision), and Runner.Run's power accountant tracks flow
	// pointers a preemption restore would invalidate.
	Preempt bool
}

// StreamSnapshot arms warm-state capture (see snapshot.go).
type StreamSnapshot struct {
	// At, when positive, arms warm-state capture: at the first event
	// boundary with next-event time ≥ At the run's complete state is
	// captured as a Snapshot (see snapshot.go for the determinism
	// contract). RunStream delivers it through OnSnapshot and continues
	// unperturbed; WarmStream stops there and returns it.
	At int64
	// OnSnapshot receives the captured snapshot during RunStream. The
	// callback observes: it must not mutate the running simulation. It
	// requires At > 0.
	OnSnapshot func(*Snapshot)
}

// StreamConcurrency configures the optimistic agent pool (agents.go).
type StreamConcurrency struct {
	// Agents is the number of concurrent allocation agents proposing
	// placements. 0 and 1 both mean the serial event loop — the pool
	// machinery engages at 2 and above. Agent mode is incompatible with
	// snapshot capture and resume.
	Agents int
	// Round bounds how many consecutive arrivals are staged into one
	// propose round (default 4×Agents). Larger rounds amortize the
	// propose barrier better; smaller rounds track capacity more
	// closely.
	Round int
	// Batch coalesces every run of same-instant arrivals into one
	// admission burst on the serial loop: the utilization sample behind
	// the windowed averages is taken once at the end of the burst
	// instead of after every arrival. The signal is piecewise-constant
	// and time does not move inside a burst, so the intermediate samples
	// the serial path takes are overwritten before any time is
	// integrated against them — every placement, counter and window
	// metric is bit-identical to the serial one-at-a-time oracle (the
	// equivalence tests in stream_batch_test.go pin this). A workload
	// that observes utilization (workload.UtilizationObserver) needs its
	// feedback after every arrival, so such streams are never coalesced.
	// Incompatible with agent mode, which batches through propose
	// rounds already.
	Batch bool
}

// StreamConfig parameterizes one open-ended steady-state run
// (Runner.RunStream), grouped by concern.
type StreamConfig struct {
	// Workload bounds the arrival stream.
	Workload StreamWorkload
	// Windows shapes the warmup cut, reporting windows and reservoirs.
	Windows StreamWindows
	// Faults is the stream-level fault surface.
	Faults StreamFaults
	// Snapshot arms warm-state capture.
	Snapshot StreamSnapshot
	// Concurrency configures the optimistic agent pool.
	Concurrency StreamConcurrency
}

// Validate checks the configuration, including the compatibility rules
// between groups: eviction needs a fault plan, snapshot capture needs a
// positive boundary, and agent mode excludes snapshot capture (a
// multi-agent run has no serial event boundary to capture at).
func (c StreamConfig) Validate() error {
	if c.Workload.MaxArrivals <= 0 && c.Workload.Duration <= 0 {
		return fmt.Errorf("sim: stream run needs a stop criterion (MaxArrivals or Duration)")
	}
	if c.Workload.MaxArrivals < 0 || c.Workload.Duration < 0 || c.Windows.Warmup < 0 {
		return fmt.Errorf("sim: negative stream bounds (arrivals %d, duration %d, warmup %d)",
			c.Workload.MaxArrivals, c.Workload.Duration, c.Windows.Warmup)
	}
	if c.Windows.Window <= 0 {
		return fmt.Errorf("sim: stream window must be positive, got %d", c.Windows.Window)
	}
	if c.Workload.Duration > 0 && c.Workload.Duration <= c.Windows.Warmup {
		return fmt.Errorf("sim: duration %d must exceed warmup %d", c.Workload.Duration, c.Windows.Warmup)
	}
	if c.Windows.ReservoirSize < 0 {
		return fmt.Errorf("sim: negative reservoir size %d", c.Windows.ReservoirSize)
	}
	if c.Faults.Evict && c.Faults.Plan == nil {
		return fmt.Errorf("sim: Faults.Evict requires Faults.Plan")
	}
	if c.Faults.Preempt && !c.Faults.Retry {
		return fmt.Errorf("sim: Faults.Preempt requires Faults.Retry (victims re-enter through the retry queue)")
	}
	if c.Faults.Preempt && c.Concurrency.Agents > 1 {
		return fmt.Errorf("sim: preemption (Faults.Preempt) is incompatible with agent mode (Agents=%d)", c.Concurrency.Agents)
	}
	if c.Snapshot.At < 0 {
		return fmt.Errorf("sim: negative snapshot point %d", c.Snapshot.At)
	}
	if c.Snapshot.OnSnapshot != nil && c.Snapshot.At <= 0 {
		return fmt.Errorf("sim: OnSnapshot requires Snapshot.At")
	}
	if c.Concurrency.Agents < 0 || c.Concurrency.Round < 0 {
		return fmt.Errorf("sim: negative concurrency parameters (agents %d, round %d)",
			c.Concurrency.Agents, c.Concurrency.Round)
	}
	if c.Concurrency.Round > 0 && c.Concurrency.Agents <= 1 {
		return fmt.Errorf("sim: Concurrency.Round requires Agents > 1")
	}
	if c.Concurrency.Agents > 1 && c.Snapshot.At > 0 {
		return fmt.Errorf("sim: agent mode (Agents=%d) is incompatible with snapshot capture", c.Concurrency.Agents)
	}
	if c.Concurrency.Batch && c.Concurrency.Agents > 1 {
		return fmt.Errorf("sim: batch admission (Concurrency.Batch) is incompatible with agent mode (Agents=%d)", c.Concurrency.Agents)
	}
	return nil
}

// WindowStats is one complete steady-state reporting window.
type WindowStats struct {
	// Start and End delimit the window, [Start, End).
	Start, End int64
	// Arrivals, Accepted and Dropped count the VMs that arrived inside
	// the window. Under the retry queue, Accepted counts placements that
	// happened inside the window (a queued arrival may be accepted in a
	// later window than it arrived in) and queued-but-unplaced arrivals
	// count in neither bucket, so Accepted+Dropped may differ from
	// Arrivals.
	Arrivals, Accepted, Dropped int
	// Displaced and Recovered count the window's fault evictions and the
	// re-placements (attributed to the window the recovery happened in;
	// see Config.Evict).
	Displaced, Recovered int
	// TierArrivals, TierAccepted and TierPreempted break the window's
	// arrival, acceptance and preemption counts down by priority tier
	// (all in tier 0 for untiered workloads). TierPreempted counts the
	// window's evictions by the victim's tier.
	TierArrivals  [workload.NumTiers]int
	TierAccepted  [workload.NumTiers]int
	TierPreempted [workload.NumTiers]int
	// AvgUtil is the time-weighted compute utilization per resource over
	// the window, in percent. Capacity hidden by an active failure counts
	// as used — the denominator stays the nameplate capacity.
	AvgUtil [units.NumResources]float64
}

// TierAcceptancePct returns the window's acceptance rate for one tier in
// percent (100 for a tier with no arrivals in the window).
func (w WindowStats) TierAcceptancePct(tier int) float64 {
	if w.TierArrivals[tier] == 0 {
		return 100
	}
	return float64(w.TierAccepted[tier]) / float64(w.TierArrivals[tier]) * 100
}

// AcceptancePct returns the window's acceptance rate in percent (100 for
// an empty window).
func (w WindowStats) AcceptancePct() float64 {
	if w.Arrivals == 0 {
		return 100
	}
	return float64(w.Accepted) / float64(w.Arrivals) * 100
}

// TierStats is the per-priority-tier breakdown of one open-ended run:
// arrival/outcome counters in both whole-run and measured (post-warmup)
// form, preemption counters by victim tier, and the tier's own
// direct-decision latency percentiles. Untiered workloads put everything
// in tier 0.
type TierStats struct {
	// Whole-run counters (warmup included).
	TotalArrivals, TotalAccepted, TotalDropped int
	// Measured (post-warmup) counters.
	Arrivals, Accepted, Dropped int
	// Preempted counts this tier's VMs evicted by a higher-priority
	// arrival (whole run); PreemptRecovered the subset later re-placed
	// from the retry queue. A recovery never counts as a second
	// acceptance.
	Preempted, PreemptRecovered int
	// Direct-decision latency percentiles over the measured phase,
	// estimated from a per-tier reservoir of LatencySamples observations.
	LatencyP50, LatencyP95, LatencyP99 time.Duration
	LatencySamples                     int
}

// AcceptancePct returns the tier's measured acceptance rate in percent
// (100 when the tier saw no measured arrivals).
func (t TierStats) AcceptancePct() float64 {
	if t.Arrivals == 0 {
		return 100
	}
	return float64(t.Accepted) / float64(t.Arrivals) * 100
}

// SteadyState aggregates one open-ended run. The "measured" figures
// exclude the warmup period; the "Total" figures cover the whole run.
type SteadyState struct {
	Algorithm string
	Workload  string

	// Whole-run counters (warmup included).
	TotalArrivals, TotalAccepted, TotalDropped int

	// Measured (post-warmup) counters.
	Arrivals, Accepted, Dropped int

	// Windows holds every complete post-warmup reporting window.
	Windows []WindowStats

	// AvgUtil is the time-weighted compute utilization per resource over
	// the whole measured span, in percent.
	AvgUtil [units.NumResources]float64

	// Placement-decision latency percentiles over the measured phase,
	// estimated from a fixed-size reservoir of LatencySamples
	// observations. Only direct arrival-time decisions are sampled;
	// retry-queue drains are not.
	LatencyP50, LatencyP95, LatencyP99 time.Duration
	LatencySamples                     int

	// Fault/availability counters (zero without a fault plan; see
	// Config.Faults/Evict). Displaced counts VMs evicted off failed
	// hardware over the whole run, Recovered the subset re-placed
	// (immediately, or later from the retry queue — a recovery never
	// counts as a second acceptance), DisplacedLost those gone for good,
	// DisplacedQueued those that took the retry-queue detour. At the end
	// of a run Displaced == Recovered + DisplacedLost.
	Displaced       int
	Recovered       int
	DisplacedLost   int
	DisplacedQueued int

	// Re-placement latency percentiles over the measured phase: the
	// Schedule wall clock of displaced-VM recoveries, estimated from a
	// second reservoir of ReplaceSamples observations.
	ReplaceP50, ReplaceP95, ReplaceP99 time.Duration
	ReplaceSamples                     int

	// Retry-queue statistics (Config.RetryDropped, mirroring Result):
	// Enqueued counts arrivals (and displaced VMs) that waited,
	// RetrySucceeded those eventually placed, MeanWait their average
	// queue time. Arrivals still waiting when the run stops count into
	// TotalDropped only (displaced VMs into DisplacedLost) — their
	// outcome is unresolved in the measured phase.
	Enqueued       int
	RetrySucceeded int
	MeanWait       float64

	// Tiers is the per-priority-tier breakdown of the run (see
	// TierStats); untiered workloads land entirely in tier 0.
	Tiers [workload.NumTiers]TierStats

	// Preemption counters (zero unless StreamFaults.Preempt): Preempted
	// counts victims evicted to admit a higher-priority arrival,
	// PreemptRecovered those later re-placed from the retry queue,
	// PreemptLost those never re-placed (still waiting when the run
	// stopped). At the end of a run Preempted == PreemptRecovered +
	// PreemptLost.
	Preempted        int
	PreemptRecovered int
	PreemptLost      int

	// Agent-pool counters, zero on serial runs (see StreamConcurrency).
	// AgentCommits counts placements committed straight from an
	// optimistic proposal; AgentConflicts counts proposals that lost the
	// commit-time generation check (or failed joint flow allocation) and
	// went through the serial redo instead.
	AgentCommits   int
	AgentConflicts int

	// SchedulingTime is the wall clock spent inside Schedule calls (and,
	// in agent mode, propose rounds plus commits);
	// WallTime the whole run's wall clock (drain excluded).
	SchedulingTime time.Duration
	WallTime       time.Duration

	// End is the simulated time of the last measured event; Resident the
	// VMs still placed then.
	End      int64
	Resident int

	// RateMultiplier is the stream controller's final rate multiplier
	// (1 for uncontrolled streams).
	RateMultiplier float64
}

// PlacementsPerSec returns the sustained scheduling throughput: accepted
// VMs (whole run) per wall-clock second.
func (s *SteadyState) PlacementsPerSec() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return float64(s.TotalAccepted) / s.WallTime.Seconds()
}

// RunStream drives the scheduler over an open-ended arrival stream until
// the configured stop criterion, reporting warmup-excluded windowed
// steady-state metrics instead of Run's whole-trace aggregates.
//
// Arrivals are pulled lazily — the event heap only ever holds the
// resident VMs' departures plus the pending injections and fault-plan
// events, so memory is bounded by occupancy and plan length, not run
// length. The full Config fault surface applies: ad-hoc Injections, a
// faults.Plan (merged into the event loop through the non-boxing heap),
// displaced-VM recovery under Evict, and the RetryDropped FIFO queue
// (drained on departures and repairs; a waiting VM's lifetime starts
// when it is placed). If the stream implements
// workload.UtilizationObserver it receives the binding-resource
// utilization after every arrival, which is how the target-utilization
// controller closes its loop.
func (r *Runner) RunStream(s workload.Stream, cfg StreamConfig) (*SteadyState, error) {
	sr, err := r.newStreamRun(s, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Concurrency.Agents > 1 {
		// Concurrent agent mode (agents.go): same stream, same stop
		// criterion, arrivals fanned to the pool in rounds. Agents ≤ 1
		// stays on the serial loop below, bit for bit.
		pool, err := r.newAgentPool(cfg.Concurrency)
		if err != nil {
			return nil, err
		}
		defer pool.stop()
		if err := sr.loopAgents(pool); err != nil {
			return nil, err
		}
		return sr.finish(), nil
	}
	if err := sr.loop(); err != nil {
		return nil, err
	}
	return sr.finish(), nil
}

// streamRun is the complete live state of one RunStream execution,
// extracted into a struct so the same event loop can be entered three
// ways: fresh (RunStream), stopped at the snapshot boundary (WarmStream)
// and re-entered from a restored snapshot (ResumeStream). Every field is
// either snapshot state or derived from the configuration.
type streamRun struct {
	r   *Runner
	s   workload.Stream
	cfg StreamConfig
	obs workload.UtilizationObserver

	res  *SteadyState
	lat  *reservoir
	rep  *reservoir
	tlat [workload.NumTiers]*reservoir // per-tier direct-decision latency
	wind *windower

	h        eventQueue
	seq      int
	resident int
	lastT    int64

	// Retry queue: FIFO behind a head cursor, so the backing array is
	// reused once fully drained instead of reallocated per wave. Entries
	// are kept in tier-then-admission-sequence order (see admit and
	// queueBefore): tier-0 retries drain first, and within a tier the
	// original PR 7 admission-sequence guarantee holds. admitSeq is the
	// monotone admission counter the sequence numbers come from.
	waiting  []queuedVM
	wHead    int
	waitSum  float64
	admitSeq int

	// Same-instant fault events form one atomic burst: all of them apply
	// before any eviction or queue drain, so a correlated outage cannot
	// leak VMs onto hardware that fails in the same tick.
	burstFail, burstRepair bool

	pending workload.VM
	more    bool

	wallStart time.Time

	// Snapshot plumbing (see StreamSnapshot.At and snapshot.go).
	snapAt     int64
	onSnap     func(*Snapshot)
	stopAtSnap bool
	snap       *Snapshot
}

// newStreamRun validates the configuration and assembles a fresh run:
// injections and fault-plan events seeded into the heap, counters at
// zero, and the first arrival pulled.
func (r *Runner) newStreamRun(s workload.Stream, cfg StreamConfig) (*streamRun, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := r.adoptStreamFaults(cfg.Faults); err != nil {
		return nil, err
	}
	size := cfg.Windows.ReservoirSize
	if size == 0 {
		size = 4096
	}
	seed := cfg.Windows.ReservoirSeed
	if seed == 0 {
		seed = 1
	}
	obs, _ := s.(workload.UtilizationObserver)
	sr := &streamRun{
		r: r, s: s, cfg: cfg, obs: obs,
		res:    &SteadyState{Algorithm: r.sch.Name(), Workload: s.Name(), RateMultiplier: 1},
		lat:    newReservoir(size, seed),
		rep:    newReservoir(size, seed+1), // re-placement latencies, own stream
		wind:   &windower{warmup: cfg.Windows.Warmup, window: cfg.Windows.Window},
		snapAt: cfg.Snapshot.At,
		onSnap: cfg.Snapshot.OnSnapshot,
	}
	for t := range sr.tlat {
		// Per-tier latency reservoirs, each with its own counted stream
		// (seeds seed+2.. — lat and rep hold seed and seed+1).
		sr.tlat[t] = newReservoir(size, seed+2+int64(t))
	}
	for _, inj := range r.injections {
		sr.h.Push(event{t: inj.T, kind: inject, seq: sr.seq, do: inj.Do})
		sr.seq++
	}
	if r.plan != nil {
		for i := range r.plan.Events {
			sr.h.Push(event{t: r.plan.Events[i].T, kind: fault, seq: sr.seq, fx: i})
			sr.seq++
		}
	}
	sr.wallStart = time.Now()
	r.resetFaultCounts()

	sr.pending, sr.more = s.Next()
	if sr.more && cfg.Workload.Duration > 0 && sr.pending.Arrival > cfg.Workload.Duration {
		sr.more = false // the very first arrival already lies beyond the bound
	}
	if sr.more {
		sr.res.TotalArrivals++
	}
	return sr, nil
}

// adoptStreamFaults moves a StreamConfig fault surface onto the runner,
// where the shared event-loop machinery reads it. The surface may arrive
// through either Config (NewRunner) or StreamConfig — carrying it in
// both at once is ambiguous and rejected.
func (r *Runner) adoptStreamFaults(f StreamFaults) error {
	if f.Plan == nil && !f.Evict && !f.Retry && !f.Preempt {
		return nil
	}
	if r.plan != nil || r.evict || r.retry {
		return fmt.Errorf("sim: fault surface configured on both Config and StreamConfig.Faults")
	}
	if f.Plan != nil {
		cl := r.st.Cluster
		if err := f.Plan.Validate(cl.NumRacks(), cl.Config().BoxesPerRack()); err != nil {
			return err
		}
	}
	r.plan = f.Plan
	r.evict = f.Evict
	r.retry = f.Retry
	r.preempt = f.Preempt
	return nil
}

// queueBefore is the retry queue's total order: priority tier first
// (tier 0 drains before tier 1), admission sequence within a tier — so
// the PR 7 original-arrival-sequence guarantee still holds between VMs of
// equal tier, and an all-tier-0 workload orders exactly as before.
func queueBefore(a, b queuedVM) bool {
	if a.vm.Tier != b.vm.Tier {
		return a.vm.Tier < b.vm.Tier
	}
	return a.seq < b.seq
}

// admit inserts one entry into the retry queue in tier-then-admission-
// sequence order (queueBefore). Equal-tier serial admissions are
// monotone, so the common path is a plain append; a higher-tier entry —
// or an agent-round conflict loser re-queuing under its original arrival
// sequence after being overtaken by a displaced VM evicted in the same
// round — is slotted back where the order says, never depending on which
// agent lost the commit race.
func (sr *streamRun) admit(q queuedVM) {
	n := len(sr.waiting)
	if n == sr.wHead || !queueBefore(q, sr.waiting[n-1]) {
		sr.waiting = append(sr.waiting, q)
		return
	}
	sr.waiting = append(sr.waiting, queuedVM{})
	i := n
	for i > sr.wHead && queueBefore(q, sr.waiting[i-1]) {
		sr.waiting[i] = sr.waiting[i-1]
		i--
	}
	sr.waiting[i] = q
}

// utilNow reads the compute utilization signal: per resource in percent,
// plus the binding (maximum) fraction for controller feedback.
func (sr *streamRun) utilNow() (perRes [units.NumResources]float64, binding float64) {
	for _, k := range units.Resources() {
		u := sr.r.st.Cluster.Utilization(k)
		perRes[k] = u * 100
		if u > binding {
			binding = u
		}
	}
	return
}

// drainQueue retries the waiting queue head-first at time now. Under
// preemption a blocked head gets one preemption attempt before it blocks
// the rest, so a queued tier-0 VM exercises the same displacement right a
// fresh tier-0 arrival would; victims join the queue behind every
// equal-or-higher-priority entry (they are strictly lower tier than the
// head), so the drain still terminates — preemption chains strictly
// descend the tier order.
func (sr *streamRun) drainQueue(now int64, measured bool) {
	r, res, wind := sr.r, sr.res, sr.wind
	for sr.wHead < len(sr.waiting) {
		q := sr.waiting[sr.wHead]
		start := time.Now()
		a, err := r.sch.Schedule(q.vm)
		res.SchedulingTime += time.Since(start)
		if err != nil && r.preempt && q.vm.Tier < workload.NumTiers-1 {
			a, err = sr.tryPreempt(q.vm, now, measured)
		}
		if err != nil {
			return // the head blocks the rest
		}
		sr.waiting[sr.wHead] = queuedVM{}
		sr.wHead++
		res.RetrySucceeded++
		sr.waitSum += float64(now - q.vm.Arrival)
		sr.resident++
		switch {
		case q.displaced:
			// A late recovery: the VM already counted as accepted at
			// its original arrival, so only the displacement outcome
			// moves.
			res.Recovered++
			if measured {
				wind.cur.Recovered++
			}
		case q.preempted:
			// Same: a preemption victim re-placed, not a new acceptance.
			res.PreemptRecovered++
			res.Tiers[q.vm.Tier].PreemptRecovered++
		default:
			res.TotalAccepted++
			res.Tiers[q.vm.Tier].TotalAccepted++
			if measured {
				res.Accepted++
				res.Tiers[q.vm.Tier].Accepted++
				wind.cur.Accepted++
				wind.cur.TierAccepted[q.vm.Tier]++
			}
		}
		sr.h.Push(event{t: now + q.vm.Lifetime, kind: departure, seq: sr.seq, vm: q.vm, a: a})
		sr.seq++
	}
	sr.waiting = sr.waiting[:0]
	sr.wHead = 0
}

// nextEventTime returns the time of the event the loop would process
// next; the loop condition guarantees one exists.
func (sr *streamRun) nextEventTime() int64 {
	if heapFirst(&sr.h, sr.pending, sr.more) {
		return sr.h.Min().t
	}
	return sr.pending.Arrival
}

// loop runs the event loop to the stop criterion — or, for WarmStream,
// to the snapshot boundary. The run ends with the arrival budget:
// simulating past the last arrival would only measure an emptying
// cluster, which is not steady state (Drain releases the survivors
// afterwards, unmetered). Fault events past the last arrival are
// likewise never applied.
func (sr *streamRun) loop() error {
	wind := sr.wind
	for sr.more || sr.h.Len() > 0 {
		if sr.snapAt > 0 && sr.snap == nil && sr.nextEventTime() >= sr.snapAt {
			// The snapshot boundary: every event before Snapshot.At has been
			// fully processed and nothing at or after it has started.
			snap, err := sr.capture()
			if err != nil {
				return err
			}
			sr.snap = snap
			if sr.onSnap != nil {
				sr.onSnap(snap)
			}
			if sr.stopAtSnap {
				return nil
			}
		}
		var e event
		if heapFirst(&sr.h, sr.pending, sr.more) {
			e = sr.h.Pop()
		} else {
			e = sr.nextArrival()
		}
		if e.t < sr.lastT {
			return fmt.Errorf("sim: stream %q time went backwards: %d < %d", sr.s.Name(), e.t, sr.lastT)
		}
		wind.advance(e.t)
		sr.lastT = e.t
		// wind.warmup, not Windows.Warmup: a resumed run inherits the warm
		// phase's boundary from the snapshot (they agree on fresh runs).
		measured := e.t >= wind.warmup

		if e.kind != arrival {
			sr.handleEvent(e, measured)
			continue
		}
		if err := sr.processArrival(e, measured); err != nil {
			return err
		}
		if sr.cfg.Concurrency.Batch && sr.obs == nil {
			// Batch admission: the rest of a same-instant arrival burst is
			// admitted before the utilization sample below. This is exact,
			// not approximate: time does not move inside the burst
			// (wind.advance at the same instant integrates nothing and the
			// serial path's intermediate wind.set values are overwritten
			// before any time passes), the snapshot boundary cannot fire
			// mid-burst (its condition already held — or already fired —
			// when the burst's first arrival was reached), and a departure
			// pushed by a burst arrival lands strictly later than the
			// burst (lifetimes are positive), so heapFirst keeps yielding
			// the burst's arrivals exactly as the serial merge would. A
			// utilization-observing stream needs feedback after every
			// arrival and is never coalesced (the burst condition above).
			for sr.more && sr.pending.Arrival == e.t && !heapFirst(&sr.h, sr.pending, sr.more) {
				if err := sr.processArrival(sr.nextArrival(), measured); err != nil {
					return err
				}
			}
		}
		perRes, binding := sr.utilNow()
		wind.set(perRes)
		if sr.obs != nil {
			sr.obs.ObserveUtilization(binding)
		}
		if !sr.more {
			break // the arrival just processed was the last: stop here
		}
	}
	return nil
}

// processArrival admits one arrival event: counters, the placement
// decision (or retry-queue admission), and the departure push. It is the
// serial loop's arrival block, extracted so batch admission
// (StreamConcurrency.Batch) can run it back to back over a same-instant
// burst; the caller owns the post-arrival utilization sample.
func (sr *streamRun) processArrival(e event, measured bool) error {
	r, res, wind := sr.r, sr.res, sr.wind
	if err := e.vm.Validate(); err != nil {
		return err
	}
	res.Tiers[e.vm.Tier].TotalArrivals++
	if measured {
		res.Arrivals++
		wind.cur.Arrivals++
		res.Tiers[e.vm.Tier].Arrivals++
		wind.cur.TierArrivals[e.vm.Tier]++
	}
	sr.admitSeq++
	if r.retry && sr.wHead < len(sr.waiting) {
		// Queue fairness: waiting VMs of equal or higher priority go
		// first; the arrival joins the queue at its tier-order slot
		// and is not sampled as a direct decision.
		sr.admit(queuedVM{vm: e.vm, seq: sr.admitSeq})
		res.Enqueued++
		sr.drainQueue(e.t, measured)
		return nil
	}
	start := time.Now()
	a, err := r.sch.Schedule(e.vm)
	d := time.Since(start)
	res.SchedulingTime += d
	if measured {
		sr.lat.add(float64(d))
		sr.tlat[e.vm.Tier].add(float64(d))
	}
	if err != nil && r.preempt && e.vm.Tier < workload.NumTiers-1 {
		// Both placement tiers failed: a high-priority arrival may
		// displace strictly-lower-tier victims (core.Preempt).
		a, err = sr.tryPreempt(e.vm, e.t, measured)
	}
	if err != nil {
		if r.retry {
			sr.admit(queuedVM{vm: e.vm, seq: sr.admitSeq})
			res.Enqueued++
		} else {
			res.TotalDropped++
			res.Tiers[e.vm.Tier].TotalDropped++
			if measured {
				res.Dropped++
				wind.cur.Dropped++
				res.Tiers[e.vm.Tier].Dropped++
			}
		}
		return nil
	}
	res.TotalAccepted++
	res.Tiers[e.vm.Tier].TotalAccepted++
	sr.resident++
	if measured {
		res.Accepted++
		wind.cur.Accepted++
		res.Tiers[e.vm.Tier].Accepted++
		wind.cur.TierAccepted[e.vm.Tier]++
	}
	sr.h.Push(event{t: e.t + e.vm.Lifetime, kind: departure, seq: sr.seq, vm: e.vm, a: a})
	sr.seq++
	return nil
}

// nextArrival materializes the pending arrival as an event and pulls its
// successor — unless the arrival budget or the simulated-time bound stops
// the run there. Shared between the serial and the agent loop.
func (sr *streamRun) nextArrival() event {
	cfg, res := sr.cfg, sr.res
	e := event{t: sr.pending.Arrival, kind: arrival, vm: sr.pending}
	if cfg.Workload.MaxArrivals > 0 && res.TotalArrivals >= cfg.Workload.MaxArrivals {
		sr.more = false
	} else {
		sr.pending, sr.more = sr.s.Next()
		if sr.more && cfg.Workload.Duration > 0 && sr.pending.Arrival > cfg.Workload.Duration {
			sr.more = false
		}
		if sr.more {
			res.TotalArrivals++
		}
	}
	return e
}

// handleEvent processes one non-arrival event — injection, fault-plan
// event or departure — with its queue drains and window bookkeeping. The
// machinery is shared verbatim between the serial loop and the agent
// loop (which flushes any staged propose round before calling it).
func (sr *streamRun) handleEvent(e event, measured bool) {
	r, res, wind := sr.r, sr.res, sr.wind
	if e.kind == inject || e.kind == fault {
		drain := false
		if e.kind == inject {
			e.do(r.st)
			drain = true // an injection may have freed capacity
		} else {
			ev := r.plan.Events[e.fx]
			r.applyFault(ev)
			if ev.Repair {
				sr.burstRepair = true
			} else {
				sr.burstFail = true
			}
			if sameInstantFaultPending(&sr.h, e.t) {
				return // finish the whole same-instant burst first
			}
			if r.evict && sr.burstFail {
				r.evictDisplaced(&sr.h, e.t, evictHooks{
					after: func(a *sched.Assignment, recovered bool, d time.Duration) {
						res.Displaced++
						if measured {
							wind.cur.Displaced++
						}
						if recovered {
							res.Recovered++
							if measured {
								wind.cur.Recovered++
								sr.rep.add(float64(d))
							}
						}
					},
					lost: func(vm workload.VM) {
						sr.resident--
						if r.retry {
							// Re-enters the queue now: wait measured
							// from the eviction, lifetime restarting
							// when re-placed.
							vm.Arrival = e.t
							sr.admitSeq++
							sr.admit(queuedVM{vm: vm, displaced: true, seq: sr.admitSeq})
							res.Enqueued++
							res.DisplacedQueued++
						} else {
							res.DisplacedLost++
						}
					},
				})
			}
			drain = sr.burstRepair
			sr.burstFail, sr.burstRepair = false, false
		}
		if r.retry && drain {
			sr.drainQueue(e.t, measured) // freed capacity retries the queue
		}
		perRes, _ := sr.utilNow()
		wind.set(perRes)
		return
	}
	// Departure. nil assignment: ghost of a displaced VM, already handled.
	if e.a != nil {
		r.sch.Release(e.a)
		sr.resident--
		if r.retry {
			sr.drainQueue(e.t, measured)
		}
	}
	perRes, _ := sr.utilNow()
	wind.set(perRes)
}

// finish seals the run: leftover queue entries, aggregate averages,
// percentile estimates and the optional drain.
func (sr *streamRun) finish() *SteadyState {
	res := sr.res
	res.WallTime = time.Since(sr.wallStart)

	for i := sr.wHead; i < len(sr.waiting); i++ { // still queued: never placed
		q := sr.waiting[i]
		switch {
		case q.displaced:
			res.DisplacedLost++ // was accepted once; its re-admission failed
		case q.preempted:
			res.PreemptLost++ // likewise: a victim never re-placed
		default:
			res.TotalDropped++
			res.Tiers[q.vm.Tier].TotalDropped++
		}
	}
	if res.RetrySucceeded > 0 {
		res.MeanWait = sr.waitSum / float64(res.RetrySucceeded)
	}
	res.End = sr.lastT
	res.Resident = sr.resident
	res.Windows = sr.wind.close(sr.lastT)
	res.AvgUtil = sr.wind.overallAvg(sr.lastT)
	res.LatencySamples = sr.lat.samples()
	res.LatencyP50 = time.Duration(sr.lat.percentile(50))
	res.LatencyP95 = time.Duration(sr.lat.percentile(95))
	res.LatencyP99 = time.Duration(sr.lat.percentile(99))
	res.ReplaceSamples = sr.rep.samples()
	res.ReplaceP50 = time.Duration(sr.rep.percentile(50))
	res.ReplaceP95 = time.Duration(sr.rep.percentile(95))
	res.ReplaceP99 = time.Duration(sr.rep.percentile(99))
	for t := range sr.tlat {
		ts := &res.Tiers[t]
		ts.LatencySamples = sr.tlat[t].samples()
		ts.LatencyP50 = time.Duration(sr.tlat[t].percentile(50))
		ts.LatencyP95 = time.Duration(sr.tlat[t].percentile(95))
		ts.LatencyP99 = time.Duration(sr.tlat[t].percentile(99))
	}
	res.RateMultiplier = finalMultiplier(sr.s)

	if sr.cfg.Workload.Drain {
		// Unmetered: release the survivors so the state ends empty.
		for sr.h.Len() > 0 {
			e := sr.h.Pop()
			if e.kind == departure && e.a != nil {
				sr.r.sch.Release(e.a)
			}
		}
	}
	return res
}

// heapFirst decides the merge order between the event heap's minimum and
// the single materialized pending arrival — the ordering both event
// loops (Run and RunStream) share: injections and departures outrank
// arrivals at equal times (kind order), and arrivals at equal times keep
// stream order because only one is materialized at a time.
func heapFirst(h *eventQueue, pending workload.VM, more bool) bool {
	if h.Len() == 0 {
		return false
	}
	min := h.Min()
	return !more || min.t < pending.Arrival ||
		(min.t == pending.Arrival && min.kind < arrival)
}

// controlled is implemented by the workload generator streams that carry
// a UtilizationController.
type controlled interface {
	Controller() *workload.UtilizationController
}

// finalMultiplier recovers a stream's final rate multiplier when it
// exposes its controller, else 1.
func finalMultiplier(s workload.Stream) float64 {
	if c, ok := s.(controlled); ok {
		if ctl := c.Controller(); ctl != nil {
			return ctl.Multiplier()
		}
	}
	return 1
}

// windower integrates the piecewise-constant utilization signal into
// fixed-length post-warmup windows plus an overall measured average, and
// attributes arrival counts to the open window.
type windower struct {
	warmup, window int64

	cur         WindowStats
	curIntegral [units.NumResources]float64
	windows     []WindowStats

	overall [units.NumResources]float64 // integral since warmup

	val   [units.NumResources]float64 // current signal, percent
	lastT int64
}

// set records the signal's value from the last advanced time onward.
func (w *windower) set(val [units.NumResources]float64) { w.val = val }

// advance integrates the current signal up to time to, splitting the
// integral at window boundaries and closing every window it crosses.
func (w *windower) advance(to int64) {
	t := w.lastT
	w.lastT = to
	if to <= w.warmup {
		return
	}
	if t < w.warmup {
		t = w.warmup
	}
	if w.cur.End == 0 { // first measured segment: open window 0
		w.cur.Start, w.cur.End = w.warmup, w.warmup+w.window
	}
	for t < to {
		seg := to
		if w.cur.End < seg {
			seg = w.cur.End
		}
		dt := float64(seg - t)
		for k := range w.val {
			w.curIntegral[k] += w.val[k] * dt
			w.overall[k] += w.val[k] * dt
		}
		t = seg
		if t == w.cur.End {
			w.closeCurrent()
		}
	}
}

// closeCurrent finalizes the open window and opens its successor.
func (w *windower) closeCurrent() {
	span := float64(w.cur.End - w.cur.Start)
	for k := range w.curIntegral {
		w.cur.AvgUtil[k] = w.curIntegral[k] / span
	}
	w.windows = append(w.windows, w.cur)
	w.cur = WindowStats{Start: w.cur.End, End: w.cur.End + w.window}
	w.curIntegral = [units.NumResources]float64{}
}

// close ends the run at time end and returns the complete windows; a
// trailing partial window is folded into the overall average but not
// reported (it is not a full steady-state window).
func (w *windower) close(end int64) []WindowStats {
	w.advance(end)
	return w.windows
}

// overallAvg returns the measured-span time average per resource.
func (w *windower) overallAvg(end int64) [units.NumResources]float64 {
	var out [units.NumResources]float64
	if end <= w.warmup {
		return out
	}
	span := float64(end - w.warmup)
	for k := range w.overall {
		out[k] = w.overall[k] / span
	}
	return out
}

// reservoir is a fixed-size uniform sample over a stream of observations
// (Vitter's algorithm R), used for the decision-latency percentiles. The
// sample buffer is preallocated to its fixed capacity and the percentile
// sort works on a reusable scratch copy, so the reservoir performs no
// per-observation allocations and at most one sort per batch of reads —
// part of the steady-state loop's memory discipline (DESIGN.md §9).
type reservoir struct {
	k        int
	n        int64
	seed     int64
	vals     []float64
	src      *workload.CountingSource // counted so snapshots can replay it
	rng      *rand.Rand
	sorted   []float64 // reusable scratch copy of vals, sorted
	sortedOK bool      // sorted reflects vals
}

// newReservoir returns a reservoir holding at most k samples.
func newReservoir(k int, seed int64) *reservoir {
	src := workload.NewCountingSource(seed)
	return &reservoir{k: k, seed: seed, vals: make([]float64, 0, k), src: src, rng: rand.New(src)}
}

// add offers one observation to the reservoir.
func (r *reservoir) add(v float64) {
	r.n++
	r.sortedOK = false
	if len(r.vals) < r.k {
		r.vals = append(r.vals, v)
		return
	}
	if j := r.rng.Int63n(r.n); j < int64(r.k) {
		r.vals[j] = v
	}
}

// samples returns the number of observations currently held.
func (r *reservoir) samples() int { return len(r.vals) }

// percentile returns the p-th percentile (nearest-rank) of the held
// sample, 0 when empty. Consecutive reads share one sorted scratch copy.
func (r *reservoir) percentile(p float64) float64 {
	if len(r.vals) == 0 {
		return 0
	}
	if !r.sortedOK {
		r.sorted = append(r.sorted[:0], r.vals...)
		sort.Float64s(r.sorted)
		r.sortedOK = true
	}
	rank := int(p/100*float64(len(r.sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(r.sorted) {
		rank = len(r.sorted) - 1
	}
	return r.sorted[rank]
}
