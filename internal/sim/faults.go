package sim

import (
	"time"

	"risa/internal/core"
	"risa/internal/faults"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/workload"
)

// resetFaultCounts prepares the per-box outage refcounts for one run.
// Tiers overlap — a box can be inside a box-tier outage and a rack- or
// pod-tier outage at once — so a box is healthy only when no scope
// covering it is down; a plain boolean toggle would let the first
// repair un-fail a box another tier still holds down. Ad-hoc Injections
// bypass the counts (they call SetBoxFailed directly, as always).
func (r *Runner) resetFaultCounts() {
	if r.plan == nil {
		return
	}
	n := len(r.st.Cluster.Boxes())
	if cap(r.downCount) < n {
		r.downCount = make([]int, n)
		return
	}
	r.downCount = r.downCount[:n]
	for i := range r.downCount {
		r.downCount[i] = 0
	}
}

// applyFault applies one plan event's scope to the cluster through the
// refcounts. Repairs that bring a box's count to zero re-seed both
// topology index tiers exactly (topology.SetBoxFailed), so post-repair
// scheduling is bit-identical to a never-failed cluster.
func (r *Runner) applyFault(ev faults.Event) {
	cl := r.st.Cluster
	switch ev.Tier {
	case faults.BoxTier:
		r.noteFault(cl.Rack(ev.Rack).Boxes()[ev.Box], ev.Repair)
	case faults.RackTier:
		for _, b := range cl.Rack(ev.Rack).Boxes() {
			r.noteFault(b, ev.Repair)
		}
	case faults.PodTier:
		lo, hi := r.plan.PodRacks(ev.Pod, cl.NumRacks())
		for ri := lo; ri < hi; ri++ {
			for _, b := range cl.Rack(ri).Boxes() {
				r.noteFault(b, ev.Repair)
			}
		}
	}
}

// noteFault adjusts one box's outage refcount and toggles the topology
// failure flag on the 0↔positive edges. The core lives in the
// package-level noteFault (driver.go) so the daemon's live mutations
// share the exact refcount semantics of the fault plans.
func (r *Runner) noteFault(b *topology.Box, repair bool) {
	noteFault(r.st.Cluster, r.downCount, b, repair)
}

// sameInstantFaultPending reports whether the queue's next event is
// another fault event of the same instant — the condition under which
// the event loops defer eviction and queue drains until the whole burst
// has been applied.
func sameInstantFaultPending(h *eventQueue, t int64) bool {
	return h.Len() > 0 && h.Min().t == t && h.Min().kind == fault
}

// evictHooks customizes evictDisplaced for the two event loops' different
// bookkeeping. Any hook may be nil.
type evictHooks struct {
	// before fires per displaced VM while its old holdings are still
	// attached (Run detaches the circuits from the power accountant).
	before func(a *sched.Assignment)
	// after fires per displaced VM once re-placement was attempted; on
	// recovery a holds the new placement, d its Schedule wall clock.
	after func(a *sched.Assignment, recovered bool, d time.Duration)
	// lost fires for VMs that could not be re-placed, after their record
	// was pooled and their departure event neutralized.
	lost func(vm workload.VM)
}

// evictDisplaced scans the pending-event queue for departures whose
// assignments sit on failed hardware and re-places each through
// core.Displace. A recovered VM keeps its departure event — the record
// the event references now holds the new placement, and the pooled
// record of the transaction recycles, so eviction stays off the
// allocator. An unrecoverable VM's record is pooled and its departure
// event neutralized into a ghost (a = nil) that the event loops skip;
// the hooks decide the VM's fate (drop, or the retry queue).
//
// VMs whose departure is due at the failure instant itself (e.t == now)
// are left alone: they are leaving this tick anyway — faults sort
// before departures, so the pending departure is still visible here —
// and displacing (or killing) a VM at the end of its lifetime would
// only distort the displacement counters.
//
// The scan order is the queue's array order: deterministic for a given
// event history, which is all bit-identical replay needs.
func (r *Runner) evictDisplaced(h *eventQueue, now int64, hooks evictHooks) {
	for i := range h.s {
		e := &h.s[i]
		if e.kind != departure || e.a == nil || e.t <= now || !e.a.OnFailedHardware() {
			continue
		}
		if hooks.before != nil {
			hooks.before(e.a)
		}
		start := time.Now()
		recovered := core.Displace(r.st, r.sch, e.a)
		d := time.Since(start)
		if hooks.after != nil {
			hooks.after(e.a, recovered, d)
		}
		if !recovered {
			vm := e.vm
			r.st.ReleaseVM(e.a) // holdings already released: pools the shell
			e.a = nil
			if hooks.lost != nil {
				hooks.lost(vm)
			}
		}
	}
}
