package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"risa/internal/faults"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// newTestDriver builds a driver over a fresh default-shaped datacenter.
func newTestDriver(t *testing.T, algo string) *Driver {
	t.Helper()
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sch, err := sched.New(algo, st, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewDriver(st, sch)
}

// driverScript derives a deterministic mixed place/mutate/advance script
// from seed and runs steps [applyFrom, n) against d — earlier steps only
// consume the RNG, so a restored driver can resume mid-script with the
// stream in the right position. Decisions from step recordFrom on are
// returned for comparison.
func driverScript(t *testing.T, d *Driver, seed int64, n, applyFrom, recordFrom int) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n-recordFrom)
	var vt int64
	id := 0
	for i := 0; i < n; i++ {
		apply := i >= applyFrom
		switch k := rng.Intn(12); {
		case k < 9:
			vt += rng.Int63n(10)
			id++
			vm := workload.VM{
				ID: id, Arrival: vt, Lifetime: 1 + rng.Int63n(80),
				Tier: rng.Intn(workload.NumTiers),
				Req:  units.Vec(units.Amount(1+rng.Int63n(24)), units.Amount(1+rng.Int63n(24)), 0),
			}
			if !apply {
				continue
			}
			_, pt, err := d.Place(vm)
			verdict := "place"
			if err != nil {
				verdict = "reject"
			}
			if i >= recordFrom {
				out = append(out, fmt.Sprintf("%s vm=%d t=%d resident=%d", verdict, vm.ID, pt, d.Resident()))
			}
		case k < 11:
			ev := faults.Event{Tier: faults.BoxTier, Rack: rng.Intn(4), Box: rng.Intn(6)}
			if rng.Intn(2) == 0 {
				ev.Repair = true
			}
			if apply {
				ev.T = d.Now()
				if err := d.Apply(ev); err != nil {
					t.Fatal(err)
				}
			}
		default:
			adv := rng.Int63n(30)
			if apply {
				d.Advance(d.Now() + adv)
			}
		}
	}
	return out
}

// TestDriverSnapshotRoundtrip splits a script around Snapshot/
// RestoreDriver and requires the restored driver to finish it with
// decisions identical to the uncrashed twin's, ending in an identical
// snapshot — per registered algorithm, cursor state included.
func TestDriverSnapshotRoundtrip(t *testing.T) {
	for _, algo := range sched.Registered() {
		t.Run(algo, func(t *testing.T) {
			const n, split = 300, 140
			whole := newTestDriver(t, algo)
			want := driverScript(t, whole, 11, n, 0, split)

			orig := newTestDriver(t, algo)
			driverScript(t, orig, 11, split, 0, split)
			snap, err := orig.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			sch, err := sched.New(algo, st, sched.Options{})
			if err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreDriver(st, sch, snap)
			if err != nil {
				t.Fatal(err)
			}
			got := driverScript(t, restored, 11, n, split, split)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("restored driver diverged from uncrashed twin:\nwant %v\ngot  %v", want, got)
			}
			endA, err := whole.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			endB, err := restored.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(endA, endB) {
				t.Fatal("final snapshots differ")
			}
		})
	}
}

// TestDriverDepartures pins the event order: a VM placed for lifetime L
// frees its capacity at exactly T+L — one tick earlier it is still
// resident — and the virtual clock never runs backwards.
func TestDriverDepartures(t *testing.T) {
	d := newTestDriver(t, "RISA")
	if d.Resident() != 0 || d.Now() != 0 {
		t.Fatal("driver not pristine")
	}
	if _, _, err := d.Place(workload.VM{ID: 1, Arrival: 0, Lifetime: 100, Req: units.Vec(4, 4, 0)}); err != nil {
		t.Fatal(err)
	}
	if d.Resident() != 1 {
		t.Fatalf("resident = %d", d.Resident())
	}
	d.Advance(99)
	if d.Resident() != 1 {
		t.Fatal("departed early")
	}
	d.Advance(100)
	if d.Resident() != 0 {
		t.Fatal("did not depart at T+L")
	}
	if d.Now() != 100 {
		t.Fatalf("clock = %d", d.Now())
	}
	// A late-stamped arrival is clamped to the current time.
	_, pt, err := d.Place(workload.VM{ID: 2, Arrival: 50, Lifetime: 10, Req: units.Vec(1, 1, 0)})
	if err != nil || pt != 100 {
		t.Fatalf("late-stamped place at t=%d, err=%v; want 100", pt, err)
	}
}

// TestDriverApplyScope pins mutation validation and the fail/heal
// round-trip: pod scope and out-of-range coordinates are rejected, a
// fully failed cluster places nothing, and healing restores placability.
func TestDriverApplyScope(t *testing.T) {
	d := newTestDriver(t, "RISA")
	if err := d.Apply(faults.Event{Tier: faults.PodTier, Pod: 0}); err == nil {
		t.Fatal("pod scope must be rejected")
	}
	if err := d.Apply(faults.Event{Tier: faults.RackTier, Rack: 99}); err == nil {
		t.Fatal("out-of-range rack must be rejected")
	}
	if err := d.Apply(faults.Event{Tier: faults.BoxTier, Rack: 0, Box: 99}); err == nil {
		t.Fatal("out-of-range box must be rejected")
	}
	for r := 0; r < d.st.Cluster.NumRacks(); r++ {
		if err := d.Apply(faults.Event{Tier: faults.RackTier, Rack: r}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := d.Place(workload.VM{ID: 1, Lifetime: 10, Req: units.Vec(1, 1, 0)}); err == nil {
		t.Fatal("placement on a fully failed cluster must be rejected")
	}
	for r := 0; r < d.st.Cluster.NumRacks(); r++ {
		if err := d.Apply(faults.Event{Repair: true, Tier: faults.RackTier, Rack: r}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := d.Place(workload.VM{ID: 2, Lifetime: 10, Req: units.Vec(1, 1, 0)}); err != nil {
		t.Fatalf("placement after heal: %v", err)
	}
}
