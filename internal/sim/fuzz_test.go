package sim

import (
	"reflect"
	"testing"

	"risa/internal/core"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// fuzzInstance is one datacenter + scheduler under the fuzz script.
type fuzzInstance struct {
	st   *sched.State
	sch  sched.Scheduler
	live []*sched.Assignment
}

func newFuzzInstance(t *testing.T) *fuzzInstance {
	t.Helper()
	cfg := topology.DefaultConfig()
	cfg.Racks = 3
	st, err := sched.NewState(cfg, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &fuzzInstance{st: st, sch: core.New(st)}
}

// step applies one decoded op. Both instances run the same script, so
// any outcome divergence after the snapshot/restore split is a
// roundtrip bug.
func (in *fuzzInstance) step(t *testing.T, op, sel, amt byte, vmID int) (placed bool, sig string) {
	t.Helper()
	boxes := in.st.Cluster.Boxes()
	switch op % 6 {
	case 0: // schedule a VM shaped by amt
		vm := workload.VM{
			ID: vmID, Lifetime: 1000,
			Req: units.Vec(1+units.Amount(amt)%16, 1+units.Amount(sel)%16, 32),
		}
		a, err := in.sch.Schedule(vm)
		if err != nil {
			return false, "drop"
		}
		in.live = append(in.live, a)
		return true, placementSig(in.st, a)
	case 1: // release a live VM
		if len(in.live) > 0 {
			j := int(sel) % len(in.live)
			in.sch.Release(in.live[j])
			in.live = append(in.live[:j], in.live[j+1:]...)
		}
	case 2: // fail a box
		in.st.Cluster.SetBoxFailed(boxes[int(sel)%len(boxes)], true)
	case 3: // heal a box
		in.st.Cluster.SetBoxFailed(boxes[int(sel)%len(boxes)], false)
	case 4: // fail or heal a box uplink
		ref := network.LinkRef{
			Tier: network.BoxUplink,
			Rack: int(sel) % in.st.Cluster.NumRacks(),
			Box:  int(amt) % in.st.Cluster.Config().BoxesPerRack(),
		}
		if l, err := in.st.Fabric.LinkByRef(ref); err == nil {
			in.st.Fabric.SetLinkFailed(l, amt%2 == 0)
		}
	case 5: // displace a live VM through the scheduler
		if len(in.live) > 0 {
			j := int(sel) % len(in.live)
			a := in.live[j]
			if !core.Displace(in.st, in.sch, a) {
				// Unrecoverable: the VM is gone; drop the record.
				in.live = append(in.live[:j], in.live[j+1:]...)
			}
		}
	}
	return false, ""
}

// check asserts the instance's internal consistency.
func (in *fuzzInstance) check(t *testing.T, op int) {
	t.Helper()
	if err := in.st.Cluster.CheckInvariants(); err != nil {
		t.Fatalf("op %d: cluster: %v", op, err)
	}
	if err := in.st.Fabric.CheckInvariants(); err != nil {
		t.Fatalf("op %d: fabric: %v", op, err)
	}
}

// oracleEqual compares two instances exhaustively: every box's free
// space brute-forced from the boxes slice, the fabric aggregates, and
// the full captured state (exact brick shares, flow paths, failures and
// scheduler cursors).
func oracleEqual(t *testing.T, op int, a, b *fuzzInstance) {
	t.Helper()
	ab, bb := a.st.Cluster.Boxes(), b.st.Cluster.Boxes()
	for i := range ab {
		if ab[i].Free() != bb[i].Free() || ab[i].Failed() != bb[i].Failed() {
			t.Fatalf("op %d: box %d: free/failed %d/%v vs %d/%v",
				op, i, ab[i].Free(), ab[i].Failed(), bb[i].Free(), bb[i].Failed())
		}
	}
	af, bf := a.st.Fabric, b.st.Fabric
	if af.IntraRackFree() != bf.IntraRackFree() ||
		af.InterRackFree() != bf.InterRackFree() ||
		af.InterPodFree() != bf.InterPodFree() {
		t.Fatalf("op %d: fabric aggregates diverge", op)
	}
	sa, err := CaptureState(a.st, a.sch, a.live)
	if err != nil {
		t.Fatalf("op %d: capture a: %v", op, err)
	}
	sb, err := CaptureState(b.st, b.sch, b.live)
	if err != nil {
		t.Fatalf("op %d: capture b: %v", op, err)
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("op %d: captured states diverge:\na: %+v\nb: %+v", op, sa, sb)
	}
}

// FuzzSnapshotRoundtrip drives one instance through an arbitrary
// alloc/release/fail/heal/displace script, snapshots it mid-script via
// CaptureState, restores the snapshot into a second pristine instance,
// and then runs the remainder of the script on both — asserting after
// every op that both instances hold (CheckInvariants) and agree with
// each other down to exact brick shares, link reservations and
// scheduler cursors. Any divergence is a snapshot roundtrip bug: the
// restored instance failed to reproduce some decision-relevant state.
func FuzzSnapshotRoundtrip(f *testing.F) {
	// One op is three bytes: opcode, selector, amount.
	f.Add([]byte{0, 0, 10, 0, 1, 200, 1, 0, 0, 0, 2, 30})                 // alloc ×2, release, alloc
	f.Add([]byte{0, 3, 255, 2, 3, 0, 0, 1, 9, 3, 3, 0, 5, 0, 0})          // fail, alloc, heal, displace
	f.Add([]byte{0, 0, 8, 4, 0, 2, 0, 1, 9, 4, 0, 1, 0, 2, 7})            // link fail/heal around allocs
	f.Add([]byte{0, 0, 8, 0, 1, 9, 2, 0, 0, 5, 0, 0, 5, 1, 0, 3, 0, 0})   // fail then displace twice
	f.Add([]byte{0, 5, 31, 0, 6, 15, 1, 1, 0, 2, 4, 0, 0, 7, 3, 5, 0, 0}) // mixed churn
	f.Fuzz(func(t *testing.T, ops []byte) {
		orig := newFuzzInstance(t)
		nOps := len(ops) / 3
		splitAt := nOps / 2
		vmID := 0

		// First half: only the original runs.
		for i := 0; i < splitAt; i++ {
			op, sel, amt := ops[i*3], ops[i*3+1], ops[i*3+2]
			if placed, _ := orig.step(t, op, sel, amt, vmID); placed || op%6 == 0 {
				vmID++
			}
			orig.check(t, i)
		}

		// Snapshot and restore into a pristine twin.
		snap, err := CaptureState(orig.st, orig.sch, orig.live)
		if err != nil {
			t.Fatalf("capture: %v", err)
		}
		twin := newFuzzInstance(t)
		twinLive, err := RestoreState(twin.st, twin.sch, snap)
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		twin.live = twinLive
		twin.check(t, splitAt)
		oracleEqual(t, splitAt, orig, twin)

		// Second half: both run the same ops and must never diverge.
		for i := splitAt; i < nOps; i++ {
			op, sel, amt := ops[i*3], ops[i*3+1], ops[i*3+2]
			p1, s1 := orig.step(t, op, sel, amt, vmID)
			p2, s2 := twin.step(t, op, sel, amt, vmID)
			if op%6 == 0 {
				vmID++
			}
			if p1 != p2 || s1 != s2 {
				t.Fatalf("op %d: decisions diverge: %v/%s vs %v/%s", i, p1, s1, p2, s2)
			}
			orig.check(t, i)
			twin.check(t, i)
			oracleEqual(t, i, orig, twin)
		}
	})
}
