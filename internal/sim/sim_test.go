package sim

import (
	"testing"

	"risa/internal/baseline"
	"risa/internal/core"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

func newRunner(t testing.TB, mk func(*sched.State) sched.Scheduler) (*sched.State, *Runner) {
	t.Helper()
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, mk(st), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return st, r
}

func smallTrace() *workload.Trace {
	return &workload.Trace{Name: "small", VMs: []workload.VM{
		{ID: 0, Arrival: 0, Lifetime: 100, Req: units.Vec(8, 16, 128)},
		{ID: 1, Arrival: 10, Lifetime: 100, Req: units.Vec(4, 8, 128)},
		{ID: 2, Arrival: 20, Lifetime: 50, Req: units.Vec(16, 32, 128)},
	}}
}

func TestRunSmallTrace(t *testing.T) {
	st, r := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
	res, err := r.Run(smallTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "RISA" || res.Workload != "small" {
		t.Errorf("labels: %s/%s", res.Algorithm, res.Workload)
	}
	if res.Scheduled != 3 || res.Dropped != 0 {
		t.Errorf("scheduled/dropped = %d/%d", res.Scheduled, res.Dropped)
	}
	if res.InterRack != 0 || res.InterRackPct != 0 {
		t.Errorf("inter-rack = %d (%.1f%%)", res.InterRack, res.InterRackPct)
	}
	if res.Makespan != 110 {
		t.Errorf("makespan = %d, want 110", res.Makespan)
	}
	// Everything departs: the state must be pristine again.
	if st.Cluster.TotalFree(units.CPU) != st.Cluster.TotalCapacity(units.CPU) {
		t.Error("CPU not fully released at end of run")
	}
	if st.Fabric.IntraRackFree() != st.Fabric.IntraRackCapacity() {
		t.Error("bandwidth not fully released at end of run")
	}
	if res.MeanCPURAMLatency != sched.IntraRackCPURAMLatency {
		t.Errorf("mean latency = %v, want 110ns", res.MeanCPURAMLatency)
	}
	if res.PeakPowerW <= 0 || res.EnergyJ <= 0 || res.Eq1EnergyJ <= 0 {
		t.Errorf("power/energy should be positive: %g W, %g J, %g J",
			res.PeakPowerW, res.EnergyJ, res.Eq1EnergyJ)
	}
	if res.PeakUtil[units.Storage] <= 0 || res.AvgUtil[units.Storage] <= 0 {
		t.Error("storage utilization should be positive")
	}
	if res.PeakIntraUtil <= 0 {
		t.Error("intra utilization should be positive")
	}
	if res.PeakInterUtil != 0 {
		t.Error("RISA must not use inter-rack bandwidth here")
	}
}

func TestRunRecordsDrops(t *testing.T) {
	_, r := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
	tr := &workload.Trace{Name: "over", VMs: []workload.VM{
		{ID: 0, Arrival: 0, Lifetime: 10, Req: units.Vec(9999, 16, 128)},
	}}
	res, err := r.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 0 || res.Dropped != 1 {
		t.Errorf("scheduled/dropped = %d/%d", res.Scheduled, res.Dropped)
	}
}

func TestRunDeparturesFreeCapacity(t *testing.T) {
	// Two sequential VMs that each need a whole CPU plane's worth of one
	// box: the second fits only because the first departs.
	st, err := sched.NewState(topology.Config{
		Racks: 1, CPUBoxes: 1, RAMBoxes: 1, STOBoxes: 1,
		BricksPerBox: 4, UnitsPerBrick: 4, Units: units.DefaultConfig(),
	}, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, core.New(st), Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{Name: "sequential", VMs: []workload.VM{
		{ID: 0, Arrival: 0, Lifetime: 10, Req: units.Vec(64, 16, 128)},
		{ID: 1, Arrival: 10, Lifetime: 10, Req: units.Vec(64, 16, 128)}, // same instant as departure
		{ID: 2, Arrival: 15, Lifetime: 10, Req: units.Vec(64, 16, 128)}, // must drop: VM1 resident
	}}
	res, err := r.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 2 || res.Dropped != 1 {
		t.Errorf("scheduled/dropped = %d/%d, want 2/1 (departure-before-arrival ordering)",
			res.Scheduled, res.Dropped)
	}
}

func TestRunValidatesTrace(t *testing.T) {
	_, r := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
	bad := &workload.Trace{Name: "bad", VMs: []workload.VM{
		{ID: 0, Arrival: 10, Lifetime: 10, Req: units.Vec(1, 1, 1)},
		{ID: 1, Arrival: 0, Lifetime: 10, Req: units.Vec(1, 1, 1)},
	}}
	if _, err := r.Run(bad); err == nil {
		t.Error("unordered trace should fail")
	}
}

func TestRunInterRackAccounting(t *testing.T) {
	// NULB on the toy-style state goes inter-rack; use a 2-rack cluster
	// with rack 0's CPU exhausted so RAM lands in rack 0 and CPU in rack 1.
	st, err := sched.NewState(topology.Config{
		Racks: 2, CPUBoxes: 2, RAMBoxes: 2, STOBoxes: 2,
		BricksPerBox: 4, UnitsPerBrick: 4, Units: units.DefaultConfig(),
	}, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range st.Cluster.Rack(0).BoxesOf(units.CPU) {
		if _, err := st.Cluster.Allocate(b, b.Free()); err != nil {
			t.Fatal(err)
		}
	}
	// Shave 1 GB off rack 1's RAM so RAM is strictly the scarcest resource
	// (16/255 > 8/128); the scarce-box search then lands in rack 0, whose
	// CPU is gone, forcing the CPU placement to rack 1.
	if _, err := st.Cluster.Preoccupy(1, 0, units.RAM, 1); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, baseline.NewNULB(st), Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{Name: "inter", VMs: []workload.VM{
		{ID: 0, Arrival: 0, Lifetime: 10, Req: units.Vec(8, 16, 128)},
	}}
	res, err := r.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.InterRack != 1 {
		t.Errorf("inter-rack = %d, want 1", res.InterRack)
	}
	if res.InterRackPct != 100 {
		t.Errorf("inter-rack pct = %g, want 100", res.InterRackPct)
	}
	if res.MeanCPURAMLatency != sched.InterRackCPURAMLatency {
		t.Errorf("mean latency = %v, want 330ns", res.MeanCPURAMLatency)
	}
	if res.PeakInterUtil <= 0 {
		t.Error("inter-rack bandwidth should be used")
	}
}

func TestRunSchedulingTimeMeasured(t *testing.T) {
	_, r := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
	tr, err := workload.Synthetic(workload.SyntheticConfig{
		N: 50, MeanInterarrival: 10,
		CPUMin: 1, CPUMax: 32, RAMMin: 1, RAMMax: 32, StorageGB: 128,
		LifetimeBase: 100, LifetimeStep: 0, SetSize: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.SchedulingTime <= 0 {
		t.Error("scheduling time should be measured")
	}
}

func TestRunAllAlgorithmsOnSyntheticSlice(t *testing.T) {
	// A 200-VM slice of the synthetic workload: every algorithm must
	// schedule everything (the cluster is far from full) and leave the
	// state pristine.
	cfg := workload.DefaultSyntheticConfig()
	cfg.N = 200
	tr, err := workload.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	makers := map[string]func(*sched.State) sched.Scheduler{
		"NULB":    baseline.NewNULB,
		"NALB":    baseline.NewNALB,
		"RISA":    func(s *sched.State) sched.Scheduler { return core.New(s) },
		"RISA-BF": func(s *sched.State) sched.Scheduler { return core.NewBF(s) },
	}
	for name, mk := range makers {
		st, r := newRunner(t, mk)
		res, err := r.Run(tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Dropped != 0 {
			t.Errorf("%s dropped %d of 200", name, res.Dropped)
		}
		if err := st.Cluster.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := st.Fabric.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if st.Fabric.IntraRackFree() != st.Fabric.IntraRackCapacity() {
			t.Errorf("%s leaked bandwidth", name)
		}
	}
}

func TestResultUtilizationSanity(t *testing.T) {
	_, r := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
	cfg := workload.DefaultSyntheticConfig()
	cfg.N = 300
	tr, err := workload.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range units.Resources() {
		if res.AvgUtil[k] < 0 || res.AvgUtil[k] > 100 {
			t.Errorf("avg util %v out of range: %g", k, res.AvgUtil[k])
		}
		if res.PeakUtil[k] < res.AvgUtil[k] {
			t.Errorf("peak %v below average", k)
		}
	}
	if res.PeakIntraUtil < res.AvgIntraUtil {
		t.Error("peak intra below average")
	}
	if res.AvgPowerW > res.PeakPowerW {
		t.Error("avg power above peak")
	}
}

func TestSampling(t *testing.T) {
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, core.New(st), Config{SampleEvery: 25})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(smallTrace()) // makespan 110
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("sampling enabled but no samples")
	}
	// First sample at t=0, last at makespan.
	if res.Samples[0].T != 0 {
		t.Errorf("first sample at %d", res.Samples[0].T)
	}
	if last := res.Samples[len(res.Samples)-1]; last.T != res.Makespan {
		t.Errorf("last sample at %d, want %d", last.T, res.Makespan)
	}
	// Samples are time-ordered and resident counts return to zero.
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].T < res.Samples[i-1].T {
			t.Fatal("samples out of order")
		}
	}
	if res.Samples[len(res.Samples)-1].Resident != 0 {
		t.Error("all VMs depart by makespan")
	}
	// Mid-run samples show residency and utilization.
	sawResident := false
	for _, s := range res.Samples {
		if s.Resident > 0 && s.Util[units.Storage] > 0 && s.PowerW > 0 {
			sawResident = true
		}
	}
	if !sawResident {
		t.Error("no mid-run sample captured live state")
	}
}

func TestSamplingDisabledByDefault(t *testing.T) {
	_, r := newRunner(t, func(s *sched.State) sched.Scheduler { return core.New(s) })
	res, err := r.Run(smallTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 0 {
		t.Error("sampling should be off by default")
	}
}

func TestNegativeSampleIntervalRejected(t *testing.T) {
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(st, core.New(st), Config{SampleEvery: -1}); err == nil {
		t.Error("negative interval should fail")
	}
}

func TestRetryQueuePlacesAfterDeparture(t *testing.T) {
	// One-box-per-kind cluster: VM 1 arrives while VM 0 holds all CPU;
	// with the retry queue it waits and is placed when VM 0 departs.
	st, err := sched.NewState(topology.Config{
		Racks: 1, CPUBoxes: 1, RAMBoxes: 1, STOBoxes: 1,
		BricksPerBox: 4, UnitsPerBrick: 4, Units: units.DefaultConfig(),
	}, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, core.New(st), Config{RetryDropped: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{Name: "retry", VMs: []workload.VM{
		{ID: 0, Arrival: 0, Lifetime: 100, Req: units.Vec(64, 16, 128)},
		{ID: 1, Arrival: 10, Lifetime: 50, Req: units.Vec(64, 16, 128)},
	}}
	res, err := r.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 2 || res.Dropped != 0 {
		t.Fatalf("scheduled/dropped = %d/%d, want 2/0", res.Scheduled, res.Dropped)
	}
	if res.Enqueued != 1 || res.RetrySucceeded != 1 {
		t.Errorf("queue stats: enqueued %d, succeeded %d", res.Enqueued, res.RetrySucceeded)
	}
	// VM 1 waited from t=10 until VM 0's departure at t=100.
	if res.MeanWait != 90 {
		t.Errorf("mean wait = %g, want 90", res.MeanWait)
	}
	// Its lifetime started at placement: departure at 150 → makespan 150.
	if res.Makespan != 150 {
		t.Errorf("makespan = %d, want 150", res.Makespan)
	}
}

func TestRetryQueueAbandonsAtEnd(t *testing.T) {
	st, err := sched.NewState(topology.Config{
		Racks: 1, CPUBoxes: 1, RAMBoxes: 1, STOBoxes: 1,
		BricksPerBox: 4, UnitsPerBrick: 4, Units: units.DefaultConfig(),
	}, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, core.New(st), Config{RetryDropped: true})
	if err != nil {
		t.Fatal(err)
	}
	// The second VM can never fit (65 cores > box) and must be dropped
	// at the end, not lost.
	tr := &workload.Trace{Name: "abandon", VMs: []workload.VM{
		{ID: 0, Arrival: 0, Lifetime: 10, Req: units.Vec(8, 8, 128)},
		{ID: 1, Arrival: 1, Lifetime: 10, Req: units.Vec(65, 8, 128)},
	}}
	res, err := r.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 1 || res.Dropped != 1 {
		t.Errorf("scheduled/dropped = %d/%d", res.Scheduled, res.Dropped)
	}
	if res.Enqueued != 1 || res.RetrySucceeded != 0 {
		t.Errorf("queue stats: %d/%d", res.Enqueued, res.RetrySucceeded)
	}
}

func TestRetryQueuePreservesFIFO(t *testing.T) {
	// Two waiting VMs; the head is large, the second small. FIFO means
	// the small one must NOT jump the queue even though it would fit.
	st, err := sched.NewState(topology.Config{
		Racks: 1, CPUBoxes: 1, RAMBoxes: 1, STOBoxes: 1,
		BricksPerBox: 4, UnitsPerBrick: 4, Units: units.DefaultConfig(),
	}, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(st, core.New(st), Config{RetryDropped: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{Name: "fifo", VMs: []workload.VM{
		{ID: 0, Arrival: 0, Lifetime: 100, Req: units.Vec(40, 16, 128)},
		{ID: 1, Arrival: 10, Lifetime: 100, Req: units.Vec(60, 16, 128)}, // waits (40+60 > 64)
		{ID: 2, Arrival: 20, Lifetime: 100, Req: units.Vec(10, 16, 128)}, // would fit, but FIFO
	}}
	res, err := r.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	// At t=100 VM 0 departs; VM 1 places (departs 200), then VM 2 places
	// immediately too (60+10 ≤ 64? No: 60+10 = 70 > 64 — VM 2 waits for
	// VM 1). At t=200 VM 2 places, departing at 300.
	if res.Scheduled != 3 || res.Dropped != 0 {
		t.Fatalf("scheduled/dropped = %d/%d", res.Scheduled, res.Dropped)
	}
	if res.Makespan != 300 {
		t.Errorf("makespan = %d, want 300 (strict FIFO)", res.Makespan)
	}
}
