package sim

import (
	"errors"
	"time"

	"risa/internal/core"
	"risa/internal/sched"
	"risa/internal/workload"
)

// errPreemptFailed reports that no admissible victim set could place the
// arrival; a package-level sentinel so failed attempts stay off the
// allocator.
var errPreemptFailed = errors.New("sim: preemption found no admissible victim set")

// tryPreempt attempts to admit an arrival that just failed placement by
// displacing strictly-lower-tier resident VMs. Candidates are gathered
// from the event queue — every pending departure with a live assignment
// is a resident VM; the queue's array order is deterministic for a given
// event history, and core.Preempt's total cost order makes the victim
// set independent of it anyway. The transaction picks a cheapest-first
// minimal prefix or restores everything (see core.Preempt).
//
// On success the consumed victims' departure events are neutralized into
// ghosts exactly like lost displacements, and the victims re-enter the
// retry queue as preempted entries: their wait measured from the
// eviction, their lifetime restarting when re-placed, draining behind
// every equal-or-higher-priority entry under the queue's tier order. The
// whole attempt is billed to SchedulingTime.
func (sr *streamRun) tryPreempt(vm workload.VM, now int64, measured bool) (*sched.Assignment, error) {
	r, res, wind := sr.r, sr.res, sr.wind
	ps := r.scratch.Preemption()
	ps.Reset()
	start := time.Now()
	for i := range sr.h.s {
		e := &sr.h.s[i]
		if e.kind != departure || e.a == nil || e.t <= now || e.vm.Tier <= vm.Tier {
			continue
		}
		ps.Add(e.a, i)
	}
	a, consumed := core.Preempt(r.st, r.sch, ps, vm)
	res.SchedulingTime += time.Since(start)
	if a == nil {
		return nil, errPreemptFailed
	}
	for k := 0; k < consumed; k++ {
		e := &sr.h.s[ps.Ref(k)]
		victim := e.vm
		r.st.ReleaseVM(e.a) // holdings already released: pools the shell
		e.a = nil           // ghost the departure, like a lost displacement
		sr.resident--
		res.Preempted++
		res.Tiers[victim.Tier].Preempted++
		if measured {
			wind.cur.TierPreempted[victim.Tier]++
		}
		victim.Arrival = now
		sr.admitSeq++
		sr.admit(queuedVM{vm: victim, preempted: true, seq: sr.admitSeq})
		res.Enqueued++
	}
	return a, nil
}
