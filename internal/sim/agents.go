// Concurrent allocation agents (DESIGN.md §12): N agents, each holding
// its own Proposer instance of the run's scheduler, propose placements
// in parallel against a settled read-only view of the cluster; a
// coordinator commits the proposals serially in arrival order,
// validating each against the per-rack generation counters. Losers are
// redone serially — through the full algorithm after a commit conflict,
// or entering at the fallback tier directly when a cluster-wide Propose
// already certified the intra-rack tier empty (ConclusiveProposer) —
// and only a failed redo touches the retry queue, under the VM's
// original arrival sequence, so queue order never depends on scheduling
// interleavings.
//
// The loop here is round-based: consecutive arrivals are staged into a
// batch (bounded by StreamConcurrency.Round); any non-arrival event —
// departure, fault, injection — flushes the batch first, because its
// arrivals precede that event in simulated time. Determinism follows
// from three fixed orders: VMs map to agents by arrival sequence, each
// agent's proposals depend only on its own deterministic subsequence,
// and commits replay in arrival order.
package sim

import (
	"fmt"
	"time"

	"risa/internal/sched"
	"risa/internal/workload"
)

// batchItem is one arrival staged into a propose round, plus the slot
// its agent writes the proposal into — distinct slots per item, so the
// round needs no locks.
type batchItem struct {
	vm       workload.VM
	t        int64
	seq      int // admission sequence: picks the agent and the queue slot
	measured bool
	prop     sched.Proposal
	ok       bool
}

// agentPool is a fixed set of worker goroutines, one per agent, kept
// alive for the whole run so propose rounds allocate nothing. Each agent
// owns a Proposer instance (private cursor state) and a contiguous shard
// of the rack space it proposes into; shards are disjoint, so two agents
// in one round never claim the same rack.
type agentPool struct {
	n      int
	round  int
	props  []sched.Proposer
	shards []sched.RackMask
	batch  []batchItem // the round being proposed, set by propose()
	work   []chan int  // per-agent: batch length to process
	done   chan struct{}
	// busy[i] is agent i's measured propose time for the CURRENT round,
	// written by the worker before it reports the barrier (the done
	// channel orders the write before the coordinator's read). The
	// slowest agent's time is the round's critical path.
	busy []time.Duration
	// conclusive, when non-nil, is the runner's scheduler as a
	// ConclusiveProposer: a failed proposal certifies that no placement
	// existed, and the VM drops (or re-queues) with no serial redo.
	conclusive sched.ConclusiveProposer
}

// newAgentPool builds the pool for the runner's scheduler: per-agent
// instances constructed through the sched.New registry, contiguous rack
// shards, and the worker goroutines parked on their channels. It errors
// when the scheduler is not registered or does not implement Propose.
func (r *Runner) newAgentPool(cc StreamConcurrency) (*agentPool, error) {
	n := cc.Agents
	round := cc.Round
	if round == 0 {
		round = 4 * n
	}
	numRacks := r.st.Cluster.NumRacks()
	per := (numRacks + n - 1) / n
	p := &agentPool{n: n, round: round, done: make(chan struct{}, n), busy: make([]time.Duration, n)}
	p.conclusive, _ = r.sch.(sched.ConclusiveProposer)
	for i := 0; i < n; i++ {
		s, err := sched.New(r.sch.Name(), r.st, sched.Options{})
		if err != nil {
			return nil, fmt.Errorf("sim: agent pool: %w", err)
		}
		prop, ok := s.(sched.Proposer)
		if !ok {
			return nil, fmt.Errorf("sim: scheduler %q does not support concurrent agents (no Propose)", r.sch.Name())
		}
		mask := make(sched.RackMask, numRacks)
		lo, hi := i*per, (i+1)*per
		if hi > numRacks {
			hi = numRacks
		}
		for ri := lo; ri < hi; ri++ {
			mask[ri] = true
		}
		p.props = append(p.props, prop)
		p.shards = append(p.shards, mask)
		p.work = append(p.work, make(chan int, 1))
	}
	for i := 0; i < n; i++ {
		go p.worker(i)
	}
	return p, nil
}

// worker is one agent's goroutine: per round it proposes every batch
// item assigned to this agent (arrival sequence mod pool size) into the
// item's own slot, then reports the barrier.
func (p *agentPool) worker(i int) {
	for count := range p.work[i] {
		b0 := time.Now()
		for j := 0; j < count; j++ {
			it := &p.batch[j]
			if it.seq%p.n != i {
				continue
			}
			it.prop, it.ok = p.props[i].Propose(it.vm, p.shards[i])
		}
		p.busy[i] = time.Since(b0)
		p.done <- struct{}{}
	}
}

// propose runs one round: every agent proposes its items concurrently,
// and the call returns when all agents hit the barrier. The caller must
// have settled the cluster's lazy indexes first and must not mutate
// shared state until propose returns. The returned duration is the
// round's critical path — the slowest agent's measured propose time,
// what the phase costs on hardware with a core per agent. (Workers do
// not yield inside a round, so each measurement is the agent's own work
// even when fewer cores timeslice the pool; the host's elapsed time,
// whatever the core count, stays in WallTime.)
func (p *agentPool) propose(batch []batchItem) time.Duration {
	p.batch = batch
	for i := range p.work {
		p.work[i] <- len(batch)
	}
	for range p.work {
		<-p.done
	}
	var crit time.Duration
	for _, d := range p.busy {
		if d > crit {
			crit = d
		}
	}
	return crit
}

// stop retires the worker goroutines.
func (p *agentPool) stop() {
	for i := range p.work {
		close(p.work[i])
	}
}

// loopAgents is the agent-mode event loop: the serial loop's event walk
// with arrivals staged into propose rounds. A round flushes when it
// reaches the round bound, when a non-arrival event is next (its
// arrivals precede that event), when an arrival must tail-join a
// non-empty retry queue, or at the end of the stream. Commits happen at
// the last staged arrival's time — windows count arrivals at arrival
// time and acceptances at commit time, exactly the retry queue's
// existing accounting convention.
func (sr *streamRun) loopAgents(pool *agentPool) error {
	r, res, wind := sr.r, sr.res, sr.wind
	batch := make([]batchItem, 0, pool.round)

	flush := func() error {
		tB := batch[len(batch)-1].t
		// Settle the lazy index tiers so every read the agents perform
		// is a pure read (topology.Cluster.Settle). SchedulingTime in
		// agent mode accounts the scheduling CRITICAL PATH: the settle,
		// the slowest agent's propose time for each round, and the
		// serial commit/redo section — the cost the round imposes on
		// hardware with a core per agent, and the figure scheduler
		// throughput comparisons should use. WallTime stays the host's
		// observed truth (see DESIGN.md §12).
		s0 := time.Now()
		r.st.Cluster.Settle()
		crit := time.Since(s0) + pool.propose(batch)
		res.SchedulingTime += crit
		for i := range batch {
			it := &batch[i]
			var a *sched.Assignment
			var err error
			committed := false
			s2 := time.Now()
			if it.ok {
				a, err = r.st.CommitProposal(it.prop)
				if err == nil {
					committed = true
					res.AgentCommits++
				} else {
					// Generation moved, or joint flow allocation failed
					// at unchanged generations: either way the claim is
					// stale and the VM falls through to the serial redo.
					res.AgentConflicts++
				}
			}
			if !committed {
				if !it.ok && pool.conclusive != nil {
					// The failed proposal covered both placement tiers
					// at the round's settle point, and capacity has only
					// shrunk since — nothing can have opened up, so the
					// VM needs no serial redo at all.
					err = pool.conclusive.DropConclusive(it.vm)
				} else {
					a, err = r.sch.Schedule(it.vm)
				}
			}
			res.SchedulingTime += time.Since(s2)
			if err != nil {
				if r.retry {
					// The bug this ordering fixes: the loser re-queues
					// under its ORIGINAL arrival sequence. A displaced
					// VM evicted meanwhile may hold a later sequence and
					// must stay behind this one.
					sr.admit(queuedVM{vm: it.vm, seq: it.seq})
					res.Enqueued++
				} else {
					res.TotalDropped++
					res.Tiers[it.vm.Tier].TotalDropped++
					if it.measured {
						res.Dropped++
						wind.cur.Dropped++
						res.Tiers[it.vm.Tier].Dropped++
					}
				}
			} else {
				res.TotalAccepted++
				res.Tiers[it.vm.Tier].TotalAccepted++
				sr.resident++
				if it.measured {
					res.Accepted++
					wind.cur.Accepted++
					res.Tiers[it.vm.Tier].Accepted++
					wind.cur.TierAccepted[it.vm.Tier]++
				}
				dep := it.t + it.vm.Lifetime
				if dep < tB {
					dep = tB // committed at tB: cannot depart earlier
				}
				sr.h.Push(event{t: dep, kind: departure, seq: sr.seq, vm: it.vm, a: a})
				sr.seq++
			}
			if sr.obs != nil {
				_, binding := sr.utilNow()
				sr.obs.ObserveUtilization(binding)
			}
		}
		perRes, _ := sr.utilNow()
		wind.set(perRes)
		batch = batch[:0]
		return nil
	}

	for sr.more || sr.h.Len() > 0 {
		if sr.more && !heapFirst(&sr.h, sr.pending, sr.more) {
			// Next event is an arrival. An arrival that must tail-join a
			// non-empty retry queue is handled serially, after the staged
			// round (whose arrivals precede it) commits.
			if r.retry && sr.wHead < len(sr.waiting) && len(batch) > 0 {
				if err := flush(); err != nil {
					return err
				}
				continue // re-evaluate: the flush pushed departures
			}
			e := sr.nextArrival()
			if e.t < sr.lastT {
				return fmt.Errorf("sim: stream %q time went backwards: %d < %d", sr.s.Name(), e.t, sr.lastT)
			}
			wind.advance(e.t)
			sr.lastT = e.t
			measured := e.t >= wind.warmup
			if err := e.vm.Validate(); err != nil {
				return err
			}
			res.Tiers[e.vm.Tier].TotalArrivals++
			if measured {
				res.Arrivals++
				wind.cur.Arrivals++
				res.Tiers[e.vm.Tier].Arrivals++
				wind.cur.TierArrivals[e.vm.Tier]++
			}
			sr.admitSeq++
			if r.retry && sr.wHead < len(sr.waiting) {
				// Queue non-empty and batch empty: the serial loop's
				// tail-join, unchanged.
				sr.admit(queuedVM{vm: e.vm, seq: sr.admitSeq})
				res.Enqueued++
				sr.drainQueue(e.t, measured)
				perRes, binding := sr.utilNow()
				wind.set(perRes)
				if sr.obs != nil {
					sr.obs.ObserveUtilization(binding)
				}
			} else {
				batch = append(batch, batchItem{vm: e.vm, t: e.t, seq: sr.admitSeq, measured: measured})
			}
			if !sr.more || len(batch) >= pool.round {
				if len(batch) > 0 {
					if err := flush(); err != nil {
						return err
					}
				}
				if !sr.more {
					break // the arrival just committed was the last
				}
			}
			continue
		}
		if len(batch) > 0 {
			// A non-arrival event outranks the pending arrival, so the
			// staged arrivals (all earlier) commit first.
			if err := flush(); err != nil {
				return err
			}
			continue // re-evaluate: the flush pushed departures
		}
		e := sr.h.Pop()
		if e.t < sr.lastT {
			return fmt.Errorf("sim: stream %q time went backwards: %d < %d", sr.s.Name(), e.t, sr.lastT)
		}
		wind.advance(e.t)
		sr.lastT = e.t
		sr.handleEvent(e, e.t >= wind.warmup)
	}
	return nil
}
