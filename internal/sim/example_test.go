package sim_test

import (
	"fmt"

	"risa/internal/core"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/sim"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

func ExampleRunner_Run() {
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		panic(err)
	}
	runner, err := sim.NewRunner(st, core.New(st), sim.Config{})
	if err != nil {
		panic(err)
	}
	tr := &workload.Trace{Name: "demo", VMs: []workload.VM{
		{ID: 0, Arrival: 0, Lifetime: 100, Req: units.Vec(8, 16, 128)},
		{ID: 1, Arrival: 50, Lifetime: 100, Req: units.Vec(4, 8, 128)},
	}}
	res, err := runner.Run(tr)
	if err != nil {
		panic(err)
	}
	fmt.Println("scheduled:", res.Scheduled)
	fmt.Println("inter-rack:", res.InterRack)
	fmt.Println("makespan:", res.Makespan)
	fmt.Println("mean CPU-RAM RTT:", res.MeanCPURAMLatency)
	// Output:
	// scheduled: 2
	// inter-rack: 0
	// makespan: 150
	// mean CPU-RAM RTT: 110ns
}
