package core_test

import (
	"testing"

	"risa/internal/core"
	"risa/internal/sched"
	"risa/internal/sched/schedtest"
)

func TestConformance(t *testing.T) {
	schedtest.Conformance(t, "RISA", func(st *sched.State) sched.Scheduler {
		return core.New(st)
	})
	schedtest.Conformance(t, "RISA-BF", func(st *sched.State) sched.Scheduler {
		return core.NewBF(st)
	})
	for _, p := range []core.BoxPolicy{core.FirstFit, core.WorstFit} {
		p := p
		schedtest.Conformance(t, "RISA-"+p.String(), func(st *sched.State) sched.Scheduler {
			return core.NewWithOptions(st, core.Options{Packing: p})
		})
	}
	schedtest.Conformance(t, "RISA-no-RR", func(st *sched.State) sched.Scheduler {
		return core.NewWithOptions(st, core.Options{DisableRoundRobin: true})
	})
}
