package core

import (
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/units"
)

// Rebalance is an extension beyond the paper (its conclusion motivates
// minimizing inter-rack usage; migration is the natural follow-up): it
// walks a set of live assignments and re-places every inter-rack VM whose
// whole request now fits inside a single rack, converting it to an
// intra-rack placement. VMs already intra-rack are untouched.
//
// The migration is transactional per VM: the old placement is released
// first (so the VM may move within its own racks' freed space), the new
// intra-rack placement is attempted through the usual pool walk, and on
// failure the original placement is restored exactly (same boxes, same
// flows — the capacity was just freed, so restoration cannot fail).
//
// It returns the number of VMs migrated. The entries of assignments are
// updated in place to their new placements.
func Rebalance(r *RISA, assignments []*sched.Assignment) int {
	migrated := 0
	for _, a := range assignments {
		if a == nil || !a.InterRack() {
			continue
		}
		if r.migrate(a) {
			migrated++
		}
	}
	return migrated
}

// Displace re-places one live assignment whose hardware failed: the old
// holdings are released (placements into failed boxes take the
// deferred-capacity path, healthy complements free immediately) and the
// VM is re-scheduled through the bound scheduler's own policy, so a
// displaced VM lands exactly where a fresh arrival would. It is the
// eviction half of the fault subsystem, built on the same
// ReleaseVMKeep/Adopt transaction as Rebalance's migrate: the caller
// keeps holding a — on success its contents are the new placement, so
// references to the record (e.g. the simulator's departure event) stay
// valid.
//
// Unlike migrate, a failed re-placement cannot restore the original
// boxes (they are failed); Displace returns false with a's resources
// released and its contents cleared, and the caller decides the VM's
// fate — re-queue it, count it lost — and owns returning the record to
// the pool (State.ReleaseVM on the emptied record is a cheap no-op
// release that just pools it).
func Displace(st *sched.State, sch sched.Scheduler, a *sched.Assignment) bool {
	vm := a.VM
	st.ReleaseVMKeep(a)
	moved, err := sch.Schedule(vm)
	if err != nil {
		return false
	}
	st.Adopt(a, moved)
	return true
}

// migrate attempts to move one inter-rack assignment intra-rack.
func (r *RISA) migrate(a *sched.Assignment) bool {
	// Remember the old placement so it can be restored byte-for-byte.
	oldBoxes := sched.BoxTriple{}
	if !a.CPU.IsZero() {
		oldBoxes[units.CPU] = a.CPU.Box
	}
	if !a.RAM.IsZero() {
		oldBoxes[units.RAM] = a.RAM.Box
	}
	if !a.STO.IsZero() {
		oldBoxes[units.Storage] = a.STO.Box
	}
	vm := a.VM

	// Release, try intra-rack, restore on failure. The caller keeps
	// holding a, so the release must not recycle it into the assignment
	// pool (ReleaseVMKeep); the re-placement comes back as a fresh pooled
	// record whose contents Adopt moves into a.
	r.st.ReleaseVMKeep(a)
	if moved, _ := r.scheduleIntra(vm); moved != nil {
		r.st.Adopt(a, moved)
		return true
	}
	restored, err := r.st.AllocateVM(vm, oldBoxes, network.FirstFit)
	if err != nil {
		// Cannot happen: the exact capacity was freed above. Fail loudly
		// rather than lose a VM silently.
		panic("core: rebalance failed to restore a released placement: " + err.Error())
	}
	r.st.Adopt(a, restored)
	return false
}
