// Optimistic propose support (DESIGN.md §12): the read-only form of
// RISA's intra-rack placement, used by the concurrent agent pool. The
// serial Schedule path is untouched — Propose exists so N agents can
// compute claims in parallel against a settled cluster view.
package core

import (
	"errors"

	"risa/internal/baseline"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/units"
	"risa/internal/workload"
)

func init() {
	sched.Register("RISA", func(st *sched.State, _ sched.Options) sched.Scheduler { return New(st) })
	sched.Register("RISA-BF", func(st *sched.State, _ sched.Options) sched.Scheduler { return NewBF(st) })
}

// Compile-time check: the agent pool drives RISA through Propose and
// drops its conclusive failures through DropConclusive.
var _ sched.ConclusiveProposer = (*RISA)(nil)

// Propose implements sched.Proposer: the INTRA_RACK_POOL walk of
// Schedule with every mutation replaced by a read. Instead of
// probe-allocating a candidate rack it verifies the same conditions
// read-only — per-box fit through chooseBoxes and hop-by-hop flow
// feasibility through Fabric.FlowFeasible — and records the rack's
// generation counters for the commit-time check. The shard's racks are
// preferred; only when the shard is exhausted does the walk spill over
// to the remaining racks (see the walk comment below), and only when
// the whole cluster yields nothing does it try the SUPER_RACK tier
// read-only (proposeSuperRack). A false return therefore certifies
// that NO tier had a placement at the settle point — the property the
// agent loop's drop-without-redo path depends on
// (sched.ConclusiveProposer).
//
// The cluster's lazy index tiers must be settled (topology's
// Cluster.Settle) before concurrent Propose calls: NextRackFits and the
// per-rack queries are pure reads only then. The instance's own
// round-robin and next-fit cursors
// advance on a successful proposal, exactly as Schedule advances them —
// they are per-agent state, not shared.
func (r *RISA) Propose(vm workload.VM, shard sched.RackMask) (sched.Proposal, bool) {
	var p sched.Proposal
	if !vm.Req.NonNegative() || vm.Req.IsZero() {
		return p, false
	}
	cfg := r.st.Units()
	cl := r.st.Cluster
	fab := r.st.Fabric
	cpuram := cfg.CPURAMDemand(vm.Req)
	ramsto := cfg.RAMSTODemand(vm.Req)
	demand := cpuram + ramsto
	try := func(rackIdx int) bool {
		// AVAIL_INTRA_RACK_NET and INTRA_RACK_POOL, read-only.
		if fab.RackIntraFree(rackIdx) < demand {
			return false
		}
		boxes, ok := r.chooseBoxes(cl.Rack(rackIdx), vm.Req)
		if !ok {
			return false
		}
		if boxes[units.CPU] != nil && boxes[units.RAM] != nil &&
			!fab.FlowFeasible(boxes[units.CPU], boxes[units.RAM], cpuram, network.FirstFit) {
			return false
		}
		if boxes[units.RAM] != nil && boxes[units.Storage] != nil &&
			!fab.FlowFeasible(boxes[units.RAM], boxes[units.Storage], ramsto, network.FirstFit) {
			return false
		}
		p = sched.Proposal{VM: vm, Boxes: boxes, Policy: network.FirstFit}
		p.Claim(rackIdx, cl.RackGen(rackIdx), fab.RackGen(rackIdx))
		if !r.opts.DisableRoundRobin {
			r.cursor = (rackIdx + 1) % cl.NumRacks()
		}
		if r.opts.Packing == NextFit {
			cur := r.scratch.Cursors(rackIdx)
			for _, res := range units.Resources() {
				if boxes[res] != nil {
					cur[res] = boxes[res].KindIndex()
				}
			}
		}
		return true
	}
	// The same rotated candidate enumeration as scheduleIntra — the
	// cluster-level candidate tree is a pure read once settled, so the
	// propose walk skips non-fitting racks in O(log racks) exactly like
	// the serial path, and a clean commit reproduces the serial
	// placement box-for-box. The shard's span is walked first, rotated
	// at the agent's cursor: in-shard claims cannot collide across
	// agents, so this is the low-conflict fast path. Only when the shard
	// yields nothing does the walk spill over to the racks the mask
	// rejects, in ascending order — a spillover claim may lose its
	// commit to the rack's own agent, which the generation check
	// resolves. The spillover is what makes a false return conclusive:
	// every rack in the cluster was tried.
	lo, hi := shard.Span()
	if hi < 0 {
		lo, hi = 0, cl.NumRacks()
	}
	start := r.cursor
	if start < lo || start >= hi {
		start = lo
	}
	for i := cl.NextRackFits(vm.Req, start); i >= 0 && i < hi; i = cl.NextRackFits(vm.Req, i+1) {
		if shard.Allows(i) && try(i) {
			return p, true
		}
	}
	for i := cl.NextRackFits(vm.Req, lo); i >= 0 && i < start; i = cl.NextRackFits(vm.Req, i+1) {
		if shard.Allows(i) && try(i) {
			return p, true
		}
	}
	if shard != nil {
		for i := cl.NextRackFits(vm.Req, 0); i >= 0; i = cl.NextRackFits(vm.Req, i+1) {
			if !shard.Allows(i) && try(i) {
				return p, true
			}
		}
	}
	// Fallback tier, read-only: the exact choice ScheduleMasked would
	// take on the SUPER_RACK masks, feasibility-checked hop-by-hop and
	// claiming every rack it touches. Its failure makes the false return
	// conclusive for BOTH tiers (sched.ConclusiveProposer).
	return r.proposeSuperRack(vm)
}

// proposeSuperRack is the read-only form of scheduleSuperRack: the same
// SUPER_RACK emptiness check, the same NULB box choice (MaskedScheduler's
// ChooseMasked, unmasked — see scheduleSuperRack for why the explicit
// masks were redundant), but flows only feasibility-checked — the claim
// spans every distinct rack the chosen boxes live in, so the commit-time
// generation check covers each of them.
func (r *RISA) proposeSuperRack(vm workload.VM) (sched.Proposal, bool) {
	var p sched.Proposal
	cl := r.st.Cluster
	fab := r.st.Fabric
	for _, res := range units.Resources() {
		if vm.Req[res] == 0 {
			continue
		}
		if cl.NextRackWith(res, vm.Req[res], 0) < 0 {
			return p, false
		}
	}
	boxes, policy, err := r.fallback.ChooseMasked(vm, baseline.Masks{})
	if err != nil {
		return p, false
	}
	cfg := r.st.Units()
	if boxes[units.CPU] != nil && boxes[units.RAM] != nil &&
		!fab.FlowFeasible(boxes[units.CPU], boxes[units.RAM], cfg.CPURAMDemand(vm.Req), policy) {
		return p, false
	}
	if boxes[units.RAM] != nil && boxes[units.Storage] != nil &&
		!fab.FlowFeasible(boxes[units.RAM], boxes[units.Storage], cfg.RAMSTODemand(vm.Req), policy) {
		return p, false
	}
	p = sched.Proposal{VM: vm, Boxes: boxes, Policy: policy}
	for _, res := range units.Resources() {
		b := boxes[res]
		if b == nil {
			continue
		}
		claimed := false
		for _, c := range p.Claims[:p.NClaims] {
			if c.Rack == b.Rack() {
				claimed = true
				break
			}
		}
		if !claimed {
			p.Claim(b.Rack(), cl.RackGen(b.Rack()), fab.RackGen(b.Rack()))
		}
	}
	return p, true
}

// errConclusiveDrop is the shared drop error for conclusively
// unplaceable VMs — a sentinel, so the agent loop's drop path allocates
// nothing per VM.
var errConclusiveDrop = errors.New("core: no placement: intra-rack and SUPER_RACK tiers exhausted at propose time")

// DropConclusive implements sched.ConclusiveProposer: bookkeeping for a
// VM whose cluster-wide, both-tier Propose failure proved it
// unplaceable this round. Counted in Stats.ConclusiveDrops (not
// PoolEmpty or NetGated — attributing those would take exactly the walk
// this path exists to skip).
func (r *RISA) DropConclusive(vm workload.VM) error {
	r.stats.ConclusiveDrops++
	r.stats.Dropped++
	return errConclusiveDrop
}
