package core

import (
	"testing"

	"risa/internal/sched"
	"risa/internal/units"
	"risa/internal/workload"
)

func TestBoxPolicyString(t *testing.T) {
	want := map[BoxPolicy]string{
		NextFit:      "next-fit",
		BestFit:      "best-fit",
		FirstFit:     "first-fit",
		WorstFit:     "worst-fit",
		BoxPolicy(9): "BoxPolicy(9)",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

func TestOptionsNameOverride(t *testing.T) {
	st := defaultState(t)
	r := NewWithOptions(st, Options{Name: "RISA-NORR", DisableRoundRobin: true})
	if r.Name() != "RISA-NORR" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestDisableRoundRobinPinsFirstRack(t *testing.T) {
	st := defaultState(t)
	r := NewWithOptions(st, Options{DisableRoundRobin: true})
	for i := 0; i < 10; i++ {
		a, err := r.Schedule(typicalVM(i))
		if err != nil {
			t.Fatal(err)
		}
		if a.CPU.Box.Rack() != 0 {
			t.Fatalf("VM %d landed on rack %d; without round-robin everything goes to rack 0",
				i, a.CPU.Box.Rack())
		}
	}
	if r.Cursor() != 0 {
		t.Errorf("cursor moved to %d with round-robin disabled", r.Cursor())
	}
}

func TestWorstFitSpreadsAcrossBoxes(t *testing.T) {
	st := defaultState(t)
	r := NewWithOptions(st, Options{Packing: WorstFit, DisableRoundRobin: true})
	// First VM takes box 0 (both boxes equal, ties break to the first
	// strictly-greater, so box 0 stays chosen); afterwards box 1 has more
	// free space, so the second VM must go there.
	a1, err := r.Schedule(typicalVM(0))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Schedule(typicalVM(1))
	if err != nil {
		t.Fatal(err)
	}
	if a1.CPU.Box.KindIndex() == a2.CPU.Box.KindIndex() {
		t.Error("worst-fit should alternate boxes")
	}
}

func TestFirstFitReturnsToEarlierBox(t *testing.T) {
	// The distinguishing trace from Table 4: after moving to box 1,
	// first-fit returns to box 0 for a small VM where next-fit stays.
	st := toyState(t)
	r := NewWithOptions(st, Options{Packing: FirstFit})
	reqs := []units.Amount{15, 10, 30, 12, 5}
	wantBox := []int{0, 0, 0, 1, 0} // next-fit (paper RISA) gives ...,1,1
	for i, cores := range reqs {
		a, err := r.Schedule(cpuOnlyVM(i, cores))
		if err != nil {
			t.Fatalf("VM %d: %v", i, err)
		}
		if got := a.CPU.Box.KindIndex(); got != wantBox[i] {
			t.Errorf("VM %d → box %d, want %d (plain first-fit)", i, got, wantBox[i])
		}
	}
}

func TestAblatedVariantsStillIntraRack(t *testing.T) {
	// Whatever the packing policy, pool-based placement stays intra-rack.
	for _, p := range []BoxPolicy{NextFit, BestFit, FirstFit, WorstFit} {
		st := defaultState(t)
		r := NewWithOptions(st, Options{Packing: p})
		for i := 0; i < 50; i++ {
			a, err := r.Schedule(typicalVM(i))
			if err != nil {
				t.Fatalf("%v VM %d: %v", p, i, err)
			}
			if a.InterRack() {
				t.Fatalf("%v produced inter-rack placement on empty cluster", p)
			}
		}
	}
}

func TestNoRoundRobinSkewsLoad(t *testing.T) {
	// The ablation's point: without round-robin, rack 0 fills while the
	// rest stay empty.
	st := defaultState(t)
	r := NewWithOptions(st, Options{DisableRoundRobin: true})
	for i := 0; i < 60; i++ {
		if _, err := r.Schedule(typicalVM(i)); err != nil {
			t.Fatal(err)
		}
	}
	rack0 := st.Cluster.Rack(0).Free(units.RAM)
	rack1 := st.Cluster.Rack(1).Free(units.RAM)
	if rack0 >= rack1 {
		t.Errorf("rack 0 should be fuller: free %d vs %d", rack0, rack1)
	}
	if st.Cluster.Rack(1).Free(units.RAM) != st.Cluster.Rack(1).BoxesOf(units.RAM)[0].Capacity()*2 {
		t.Error("rack 1 should be untouched")
	}
}

func TestSchedulerInterfaceCompliance(t *testing.T) {
	st := defaultState(t)
	var _ sched.Scheduler = New(st)
	var _ sched.Scheduler = NewBF(st)
	var _ sched.Scheduler = NewWithOptions(st, Options{Packing: WorstFit})
}

func TestAblatedVariantsReleaseCleanly(t *testing.T) {
	for _, p := range []BoxPolicy{NextFit, BestFit, FirstFit, WorstFit} {
		st := defaultState(t)
		r := NewWithOptions(st, Options{Packing: p})
		var as []*sched.Assignment
		for i := 0; i < 20; i++ {
			a, err := r.Schedule(workload.VM{ID: i, Lifetime: 1, Req: units.Vec(8, 16, 128)})
			if err != nil {
				t.Fatal(err)
			}
			as = append(as, a)
		}
		for _, a := range as {
			r.Release(a)
		}
		if st.Cluster.TotalFree(units.CPU) != st.Cluster.TotalCapacity(units.CPU) {
			t.Errorf("%v leaked compute", p)
		}
		if st.Fabric.IntraRackFree() != st.Fabric.IntraRackCapacity() {
			t.Errorf("%v leaked bandwidth", p)
		}
	}
}
