package core

import (
	"testing"

	"risa/internal/baseline"
	"risa/internal/sched"
	"risa/internal/units"
	"risa/internal/workload"
)

// interRackState builds a 2-rack cluster with an assignment forced across
// racks: CPU in rack 1, RAM+STO in rack 0.
func interRackAssignment(t *testing.T) (*sched.State, *sched.Assignment) {
	t.Helper()
	st := toyState(t)
	// Exhaust rack 1's RAM so NULB splits the VM (toy example 1 shape).
	nulb := baseline.NewNULB(st)
	vm := workload.VM{ID: 0, Lifetime: 100, Req: units.Vec(8, 16, 128)}
	a, err := nulb.Schedule(vm)
	if err != nil {
		t.Fatal(err)
	}
	if !a.InterRack() {
		t.Fatal("setup should produce an inter-rack assignment")
	}
	return st, a
}

func TestRebalanceMigratesInterRackVM(t *testing.T) {
	st, a := interRackAssignment(t)
	r := New(st)
	moved := Rebalance(r, []*sched.Assignment{a})
	if moved != 1 {
		t.Fatalf("migrated %d, want 1", moved)
	}
	if a.InterRack() {
		t.Error("assignment should now be intra-rack")
	}
	if a.CPURAMLatency() != sched.IntraRackCPURAMLatency {
		t.Error("latency should drop to the floor")
	}
	// All resources still held, nothing leaked.
	if a.CPU.Total != 8 || a.RAM.Total != 16 || a.STO.Total != 128 {
		t.Errorf("migrated placement wrong: %d/%d/%d", a.CPU.Total, a.RAM.Total, a.STO.Total)
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// The migrated VM can be released normally.
	st.ReleaseVM(a)
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRebalanceSkipsIntraRackVMs(t *testing.T) {
	st := defaultState(t)
	r := New(st)
	var as []*sched.Assignment
	for i := 0; i < 5; i++ {
		a, err := r.Schedule(typicalVM(i))
		if err != nil {
			t.Fatal(err)
		}
		as = append(as, a)
	}
	if moved := Rebalance(r, as); moved != 0 {
		t.Errorf("intra-rack VMs migrated: %d", moved)
	}
}

func TestRebalanceRestoresWhenNoRackFits(t *testing.T) {
	// The inter-rack VM stays inter-rack when still no single rack can
	// host it; the original placement must be restored exactly.
	st, a := interRackAssignment(t)
	// Shrink rack 1's RAM below the request (max 15 GB in one box) so
	// migration is impossible: rack 0 has no CPU, rack 1 not enough RAM.
	if _, err := st.Cluster.Preoccupy(1, 0, units.RAM, 17); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Cluster.Preoccupy(1, 1, units.RAM, 16); err != nil {
		t.Fatal(err)
	}
	r := New(st)
	cpuBox := a.CPU.Box
	ramBox := a.RAM.Box
	if moved := Rebalance(r, []*sched.Assignment{a}); moved != 0 {
		t.Fatalf("migration should be impossible")
	}
	if a.CPU.Box != cpuBox || a.RAM.Box != ramBox {
		t.Error("failed migration must restore the original boxes")
	}
	if !a.InterRack() {
		t.Error("assignment should remain inter-rack")
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRebalanceHandlesNilEntries(t *testing.T) {
	st := defaultState(t)
	r := New(st)
	if moved := Rebalance(r, []*sched.Assignment{nil, nil}); moved != 0 {
		t.Error("nil assignments should be skipped")
	}
}

func TestDisplaceMovesVMOffFailedBox(t *testing.T) {
	st := defaultState(t)
	r := New(st)
	a, err := r.Schedule(typicalVM(0))
	if err != nil {
		t.Fatal(err)
	}
	failed := a.CPU.Box
	for _, b := range st.Cluster.Rack(failed.Rack()).Boxes() {
		st.Cluster.SetBoxFailed(b, true)
	}
	if !a.OnFailedHardware() {
		t.Fatal("assignment should sit on failed hardware")
	}
	if !Displace(st, r, a) {
		t.Fatal("a near-empty cluster must re-place the displaced VM")
	}
	if a.OnFailedHardware() {
		t.Error("displaced VM still on failed hardware")
	}
	if a.CPU.Box.Rack() == failed.Rack() {
		t.Error("displaced VM re-placed into the failed rack")
	}
	if a.VM.ID != 0 || a.CPU.Total != 8 || a.RAM.Total != 16 || a.STO.Total != 128 {
		t.Errorf("displaced record corrupted: VM %d, %d/%d/%d",
			a.VM.ID, a.CPU.Total, a.RAM.Total, a.STO.Total)
	}
	// The caller-held record remains releasable like any other.
	st.ReleaseVM(a)
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDisplaceFailureReleasesAndReportsLost(t *testing.T) {
	st := defaultState(t)
	r := New(st)
	a, err := r.Schedule(typicalVM(0))
	if err != nil {
		t.Fatal(err)
	}
	// Fail every box in the cluster: no re-placement can exist.
	for _, b := range st.Cluster.Boxes() {
		st.Cluster.SetBoxFailed(b, true)
	}
	if Displace(st, r, a) {
		t.Fatal("re-placement into an all-failed cluster must fail")
	}
	// The record's holdings were released (into failed boxes, so the
	// capacity surfaces at repair) and the shell is safe to pool.
	if !a.CPU.IsZero() || !a.RAM.IsZero() || !a.STO.IsZero() || a.CPURAMFlow != nil {
		t.Error("failed displace left holdings on the record")
	}
	st.ReleaseVM(a)
	for _, b := range st.Cluster.Boxes() {
		st.Cluster.SetBoxFailed(b, false)
	}
	// Everything must be pristine after repair.
	for _, k := range units.Resources() {
		if st.Cluster.TotalFree(k) != st.Cluster.TotalCapacity(k) {
			t.Errorf("%v not pristine after repair", k)
		}
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRebalanceManyVMs(t *testing.T) {
	// Fill a cluster with NULB under rack-0 CPU pressure to create many
	// inter-rack placements, then rebalance with RISA and verify every
	// migration reduced the inter-rack count monotonically.
	st := defaultState(t)
	for _, b := range st.Cluster.Rack(0).BoxesOf(units.CPU) {
		if _, err := st.Cluster.Allocate(b, b.Free()-4); err != nil {
			t.Fatal(err)
		}
	}
	nulb := baseline.NewNULB(st)
	var as []*sched.Assignment
	inter := 0
	for i := 0; i < 200; i++ {
		a, err := nulb.Schedule(workload.VM{ID: i, Lifetime: 1, Req: units.Vec(8, 16, 128)})
		if err != nil {
			continue
		}
		as = append(as, a)
		if a.InterRack() {
			inter++
		}
	}
	r := New(st)
	moved := Rebalance(r, as)
	after := 0
	for _, a := range as {
		if a.InterRack() {
			after++
		}
	}
	if after != inter-moved {
		t.Errorf("inter-rack count %d -> %d with %d migrations", inter, after, moved)
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
