package core

import (
	"testing"

	"risa/internal/baseline"
	"risa/internal/sched"
	"risa/internal/units"
	"risa/internal/workload"
)

// interRackState builds a 2-rack cluster with an assignment forced across
// racks: CPU in rack 1, RAM+STO in rack 0.
func interRackAssignment(t *testing.T) (*sched.State, *sched.Assignment) {
	t.Helper()
	st := toyState(t)
	// Exhaust rack 1's RAM so NULB splits the VM (toy example 1 shape).
	nulb := baseline.NewNULB(st)
	vm := workload.VM{ID: 0, Lifetime: 100, Req: units.Vec(8, 16, 128)}
	a, err := nulb.Schedule(vm)
	if err != nil {
		t.Fatal(err)
	}
	if !a.InterRack() {
		t.Fatal("setup should produce an inter-rack assignment")
	}
	return st, a
}

func TestRebalanceMigratesInterRackVM(t *testing.T) {
	st, a := interRackAssignment(t)
	r := New(st)
	moved := Rebalance(r, []*sched.Assignment{a})
	if moved != 1 {
		t.Fatalf("migrated %d, want 1", moved)
	}
	if a.InterRack() {
		t.Error("assignment should now be intra-rack")
	}
	if a.CPURAMLatency() != sched.IntraRackCPURAMLatency {
		t.Error("latency should drop to the floor")
	}
	// All resources still held, nothing leaked.
	if a.CPU.Total != 8 || a.RAM.Total != 16 || a.STO.Total != 128 {
		t.Errorf("migrated placement wrong: %d/%d/%d", a.CPU.Total, a.RAM.Total, a.STO.Total)
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// The migrated VM can be released normally.
	st.ReleaseVM(a)
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRebalanceSkipsIntraRackVMs(t *testing.T) {
	st := defaultState(t)
	r := New(st)
	var as []*sched.Assignment
	for i := 0; i < 5; i++ {
		a, err := r.Schedule(typicalVM(i))
		if err != nil {
			t.Fatal(err)
		}
		as = append(as, a)
	}
	if moved := Rebalance(r, as); moved != 0 {
		t.Errorf("intra-rack VMs migrated: %d", moved)
	}
}

func TestRebalanceRestoresWhenNoRackFits(t *testing.T) {
	// The inter-rack VM stays inter-rack when still no single rack can
	// host it; the original placement must be restored exactly.
	st, a := interRackAssignment(t)
	// Shrink rack 1's RAM below the request (max 15 GB in one box) so
	// migration is impossible: rack 0 has no CPU, rack 1 not enough RAM.
	if _, err := st.Cluster.Preoccupy(1, 0, units.RAM, 17); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Cluster.Preoccupy(1, 1, units.RAM, 16); err != nil {
		t.Fatal(err)
	}
	r := New(st)
	cpuBox := a.CPU.Box
	ramBox := a.RAM.Box
	if moved := Rebalance(r, []*sched.Assignment{a}); moved != 0 {
		t.Fatalf("migration should be impossible")
	}
	if a.CPU.Box != cpuBox || a.RAM.Box != ramBox {
		t.Error("failed migration must restore the original boxes")
	}
	if !a.InterRack() {
		t.Error("assignment should remain inter-rack")
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRebalanceHandlesNilEntries(t *testing.T) {
	st := defaultState(t)
	r := New(st)
	if moved := Rebalance(r, []*sched.Assignment{nil, nil}); moved != 0 {
		t.Error("nil assignments should be skipped")
	}
}

func TestRebalanceManyVMs(t *testing.T) {
	// Fill a cluster with NULB under rack-0 CPU pressure to create many
	// inter-rack placements, then rebalance with RISA and verify every
	// migration reduced the inter-rack count monotonically.
	st := defaultState(t)
	for _, b := range st.Cluster.Rack(0).BoxesOf(units.CPU) {
		if _, err := st.Cluster.Allocate(b, b.Free()-4); err != nil {
			t.Fatal(err)
		}
	}
	nulb := baseline.NewNULB(st)
	var as []*sched.Assignment
	inter := 0
	for i := 0; i < 200; i++ {
		a, err := nulb.Schedule(workload.VM{ID: i, Lifetime: 1, Req: units.Vec(8, 16, 128)})
		if err != nil {
			continue
		}
		as = append(as, a)
		if a.InterRack() {
			inter++
		}
	}
	r := New(st)
	moved := Rebalance(r, as)
	after := 0
	for _, a := range as {
		if a.InterRack() {
			after++
		}
	}
	if after != inter-moved {
		t.Errorf("inter-rack count %d -> %d with %d migrations", inter, after, moved)
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
