package core

import (
	"errors"
	"math/rand"
	"testing"

	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

func proposeState(t *testing.T) *sched.State {
	t.Helper()
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestProposeCommitMatchesSerial is the commit oracle: driving RISA
// through Propose + CommitProposal (with the serial fallback the agent
// pool uses when Propose declines) must reproduce the pure serial
// Schedule run placement-for-placement. A conflict-free commit is by
// construction the same transaction Schedule would have performed — this
// replays a mixed stream against both paths and compares every box.
func TestProposeCommitMatchesSerial(t *testing.T) {
	stA, stB := proposeState(t), proposeState(t)
	sa, sb := New(stA), New(stB)
	rng := rand.New(rand.NewSource(23))
	sig := func(a *sched.Assignment) string {
		return a.CPU.Box.String() + "/" + a.RAM.Box.String() + "/" + a.STO.Box.String()
	}
	for i := 0; i < 300; i++ {
		vm := workload.VM{ID: i, Lifetime: 10, Req: units.Vec(
			units.Amount(rng.Int63n(64)+1),
			units.Amount(rng.Int63n(64)+1),
			128)}
		stA.Cluster.Settle()
		var gotA string
		if p, ok := sa.Propose(vm, nil); ok {
			a, err := stA.CommitProposal(p)
			if err != nil {
				t.Fatalf("VM %d: conflict-free commit failed: %v", i, err)
			}
			gotA = sig(a)
		} else if a, err := sa.Schedule(vm); err == nil {
			gotA = "serial:" + sig(a)
		} else {
			gotA = "drop"
		}
		var gotB string
		if a, err := sb.Schedule(vm); err == nil {
			gotB = sig(a)
		} else {
			gotB = "drop"
		}
		// The serial-fallback marker only tags how A placed; the boxes
		// must match B either way.
		if wantA := gotB; gotA != wantA && gotA != "serial:"+wantA {
			t.Fatalf("VM %d: propose+commit placed %q, serial replay %q", i, gotA, gotB)
		}
	}
	if err := stA.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := stA.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCommitConflictOnRackChange: a proposal must lose its commit when
// the rack it claims moved after propose time — here because another
// placement landed in it — and the losing VM must still place serially.
func TestCommitConflictOnRackChange(t *testing.T) {
	st := proposeState(t)
	s := New(st)
	st.Cluster.Settle()
	vm := workload.VM{ID: 1, Lifetime: 10, Req: units.Vec(8, 16, 128)}
	p, ok := s.Propose(vm, nil)
	if !ok {
		t.Fatal("fresh cluster must yield a proposal")
	}
	// An interfering serial placement into the proposal's rack bumps its
	// generations (the winner of the round, from the commit loop's view).
	mask := make(sched.RackMask, st.Cluster.NumRacks())
	mask[p.Claims[0].Rack] = true
	st.Cluster.Settle()
	winner, ok := s.Propose(workload.VM{ID: 2, Lifetime: 10, Req: units.Vec(8, 16, 128)}, mask)
	if !ok {
		t.Fatal("winner proposal must fit in the same rack")
	}
	if _, err := st.CommitProposal(winner); err != nil {
		t.Fatalf("winner commit: %v", err)
	}
	if _, err := st.CommitProposal(p); !errors.Is(err, sched.ErrProposalConflict) {
		t.Fatalf("stale commit returned %v, want ErrProposalConflict", err)
	}
	// The loser is redone serially, like the agent loop does.
	if _, err := s.Schedule(vm); err != nil {
		t.Fatalf("serial redo failed: %v", err)
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCommitConflictOnBoxFailure: a fault landing between propose and
// commit must invalidate the claim — the generation check covers
// failure-driven capacity changes, not just competing placements.
func TestCommitConflictOnBoxFailure(t *testing.T) {
	st := proposeState(t)
	s := New(st)
	st.Cluster.Settle()
	vm := workload.VM{ID: 1, Lifetime: 10, Req: units.Vec(8, 16, 128)}
	p, ok := s.Propose(vm, nil)
	if !ok {
		t.Fatal("fresh cluster must yield a proposal")
	}
	for _, b := range st.Cluster.Rack(p.Claims[0].Rack).Boxes() {
		st.Cluster.SetBoxFailed(b, true)
	}
	if _, err := st.CommitProposal(p); !errors.Is(err, sched.ErrProposalConflict) {
		t.Fatalf("commit into a failed rack returned %v, want ErrProposalConflict", err)
	}
}

// TestProposeRespectsShard: while the shard has capacity, a proposal
// claims only shard racks, whatever the cursor position — the
// low-conflict fast path the contiguous shards exist for.
func TestProposeRespectsShard(t *testing.T) {
	st := proposeState(t)
	s := New(st)
	st.Cluster.Settle()
	mask := make(sched.RackMask, st.Cluster.NumRacks())
	mask[3], mask[4] = true, true
	for i := 0; i < 40; i++ {
		p, ok := s.Propose(workload.VM{ID: i, Lifetime: 10, Req: units.Vec(4, 8, 128)}, mask)
		if !ok {
			t.Fatalf("VM %d: shard with free racks must yield a proposal", i)
		}
		if !mask.Allows(p.Claims[0].Rack) {
			t.Fatalf("VM %d: proposal claims rack %d outside the non-exhausted shard", i, p.Claims[0].Rack)
		}
		if _, err := st.CommitProposal(p); err != nil {
			t.Fatalf("VM %d: commit: %v", i, err)
		}
		st.Cluster.Settle()
	}
}

// TestProposeSpillsOverWhenShardExhausted: a VM too large for any shard
// rack must still be proposed — into a foreign rack — and only return
// ok=false when no rack in the whole cluster can take it. The spillover
// is what makes ok=false a cluster-wide certificate (ConclusiveProposer)
// rather than a shard-local miss.
func TestProposeSpillsOverWhenShardExhausted(t *testing.T) {
	st := proposeState(t)
	s := New(st)
	st.Cluster.Settle()
	mask := make(sched.RackMask, st.Cluster.NumRacks())
	mask[0] = true
	// Saturate the shard's CPU: each box holds 8 bricks x 16 units.
	for i := 0; ; i++ {
		p, ok := s.Propose(workload.VM{ID: i, Lifetime: 10, Req: units.Vec(128, 1, 1)}, mask)
		if !ok {
			t.Fatal("cluster with free racks must always yield a proposal")
		}
		if _, err := st.CommitProposal(p); err != nil {
			t.Fatalf("VM %d: commit: %v", i, err)
		}
		st.Cluster.Settle()
		if !mask.Allows(p.Claims[0].Rack) {
			if free, _ := st.Cluster.Rack(0).MaxFree(units.CPU); free >= 128 {
				t.Fatalf("VM %d spilled to rack %d while shard rack 0 still fits it", i, p.Claims[0].Rack)
			}
			break // shard exhausted, spillover engaged: the behavior under test
		}
		if i > 1000 {
			t.Fatal("spillover never engaged")
		}
	}
}

// TestProposeSuperRackMatchesSchedule: a VM no single rack can hold
// must still be proposed — through the read-only SUPER_RACK tier — and
// its commit must land box-for-box where the serial Schedule would have
// placed it, with a claim on every distinct rack the placement spans.
func TestProposeSuperRackMatchesSchedule(t *testing.T) {
	stA, stB := proposeState(t), proposeState(t)
	sa, sb := New(stA), New(stB)
	stA.Cluster.Settle()
	// A request no single box can hold (a component is capped by the
	// biggest box), pushing past the intra-rack tier into SUPER_RACK.
	free, _ := stA.Cluster.Rack(0).MaxFree(units.CPU)
	vm := workload.VM{ID: 1, Lifetime: 10, Req: units.Vec(free+1, 16, 128)}
	p, ok := sa.Propose(vm, nil)
	sig := func(a *sched.Assignment) string {
		return a.CPU.Box.String() + "/" + a.RAM.Box.String() + "/" + a.STO.Box.String()
	}
	aB, errB := sb.Schedule(vm)
	if !ok {
		// Conclusive certificate: the serial path must drop it too.
		if errB == nil {
			t.Fatalf("Propose declined conclusively but Schedule placed %s", sig(aB))
		}
		return
	}
	if p.NClaims < 2 {
		t.Fatalf("multi-rack proposal carries %d claims, want >= 2", p.NClaims)
	}
	aA, errA := stA.CommitProposal(p)
	if errA != nil {
		t.Fatalf("conflict-free super-rack commit failed: %v", errA)
	}
	if errB != nil {
		t.Fatalf("serial replay dropped the VM the proposal placed: %v", errB)
	}
	if sig(aA) != sig(aB) {
		t.Fatalf("super-rack commit placed %s, serial replay %s", sig(aA), sig(aB))
	}
}

// TestDropConclusive: for a VM nothing in the cluster can hold, Propose
// must return a conclusive false — verified against a full serial
// Schedule on identical state — and DropConclusive must account the
// drop without touching cluster state.
func TestDropConclusive(t *testing.T) {
	stA, stB := proposeState(t), proposeState(t)
	sa, sb := New(stA), New(stB)
	stA.Cluster.Settle()
	// Larger than the whole cluster's CPU: no tier can place it.
	total := stA.Cluster.TotalFree(units.CPU)
	vm := workload.VM{ID: 1, Lifetime: 10, Req: units.Vec(total+1, 16, 128)}
	if _, ok := sa.Propose(vm, nil); ok {
		t.Fatal("impossible VM yielded a proposal")
	}
	if _, err := sb.Schedule(vm); err == nil {
		t.Fatal("oracle violated: serial Schedule placed the VM Propose certified unplaceable")
	}
	if err := sa.DropConclusive(vm); err == nil {
		t.Fatal("DropConclusive returned nil")
	}
	got := sa.Stats()
	if got.ConclusiveDrops != 1 || got.Dropped != 1 {
		t.Errorf("ConclusiveDrops = %d, Dropped = %d, want 1, 1", got.ConclusiveDrops, got.Dropped)
	}
	if err := stA.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestProposeIsReadOnly: a Propose that does not commit leaves cluster
// and fabric untouched — the property that makes concurrent propose
// rounds safe.
func TestProposeIsReadOnly(t *testing.T) {
	st := proposeState(t)
	s := New(st)
	st.Cluster.Settle()
	before := [5]int64{
		int64(st.Cluster.TotalFree(units.CPU)),
		int64(st.Cluster.TotalFree(units.RAM)),
		int64(st.Cluster.TotalFree(units.Storage)),
		int64(st.Fabric.IntraRackFree()),
		int64(st.Fabric.InterRackFree()),
	}
	gens := make([]uint64, st.Cluster.NumRacks())
	for i := range gens {
		gens[i] = st.Cluster.RackGen(i)
	}
	for i := 0; i < 50; i++ {
		if _, ok := s.Propose(workload.VM{ID: i, Lifetime: 10, Req: units.Vec(8, 16, 128)}, nil); !ok {
			t.Fatalf("VM %d: fresh cluster must yield a proposal", i)
		}
	}
	after := [5]int64{
		int64(st.Cluster.TotalFree(units.CPU)),
		int64(st.Cluster.TotalFree(units.RAM)),
		int64(st.Cluster.TotalFree(units.Storage)),
		int64(st.Fabric.IntraRackFree()),
		int64(st.Fabric.InterRackFree()),
	}
	if before != after {
		t.Errorf("Propose mutated capacity: %v -> %v", before, after)
	}
	for i := range gens {
		if st.Cluster.RackGen(i) != gens[i] {
			t.Errorf("Propose bumped rack %d generation", i)
		}
	}
}
