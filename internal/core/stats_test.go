package core

import (
	"testing"

	"risa/internal/units"
	"risa/internal/workload"
)

func TestStatsCountIntraRack(t *testing.T) {
	st := defaultState(t)
	r := New(st)
	for i := 0; i < 10; i++ {
		if _, err := r.Schedule(typicalVM(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := r.Stats()
	if s.IntraRack != 10 {
		t.Errorf("IntraRack = %d, want 10", s.IntraRack)
	}
	if s.SuperRack != 0 || s.PoolEmpty != 0 || s.NetGated != 0 || s.Dropped != 0 {
		t.Errorf("unexpected fallback counters: %+v", s)
	}
	// On an empty cluster every pool walk finds headroom at its first
	// probe: exactly one rack probed per VM.
	if s.RacksProbed != 10 {
		t.Errorf("RacksProbed = %d, want 10", s.RacksProbed)
	}
}

func TestStatsCountPoolEmptyAndSuperRack(t *testing.T) {
	st := toyState(t)
	// Exhaust rack 1's RAM so no single rack fits the typical VM.
	if _, err := st.Cluster.Preoccupy(1, 0, units.RAM, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Cluster.Preoccupy(1, 1, units.RAM, 16); err != nil {
		t.Fatal(err)
	}
	r := New(st)
	vm := workload.VM{ID: 0, Lifetime: 1, Req: units.Vec(8, 16, 128)}
	if _, err := r.Schedule(vm); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.PoolEmpty != 1 || s.SuperRack != 1 || s.IntraRack != 0 {
		t.Errorf("stats = %+v, want pool-empty super-rack path", s)
	}
}

func TestStatsCountDrops(t *testing.T) {
	st := defaultState(t)
	r := New(st)
	vm := workload.VM{ID: 0, Lifetime: 1, Req: units.Vec(99999, 1, 1)}
	if _, err := r.Schedule(vm); err == nil {
		t.Fatal("oversized VM must drop")
	}
	if s := r.Stats(); s.Dropped != 1 || s.PoolEmpty != 1 {
		t.Errorf("stats = %+v, want one drop via empty pool", s)
	}
}

func TestStatsUnderFillPressure(t *testing.T) {
	st := defaultState(t)
	r := New(st)
	// Fill the cluster until the first drop. Pool membership guarantees
	// compute and the calibrated fabric never gates, so every successful
	// walk probes exactly one rack; the terminal drop sees an empty pool
	// (RAM exhausted in every rack).
	n := 0
	for {
		if _, err := r.Schedule(typicalVM(n)); err != nil {
			break
		}
		n++
	}
	s := r.Stats()
	if s.RacksProbed != n {
		t.Errorf("RacksProbed = %d for %d placements", s.RacksProbed, n)
	}
	if s.Dropped != 1 || s.PoolEmpty != 1 {
		t.Errorf("terminal drop should be a pool-empty event: %+v", s)
	}
	if s.IntraRack != n {
		t.Errorf("IntraRack = %d, want %d", s.IntraRack, n)
	}
}

func TestStatsNetGated(t *testing.T) {
	// Saturate rack 0's intra-rack links; the pool still contains rack 0
	// (compute is free) but the AVAIL_INTRA_RACK_NET check must skip it,
	// probing a second rack.
	st := defaultState(t)
	r := NewWithOptions(st, Options{DisableRoundRobin: true})
	rack := st.Cluster.Rack(0)
	cpu := rack.BoxesOf(units.CPU)[0]
	targets := rack.Boxes()
	for {
		done := true
		for _, dst := range targets {
			if dst == cpu {
				continue
			}
			if _, err := st.Fabric.AllocateFlow(cpu, dst, 200, 0); err == nil {
				done = false
			}
		}
		if done {
			break
		}
	}
	// Rack 0 intra free is now far below a typical VM's 22 Gb/s demand
	// only if fully drained; with 16 uplinks per box full pairwise
	// saturation is impossible, so instead verify the probe counter by
	// scheduling and checking it advanced past rack 0 or stayed.
	before := r.Stats().RacksProbed
	if _, err := r.Schedule(typicalVM(0)); err != nil {
		t.Fatal(err)
	}
	if r.Stats().RacksProbed <= before {
		t.Error("probe counter must advance")
	}
}
