package core

// Stats counts the decision paths RISA took since construction. The
// paper's §5.3 claims that "in practice INTRA_RACK_POOL is not always
// empty. In fact for the simulation results discussed ... it was never
// empty" — PoolEmpty lets an experiment verify that claim directly.
type Stats struct {
	// IntraRack counts VMs placed through the INTRA_RACK_POOL path.
	IntraRack int
	// SuperRack counts VMs that went through the NULB fallback (pool
	// empty, or no pool rack had network headroom).
	SuperRack int
	// PoolEmpty counts arrivals that found INTRA_RACK_POOL empty.
	PoolEmpty int
	// NetGated counts arrivals whose pool was non-empty but where every
	// pool rack failed the AVAIL_INTRA_RACK_NET check or the placement
	// transaction, forcing the fallback.
	NetGated int
	// RacksProbed sums pool racks examined across all arrivals — the
	// round-robin walk length, a proxy for scheduling work.
	RacksProbed int
	// Dropped counts VMs neither path could place.
	Dropped int
	// ConclusiveDrops counts agent-mode VMs dropped on a conclusive
	// Propose failure — both tiers checked read-only, no serial redo
	// (sched.ConclusiveProposer). These VMs bump Dropped but neither
	// PoolEmpty nor NetGated: the walk that distinguishes the two is
	// exactly what the conclusive drop skips.
	ConclusiveDrops int
}

// Stats returns a copy of the counters.
func (r *RISA) Stats() Stats { return r.stats }
