// Package core implements the RISA paper's contribution: the Round-robin
// Intra-rack friendly Scheduling Algorithm (Algorithm 1) and its best-fit
// variant RISA-BF (Algorithm 3).
//
// RISA's idea: a VM whose whole request fits inside a single rack should
// be placed inside a single rack, because every inter-rack placement burns
// inter-rack optical bandwidth, switch power and latency. RISA therefore
//
//  1. builds the INTRA_RACK_POOL — every rack whose per-resource maximum
//     single-box availability covers the request;
//  2. walks that pool round-robin (a rotating cursor balances load across
//     racks) and places the VM in the first pool rack whose intra-rack
//     network can still carry the VM's flows;
//  3. only when the pool is empty (or no pool rack has network headroom)
//     builds the SUPER_RACK — per resource, the racks that could hold that
//     single component — and delegates to NULB restricted to those racks,
//     accepting an inter-rack placement.
//
// RISA-BF differs in step 2 only: boxes inside the chosen rack are taken
// best-fit (ascending free space) instead of first-fit, packing tighter
// and stranding less.
package core

import (
	"fmt"

	"risa/internal/baseline"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// RISA is the scheduler of Algorithm 1 (and, with best-fit box selection,
// Algorithm 3). Not safe for concurrent use.
type RISA struct {
	st       *sched.State
	fallback baseline.MaskedScheduler
	opts     Options
	cursor   int // round-robin rack cursor: next rack index to prefer
	stats    Stats

	// scratch owns RISA's reusable decision buffers: the SUPER_RACK masks
	// (one preallocated RackMask per resource, cleared per decision) and
	// the per-rack, per-resource next-fit box cursors, stored densely by
	// rack index instead of the map[int]*[...]int the pre-scratch code
	// hashed through on every placement.
	//
	// On the cursors themselves: the paper calls its intra-rack packing
	// "first-fit, box 0 first, then box 1", but Table 4 shows the
	// selection never returns to an earlier box while the current one
	// still fits (VM 4 with 5 cores goes to box 1 although box 0 has 9
	// free) — i.e. next-fit. We reproduce Table 4 exactly; see
	// DESIGN.md §4.
	scratch sched.Scratch
}

// New returns RISA bound to the given datacenter state.
func New(st *sched.State) *RISA { return NewWithOptions(st, Options{}) }

// NewBF returns RISA-BF (Algorithm 3) bound to the given state.
func NewBF(st *sched.State) *RISA {
	return NewWithOptions(st, Options{Packing: BestFit})
}

// NewWithOptions returns an ablated RISA variant; see Options.
func NewWithOptions(st *sched.State, opts Options) *RISA {
	return &RISA{
		st:       st,
		fallback: baseline.NewNULBMasked(st),
		opts:     opts,
	}
}

// Name implements sched.Scheduler.
func (r *RISA) Name() string {
	if r.opts.Name != "" {
		return r.opts.Name
	}
	if r.opts.Packing == BestFit {
		return "RISA-BF"
	}
	return "RISA"
}

// Release implements sched.Scheduler.
func (r *RISA) Release(a *sched.Assignment) { r.st.ReleaseVM(a) }

// Schedule implements sched.Scheduler: Algorithm 1 / Algorithm 3 for one
// VM.
func (r *RISA) Schedule(vm workload.VM) (*sched.Assignment, error) {
	if !vm.Req.NonNegative() || vm.Req.IsZero() {
		return nil, fmt.Errorf("core: VM %d has unusable request %v", vm.ID, vm.Req)
	}
	a, poolSeen := r.scheduleIntra(vm)
	if a != nil {
		r.stats.IntraRack++
		return a, nil
	}
	if poolSeen {
		// Pool racks exist but none has the network headroom (or a
		// placement raced against bandwidth fragmentation): fall back.
		r.stats.NetGated++
	} else {
		r.stats.PoolEmpty++
	}
	a, err := r.scheduleSuperRack(vm)
	if err != nil {
		r.stats.Dropped++
		return nil, err
	}
	r.stats.SuperRack++
	return a, nil
}

// scheduleIntra walks the INTRA_RACK_POOL round-robin starting at the
// cursor and attempts an intra-rack placement in each candidate until one
// sticks. The pool is never materialized: qualifying racks are enumerated
// lazily through the cluster-level candidate index (NextRackFits), in
// ascending index order rotated at the cursor — exactly the order the
// materialized pool walk used — so in the common case where an early
// candidate accepts the VM, the remaining racks are never even visited and
// the decision cost is independent of the cluster size. poolSeen reports
// whether any qualifying rack existed (a nil assignment with poolSeen set
// means every pool rack was network-gated).
//
// Probing a candidate cannot disturb the enumeration: a failed probe rolls
// back completely, so the candidate set seen by later NextRackFits calls
// is the one a snapshot at entry would have produced.
func (r *RISA) scheduleIntra(vm workload.VM) (a *sched.Assignment, poolSeen bool) {
	cfg := r.st.Units()
	cl := r.st.Cluster
	demand := cfg.CPURAMDemand(vm.Req) + cfg.RAMSTODemand(vm.Req)
	try := func(rackIdx int) *sched.Assignment {
		r.stats.RacksProbed++
		// AVAIL_INTRA_RACK_NET: skip racks whose intra-rack links cannot
		// carry both of the VM's flows at all.
		if r.st.Fabric.RackIntraFree(rackIdx) < demand {
			return nil
		}
		boxes, ok := r.chooseBoxes(cl.Rack(rackIdx), vm.Req)
		if !ok {
			return nil
		}
		a, err := r.st.AllocateVM(vm, boxes, network.FirstFit)
		if err != nil {
			return nil // e.g. per-link bandwidth fragmentation; try next rack
		}
		// Advance the round-robin cursor past the rack we just used and
		// remember the next-fit box positions inside it.
		if !r.opts.DisableRoundRobin {
			r.cursor = (rackIdx + 1) % cl.NumRacks()
		}
		if r.opts.Packing == NextFit {
			cur := r.scratch.Cursors(rackIdx)
			for _, res := range units.Resources() {
				if boxes[res] != nil {
					cur[res] = boxes[res].KindIndex()
				}
			}
		}
		return a
	}
	start := r.cursor
	for i := cl.NextRackFits(vm.Req, start); i >= 0; i = cl.NextRackFits(vm.Req, i+1) {
		poolSeen = true
		if a := try(i); a != nil {
			return a, true
		}
	}
	for i := cl.NextRackFits(vm.Req, 0); i >= 0 && i < start; i = cl.NextRackFits(vm.Req, i+1) {
		poolSeen = true
		if a := try(i); a != nil {
			return a, true
		}
	}
	return nil, poolSeen
}

// chooseBoxes picks one box per requested resource inside the rack
// according to the packing policy. RISA packs next-fit: scanning starts at
// the rack's cursor box and wraps, staying on the current box while it
// fits (this is what the paper's Table 4 traces — see the boxCursor
// comment). RISA-BF takes the fitting box with the least free space
// (best-fit). First-fit and worst-fit exist for the packing ablation.
func (r *RISA) chooseBoxes(rack *topology.Rack, req units.Vector) (sched.BoxTriple, bool) {
	var boxes sched.BoxTriple
	cur := r.scratch.Cursors(rack.Index())
	for _, res := range units.Resources() {
		if req[res] == 0 {
			continue
		}
		kindBoxes := rack.BoxesOf(res)
		var chosen *topology.Box
		switch r.opts.Packing {
		case BestFit:
			for _, b := range kindBoxes {
				if b.Free() < req[res] {
					continue
				}
				if chosen == nil || b.Free() < chosen.Free() {
					chosen = b
				}
			}
		case WorstFit:
			for _, b := range kindBoxes {
				if b.Free() < req[res] {
					continue
				}
				if chosen == nil || b.Free() > chosen.Free() {
					chosen = b
				}
			}
		case FirstFit:
			for _, b := range kindBoxes {
				if b.Free() >= req[res] {
					chosen = b
					break
				}
			}
		default: // NextFit — the paper's RISA
			start := cur[res]
			for k := 0; k < len(kindBoxes); k++ {
				if b := kindBoxes[(start+k)%len(kindBoxes)]; b.Free() >= req[res] {
					chosen = b
					break
				}
			}
		}
		if chosen == nil {
			return boxes, false
		}
		boxes[res] = chosen
	}
	return boxes, true
}

// scheduleSuperRack builds the SUPER_RACK (per resource, the racks whose
// best box could hold that component) and delegates to NULB restricted to
// it, accepting an inter-rack placement.
func (r *RISA) scheduleSuperRack(vm workload.VM) (*sched.Assignment, error) {
	cl := r.st.Cluster
	var masks baseline.Masks
	for _, res := range units.Resources() {
		if vm.Req[res] == 0 {
			continue
		}
		// Enumerate only the qualifying racks through the cluster-level
		// candidate index; the resulting mask is identical to testing
		// MaxFree on every rack. The mask buffers come from the scratch —
		// one preallocated RackMask per resource, cleared here — and are
		// valid only for the fallback call below.
		mask := r.scratch.Mask(res, cl.NumRacks())
		any := false
		for i := cl.NextRackWith(res, vm.Req[res], 0); i >= 0; i = cl.NextRackWith(res, vm.Req[res], i+1) {
			mask[i] = true
			any = true
		}
		if !any {
			return nil, fmt.Errorf("core: VM %d: SUPER_RACK empty for %v (need %d %s)",
				vm.ID, res, vm.Req[res], res.Native())
		}
		masks[res] = mask
	}
	return r.fallback.ScheduleMasked(vm, masks)
}

// Cursor exposes the round-robin position for tests and ablations.
func (r *RISA) Cursor() int { return r.cursor }

// SchedulerState implements sched.StatefulScheduler: RISA's carried
// decision state is the round-robin rack cursor plus the per-rack
// next-fit box cursors. Diagnostic counters are excluded (they never
// influence a placement).
func (r *RISA) SchedulerState() sched.SchedulerState {
	return sched.SchedulerState{Cursor: r.cursor, BoxCursors: r.scratch.CursorState()}
}

// RestoreSchedulerState implements sched.StatefulScheduler.
func (r *RISA) RestoreSchedulerState(st sched.SchedulerState) {
	r.cursor = st.Cursor
	r.scratch.RestoreCursorState(st.BoxCursors)
}
