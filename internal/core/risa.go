// Package core implements the RISA paper's contribution: the Round-robin
// Intra-rack friendly Scheduling Algorithm (Algorithm 1) and its best-fit
// variant RISA-BF (Algorithm 3).
//
// RISA's idea: a VM whose whole request fits inside a single rack should
// be placed inside a single rack, because every inter-rack placement burns
// inter-rack optical bandwidth, switch power and latency. RISA therefore
//
//  1. builds the INTRA_RACK_POOL — every rack whose per-resource maximum
//     single-box availability covers the request;
//  2. walks that pool round-robin (a rotating cursor balances load across
//     racks) and places the VM in the first pool rack whose intra-rack
//     network can still carry the VM's flows;
//  3. only when the pool is empty (or no pool rack has network headroom)
//     builds the SUPER_RACK — per resource, the racks that could hold that
//     single component — and delegates to NULB restricted to those racks,
//     accepting an inter-rack placement.
//
// RISA-BF differs in step 2 only: boxes inside the chosen rack are taken
// best-fit (ascending free space) instead of first-fit, packing tighter
// and stranding less.
package core

import (
	"fmt"

	"risa/internal/baseline"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// RISA is the scheduler of Algorithm 1 (and, with best-fit box selection,
// Algorithm 3). Not safe for concurrent use.
type RISA struct {
	st       *sched.State
	fallback baseline.MaskedScheduler
	opts     Options
	cursor   int // round-robin rack cursor: next rack index to prefer
	stats    Stats

	// boxCursor holds RISA's per-rack, per-resource next-fit position.
	// The paper calls its intra-rack packing "first-fit, box 0 first,
	// then box 1", but Table 4 shows the selection never returns to an
	// earlier box while the current one still fits (VM 4 with 5 cores
	// goes to box 1 although box 0 has 9 free) — i.e. next-fit. We
	// reproduce Table 4 exactly; see DESIGN.md §4.
	boxCursor map[int]*[units.NumResources]int

	// poolBuf backs intraRackPool so building the pool on every Schedule
	// call allocates nothing in steady state.
	poolBuf []int
}

// New returns RISA bound to the given datacenter state.
func New(st *sched.State) *RISA { return NewWithOptions(st, Options{}) }

// NewBF returns RISA-BF (Algorithm 3) bound to the given state.
func NewBF(st *sched.State) *RISA {
	return NewWithOptions(st, Options{Packing: BestFit})
}

// NewWithOptions returns an ablated RISA variant; see Options.
func NewWithOptions(st *sched.State, opts Options) *RISA {
	return &RISA{
		st:        st,
		fallback:  baseline.NewNULBMasked(st),
		opts:      opts,
		boxCursor: make(map[int]*[units.NumResources]int),
	}
}

// Name implements sched.Scheduler.
func (r *RISA) Name() string {
	if r.opts.Name != "" {
		return r.opts.Name
	}
	if r.opts.Packing == BestFit {
		return "RISA-BF"
	}
	return "RISA"
}

// Release implements sched.Scheduler.
func (r *RISA) Release(a *sched.Assignment) { r.st.ReleaseVM(a) }

// Schedule implements sched.Scheduler: Algorithm 1 / Algorithm 3 for one
// VM.
func (r *RISA) Schedule(vm workload.VM) (*sched.Assignment, error) {
	if !vm.Req.NonNegative() || vm.Req.IsZero() {
		return nil, fmt.Errorf("core: VM %d has unusable request %v", vm.ID, vm.Req)
	}
	pool := r.intraRackPool(vm.Req)
	if len(pool) == 0 {
		r.stats.PoolEmpty++
	} else {
		if a, err := r.scheduleIntra(vm, pool); err == nil {
			r.stats.IntraRack++
			return a, nil
		}
		// Pool racks exist but none has the network headroom (or a
		// placement raced against bandwidth fragmentation): fall back.
		r.stats.NetGated++
	}
	a, err := r.scheduleSuperRack(vm)
	if err != nil {
		r.stats.Dropped++
		return nil, err
	}
	r.stats.SuperRack++
	return a, nil
}

// intraRackPool returns the indices of racks that can host the entire VM:
// for every requested resource some single box in the rack has enough
// free space. Indices are ascending. Each rack answers from its
// free-capacity index, so the pool build is O(racks) rather than
// O(boxes); the returned slice is reused across calls.
func (r *RISA) intraRackPool(req units.Vector) []int {
	pool := r.poolBuf[:0]
	for _, rack := range r.st.Cluster.Racks() {
		if rack.FitsWholeVM(req) {
			pool = append(pool, rack.Index())
		}
	}
	r.poolBuf = pool
	return pool
}

// scheduleIntra walks the pool round-robin starting at the cursor and
// attempts an intra-rack placement in each candidate until one sticks.
func (r *RISA) scheduleIntra(vm workload.VM, pool []int) (*sched.Assignment, error) {
	cfg := r.st.Units()
	demand := cfg.CPURAMDemand(vm.Req) + cfg.RAMSTODemand(vm.Req)
	// Rotate the pool so iteration starts at the first rack ≥ cursor.
	start := 0
	for i, idx := range pool {
		if idx >= r.cursor {
			start = i
			break
		}
	}
	for k := 0; k < len(pool); k++ {
		rackIdx := pool[(start+k)%len(pool)]
		r.stats.RacksProbed++
		// AVAIL_INTRA_RACK_NET: skip racks whose intra-rack links cannot
		// carry both of the VM's flows at all.
		if r.st.Fabric.RackIntraFree(rackIdx) < demand {
			continue
		}
		boxes, ok := r.chooseBoxes(r.st.Cluster.Rack(rackIdx), vm.Req)
		if !ok {
			continue
		}
		a, err := r.st.AllocateVM(vm, boxes, network.FirstFit)
		if err != nil {
			continue // e.g. per-link bandwidth fragmentation; try next rack
		}
		// Advance the round-robin cursor past the rack we just used and
		// remember the next-fit box positions inside it.
		if !r.opts.DisableRoundRobin {
			r.cursor = (rackIdx + 1) % r.st.Cluster.NumRacks()
		}
		if r.opts.Packing == NextFit {
			cur := r.cursors(rackIdx)
			for _, res := range units.Resources() {
				if boxes[res] != nil {
					cur[res] = boxes[res].KindIndex()
				}
			}
		}
		return a, nil
	}
	return nil, fmt.Errorf("core: VM %d: no pool rack with intra-rack network headroom", vm.ID)
}

// cursors returns the rack's next-fit positions, creating them on first
// use.
func (r *RISA) cursors(rackIdx int) *[units.NumResources]int {
	cur, ok := r.boxCursor[rackIdx]
	if !ok {
		cur = new([units.NumResources]int)
		r.boxCursor[rackIdx] = cur
	}
	return cur
}

// chooseBoxes picks one box per requested resource inside the rack
// according to the packing policy. RISA packs next-fit: scanning starts at
// the rack's cursor box and wraps, staying on the current box while it
// fits (this is what the paper's Table 4 traces — see the boxCursor
// comment). RISA-BF takes the fitting box with the least free space
// (best-fit). First-fit and worst-fit exist for the packing ablation.
func (r *RISA) chooseBoxes(rack *topology.Rack, req units.Vector) (sched.BoxTriple, bool) {
	var boxes sched.BoxTriple
	cur := r.cursors(rack.Index())
	for _, res := range units.Resources() {
		if req[res] == 0 {
			continue
		}
		kindBoxes := rack.BoxesOf(res)
		var chosen *topology.Box
		switch r.opts.Packing {
		case BestFit:
			for _, b := range kindBoxes {
				if b.Free() < req[res] {
					continue
				}
				if chosen == nil || b.Free() < chosen.Free() {
					chosen = b
				}
			}
		case WorstFit:
			for _, b := range kindBoxes {
				if b.Free() < req[res] {
					continue
				}
				if chosen == nil || b.Free() > chosen.Free() {
					chosen = b
				}
			}
		case FirstFit:
			for _, b := range kindBoxes {
				if b.Free() >= req[res] {
					chosen = b
					break
				}
			}
		default: // NextFit — the paper's RISA
			start := cur[res]
			for k := 0; k < len(kindBoxes); k++ {
				if b := kindBoxes[(start+k)%len(kindBoxes)]; b.Free() >= req[res] {
					chosen = b
					break
				}
			}
		}
		if chosen == nil {
			return boxes, false
		}
		boxes[res] = chosen
	}
	return boxes, true
}

// scheduleSuperRack builds the SUPER_RACK (per resource, the racks whose
// best box could hold that component) and delegates to NULB restricted to
// it, accepting an inter-rack placement.
func (r *RISA) scheduleSuperRack(vm workload.VM) (*sched.Assignment, error) {
	cl := r.st.Cluster
	var masks baseline.Masks
	for _, res := range units.Resources() {
		if vm.Req[res] == 0 {
			continue
		}
		mask := make(sched.RackMask, cl.NumRacks())
		any := false
		for _, rack := range cl.Racks() {
			if max, _ := rack.MaxFree(res); max >= vm.Req[res] {
				mask[rack.Index()] = true
				any = true
			}
		}
		if !any {
			return nil, fmt.Errorf("core: VM %d: SUPER_RACK empty for %v (need %d %s)",
				vm.ID, res, vm.Req[res], res.Native())
		}
		masks[res] = mask
	}
	return r.fallback.ScheduleMasked(vm, masks)
}

// Cursor exposes the round-robin position for tests and ablations.
func (r *RISA) Cursor() int { return r.cursor }
