// Package core implements the RISA paper's contribution: the Round-robin
// Intra-rack friendly Scheduling Algorithm (Algorithm 1) and its best-fit
// variant RISA-BF (Algorithm 3).
//
// RISA's idea: a VM whose whole request fits inside a single rack should
// be placed inside a single rack, because every inter-rack placement burns
// inter-rack optical bandwidth, switch power and latency. RISA therefore
//
//  1. builds the INTRA_RACK_POOL — every rack whose per-resource maximum
//     single-box availability covers the request;
//  2. walks that pool round-robin (a rotating cursor balances load across
//     racks) and places the VM in the first pool rack whose intra-rack
//     network can still carry the VM's flows;
//  3. only when the pool is empty (or no pool rack has network headroom)
//     builds the SUPER_RACK — per resource, the racks that could hold that
//     single component — and delegates to NULB restricted to those racks,
//     accepting an inter-rack placement.
//
// RISA-BF differs in step 2 only: boxes inside the chosen rack are taken
// best-fit (ascending free space) instead of first-fit, packing tighter
// and stranding less.
package core

import (
	"fmt"

	"risa/internal/baseline"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// RISA is the scheduler of Algorithm 1 (and, with best-fit box selection,
// Algorithm 3). Not safe for concurrent use.
type RISA struct {
	st       *sched.State
	fallback baseline.MaskedScheduler
	opts     Options
	cursor   int // round-robin rack cursor: next rack index to prefer
	stats    Stats

	// scratch owns RISA's reusable decision buffers: the SUPER_RACK masks
	// (one preallocated RackMask per resource, cleared per decision) and
	// the per-rack, per-resource next-fit box cursors, stored densely by
	// rack index instead of the map[int]*[...]int the pre-scratch code
	// hashed through on every placement.
	//
	// On the cursors themselves: the paper calls its intra-rack packing
	// "first-fit, box 0 first, then box 1", but Table 4 shows the
	// selection never returns to an earlier box while the current one
	// still fits (VM 4 with 5 cores goes to box 1 although box 0 has 9
	// free) — i.e. next-fit. We reproduce Table 4 exactly; see
	// DESIGN.md §4.
	scratch sched.Scratch
}

// New returns RISA bound to the given datacenter state.
func New(st *sched.State) *RISA { return NewWithOptions(st, Options{}) }

// NewBF returns RISA-BF (Algorithm 3) bound to the given state.
func NewBF(st *sched.State) *RISA {
	return NewWithOptions(st, Options{Packing: BestFit})
}

// NewWithOptions returns an ablated RISA variant; see Options.
func NewWithOptions(st *sched.State, opts Options) *RISA {
	return &RISA{
		st:       st,
		fallback: baseline.NewNULBMasked(st),
		opts:     opts,
	}
}

// Name implements sched.Scheduler.
func (r *RISA) Name() string {
	if r.opts.Name != "" {
		return r.opts.Name
	}
	if r.opts.Packing == BestFit {
		return "RISA-BF"
	}
	return "RISA"
}

// Release implements sched.Scheduler.
func (r *RISA) Release(a *sched.Assignment) { r.st.ReleaseVM(a) }

// Schedule implements sched.Scheduler: Algorithm 1 / Algorithm 3 for one
// VM.
func (r *RISA) Schedule(vm workload.VM) (*sched.Assignment, error) {
	if !vm.Req.NonNegative() || vm.Req.IsZero() {
		return nil, fmt.Errorf("core: VM %d has unusable request %v", vm.ID, vm.Req)
	}
	a, poolSeen := r.scheduleIntra(vm)
	if a != nil {
		r.stats.IntraRack++
		return a, nil
	}
	if poolSeen {
		// Pool racks exist but none has the network headroom (or a
		// placement raced against bandwidth fragmentation): fall back.
		r.stats.NetGated++
	} else {
		r.stats.PoolEmpty++
	}
	a, err := r.scheduleSuperRack(vm)
	if err != nil {
		r.stats.Dropped++
		return nil, err
	}
	r.stats.SuperRack++
	return a, nil
}

// scheduleIntra walks the INTRA_RACK_POOL round-robin starting at the
// cursor and attempts an intra-rack placement in each candidate until one
// sticks. The pool is never materialized: qualifying racks are enumerated
// lazily through the cluster-level candidate index (NextRackFits), in
// ascending index order rotated at the cursor — exactly the order the
// materialized pool walk used — so in the common case where an early
// candidate accepts the VM, the remaining racks are never even visited and
// the decision cost is independent of the cluster size. poolSeen reports
// whether any qualifying rack existed (a nil assignment with poolSeen set
// means every pool rack was network-gated).
//
// Probing a candidate cannot disturb the enumeration: a failed probe rolls
// back completely, so the candidate set seen by later NextRackFits calls
// is the one a snapshot at entry would have produced.
func (r *RISA) scheduleIntra(vm workload.VM) (a *sched.Assignment, poolSeen bool) {
	cfg := r.st.Units()
	cl := r.st.Cluster
	demand := cfg.CPURAMDemand(vm.Req) + cfg.RAMSTODemand(vm.Req)
	try := func(rackIdx int) *sched.Assignment {
		r.stats.RacksProbed++
		// AVAIL_INTRA_RACK_NET: skip racks whose intra-rack links cannot
		// carry both of the VM's flows at all.
		if r.st.Fabric.RackIntraFree(rackIdx) < demand {
			return nil
		}
		boxes, ok := r.chooseBoxes(cl.Rack(rackIdx), vm.Req)
		if !ok {
			return nil
		}
		a, err := r.st.AllocateVM(vm, boxes, network.FirstFit)
		if err != nil {
			return nil // e.g. per-link bandwidth fragmentation; try next rack
		}
		// Advance the round-robin cursor past the rack we just used and
		// remember the next-fit box positions inside it.
		if !r.opts.DisableRoundRobin {
			r.cursor = (rackIdx + 1) % cl.NumRacks()
		}
		if r.opts.Packing == NextFit {
			cur := r.scratch.Cursors(rackIdx)
			for _, res := range units.Resources() {
				if boxes[res] != nil {
					cur[res] = boxes[res].KindIndex()
				}
			}
		}
		return a
	}
	start := r.cursor
	for i := cl.NextRackFits(vm.Req, start); i >= 0; i = cl.NextRackFits(vm.Req, i+1) {
		poolSeen = true
		if a := try(i); a != nil {
			return a, true
		}
	}
	for i := cl.NextRackFits(vm.Req, 0); i >= 0 && i < start; i = cl.NextRackFits(vm.Req, i+1) {
		poolSeen = true
		if a := try(i); a != nil {
			return a, true
		}
	}
	return nil, poolSeen
}

// chooseBoxes picks one box per requested resource inside the rack
// according to the packing policy. RISA packs next-fit: scanning starts at
// the rack's cursor box and wraps, staying on the current box while it
// fits (this is what the paper's Table 4 traces — see the boxCursor
// comment). RISA-BF takes the fitting box with the least free space
// (best-fit). First-fit and worst-fit exist for the packing ablation.
//
// All four policies scan the rack's visible-free vector (FreeVecOf) —
// one contiguous amount slice in box-index order, equal element for
// element to Free() over BoxesOf — and only dereference the single box
// they choose, so the per-candidate cost is a handful of cache lines
// regardless of cluster size.
func (r *RISA) chooseBoxes(rack *topology.Rack, req units.Vector) (sched.BoxTriple, bool) {
	var boxes sched.BoxTriple
	cur := r.scratch.Cursors(rack.Index())
	for _, res := range units.Resources() {
		if req[res] == 0 {
			continue
		}
		free := rack.FreeVecOf(res)
		chosen := -1
		switch r.opts.Packing {
		case BestFit:
			for i, f := range free {
				if f < req[res] {
					continue
				}
				if chosen < 0 || f < free[chosen] {
					chosen = i
				}
			}
		case WorstFit:
			for i, f := range free {
				if f < req[res] {
					continue
				}
				if chosen < 0 || f > free[chosen] {
					chosen = i
				}
			}
		case FirstFit:
			for i, f := range free {
				if f >= req[res] {
					chosen = i
					break
				}
			}
		default: // NextFit — the paper's RISA
			start := cur[res]
			for k := 0; k < len(free); k++ {
				if i := (start + k) % len(free); free[i] >= req[res] {
					chosen = i
					break
				}
			}
		}
		if chosen < 0 {
			return boxes, false
		}
		boxes[res] = rack.BoxesOf(res)[chosen]
	}
	return boxes, true
}

// scheduleSuperRack checks the SUPER_RACK (per resource, the racks whose
// best box could hold that component) is non-empty and delegates to NULB,
// accepting an inter-rack placement. The SUPER_RACK is never
// materialized: NULB's own scans enumerate candidate racks through
// NextRackWith with exactly the per-resource needs the masks were built
// from, so a rack outside the SUPER_RACK can never surface in them — the
// explicit masks the pre-SoA code built (O(racks) tree queries plus an
// O(racks) mask clear per fallback decision) were bit-for-bit redundant.
// The one observable the masks still carried is the per-resource
// emptiness error, reproduced here by one O(log racks) candidate probe
// per resource.
func (r *RISA) scheduleSuperRack(vm workload.VM) (*sched.Assignment, error) {
	cl := r.st.Cluster
	for _, res := range units.Resources() {
		if vm.Req[res] == 0 {
			continue
		}
		if cl.NextRackWith(res, vm.Req[res], 0) < 0 {
			return nil, fmt.Errorf("core: VM %d: SUPER_RACK empty for %v (need %d %s)",
				vm.ID, res, vm.Req[res], res.Native())
		}
	}
	return r.fallback.ScheduleMasked(vm, baseline.Masks{})
}

// Cursor exposes the round-robin position for tests and ablations.
func (r *RISA) Cursor() int { return r.cursor }

// SchedulerState implements sched.StatefulScheduler: RISA's carried
// decision state is the round-robin rack cursor plus the per-rack
// next-fit box cursors. Diagnostic counters are excluded (they never
// influence a placement).
func (r *RISA) SchedulerState() sched.SchedulerState {
	return sched.SchedulerState{Cursor: r.cursor, BoxCursors: r.scratch.CursorState()}
}

// RestoreSchedulerState implements sched.StatefulScheduler.
func (r *RISA) RestoreSchedulerState(st sched.SchedulerState) {
	r.cursor = st.Cursor
	r.scratch.RestoreCursorState(st.BoxCursors)
}
