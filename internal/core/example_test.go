package core_test

import (
	"fmt"

	"risa/internal/core"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

func ExampleNew() {
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		panic(err)
	}
	risa := core.New(st)

	vm := workload.VM{ID: 0, Lifetime: 1000, Req: units.Vec(8, 16, 128)}
	a, err := risa.Schedule(vm)
	if err != nil {
		panic(err)
	}
	fmt.Println("inter-rack:", a.InterRack())
	fmt.Println("CPU-RAM RTT:", a.CPURAMLatency())
	risa.Release(a)
	// Output:
	// inter-rack: false
	// CPU-RAM RTT: 110ns
}

func ExampleNewWithOptions() {
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		panic(err)
	}
	// An ablated RISA: worst-fit packing, no round-robin.
	variant := core.NewWithOptions(st, core.Options{
		Packing:           core.WorstFit,
		DisableRoundRobin: true,
		Name:              "RISA-WF",
	})
	fmt.Println(variant.Name())
	// Output:
	// RISA-WF
}

func ExampleRebalance() {
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		panic(err)
	}
	risa := core.New(st)
	a, err := risa.Schedule(workload.VM{ID: 0, Lifetime: 1, Req: units.Vec(8, 16, 128)})
	if err != nil {
		panic(err)
	}
	// Already intra-rack: nothing to migrate.
	fmt.Println(core.Rebalance(risa, []*sched.Assignment{a}))
	// Output:
	// 0
}
