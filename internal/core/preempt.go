package core

import (
	"risa/internal/sched"
	"risa/internal/workload"
)

// Preempt admits a high-priority arrival that failed both placement tiers
// by displacing a minimal set of strictly-lower-priority victims. The
// caller gathers candidate victims into ps (Add, with an opaque ref per
// victim); Preempt filters them down to what the arrival's tier may evict
// (see PreemptScratch.FilterEligible — equal-or-higher tiers and victims
// on failed hardware are never touched), sorts cheapest-first by freed
// capacity with VM id breaking ties, and releases one victim at a time —
// retrying the bound scheduler after each — until the arrival places.
//
// The greedy cheapest-first prefix is "minimal" in the cost order: no
// victim is evicted once the arrival fits, and each eviction was
// necessary at the time it was made (the scheduler had just failed
// without it). Like Displace, the transaction is built on
// ReleaseVMKeep/Adopt: each victim's record stays with its owner, its
// exact holdings held in the scratch, so a failed attempt restores every
// victim bit-for-bit and returns (nil, 0) with the state untouched.
//
// On success it returns the arrival's assignment and the number k of
// victims consumed: victims 0..k-1 (ps.Victim/ps.Ref in post-sort order)
// have been released, their cleared records still owned by the caller,
// and the caller decides their fate — the simulator re-queues them into
// the retry queue, where the tier-ordered discipline drains them once
// capacity returns.
func Preempt(st *sched.State, sch sched.Scheduler, ps *sched.PreemptScratch, vm workload.VM) (*sched.Assignment, int) {
	ps.FilterEligible(vm.Tier)
	ps.SortByCost()
	n := ps.Len()
	for k := 0; k < n; k++ {
		ps.HoldAndRelease(st, k)
		if a, err := sch.Schedule(vm); err == nil {
			return a, k + 1
		}
	}
	for k := n - 1; k >= 0; k-- {
		ps.Restore(st, k)
	}
	return nil, 0
}
