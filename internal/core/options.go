package core

import "fmt"

// BoxPolicy selects how RISA picks a box inside the chosen rack.
type BoxPolicy int

// The intra-rack packing policies. NextFit is RISA's (Algorithm 1 as
// traced by Table 4); BestFit is RISA-BF's (Algorithm 3); FirstFit and
// WorstFit exist for the packing ablation.
const (
	NextFit BoxPolicy = iota
	BestFit
	FirstFit
	WorstFit
)

// String names the policy.
func (p BoxPolicy) String() string {
	switch p {
	case NextFit:
		return "next-fit"
	case BestFit:
		return "best-fit"
	case FirstFit:
		return "first-fit"
	case WorstFit:
		return "worst-fit"
	default:
		return fmt.Sprintf("BoxPolicy(%d)", int(p))
	}
}

// Options tune RISA away from the paper's exact algorithm for ablation
// studies. The zero value is the paper's RISA.
type Options struct {
	// Packing selects the intra-rack box policy (default NextFit = RISA).
	Packing BoxPolicy
	// DisableRoundRobin pins the rack cursor at zero, so the first rack
	// in the pool is always preferred — the load-balancing ablation.
	DisableRoundRobin bool
	// Name overrides the scheduler's reported name (useful when several
	// ablated variants run in one experiment).
	Name string
}
