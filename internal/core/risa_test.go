package core

import (
	"testing"

	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

func defaultState(t testing.TB) *sched.State {
	t.Helper()
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func typicalVM(id int) workload.VM {
	return workload.VM{ID: id, Lifetime: 100, Req: units.Vec(8, 16, 128)}
}

func TestNames(t *testing.T) {
	st := defaultState(t)
	if New(st).Name() != "RISA" {
		t.Error("RISA name")
	}
	if NewBF(st).Name() != "RISA-BF" {
		t.Error("RISA-BF name")
	}
}

func TestRISAKeepsVMsIntraRack(t *testing.T) {
	st := defaultState(t)
	risa := New(st)
	for i := 0; i < 100; i++ {
		a, err := risa.Schedule(typicalVM(i))
		if err != nil {
			t.Fatalf("VM %d: %v", i, err)
		}
		if a.InterRack() {
			t.Fatalf("VM %d went inter-rack on a near-empty cluster", i)
		}
	}
	if st.Fabric.InterRackFree() != st.Fabric.InterRackCapacity() {
		t.Error("no inter-rack bandwidth should be consumed")
	}
}

func TestRISARoundRobinBalancesRacks(t *testing.T) {
	st := defaultState(t)
	risa := New(st)
	n := st.Cluster.NumRacks()
	used := make([]int, n)
	// Schedule exactly one lap of the pool: VMs must land on racks
	// 0, 1, 2, ... in order.
	for i := 0; i < n; i++ {
		a, err := risa.Schedule(typicalVM(i))
		if err != nil {
			t.Fatal(err)
		}
		rack := a.CPU.Box.Rack()
		used[rack]++
		if rack != i {
			t.Errorf("VM %d landed on rack %d, want %d (round-robin)", i, rack, i)
		}
	}
	for r, c := range used {
		if c != 1 {
			t.Errorf("rack %d used %d times in one lap", r, c)
		}
	}
	// Second lap wraps.
	a, err := risa.Schedule(typicalVM(n))
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU.Box.Rack() != 0 {
		t.Errorf("lap 2 should wrap to rack 0, got %d", a.CPU.Box.Rack())
	}
}

func TestRISACursorAdvances(t *testing.T) {
	st := defaultState(t)
	risa := New(st)
	if risa.Cursor() != 0 {
		t.Fatal("fresh cursor should be 0")
	}
	if _, err := risa.Schedule(typicalVM(0)); err != nil {
		t.Fatal(err)
	}
	if risa.Cursor() != 1 {
		t.Errorf("cursor = %d after first VM, want 1", risa.Cursor())
	}
}

func TestRISASkipsRacksWithoutCapacity(t *testing.T) {
	st := defaultState(t)
	risa := New(st)
	// Exhaust rack 0's RAM entirely: it leaves the pool.
	for _, b := range st.Cluster.Rack(0).BoxesOf(units.RAM) {
		if _, err := st.Cluster.Allocate(b, b.Free()); err != nil {
			t.Fatal(err)
		}
	}
	a, err := risa.Schedule(typicalVM(0))
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU.Box.Rack() == 0 {
		t.Error("rack 0 cannot host the VM; pool must skip it")
	}
	if a.InterRack() {
		t.Error("other racks can host the VM intra-rack")
	}
}

func TestRISASuperRackFallback(t *testing.T) {
	// Build a state where no single rack fits the VM but the cluster
	// does: rack 0 has RAM only, rack 1 has CPU+STO only.
	st := toyState(t)
	// Exhaust rack 1's RAM (32 and 16 free).
	if _, err := st.Cluster.Preoccupy(1, 0, units.RAM, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Cluster.Preoccupy(1, 1, units.RAM, 16); err != nil {
		t.Fatal(err)
	}
	risa := New(st)
	vm := workload.VM{ID: 0, Lifetime: 100, Req: units.Vec(8, 16, 128)}
	a, err := risa.Schedule(vm)
	if err != nil {
		t.Fatalf("SUPER_RACK fallback should place the VM: %v", err)
	}
	if !a.InterRack() {
		t.Error("fallback placement must be inter-rack here")
	}
	if a.RAM.Box.Rack() != 0 {
		t.Errorf("RAM must come from rack 0, got %d", a.RAM.Box.Rack())
	}
	if a.CPU.Box.Rack() != 1 || a.STO.Box.Rack() != 1 {
		t.Error("CPU and storage must come from rack 1")
	}
}

func TestRISADropsWhenImpossible(t *testing.T) {
	st := defaultState(t)
	risa := New(st)
	// 513 cores exceed any single box.
	vm := workload.VM{ID: 0, Lifetime: 1, Req: units.Vec(513, 16, 128)}
	if _, err := risa.Schedule(vm); err == nil {
		t.Error("oversized VM must drop")
	}
	// Invalid requests are rejected outright.
	if _, err := risa.Schedule(workload.VM{ID: 1, Lifetime: 1}); err == nil {
		t.Error("zero request must be rejected")
	}
	if _, err := risa.Schedule(workload.VM{ID: 2, Lifetime: 1, Req: units.Vec(-1, 1, 1)}); err == nil {
		t.Error("negative request must be rejected")
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRISAReleaseRestoresState(t *testing.T) {
	st := defaultState(t)
	risa := New(st)
	cpuFree := st.Cluster.TotalFree(units.CPU)
	intraFree := st.Fabric.IntraRackFree()
	a, err := risa.Schedule(typicalVM(0))
	if err != nil {
		t.Fatal(err)
	}
	risa.Release(a)
	if st.Cluster.TotalFree(units.CPU) != cpuFree {
		t.Error("compute not restored")
	}
	if st.Fabric.IntraRackFree() != intraFree {
		t.Error("bandwidth not restored")
	}
}

func TestRISANetworkGateFallsBackToSuperRack(t *testing.T) {
	st := defaultState(t)
	risa := New(st)
	// Saturate every rack's intra-rack links except rack 2's, using raw
	// flows that bypass the scheduler.
	for _, rack := range st.Cluster.Racks() {
		if rack.Index() == 2 {
			continue
		}
		cpu := rack.BoxesOf(units.CPU)[0]
		ram := rack.BoxesOf(units.RAM)[0]
		sto := rack.BoxesOf(units.Storage)[0]
		targets := []*topology.Box{ram, sto, rack.BoxesOf(units.CPU)[1],
			rack.BoxesOf(units.RAM)[1], rack.BoxesOf(units.Storage)[1]}
		for {
			done := true
			for _, dst := range targets {
				if _, err := st.Fabric.AllocateFlow(cpu, dst, 200, network.FirstFit); err == nil {
					done = false
				}
			}
			if done {
				break
			}
		}
	}
	// Not all uplinks can be saturated pairwise, but rack 2 must win the
	// AVAIL_INTRA_RACK_NET comparison over fully drained racks.
	a, err := risa.Schedule(typicalVM(0))
	if err != nil {
		t.Fatalf("rack 2 is available: %v", err)
	}
	if a.InterRack() {
		t.Error("placement should be intra-rack in rack 2")
	}
}

func TestRISABFPacksTighter(t *testing.T) {
	// Two VMs of different size: best-fit should co-locate the second
	// into the fuller box, first-fit-style RISA into its cursor box.
	st := defaultState(t)
	risabf := NewBF(st)
	// Pre-fill rack 0's second CPU box so it is the "fuller" one.
	b1 := st.Cluster.Rack(0).BoxesOf(units.CPU)[1]
	if _, err := st.Cluster.Allocate(b1, 500); err != nil {
		t.Fatal(err)
	}
	a, err := risabf.Schedule(typicalVM(0))
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU.Box.KindIndex() != 1 {
		t.Errorf("best-fit should choose the fuller box 1, got %d", a.CPU.Box.KindIndex())
	}
	// First-fit/next-fit RISA would pick box 0.
	st2 := defaultState(t)
	risa := New(st2)
	b1b := st2.Cluster.Rack(0).BoxesOf(units.CPU)[1]
	if _, err := st2.Cluster.Allocate(b1b, 500); err != nil {
		t.Fatal(err)
	}
	a2, err := risa.Schedule(typicalVM(0))
	if err != nil {
		t.Fatal(err)
	}
	if a2.CPU.Box.KindIndex() != 0 {
		t.Errorf("next-fit should start at box 0, got %d", a2.CPU.Box.KindIndex())
	}
}

func TestRISAZeroStorageVM(t *testing.T) {
	st := defaultState(t)
	risa := New(st)
	vm := workload.VM{ID: 0, Lifetime: 1, Req: units.Vec(8, 16, 0)}
	a, err := risa.Schedule(vm)
	if err != nil {
		t.Fatal(err)
	}
	if !a.STO.IsZero() || a.RAMSTOFlow != nil {
		t.Error("no storage placement expected")
	}
	if a.InterRack() {
		t.Error("should stay intra-rack")
	}
}

func TestRISAFullClusterChurn(t *testing.T) {
	// Schedule until first drop, release half, schedule again; state must
	// stay consistent throughout.
	st := defaultState(t)
	risa := New(st)
	var live []*sched.Assignment
	i := 0
	for {
		a, err := risa.Schedule(typicalVM(i))
		if err != nil {
			break
		}
		live = append(live, a)
		i++
		if i > 100000 {
			t.Fatal("runaway loop")
		}
	}
	if len(live) == 0 {
		t.Fatal("nothing scheduled")
	}
	for j := 0; j < len(live); j += 2 {
		risa.Release(live[j])
	}
	// Schedule more after the churn.
	again := 0
	for {
		a, err := risa.Schedule(typicalVM(i))
		if err != nil {
			break
		}
		_ = a
		again++
		i++
		if again > len(live) {
			break
		}
	}
	if again == 0 {
		t.Error("released capacity should be schedulable again")
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// The cluster-level capacity cap: with 8 uplinks per box the storage
// plane is the binding constraint for typical VMs (64 VMs per storage
// box, 2304 cluster-wide).
func TestRISAStorageBoundCapacity(t *testing.T) {
	st := defaultState(t)
	risa := New(st)
	n := 0
	for {
		if _, err := risa.Schedule(typicalVM(n)); err != nil {
			break
		}
		n++
		if n > 5000 {
			t.Fatal("runaway loop")
		}
	}
	// 18 racks x 2 storage boxes x 64 VMs (8192/128) = 2304 placements,
	// unless network or RAM binds first. RAM: 16 GB x N ≤ 18432 → 1152.
	// So RAM binds at 1152.
	if n != 1152 {
		t.Errorf("scheduled %d typical VMs, want 1152 (RAM-bound)", n)
	}
}
