package core

import (
	"testing"

	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// toyConfig reproduces the paper's Table 3 architecture: 2 racks, 2 boxes
// per resource per rack, boxes of 64 cores / 64 GB RAM / 512 GB storage.
func toyConfig() topology.Config {
	return topology.Config{
		Racks: 2, CPUBoxes: 2, RAMBoxes: 2, STOBoxes: 2,
		BricksPerBox: 4, UnitsPerBrick: 4,
		Units: units.Config{CPUUnitCores: 4, RAMUnitGB: 4, STOUnitGB: 32},
	}
}

// toyState reproduces the exact Table 3 availability (see the table in the
// baseline package's test for the layout).
func toyState(t testing.TB) *sched.State {
	t.Helper()
	st, err := sched.NewState(toyConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	occupy := func(rack, box int, kind units.Resource, amt units.Amount) {
		t.Helper()
		if _, err := st.Cluster.Preoccupy(rack, box, kind, amt); err != nil {
			t.Fatal(err)
		}
	}
	occupy(0, 0, units.CPU, 64)
	occupy(0, 1, units.CPU, 64)
	occupy(1, 1, units.CPU, 32)
	occupy(0, 0, units.RAM, 64)
	occupy(0, 1, units.RAM, 48)
	occupy(1, 0, units.RAM, 32)
	occupy(1, 1, units.RAM, 48)
	occupy(0, 0, units.Storage, 512)
	occupy(0, 1, units.Storage, 512)
	occupy(1, 0, units.Storage, 256)
	return st
}

// Toy example 1 (§4.3.1): RISA must place the typical VM (8 cores / 16 GB /
// 128 GB) entirely in rack 1 — box ids (2, 2, 2) — where NULB would have
// split it across racks.
func TestToyExample1RISA(t *testing.T) {
	st := toyState(t)
	risa := New(st)
	vm := workload.VM{ID: 0, Lifetime: 100, Req: units.Vec(8, 16, 128)}
	a, err := risa.Schedule(vm)
	if err != nil {
		t.Fatalf("RISA should schedule the toy VM: %v", err)
	}
	if a.InterRack() {
		t.Fatal("RISA must keep the toy VM intra-rack")
	}
	for _, p := range []struct {
		name string
		pl   topology.Placement
	}{{"CPU", a.CPU}, {"RAM", a.RAM}, {"STO", a.STO}} {
		if p.pl.Box.Rack() != 1 || p.pl.Box.KindIndex() != 0 {
			t.Errorf("%s at r%d/k%d, want r1/k0 (paper id 2)",
				p.name, p.pl.Box.Rack(), p.pl.Box.KindIndex())
		}
	}
	if a.CPURAMLatency() != sched.IntraRackCPURAMLatency {
		t.Error("intra-rack assignment must have 110ns CPU-RAM latency")
	}
}

// cpuOnlyVM builds the CPU-only requests of toy example 2.
func cpuOnlyVM(id int, cores units.Amount) workload.VM {
	return workload.VM{ID: id, Lifetime: 100, Req: units.Vec(cores, 0, 0)}
}

// Toy example 2 (§4.3.2, Table 4): the CPU-only VM sequence
// 15, 10, 30, 12, 5, 8, 16, 4 against rack 1's boxes (64 and 32 free).
//
// RISA (next-fit) must produce boxes 0,0,0,1,1,1,drop,1 — exactly the
// paper's RISA column.
func TestToyExample2RISA(t *testing.T) {
	st := toyState(t)
	risa := New(st)
	reqs := []units.Amount{15, 10, 30, 12, 5, 8, 16, 4}
	wantBox := []int{0, 0, 0, 1, 1, 1, -1, 1} // -1 = dropped
	for i, cores := range reqs {
		a, err := risa.Schedule(cpuOnlyVM(i, cores))
		if wantBox[i] == -1 {
			if err == nil {
				t.Fatalf("VM %d (%d cores) should be dropped", i, cores)
			}
			continue
		}
		if err != nil {
			t.Fatalf("VM %d (%d cores): %v", i, cores, err)
		}
		if a.CPU.Box.Rack() != 1 {
			t.Fatalf("VM %d landed in rack %d, want 1", i, a.CPU.Box.Rack())
		}
		if got := a.CPU.Box.KindIndex(); got != wantBox[i] {
			t.Errorf("VM %d (%d cores) → box %d, want %d (Table 4 RISA column)",
				i, cores, got, wantBox[i])
		}
	}
}

// RISA-BF (best-fit) on the same sequence must produce the paper's RISA-BF
// column 1,1,0,0,1,0,?,0 — except VM 6, which the paper claims fits but
// arithmetically cannot (requests sum to 100 cores against 96 available;
// see DESIGN.md §4). Best-fit drops VM 6 and schedules everything else as
// the paper shows.
func TestToyExample2RISABF(t *testing.T) {
	st := toyState(t)
	risabf := NewBF(st)
	reqs := []units.Amount{15, 10, 30, 12, 5, 8, 16, 4}
	wantBox := []int{1, 1, 0, 0, 1, 0, -1, 0}
	for i, cores := range reqs {
		a, err := risabf.Schedule(cpuOnlyVM(i, cores))
		if wantBox[i] == -1 {
			if err == nil {
				t.Fatalf("VM %d (%d cores) cannot fit (paper arithmetic error); must drop", i, cores)
			}
			continue
		}
		if err != nil {
			t.Fatalf("VM %d (%d cores): %v", i, cores, err)
		}
		if got := a.CPU.Box.KindIndex(); got != wantBox[i] {
			t.Errorf("VM %d (%d cores) → box %d, want %d (Table 4 RISA-BF column)",
				i, cores, got, wantBox[i])
		}
	}
}

// RISA-BF strands fewer cores than RISA on the toy sequence — the point of
// §4.3.2 even with the paper's arithmetic slip.
func TestToyExample2PackingComparison(t *testing.T) {
	reqs := []units.Amount{15, 10, 30, 12, 5, 8, 16, 4}
	run := func(s sched.Scheduler) (scheduled int, cores units.Amount) {
		for i, c := range reqs {
			if _, err := s.Schedule(cpuOnlyVM(i, c)); err == nil {
				scheduled++
				cores += c
			}
		}
		return
	}
	stA := toyState(t)
	nA, coresA := run(New(stA))
	stB := toyState(t)
	nB, coresB := run(NewBF(stB))
	if nA != 7 || nB != 7 {
		t.Errorf("scheduled RISA=%d RISA-BF=%d, want 7 and 7", nA, nB)
	}
	if coresA != 84 || coresB != 84 {
		t.Errorf("cores RISA=%d RISA-BF=%d, want 84 (VM 6's 16 cores dropped)", coresA, coresB)
	}
}
