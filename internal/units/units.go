// Package units defines the resource vocabulary of the disaggregated
// datacenter: the three disaggregated resource kinds (CPU, RAM, storage),
// raw resource amounts, the unit sizes from Table 1 of the RISA paper
// (a CPU unit is 4 cores, a RAM unit is 4 GB, a storage unit is 64 GB),
// and the per-unit network bandwidth requirements from Table 2
// (CPU-RAM 5 Gb/s per unit, RAM-STO 1 Gb/s per unit).
//
// All quantities are integers. Compute amounts are tracked in their native
// granularity (cores for CPU, GB for RAM and storage) because the paper's
// toy examples subtract raw core counts from box availability; unit sizes
// matter only for deriving brick/box capacities and bandwidth demands.
package units

import (
	"fmt"
	"strings"
)

// Resource identifies one of the three disaggregated resource kinds.
type Resource int

// The three resource kinds of the DDC architecture. Every box in the
// cluster holds exactly one of these.
const (
	CPU Resource = iota
	RAM
	Storage

	// NumResources is the number of resource kinds; useful for sizing
	// per-resource arrays.
	NumResources
)

// String returns the conventional short name of the resource.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "CPU"
	case RAM:
		return "RAM"
	case Storage:
		return "STO"
	default:
		return fmt.Sprintf("Resource(%d)", int(r))
	}
}

// Valid reports whether r names one of the three resource kinds.
func (r Resource) Valid() bool { return r >= CPU && r < NumResources }

// Native returns the native granularity the resource is measured in.
func (r Resource) Native() string {
	switch r {
	case CPU:
		return "cores"
	case RAM:
		return "GB"
	case Storage:
		return "GB"
	default:
		return "?"
	}
}

// ParseResource converts a case-insensitive resource name ("cpu", "ram",
// "storage"/"sto") into a Resource.
func ParseResource(s string) (Resource, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "cpu":
		return CPU, nil
	case "ram", "mem", "memory":
		return RAM, nil
	case "sto", "storage", "disk":
		return Storage, nil
	default:
		return 0, fmt.Errorf("units: unknown resource %q", s)
	}
}

// Resources lists the three resource kinds in canonical order. The returned
// slice is fresh on every call, so callers may reorder it freely.
func Resources() []Resource { return []Resource{CPU, RAM, Storage} }

// Amount is a raw quantity of one resource in its native granularity:
// cores for CPU, GB for RAM and storage.
type Amount int64

// Vector holds one Amount per resource kind, indexed by Resource. It is the
// standard way a VM request or an availability snapshot travels through the
// scheduler.
type Vector [NumResources]Amount

// Vec builds a Vector from the three raw amounts in canonical order.
func Vec(cpuCores, ramGB, stoGB Amount) Vector {
	return Vector{CPU: cpuCores, RAM: ramGB, Storage: stoGB}
}

// Add returns the element-wise sum v + w.
func (v Vector) Add(w Vector) Vector {
	for r := range v {
		v[r] += w[r]
	}
	return v
}

// Sub returns the element-wise difference v - w.
func (v Vector) Sub(w Vector) Vector {
	for r := range v {
		v[r] -= w[r]
	}
	return v
}

// FitsIn reports whether every component of v is ≤ the matching component
// of w, i.e. a request v can be satisfied from availability w.
func (v Vector) FitsIn(w Vector) bool {
	for r := range v {
		if v[r] > w[r] {
			return false
		}
	}
	return true
}

// IsZero reports whether all components are zero.
func (v Vector) IsZero() bool { return v == Vector{} }

// NonNegative reports whether no component is negative.
func (v Vector) NonNegative() bool {
	for _, a := range v {
		if a < 0 {
			return false
		}
	}
	return true
}

// String renders the vector as "cpu=8cores ram=16GB sto=128GB".
func (v Vector) String() string {
	return fmt.Sprintf("cpu=%dcores ram=%dGB sto=%dGB", v[CPU], v[RAM], v[Storage])
}

// Config fixes the size of one allocation unit per resource. The defaults
// follow Table 1 of the paper.
type Config struct {
	CPUUnitCores Amount // cores per CPU unit
	RAMUnitGB    Amount // GB per RAM unit
	STOUnitGB    Amount // GB per storage unit
}

// DefaultConfig returns the unit sizes from Table 1 of the paper:
// 4 cores, 4 GB RAM, 64 GB storage per unit.
func DefaultConfig() Config {
	return Config{CPUUnitCores: 4, RAMUnitGB: 4, STOUnitGB: 64}
}

// Validate checks that all unit sizes are positive.
func (c Config) Validate() error {
	if c.CPUUnitCores <= 0 || c.RAMUnitGB <= 0 || c.STOUnitGB <= 0 {
		return fmt.Errorf("units: all unit sizes must be positive, got %+v", c)
	}
	return nil
}

// UnitSize returns the native amount held by one unit of resource r.
func (c Config) UnitSize(r Resource) Amount {
	switch r {
	case CPU:
		return c.CPUUnitCores
	case RAM:
		return c.RAMUnitGB
	case Storage:
		return c.STOUnitGB
	default:
		panic(fmt.Sprintf("units: invalid resource %d", int(r)))
	}
}

// UnitsCeil returns the number of whole units needed to cover amount a of
// resource r, rounding up. Zero and negative amounts need zero units.
func (c Config) UnitsCeil(r Resource, a Amount) int64 {
	if a <= 0 {
		return 0
	}
	size := c.UnitSize(r)
	return int64((a + size - 1) / size)
}

// AmountOfUnits converts n units of resource r back into a native amount.
func (c Config) AmountOfUnits(r Resource, n int64) Amount {
	return Amount(n) * c.UnitSize(r)
}

// Bandwidth is an optical bandwidth in Gb/s. The paper's links are
// 200 Gb/s (8 spatially multiplexed 25 Gb/s channels of the Luxtera SiP
// module), and VM flow demands from Table 2 are whole Gb/s, so an integer
// representation is exact.
type Bandwidth int64

// String renders the bandwidth as e.g. "200Gb/s".
func (b Bandwidth) String() string { return fmt.Sprintf("%dGb/s", int64(b)) }

// Network bandwidth constants from the paper (Tables 1 and 2 and §3.1).
const (
	// LinkCapacity is the capacity of one optical link: eight 25 Gb/s
	// single-mode channels per Luxtera SiP module.
	LinkCapacity Bandwidth = 200

	// CPURAMPerUnit is the CPU-RAM flow demand per RAM unit (Table 2).
	CPURAMPerUnit Bandwidth = 5

	// RAMSTOPerUnit is the RAM-storage flow demand per storage unit
	// (Table 2).
	RAMSTOPerUnit Bandwidth = 1
)

// CPURAMDemand returns the CPU-RAM bandwidth a request needs:
// 5 Gb/s per RAM unit (rounded up to whole units).
func (c Config) CPURAMDemand(req Vector) Bandwidth {
	return CPURAMPerUnit * Bandwidth(c.UnitsCeil(RAM, req[RAM]))
}

// RAMSTODemand returns the RAM-storage bandwidth a request needs:
// 1 Gb/s per storage unit (rounded up to whole units).
func (c Config) RAMSTODemand(req Vector) Bandwidth {
	return RAMSTOPerUnit * Bandwidth(c.UnitsCeil(Storage, req[Storage]))
}

// TotalDemand returns the sum of both flow demands of a request; it is the
// bandwidth the RAM-side box link must carry (the RAM box terminates both
// the CPU-RAM and the RAM-STO flow).
func (c Config) TotalDemand(req Vector) Bandwidth {
	return c.CPURAMDemand(req) + c.RAMSTODemand(req)
}
