package units_test

import (
	"fmt"

	"risa/internal/units"
)

func ExampleConfig_CPURAMDemand() {
	cfg := units.DefaultConfig()
	// The paper's typical VM: 8 cores, 16 GB RAM, 128 GB storage.
	req := units.Vec(8, 16, 128)
	fmt.Println(cfg.CPURAMDemand(req)) // 4 RAM units × 5 Gb/s
	fmt.Println(cfg.RAMSTODemand(req)) // 2 storage units × 1 Gb/s
	// Output:
	// 20Gb/s
	// 2Gb/s
}

func ExampleConfig_UnitsCeil() {
	cfg := units.DefaultConfig()
	fmt.Println(cfg.UnitsCeil(units.CPU, 15))     // 15 cores → 4 units
	fmt.Println(cfg.UnitsCeil(units.Storage, 65)) // 65 GB → 2 units
	// Output:
	// 4
	// 2
}

func ExampleVector_FitsIn() {
	req := units.Vec(8, 16, 128)
	avail := units.Vec(64, 64, 512)
	fmt.Println(req.FitsIn(avail))
	fmt.Println(units.Vec(8, 65, 128).FitsIn(avail))
	// Output:
	// true
	// false
}
