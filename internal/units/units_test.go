package units

import (
	"testing"
	"testing/quick"
)

func TestResourceString(t *testing.T) {
	cases := map[Resource]string{
		CPU:          "CPU",
		RAM:          "RAM",
		Storage:      "STO",
		Resource(42): "Resource(42)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Resource(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestResourceValid(t *testing.T) {
	for _, r := range Resources() {
		if !r.Valid() {
			t.Errorf("%v should be valid", r)
		}
	}
	for _, r := range []Resource{-1, NumResources, 99} {
		if r.Valid() {
			t.Errorf("Resource(%d) should be invalid", int(r))
		}
	}
}

func TestResourceNative(t *testing.T) {
	if CPU.Native() != "cores" {
		t.Errorf("CPU native = %q", CPU.Native())
	}
	if RAM.Native() != "GB" || Storage.Native() != "GB" {
		t.Errorf("RAM/STO native should be GB")
	}
	if Resource(9).Native() != "?" {
		t.Errorf("invalid resource native should be ?")
	}
}

func TestParseResource(t *testing.T) {
	good := map[string]Resource{
		"cpu": CPU, "CPU": CPU, " Cpu ": CPU,
		"ram": RAM, "mem": RAM, "memory": RAM,
		"sto": Storage, "storage": Storage, "disk": Storage,
	}
	for s, want := range good {
		got, err := ParseResource(s)
		if err != nil || got != want {
			t.Errorf("ParseResource(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseResource("gpu"); err == nil {
		t.Error("ParseResource(gpu) should fail")
	}
}

func TestResourcesOrder(t *testing.T) {
	rs := Resources()
	if len(rs) != int(NumResources) {
		t.Fatalf("Resources() has %d entries, want %d", len(rs), NumResources)
	}
	if rs[0] != CPU || rs[1] != RAM || rs[2] != Storage {
		t.Errorf("canonical order wrong: %v", rs)
	}
}

func TestVecAndArithmetic(t *testing.T) {
	v := Vec(8, 16, 128)
	if v[CPU] != 8 || v[RAM] != 16 || v[Storage] != 128 {
		t.Fatalf("Vec misassigned: %v", v)
	}
	w := Vec(1, 2, 3)
	sum := v.Add(w)
	if sum != Vec(9, 18, 131) {
		t.Errorf("Add = %v", sum)
	}
	diff := v.Sub(w)
	if diff != Vec(7, 14, 125) {
		t.Errorf("Sub = %v", diff)
	}
	// Add/Sub must not mutate the receiver (value semantics).
	if v != Vec(8, 16, 128) {
		t.Errorf("receiver mutated: %v", v)
	}
}

func TestFitsIn(t *testing.T) {
	avail := Vec(64, 64, 512)
	cases := []struct {
		req  Vector
		want bool
	}{
		{Vec(8, 16, 128), true},
		{Vec(64, 64, 512), true},
		{Vec(65, 1, 1), false},
		{Vec(1, 65, 1), false},
		{Vec(1, 1, 513), false},
		{Vec(0, 0, 0), true},
	}
	for _, c := range cases {
		if got := c.req.FitsIn(avail); got != c.want {
			t.Errorf("%v FitsIn %v = %v, want %v", c.req, avail, got, c.want)
		}
	}
}

func TestIsZeroNonNegative(t *testing.T) {
	if !(Vector{}).IsZero() {
		t.Error("zero vector should be zero")
	}
	if Vec(1, 0, 0).IsZero() {
		t.Error("non-zero vector reported zero")
	}
	if !Vec(0, 0, 0).NonNegative() || !Vec(5, 5, 5).NonNegative() {
		t.Error("non-negative vectors misreported")
	}
	if Vec(-1, 0, 0).NonNegative() {
		t.Error("negative vector reported non-negative")
	}
}

func TestVectorString(t *testing.T) {
	got := Vec(8, 16, 128).String()
	want := "cpu=8cores ram=16GB sto=128GB"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.CPUUnitCores != 4 || c.RAMUnitGB != 4 || c.STOUnitGB != 64 {
		t.Errorf("DefaultConfig = %+v, want Table 1 values", c)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{0, 4, 64},
		{4, 0, 64},
		{4, 4, 0},
		{-1, 4, 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestUnitSize(t *testing.T) {
	c := DefaultConfig()
	if c.UnitSize(CPU) != 4 || c.UnitSize(RAM) != 4 || c.UnitSize(Storage) != 64 {
		t.Error("UnitSize mismatch with Table 1")
	}
}

func TestUnitSizePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UnitSize on invalid resource should panic")
		}
	}()
	DefaultConfig().UnitSize(Resource(7))
}

func TestUnitsCeil(t *testing.T) {
	c := DefaultConfig()
	cases := []struct {
		r    Resource
		a    Amount
		want int64
	}{
		{CPU, 0, 0},
		{CPU, -5, 0},
		{CPU, 1, 1},
		{CPU, 4, 1},
		{CPU, 5, 2},
		{CPU, 32, 8},
		{RAM, 16, 4},
		{RAM, 17, 5},
		{Storage, 128, 2},
		{Storage, 64, 1},
		{Storage, 65, 2},
	}
	for _, tc := range cases {
		if got := c.UnitsCeil(tc.r, tc.a); got != tc.want {
			t.Errorf("UnitsCeil(%v, %d) = %d, want %d", tc.r, tc.a, got, tc.want)
		}
	}
}

func TestAmountOfUnits(t *testing.T) {
	c := DefaultConfig()
	if c.AmountOfUnits(CPU, 16) != 64 {
		t.Error("16 CPU units should be 64 cores")
	}
	if c.AmountOfUnits(Storage, 8) != 512 {
		t.Error("8 STO units should be 512 GB")
	}
}

// Property: UnitsCeil is the smallest unit count whose amount covers a.
func TestUnitsCeilProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(raw int32, which uint8) bool {
		r := Resource(int(which) % int(NumResources))
		a := Amount(raw)
		n := c.UnitsCeil(r, a)
		if a <= 0 {
			return n == 0
		}
		covers := c.AmountOfUnits(r, n) >= a
		minimal := n == 0 || c.AmountOfUnits(r, n-1) < a
		return covers && minimal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add and Sub are inverse operations.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 int32) bool {
		v := Vec(Amount(a1), Amount(a2), Amount(a3))
		w := Vec(Amount(b1), Amount(b2), Amount(b3))
		return v.Add(w).Sub(w) == v && v.Sub(w).Add(w) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthString(t *testing.T) {
	if LinkCapacity.String() != "200Gb/s" {
		t.Errorf("LinkCapacity.String() = %q", LinkCapacity.String())
	}
}

func TestBandwidthDemands(t *testing.T) {
	c := DefaultConfig()
	// The paper's typical VM: 8 cores, 16 GB RAM, 128 GB storage.
	req := Vec(8, 16, 128)
	if got := c.CPURAMDemand(req); got != 20 {
		t.Errorf("CPURAMDemand = %v, want 20Gb/s (4 RAM units x 5)", got)
	}
	if got := c.RAMSTODemand(req); got != 2 {
		t.Errorf("RAMSTODemand = %v, want 2Gb/s (2 STO units x 1)", got)
	}
	if got := c.TotalDemand(req); got != 22 {
		t.Errorf("TotalDemand = %v, want 22Gb/s", got)
	}
}

func TestBandwidthDemandRoundsUp(t *testing.T) {
	c := DefaultConfig()
	// 1 GB RAM is still one full RAM unit of bandwidth.
	if got := c.CPURAMDemand(Vec(1, 1, 0)); got != 5 {
		t.Errorf("CPURAMDemand(1GB) = %v, want 5Gb/s", got)
	}
	// 65 GB storage is two storage units.
	if got := c.RAMSTODemand(Vec(0, 0, 65)); got != 2 {
		t.Errorf("RAMSTODemand(65GB) = %v, want 2Gb/s", got)
	}
}

// Property: demands are monotone in the request.
func TestDemandMonotoneProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(ram1, ram2, sto1, sto2 uint16) bool {
		a := Vec(0, Amount(ram1), Amount(sto1))
		b := Vec(0, Amount(ram1)+Amount(ram2), Amount(sto1)+Amount(sto2))
		return c.CPURAMDemand(a) <= c.CPURAMDemand(b) &&
			c.RAMSTODemand(a) <= c.RAMSTODemand(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
