package network

import (
	"risa/internal/topology"
	"risa/internal/units"
)

// RackGen returns the rack's network generation: a counter bumped by
// every mutation of the rack's box-uplink state — a flow reserving or
// releasing bandwidth on one of its box uplinks, or such a link failing
// or being restored. Optimistic schedulers record it when proposing a
// single-rack placement and compare it at commit time — an unchanged
// generation proves the rack's intra-rack network state is exactly as
// the proposal saw it (DESIGN.md §12). Rack- and pod-uplink mutations
// do not bump it: single-rack proposals never touch the spine.
func (f *Fabric) RackGen(rack int) uint64 { return f.rackGen[rack] }

// FlowFeasible reports whether AllocateFlow(src, dst, bw, policy) would
// currently find a link at every hop. It reserves nothing: each hop is
// checked independently, so two flows sharing an uplink group may each
// look feasible while only one can be admitted — CommitProposal settles
// that by performing the real allocation. It is a pure read, safe for
// concurrent proposers between fabric mutations.
func (f *Fabric) FlowFeasible(src, dst *topology.Box, bw units.Bandwidth, policy Policy) bool {
	if bw <= 0 {
		return bw == 0
	}
	if pick(f.boxUplinks[src.Rack()][src.Index()], bw, policy) == nil {
		return false
	}
	if src.Rack() != dst.Rack() {
		if pick(f.rackUplinks[src.Rack()], bw, policy) == nil ||
			pick(f.rackUplinks[dst.Rack()], bw, policy) == nil {
			return false
		}
		if f.cfg.ThreeTier() && f.Pod(src.Rack()) != f.Pod(dst.Rack()) {
			if pick(f.podUplinks[f.Pod(src.Rack())], bw, policy) == nil ||
				pick(f.podUplinks[f.Pod(dst.Rack())], bw, policy) == nil {
				return false
			}
		}
	}
	return pick(f.boxUplinks[dst.Rack()][dst.Index()], bw, policy) != nil
}
