// Package network models the two-tier optical circuit-switched fabric of
// the RISA paper's disaggregated datacenter.
//
// Topology of one flow path (Figure 2 of the paper):
//
//	src brick ── brick link ── box switch ── box uplink ── rack switch
//	                                                            │
//	                 (same rack: straight down)          rack uplink
//	                                                            │
//	                                                   inter-rack switch
//	                                                            │
//	                                              peer rack uplink ...
//
// Every optical link carries 200 Gb/s (eight 25 Gb/s SiP channels).
// Brick↔box-switch links are dedicated to their brick and therefore never
// contended; the fabric tracks bandwidth on the shared links only: box
// uplinks (box switch → rack switch) and rack uplinks (rack switch →
// inter-rack switch). Those two layers are exactly what the paper reports
// as intra-rack and inter-rack network utilization (Figure 8).
package network

import (
	"errors"
	"fmt"

	"risa/internal/topology"
	"risa/internal/units"
)

// Per-tier admission errors. AllocateFlow fails on the scheduling hot path
// whenever a probe hits bandwidth fragmentation, so the errors are
// preallocated sentinels (match with errors.Is) instead of per-failure
// fmt.Errorf values — an allocation per failed probe would defeat the
// allocation-free decision path.
var (
	// ErrNoBoxUplink reports that no box uplink on the path had enough
	// free bandwidth.
	ErrNoBoxUplink = errors.New("network: no box-uplink with enough free bandwidth")
	// ErrNoRackUplink reports that no rack uplink on the path had enough
	// free bandwidth.
	ErrNoRackUplink = errors.New("network: no rack-uplink with enough free bandwidth")
	// ErrNoPodUplink reports that no pod uplink on the path had enough
	// free bandwidth (three-tier fabric only).
	ErrNoPodUplink = errors.New("network: no pod-uplink with enough free bandwidth")
)

// tierError returns the sentinel admission error for a tier.
func tierError(t Tier) error {
	switch t {
	case BoxUplink:
		return ErrNoBoxUplink
	case RackUplink:
		return ErrNoRackUplink
	default:
		return ErrNoPodUplink
	}
}

// Tier identifies the layer an optical link belongs to.
type Tier int

const (
	// BoxUplink links connect a box switch to its rack switch; their
	// aggregate is the intra-rack network capacity.
	BoxUplink Tier = iota
	// RackUplink links connect a rack switch to the next tier up — the
	// inter-rack switch in the paper's two-tier fabric, or the pod switch
	// in the three-tier extension; their aggregate is the inter-rack
	// network capacity.
	RackUplink
	// PodUplink links connect a pod switch to the core switch; they only
	// exist in the three-tier extension (Config.RacksPerPod > 0).
	PodUplink
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case BoxUplink:
		return "box-uplink"
	case RackUplink:
		return "rack-uplink"
	case PodUplink:
		return "pod-uplink"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Link is one shared optical link with bandwidth accounting.
type Link struct {
	tier   Tier
	rack   int // rack the link belongs to
	box    int // box index within rack (BoxUplink only, else -1)
	index  int // uplink index within its group
	cap    units.Bandwidth
	free   units.Bandwidth
	failed bool // failed links carry no new flows
}

// Tier returns the link's layer.
func (l *Link) Tier() Tier { return l.tier }

// Rack returns the rack the link belongs to.
func (l *Link) Rack() int { return l.rack }

// Box returns the in-rack box index for box uplinks, -1 for rack uplinks.
func (l *Link) Box() int { return l.box }

// Index returns the link's position within its uplink group.
func (l *Link) Index() int { return l.index }

// Capacity returns the link's total bandwidth.
func (l *Link) Capacity() units.Bandwidth { return l.cap }

// Free returns the bandwidth available to new flows: the unallocated
// bandwidth, or zero while the link is failed.
func (l *Link) Free() units.Bandwidth {
	if l.failed {
		return 0
	}
	return l.free
}

// Failed reports whether the link is marked failed (see Fabric.SetLinkFailed).
func (l *Link) Failed() bool { return l.failed }

// String identifies the link for logs and errors.
func (l *Link) String() string {
	if l.tier == BoxUplink {
		return fmt.Sprintf("box-uplink r%d/b%d/#%d", l.rack, l.box, l.index)
	}
	return fmt.Sprintf("rack-uplink r%d/#%d", l.rack, l.index)
}

// Config sizes the fabric. Defaults follow DESIGN.md §3: one brick link
// per brick (dedicated, untracked), 16 uplinks per box and 16 uplinks per
// rack, all at 200 Gb/s, which respects the paper's switch port counts
// (box 64 ports: 8 bricks + 16 uplinks; rack 256 ports: 96 down + 16 up;
// inter-rack 512 ports: 18 racks × 16 = 288).
type Config struct {
	BoxUplinks   int             // uplinks from each box switch to its rack switch
	RackUplinks  int             // uplinks from each rack switch to the tier above
	LinkCapacity units.Bandwidth // capacity of every link

	// RacksPerPod, when positive, switches the fabric to the three-tier
	// structure of Shabka & Zervas (the paper's related-work contrast,
	// its ref [17]): racks group into pods of this size, each pod has a
	// pod switch, and pod switches connect to a core switch through
	// PodUplinks links each. Zero keeps the paper's two-tier fabric.
	RacksPerPod int
	// PodUplinks is the number of pod→core links per pod (three-tier
	// only; default 16 when RacksPerPod > 0 and this is 0).
	PodUplinks int
}

// DefaultConfig returns the link provisioning described in DESIGN.md.
func DefaultConfig() Config {
	return Config{BoxUplinks: 16, RackUplinks: 16, LinkCapacity: units.LinkCapacity}
}

// ThreeTier reports whether the pod tier is enabled.
func (c Config) ThreeTier() bool { return c.RacksPerPod > 0 }

// Validate checks structural sanity.
func (c Config) Validate() error {
	if c.BoxUplinks <= 0 || c.RackUplinks <= 0 {
		return fmt.Errorf("network: uplink counts must be positive (box=%d rack=%d)", c.BoxUplinks, c.RackUplinks)
	}
	if c.LinkCapacity <= 0 {
		return fmt.Errorf("network: link capacity must be positive, got %v", c.LinkCapacity)
	}
	if c.RacksPerPod < 0 || c.PodUplinks < 0 {
		return fmt.Errorf("network: negative pod parameters (%d, %d)", c.RacksPerPod, c.PodUplinks)
	}
	return nil
}

// Policy selects how a link is chosen among candidates at one hop.
type Policy int

const (
	// FirstFit takes the first link with enough free bandwidth (NULB's
	// network phase, and RISA's).
	FirstFit Policy = iota
	// MaxAvail takes the link with the most free bandwidth (NALB's
	// network phase).
	MaxAvail
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case MaxAvail:
		return "max-avail"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Fabric owns every shared link of a cluster and its aggregate counters.
type Fabric struct {
	cfg         Config
	boxUplinks  [][][]*Link // [rack][boxIndex][uplink]
	rackUplinks [][]*Link   // [rack][uplink]
	podUplinks  [][]*Link   // [pod][uplink], three-tier only

	intraCap, intraFree units.Bandwidth   // aggregate over all box uplinks
	interCap, interFree units.Bandwidth   // aggregate over all rack uplinks
	podCap, podFree     units.Bandwidth   // aggregate over all pod uplinks
	rackIntraFree       []units.Bandwidth // per-rack free over its box uplinks
	rackGen             []uint64          // per-rack network generation (see RackGen)

	// freeFlows recycles released Flow records (and their link slices)
	// into later AllocateFlow calls, so steady-state flow churn does not
	// allocate. Fabrics, like schedulers, are single-goroutine.
	freeFlows []*Flow
}

// Pod returns the pod index of a rack (0 in the two-tier fabric).
func (f *Fabric) Pod(rack int) int {
	if !f.cfg.ThreeTier() {
		return 0
	}
	return rack / f.cfg.RacksPerPod
}

// NumPods returns the number of pods (1 in the two-tier fabric).
func (f *Fabric) NumPods() int {
	if !f.cfg.ThreeTier() {
		return 1
	}
	return len(f.podUplinks)
}

// NewFabric builds the fabric matching a cluster's rack/box layout.
func NewFabric(cl *topology.Cluster, cfg Config) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{cfg: cfg}
	racks := cl.Racks()
	f.boxUplinks = make([][][]*Link, len(racks))
	f.rackUplinks = make([][]*Link, len(racks))
	f.rackIntraFree = make([]units.Bandwidth, len(racks))
	f.rackGen = make([]uint64, len(racks))
	for ri, rack := range racks {
		boxes := rack.Boxes()
		f.boxUplinks[ri] = make([][]*Link, len(boxes))
		for bi := range boxes {
			group := make([]*Link, cfg.BoxUplinks)
			for ui := range group {
				group[ui] = &Link{tier: BoxUplink, rack: ri, box: bi, index: ui, cap: cfg.LinkCapacity, free: cfg.LinkCapacity}
			}
			f.boxUplinks[ri][bi] = group
			f.intraCap += cfg.LinkCapacity * units.Bandwidth(cfg.BoxUplinks)
			f.intraFree += cfg.LinkCapacity * units.Bandwidth(cfg.BoxUplinks)
			f.rackIntraFree[ri] += cfg.LinkCapacity * units.Bandwidth(cfg.BoxUplinks)
		}
		group := make([]*Link, cfg.RackUplinks)
		for ui := range group {
			group[ui] = &Link{tier: RackUplink, rack: ri, box: -1, index: ui, cap: cfg.LinkCapacity, free: cfg.LinkCapacity}
		}
		f.rackUplinks[ri] = group
		f.interCap += cfg.LinkCapacity * units.Bandwidth(cfg.RackUplinks)
		f.interFree += cfg.LinkCapacity * units.Bandwidth(cfg.RackUplinks)
	}
	if cfg.ThreeTier() {
		podUplinks := cfg.PodUplinks
		if podUplinks == 0 {
			podUplinks = 16
		}
		pods := (len(racks) + cfg.RacksPerPod - 1) / cfg.RacksPerPod
		f.podUplinks = make([][]*Link, pods)
		for pi := range f.podUplinks {
			group := make([]*Link, podUplinks)
			for ui := range group {
				group[ui] = &Link{tier: PodUplink, rack: -1, box: pi, index: ui, cap: cfg.LinkCapacity, free: cfg.LinkCapacity}
			}
			f.podUplinks[pi] = group
			f.podCap += cfg.LinkCapacity * units.Bandwidth(podUplinks)
			f.podFree += cfg.LinkCapacity * units.Bandwidth(podUplinks)
		}
	}
	return f, nil
}

// InterPodCapacity returns the aggregate pod-uplink capacity (zero in the
// two-tier fabric).
func (f *Fabric) InterPodCapacity() units.Bandwidth { return f.podCap }

// InterPodFree returns the aggregate free pod-uplink bandwidth.
func (f *Fabric) InterPodFree() units.Bandwidth { return f.podFree }

// InterPodUtilization returns the used fraction of pod-uplink bandwidth.
func (f *Fabric) InterPodUtilization() float64 {
	if f.podCap == 0 {
		return 0
	}
	return float64(f.podCap-f.podFree) / float64(f.podCap)
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// IntraRackCapacity returns the aggregate box-uplink capacity.
func (f *Fabric) IntraRackCapacity() units.Bandwidth { return f.intraCap }

// IntraRackFree returns the aggregate free box-uplink bandwidth.
func (f *Fabric) IntraRackFree() units.Bandwidth { return f.intraFree }

// InterRackCapacity returns the aggregate rack-uplink capacity.
func (f *Fabric) InterRackCapacity() units.Bandwidth { return f.interCap }

// InterRackFree returns the aggregate free rack-uplink bandwidth.
func (f *Fabric) InterRackFree() units.Bandwidth { return f.interFree }

// IntraRackUtilization returns the used fraction of intra-rack bandwidth.
func (f *Fabric) IntraRackUtilization() float64 {
	if f.intraCap == 0 {
		return 0
	}
	return float64(f.intraCap-f.intraFree) / float64(f.intraCap)
}

// InterRackUtilization returns the used fraction of inter-rack bandwidth.
func (f *Fabric) InterRackUtilization() float64 {
	if f.interCap == 0 {
		return 0
	}
	return float64(f.interCap-f.interFree) / float64(f.interCap)
}

// RackIntraFree returns the free bandwidth over the rack's box uplinks;
// RISA's AVAIL_INTRA_RACK_NET test is a comparison against this.
func (f *Fabric) RackIntraFree(rack int) units.Bandwidth { return f.rackIntraFree[rack] }

// BoxUplinkFree returns the total free bandwidth of one box's uplinks.
// NALB's modified BFS orders candidate boxes by this value, descending.
func (f *Fabric) BoxUplinkFree(box *topology.Box) units.Bandwidth {
	var total units.Bandwidth
	for _, l := range f.boxUplinks[box.Rack()][box.Index()] {
		total += l.free
	}
	return total
}

// BoxMaxUplinkFree returns the largest free bandwidth on any single uplink
// of the box — the biggest single flow the box can still admit.
func (f *Fabric) BoxMaxUplinkFree(box *topology.Box) units.Bandwidth {
	var max units.Bandwidth
	for _, l := range f.boxUplinks[box.Rack()][box.Index()] {
		if l.free > max {
			max = l.free
		}
	}
	return max
}

// pick chooses a link from group under the policy; nil if none fits.
func pick(group []*Link, bw units.Bandwidth, policy Policy) *Link {
	switch policy {
	case MaxAvail:
		var best *Link
		for _, l := range group {
			if !l.failed && l.free >= bw && (best == nil || l.free > best.free) {
				best = l
			}
		}
		return best
	default:
		for _, l := range group {
			if !l.failed && l.free >= bw {
				return l
			}
		}
		return nil
	}
}

// Flow is a reserved optical circuit between two boxes. Hop and switch
// counts feed the power model; Links holds the shared links carrying the
// reservation so it can be released. Flows are pooled by their Fabric:
// ReleaseFlow recycles the record, so a flow must not be read after its
// release.
type Flow struct {
	bw        units.Bandwidth
	links     []*Link
	interRack bool
	interPod  bool
	pooled    bool // on the fabric's free list; guards double release
}

// BW returns the flow's reserved bandwidth.
func (fl *Flow) BW() units.Bandwidth { return fl.bw }

// InterRack reports whether the flow leaves its rack.
func (fl *Flow) InterRack() bool { return fl.interRack }

// InterPod reports whether the flow crosses pods (always false on the
// two-tier fabric).
func (fl *Flow) InterPod() bool { return fl.interPod }

// Links returns the shared links carrying the flow (shared slice).
func (fl *Flow) Links() []*Link { return fl.links }

// LinkTraversals returns the number of optical link hops including the
// two dedicated brick links: 4 intra-rack, 6 inter-rack, 8 inter-pod
// (three-tier). Each traversal is one transceiver pair in the power
// model.
func (fl *Flow) LinkTraversals() int {
	switch {
	case fl.interPod:
		return 8
	case fl.interRack:
		return 6
	default:
		return 4
	}
}

// BoxSwitchCrossings returns how many box switches the flow traverses.
func (fl *Flow) BoxSwitchCrossings() int { return 2 }

// RackSwitchCrossings returns how many intra-rack switches the flow
// traverses.
func (fl *Flow) RackSwitchCrossings() int {
	if fl.interRack {
		return 2
	}
	return 1
}

// InterRackSwitchCrossings returns how many top-tier switches the flow
// traverses: on the two-tier fabric, 1 for inter-rack flows (the
// inter-rack switch); on the three-tier fabric, 1 for intra-pod
// inter-rack flows (the pod switch) and 3 for inter-pod flows (two pod
// switches plus the core). The power model treats all of them as the
// large 512-port class.
func (fl *Flow) InterRackSwitchCrossings() int {
	switch {
	case fl.interPod:
		return 3
	case fl.interRack:
		return 1
	default:
		return 0
	}
}

// AllocateFlow reserves bw between the source and destination boxes,
// choosing one uplink per hop under the given policy. On any hop failure
// the whole reservation is rolled back and an error returned. A zero
// bandwidth flow is legal and reserves nothing but still records the path
// shape (used by latency accounting for degenerate requests).
func (f *Fabric) AllocateFlow(src, dst *topology.Box, bw units.Bandwidth, policy Policy) (*Flow, error) {
	if bw < 0 {
		return nil, fmt.Errorf("network: negative bandwidth %v", bw)
	}
	fl := f.getFlow()
	fl.bw = bw
	fl.interRack = src.Rack() != dst.Rack()
	fl.interPod = f.cfg.ThreeTier() && f.Pod(src.Rack()) != f.Pod(dst.Rack())
	if bw == 0 {
		return fl, nil
	}
	// The hop sequence lives in a fixed-size array — at most six shared
	// groups (box, rack, pod, pod, rack, box) — so building it is
	// allocation-free.
	var hops [6][]*Link
	n := 0
	hops[n] = f.boxUplinks[src.Rack()][src.Index()]
	n++
	if fl.interRack {
		hops[n] = f.rackUplinks[src.Rack()]
		n++
		if fl.interPod {
			hops[n] = f.podUplinks[f.Pod(src.Rack())]
			n++
			hops[n] = f.podUplinks[f.Pod(dst.Rack())]
			n++
		}
		hops[n] = f.rackUplinks[dst.Rack()]
		n++
	}
	hops[n] = f.boxUplinks[dst.Rack()][dst.Index()]
	n++
	for _, group := range hops[:n] {
		l := pick(group, bw, policy)
		if l == nil {
			tier := group[0].tier
			f.ReleaseFlow(fl)
			return nil, tierError(tier)
		}
		f.take(l, bw)
		fl.links = append(fl.links, l)
	}
	return fl, nil
}

// getFlow pops a recycled flow record (with its link-slice capacity) off
// the free list, or allocates a fresh one while the pool warms up.
func (f *Fabric) getFlow() *Flow {
	n := len(f.freeFlows)
	if n == 0 {
		return &Flow{}
	}
	fl := f.freeFlows[n-1]
	f.freeFlows[n-1] = nil
	f.freeFlows = f.freeFlows[:n-1]
	fl.pooled = false
	return fl
}

// ReleaseFlow returns a flow's reserved bandwidth and recycles the record
// into the fabric's pool. Safe on nil and on partially built flows (used
// internally for rollback); releasing the same flow twice is a guarded
// no-op. The flow must not be used after this call.
func (f *Fabric) ReleaseFlow(fl *Flow) {
	if fl == nil || fl.pooled {
		return
	}
	for _, l := range fl.links {
		f.put(l, fl.bw)
	}
	for i := range fl.links {
		fl.links[i] = nil
	}
	fl.links = fl.links[:0]
	fl.bw = 0
	fl.interRack, fl.interPod = false, false
	fl.pooled = true
	f.freeFlows = append(f.freeFlows, fl)
}

func (f *Fabric) take(l *Link, bw units.Bandwidth) {
	if l.failed {
		panic(fmt.Sprintf("network: taking bandwidth from failed %v", l))
	}
	if l.free < bw {
		panic(fmt.Sprintf("network: taking %v from %v with only %v free", bw, l, l.free))
	}
	l.free -= bw
	switch l.tier {
	case BoxUplink:
		f.intraFree -= bw
		f.rackIntraFree[l.rack] -= bw
		f.rackGen[l.rack]++
	case RackUplink:
		f.interFree -= bw
	case PodUplink:
		f.podFree -= bw
	}
}

func (f *Fabric) put(l *Link, bw units.Bandwidth) {
	if l.free+bw > l.cap {
		panic(fmt.Sprintf("network: returning %v to %v overflows capacity", bw, l))
	}
	l.free += bw
	if l.failed {
		// The capacity rejoins the aggregates when the link is restored.
		return
	}
	switch l.tier {
	case BoxUplink:
		f.intraFree += bw
		f.rackIntraFree[l.rack] += bw
		f.rackGen[l.rack]++
	case RackUplink:
		f.interFree += bw
	case PodUplink:
		f.podFree += bw
	}
}

// SetLinkFailed marks a link failed or restores it. A failed link admits
// no new flows and its free bandwidth leaves the aggregate counters;
// flows already on the link keep their reservation and may release
// normally. Toggling is idempotent.
func (f *Fabric) SetLinkFailed(l *Link, failed bool) {
	if l.failed == failed {
		return
	}
	l.failed = failed
	delta := l.free
	if failed {
		delta = -delta
	}
	switch l.tier {
	case BoxUplink:
		f.intraFree += delta
		f.rackIntraFree[l.rack] += delta
		f.rackGen[l.rack]++
	case RackUplink:
		f.interFree += delta
	case PodUplink:
		f.podFree += delta
	}
}

// CheckInvariants verifies the aggregate counters against per-link state.
func (f *Fabric) CheckInvariants() error {
	var intraFree, interFree units.Bandwidth
	perRack := make([]units.Bandwidth, len(f.rackIntraFree))
	for ri := range f.boxUplinks {
		for _, group := range f.boxUplinks[ri] {
			for _, l := range group {
				if l.free < 0 || l.free > l.cap {
					return fmt.Errorf("%v free %v out of [0,%v]", l, l.free, l.cap)
				}
				if !l.failed {
					intraFree += l.free
					perRack[ri] += l.free
				}
			}
		}
		for _, l := range f.rackUplinks[ri] {
			if l.free < 0 || l.free > l.cap {
				return fmt.Errorf("%v free %v out of [0,%v]", l, l.free, l.cap)
			}
			if !l.failed {
				interFree += l.free
			}
		}
	}
	if intraFree != f.intraFree {
		return fmt.Errorf("intra free %v != link sum %v", f.intraFree, intraFree)
	}
	if interFree != f.interFree {
		return fmt.Errorf("inter free %v != link sum %v", f.interFree, interFree)
	}
	var podFree units.Bandwidth
	for _, group := range f.podUplinks {
		for _, l := range group {
			if l.free < 0 || l.free > l.cap {
				return fmt.Errorf("%v free %v out of [0,%v]", l, l.free, l.cap)
			}
			if !l.failed {
				podFree += l.free
			}
		}
	}
	if podFree != f.podFree {
		return fmt.Errorf("pod free %v != link sum %v", f.podFree, podFree)
	}
	for ri, v := range perRack {
		if v != f.rackIntraFree[ri] {
			return fmt.Errorf("rack %d intra free %v != link sum %v", ri, f.rackIntraFree[ri], v)
		}
	}
	return nil
}
