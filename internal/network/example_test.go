package network_test

import (
	"fmt"

	"risa/internal/network"
	"risa/internal/topology"
	"risa/internal/units"
)

func ExampleFabric_AllocateFlow() {
	cl, err := topology.New(topology.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fab, err := network.NewFabric(cl, network.DefaultConfig())
	if err != nil {
		panic(err)
	}
	// A 20 Gb/s CPU-RAM circuit across racks 0 and 5.
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	dst := cl.Rack(5).BoxesOf(units.RAM)[0]
	fl, err := fab.AllocateFlow(src, dst, 20, network.FirstFit)
	if err != nil {
		panic(err)
	}
	fmt.Println("inter-rack:", fl.InterRack())
	fmt.Println("link hops:", fl.LinkTraversals())
	fmt.Println("switches:", fl.BoxSwitchCrossings(), fl.RackSwitchCrossings(), fl.InterRackSwitchCrossings())
	fab.ReleaseFlow(fl)
	// Output:
	// inter-rack: true
	// link hops: 6
	// switches: 2 2 1
}
