package network

import (
	"testing"

	"risa/internal/topology"
	"risa/internal/units"
)

func threeTierFabric(t testing.TB) (*topology.Cluster, *Fabric) {
	t.Helper()
	cl := testCluster(t)
	cfg := DefaultConfig()
	cfg.RacksPerPod = 6 // 18 racks → 3 pods
	f, err := NewFabric(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl, f
}

func TestThreeTierLayout(t *testing.T) {
	_, f := threeTierFabric(t)
	if !f.Config().ThreeTier() {
		t.Fatal("fabric should be three-tier")
	}
	if f.NumPods() != 3 {
		t.Errorf("pods = %d, want 3", f.NumPods())
	}
	if f.Pod(0) != 0 || f.Pod(5) != 0 || f.Pod(6) != 1 || f.Pod(17) != 2 {
		t.Error("pod mapping wrong")
	}
	// 3 pods × 16 uplinks × 200 Gb/s.
	if f.InterPodCapacity() != 3*16*200 {
		t.Errorf("inter-pod capacity = %v", f.InterPodCapacity())
	}
	if f.InterPodFree() != f.InterPodCapacity() || f.InterPodUtilization() != 0 {
		t.Error("fresh pod tier should be free")
	}
}

func TestTwoTierHasNoPods(t *testing.T) {
	_, f := testFabric(t)
	if f.Config().ThreeTier() {
		t.Fatal("default fabric is two-tier")
	}
	if f.NumPods() != 1 || f.Pod(17) != 0 {
		t.Error("two-tier fabric is one logical pod")
	}
	if f.InterPodCapacity() != 0 || f.InterPodUtilization() != 0 {
		t.Error("no pod tier expected")
	}
}

func TestIntraPodInterRackFlow(t *testing.T) {
	cl, f := threeTierFabric(t)
	// Racks 0 and 3 share pod 0.
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	dst := cl.Rack(3).BoxesOf(units.RAM)[0]
	fl, err := f.AllocateFlow(src, dst, 10, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if !fl.InterRack() || fl.InterPod() {
		t.Error("flow should be inter-rack but intra-pod")
	}
	if fl.LinkTraversals() != 6 {
		t.Errorf("hops = %d, want 6", fl.LinkTraversals())
	}
	if fl.InterRackSwitchCrossings() != 1 {
		t.Errorf("top-tier crossings = %d, want 1 (the pod switch)", fl.InterRackSwitchCrossings())
	}
	if f.InterPodFree() != f.InterPodCapacity() {
		t.Error("intra-pod flow must not use pod uplinks")
	}
	f.ReleaseFlow(fl)
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInterPodFlow(t *testing.T) {
	cl, f := threeTierFabric(t)
	// Racks 0 (pod 0) and 12 (pod 2).
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	dst := cl.Rack(12).BoxesOf(units.RAM)[0]
	fl, err := f.AllocateFlow(src, dst, 10, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if !fl.InterRack() || !fl.InterPod() {
		t.Error("flow should be inter-pod")
	}
	if fl.LinkTraversals() != 8 {
		t.Errorf("hops = %d, want 8", fl.LinkTraversals())
	}
	if fl.InterRackSwitchCrossings() != 3 {
		t.Errorf("top-tier crossings = %d, want 3 (2 pod + core)", fl.InterRackSwitchCrossings())
	}
	if got := len(fl.Links()); got != 6 {
		t.Errorf("shared links = %d, want 6", got)
	}
	// 10 Gb/s on each of two pod uplinks.
	if got := f.InterPodCapacity() - f.InterPodFree(); got != 20 {
		t.Errorf("pod consumption = %v, want 20", got)
	}
	f.ReleaseFlow(fl)
	if f.InterPodFree() != f.InterPodCapacity() {
		t.Error("release did not restore pod bandwidth")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPodUplinkFailure(t *testing.T) {
	cl, f := threeTierFabric(t)
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	dst := cl.Rack(12).BoxesOf(units.RAM)[0]
	for _, l := range f.podUplinks[0] {
		f.SetLinkFailed(l, true)
	}
	if _, err := f.AllocateFlow(src, dst, 1, FirstFit); err == nil {
		t.Error("inter-pod flow without pod 0 uplinks should fail")
	}
	// Intra-pod flows are unaffected.
	if _, err := f.AllocateFlow(src, cl.Rack(3).BoxesOf(units.RAM)[0], 1, FirstFit); err != nil {
		t.Errorf("intra-pod flow should survive: %v", err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestThreeTierUnevenPods(t *testing.T) {
	cl := testCluster(t)
	cfg := DefaultConfig()
	cfg.RacksPerPod = 5 // 18 racks → pods of 5,5,5,3
	f, err := NewFabric(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumPods() != 4 {
		t.Errorf("pods = %d, want 4", f.NumPods())
	}
	if f.Pod(17) != 3 {
		t.Errorf("rack 17 pod = %d, want 3", f.Pod(17))
	}
	// Flows into the short pod work.
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	dst := cl.Rack(16).BoxesOf(units.RAM)[0]
	fl, err := f.AllocateFlow(src, dst, 5, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if !fl.InterPod() {
		t.Error("flow crosses pods")
	}
	f.ReleaseFlow(fl)
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
