package network

import (
	"testing"

	"risa/internal/units"
)

func TestSetLinkFailedExcludesFromAllocation(t *testing.T) {
	cl, f := testFabric(t)
	rack := cl.Rack(0)
	src := rack.BoxesOf(units.CPU)[0]
	dst := rack.BoxesOf(units.RAM)[0]

	// Fail src's first uplink: the next first-fit flow must use #1.
	intraFree := f.IntraRackFree()
	l0 := f.boxUplinks[0][src.Index()][0]
	f.SetLinkFailed(l0, true)
	if !l0.Failed() || l0.Free() != 0 {
		t.Fatal("failed link should hide its bandwidth")
	}
	if f.IntraRackFree() != intraFree-l0.Capacity() {
		t.Errorf("aggregate free = %v", f.IntraRackFree())
	}
	fl, err := f.AllocateFlow(src, dst, 10, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Links()[0].Index() != 1 {
		t.Errorf("first-fit used link #%d, want #1 (skipping failed #0)", fl.Links()[0].Index())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
	f.SetLinkFailed(l0, false)
	if f.IntraRackFree() != intraFree-2*10 {
		t.Errorf("restore wrong: %v", f.IntraRackFree())
	}
}

func TestSetLinkFailedIdempotent(t *testing.T) {
	_, f := testFabric(t)
	l := f.rackUplinks[0][0]
	interFree := f.InterRackFree()
	f.SetLinkFailed(l, true)
	f.SetLinkFailed(l, true)
	if f.InterRackFree() != interFree-l.Capacity() {
		t.Error("double-fail corrupted aggregates")
	}
	f.SetLinkFailed(l, false)
	f.SetLinkFailed(l, false)
	if f.InterRackFree() != interFree {
		t.Error("double-restore corrupted aggregates")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestReleaseOntoFailedLink(t *testing.T) {
	cl, f := testFabric(t)
	rack := cl.Rack(0)
	src := rack.BoxesOf(units.CPU)[0]
	dst := rack.BoxesOf(units.RAM)[0]
	fl, err := f.AllocateFlow(src, dst, 50, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	carrying := fl.Links()[0]
	f.SetLinkFailed(carrying, true)
	// The flow tears down while the link is failed: no panic, and the
	// freed bandwidth stays hidden until restore.
	f.ReleaseFlow(fl)
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
	f.SetLinkFailed(carrying, false)
	if carrying.Free() != carrying.Capacity() {
		t.Error("restored link should be fully free")
	}
	if f.IntraRackFree() != f.IntraRackCapacity() {
		t.Error("fabric should be pristine after restore")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAllUplinksFailedBlocksFlows(t *testing.T) {
	cl, f := testFabric(t)
	rack := cl.Rack(0)
	src := rack.BoxesOf(units.CPU)[0]
	dst := rack.BoxesOf(units.RAM)[0]
	for _, l := range f.boxUplinks[0][src.Index()] {
		f.SetLinkFailed(l, true)
	}
	if _, err := f.AllocateFlow(src, dst, 1, FirstFit); err == nil {
		t.Error("flow through fully failed box should be refused")
	}
	if _, err := f.AllocateFlow(src, dst, 1, MaxAvail); err == nil {
		t.Error("max-avail should refuse too")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRackUplinkFailureForcesFailure(t *testing.T) {
	cl, f := testFabric(t)
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	dst := cl.Rack(1).BoxesOf(units.RAM)[0]
	for _, l := range f.rackUplinks[0] {
		f.SetLinkFailed(l, true)
	}
	if _, err := f.AllocateFlow(src, dst, 1, FirstFit); err == nil {
		t.Error("inter-rack flow without rack uplinks should fail")
	}
	// Intra-rack flows in rack 0 are unaffected.
	if _, err := f.AllocateFlow(src, cl.Rack(0).BoxesOf(units.RAM)[0], 1, FirstFit); err != nil {
		t.Errorf("intra-rack flow should survive rack-uplink failure: %v", err)
	}
}
