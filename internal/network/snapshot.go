package network

import (
	"fmt"

	"risa/internal/units"
)

// LinkRef addresses one link structurally, mirroring the Link's own
// coordinate fields: Tier, Rack, Box (the in-rack box index for box
// uplinks, -1 for rack uplinks, and the pod index for pod uplinks) and
// Index within the uplink group. Refs are stable across equally-sized
// fabrics, which makes them the serializable link identity snapshots use.
type LinkRef struct {
	Tier  Tier
	Rack  int
	Box   int
	Index int
}

// Ref returns the structural address of a link in this fabric.
func (f *Fabric) Ref(l *Link) LinkRef {
	return LinkRef{Tier: l.tier, Rack: l.rack, Box: l.box, Index: l.index}
}

// LinkByRef resolves a structural address back to the fabric's link.
func (f *Fabric) LinkByRef(ref LinkRef) (*Link, error) {
	switch ref.Tier {
	case BoxUplink:
		if ref.Rack < 0 || ref.Rack >= len(f.boxUplinks) ||
			ref.Box < 0 || ref.Box >= len(f.boxUplinks[ref.Rack]) ||
			ref.Index < 0 || ref.Index >= len(f.boxUplinks[ref.Rack][ref.Box]) {
			return nil, fmt.Errorf("network: no box uplink at %+v", ref)
		}
		return f.boxUplinks[ref.Rack][ref.Box][ref.Index], nil
	case RackUplink:
		if ref.Rack < 0 || ref.Rack >= len(f.rackUplinks) ||
			ref.Index < 0 || ref.Index >= len(f.rackUplinks[ref.Rack]) {
			return nil, fmt.Errorf("network: no rack uplink at %+v", ref)
		}
		return f.rackUplinks[ref.Rack][ref.Index], nil
	case PodUplink:
		if ref.Box < 0 || ref.Box >= len(f.podUplinks) ||
			ref.Index < 0 || ref.Index >= len(f.podUplinks[ref.Box]) {
			return nil, fmt.Errorf("network: no pod uplink at %+v", ref)
		}
		return f.podUplinks[ref.Box][ref.Index], nil
	default:
		return nil, fmt.Errorf("network: unknown tier in %+v", ref)
	}
}

// RestoreFlow rebuilds a flow on an exact recorded link path, reserving
// bw on every named link. It is the replay primitive for snapshot
// restoration: AllocateFlow picks links by policy against current load
// and therefore cannot reproduce an arbitrary historical path, while
// RestoreFlow reproduces the reservation link for link. All named links
// must be healthy with enough free bandwidth — restore replays flows
// onto a pristine fabric first and applies link failures afterwards. On
// error nothing is reserved.
func (f *Fabric) RestoreFlow(bw units.Bandwidth, refs []LinkRef, interRack, interPod bool) (*Flow, error) {
	if bw < 0 {
		return nil, fmt.Errorf("network: negative bandwidth %v", bw)
	}
	fl := f.getFlow()
	fl.bw = bw
	fl.interRack, fl.interPod = interRack, interPod
	for _, ref := range refs {
		l, err := f.LinkByRef(ref)
		if err == nil && (l.failed || l.free < bw) {
			err = fmt.Errorf("network: restored flow of %v does not fit %v (free %v)", bw, l, l.Free())
		}
		if err != nil {
			f.ReleaseFlow(fl)
			return nil, err
		}
		f.take(l, bw)
		fl.links = append(fl.links, l)
	}
	return fl, nil
}

// FailedLinks returns the structural addresses of every currently failed
// link, in deterministic traversal order, for snapshot capture.
func (f *Fabric) FailedLinks() []LinkRef {
	var out []LinkRef
	for ri := range f.boxUplinks {
		for _, group := range f.boxUplinks[ri] {
			for _, l := range group {
				if l.failed {
					out = append(out, f.Ref(l))
				}
			}
		}
	}
	for _, group := range f.rackUplinks {
		for _, l := range group {
			if l.failed {
				out = append(out, f.Ref(l))
			}
		}
	}
	for _, group := range f.podUplinks {
		for _, l := range group {
			if l.failed {
				out = append(out, f.Ref(l))
			}
		}
	}
	return out
}
