package network

import (
	"errors"
	"testing"

	"risa/internal/topology"
	"risa/internal/units"
)

// TestFlowPoolRecycles pins the fabric's flow pooling: a released flow
// record is handed back by the next AllocateFlow with its link-slice
// capacity intact, and the steady-state allocate/release cycle performs
// zero heap allocations.
func TestFlowPoolRecycles(t *testing.T) {
	cl, f := testFabric(t)
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	dst := cl.Rack(1).BoxesOf(units.RAM)[0]
	fl1, err := f.AllocateFlow(src, dst, 20, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	f.ReleaseFlow(fl1)
	fl2, err := f.AllocateFlow(src, dst, 20, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if fl2 != fl1 {
		t.Fatal("second AllocateFlow did not recycle the released record")
	}
	f.ReleaseFlow(fl2)
	if avg := testing.AllocsPerRun(200, func() {
		fl, err := f.AllocateFlow(src, dst, 20, FirstFit)
		if err != nil {
			t.Fatal(err)
		}
		f.ReleaseFlow(fl)
	}); avg != 0 {
		t.Fatalf("steady-state flow cycle allocates %.2f times, want 0", avg)
	}
}

// TestFlowPoolDoubleReleaseGuard: releasing the same flow twice must pool
// it exactly once — a double insertion would hand one record to two
// concurrent reservations.
func TestFlowPoolDoubleReleaseGuard(t *testing.T) {
	cl, f := testFabric(t)
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	dst := cl.Rack(0).BoxesOf(units.RAM)[0]
	fl, err := f.AllocateFlow(src, dst, 20, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	f.ReleaseFlow(fl)
	f.ReleaseFlow(fl)
	if len(f.freeFlows) != 1 {
		t.Fatalf("double release pooled the flow %d times, want 1", len(f.freeFlows))
	}
	a, err := f.AllocateFlow(src, dst, 20, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.AllocateFlow(src, dst, 20, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("pool handed the same record to two live flows")
	}
}

// TestAllocateFlowSentinelErrors: admission failures return the
// preallocated per-tier sentinels, matchable with errors.Is, so failed
// probes on the scheduling hot path do not allocate error values.
func TestAllocateFlowSentinelErrors(t *testing.T) {
	cl, err := newTinyFabricCluster()
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFabric(cl, Config{BoxUplinks: 1, RackUplinks: 1, LinkCapacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	sameRackDst := cl.Rack(0).BoxesOf(units.RAM)[0]
	otherRackDst := cl.Rack(1).BoxesOf(units.RAM)[0]

	// Saturate the source box uplink, then an intra-rack flow fails at
	// the box tier.
	fl, err := f.AllocateFlow(src, sameRackDst, 100, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AllocateFlow(src, sameRackDst, 1, FirstFit); !errors.Is(err, ErrNoBoxUplink) {
		t.Fatalf("saturated box uplink: err = %v, want ErrNoBoxUplink", err)
	}
	f.ReleaseFlow(fl)

	// Saturate the source rack uplink with an inter-rack flow, then a
	// second inter-rack flow from another box of rack 0 fails at the rack
	// tier.
	fl, err = f.AllocateFlow(src, otherRackDst, 100, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	src2 := cl.Rack(0).BoxesOf(units.RAM)[0]
	if _, err := f.AllocateFlow(src2, otherRackDst, 1, FirstFit); !errors.Is(err, ErrNoRackUplink) {
		t.Fatalf("saturated rack uplink: err = %v, want ErrNoRackUplink", err)
	}
	f.ReleaseFlow(fl)
}

// newTinyFabricCluster builds a 2-rack cluster for saturation tests.
func newTinyFabricCluster() (*topology.Cluster, error) {
	cfg := topology.DefaultConfig()
	cfg.Racks = 2
	return topology.New(cfg)
}
