package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"risa/internal/topology"
	"risa/internal/units"
)

func testCluster(t testing.TB) *topology.Cluster {
	t.Helper()
	cl, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func testFabric(t testing.TB) (*topology.Cluster, *Fabric) {
	t.Helper()
	cl := testCluster(t)
	f, err := NewFabric(cl, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cl, f
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.BoxUplinks != 16 || cfg.RackUplinks != 16 || cfg.LinkCapacity != 200 {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{BoxUplinks: 0, RackUplinks: 16, LinkCapacity: 200},
		{BoxUplinks: 8, RackUplinks: 0, LinkCapacity: 200},
		{BoxUplinks: 8, RackUplinks: 16, LinkCapacity: 0},
		{BoxUplinks: 8, RackUplinks: 16, LinkCapacity: -5},
		{BoxUplinks: 8, RackUplinks: 16, LinkCapacity: 200, RacksPerPod: -1},
		{BoxUplinks: 8, RackUplinks: 16, LinkCapacity: 200, PodUplinks: -2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestTierPolicyStrings(t *testing.T) {
	if BoxUplink.String() != "box-uplink" || RackUplink.String() != "rack-uplink" {
		t.Error("tier names wrong")
	}
	if Tier(9).String() == "" {
		t.Error("unknown tier should still render")
	}
	if FirstFit.String() != "first-fit" || MaxAvail.String() != "max-avail" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should still render")
	}
}

func TestFabricCapacities(t *testing.T) {
	_, f := testFabric(t)
	// 18 racks x 6 boxes x 8 uplinks x 200 Gb/s.
	wantIntra := units.Bandwidth(18 * 6 * 16 * 200)
	if f.IntraRackCapacity() != wantIntra {
		t.Errorf("intra capacity = %v, want %v", f.IntraRackCapacity(), wantIntra)
	}
	// 18 racks x 16 uplinks x 200 Gb/s.
	wantInter := units.Bandwidth(18 * 16 * 200)
	if f.InterRackCapacity() != wantInter {
		t.Errorf("inter capacity = %v, want %v", f.InterRackCapacity(), wantInter)
	}
	if f.IntraRackFree() != wantIntra || f.InterRackFree() != wantInter {
		t.Error("fresh fabric should be fully free")
	}
	if f.IntraRackUtilization() != 0 || f.InterRackUtilization() != 0 {
		t.Error("fresh fabric utilization should be zero")
	}
	if f.RackIntraFree(0) != units.Bandwidth(6*16*200) {
		t.Errorf("rack intra free = %v", f.RackIntraFree(0))
	}
}

func TestIntraRackFlow(t *testing.T) {
	cl, f := testFabric(t)
	rack := cl.Rack(0)
	src := rack.BoxesOf(units.CPU)[0]
	dst := rack.BoxesOf(units.RAM)[0]
	fl, err := f.AllocateFlow(src, dst, 20, FirstFit)
	if err != nil {
		t.Fatalf("AllocateFlow: %v", err)
	}
	if fl.InterRack() {
		t.Error("same-rack flow should be intra-rack")
	}
	if got := len(fl.Links()); got != 2 {
		t.Errorf("intra flow reserves %d shared links, want 2", got)
	}
	if fl.LinkTraversals() != 4 {
		t.Errorf("intra hops = %d, want 4", fl.LinkTraversals())
	}
	if fl.BoxSwitchCrossings() != 2 || fl.RackSwitchCrossings() != 1 || fl.InterRackSwitchCrossings() != 0 {
		t.Error("intra switch crossings wrong")
	}
	if f.InterRackFree() != f.InterRackCapacity() {
		t.Error("intra flow must not consume inter-rack bandwidth")
	}
	if got := f.IntraRackCapacity() - f.IntraRackFree(); got != 40 {
		t.Errorf("intra consumption = %v, want 40 (20 on each of 2 links)", got)
	}
	f.ReleaseFlow(fl)
	if f.IntraRackFree() != f.IntraRackCapacity() {
		t.Error("release did not restore intra bandwidth")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInterRackFlow(t *testing.T) {
	cl, f := testFabric(t)
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	dst := cl.Rack(5).BoxesOf(units.RAM)[1]
	fl, err := f.AllocateFlow(src, dst, 15, FirstFit)
	if err != nil {
		t.Fatalf("AllocateFlow: %v", err)
	}
	if !fl.InterRack() {
		t.Error("cross-rack flow should be inter-rack")
	}
	if got := len(fl.Links()); got != 4 {
		t.Errorf("inter flow reserves %d shared links, want 4", got)
	}
	if fl.LinkTraversals() != 6 {
		t.Errorf("inter hops = %d, want 6", fl.LinkTraversals())
	}
	if fl.BoxSwitchCrossings() != 2 || fl.RackSwitchCrossings() != 2 || fl.InterRackSwitchCrossings() != 1 {
		t.Error("inter switch crossings wrong")
	}
	if got := f.InterRackCapacity() - f.InterRackFree(); got != 30 {
		t.Errorf("inter consumption = %v, want 30", got)
	}
	f.ReleaseFlow(fl)
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestZeroBandwidthFlow(t *testing.T) {
	cl, f := testFabric(t)
	src := cl.Rack(0).BoxesOf(units.RAM)[0]
	dst := cl.Rack(1).BoxesOf(units.Storage)[0]
	fl, err := f.AllocateFlow(src, dst, 0, FirstFit)
	if err != nil {
		t.Fatalf("zero-bw flow: %v", err)
	}
	if len(fl.Links()) != 0 {
		t.Error("zero-bw flow should reserve nothing")
	}
	if !fl.InterRack() {
		t.Error("path shape should still be recorded")
	}
	f.ReleaseFlow(fl) // must be safe
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNegativeBandwidthRejected(t *testing.T) {
	cl, f := testFabric(t)
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	if _, err := f.AllocateFlow(src, src, -1, FirstFit); err == nil {
		t.Error("negative bandwidth should fail")
	}
}

func TestFirstFitPacksFirstLink(t *testing.T) {
	cl, f := testFabric(t)
	rack := cl.Rack(0)
	src := rack.BoxesOf(units.CPU)[0]
	dst := rack.BoxesOf(units.RAM)[0]
	var flows []*Flow
	// Two 100 Gb/s flows fill uplink #0 on both boxes before touching #1.
	for i := 0; i < 2; i++ {
		fl, err := f.AllocateFlow(src, dst, 100, FirstFit)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, fl)
	}
	for _, fl := range flows {
		for _, l := range fl.Links() {
			if l.Index() != 0 {
				t.Errorf("first-fit used link #%d before filling #0", l.Index())
			}
		}
	}
	// Third flow must move to uplink #1.
	fl, err := f.AllocateFlow(src, dst, 100, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range fl.Links() {
		if l.Index() != 1 {
			t.Errorf("expected spill to link #1, got #%d", l.Index())
		}
	}
}

func TestMaxAvailSpreadsLoad(t *testing.T) {
	cl, f := testFabric(t)
	rack := cl.Rack(0)
	src := rack.BoxesOf(units.CPU)[0]
	dst := rack.BoxesOf(units.RAM)[0]
	// First flow leaves link #0 at 150 free; the next MaxAvail flow must
	// prefer one of the untouched links (200 free).
	if _, err := f.AllocateFlow(src, dst, 50, MaxAvail); err != nil {
		t.Fatal(err)
	}
	fl, err := f.AllocateFlow(src, dst, 50, MaxAvail)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range fl.Links() {
		if l.Free() != 150 {
			t.Errorf("max-avail should land on a fresh link, got %v with %v free", l, l.Free())
		}
	}
}

func TestAllocationFailureRollsBack(t *testing.T) {
	cl, f := testFabric(t)
	rack := cl.Rack(0)
	src := rack.BoxesOf(units.CPU)[0]
	dst := rack.BoxesOf(units.RAM)[0]
	// Saturate every uplink of dst so the second hop must fail.
	other := rack.BoxesOf(units.Storage)[0]
	cfg := f.Config()
	for i := 0; i < cfg.BoxUplinks; i++ {
		if _, err := f.AllocateFlow(dst, other, 200, FirstFit); err != nil {
			// dst and other each have 8 uplinks; 8 flows of 200 fill dst's.
			t.Fatal(err)
		}
	}
	freeBefore := f.IntraRackFree()
	if _, err := f.AllocateFlow(src, dst, 10, FirstFit); err == nil {
		t.Fatal("flow into saturated box should fail")
	}
	if f.IntraRackFree() != freeBefore {
		t.Errorf("failed allocation leaked bandwidth: %v -> %v", freeBefore, f.IntraRackFree())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestBoxUplinkFree(t *testing.T) {
	cl, f := testFabric(t)
	rack := cl.Rack(0)
	box := rack.BoxesOf(units.CPU)[0]
	if got := f.BoxUplinkFree(box); got != 16*200 {
		t.Errorf("fresh BoxUplinkFree = %v", got)
	}
	if got := f.BoxMaxUplinkFree(box); got != 200 {
		t.Errorf("fresh BoxMaxUplinkFree = %v", got)
	}
	dst := rack.BoxesOf(units.RAM)[0]
	if _, err := f.AllocateFlow(box, dst, 30, FirstFit); err != nil {
		t.Fatal(err)
	}
	if got := f.BoxUplinkFree(box); got != 16*200-30 {
		t.Errorf("BoxUplinkFree after flow = %v", got)
	}
	if got := f.BoxMaxUplinkFree(box); got != 200 {
		t.Errorf("BoxMaxUplinkFree should still be 200, got %v", got)
	}
}

func TestRackIntraFreeTracksPerRack(t *testing.T) {
	cl, f := testFabric(t)
	r0Free := f.RackIntraFree(0)
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	dst := cl.Rack(0).BoxesOf(units.RAM)[0]
	if _, err := f.AllocateFlow(src, dst, 25, FirstFit); err != nil {
		t.Fatal(err)
	}
	if f.RackIntraFree(0) != r0Free-50 {
		t.Errorf("rack 0 intra free = %v, want %v", f.RackIntraFree(0), r0Free-50)
	}
	if f.RackIntraFree(1) != r0Free {
		t.Error("rack 1 must be untouched")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	cl, f := testFabric(t)
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	dst := cl.Rack(0).BoxesOf(units.RAM)[0]
	fl, err := f.AllocateFlow(src, dst, 200, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	f.ReleaseFlow(fl)
	// After release the flow's links are cleared, so a second release is a
	// harmless no-op rather than corruption.
	f.ReleaseFlow(fl)
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestReleaseNilFlow(t *testing.T) {
	_, f := testFabric(t)
	f.ReleaseFlow(nil)
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// Property: random flow churn preserves invariants and full release
// restores pristine state.
func TestRandomFlowChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cl := testCluster(t)
		fab, err := NewFabric(cl, DefaultConfig())
		if err != nil {
			return false
		}
		boxes := cl.Boxes()
		var live []*Flow
		for step := 0; step < 300; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				fab.ReleaseFlow(live[i])
				live = append(live[:i], live[i+1:]...)
			} else {
				src := boxes[rng.Intn(len(boxes))]
				dst := boxes[rng.Intn(len(boxes))]
				bw := units.Bandwidth(rng.Int63n(250) + 1)
				policy := Policy(rng.Intn(2))
				if fl, err := fab.AllocateFlow(src, dst, bw, policy); err == nil {
					live = append(live, fl)
				}
			}
			if err := fab.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
		}
		for _, fl := range live {
			fab.ReleaseFlow(fl)
		}
		return fab.IntraRackFree() == fab.IntraRackCapacity() &&
			fab.InterRackFree() == fab.InterRackCapacity() &&
			fab.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: a flow larger than the link capacity is always rejected.
func TestOversizeFlowAlwaysRejected(t *testing.T) {
	cl, f := testFabric(t)
	src := cl.Rack(0).BoxesOf(units.CPU)[0]
	dst := cl.Rack(1).BoxesOf(units.RAM)[0]
	if _, err := f.AllocateFlow(src, dst, 201, FirstFit); err == nil {
		t.Error("201 Gb/s flow must not fit a 200 Gb/s link")
	}
	if _, err := f.AllocateFlow(src, dst, 201, MaxAvail); err == nil {
		t.Error("201 Gb/s flow must not fit under MaxAvail either")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestLinkAccessors(t *testing.T) {
	cl, f := testFabric(t)
	src := cl.Rack(2).BoxesOf(units.CPU)[1]
	dst := cl.Rack(3).BoxesOf(units.RAM)[0]
	fl, err := f.AllocateFlow(src, dst, 10, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	links := fl.Links()
	if links[0].Tier() != BoxUplink || links[0].Rack() != 2 || links[0].Box() != src.Index() {
		t.Errorf("first link misaddressed: %v", links[0])
	}
	if links[1].Tier() != RackUplink || links[1].Rack() != 2 || links[1].Box() != -1 {
		t.Errorf("second link misaddressed: %v", links[1])
	}
	if links[2].Tier() != RackUplink || links[2].Rack() != 3 {
		t.Errorf("third link misaddressed: %v", links[2])
	}
	if links[3].Tier() != BoxUplink || links[3].Rack() != 3 {
		t.Errorf("fourth link misaddressed: %v", links[3])
	}
	if links[0].Capacity() != 200 || links[0].Free() != 190 {
		t.Errorf("link bookkeeping: cap=%v free=%v", links[0].Capacity(), links[0].Free())
	}
	if fl.BW() != 10 {
		t.Errorf("BW = %v", fl.BW())
	}
}
