// Package optics models the optical devices of the RISA paper's fabric:
// Beneš-topology microring-resonator (MRR) switches and Luxtera SiP
// transceiver modules, together with the per-VM switch energy model of the
// paper's Equation 1:
//
//	E_sw = (n/2 · P_swcell · lat_sw) + (α · n · P_trimcell · T)
//
// where n is the number of MRR cells along a switch path, lat_sw the cell
// reconfiguration latency, α the cell-sharing factor, and T the VM
// lifetime. Constants follow §3.2 of the paper: P_trimcell = 22.67 mW,
// P_swcell = 13.75 mW, α = 0.9, transceiver energy 22.5 pJ/bit.
package optics

import (
	"fmt"
	"math/bits"
	"time"

	"risa/internal/units"
)

// Physical constants from the paper (§3.1-3.2).
const (
	// PTrimCellWatts is the trimming power that keeps one MRR cell in its
	// state (P_trimcell = 22.67 mW, from Mirza et al.).
	PTrimCellWatts = 22.67e-3
	// PSwCellWatts is the power drawn while switching one MRR cell
	// (P_swcell = 13.75 mW).
	PSwCellWatts = 13.75e-3
	// DefaultAlpha is the paper's cell-sharing constant: 0.9 (between 0.5
	// = every cell shared by two VMs and 1.0 = no sharing).
	DefaultAlpha = 0.9
	// TransceiverJoulesPerBit is the Luxtera SiP module energy: 22.5 pJ/bit.
	TransceiverJoulesPerBit = 22.5e-12
)

// Switch port counts needed to support the Table 1 architecture (§5.2).
const (
	BoxSwitchPorts       = 64
	RackSwitchPorts      = 256
	InterRackSwitchPorts = 512
)

// Stages returns the number of 2x2-cell stages in an N-port Beneš network:
// 2·log2(N) − 1. N must be a power of two and ≥ 2.
func Stages(ports int) (int, error) {
	if ports < 2 || bits.OnesCount(uint(ports)) != 1 {
		return 0, fmt.Errorf("optics: Beneš port count must be a power of two ≥ 2, got %d", ports)
	}
	return 2*bits.Len(uint(ports-1)) - 1, nil
}

// PathCells returns n of Equation 1: the number of cells a path crosses in
// an N-port Beneš switch, one per stage.
func PathCells(ports int) (int, error) { return Stages(ports) }

// TotalCells returns the total cell count of an N-port Beneš switch:
// N/2 cells per stage.
func TotalCells(ports int) (int, error) {
	s, err := Stages(ports)
	if err != nil {
		return 0, err
	}
	return ports / 2 * s, nil
}

// Config parameterizes the device models. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	PTrimCell float64 // W per cell, holding state
	PSwCell   float64 // W per cell, during reconfiguration
	Alpha     float64 // cell sharing factor in [0.5, 1.0]
	// CellLatency is the per-stage reconfiguration latency; the paper's
	// switch latency (ref [6]) grows with switch size, which we model as
	// lat_sw = stages × CellLatency (see DESIGN.md §3).
	CellLatency time.Duration
	// TransceiverJPerBit is the SiP module energy per bit.
	TransceiverJPerBit float64
	// Port counts of the three switch classes.
	BoxPorts, RackPorts, InterRackPorts int
}

// DefaultConfig returns the paper's constants.
func DefaultConfig() Config {
	return Config{
		PTrimCell:          PTrimCellWatts,
		PSwCell:            PSwCellWatts,
		Alpha:              DefaultAlpha,
		CellLatency:        100 * time.Nanosecond,
		TransceiverJPerBit: TransceiverJoulesPerBit,
		BoxPorts:           BoxSwitchPorts,
		RackPorts:          RackSwitchPorts,
		InterRackPorts:     InterRackSwitchPorts,
	}
}

// Validate checks physical sanity of the parameters.
func (c Config) Validate() error {
	if c.PTrimCell <= 0 || c.PSwCell <= 0 {
		return fmt.Errorf("optics: cell powers must be positive (trim=%g sw=%g)", c.PTrimCell, c.PSwCell)
	}
	if c.Alpha < 0.5 || c.Alpha > 1.0 {
		return fmt.Errorf("optics: alpha %g outside [0.5, 1.0]", c.Alpha)
	}
	if c.CellLatency <= 0 {
		return fmt.Errorf("optics: cell latency must be positive, got %v", c.CellLatency)
	}
	if c.TransceiverJPerBit <= 0 {
		return fmt.Errorf("optics: transceiver energy must be positive, got %g", c.TransceiverJPerBit)
	}
	for _, p := range []int{c.BoxPorts, c.RackPorts, c.InterRackPorts} {
		if _, err := Stages(p); err != nil {
			return err
		}
	}
	return nil
}

// SwitchLatency returns lat_sw for an N-port switch: stages × CellLatency.
func (c Config) SwitchLatency(ports int) (time.Duration, error) {
	s, err := Stages(ports)
	if err != nil {
		return 0, err
	}
	return time.Duration(s) * c.CellLatency, nil
}

// PathTrimmingPower returns the steady-state trimming power attributed to
// one path through an N-port switch: α · n · P_trimcell (the second term of
// Equation 1 divided by T).
func (c Config) PathTrimmingPower(ports int) (float64, error) {
	n, err := PathCells(ports)
	if err != nil {
		return 0, err
	}
	return c.Alpha * float64(n) * c.PTrimCell, nil
}

// PathSwitchingEnergy returns the one-shot reconfiguration energy of
// setting up one path through an N-port switch: (n/2) · P_swcell · lat_sw
// (the first term of Equation 1). The paper assumes half the cells along a
// path change state.
func (c Config) PathSwitchingEnergy(ports int) (float64, error) {
	n, err := PathCells(ports)
	if err != nil {
		return 0, err
	}
	lat, err := c.SwitchLatency(ports)
	if err != nil {
		return 0, err
	}
	return float64(n) / 2 * c.PSwCell * lat.Seconds(), nil
}

// SwitchEnergy evaluates Equation 1 for one path through an N-port switch
// held for lifetime T, in joules.
func (c Config) SwitchEnergy(ports int, lifetime time.Duration) (float64, error) {
	setup, err := c.PathSwitchingEnergy(ports)
	if err != nil {
		return 0, err
	}
	trim, err := c.PathTrimmingPower(ports)
	if err != nil {
		return 0, err
	}
	return setup + trim*lifetime.Seconds(), nil
}

// TransceiverPower returns the steady-state power of carrying bw through
// one transceiver pair (one link traversal): energy-per-bit × bit rate.
func (c Config) TransceiverPower(bw units.Bandwidth) float64 {
	return c.TransceiverJPerBit * float64(bw) * 1e9
}
