package optics_test

import (
	"fmt"
	"time"

	"risa/internal/optics"
)

func ExampleStages() {
	for _, ports := range []int{64, 256, 512} {
		s, err := optics.Stages(ports)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%d-port Beneš: %d stages\n", ports, s)
	}
	// Output:
	// 64-port Beneš: 11 stages
	// 256-port Beneš: 15 stages
	// 512-port Beneš: 17 stages
}

func ExampleConfig_SwitchEnergy() {
	cfg := optics.DefaultConfig()
	// Equation 1 for a path through the rack switch held for one hour.
	e, err := cfg.SwitchEnergy(256, time.Hour)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.1f J\n", e)
	// Output:
	// 1101.8 J
}

func ExampleConfig_TransceiverPower() {
	cfg := optics.DefaultConfig()
	// A fully loaded 200 Gb/s link: 22.5 pJ/bit × 200e9 b/s.
	fmt.Printf("%.2f W\n", cfg.TransceiverPower(200))
	// Output:
	// 4.50 W
}
