package optics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"risa/internal/units"
)

func TestStages(t *testing.T) {
	cases := []struct {
		ports int
		want  int
	}{
		{2, 1},
		{4, 3},
		{8, 5},
		{16, 7},
		{32, 9},
		{64, 11},
		{128, 13},
		{256, 15},
		{512, 17},
	}
	for _, c := range cases {
		got, err := Stages(c.ports)
		if err != nil || got != c.want {
			t.Errorf("Stages(%d) = %d, %v; want %d", c.ports, got, err, c.want)
		}
	}
}

func TestStagesRejectsBadPorts(t *testing.T) {
	for _, p := range []int{0, 1, 3, 6, 100, -8} {
		if _, err := Stages(p); err == nil {
			t.Errorf("Stages(%d) should fail", p)
		}
	}
}

func TestPathCellsMatchesPaperSwitches(t *testing.T) {
	// The three switch classes of §5.2: 64, 256, 512 ports.
	for ports, want := range map[int]int{64: 11, 256: 15, 512: 17} {
		got, err := PathCells(ports)
		if err != nil || got != want {
			t.Errorf("PathCells(%d) = %d, want %d", ports, got, want)
		}
	}
}

func TestTotalCells(t *testing.T) {
	// 8-port Beneš: 5 stages x 4 cells = 20 cells.
	got, err := TotalCells(8)
	if err != nil || got != 20 {
		t.Errorf("TotalCells(8) = %d, want 20", got)
	}
	// 64-port: 11 stages x 32 cells.
	got, err = TotalCells(64)
	if err != nil || got != 352 {
		t.Errorf("TotalCells(64) = %d, want 352", got)
	}
	if _, err := TotalCells(7); err == nil {
		t.Error("TotalCells(7) should fail")
	}
}

func TestDefaultConfigConstants(t *testing.T) {
	c := DefaultConfig()
	if c.PTrimCell != 22.67e-3 {
		t.Errorf("PTrimCell = %g", c.PTrimCell)
	}
	if c.PSwCell != 13.75e-3 {
		t.Errorf("PSwCell = %g", c.PSwCell)
	}
	if c.Alpha != 0.9 {
		t.Errorf("Alpha = %g", c.Alpha)
	}
	if c.TransceiverJPerBit != 22.5e-12 {
		t.Errorf("TransceiverJPerBit = %g", c.TransceiverJPerBit)
	}
	if c.BoxPorts != 64 || c.RackPorts != 256 || c.InterRackPorts != 512 {
		t.Error("switch port counts should match §5.2")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.PTrimCell = 0 },
		func(c *Config) { c.PSwCell = -1 },
		func(c *Config) { c.Alpha = 0.4 },
		func(c *Config) { c.Alpha = 1.1 },
		func(c *Config) { c.CellLatency = 0 },
		func(c *Config) { c.TransceiverJPerBit = 0 },
		func(c *Config) { c.BoxPorts = 63 },
		func(c *Config) { c.RackPorts = 0 },
		func(c *Config) { c.InterRackPorts = 3 },
	}
	for i, m := range mutations {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestSwitchLatencyScalesWithSize(t *testing.T) {
	c := DefaultConfig()
	lat64, err := c.SwitchLatency(64)
	if err != nil {
		t.Fatal(err)
	}
	lat512, err := c.SwitchLatency(512)
	if err != nil {
		t.Fatal(err)
	}
	if lat64 != 1100*time.Nanosecond {
		t.Errorf("lat_sw(64) = %v, want 1.1µs", lat64)
	}
	if lat512 != 1700*time.Nanosecond {
		t.Errorf("lat_sw(512) = %v, want 1.7µs", lat512)
	}
	if lat512 <= lat64 {
		t.Error("latency must grow with switch size")
	}
	if _, err := c.SwitchLatency(9); err == nil {
		t.Error("bad port count should fail")
	}
}

func TestPathTrimmingPower(t *testing.T) {
	c := DefaultConfig()
	// 64-port: 0.9 x 11 x 22.67 mW = 224.43 mW.
	got, err := c.PathTrimmingPower(64)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9 * 11 * 22.67e-3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PathTrimmingPower(64) = %g, want %g", got, want)
	}
	if _, err := c.PathTrimmingPower(10); err == nil {
		t.Error("bad port count should fail")
	}
}

func TestPathSwitchingEnergy(t *testing.T) {
	c := DefaultConfig()
	// 64-port: (11/2) x 13.75 mW x 1.1 µs.
	got, err := c.PathSwitchingEnergy(64)
	if err != nil {
		t.Fatal(err)
	}
	want := 11.0 / 2 * 13.75e-3 * 1.1e-6
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("PathSwitchingEnergy(64) = %g, want %g", got, want)
	}
	if _, err := c.PathSwitchingEnergy(10); err == nil {
		t.Error("bad port count should fail")
	}
}

func TestSwitchEnergyEquation1(t *testing.T) {
	c := DefaultConfig()
	lifetime := 10 * time.Second
	got, err := c.SwitchEnergy(256, lifetime)
	if err != nil {
		t.Fatal(err)
	}
	setup, _ := c.PathSwitchingEnergy(256)
	trim, _ := c.PathTrimmingPower(256)
	want := setup + trim*10
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SwitchEnergy = %g, want %g", got, want)
	}
	// Trimming dominates for any realistic lifetime.
	if got < trim*10 {
		t.Error("energy must at least cover trimming")
	}
	if _, err := c.SwitchEnergy(10, lifetime); err == nil {
		t.Error("bad port count should fail")
	}
}

func TestTransceiverPower(t *testing.T) {
	c := DefaultConfig()
	// A fully loaded 200 Gb/s link: 22.5 pJ/bit x 200e9 b/s = 4.5 W.
	got := c.TransceiverPower(units.LinkCapacity)
	if math.Abs(got-4.5) > 1e-9 {
		t.Errorf("TransceiverPower(200Gb/s) = %g W, want 4.5", got)
	}
	if c.TransceiverPower(0) != 0 {
		t.Error("zero bandwidth should cost nothing")
	}
}

// Property: switch energy is monotone in lifetime and in switch size.
func TestSwitchEnergyMonotoneProperty(t *testing.T) {
	c := DefaultConfig()
	f := func(secs1, secs2 uint16) bool {
		t1 := time.Duration(secs1) * time.Second
		t2 := t1 + time.Duration(secs2)*time.Second
		e64a, _ := c.SwitchEnergy(64, t1)
		e64b, _ := c.SwitchEnergy(64, t2)
		e512, _ := c.SwitchEnergy(512, t1)
		return e64a <= e64b && e64a <= e512
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Stages inverts correctly — an N-port switch has an odd number
// of stages and grows by 2 when N doubles.
func TestStagesGrowthProperty(t *testing.T) {
	prev := 0
	for ports := 2; ports <= 4096; ports *= 2 {
		s, err := Stages(ports)
		if err != nil {
			t.Fatalf("Stages(%d): %v", ports, err)
		}
		if s%2 != 1 {
			t.Errorf("Stages(%d) = %d, want odd", ports, s)
		}
		if prev != 0 && s != prev+2 {
			t.Errorf("Stages(%d) = %d, want %d", ports, s, prev+2)
		}
		prev = s
	}
}
