// Package baseline implements the two state-of-the-art schedulers the RISA
// paper compares against, from Zervas et al. (JOCN 2018):
//
//   - NULB, the network-unaware locality-based heuristic (the paper's
//     Algorithm 2): pick the most contended resource by contention ratio,
//     take the first box that can hold it, find the remaining resources by
//     breadth-first search (same rack first, then the other racks), and
//     reserve bandwidth on the first links that fit.
//   - NALB, the network-aware variant: the BFS visits candidate boxes in
//     descending order of their available uplink bandwidth, and the network
//     phase picks the links with the most available bandwidth.
//
// Both schedulers also serve as RISA's SUPER_RACK fallback, which is why
// Schedule is split into a maskable ScheduleMasked.
package baseline

import (
	"fmt"

	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// Masks restricts the candidate racks per resource; a nil entry allows all
// racks for that resource. RISA's SUPER_RACK is expressed as one mask per
// resource kind.
type Masks [units.NumResources]sched.RackMask

// zervas is the shared implementation of NULB and NALB.
type zervas struct {
	st   *sched.State
	nalb bool // true → NALB: bandwidth-ordered BFS + max-avail links
}

// NewNULB returns the network-unaware locality-based scheduler bound to st.
func NewNULB(st *sched.State) sched.Scheduler { return &zervas{st: st} }

// NewNALB returns the network-aware locality-based scheduler bound to st.
func NewNALB(st *sched.State) sched.Scheduler { return &zervas{st: st, nalb: true} }

// MaskedScheduler is a Scheduler that can additionally be restricted to a
// subset of racks per resource; RISA's SUPER_RACK fallback needs this.
type MaskedScheduler interface {
	sched.Scheduler
	ScheduleMasked(vm workload.VM, masks Masks) (*sched.Assignment, error)
	// ChooseMasked computes ScheduleMasked's placement choice alone —
	// the scarce box and the BFS for the remaining resources — without
	// touching the network phase or allocating anything. Pure reads
	// against a settled cluster; the propose path builds fallback-tier
	// claims from it.
	ChooseMasked(vm workload.VM, masks Masks) (sched.BoxTriple, network.Policy, error)
}

// NewNULBMasked returns NULB exposed with its maskable entry point for use
// as RISA's fallback.
func NewNULBMasked(st *sched.State) MaskedScheduler { return &zervas{st: st} }

// Name implements sched.Scheduler.
func (z *zervas) Name() string {
	if z.nalb {
		return "NALB"
	}
	return "NULB"
}

// Schedule implements sched.Scheduler over the whole cluster.
func (z *zervas) Schedule(vm workload.VM) (*sched.Assignment, error) {
	return z.ScheduleMasked(vm, Masks{})
}

// Release implements sched.Scheduler.
func (z *zervas) Release(a *sched.Assignment) { z.st.ReleaseVM(a) }

// ScheduleMasked runs Algorithm 2 restricted to the masked racks.
func (z *zervas) ScheduleMasked(vm workload.VM, masks Masks) (*sched.Assignment, error) {
	boxes, policy, err := z.ChooseMasked(vm, masks)
	if err != nil {
		return nil, err
	}
	// Phase 2: network allocation. NULB takes the first links that fit,
	// NALB the links with the most available bandwidth.
	return z.st.AllocateVM(vm, boxes, policy)
}

// ChooseMasked implements MaskedScheduler: phases 1a and 1b of
// Algorithm 2 — the box choice — with no allocation and no writes.
func (z *zervas) ChooseMasked(vm workload.VM, masks Masks) (sched.BoxTriple, network.Policy, error) {
	var boxes sched.BoxTriple
	policy := network.FirstFit
	if z.nalb {
		policy = network.MaxAvail
	}
	cl := z.st.Cluster
	resMax, ok := sched.ScarcestResource(cl, vm.Req)
	if !ok {
		return boxes, policy, fmt.Errorf("baseline: VM %d requests nothing", vm.ID)
	}

	// Phase 1a: the first box anywhere that can hold the scarcest
	// resource (global rack-major, box-index order).
	first := z.firstBox(resMax, vm.Req[resMax], masks[resMax])
	if first == nil {
		return boxes, policy, fmt.Errorf("baseline: VM %d: no box with %d %s free",
			vm.ID, vm.Req[resMax], resMax.Native())
	}

	// Phase 1b: BFS outwards from the scarce box for the other resources.
	boxes[resMax] = first
	for _, r := range units.Resources() {
		if r == resMax || vm.Req[r] == 0 {
			continue
		}
		b := z.bfsFind(first.Rack(), r, vm.Req[r], masks[r])
		if b == nil {
			return boxes, policy, fmt.Errorf("baseline: VM %d: no box with %d %s free reachable from rack %d",
				vm.ID, vm.Req[r], r.Native(), first.Rack())
		}
		boxes[r] = b
	}
	return boxes, policy, nil
}

// firstBox returns the first box in global order holding kind r with
// enough free, honoring the rack mask. Candidate racks come from the
// cluster-level index (ascending rack order, racks without a large-enough
// box never surface) and the box-level test reads the rack's contiguous
// visible-free vector, which leaves the scan order (and thus the chosen
// box) identical to a full rack-major sweep over the box pointers while
// skipping the non-qualifying racks entirely.
func (z *zervas) firstBox(r units.Resource, need units.Amount, mask sched.RackMask) *topology.Box {
	cl := z.st.Cluster
	for ri := cl.NextRackWith(r, need, 0); ri >= 0; ri = cl.NextRackWith(r, need, ri+1) {
		if !mask.Allows(ri) {
			continue
		}
		rack := cl.Rack(ri)
		for i, f := range rack.FreeVecOf(r) {
			if f >= need {
				return rack.BoxesOf(r)[i]
			}
		}
	}
	return nil
}

// bfsFind searches for a box of kind r with enough free space, visiting
// the home rack's boxes first and then every other rack (ascending index —
// all racks are equidistant through the inter-rack switch). NALB takes
// each BFS level in descending order of available uplink bandwidth.
func (z *zervas) bfsFind(homeRack int, r units.Resource, need units.Amount, mask sched.RackMask) *topology.Box {
	cl := z.st.Cluster
	if mask.Allows(homeRack) {
		if b := z.pickFromLevel(cl.Rack(homeRack), r, need); b != nil {
			return b
		}
	}
	// Second BFS level: all remaining racks, pruned through the
	// cluster-level candidate index so only racks with a large-enough box
	// contribute their boxes. Dropping boxes that could never be picked
	// does not change the choice (both policies only ever select a
	// fitting box).
	if !z.nalb {
		// NULB scans the level in construction order, so it never needs
		// the level materialized at all: the first fitting box in
		// ascending (rack, box) order wins.
		for ri := cl.NextRackWith(r, need, 0); ri >= 0; ri = cl.NextRackWith(r, need, ri+1) {
			if ri == homeRack || !mask.Allows(ri) {
				continue
			}
			rack := cl.Rack(ri)
			for i, f := range rack.FreeVecOf(r) {
				if f >= need {
					return rack.BoxesOf(r)[i]
				}
			}
		}
		return nil
	}
	// NALB's level order is descending uplink bandwidth with construction
	// order breaking ties (the historical stable sort), and the pick is
	// the first FITTING box in that order — equivalently, the fitting box
	// with the maximum uplink bandwidth, earliest first among equals. The
	// single max-scan below computes exactly that without materializing or
	// sorting the level (the pre-SoA code built and stable-sorted every
	// qualifying rack's boxes per decision, the dominant superlinear term
	// in NALB's hyperscale decision time), and probes the fabric only for
	// boxes that fit instead of for the whole level.
	fab := z.st.Fabric
	var chosen *topology.Box
	var bestKey units.Bandwidth
	for ri := cl.NextRackWith(r, need, 0); ri >= 0; ri = cl.NextRackWith(r, need, ri+1) {
		if ri == homeRack || !mask.Allows(ri) {
			continue
		}
		rack := cl.Rack(ri)
		boxes := rack.BoxesOf(r)
		for i, f := range rack.FreeVecOf(r) {
			if f < need {
				continue
			}
			if k := fab.BoxUplinkFree(boxes[i]); chosen == nil || k > bestKey {
				chosen, bestKey = boxes[i], k
			}
		}
	}
	return chosen
}

// pickFromLevel returns the box one BFS level yields for kind res in one
// rack: the first fitting box in index order for NULB, the fitting box
// with the most available uplink bandwidth (ties to the earliest, the
// stable-sort order) for NALB.
func (z *zervas) pickFromLevel(rack *topology.Rack, res units.Resource, need units.Amount) *topology.Box {
	free := rack.FreeVecOf(res)
	if z.nalb {
		fab := z.st.Fabric
		boxes := rack.BoxesOf(res)
		var chosen *topology.Box
		var bestKey units.Bandwidth
		for i, f := range free {
			if f < need {
				continue
			}
			if k := fab.BoxUplinkFree(boxes[i]); chosen == nil || k > bestKey {
				chosen, bestKey = boxes[i], k
			}
		}
		return chosen
	}
	for i, f := range free {
		if f >= need {
			return rack.BoxesOf(res)[i]
		}
	}
	return nil
}
