package baseline_test

import (
	"testing"

	"risa/internal/baseline"
	"risa/internal/sched"
	"risa/internal/sched/schedtest"
)

func TestConformance(t *testing.T) {
	schedtest.Conformance(t, "NULB", func(st *sched.State) sched.Scheduler {
		return baseline.NewNULB(st)
	})
	schedtest.Conformance(t, "NALB", func(st *sched.State) sched.Scheduler {
		return baseline.NewNALB(st)
	})
}
