package baseline

import (
	"testing"

	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// toyConfig reproduces the paper's Table 3 architecture: 2 racks, 2 boxes
// per resource per rack, boxes of 64 cores / 64 GB RAM / 512 GB storage.
func toyConfig() topology.Config {
	return topology.Config{
		Racks: 2, CPUBoxes: 2, RAMBoxes: 2, STOBoxes: 2,
		BricksPerBox: 4, UnitsPerBrick: 4,
		Units: units.Config{CPUUnitCores: 4, RAMUnitGB: 4, STOUnitGB: 32},
	}
}

// toyState reproduces the exact Table 3 availability:
//
//	CPU:  (r0,b0)=0   (r0,b1)=0   (r1,b0)=64  (r1,b1)=32
//	RAM:  (r0,b0)=0   (r0,b1)=16  (r1,b0)=32  (r1,b1)=16
//	STO:  (r0,b0)=0   (r0,b1)=0   (r1,b0)=256 (r1,b1)=512
func toyState(t testing.TB) *sched.State {
	t.Helper()
	st, err := sched.NewState(toyConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	occupy := func(rack, box int, kind units.Resource, amt units.Amount) {
		t.Helper()
		if amt == 0 {
			return
		}
		if _, err := st.Cluster.Preoccupy(rack, box, kind, amt); err != nil {
			t.Fatal(err)
		}
	}
	occupy(0, 0, units.CPU, 64)
	occupy(0, 1, units.CPU, 64)
	occupy(1, 1, units.CPU, 32)
	occupy(0, 0, units.RAM, 64)
	occupy(0, 1, units.RAM, 48)
	occupy(1, 0, units.RAM, 32)
	occupy(1, 1, units.RAM, 48)
	occupy(0, 0, units.Storage, 512)
	occupy(0, 1, units.Storage, 512)
	occupy(1, 0, units.Storage, 256)
	return st
}

func typicalVM() workload.VM {
	// The paper's "typical VM": 8 cores, 16 GB RAM, 128 GB storage.
	return workload.VM{ID: 0, Lifetime: 100, Req: units.Vec(8, 16, 128)}
}

func defaultState(t testing.TB) *sched.State {
	t.Helper()
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNames(t *testing.T) {
	st := defaultState(t)
	if NewNULB(st).Name() != "NULB" {
		t.Error("NULB name")
	}
	if NewNALB(st).Name() != "NALB" {
		t.Error("NALB name")
	}
}

// Toy example 1 (§4.3.1): on the Table 3 state, NULB must pick CPU/RAM/STO
// box ids (2, 1, 2) — CPU and storage from rack 1 but RAM from rack 0 —
// resulting in an inter-rack assignment.
func TestToyExample1NULB(t *testing.T) {
	st := toyState(t)
	nulb := NewNULB(st)
	a, err := nulb.Schedule(typicalVM())
	if err != nil {
		t.Fatalf("NULB should schedule the toy VM: %v", err)
	}
	// CR: CPU 8/96 ≈ 0.08, RAM 16/64 = 0.25, STO 128/768 ≈ 0.17 → RAM
	// scarcest, first box with 16 GB free is (r0, b1) = global RAM id 1.
	if a.RAM.Box.Rack() != 0 || a.RAM.Box.KindIndex() != 1 {
		t.Errorf("RAM at r%d/k%d, want r0/k1", a.RAM.Box.Rack(), a.RAM.Box.KindIndex())
	}
	// BFS from rack 0 finds no CPU/STO there → rack 1, first boxes.
	if a.CPU.Box.Rack() != 1 || a.CPU.Box.KindIndex() != 0 {
		t.Errorf("CPU at r%d/k%d, want r1/k0", a.CPU.Box.Rack(), a.CPU.Box.KindIndex())
	}
	if a.STO.Box.Rack() != 1 || a.STO.Box.KindIndex() != 0 {
		t.Errorf("STO at r%d/k%d, want r1/k0", a.STO.Box.Rack(), a.STO.Box.KindIndex())
	}
	if !a.InterRack() {
		t.Error("toy example 1 NULB assignment must be inter-rack")
	}
	if a.CPURAMLatency() != sched.InterRackCPURAMLatency {
		t.Error("CPU-RAM latency must be the inter-rack 330ns")
	}
}

// NALB makes the same compute choice on the toy state (all uplinks are
// equally free, so the bandwidth reordering is a no-op).
func TestToyExample1NALB(t *testing.T) {
	st := toyState(t)
	a, err := NewNALB(st).Schedule(typicalVM())
	if err != nil {
		t.Fatal(err)
	}
	if a.RAM.Box.Rack() != 0 || a.CPU.Box.Rack() != 1 || a.STO.Box.Rack() != 1 {
		t.Error("NALB should mirror NULB on a fresh fabric")
	}
	if !a.InterRack() {
		t.Error("NALB toy assignment must be inter-rack")
	}
}

func TestNULBPrefersSameRackByBFS(t *testing.T) {
	st := defaultState(t)
	nulb := NewNULB(st)
	a, err := nulb.Schedule(typicalVM())
	if err != nil {
		t.Fatal(err)
	}
	// Fresh cluster: everything fits in rack 0 → intra-rack.
	if a.InterRack() {
		t.Error("fresh cluster placement should be intra-rack")
	}
	if a.CPU.Box.Rack() != 0 || a.RAM.Box.Rack() != 0 || a.STO.Box.Rack() != 0 {
		t.Error("BFS should stay in the scarce box's rack")
	}
}

func TestNULBGoesInterRackWhenHomeRackExhausted(t *testing.T) {
	st := defaultState(t)
	// Fill rack 0's CPU boxes completely; RAM is scarcest for the typical
	// VM and rack 0's RAM is free, so the scarce box lands in rack 0 and
	// CPU must come from rack 1.
	for _, b := range st.Cluster.Rack(0).BoxesOf(units.CPU) {
		if _, err := st.Cluster.Allocate(b, b.Free()); err != nil {
			t.Fatal(err)
		}
	}
	a, err := NewNULB(st).Schedule(typicalVM())
	if err != nil {
		t.Fatal(err)
	}
	if a.RAM.Box.Rack() != 0 {
		t.Errorf("scarce RAM should be in rack 0, got %d", a.RAM.Box.Rack())
	}
	if a.CPU.Box.Rack() != 1 {
		t.Errorf("CPU should spill to rack 1, got %d", a.CPU.Box.Rack())
	}
	if !a.InterRack() {
		t.Error("assignment must be inter-rack")
	}
}

func TestNULBDropsWhenNoCapacity(t *testing.T) {
	st := toyState(t)
	nulb := NewNULB(st)
	// 48 cores fit nowhere (max box free is 64... it fits); use RAM 33 GB
	// — the largest RAM availability is 32 GB.
	vm := workload.VM{ID: 9, Lifetime: 1, Req: units.Vec(8, 33, 128)}
	if _, err := nulb.Schedule(vm); err == nil {
		t.Error("VM needing 33 GB RAM in one box must drop")
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNULBDropsOnEmptyRequest(t *testing.T) {
	st := defaultState(t)
	vm := workload.VM{ID: 1, Lifetime: 1, Req: units.Vec(0, 0, 0)}
	if _, err := NewNULB(st).Schedule(vm); err == nil {
		t.Error("empty request should drop")
	}
}

func TestMaskedScheduleRestrictsRacks(t *testing.T) {
	st := defaultState(t)
	nulb := NewNULBMasked(st)
	// Only rack 3 allowed for every resource.
	var masks Masks
	for _, r := range units.Resources() {
		mask := make(sched.RackMask, st.Cluster.NumRacks())
		mask[3] = true
		masks[r] = mask
	}
	a, err := nulb.ScheduleMasked(typicalVM(), masks)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []topology.Placement{a.CPU, a.RAM, a.STO} {
		if p.Box.Rack() != 3 {
			t.Errorf("placement escaped the mask to rack %d", p.Box.Rack())
		}
	}
}

func TestMaskedScheduleSplitRacks(t *testing.T) {
	st := defaultState(t)
	nulb := NewNULBMasked(st)
	var masks Masks
	cpuMask := make(sched.RackMask, st.Cluster.NumRacks())
	cpuMask[5] = true
	ramMask := make(sched.RackMask, st.Cluster.NumRacks())
	ramMask[7] = true
	masks[units.CPU] = cpuMask
	masks[units.RAM] = ramMask
	// Storage unrestricted.
	a, err := nulb.ScheduleMasked(typicalVM(), masks)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU.Box.Rack() != 5 || a.RAM.Box.Rack() != 7 {
		t.Errorf("CPU r%d RAM r%d, want r5/r7", a.CPU.Box.Rack(), a.RAM.Box.Rack())
	}
	if !a.InterRack() {
		t.Error("split masks force inter-rack")
	}
}

func TestMaskedScheduleFailsWhenMaskEmpty(t *testing.T) {
	st := defaultState(t)
	nulb := NewNULBMasked(st)
	var masks Masks
	masks[units.RAM] = make(sched.RackMask, st.Cluster.NumRacks()) // all false
	if _, err := nulb.ScheduleMasked(typicalVM(), masks); err == nil {
		t.Error("empty RAM mask should drop the VM")
	}
}

func TestNALBSpreadsNetworkLoad(t *testing.T) {
	st := defaultState(t)
	nalb := NewNALB(st)
	// Schedule several VMs; NALB's MaxAvail policy must never load one
	// uplink while an emptier one exists on the same box group.
	for i := 0; i < 10; i++ {
		vm := workload.VM{ID: i, Lifetime: 1, Req: units.Vec(8, 16, 128)}
		if _, err := nalb.Schedule(vm); err != nil {
			t.Fatalf("VM %d: %v", i, err)
		}
	}
	// Inspect rack 0's first RAM box: flows should be spread, i.e. no
	// uplink should carry more than ceil(total/uplinks)+demand.
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNULBReleaseRestoresState(t *testing.T) {
	st := defaultState(t)
	nulb := NewNULB(st)
	cpuFree := st.Cluster.TotalFree(units.CPU)
	intraFree := st.Fabric.IntraRackFree()
	a, err := nulb.Schedule(typicalVM())
	if err != nil {
		t.Fatal(err)
	}
	nulb.Release(a)
	if st.Cluster.TotalFree(units.CPU) != cpuFree {
		t.Error("compute not restored")
	}
	if st.Fabric.IntraRackFree() != intraFree {
		t.Error("bandwidth not restored")
	}
}

func TestSchedulersFillWholeCluster(t *testing.T) {
	// Scheduling CPU-box-sized VMs until the first drop must consume the
	// whole CPU plane without ever corrupting state. (A full 512 GB RAM
	// box would need a 640 Gb/s flow — more than one 200 Gb/s link — so
	// the RAM component stays link-feasible at 32 GB.)
	st := defaultState(t)
	nulb := NewNULB(st)
	n := 0
	for {
		vm := workload.VM{ID: n, Lifetime: 1, Req: units.Vec(512, 32, 8192)}
		if _, err := nulb.Schedule(vm); err != nil {
			break
		}
		n++
		if n > 1000 {
			t.Fatal("runaway scheduling loop")
		}
	}
	// 18 racks x 2 CPU boxes (and exactly as many storage boxes) = 36.
	if n != 36 {
		t.Errorf("scheduled %d box-sized VMs, want 36", n)
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// NALB's distinguishing behavior: the BFS prefers candidate boxes with
// more available uplink bandwidth, where NULB takes the first in index
// order.
func TestNALBPrefersHigherBandwidthBox(t *testing.T) {
	mkState := func() *sched.State {
		st := defaultState(t)
		// Drain most uplink bandwidth of rack 0's first RAM box using raw
		// flows to a storage box.
		rack := st.Cluster.Rack(0)
		ram0 := rack.BoxesOf(units.RAM)[0]
		sto := rack.BoxesOf(units.Storage)[1]
		for i := 0; i < st.Fabric.Config().BoxUplinks-1; i++ {
			if _, err := st.Fabric.AllocateFlow(ram0, sto, 200, network.FirstFit); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	// CPU is the scarcest resource for this request, so the scarce box is
	// a CPU box in rack 0 and RAM is found by BFS.
	vm := workload.VM{ID: 0, Lifetime: 1, Req: units.Vec(32, 4, 64)}

	st := mkState()
	a, err := NewNULB(st).Schedule(vm)
	if err != nil {
		t.Fatal(err)
	}
	if a.RAM.Box.KindIndex() != 0 {
		t.Errorf("NULB should take the first RAM box, got %d", a.RAM.Box.KindIndex())
	}

	st2 := mkState()
	a2, err := NewNALB(st2).Schedule(vm)
	if err != nil {
		t.Fatal(err)
	}
	if a2.RAM.Box.KindIndex() != 1 {
		t.Errorf("NALB should prefer the bandwidth-rich RAM box, got %d", a2.RAM.Box.KindIndex())
	}
}

// NALB's network phase spreads flows across uplinks (MaxAvail), NULB
// packs them (FirstFit).
func TestNetworkPhasePolicies(t *testing.T) {
	vm := workload.VM{ID: 0, Lifetime: 1, Req: units.Vec(8, 16, 128)}

	st := defaultState(t)
	nulb := NewNULB(st)
	a1, err := nulb.Schedule(vm)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := nulb.Schedule(workload.VM{ID: 1, Lifetime: 1, Req: vm.Req})
	if err != nil {
		t.Fatal(err)
	}
	// First-fit: both flows pack onto uplink #0.
	if a1.CPURAMFlow.Links()[0].Index() != 0 || a2.CPURAMFlow.Links()[0].Index() != 0 {
		t.Error("NULB should pack the first uplink")
	}

	st2 := defaultState(t)
	nalb := NewNALB(st2)
	b1, err := nalb.Schedule(vm)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := nalb.Schedule(workload.VM{ID: 1, Lifetime: 1, Req: vm.Req})
	if err != nil {
		t.Fatal(err)
	}
	// Max-avail: the second flow lands on a different (fresh) uplink.
	if b1.CPURAMFlow.Links()[0].Index() == b2.CPURAMFlow.Links()[0].Index() &&
		b1.CPU.Box == b2.CPU.Box {
		t.Error("NALB should spread flows across uplinks")
	}
}
