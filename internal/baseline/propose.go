// Optimistic propose support (DESIGN.md §12): the single-rack, read-only
// form of the Zervas placement, used by the concurrent agent pool so the
// NULB/NALB baselines scale with RISA in the agents comparison.
package baseline

import (
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/units"
	"risa/internal/workload"
)

func init() {
	sched.Register("NULB", func(st *sched.State, _ sched.Options) sched.Scheduler { return NewNULB(st) })
	sched.Register("NALB", func(st *sched.State, _ sched.Options) sched.Scheduler { return NewNALB(st) })
}

// Compile-time check: the agent pool drives zervas through Propose.
var _ sched.Proposer = (*zervas)(nil)

// Propose implements sched.Proposer: Algorithm 2's placement restricted
// to the case where every component lands in the scarce box's home rack,
// computed without mutating shared state. The scarce resource takes the
// first fitting box among the shard's racks (the same global-order scan
// as Schedule, shard-masked); the remaining resources must be satisfied
// inside that home rack under the usual level ordering (NALB's
// descending-uplink reorder included). A VM whose placement would have
// to leave the home rack returns ok=false and is scheduled serially —
// the BFS over other racks has no single-rack claim to make.
//
// Like every Proposer, this requires the cluster's lazy index tiers to
// be settled first (Cluster.Settle); NextRackWith and the level scans
// are pure reads then.
func (z *zervas) Propose(vm workload.VM, shard sched.RackMask) (sched.Proposal, bool) {
	var p sched.Proposal
	cl := z.st.Cluster
	resMax, ok := sched.ScarcestResource(cl, vm.Req)
	if !ok {
		return p, false
	}
	first := z.firstBox(resMax, vm.Req[resMax], shard)
	if first == nil {
		return p, false
	}
	home := first.Rack()
	var boxes sched.BoxTriple
	boxes[resMax] = first
	for _, r := range units.Resources() {
		if r == resMax || vm.Req[r] == 0 {
			continue
		}
		b := z.pickFromLevel(cl.Rack(home), r, vm.Req[r])
		if b == nil {
			return p, false // needs a second rack: serial territory
		}
		boxes[r] = b
	}
	policy := network.FirstFit
	if z.nalb {
		policy = network.MaxAvail
	}
	cfg := z.st.Units()
	fab := z.st.Fabric
	if boxes[units.CPU] != nil && boxes[units.RAM] != nil &&
		!fab.FlowFeasible(boxes[units.CPU], boxes[units.RAM], cfg.CPURAMDemand(vm.Req), policy) {
		return p, false
	}
	if boxes[units.RAM] != nil && boxes[units.Storage] != nil &&
		!fab.FlowFeasible(boxes[units.RAM], boxes[units.Storage], cfg.RAMSTODemand(vm.Req), policy) {
		return p, false
	}
	p = sched.Proposal{VM: vm, Boxes: boxes, Policy: policy}
	p.Claim(home, cl.RackGen(home), fab.RackGen(home))
	return p, true
}
