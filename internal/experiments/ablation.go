package experiments

import (
	"fmt"
	"strings"

	"risa/internal/core"
	"risa/internal/metrics"
	"risa/internal/units"
	"risa/internal/workload"
)

// Ablations beyond the paper (DESIGN.md §6). Each probes one design choice
// RISA makes, holding everything else fixed.

// RoundRobinAblation compares RISA with and without the round-robin rack
// rotation: the rotation is what keeps rack utilization uniform.
type RoundRobinAblation struct {
	// RackRAMStdDev is the standard deviation of per-rack RAM utilization
	// (percent) after statically placing the fill set.
	RackRAMStdDev map[string]float64
	// InterRack counts inter-rack placements during the fill.
	InterRack map[string]int
}

// RunRoundRobinAblation statically fills a fresh cluster with n typical
// VMs under both variants and measures the per-rack load spread.
func (s Setup) RunRoundRobinAblation(n int) (*RoundRobinAblation, error) {
	out := &RoundRobinAblation{
		RackRAMStdDev: make(map[string]float64),
		InterRack:     make(map[string]int),
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"RISA", core.Options{}},
		{"RISA-no-RR", core.Options{DisableRoundRobin: true, Name: "RISA-no-RR"}},
	}
	for _, v := range variants {
		st, err := s.NewState()
		if err != nil {
			return nil, err
		}
		r := core.NewWithOptions(st, v.opts)
		inter := 0
		for i := 0; i < n; i++ {
			vm := workload.VM{ID: i, Lifetime: 1, Req: units.Vec(8, 16, 128)}
			a, err := r.Schedule(vm)
			if err != nil {
				continue // full racks are part of the point
			}
			if a.InterRack() {
				inter++
			}
		}
		var s metrics.Summary
		for _, rack := range st.Cluster.Racks() {
			used := float64(rack.BoxesOf(units.RAM)[0].Capacity()*2 - rack.Free(units.RAM))
			cap := float64(rack.BoxesOf(units.RAM)[0].Capacity() * 2)
			s.Observe(used / cap * 100)
		}
		out.RackRAMStdDev[v.name] = s.StdDev()
		out.InterRack[v.name] = inter
	}
	return out, nil
}

// Render draws the ablation.
func (a *RoundRobinAblation) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: round-robin rack selection (static fill of typical VMs)\n")
	for _, name := range []string{"RISA", "RISA-no-RR"} {
		fmt.Fprintf(&b, "  %-11s per-rack RAM utilization stddev %6.2f pp, inter-rack %d\n",
			name, a.RackRAMStdDev[name], a.InterRack[name])
	}
	b.WriteString("  Round-robin keeps rack load uniform; pinning the cursor skews it.\n")
	return b.String()
}

// PackingAblation compares the four intra-rack packing policies on the
// synthetic workload.
type PackingAblation struct {
	Results map[string]packingOutcome
	Order   []string
}

type packingOutcome struct {
	Scheduled, Dropped, InterRack int
}

// RunPackingAblation replays the synthetic workload through RISA variants
// that differ only in box packing.
func (s Setup) RunPackingAblation() (*PackingAblation, error) {
	tr, err := s.SyntheticTrace()
	if err != nil {
		return nil, err
	}
	out := &PackingAblation{Results: make(map[string]packingOutcome)}
	for _, p := range []core.BoxPolicy{core.NextFit, core.BestFit, core.FirstFit, core.WorstFit} {
		name := p.String()
		st, err := s.NewState()
		if err != nil {
			return nil, err
		}
		sch := core.NewWithOptions(st, core.Options{Packing: p, Name: name})
		res, err := s.runOn(st, sch, tr)
		if err != nil {
			return nil, err
		}
		out.Results[name] = packingOutcome{
			Scheduled: res.Scheduled, Dropped: res.Dropped, InterRack: res.InterRack,
		}
		out.Order = append(out.Order, name)
	}
	return out, nil
}

// Render draws the ablation.
func (a *PackingAblation) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: intra-rack packing policy (synthetic workload)\n")
	for _, name := range a.Order {
		o := a.Results[name]
		fmt.Fprintf(&b, "  %-9s scheduled %4d  dropped %3d  inter-rack %3d\n",
			name, o.Scheduled, o.Dropped, o.InterRack)
	}
	return b.String()
}

// UplinkSweep shows where fabric provisioning starts to gate scheduling:
// with few box uplinks, first-fit placement (NULB) strands compute behind
// saturated links and drops VMs, while RISA's rack rotation spreads flows.
type UplinkSweep struct {
	Uplinks []int
	// Dropped[alg][i] is the drop count at Uplinks[i].
	Dropped map[string][]int
}

// RunUplinkSweep replays Azure-3000 at several box-uplink counts; the
// uplink × algorithm grid runs on the worker pool.
func (s Setup) RunUplinkSweep(uplinks []int) (*UplinkSweep, error) {
	out := &UplinkSweep{Uplinks: uplinks, Dropped: make(map[string][]int)}
	algs := []string{"NULB", "RISA"}
	tr, err := s.AzureTrace(workload.Azure3000)
	if err != nil {
		return nil, err
	}
	var jobs []Job
	for _, u := range uplinks {
		setup := s
		setup.Network.BoxUplinks = u
		for _, alg := range algs {
			jobs = append(jobs, Job{Setup: setup, Algorithm: alg, Trace: tr})
		}
	}
	outcomes, err := Engine{}.RunChecked(jobs)
	if err != nil {
		return nil, err
	}
	for _, o := range outcomes {
		out.Dropped[o.Job.Algorithm] = append(out.Dropped[o.Job.Algorithm], o.Result.Dropped)
	}
	return out, nil
}

// Render draws the sweep.
func (a *UplinkSweep) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: box-uplink provisioning sweep (Azure-3000, dropped VMs)\n")
	b.WriteString("  uplinks/box ")
	for _, u := range a.Uplinks {
		fmt.Fprintf(&b, "%8d", u)
	}
	b.WriteString("\n")
	for _, alg := range []string{"NULB", "RISA"} {
		fmt.Fprintf(&b, "  %-11s ", alg)
		for _, d := range a.Dropped[alg] {
			fmt.Fprintf(&b, "%8d", d)
		}
		b.WriteString("\n")
	}
	b.WriteString("  Under-provisioned fabrics punish bandwidth-oblivious first-fit packing.\n")
	return b.String()
}

// AlphaSweep varies the MRR cell-sharing constant α of Equation 1 and
// reports the resulting peak optical power for RISA on Azure-3000.
type AlphaSweep struct {
	Alphas []float64
	PeakKW []float64
}

// RunAlphaSweep executes the sweep; one pooled job per α.
func (s Setup) RunAlphaSweep(alphas []float64) (*AlphaSweep, error) {
	out := &AlphaSweep{Alphas: alphas}
	tr, err := s.AzureTrace(workload.Azure3000)
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, len(alphas))
	for i, alpha := range alphas {
		setup := s
		setup.Optics.Alpha = alpha
		jobs[i] = Job{Setup: setup, Algorithm: "RISA", Trace: tr}
	}
	outcomes, err := Engine{}.RunChecked(jobs)
	if err != nil {
		return nil, err
	}
	for _, o := range outcomes {
		out.PeakKW = append(out.PeakKW, o.Result.PeakPowerW/1000)
	}
	return out, nil
}

// Render draws the sweep.
func (a *AlphaSweep) Render() string {
	var bars []metrics.Bar
	for i, alpha := range a.Alphas {
		bars = append(bars, metrics.Bar{
			Label: fmt.Sprintf("α=%.2f", alpha),
			Value: a.PeakKW[i],
		})
	}
	return metrics.RenderBars(
		"Ablation: cell-sharing constant α vs peak optical power (RISA, Azure-3000)",
		bars, 40, "%.3f kW")
}

// BoxMixAblation varies the per-rack box mix and reports drops and
// inter-rack counts for NULB and RISA on Azure-3000 — the per-rack
// resource balance is what determines how often a single rack can host a
// whole VM.
type BoxMixAblation struct {
	Mixes   []string
	Dropped map[string][]int
	Inter   map[string][]int
}

// RunBoxMixAblation executes the ablation over {CPU,RAM,STO} box counts.
func (s Setup) RunBoxMixAblation() (*BoxMixAblation, error) {
	mixes := []struct {
		cpu, ram, sto int
	}{{2, 2, 2}, {1, 2, 3}, {2, 1, 3}, {3, 2, 1}}
	out := &BoxMixAblation{
		Dropped: make(map[string][]int),
		Inter:   make(map[string][]int),
	}
	tr, err := s.AzureTrace(workload.Azure3000)
	if err != nil {
		return nil, err
	}
	var jobs []Job
	for _, mix := range mixes {
		setup := s
		setup.Topology.CPUBoxes = mix.cpu
		setup.Topology.RAMBoxes = mix.ram
		setup.Topology.STOBoxes = mix.sto
		out.Mixes = append(out.Mixes, fmt.Sprintf("%dC/%dR/%dS", mix.cpu, mix.ram, mix.sto))
		for _, alg := range []string{"NULB", "RISA"} {
			jobs = append(jobs, Job{Setup: setup, Algorithm: alg, Trace: tr})
		}
	}
	outcomes, err := Engine{}.RunChecked(jobs)
	if err != nil {
		return nil, err
	}
	for _, o := range outcomes {
		out.Dropped[o.Job.Algorithm] = append(out.Dropped[o.Job.Algorithm], o.Result.Dropped)
		out.Inter[o.Job.Algorithm] = append(out.Inter[o.Job.Algorithm], o.Result.InterRack)
	}
	return out, nil
}

// Render draws the ablation.
func (a *BoxMixAblation) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: per-rack box mix (Azure-3000; dropped / inter-rack VMs)\n")
	b.WriteString("  mix         ")
	for _, m := range a.Mixes {
		fmt.Fprintf(&b, "%14s", m)
	}
	b.WriteString("\n")
	for _, alg := range []string{"NULB", "RISA"} {
		fmt.Fprintf(&b, "  %-11s ", alg)
		for i := range a.Mixes {
			fmt.Fprintf(&b, "%7d/%6d", a.Dropped[alg][i], a.Inter[alg][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}
