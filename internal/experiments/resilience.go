package experiments

import (
	"fmt"
	"strings"

	"risa/internal/faults"
	"risa/internal/sim"
	"risa/internal/workload"
)

// Resilience is an extension experiment beyond the paper: a whole rack
// fails mid-run (all of its boxes at once, a quarter of the way into the
// arrival window) and is repaired halfway through. VMs already on the
// rack keep running (their circuits are established); the schedulers
// must route *new* arrivals around the hole. The question is whether
// RISA's pool tracking degrades more gracefully than the baselines'
// first-fit search.
//
// The outage is expressed as a faults.Plan (the whole-rack special case
// faults.RackFailure) consumed by the simulator's fault event loop —
// the same abstraction the stochastic `-exp faults` availability ladder
// generates plans for. The plan path replays bit-identically to the
// injection closures this experiment used before the fault subsystem
// existed (asserted by sim's TestRunFaultPlanMatchesInjections).
type Resilience struct {
	FailedRack     int
	FailAt, HealAt int64
	// Plan is the outage schedule every faulty run consumes.
	Plan *faults.Plan
	// Healthy and Faulty hold per-algorithm results without and with the
	// injected failure.
	Healthy, Faulty map[string]*sim.Result
}

// RunResilience executes the experiment on Azure-3000.
func (s Setup) RunResilience() (*Resilience, error) {
	tr, err := s.AzureTrace(workload.Azure3000)
	if err != nil {
		return nil, err
	}
	lastArrival := tr.VMs[tr.Len()-1].Arrival
	out := &Resilience{
		FailedRack: 0,
		FailAt:     lastArrival / 4,
		HealAt:     lastArrival / 2,
	}
	out.Plan = faults.RackFailure(out.FailedRack, out.FailAt, out.HealAt)
	out.Healthy, err = s.RunAll(tr)
	if err != nil {
		return nil, err
	}
	out.Faulty = make(map[string]*sim.Result, len(Algorithms))
	faultyResults := make([]*sim.Result, len(Algorithms))
	errs := make([]error, len(Algorithms))
	Engine{}.ForEach(len(Algorithms), func(i int) {
		faultyResults[i], errs[i] = s.runFaulty(Algorithms[i], tr, out.Plan)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s under the rack outage: %w", Algorithms[i], err)
		}
		out.Faulty[Algorithms[i]] = faultyResults[i]
	}
	return out, nil
}

// runFaulty replays the trace through one algorithm on a fresh
// datacenter consuming the outage plan.
func (s Setup) runFaulty(algorithm string, tr *workload.Trace, plan *faults.Plan) (*sim.Result, error) {
	st, err := s.NewState()
	if err != nil {
		return nil, err
	}
	sch, err := NewScheduler(algorithm, st)
	if err != nil {
		return nil, err
	}
	runner, err := sim.NewRunner(st, sch, sim.Config{Faults: plan})
	if err != nil {
		return nil, err
	}
	return runner.Run(tr)
}

// Render draws the comparison.
func (r *Resilience) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: rack %d fails at t=%d, repaired at t=%d (Azure-3000)\n",
		r.FailedRack, r.FailAt, r.HealAt)
	fmt.Fprintf(&b, "  %-8s %18s %18s\n", "algo", "healthy drop/inter", "faulty drop/inter")
	for _, alg := range Algorithms {
		h, f := r.Healthy[alg], r.Faulty[alg]
		fmt.Fprintf(&b, "  %-8s %10d/%7d %10d/%7d\n",
			alg, h.Dropped, h.InterRack, f.Dropped, f.InterRack)
	}
	b.WriteString("  All schedulers route new arrivals around the failed rack (drops only\n")
	b.WriteString("  appear once the remaining 17 racks cannot absorb the load). RISA's\n")
	b.WriteString("  pool simply stops offering the failed rack and stays at zero\n")
	b.WriteString("  inter-rack placements throughout.\n")
	return b.String()
}
