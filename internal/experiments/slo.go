// The SLO ladder (`-exp slo`): priority tiers and preemption under the
// availability ladder's fault regimes. Every cell runs the churn
// experiment's controlled stream with a tier mix stamped on arrivals,
// displaced-VM recovery, the retry queue and preemption all on, then
// reports per-tier acceptance — the question the ladder answers is
// whether preemption holds tier 0's availability through storms that
// visibly dent the lower tiers.
package experiments

import (
	"fmt"
	"strings"

	"risa/internal/faults"
	"risa/internal/sim"
	"risa/internal/workload"
)

// SLOTargetPct is the headline availability objective the ladder grades
// tier 0 against: accepted/arrivals over the measured phase, in percent.
const SLOTargetPct = 99.9

// SLOConfig parameterizes the `-exp slo` priority/preemption ladder.
type SLOConfig struct {
	// Arrivals caps each cell's arrival budget (default 100 000 — the
	// Duration cap below usually binds first).
	Arrivals int
	// Duration is each cell's simulated-time cap and the fault plan's
	// generation horizon (default 50 000).
	Duration int64
	// Targets is the utilization axis as binding-occupancy fractions
	// (default 0.60 and 0.90).
	Targets []float64
	// Rungs is the fault axis (default DefaultFaultRungs).
	Rungs []FaultRung
	// MTTR overrides the default rungs' repair time (ignored when Rungs
	// is given explicitly).
	MTTR int64
	// Tiers is the priority mix stamped on arrivals (default
	// workload.DefaultTierMix).
	Tiers workload.TierMix
}

// SLOCell is one (fault rung, utilization target, algorithm) tiered
// steady-state run with preemption on.
type SLOCell struct {
	Rung      FaultRung
	Target    float64
	Algorithm string
	Result    *sim.SteadyState
}

// SLO is the full fault × utilization × algorithm grid of tiered runs.
type SLO struct {
	Setup    Setup
	Arrivals int
	Duration int64
	Mix      workload.TierMix
	Cells    []SLOCell // rung-major, then target, then Algorithms order
}

// RunSLO executes the SLO ladder: every fault rung at every utilization
// target under every algorithm, each cell a fresh datacenter consuming a
// tiered controlled stream with eviction, retry and preemption on. Plans
// and streams are seeded deterministically, so the grid is bit-identical
// regardless of the worker-pool width (wall-clock latency lines aside).
func (s Setup) RunSLO(cfg SLOConfig) (*SLO, error) {
	if cfg.Arrivals == 0 {
		cfg.Arrivals = 100000
	}
	if cfg.Duration == 0 {
		cfg.Duration = 50000
	}
	if cfg.Arrivals < 0 || cfg.Duration < 0 {
		return nil, fmt.Errorf("experiments: negative SLO bounds (arrivals %d, duration %d)", cfg.Arrivals, cfg.Duration)
	}
	if len(cfg.Targets) == 0 {
		cfg.Targets = []float64{0.60, 0.90}
	}
	for _, target := range cfg.Targets {
		if target <= 0 {
			return nil, fmt.Errorf("experiments: SLO ladder target must be positive, got %g", target)
		}
	}
	if len(cfg.Rungs) == 0 {
		cfg.Rungs = DefaultFaultRungs(cfg.MTTR)
	}
	for _, r := range cfg.Rungs {
		if r.MTBF < 0 || (r.MTBF > 0 && r.MTTR <= 0) {
			return nil, fmt.Errorf("experiments: SLO rung %q has MTBF %d / MTTR %d", r.Label, r.MTBF, r.MTTR)
		}
	}
	if !cfg.Tiers.Enabled() {
		cfg.Tiers = workload.DefaultTierMix()
	}
	if err := cfg.Tiers.Validate(); err != nil {
		return nil, err
	}
	warmup, window := ChurnPhases(cfg.Duration)

	out := &SLO{Setup: s, Arrivals: cfg.Arrivals, Duration: cfg.Duration, Mix: cfg.Tiers}
	// One plan per rung, shared read-only across the rung's cells, like
	// the availability ladder.
	plans := make([]*faults.Plan, len(cfg.Rungs))
	for i, rung := range cfg.Rungs {
		var err error
		if plans[i], err = s.faultPlan(rung, cfg.Duration); err != nil {
			return nil, err
		}
	}
	out.Cells = make([]SLOCell, 0, len(cfg.Rungs)*len(cfg.Targets)*len(Algorithms))
	for _, rung := range cfg.Rungs {
		for _, target := range cfg.Targets {
			for _, alg := range Algorithms {
				out.Cells = append(out.Cells, SLOCell{Rung: rung, Target: target, Algorithm: alg})
			}
		}
	}
	streamCfg := sim.StreamConfig{
		Workload: sim.StreamWorkload{MaxArrivals: cfg.Arrivals, Duration: cfg.Duration},
		Windows:  sim.StreamWindows{Warmup: warmup, Window: window},
	}
	cellsPerRung := len(cfg.Targets) * len(Algorithms)

	errs := make([]error, len(out.Cells))
	Engine{}.ForEach(len(out.Cells), func(i int) {
		cell := &out.Cells[i]
		runner, stream, err := s.newFaultCell(cell.Algorithm, cell.Target, cfg.Tiers)
		if err != nil {
			errs[i] = err
			return
		}
		cellCfg := streamCfg
		plan := plans[i/cellsPerRung]
		// Preemption requires the retry queue; eviction only engages when
		// the rung has a plan to displace anyone.
		cellCfg.Faults = sim.StreamFaults{Plan: plan, Evict: plan != nil, Retry: true, Preempt: true}
		cell.Result, errs[i] = runner.RunStream(stream, cellCfg)
	})
	for i, err := range errs {
		if err != nil {
			cell := out.Cells[i]
			return nil, fmt.Errorf("%s at rung %s target %.0f%%: %w", cell.Algorithm, cell.Rung.Label, cell.Target*100, err)
		}
	}
	return out, nil
}

// worstTierWindow returns the minimum per-window acceptance of a tier
// over the complete windows (100 when the tier saw no windowed arrivals).
func worstTierWindow(windows []sim.WindowStats, tier int) float64 {
	min := 100.0
	for _, w := range windows {
		if w.TierArrivals[tier] == 0 {
			continue
		}
		if a := w.TierAcceptancePct(tier); a < min {
			min = a
		}
	}
	return min
}

// Render draws the SLO ladder as one table per (rung, target): per-tier
// acceptance with tier 0 graded against SLOTargetPct, preemption volume,
// and tier 0's worst complete window. Per-tier decision latency follows
// on lines prefixed "wall " — they are wall-clock observations, the only
// non-deterministic part of the report, so determinism checks can strip
// them with a one-word filter.
func (o *SLO) Render() string {
	var b strings.Builder
	var w [workload.NumTiers]float64
	copy(w[:], o.Mix.Weights[:])
	fmt.Fprintf(&b, "SLO ladder: priority mix %.0f/%.0f/%.0f%% (tier 0 highest) × fault rung × utilization, %d racks, %d tu per cell\n",
		w[0]*100, w[1]*100, w[2]*100, o.Setup.Topology.Racks, o.Duration)
	b.WriteString("(evict+retry+preempt on everywhere; preemption displaces strictly-lower-tier VMs when a higher-tier arrival\n")
	fmt.Fprintf(&b, " fails both placement tiers; t0 graded against a %.1f%% acceptance SLO; worst-win is tier 0's worst complete window)\n", SLOTargetPct)
	for i, cell := range o.Cells {
		if cell.Algorithm == Algorithms[0] {
			if i > 0 {
				b.WriteString("\n")
			}
			if cell.Rung.MTBF == 0 {
				fmt.Fprintf(&b, "rung %-6s (no faults) · target %.0f%%\n", cell.Rung.Label, cell.Target*100)
			} else {
				fmt.Fprintf(&b, "rung %-6s (box MTBF %d, MTTR %d) · target %.0f%%\n",
					cell.Rung.Label, cell.Rung.MTBF, cell.Rung.MTTR, cell.Target*100)
			}
			fmt.Fprintf(&b, "  %-8s %8s %8s %8s %5s %9s %9s %9s %11s\n",
				"alg", "t0-acc%", "t1-acc%", "t2-acc%", "slo", "preempted", "recovered", "lost", "t0worst-win")
		}
		r := cell.Result
		verdict := "MISS"
		t0 := tierAcceptPct(&r.Tiers[0])
		if t0 >= SLOTargetPct {
			verdict = "meet"
		}
		fmt.Fprintf(&b, "  %-8s %8.3f %8.3f %8.3f %5s %9d %9d %9d %11.1f\n",
			cell.Algorithm, t0, tierAcceptPct(&r.Tiers[1]), tierAcceptPct(&r.Tiers[2]),
			verdict, r.Preempted, r.PreemptRecovered, r.PreemptLost,
			worstTierWindow(r.Windows, 0))
		for t := range r.Tiers {
			ts := &r.Tiers[t]
			if ts.LatencySamples == 0 {
				continue
			}
			fmt.Fprintf(&b, "wall   %s t%d decision p50/p95/p99 %s/%s/%s (%d samples)\n",
				cell.Algorithm, t, shortDur(ts.LatencyP50), shortDur(ts.LatencyP95), shortDur(ts.LatencyP99), ts.LatencySamples)
		}
	}
	return b.String()
}

// tierAcceptPct is a tier's measured acceptance percentage, 100 when the
// tier saw no measured arrivals.
func tierAcceptPct(ts *sim.TierStats) float64 {
	if ts.Arrivals == 0 {
		return 100
	}
	return float64(ts.Accepted) / float64(ts.Arrivals) * 100
}
