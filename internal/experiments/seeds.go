package experiments

import (
	"fmt"
	"strings"

	"risa/internal/metrics"
	"risa/internal/workload"
)

// SeedSweep measures how robust the headline comparison is to the
// workload seed: the paper reports single runs; this repeats Figure 5
// (synthetic) and Figure 7 (Azure-3000) across several seeds and reports
// mean ± stddev of the inter-rack metric per algorithm.
type SeedSweep struct {
	Seeds     []int64
	Synthetic map[string]*metrics.Summary // inter-rack count per algorithm
	Azure     map[string]*metrics.Summary // inter-rack percent per algorithm
}

// RunSeedSweep executes the sweep over the given seeds. The whole
// seed × algorithm × workload-family grid is flattened into one job list
// and run on the worker pool; observations are folded back in grid order,
// so the summaries are deterministic.
func (s Setup) RunSeedSweep(seeds []int64) (*SeedSweep, error) {
	out := &SeedSweep{
		Seeds:     seeds,
		Synthetic: make(map[string]*metrics.Summary),
		Azure:     make(map[string]*metrics.Summary),
	}
	for _, alg := range Algorithms {
		out.Synthetic[alg] = &metrics.Summary{}
		out.Azure[alg] = &metrics.Summary{}
	}
	azureBase := AzureSetup()
	azureBase.Network = s.Network
	var jobs []Job
	var synthetic []bool // per job: synthetic (true) or Azure (false)
	for _, seed := range seeds {
		synthSetup := s
		synthSetup.Seed = seed
		tr, err := synthSetup.SyntheticTrace()
		if err != nil {
			return nil, err
		}
		azureSetup := azureBase
		azureSetup.Seed = seed
		atr, err := azureSetup.AzureTrace(workload.Azure3000)
		if err != nil {
			return nil, err
		}
		for _, alg := range Algorithms {
			jobs = append(jobs, Job{Setup: synthSetup, Algorithm: alg, Trace: tr})
			synthetic = append(synthetic, true)
			jobs = append(jobs, Job{Setup: azureSetup, Algorithm: alg, Trace: atr})
			synthetic = append(synthetic, false)
		}
	}
	outcomes, err := Engine{}.RunChecked(jobs)
	if err != nil {
		return nil, err
	}
	for i, o := range outcomes {
		if synthetic[i] {
			out.Synthetic[o.Job.Algorithm].Observe(float64(o.Result.InterRack))
		} else {
			out.Azure[o.Job.Algorithm].Observe(o.Result.InterRackPct)
		}
	}
	return out, nil
}

// Render draws the robustness table.
func (sw *SeedSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Seed robustness over %d seeds %v\n", len(sw.Seeds), sw.Seeds)
	b.WriteString("  synthetic inter-rack count (Figure 5):\n")
	for _, alg := range Algorithms {
		s := sw.Synthetic[alg]
		fmt.Fprintf(&b, "    %-8s %7.1f ± %5.1f  [%g, %g]\n",
			alg, s.Mean(), s.StdDev(), s.Min(), s.Max())
	}
	b.WriteString("  Azure-3000 inter-rack percent (Figure 7):\n")
	for _, alg := range Algorithms {
		s := sw.Azure[alg]
		fmt.Fprintf(&b, "    %-8s %7.2f ± %5.2f %% [%g, %g]\n",
			alg, s.Mean(), s.StdDev(), s.Min(), s.Max())
	}
	b.WriteString("  The ordering (baselines ≫ RISA ≈ RISA-BF ≈ 0) holds for every seed.\n")
	return b.String()
}
