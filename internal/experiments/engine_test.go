package experiments

import (
	"strings"
	"testing"
)

// TestEngineDeterministicAcrossWidths re-runs the same algorithm grid
// serially and on a wide pool: every job builds its own State, so the
// results must be bit-identical whatever the parallelism.
func TestEngineDeterministicAcrossWidths(t *testing.T) {
	setup := DefaultSetup()
	tr, err := setup.SyntheticTrace()
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for _, alg := range Algorithms {
		jobs = append(jobs, Job{Setup: setup, Algorithm: alg, Trace: tr})
	}
	serial := Engine{Workers: 1}.Run(jobs)
	wide := Engine{Workers: 8}.Run(jobs)
	if err := FirstError(serial); err != nil {
		t.Fatal(err)
	}
	if err := FirstError(wide); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		s, w := serial[i].Result, wide[i].Result
		if s.Algorithm != jobs[i].Algorithm || w.Algorithm != jobs[i].Algorithm {
			t.Errorf("job %d: outcome order broken: %s / %s / want %s",
				i, s.Algorithm, w.Algorithm, jobs[i].Algorithm)
		}
		if s.Scheduled != w.Scheduled || s.Dropped != w.Dropped ||
			s.InterRack != w.InterRack || s.PeakPowerW != w.PeakPowerW {
			t.Errorf("%s: serial and parallel runs disagree: %+v vs %+v",
				jobs[i].Algorithm, s, w)
		}
	}
}

// TestEngineErrorIsolation checks that one bad job neither aborts the
// grid nor contaminates its neighbours, and that FirstError names it.
func TestEngineErrorIsolation(t *testing.T) {
	setup := DefaultSetup()
	tr, err := setup.SyntheticTrace()
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{Setup: setup, Algorithm: "RISA", Trace: tr},
		{Setup: setup, Algorithm: "no-such-algorithm", Trace: tr},
		{Setup: setup, Algorithm: "NULB", Trace: tr},
	}
	outcomes := Engine{Workers: 2}.Run(jobs)
	if outcomes[0].Err != nil || outcomes[0].Result == nil {
		t.Errorf("healthy job 0 failed: %v", outcomes[0].Err)
	}
	if outcomes[1].Err == nil {
		t.Error("bad algorithm should fail")
	}
	if outcomes[2].Err != nil || outcomes[2].Result == nil {
		t.Errorf("healthy job 2 failed: %v", outcomes[2].Err)
	}
	ferr := FirstError(outcomes)
	if ferr == nil || !strings.Contains(ferr.Error(), "no-such-algorithm") {
		t.Errorf("FirstError = %v, want the bad job named", ferr)
	}
}

// TestEngineEmptyGrid makes sure a zero-job grid is a no-op.
func TestEngineEmptyGrid(t *testing.T) {
	if out := (Engine{}).Run(nil); len(out) != 0 {
		t.Errorf("empty grid returned %d outcomes", len(out))
	}
	if err := FirstError(nil); err != nil {
		t.Errorf("FirstError(nil) = %v", err)
	}
}

// TestSetParallelism exercises the package-wide knob the -parallel flag
// drives.
func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Errorf("Parallelism = %d, want 3", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Errorf("default Parallelism = %d, want ≥ 1", got)
	}
	SetParallelism(-5)
	if got := Parallelism(); got < 1 {
		t.Errorf("negative SetParallelism should restore the default, got %d", got)
	}
}
