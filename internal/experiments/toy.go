package experiments

import (
	"fmt"
	"strings"

	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// ToyConfig is the Table 3 architecture of the paper's toy examples:
// 2 racks, 2 boxes of each resource per rack, boxes of 64 cores / 64 GB
// RAM / 512 GB storage.
func ToyConfig() topology.Config {
	return topology.Config{
		Racks: 2, CPUBoxes: 2, RAMBoxes: 2, STOBoxes: 2,
		BricksPerBox: 4, UnitsPerBrick: 4,
		Units: units.Config{CPUUnitCores: 4, RAMUnitGB: 4, STOUnitGB: 32},
	}
}

// NewToyState builds the exact Table 3 availability:
//
//	CPU:  id0 (r0,b0)=0    id1 (r0,b1)=0    id2 (r1,b0)=64   id3 (r1,b1)=32
//	RAM:  id0 (r0,b0)=0    id1 (r0,b1)=16   id2 (r1,b0)=32   id3 (r1,b1)=16
//	STO:  id0 (r0,b0)=0    id1 (r0,b1)=0    id2 (r1,b0)=256  id3 (r1,b1)=512
func NewToyState() (*sched.State, error) {
	st, err := sched.NewState(ToyConfig(), network.DefaultConfig())
	if err != nil {
		return nil, err
	}
	occupied := []struct {
		rack, box int
		kind      units.Resource
		amt       units.Amount
	}{
		{0, 0, units.CPU, 64}, {0, 1, units.CPU, 64}, {1, 1, units.CPU, 32},
		{0, 0, units.RAM, 64}, {0, 1, units.RAM, 48}, {1, 0, units.RAM, 32}, {1, 1, units.RAM, 48},
		{0, 0, units.Storage, 512}, {0, 1, units.Storage, 512}, {1, 0, units.Storage, 256},
	}
	for _, o := range occupied {
		if _, err := st.Cluster.Preoccupy(o.rack, o.box, o.kind, o.amt); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// placementID renders a placement as the paper's global per-resource box
// id: rack*2 + kind index (Table 3 numbers boxes 0..3 per resource).
func placementID(p topology.Placement) string {
	if p.IsZero() {
		return "-"
	}
	return fmt.Sprintf("%d", p.Box.Rack()*2+p.Box.KindIndex())
}

// RunToy1 replays toy example 1 (§4.3.1): the typical VM (8 cores, 16 GB,
// 128 GB) on the Table 3 state under NULB and RISA, reporting the chosen
// (CPU, RAM, STO) box ids — the paper expects (2,1,2) vs (2,2,2).
func RunToy1() (string, error) {
	var b strings.Builder
	b.WriteString("Toy example 1 (§4.3.1, Table 3): VM = 8 cores, 16 GB RAM, 128 GB storage\n")
	vm := workload.VM{ID: 0, Lifetime: 100, Req: units.Vec(8, 16, 128)}
	for _, alg := range []string{"NULB", "RISA"} {
		st, err := NewToyState()
		if err != nil {
			return "", err
		}
		sch, err := NewScheduler(alg, st)
		if err != nil {
			return "", err
		}
		a, err := sch.Schedule(vm)
		if err != nil {
			return "", fmt.Errorf("toy1 %s: %w", alg, err)
		}
		kind := "intra-rack"
		if a.InterRack() {
			kind = "INTER-rack"
		}
		fmt.Fprintf(&b, "  %-5s → (CPU, RAM, STO) box ids (%s, %s, %s)  [%s, CPU-RAM RTT %v]\n",
			alg, placementID(a.CPU), placementID(a.RAM), placementID(a.STO),
			kind, a.CPURAMLatency())
	}
	b.WriteString("  Paper: NULB (2, 1, 2) inter-rack; RISA (2, 2, 2) intra-rack.\n")
	return b.String(), nil
}

// RunToy2 replays toy example 2 (§4.3.2, Table 4): eight CPU-only VMs
// against rack 1 under RISA and RISA-BF.
func RunToy2() (string, error) {
	var b strings.Builder
	reqs := []units.Amount{15, 10, 30, 12, 5, 8, 16, 4}
	b.WriteString("Toy example 2 (§4.3.2, Table 4): CPU-only VMs 15,10,30,12,5,8,16,4 cores\n")
	b.WriteString("  VM id      ")
	for i := range reqs {
		fmt.Fprintf(&b, "%4d", i)
	}
	b.WriteString("\n")
	for _, alg := range []string{"RISA", "RISA-BF"} {
		st, err := NewToyState()
		if err != nil {
			return "", err
		}
		sch, err := NewScheduler(alg, st)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-9s  ", alg)
		for i, cores := range reqs {
			vm := workload.VM{ID: i, Lifetime: 100, Req: units.Vec(cores, 0, 0)}
			a, err := sch.Schedule(vm)
			if err != nil {
				b.WriteString("  NA")
				continue
			}
			fmt.Fprintf(&b, "%4d", a.CPU.Box.KindIndex())
		}
		b.WriteString("\n")
	}
	b.WriteString("  Paper Table 4: RISA 0,0,0,1,1,1,NA,1; RISA-BF 1,1,0,0,1,0,0*,0\n")
	b.WriteString("  (*the paper schedules VM 6 on box 0, but the requests sum to 100\n")
	b.WriteString("   cores against 96 available — arithmetically impossible; best-fit\n")
	b.WriteString("   must drop it. See DESIGN.md §4.)\n")
	return b.String(), nil
}
