package experiments

import (
	"fmt"
	"strings"

	"risa/internal/core"
	"risa/internal/workload"
)

// PoolOccupancy verifies the paper's §5.3 claim: "in practice,
// INTRA_RACK_POOL is not always empty. In fact for the simulation results
// discussed in preceding subsections, INTRA_RACK_POOL was never empty" —
// i.e. RISA never had to fall back to NULB on either workload family.
type PoolOccupancy struct {
	// Stats per workload name, for RISA and RISA-BF.
	Stats map[string]map[string]core.Stats
	Order []string
}

// RunPoolOccupancy replays the synthetic workload (under the §5.1 setup)
// and the three Azure workloads (under the §5.2 setup) through RISA and
// RISA-BF, collecting the decision-path counters.
func (s Setup) RunPoolOccupancy() (*PoolOccupancy, error) {
	out := &PoolOccupancy{Stats: make(map[string]map[string]core.Stats)}

	collect := func(setup Setup, tr *workload.Trace) error {
		per := make(map[string]core.Stats, 2)
		for _, variant := range []struct {
			name string
			bf   bool
		}{{"RISA", false}, {"RISA-BF", true}} {
			st, err := setup.NewState()
			if err != nil {
				return err
			}
			var r *core.RISA
			if variant.bf {
				r = core.NewBF(st)
			} else {
				r = core.New(st)
			}
			// Drive through the simulator so departures happen exactly
			// as in the headline experiments.
			if _, err := setup.runOn(st, r, tr); err != nil {
				return err
			}
			per[variant.name] = r.Stats()
		}
		out.Stats[tr.Name] = per
		out.Order = append(out.Order, tr.Name)
		return nil
	}

	synth, err := s.SyntheticTrace()
	if err != nil {
		return nil, err
	}
	if err := collect(s, synth); err != nil {
		return nil, err
	}
	azure := AzureSetupFrom(s)
	for _, sub := range workload.Subsets() {
		tr, err := azure.AzureTrace(sub)
		if err != nil {
			return nil, err
		}
		if err := collect(azure, tr); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Render draws the verification table.
func (p *PoolOccupancy) Render() string {
	var b strings.Builder
	b.WriteString("§5.3 check: INTRA_RACK_POOL occupancy during the headline runs\n")
	fmt.Fprintf(&b, "  %-12s %-8s %10s %10s %10s %10s %8s\n",
		"workload", "variant", "intra", "super-rack", "pool-empty", "net-gated", "dropped")
	for _, name := range p.Order {
		for _, variant := range []string{"RISA", "RISA-BF"} {
			s := p.Stats[name][variant]
			fmt.Fprintf(&b, "  %-12s %-8s %10d %10d %10d %10d %8d\n",
				name, variant, s.IntraRack, s.SuperRack, s.PoolEmpty, s.NetGated, s.Dropped)
		}
	}
	b.WriteString("  Paper claim: the pool was never empty. It holds exactly on every\n")
	b.WriteString("  Azure workload; on the synthetic workload RISA sees one pool-empty\n")
	b.WriteString("  arrival — the same VM that is its single inter-rack assignment in\n")
	b.WriteString("  Figure 5.\n")
	return b.String()
}
