// Package experiments contains one runner per table and figure of the
// RISA paper's evaluation (§4.3 and §5). Each runner builds a fresh
// datacenter, replays the right workload through the right algorithms,
// and returns a typed result that renders as an ASCII version of the
// paper's figure.
//
// The experiment index lives in DESIGN.md §5; measured-vs-paper numbers
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"risa/internal/network"
	"risa/internal/optics"
	"risa/internal/power"
	"risa/internal/sched"
	"risa/internal/sim"
	"risa/internal/topology"
	"risa/internal/workload"
)

// Algorithms lists the four schedulers in the paper's presentation order.
var Algorithms = []string{"NULB", "NALB", "RISA", "RISA-BF"}

// NewScheduler builds the named scheduler bound to st through the
// sched.New registry. The algorithms self-register from their packages'
// init functions (this package's use of core and baseline links all
// four in), so there is no switch-on-name construction here anymore.
func NewScheduler(name string, st *sched.State) (sched.Scheduler, error) {
	return sched.New(name, st, sched.Options{})
}

// Setup fixes the environment of one experiment: the cluster architecture,
// the fabric provisioning and the optical device parameters.
type Setup struct {
	Topology topology.Config
	Network  network.Config
	Optics   optics.Config
	Seed     int64
}

// DefaultSetup returns the Table 1 architecture with the calibrated fabric
// provisioning — 16 uplinks per box, so a box's aggregate bandwidth
// (3.2 Tb/s) never binds before its compute does and no algorithm drops
// VMs for lack of intra-rack links, matching the paper's zero-drop runs
// (see EXPERIMENTS.md for the calibration) — and the paper's optical
// constants.
func DefaultSetup() Setup {
	n := network.DefaultConfig()
	n.BoxUplinks = 16
	return Setup{
		Topology: topology.DefaultConfig(),
		Network:  n,
		Optics:   optics.DefaultConfig(),
		Seed:     1,
	}
}

// AzureSetup returns the configuration used for the practical-workload
// experiments (Figures 7-10 and 12): the DefaultSetup fabric with a
// storage-heavy rack composition of 1 CPU + 2 RAM + 3 storage boxes.
//
// The paper never states its rack composition. Its §5.1 synthetic
// utilization ratios pin equal CPU and RAM box counts (2/2/2 — used by
// the synthetic experiments), but under 2/2/2 the Azure request mix
// leaves every rack RAM-slack and the baselines co-locate ~97 % of VMs,
// nowhere near the paper's ≈50 % inter-rack rate. A storage-heavy rack
// tightens per-rack balance exactly where §5.2 says it matters ("storage
// is the most contended resource") and reproduces the shape of every
// §5.2 figure; the box-mix ablation shows both regimes side by side.
// See EXPERIMENTS.md for the full calibration story.
func AzureSetup() Setup {
	s := DefaultSetup()
	s.Topology.CPUBoxes = 1
	s.Topology.RAMBoxes = 2
	s.Topology.STOBoxes = 3
	return s
}

// AzureSetupFrom returns AzureSetup with the overridable knobs of s — seed,
// cluster size and fabric — carried over. Every place that switches from a
// caller's setup to the practical-workload rack composition must go through
// this helper so a newly added knob cannot be carried in one call site and
// forgotten in another.
func AzureSetupFrom(s Setup) Setup {
	azure := AzureSetup()
	azure.Seed = s.Seed
	azure.Topology.Racks = s.Topology.Racks
	azure.Network = s.Network
	return azure
}

// NewState builds a fresh datacenter for the setup.
func (s Setup) NewState() (*sched.State, error) {
	return sched.NewState(s.Topology, s.Network)
}

// RunOne replays the trace through the named algorithm on a fresh
// datacenter and returns the simulation result.
func (s Setup) RunOne(algorithm string, tr *workload.Trace) (*sim.Result, error) {
	st, err := s.NewState()
	if err != nil {
		return nil, err
	}
	sch, err := NewScheduler(algorithm, st)
	if err != nil {
		return nil, err
	}
	return s.runOn(st, sch, tr)
}

// runOn replays the trace through an already-bound scheduler.
func (s Setup) runOn(st *sched.State, sch sched.Scheduler, tr *workload.Trace) (*sim.Result, error) {
	model, err := power.NewModel(s.Optics)
	if err != nil {
		return nil, err
	}
	runner, err := sim.NewRunner(st, sch, sim.Config{PowerModel: model})
	if err != nil {
		return nil, err
	}
	return runner.Run(tr)
}

// RunAll replays the trace through every algorithm and returns results
// keyed by algorithm name. Each algorithm gets its own fresh datacenter,
// so the four simulations are independent and run on the shared worker
// pool (see Engine); results are deterministic regardless of pool width.
func (s Setup) RunAll(tr *workload.Trace) (map[string]*sim.Result, error) {
	return s.runAllOn(Engine{}, tr)
}

// runAllOn is RunAll on a caller-chosen engine (RunFig11 passes a serial
// one so its timing measurements don't contend).
func (s Setup) runAllOn(eng Engine, tr *workload.Trace) (map[string]*sim.Result, error) {
	jobs := make([]Job, len(Algorithms))
	for i, alg := range Algorithms {
		jobs[i] = Job{Setup: s, Algorithm: alg, Trace: tr}
	}
	outcomes, err := eng.RunChecked(jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*sim.Result, len(Algorithms))
	for _, o := range outcomes {
		out[o.Job.Algorithm] = o.Result
	}
	return out, nil
}

// SyntheticTrace generates the §5.1 synthetic workload with the setup's
// seed.
func (s Setup) SyntheticTrace() (*workload.Trace, error) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Seed = s.Seed
	return workload.Synthetic(cfg)
}

// AzureTrace generates the Azure-like workload for one subset with the
// setup's seed.
func (s Setup) AzureTrace(subset workload.AzureSubset) (*workload.Trace, error) {
	return workload.AzureLike(workload.AzureConfig{Subset: subset, Seed: s.Seed})
}

// AzureMatrix runs every algorithm on every Azure subset: the shared
// backing data of Figures 7, 8, 9, 10 and 12.
type AzureMatrix struct {
	Setup   Setup
	Results map[workload.AzureSubset]map[string]*sim.Result
}

// RunAzureMatrix computes the full practical-workload result matrix: the
// whole subset × algorithm grid is flattened into one job list and run on
// the worker pool, so the twelve simulations overlap instead of running
// subset by subset.
func (s Setup) RunAzureMatrix() (*AzureMatrix, error) {
	m := &AzureMatrix{
		Setup:   s,
		Results: make(map[workload.AzureSubset]map[string]*sim.Result),
	}
	var jobs []Job
	var subsets []workload.AzureSubset
	for _, subset := range workload.Subsets() {
		tr, err := s.AzureTrace(subset)
		if err != nil {
			return nil, err
		}
		for _, alg := range Algorithms {
			jobs = append(jobs, Job{Setup: s, Algorithm: alg, Trace: tr})
			subsets = append(subsets, subset)
		}
	}
	outcomes, err := Engine{}.RunChecked(jobs)
	if err != nil {
		return nil, err
	}
	for i, o := range outcomes {
		subset := subsets[i]
		if m.Results[subset] == nil {
			m.Results[subset] = make(map[string]*sim.Result, len(Algorithms))
		}
		m.Results[subset][o.Job.Algorithm] = o.Result
	}
	return m, nil
}
