package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"risa/internal/sim"
	"risa/internal/workload"
)

// defaultWorkers holds the package-wide worker-pool width used by every
// grid helper (RunAll, RunAzureMatrix, RunSeedSweep, the sweeps). Zero
// means "one worker per available CPU"; cmd/risasim's -parallel flag sets
// it explicitly.
var defaultWorkers atomic.Int32

// SetParallelism fixes the number of workers grid helpers use; n ≤ 0
// restores the default (GOMAXPROCS). SetParallelism(1) makes every grid
// strictly serial, which is occasionally useful for profiling one run.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Parallelism reports the worker-pool width grid helpers currently use.
func Parallelism() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Job is one cell of an experiment grid: one algorithm replaying one trace
// on a fresh datacenter built from the setup. Because every job builds its
// own State, jobs never share mutable simulator state and a grid is
// embarrassingly parallel.
type Job struct {
	Setup     Setup
	Algorithm string
	Trace     *workload.Trace
}

// Outcome pairs a job with its simulation result or error.
type Outcome struct {
	Job    Job
	Result *sim.Result
	Err    error
}

// Engine executes experiment grids on a bounded worker pool. The zero
// Engine uses the package parallelism (see SetParallelism).
type Engine struct {
	// Workers is the pool width; ≤ 0 means the package default.
	Workers int
}

// Run executes every job and returns the outcomes in job order. All jobs
// run regardless of individual failures; callers decide whether one error
// poisons the grid (FirstError helps). Results are deterministic and
// independent of the pool width because no state is shared between jobs.
func (e Engine) Run(jobs []Job) []Outcome {
	workers := e.Workers
	if workers <= 0 {
		workers = Parallelism()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				job := jobs[i]
				res, err := job.Setup.RunOne(job.Algorithm, job.Trace)
				out[i] = Outcome{Job: job, Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// RunChecked executes every job and fails on the first job error, so
// callers folding the outcomes may dereference every Result
// unconditionally.
func (e Engine) RunChecked(jobs []Job) ([]Outcome, error) {
	outcomes := e.Run(jobs)
	if err := FirstError(outcomes); err != nil {
		return nil, err
	}
	return outcomes, nil
}

// ForEach runs task(0..n-1) on the engine's worker pool and blocks until
// all have returned. It is the generic form of Run for experiment cells
// that are not (setup, algorithm, trace) jobs — e.g. the churn grid,
// whose cells build their own streams. Tasks must be independent; they
// run in arbitrary order.
func (e Engine) ForEach(n int, task func(i int)) {
	workers := e.Workers
	if workers <= 0 {
		workers = Parallelism()
	}
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}

// FirstError returns the first failed outcome's error, annotated with the
// job that produced it, or nil when the whole grid succeeded.
func FirstError(outcomes []Outcome) error {
	for _, o := range outcomes {
		if o.Err != nil {
			return fmt.Errorf("%s on %s: %w", o.Job.Algorithm, o.Job.Trace.Name, o.Err)
		}
	}
	return nil
}
