package experiments

import (
	"strings"
	"testing"

	"risa/internal/units"
	"risa/internal/workload"
)

func TestNewSchedulerNames(t *testing.T) {
	st, err := DefaultSetup().NewState()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Algorithms {
		sch, err := NewScheduler(name, st)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sch.Name() != name {
			t.Errorf("scheduler %q reports name %q", name, sch.Name())
		}
	}
	if _, err := NewScheduler("SJF", st); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestDefaultSetupBuilds(t *testing.T) {
	s := DefaultSetup()
	if s.Network.BoxUplinks != 16 {
		t.Errorf("calibrated uplinks = %d, want 16", s.Network.BoxUplinks)
	}
	if _, err := s.NewState(); err != nil {
		t.Fatal(err)
	}
}

func TestAzureSetupIsStorageHeavy(t *testing.T) {
	s := AzureSetup()
	if s.Topology.CPUBoxes != 1 || s.Topology.RAMBoxes != 2 || s.Topology.STOBoxes != 3 {
		t.Errorf("AzureSetup mix = %d/%d/%d, want 1/2/3",
			s.Topology.CPUBoxes, s.Topology.RAMBoxes, s.Topology.STOBoxes)
	}
	if s.Topology.BoxesPerRack() != 6 {
		t.Error("rack must still hold 6 boxes (Table 1)")
	}
	if _, err := s.NewState(); err != nil {
		t.Fatal(err)
	}
}

// smallSetup shrinks the workload for fast unit tests.
func smallTrace(t *testing.T, n int) *workload.Trace {
	t.Helper()
	cfg := workload.DefaultSyntheticConfig()
	cfg.N = n
	tr, err := workload.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunOneSmall(t *testing.T) {
	s := DefaultSetup()
	tr := smallTrace(t, 100)
	res, err := s.RunOne("RISA", tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 100 || res.Dropped != 0 {
		t.Errorf("scheduled/dropped = %d/%d", res.Scheduled, res.Dropped)
	}
	if res.Algorithm != "RISA" {
		t.Errorf("algorithm label %q", res.Algorithm)
	}
}

func TestRunOneUnknownAlgorithm(t *testing.T) {
	s := DefaultSetup()
	tr := smallTrace(t, 5)
	if _, err := s.RunOne("nope", tr); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestRunAllDeterministic(t *testing.T) {
	s := DefaultSetup()
	tr := smallTrace(t, 200)
	a, err := s.RunAll(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunAll(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if a[alg].InterRack != b[alg].InterRack ||
			a[alg].Scheduled != b[alg].Scheduled ||
			a[alg].PeakPowerW != b[alg].PeakPowerW {
			t.Errorf("%s: runs differ on identical input", alg)
		}
	}
}

func TestToy1MatchesPaper(t *testing.T) {
	out, err := RunToy1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NULB  → (CPU, RAM, STO) box ids (2, 1, 2)") {
		t.Errorf("NULB toy line missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "RISA  → (CPU, RAM, STO) box ids (2, 2, 2)") {
		t.Errorf("RISA toy line missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "INTER-rack") || !strings.Contains(out, "intra-rack") {
		t.Error("rack classification missing")
	}
}

func TestToy2MatchesPaper(t *testing.T) {
	out, err := RunToy2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RISA          0   0   0   1   1   1  NA   1") {
		t.Errorf("RISA row wrong:\n%s", out)
	}
	if !strings.Contains(out, "RISA-BF       1   1   0   0   1   0  NA   0") {
		t.Errorf("RISA-BF row wrong:\n%s", out)
	}
}

func TestToyStateMatchesTable3(t *testing.T) {
	st, err := NewToyState()
	if err != nil {
		t.Fatal(err)
	}
	// Availability per Table 3.
	want := []struct {
		rack, kindIx int
		kind         units.Resource
		free         units.Amount
	}{
		{0, 0, units.CPU, 0}, {0, 1, units.CPU, 0}, {1, 0, units.CPU, 64}, {1, 1, units.CPU, 32},
		{0, 0, units.RAM, 0}, {0, 1, units.RAM, 16}, {1, 0, units.RAM, 32}, {1, 1, units.RAM, 16},
		{0, 0, units.Storage, 0}, {0, 1, units.Storage, 0}, {1, 0, units.Storage, 256}, {1, 1, units.Storage, 512},
	}
	for _, w := range want {
		got := st.Cluster.Rack(w.rack).BoxesOf(w.kind)[w.kindIx].Free()
		if got != w.free {
			t.Errorf("%v r%d/k%d free = %d, want %d", w.kind, w.rack, w.kindIx, got, w.free)
		}
	}
}

func TestFig6MatchesSpecs(t *testing.T) {
	f, err := DefaultSetup().RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Traces) != 3 {
		t.Fatalf("traces = %d", len(f.Traces))
	}
	for i, sub := range workload.Subsets() {
		spec, _ := workload.Spec(sub)
		if f.Traces[i].Len() != spec.N {
			t.Errorf("%v: %d VMs, want %d", sub, f.Traces[i].Len(), spec.N)
		}
	}
	out := f.Render()
	for _, label := range []string{"Azure-3000", "Azure-5000", "Azure-7500", "1326", "6682"} {
		if !strings.Contains(out, label) {
			t.Errorf("Fig6 render missing %q", label)
		}
	}
}

func TestFig5SmokeAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthetic workload run")
	}
	f, err := DefaultSetup().RunFig5()
	if err != nil {
		t.Fatal(err)
	}
	nulb := f.Results["NULB"]
	nalb := f.Results["NALB"]
	risa := f.Results["RISA"]
	risabf := f.Results["RISA-BF"]
	// The paper's Figure 5 shape: hundreds for the baselines, single
	// digits for RISA, RISA-BF ≤ RISA.
	if nulb.InterRack < 100 {
		t.Errorf("NULB inter-rack = %d, expected hundreds", nulb.InterRack)
	}
	if nalb.InterRack < 50 || nalb.InterRack > nulb.InterRack {
		t.Errorf("NALB inter-rack = %d (NULB %d)", nalb.InterRack, nulb.InterRack)
	}
	if risa.InterRack > 10 {
		t.Errorf("RISA inter-rack = %d, expected single digits", risa.InterRack)
	}
	if risabf.InterRack > risa.InterRack {
		t.Errorf("RISA-BF (%d) should not exceed RISA (%d)", risabf.InterRack, risa.InterRack)
	}
	// §5.1: identical compute utilization across algorithms when no one
	// drops; at least RISA variants schedule everything.
	if risa.Dropped != 0 || risabf.Dropped != 0 {
		t.Error("RISA variants should schedule the full synthetic workload")
	}
	out := f.Render()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "NULB") {
		t.Error("render incomplete")
	}
}

func TestAzureMatrixShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Azure matrix")
	}
	m, err := AzureSetup().RunAzureMatrix()
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range workload.Subsets() {
		res := m.Results[sub]
		// Paper §5.2: zero drops everywhere.
		for _, alg := range Algorithms {
			if res[alg].Dropped != 0 {
				t.Errorf("%v/%s dropped %d VMs", sub, alg, res[alg].Dropped)
			}
		}
		// Figure 7 shape: RISA and RISA-BF place everything intra-rack;
		// the baselines do not.
		if res["RISA"].InterRack != 0 || res["RISA-BF"].InterRack != 0 {
			t.Errorf("%v: RISA variants must have zero inter-rack", sub)
		}
		if res["NULB"].InterRack == 0 || res["NALB"].InterRack == 0 {
			t.Errorf("%v: baselines should produce inter-rack assignments", sub)
		}
		// Figure 8: intra utilization identical across algorithms.
		base := res["NULB"].PeakIntraUtil
		for _, alg := range Algorithms {
			if res[alg].PeakIntraUtil != base {
				t.Errorf("%v: intra util differs (%s %.3f vs %.3f)",
					sub, alg, res[alg].PeakIntraUtil, base)
			}
		}
		// Figure 9: RISA uses less optical power than NULB.
		if res["RISA"].PeakPowerW >= res["NULB"].PeakPowerW {
			t.Errorf("%v: RISA power %.1f ≥ NULB %.1f",
				sub, res["RISA"].PeakPowerW, res["NULB"].PeakPowerW)
		}
		// Figure 10: RISA at the intra-rack latency floor, NULB above it.
		if res["RISA"].MeanCPURAMLatency.Nanoseconds() != 110 {
			t.Errorf("%v: RISA latency %v", sub, res["RISA"].MeanCPURAMLatency)
		}
		if res["NULB"].MeanCPURAMLatency.Nanoseconds() <= 110 {
			t.Errorf("%v: NULB latency should exceed 110ns", sub)
		}
	}
	// Renders.
	for name, out := range map[string]string{
		"fig7":  m.RenderFig7(),
		"fig8":  m.RenderFig8(),
		"fig9":  m.RenderFig9(),
		"fig10": m.RenderFig10(),
		"fig12": m.RenderFig12(),
	} {
		if !strings.Contains(out, "Azure-3000") || !strings.Contains(out, "RISA-BF") {
			t.Errorf("%s render incomplete:\n%s", name, out)
		}
	}
}

func TestRoundRobinAblation(t *testing.T) {
	a, err := DefaultSetup().RunRoundRobinAblation(300)
	if err != nil {
		t.Fatal(err)
	}
	if a.RackRAMStdDev["RISA"] >= a.RackRAMStdDev["RISA-no-RR"] {
		t.Errorf("round-robin should reduce skew: %.2f vs %.2f",
			a.RackRAMStdDev["RISA"], a.RackRAMStdDev["RISA-no-RR"])
	}
	if !strings.Contains(a.Render(), "RISA-no-RR") {
		t.Error("render incomplete")
	}
}

func TestUplinkSweepShowsCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple Azure runs")
	}
	sweep, err := DefaultSetup().RunUplinkSweep([]int{2, 16})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Dropped["NULB"][0] <= sweep.Dropped["NULB"][1] {
		t.Errorf("NULB should drop more with 2 uplinks: %v", sweep.Dropped["NULB"])
	}
	if sweep.Dropped["RISA"][1] != 0 {
		t.Errorf("RISA at 16 uplinks should drop nothing, got %d", sweep.Dropped["RISA"][1])
	}
	if !strings.Contains(sweep.Render(), "uplinks/box") {
		t.Error("render incomplete")
	}
}

func TestAlphaSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple Azure runs")
	}
	sweep, err := DefaultSetup().RunAlphaSweep([]float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.PeakKW[0] >= sweep.PeakKW[1] {
		t.Errorf("power must grow with alpha: %v", sweep.PeakKW)
	}
}

func TestPackingAblationSchedulesEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthetic runs")
	}
	a, err := DefaultSetup().RunPackingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Order) != 4 {
		t.Fatalf("policies = %v", a.Order)
	}
	for _, name := range a.Order {
		if a.Results[name].Scheduled+a.Results[name].Dropped != 2500 {
			t.Errorf("%s lost VMs", name)
		}
	}
	if !strings.Contains(a.Render(), "next-fit") {
		t.Error("render incomplete")
	}
}

func TestBoxMixAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple Azure runs")
	}
	a, err := DefaultSetup().RunBoxMixAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Mixes) != 4 || a.Mixes[0] != "2C/2R/2S" {
		t.Fatalf("mixes = %v", a.Mixes)
	}
	// The storage-heavy mix must amplify NULB's inter-rack count
	// relative to the balanced mix while RISA stays at zero.
	if a.Inter["NULB"][1] <= a.Inter["NULB"][0] {
		t.Errorf("1C/2R/3S should amplify NULB inter-rack: %v", a.Inter["NULB"])
	}
	for i := range a.Mixes {
		if a.Dropped["RISA"][i] == 0 && a.Inter["RISA"][i] != 0 {
			t.Errorf("RISA inter-rack at mix %s: %d", a.Mixes[i], a.Inter["RISA"][i])
		}
	}
	if !strings.Contains(a.Render(), "1C/2R/3S") {
		t.Error("render incomplete")
	}
}

func TestFig11RendersTimes(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthetic workload run")
	}
	f, err := DefaultSetup().RunFig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if f.Results[alg].SchedulingTime <= 0 {
			t.Errorf("%s has no measured scheduling time", alg)
		}
	}
	if !strings.Contains(f.Render(), "Figure 11") {
		t.Error("render incomplete")
	}
}

func TestResilienceExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("eight Azure runs")
	}
	r, err := AzureSetup().RunResilience()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		h, f := r.Healthy[alg], r.Faulty[alg]
		if h == nil || f == nil {
			t.Fatalf("%s missing results", alg)
		}
		// Losing a rack can only hurt: drops must not decrease.
		if f.Dropped < h.Dropped {
			t.Errorf("%s: faulty run dropped fewer (%d < %d)", alg, f.Dropped, h.Dropped)
		}
		// Conservation: every VM is either scheduled or dropped.
		if f.Scheduled+f.Dropped != 3000 {
			t.Errorf("%s: %d+%d VMs accounted", alg, f.Scheduled, f.Dropped)
		}
	}
	// RISA keeps placing everything intra-rack even around the hole.
	if r.Faulty["RISA"].InterRack != 0 {
		t.Errorf("RISA inter-rack under failure = %d", r.Faulty["RISA"].InterRack)
	}
	if !strings.Contains(r.Render(), "rack 0 fails") {
		t.Error("render incomplete")
	}
}

func TestDefragExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("static 1000-VM fill")
	}
	d, err := AzureSetup().RunDefrag(1000)
	if err != nil {
		t.Fatal(err)
	}
	if d.Placed == 0 {
		t.Fatal("nothing placed")
	}
	if d.InterBefore == 0 {
		t.Fatal("NULB fill should create inter-rack placements under the storage-heavy mix")
	}
	if d.InterAfter > d.InterBefore {
		t.Error("rebalance must not increase inter-rack count")
	}
	if d.InterBefore-d.InterAfter != d.Migrated {
		t.Errorf("migration accounting: %d - %d != %d", d.InterBefore, d.InterAfter, d.Migrated)
	}
	if d.PowerAfterKW > d.PowerBeforeKW {
		t.Error("power must not rise after migration")
	}
	if !strings.Contains(d.Render(), "migration pass") {
		t.Error("render incomplete")
	}
}

func TestStrandingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("four static fills")
	}
	st, err := DefaultSetup().RunStranding()
	if err != nil {
		t.Fatal(err)
	}
	// The §4 claim: best-fit packs at least as many VMs as next-fit and
	// strands no more capacity at the checkpoint.
	if st.Placed["RISA-BF"] < st.Placed["RISA"] {
		t.Errorf("RISA-BF placed %d < RISA %d", st.Placed["RISA-BF"], st.Placed["RISA"])
	}
	if st.StrandedRAMPct["RISA-BF"] > st.StrandedRAMPct["RISA"] {
		t.Errorf("RISA-BF strands more: %.1f%% vs %.1f%%",
			st.StrandedRAMPct["RISA-BF"], st.StrandedRAMPct["RISA"])
	}
	for _, alg := range Algorithms {
		if st.Placed[alg] == 0 {
			t.Errorf("%s placed nothing", alg)
		}
		if st.StrandedRAMPct[alg] < 0 || st.StrandedRAMPct[alg] > 100 {
			t.Errorf("%s stranded %% out of range: %g", alg, st.StrandedRAMPct[alg])
		}
	}
	if !strings.Contains(st.Render(), "stranded RAM") {
		t.Error("render incomplete")
	}
}

func TestQueueingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("two overloaded Azure runs")
	}
	q, err := DefaultSetup().RunQueueing()
	if err != nil {
		t.Fatal(err)
	}
	if q.Drop.Dropped == 0 {
		t.Fatal("the shrunken cluster should overload")
	}
	if q.Queue.Scheduled <= q.Drop.Scheduled {
		t.Errorf("retry queue should place more: %d vs %d",
			q.Queue.Scheduled, q.Drop.Scheduled)
	}
	if q.Queue.Enqueued == 0 || q.Queue.MeanWait <= 0 {
		t.Errorf("queue stats empty: %d waited %g", q.Queue.Enqueued, q.Queue.MeanWait)
	}
	if !strings.Contains(q.Render(), "retry-queue") {
		t.Error("render incomplete")
	}
}

func TestThreeTierExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("eight Azure runs")
	}
	tt, err := AzureSetup().RunThreeTier()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		two, three := tt.TwoTier[alg], tt.Pods[alg]
		// The compute decision is fabric-oblivious here (no drops), so
		// inter-rack counts match across fabrics.
		if two.InterRack != three.InterRack {
			t.Errorf("%s: inter-rack differs across fabrics: %d vs %d",
				alg, two.InterRack, three.InterRack)
		}
		if two.InterPod != 0 {
			t.Errorf("%s: two-tier fabric reports inter-pod %d", alg, two.InterPod)
		}
		if three.InterPod > three.InterRack {
			t.Errorf("%s: inter-pod %d exceeds inter-rack %d", alg, three.InterPod, three.InterRack)
		}
		// Extra pod crossings can only add power.
		if three.PeakPowerW < two.PeakPowerW-1e-6 {
			t.Errorf("%s: three-tier power dropped: %g vs %g", alg, three.PeakPowerW, two.PeakPowerW)
		}
	}
	// RISA stays all-intra-rack and therefore identical across fabrics.
	if tt.Pods["RISA"].InterPod != 0 || tt.Pods["RISA"].PeakPowerW != tt.TwoTier["RISA"].PeakPowerW {
		t.Error("RISA should be oblivious to the pod tier")
	}
	if !strings.Contains(tt.Render(), "three-tier") {
		t.Error("render incomplete")
	}
}

func TestSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full runs per seed")
	}
	sweep, err := DefaultSetup().RunSeedSweep([]int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if sweep.Synthetic[alg].Count() != 2 || sweep.Azure[alg].Count() != 2 {
			t.Errorf("%s: missing observations", alg)
		}
	}
	// The headline ordering must hold in the means.
	if sweep.Synthetic["NULB"].Mean() <= sweep.Synthetic["RISA"].Mean() {
		t.Error("NULB should have more synthetic inter-rack than RISA")
	}
	if sweep.Azure["RISA"].Max() != 0 || sweep.Azure["RISA-BF"].Max() != 0 {
		t.Error("RISA variants must be at zero on every Azure seed")
	}
	out := sweep.Render()
	if !strings.Contains(out, "Seed robustness") || !strings.Contains(out, "RISA-BF") {
		t.Error("render incomplete")
	}
}

func TestAlphaSweepRender(t *testing.T) {
	a := &AlphaSweep{Alphas: []float64{0.5, 0.9}, PeakKW: []float64{2.5, 3.5}}
	out := a.Render()
	if !strings.Contains(out, "α=0.50") || !strings.Contains(out, "3.500 kW") {
		t.Errorf("render incomplete:\n%s", out)
	}
}
