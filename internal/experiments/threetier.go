package experiments

import (
	"fmt"
	"strings"

	"risa/internal/sim"
	"risa/internal/workload"
)

// ThreeTier is an extension beyond the paper: the same Azure workload on
// the paper's two-tier fabric and on the three-tier pod fabric of Shabka
// & Zervas (the paper's related-work contrast, its ref [17], with 18
// racks grouped into 3 pods of 6). The paper argues the two-tier
// scheduling problem is different; this experiment shows what changes:
// the baselines' inter-rack placements split into cheap intra-pod and
// expensive inter-pod ones, while RISA's all-intra-rack placements are
// oblivious to the extra tier.
type ThreeTier struct {
	RacksPerPod   int
	TwoTier, Pods map[string]*sim.Result
}

// RunThreeTier executes both fabric variants on Azure-3000.
func (s Setup) RunThreeTier() (*ThreeTier, error) {
	tr, err := s.AzureTrace(workload.Azure3000)
	if err != nil {
		return nil, err
	}
	out := &ThreeTier{RacksPerPod: 6}
	if out.TwoTier, err = s.RunAll(tr); err != nil {
		return nil, err
	}
	podSetup := s
	podSetup.Network.RacksPerPod = out.RacksPerPod
	if out.Pods, err = podSetup.RunAll(tr); err != nil {
		return nil, err
	}
	return out, nil
}

// Render draws the comparison.
func (tt *ThreeTier) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: two-tier vs three-tier fabric (Azure-3000, pods of %d racks)\n", tt.RacksPerPod)
	fmt.Fprintf(&b, "  %-8s %26s %32s\n", "algo", "two-tier inter-rack/power", "three-tier inter-rack/pod/power")
	for _, alg := range Algorithms {
		two, three := tt.TwoTier[alg], tt.Pods[alg]
		fmt.Fprintf(&b, "  %-8s %15d / %5.2f kW %17d / %4d / %5.2f kW\n",
			alg, two.InterRack, two.PeakPowerW/1000,
			three.InterRack, three.InterPod, three.PeakPowerW/1000)
	}
	b.WriteString("  RISA's placements never leave a rack, so the extra tier changes\n")
	b.WriteString("  nothing for it; the baselines pay more power for every placement\n")
	b.WriteString("  that happens to cross pods (8 link hops, 3 large switches).\n")
	return b.String()
}
