package experiments

import (
	"fmt"
	"strings"
	"time"

	"risa/internal/power"
	"risa/internal/sim"
	"risa/internal/units"
	"risa/internal/workload"
)

// ChurnRung is one operating point of the steady-state utilization
// ladder. Target is the desired binding-resource occupancy as a
// fraction; a target at or above 1 is an overload rung and runs at a
// fixed arrival rate of Target × the cluster's sustainable rate instead
// of under the feedback controller (a controller chasing an unreachable
// target just slams into its clamp).
type ChurnRung struct {
	Label  string
	Target float64
}

// DefaultChurnRungs returns the ladder of the `-exp churn` scenario:
// three controlled operating points and one overload rung.
func DefaultChurnRungs() []ChurnRung {
	return []ChurnRung{
		{Label: "60%", Target: 0.60},
		{Label: "75%", Target: 0.75},
		{Label: "90%", Target: 0.90},
		{Label: "overload", Target: 1.10},
	}
}

// ChurnConfig parameterizes the steady-state churn experiment.
type ChurnConfig struct {
	// Arrivals per rung and algorithm (default 100 000).
	Arrivals int
	// Duration optionally caps each rung's simulated time (0 = none;
	// the arrival budget is then the only stop criterion).
	Duration int64
	// Rungs is the utilization ladder (default DefaultChurnRungs).
	Rungs []ChurnRung

	// Agents is the concurrent-agents axis: every rung runs once per
	// entry, with that many allocation agents proposing placements
	// optimistically (sim.StreamConcurrency). Empty means []int{1}, the
	// serial ladder — whose output is bit-identical to the pre-axis one.
	// Incompatible with Clone (agent mode cannot resume snapshots).
	Agents []int

	// Clone switches the ladder to warm-state sharing: each rung's
	// cluster is warmed ONCE (under RISA, the paper's scheduler) to the
	// end of warmup, snapshotted there, and every algorithm cell resumes
	// the shared snapshot instead of re-simulating its own warm phase —
	// the controlled-comparison protocol of Protean-style cluster
	// studies: all algorithms start from the identical warm state. Each
	// resumed cell then runs CloneWindows measurement windows (instead
	// of the full arrival budget), which is where most of the wall-clock
	// saving comes from; per-cell results remain deterministic and
	// independent of the worker-pool width, but are NOT comparable to a
	// default (fresh-warmup, full-budget) ladder. Default off.
	Clone bool
	// CloneWindows is the per-cell measurement budget in complete
	// windows under Clone (default 16).
	CloneWindows int
}

// ChurnPhases computes the churn ladder's warmup and window lengths:
// two mean lifetimes of warmup (fills and settles the resident
// population) and one lifetime per window, both shrunk when a duration
// cap leaves no room (warmup at most a quarter of the run, at least
// four windows in the remainder). Exported because the CLI's
// snapshot/restore path must reproduce the exact phase boundaries of
// the ladder it snapshots.
func ChurnPhases(duration int64) (warmup, window int64) {
	base := workload.DefaultSyntheticConfig()
	warmup = 2 * base.LifetimeBase
	window = base.LifetimeBase
	if duration > 0 {
		if warmup > duration/4 {
			warmup = duration / 4
		}
		if window > (duration-warmup)/4 {
			window = (duration - warmup) / 4
		}
		if window < 1 {
			window = 1
		}
	}
	return warmup, window
}

// ChurnCell is one (rung, agents, algorithm) steady-state run. Agents is
// the concurrent-agent count the cell ran under (1 = serial).
type ChurnCell struct {
	Rung      ChurnRung
	Agents    int
	Algorithm string
	Result    *sim.SteadyState
}

// Churn is the full ladder × algorithm grid of steady-state runs.
type Churn struct {
	Setup    Setup
	Arrivals int   // per-cell arrival budget (MaxArrivals)
	Duration int64 // per-cell simulated-time cap, 0 = none
	Cloned   bool  // warm-state sharing was on (see ChurnConfig.Clone)
	Lifetime int64
	Cells    []ChurnCell // rung-major, Algorithms order
}

// churnStream builds one rung's controlled synthetic stream against the
// given cluster capacities. The workload is the §5.1 request mix made
// stationary: fixed lifetimes (LifetimeStep = 0), so occupancy converges
// instead of drifting with the paper's per-set lifetime growth. The
// initial arrival rate is computed analytically from the capacity of the
// binding resource,
//
//	rate = Target · min_k cap_k / (E[lifetime] · E[req_k]),
//
// which lands the cluster near the target before the controller has seen
// any feedback; sub-unity rungs then hold the point with a
// UtilizationController, overload rungs keep the fixed (infeasible) rate.
func churnStream(seed int64, rung ChurnRung, capacity [units.NumResources]units.Amount) (*workload.SyntheticStream, error) {
	cfg, err := churnStreamConfig(seed, rung, capacity)
	if err != nil {
		return nil, err
	}
	return cfg.NewStream()
}

// churnStreamConfig computes the stream configuration churnStream builds
// its stream from, exposed separately so variants of the ladder (the SLO
// experiment's tiered streams) can adjust the config before opening it.
func churnStreamConfig(seed int64, rung ChurnRung, capacity [units.NumResources]units.Amount) (workload.SyntheticConfig, error) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Seed = seed
	cfg.LifetimeStep = 0 // stationary lifetimes

	meanReq := [units.NumResources]float64{
		units.CPU:     float64(cfg.CPUMin+cfg.CPUMax) / 2,
		units.RAM:     float64(cfg.RAMMin+cfg.RAMMax) / 2,
		units.Storage: float64(cfg.StorageGB),
	}
	bindingRate := 0.0
	for _, k := range units.Resources() {
		if meanReq[k] <= 0 {
			continue
		}
		r := float64(capacity[k]) / (float64(cfg.LifetimeBase) * meanReq[k])
		if bindingRate == 0 || r < bindingRate {
			bindingRate = r
		}
	}
	if bindingRate <= 0 {
		return cfg, fmt.Errorf("experiments: churn cluster has no capacity")
	}
	cfg.MeanInterarrival = 1 / (rung.Target * bindingRate)
	if rung.Target < 1 {
		cfg.Controller = &workload.UtilizationController{Target: rung.Target}
	}
	return cfg, nil
}

// RunChurn executes the steady-state churn grid: every rung of the
// ladder under every algorithm, each on a fresh datacenter, each
// sustaining cfg.Arrivals arrivals with warmup-excluded windowed
// metrics. Cells run on the shared worker pool; placements, acceptance
// and utilization are deterministic, while the latency percentiles and
// placements/sec are wall-clock and inflate when cells contend for cores
// (regenerate with -parallel 1 for honest timings, like Figure 12).
func (s Setup) RunChurn(cfg ChurnConfig) (*Churn, error) {
	if cfg.Arrivals == 0 {
		cfg.Arrivals = 100000
	}
	if cfg.Arrivals < 0 || cfg.Duration < 0 {
		return nil, fmt.Errorf("experiments: negative churn bounds (arrivals %d, duration %d)", cfg.Arrivals, cfg.Duration)
	}
	if len(cfg.Rungs) == 0 {
		cfg.Rungs = DefaultChurnRungs()
	}
	for _, r := range cfg.Rungs {
		if r.Target <= 0 {
			return nil, fmt.Errorf("experiments: churn rung %q target must be positive, got %g", r.Label, r.Target)
		}
	}
	agents := cfg.Agents
	if len(agents) == 0 {
		agents = []int{1}
	}
	for _, a := range agents {
		if a <= 0 {
			return nil, fmt.Errorf("experiments: churn agent count must be positive, got %d", a)
		}
		if cfg.Clone && a > 1 {
			return nil, fmt.Errorf("experiments: the churn agents axis is incompatible with Clone (agent mode cannot resume snapshots)")
		}
	}
	base := workload.DefaultSyntheticConfig()
	warmup, window := ChurnPhases(cfg.Duration)
	if cfg.Clone {
		return s.runChurnCloned(cfg, base.LifetimeBase)
	}

	out := &Churn{Setup: s, Arrivals: cfg.Arrivals, Duration: cfg.Duration, Lifetime: base.LifetimeBase}
	out.Cells = make([]ChurnCell, 0, len(cfg.Rungs)*len(agents)*len(Algorithms))
	for _, rung := range cfg.Rungs {
		for _, a := range agents {
			for _, alg := range Algorithms {
				out.Cells = append(out.Cells, ChurnCell{Rung: rung, Agents: a, Algorithm: alg})
			}
		}
	}

	errs := make([]error, len(out.Cells))
	Engine{}.ForEach(len(out.Cells), func(i int) {
		cell := &out.Cells[i]
		cell.Result, errs[i] = s.RunChurnCell(cell.Algorithm, cell.Rung, sim.StreamConfig{
			Workload:    sim.StreamWorkload{MaxArrivals: cfg.Arrivals, Duration: cfg.Duration},
			Windows:     sim.StreamWindows{Warmup: warmup, Window: window},
			Concurrency: sim.StreamConcurrency{Agents: cell.Agents},
		})
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s at rung %s: %w", out.Cells[i].Algorithm, out.Cells[i].Rung.Label, err)
		}
	}
	return out, nil
}

// runChurnCloned is the Clone-mode grid: one warm run per rung, the
// snapshot shared read-only by the rung's algorithm cells, each cell a
// windows-budgeted resume. The default ladder (Clone off) is untouched.
func (s Setup) runChurnCloned(cfg ChurnConfig, lifetime int64) (*Churn, error) {
	if cfg.CloneWindows == 0 {
		cfg.CloneWindows = 16
	}
	if cfg.CloneWindows < 0 {
		return nil, fmt.Errorf("experiments: negative clone window budget %d", cfg.CloneWindows)
	}
	// The per-cell budget: warmup plus the window budget (one spare so
	// the last counted window is closed by an event at or past its end).
	duration := cfg.Duration
	warmup, window := ChurnPhases(duration)
	if duration == 0 {
		duration = warmup + int64(cfg.CloneWindows+1)*window
	}
	streamCfg := sim.StreamConfig{
		Workload: sim.StreamWorkload{MaxArrivals: cfg.Arrivals, Duration: duration},
		Windows:  sim.StreamWindows{Warmup: warmup, Window: window},
	}

	out := &Churn{Setup: s, Arrivals: cfg.Arrivals, Duration: duration, Cloned: true, Lifetime: lifetime}
	out.Cells = make([]ChurnCell, 0, len(cfg.Rungs)*len(Algorithms))
	for _, rung := range cfg.Rungs {
		for _, alg := range Algorithms {
			out.Cells = append(out.Cells, ChurnCell{Rung: rung, Agents: 1, Algorithm: alg})
		}
	}

	// Phase 1: warm one cluster per rung, under RISA.
	snaps := make([]*sim.Snapshot, len(cfg.Rungs))
	warmErrs := make([]error, len(cfg.Rungs))
	warmCfg := streamCfg
	warmCfg.Snapshot.At = warmup
	Engine{}.ForEach(len(cfg.Rungs), func(i int) {
		snaps[i], warmErrs[i] = s.WarmChurnCell("RISA", cfg.Rungs[i], warmCfg)
	})
	for i, err := range warmErrs {
		if err != nil {
			return nil, fmt.Errorf("warming rung %s: %w", cfg.Rungs[i].Label, err)
		}
	}

	// Phase 2: every cell resumes its rung's shared snapshot.
	errs := make([]error, len(out.Cells))
	Engine{}.ForEach(len(out.Cells), func(i int) {
		cell := &out.Cells[i]
		cell.Result, errs[i] = s.ResumeChurnCell(cell.Algorithm, cell.Rung, snaps[i/len(Algorithms)], streamCfg)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s at rung %s: %w", out.Cells[i].Algorithm, out.Cells[i].Rung.Label, err)
		}
	}
	return out, nil
}

// newChurnCell builds the pristine state, scheduler, runner and stream
// one churn cell runs on.
func (s Setup) newChurnCell(algorithm string, rung ChurnRung) (*sim.Runner, *workload.SyntheticStream, error) {
	st, err := s.NewState()
	if err != nil {
		return nil, nil, err
	}
	var capacity [units.NumResources]units.Amount
	for _, k := range units.Resources() {
		capacity[k] = st.Cluster.TotalCapacity(k)
	}
	stream, err := churnStream(s.Seed, rung, capacity)
	if err != nil {
		return nil, nil, err
	}
	sch, err := NewScheduler(algorithm, st)
	if err != nil {
		return nil, nil, err
	}
	model, err := power.NewModel(s.Optics)
	if err != nil {
		return nil, nil, err
	}
	runner, err := sim.NewRunner(st, sch, sim.Config{PowerModel: model})
	if err != nil {
		return nil, nil, err
	}
	return runner, stream, nil
}

// RunChurnCell executes one steady-state cell: the named algorithm on a
// fresh datacenter consuming the rung's controlled stream under the
// given stream configuration.
func (s Setup) RunChurnCell(algorithm string, rung ChurnRung, cfg sim.StreamConfig) (*sim.SteadyState, error) {
	runner, stream, err := s.newChurnCell(algorithm, rung)
	if err != nil {
		return nil, err
	}
	return runner.RunStream(stream, cfg)
}

// WarmChurnCell runs one churn cell up to cfg.Snapshot.At (required) and
// returns the warm-state snapshot captured there. The snapshot is
// immutable and may be resumed any number of times, concurrently.
func (s Setup) WarmChurnCell(algorithm string, rung ChurnRung, cfg sim.StreamConfig) (*sim.Snapshot, error) {
	runner, stream, err := s.newChurnCell(algorithm, rung)
	if err != nil {
		return nil, err
	}
	return runner.WarmStream(stream, cfg)
}

// ResumeChurnCell continues a warm churn snapshot under the named
// algorithm: a fresh datacenter is restored from the snapshot, the
// rung's stream is repositioned by replay, and the run completes under
// cfg. A snapshot warmed under a different algorithm resumes with the
// new scheduler starting from its zero decision state.
func (s Setup) ResumeChurnCell(algorithm string, rung ChurnRung, snap *sim.Snapshot, cfg sim.StreamConfig) (*sim.SteadyState, error) {
	runner, stream, err := s.newChurnCell(algorithm, rung)
	if err != nil {
		return nil, err
	}
	return runner.ResumeStream(stream, snap, cfg)
}

// windowAcceptance summarizes per-window acceptance: mean and minimum
// over the complete windows (100/100 when there are none).
func windowAcceptance(windows []sim.WindowStats) (mean, min float64) {
	if len(windows) == 0 {
		return 100, 100
	}
	min = 100
	for _, w := range windows {
		a := w.AcceptancePct()
		mean += a
		if a < min {
			min = a
		}
	}
	return mean / float64(len(windows)), min
}

// Render draws the ladder as one table per rung.
func (c *Churn) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Steady-state churn: open-ended synthetic stream, fixed %d tu lifetimes, %d racks, %d-arrival budget per cell",
		c.Lifetime, c.Setup.Topology.Racks, c.Arrivals)
	if c.Duration > 0 {
		fmt.Fprintf(&b, " (time-capped at %d tu)", c.Duration)
	}
	if c.Cloned {
		b.WriteString("\n(clone mode: each rung warmed once under RISA, all algorithms resume the shared warm snapshot)")
	}
	b.WriteString("\n")
	b.WriteString("(metrics exclude warmup; acc%/win is mean over complete windows, with the worst window in parentheses;\n")
	b.WriteString(" latency percentiles and placements/s are wall-clock — regenerate with -parallel 1 for honest timings)\n")
	for _, cell := range c.Cells {
		if cell.Algorithm == Algorithms[0] {
			fmt.Fprintf(&b, "rung %-9s target %.0f%% binding utilization", cell.Rung.Label, cell.Rung.Target*100)
			if cell.Agents > 1 {
				fmt.Fprintf(&b, " — %d concurrent agents", cell.Agents)
			}
			b.WriteString("\n")
			fmt.Fprintf(&b, "  %-8s %9s %7s %6s %17s %5s %14s %21s %9s\n",
				"alg", "arrivals", "accept%", "drops", "util C/R/S %", "wins", "acc%/win", "p50/p95/p99 decision", "place/s")
		}
		r := cell.Result
		accPct := 100.0
		if r.Arrivals > 0 {
			accPct = float64(r.Accepted) / float64(r.Arrivals) * 100
		}
		meanWin, minWin := windowAcceptance(r.Windows)
		fmt.Fprintf(&b, "  %-8s %9d %7.2f %6d %5.1f/%4.1f/%4.1f %5d %6.1f (%5.1f) %6s/%6s/%6s %9.0f\n",
			cell.Algorithm, r.Arrivals, accPct, r.Dropped,
			r.AvgUtil[units.CPU], r.AvgUtil[units.RAM], r.AvgUtil[units.Storage],
			len(r.Windows), meanWin, minWin,
			shortDur(r.LatencyP50), shortDur(r.LatencyP95), shortDur(r.LatencyP99),
			r.PlacementsPerSec())
	}
	return b.String()
}

// shortDur renders a decision latency compactly (µs with one decimal).
func shortDur(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
}
