package experiments

import (
	"fmt"
	"strings"

	"risa/internal/power"
	"risa/internal/sim"
	"risa/internal/workload"
)

// Queueing is an extension beyond the paper: the paper drops a VM the
// moment it cannot be placed; real clouds queue it. This experiment
// overloads a shrunken cluster (9 racks instead of 18) with Azure-3000
// and compares drop-on-failure against a FIFO retry queue under RISA.
type Queueing struct {
	Racks       int
	Drop, Queue *sim.Result
}

// RunQueueing executes both runs.
func (s Setup) RunQueueing() (*Queueing, error) {
	setup := s
	setup.Topology.Racks = 9 // overload: half the capacity
	tr, err := setup.AzureTrace(workload.Azure3000)
	if err != nil {
		return nil, err
	}
	out := &Queueing{Racks: setup.Topology.Racks}
	for _, retry := range []bool{false, true} {
		st, err := setup.NewState()
		if err != nil {
			return nil, err
		}
		sch, err := NewScheduler("RISA", st)
		if err != nil {
			return nil, err
		}
		model, err := power.NewModel(setup.Optics)
		if err != nil {
			return nil, err
		}
		runner, err := sim.NewRunner(st, sch, sim.Config{PowerModel: model, RetryDropped: retry})
		if err != nil {
			return nil, err
		}
		res, err := runner.Run(tr)
		if err != nil {
			return nil, err
		}
		if retry {
			out.Queue = res
		} else {
			out.Drop = res
		}
	}
	return out, nil
}

// Render draws the comparison.
func (q *Queueing) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: FIFO retry queue vs drop-on-failure (RISA, Azure-3000, %d racks)\n", q.Racks)
	fmt.Fprintf(&b, "  %-12s %10s %9s %10s %12s\n", "semantics", "scheduled", "dropped", "enqueued", "mean wait")
	fmt.Fprintf(&b, "  %-12s %10d %9d %10s %12s\n", "drop", q.Drop.Scheduled, q.Drop.Dropped, "-", "-")
	fmt.Fprintf(&b, "  %-12s %10d %9d %10d %9.0f tu\n", "retry-queue",
		q.Queue.Scheduled, q.Queue.Dropped, q.Queue.Enqueued, q.Queue.MeanWait)
	b.WriteString("  Queueing trades drops for wait time: capacity freed by departures\n")
	b.WriteString("  serves the backlog instead of being missed.\n")
	return b.String()
}
