package experiments

import (
	"fmt"
	"strings"

	"risa/internal/faults"
	"risa/internal/sim"
	"risa/internal/units"
	"risa/internal/workload"
)

// FaultRung is one row of the availability ladder: a box-tier outage
// process. The zero MTBF rung is the fault-free baseline.
type FaultRung struct {
	Label string
	// MTBF and MTTR are the per-box mean up and down times in simulated
	// time units; MTBF 0 disables faults for the rung.
	MTBF, MTTR int64
}

// DefaultFaultRungs returns the ladder's default MTBF axis: a fault-free
// baseline, a calm regime (a handful of concurrent box outages) and a
// stormy one (an order of magnitude more).
func DefaultFaultRungs(mttr int64) []FaultRung {
	if mttr <= 0 {
		mttr = DefaultFaultMTTR
	}
	return []FaultRung{
		{Label: "none"},
		{Label: "calm", MTBF: 50000, MTTR: mttr},
		{Label: "storm", MTBF: 5000, MTTR: mttr},
	}
}

// DefaultFaultMTTR is the default per-box mean repair time.
const DefaultFaultMTTR = 2000

// FaultsConfig parameterizes the `-exp faults` availability ladder.
type FaultsConfig struct {
	// Arrivals caps each cell's arrival budget (default 100 000 — the
	// Duration cap below usually binds first).
	Arrivals int
	// Duration is each cell's simulated-time cap and the fault plan's
	// generation horizon; must cover warmup plus a few windows
	// (default 50 000).
	Duration int64
	// Targets is the utilization axis as binding-occupancy fractions
	// (default 0.60 and 0.90).
	Targets []float64
	// Rungs is the MTBF axis (default DefaultFaultRungs).
	Rungs []FaultRung
	// MTTR overrides the default rungs' repair time (ignored when Rungs
	// is given explicitly).
	MTTR int64
	// Evict turns on displaced-VM recovery: VMs on failed hardware are
	// evicted and re-placed through the scheduler instead of riding out
	// the outage in place.
	Evict bool
	// Tiers optionally stamps a priority mix on arrivals (zero = every
	// VM tier 0, the untiered ladder, bit-identical to before tiers
	// existed).
	Tiers workload.TierMix
	// Preempt lets higher-tier arrivals displace strictly-lower-tier
	// residents when placement fails (implies the retry queue; pointless
	// without a Tiers mix, since an untiered ladder has no lower tiers).
	Preempt bool

	// Clone switches the ladder to warm-state sharing: each utilization
	// target is warmed ONCE, fault-free, under RISA, to the end of
	// warmup; every (MTBF rung, algorithm) cell of the target resumes
	// the shared snapshot with its rung's fault plan installed — plan
	// events before the snapshot point are dropped, so faults begin
	// exactly when measurement does. Deterministic and pool-width
	// independent, but not comparable to a default (fresh-warmup)
	// ladder, whose warm phase lives through early faults. Default off.
	Clone bool
}

// FaultCell is one (MTBF rung, utilization target, algorithm)
// steady-state run under faults.
type FaultCell struct {
	Rung      FaultRung
	Target    float64
	Algorithm string
	Result    *sim.SteadyState
}

// Faults is the full MTBF × utilization × algorithm availability grid.
type Faults struct {
	Setup    Setup
	Arrivals int
	Duration int64
	Evict    bool
	Cloned   bool // warm-state sharing was on (see FaultsConfig.Clone)
	Lifetime int64
	Cells    []FaultCell // rung-major, then target, then Algorithms order
}

// RunFaults executes the availability ladder: every MTBF rung at every
// utilization target under every algorithm, each cell a fresh datacenter
// consuming its own deterministic stochastic fault plan (same seed ⇒
// bit-identical plans, placements and availability metrics, regardless
// of the worker-pool width).
func (s Setup) RunFaults(cfg FaultsConfig) (*Faults, error) {
	if cfg.Arrivals == 0 {
		cfg.Arrivals = 100000
	}
	if cfg.Duration == 0 {
		cfg.Duration = 50000
	}
	if cfg.Arrivals < 0 || cfg.Duration < 0 {
		return nil, fmt.Errorf("experiments: negative fault bounds (arrivals %d, duration %d)", cfg.Arrivals, cfg.Duration)
	}
	if len(cfg.Targets) == 0 {
		cfg.Targets = []float64{0.60, 0.90}
	}
	for _, target := range cfg.Targets {
		if target <= 0 {
			return nil, fmt.Errorf("experiments: fault ladder target must be positive, got %g", target)
		}
	}
	if len(cfg.Rungs) == 0 {
		cfg.Rungs = DefaultFaultRungs(cfg.MTTR)
	}
	for _, r := range cfg.Rungs {
		if r.MTBF < 0 || (r.MTBF > 0 && r.MTTR <= 0) {
			return nil, fmt.Errorf("experiments: fault rung %q has MTBF %d / MTTR %d", r.Label, r.MTBF, r.MTTR)
		}
	}
	base := workload.DefaultSyntheticConfig()
	warmup, window := ChurnPhases(cfg.Duration)

	out := &Faults{
		Setup: s, Arrivals: cfg.Arrivals, Duration: cfg.Duration,
		Evict: cfg.Evict, Cloned: cfg.Clone, Lifetime: base.LifetimeBase,
	}
	// One plan per rung, generated once and shared read-only by every
	// (target, algorithm) cell of the rung — the plan depends only on
	// the rung's rates, the seed and the cluster dimensions.
	plans := make([]*faults.Plan, len(cfg.Rungs))
	for i, rung := range cfg.Rungs {
		var err error
		if plans[i], err = s.faultPlan(rung, cfg.Duration); err != nil {
			return nil, err
		}
	}
	out.Cells = make([]FaultCell, 0, len(cfg.Rungs)*len(cfg.Targets)*len(Algorithms))
	for _, rung := range cfg.Rungs {
		for _, target := range cfg.Targets {
			for _, alg := range Algorithms {
				out.Cells = append(out.Cells, FaultCell{Rung: rung, Target: target, Algorithm: alg})
			}
		}
	}
	streamCfg := sim.StreamConfig{
		Workload: sim.StreamWorkload{MaxArrivals: cfg.Arrivals, Duration: cfg.Duration},
		Windows:  sim.StreamWindows{Warmup: warmup, Window: window},
	}
	cellsPerRung := len(cfg.Targets) * len(Algorithms)

	// Clone mode: warm each utilization target once, fault-free, under
	// RISA; every cell resumes the target's snapshot with its rung's
	// plan installed from the snapshot point on.
	var snaps []*sim.Snapshot
	if cfg.Clone {
		snaps = make([]*sim.Snapshot, len(cfg.Targets))
		warmErrs := make([]error, len(cfg.Targets))
		warmCfg := streamCfg
		warmCfg.Snapshot.At = warmup
		Engine{}.ForEach(len(cfg.Targets), func(i int) {
			runner, stream, err := s.newFaultCell("RISA", cfg.Targets[i], cfg.Tiers)
			if err != nil {
				warmErrs[i] = err
				return
			}
			snaps[i], warmErrs[i] = runner.WarmStream(stream, warmCfg)
		})
		for i, err := range warmErrs {
			if err != nil {
				return nil, fmt.Errorf("warming target %.0f%%: %w", cfg.Targets[i]*100, err)
			}
		}
	}

	errs := make([]error, len(out.Cells))
	Engine{}.ForEach(len(out.Cells), func(i int) {
		cell := &out.Cells[i]
		runner, stream, err := s.newFaultCell(cell.Algorithm, cell.Target, cfg.Tiers)
		if err != nil {
			errs[i] = err
			return
		}
		cellCfg := streamCfg
		plan := plans[i/cellsPerRung]
		if plan != nil {
			cellCfg.Faults = sim.StreamFaults{Plan: plan, Evict: cfg.Evict}
		}
		if cfg.Preempt {
			// Preemption re-queues its victims, so it rides on the retry
			// queue; the struct above stays byte-identical when off.
			cellCfg.Faults.Retry = true
			cellCfg.Faults.Preempt = true
		}
		if cfg.Clone {
			snap := snaps[(i%cellsPerRung)/len(Algorithms)]
			cell.Result, errs[i] = runner.ResumeStream(stream, snap, cellCfg)
		} else {
			cell.Result, errs[i] = runner.RunStream(stream, cellCfg)
		}
	})
	for i, err := range errs {
		if err != nil {
			cell := out.Cells[i]
			return nil, fmt.Errorf("%s at rung %s target %.0f%%: %w", cell.Algorithm, cell.Rung.Label, cell.Target*100, err)
		}
	}
	return out, nil
}

// faultPlan generates one rung's box-outage plan over the given horizon
// (nil for the fault-free baseline rung).
func (s Setup) faultPlan(rung FaultRung, horizon int64) (*faults.Plan, error) {
	if rung.MTBF <= 0 {
		return nil, nil
	}
	return faults.Generate(faults.GenConfig{
		Seed:         s.Seed,
		Horizon:      horizon,
		Racks:        s.Topology.Racks,
		BoxesPerRack: s.Topology.BoxesPerRack(),
		Box:          faults.TierRates{MTBF: float64(rung.MTBF), MTTR: float64(rung.MTTR)},
	})
}

// RunFaultCell executes one availability cell: the named algorithm on a
// fresh datacenter consuming the target's controlled stream while the
// rung's generated box-outage plan plays out.
func (s Setup) RunFaultCell(algorithm string, target float64, rung FaultRung, evict bool, cfg sim.StreamConfig) (*sim.SteadyState, error) {
	plan, err := s.faultPlan(rung, cfg.Workload.Duration)
	if err != nil {
		return nil, err
	}
	return s.runFaultCell(algorithm, target, plan, evict, cfg)
}

// runFaultCell is RunFaultCell on an already-generated (shared,
// read-only) plan; a nil plan runs the fault-free baseline. The plan
// rides in through StreamConfig.Faults, the stream-level fault surface.
func (s Setup) runFaultCell(algorithm string, target float64, plan *faults.Plan, evict bool, cfg sim.StreamConfig) (*sim.SteadyState, error) {
	runner, stream, err := s.newFaultCell(algorithm, target, workload.TierMix{})
	if err != nil {
		return nil, err
	}
	if plan != nil {
		cfg.Faults = sim.StreamFaults{Plan: plan, Evict: evict}
	}
	return runner.RunStream(stream, cfg)
}

// newFaultCell builds the pristine state, scheduler, runner and stream
// one availability cell runs on — the churn ladder's controlled stream,
// with the priority mix (when enabled) stamped on arrivals. The fault
// plan is not bound here — it enters per run through StreamConfig.Faults.
func (s Setup) newFaultCell(algorithm string, target float64, mix workload.TierMix) (*sim.Runner, *workload.SyntheticStream, error) {
	st, err := s.NewState()
	if err != nil {
		return nil, nil, err
	}
	var capacity [units.NumResources]units.Amount
	for _, k := range units.Resources() {
		capacity[k] = st.Cluster.TotalCapacity(k)
	}
	scfg, err := churnStreamConfig(s.Seed, ChurnRung{Target: target}, capacity)
	if err != nil {
		return nil, nil, err
	}
	scfg.Tiers = mix
	stream, err := scfg.NewStream()
	if err != nil {
		return nil, nil, err
	}
	sch, err := NewScheduler(algorithm, st)
	if err != nil {
		return nil, nil, err
	}
	runner, err := sim.NewRunner(st, sch, sim.Config{})
	if err != nil {
		return nil, nil, err
	}
	return runner, stream, nil
}

// Render draws the availability ladder as one table per (rung, target).
func (f *Faults) Render() string {
	var b strings.Builder
	mode := "keep-running (VMs ride out outages in place)"
	if f.Evict {
		mode = "evict (displaced VMs re-place through the scheduler)"
	}
	fmt.Fprintf(&b, "Availability ladder: box-tier MTBF × utilization, %d racks, %d tu per cell, policy: %s\n",
		f.Setup.Topology.Racks, f.Duration, mode)
	if f.Cloned {
		b.WriteString("(clone mode: each target warmed once fault-free under RISA; faults begin at the snapshot point)\n")
	}
	b.WriteString("(metrics exclude warmup; acc%/win is mean over complete windows with the worst window in parentheses;\n")
	b.WriteString(" displ/rec/lost count displaced VMs; re-place p95 is wall-clock — regenerate with -parallel 1 for honest timings)\n")
	for i, cell := range f.Cells {
		if cell.Algorithm == Algorithms[0] {
			if i > 0 {
				b.WriteString("\n")
			}
			if cell.Rung.MTBF == 0 {
				fmt.Fprintf(&b, "rung %-6s (no faults) · target %.0f%%\n", cell.Rung.Label, cell.Target*100)
			} else {
				fmt.Fprintf(&b, "rung %-6s (box MTBF %d, MTTR %d) · target %.0f%%\n",
					cell.Rung.Label, cell.Rung.MTBF, cell.Rung.MTTR, cell.Target*100)
			}
			fmt.Fprintf(&b, "  %-8s %9s %7s %14s %6s %6s %6s %12s %17s\n",
				"alg", "arrivals", "accept%", "acc%/win", "displ", "rec", "lost", "re-place p95", "util C/R/S %")
		}
		r := cell.Result
		accPct := 100.0
		if r.Arrivals > 0 {
			accPct = float64(r.Accepted) / float64(r.Arrivals) * 100
		}
		meanWin, minWin := windowAcceptance(r.Windows)
		fmt.Fprintf(&b, "  %-8s %9d %7.2f %6.1f (%5.1f) %6d %6d %6d %12s %5.1f/%4.1f/%4.1f\n",
			cell.Algorithm, r.Arrivals, accPct, meanWin, minWin,
			r.Displaced, r.Recovered, r.DisplacedLost, shortDur(r.ReplaceP95),
			r.AvgUtil[units.CPU], r.AvgUtil[units.RAM], r.AvgUtil[units.Storage])
	}
	return b.String()
}
