package experiments

import (
	"reflect"
	"strings"
	"testing"

	"risa/internal/sim"
)

// stripSS zeroes one cell's wall-clock observations so the rest of the
// struct can be compared bit-for-bit across runs.
func stripSS(r *sim.SteadyState) {
	r.SchedulingTime, r.WallTime = 0, 0
	r.LatencyP50, r.LatencyP95, r.LatencyP99 = 0, 0, 0
	r.ReplaceP50, r.ReplaceP95, r.ReplaceP99 = 0, 0, 0
	for t := range r.Tiers {
		r.Tiers[t].LatencyP50, r.Tiers[t].LatencyP95, r.Tiers[t].LatencyP99 = 0, 0, 0
	}
}

// cloneChurnConfig keeps the clone-mode grid small: one rung, a short
// windows budget.
func cloneChurnConfig() ChurnConfig {
	return ChurnConfig{
		Arrivals:     20000,
		Rungs:        []ChurnRung{{Label: "60%", Target: 0.60}},
		Clone:        true,
		CloneWindows: 3,
	}
}

// TestChurnCloneDeterministicAcrossPoolWidths: the clone-mode churn
// grid — shared warm snapshots and all — is bit-identical between a
// serial run and a 4-worker pool.
func TestChurnCloneDeterministicAcrossPoolWidths(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(1)
	serial, err := DefaultSetup().RunChurn(cloneChurnConfig())
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	pooled, err := DefaultSetup().RunChurn(cloneChurnConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Cloned || !pooled.Cloned {
		t.Fatal("clone grid not flagged Cloned")
	}
	for i := range serial.Cells {
		stripSS(serial.Cells[i].Result)
		stripSS(pooled.Cells[i].Result)
	}
	if !reflect.DeepEqual(serial, pooled) {
		t.Error("clone-mode churn grid differs between -parallel 1 and a 4-worker pool")
	}
	for _, cell := range serial.Cells {
		if cell.Result.Algorithm != cell.Algorithm {
			t.Errorf("cell labelled %s reports algorithm %s", cell.Algorithm, cell.Result.Algorithm)
		}
		if len(cell.Result.Windows) < 3 {
			t.Errorf("%s: %d complete windows, want the full budget of 3",
				cell.Algorithm, len(cell.Result.Windows))
		}
	}
	if out := serial.Render(); !strings.Contains(out, "clone mode") {
		t.Errorf("clone-mode render missing provenance note:\n%s", out)
	}
}

// TestChurnCloneMatchesFreshForWarmAlgorithm: the warm snapshot is
// taken under RISA, so the clone grid's RISA cell must be bit-identical
// (wall clock aside) to a fresh single-cell run of the same stream
// budget — the experiments-level restatement of the snapshot-vs-fresh
// equivalence contract.
func TestChurnCloneMatchesFreshForWarmAlgorithm(t *testing.T) {
	cfg := cloneChurnConfig()
	cfg.Duration = 50000 // explicit, so the fresh cell can reuse it
	grid, err := DefaultSetup().RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmup, window := ChurnPhases(cfg.Duration)
	fresh, err := DefaultSetup().RunChurnCell("RISA", cfg.Rungs[0], sim.StreamConfig{Workload: sim.StreamWorkload{MaxArrivals: cfg.Arrivals, Duration: cfg.Duration}, Windows: sim.StreamWindows{Warmup: warmup, Window: window}})
	if err != nil {
		t.Fatal(err)
	}
	var cloned *sim.SteadyState
	for _, cell := range grid.Cells {
		if cell.Algorithm == "RISA" {
			cloned = cell.Result
		}
	}
	if cloned == nil {
		t.Fatal("no RISA cell in the clone grid")
	}
	stripSS(cloned)
	stripSS(fresh)
	if !reflect.DeepEqual(cloned, fresh) {
		t.Errorf("cloned RISA cell differs from a fresh run of the same budget:\ncloned: %+v\nfresh:  %+v",
			cloned, fresh)
	}
}

// TestFaultsCloneDeterministicAcrossPoolWidths: the clone-mode
// availability grid is bit-identical across pool widths, and its cells
// actually see faults (the resumed plans must not be empty).
func TestFaultsCloneDeterministicAcrossPoolWidths(t *testing.T) {
	cfg := quickFaultsConfig()
	cfg.Clone = true
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(1)
	serial, err := DefaultSetup().RunFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	pooled, err := DefaultSetup().RunFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Cloned || !pooled.Cloned {
		t.Fatal("clone grid not flagged Cloned")
	}
	stripFaultWallClock(serial)
	stripFaultWallClock(pooled)
	if !reflect.DeepEqual(serial, pooled) {
		t.Error("clone-mode fault ladder differs between -parallel 1 and a 4-worker pool")
	}
	displaced := 0
	for _, cell := range serial.Cells {
		displaced += cell.Result.Displaced
	}
	if displaced == 0 {
		t.Error("fixture too weak: no clone-mode cell displaced a VM")
	}
	if out := serial.Render(); !strings.Contains(out, "clone mode") {
		t.Errorf("clone-mode render missing provenance note:\n%s", out)
	}
}
