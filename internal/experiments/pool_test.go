package experiments

import (
	"strings"
	"testing"

	"risa/internal/workload"
)

// The §5.3 verification: INTRA_RACK_POOL is never empty on the Azure
// workloads, so RISA never takes the SUPER_RACK fallback there.
func TestPoolOccupancyNeverEmptyOnAzure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all four workloads twice")
	}
	p, err := DefaultSetup().RunPoolOccupancy()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Order) != 4 {
		t.Fatalf("workloads = %v", p.Order)
	}
	for _, sub := range workload.Subsets() {
		for _, variant := range []string{"RISA", "RISA-BF"} {
			s := p.Stats[sub.String()][variant]
			if s.PoolEmpty != 0 || s.SuperRack != 0 {
				t.Errorf("%v/%s: pool-empty=%d super-rack=%d, want 0/0",
					sub, variant, s.PoolEmpty, s.SuperRack)
			}
			if s.Dropped != 0 {
				t.Errorf("%v/%s dropped %d", sub, variant, s.Dropped)
			}
			spec, _ := workload.Spec(sub)
			if s.IntraRack != spec.N {
				t.Errorf("%v/%s intra-rack placements = %d, want %d",
					sub, variant, s.IntraRack, spec.N)
			}
		}
	}
	// The synthetic workload's single RISA inter-rack VM (Figure 5) is a
	// pool-empty arrival served by the SUPER_RACK path.
	synth := p.Stats["synthetic"]["RISA"]
	if synth.PoolEmpty+synth.NetGated != synth.SuperRack+synth.Dropped {
		t.Errorf("fallback accounting inconsistent: %+v", synth)
	}
	out := p.Render()
	if !strings.Contains(out, "INTRA_RACK_POOL") || !strings.Contains(out, "synthetic") {
		t.Error("render incomplete")
	}
}
