package experiments

import (
	"fmt"
	"math"
	"strings"

	"risa/internal/units"
)

// Stranding verifies the paper's §4 motivation for RISA-BF: "the main
// goal for RISA-BF is to better pack resources and reduce resource
// stranding". It statically fills a fresh cluster with synthetic VMs,
// measures — at a fixed fill level of 1000 VMs — how much of the free
// capacity is stranded in racks that can no longer host a mean-sized VM
// whole, and then keeps filling to find how many VMs fit before the
// first drop.
type Stranding struct {
	Reference units.Vector
	CheckAt   int
	// Per algorithm: stranded fraction of free RAM at the checkpoint
	// (RAM is the binding resource for the synthetic mix), and VMs
	// placed before the first drop.
	StrandedRAMPct map[string]float64
	Placed         map[string]int
}

// RunStranding executes the fill-to-first-drop comparison.
func (s Setup) RunStranding() (*Stranding, error) {
	tr, err := s.SyntheticTrace()
	if err != nil {
		return nil, err
	}
	mean := tr.MeanRequest()
	ref := units.Vec(
		units.Amount(math.Round(mean[units.CPU])),
		units.Amount(math.Round(mean[units.RAM])),
		units.Amount(math.Round(mean[units.Storage])),
	)
	out := &Stranding{
		Reference:      ref,
		CheckAt:        1000,
		StrandedRAMPct: make(map[string]float64),
		Placed:         make(map[string]int),
	}
	for _, alg := range Algorithms {
		st, err := s.NewState()
		if err != nil {
			return nil, err
		}
		sch, err := NewScheduler(alg, st)
		if err != nil {
			return nil, err
		}
		placed := 0
		for _, vm := range tr.VMs {
			static := vm
			static.Arrival, static.Lifetime = 0, 1
			if _, err := sch.Schedule(static); err != nil {
				break
			}
			placed++
			if placed == out.CheckAt {
				out.StrandedRAMPct[alg] = st.Cluster.StrandedFraction(ref)[units.RAM] * 100
			}
		}
		out.Placed[alg] = placed
	}
	return out, nil
}

// Render draws the comparison.
func (st *Stranding) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: resource stranding (synthetic fill, ref VM %s)\n",
		st.Reference)
	fmt.Fprintf(&b, "  %-8s %22s %20s\n", "algo",
		fmt.Sprintf("stranded RAM %% @%d", st.CheckAt), "placed at 1st drop")
	for _, alg := range Algorithms {
		fmt.Fprintf(&b, "  %-8s %21.1f%% %20d\n",
			alg, st.StrandedRAMPct[alg], st.Placed[alg])
	}
	b.WriteString("  Best-fit packs tighter than RISA's next-fit (more VMs before the\n")
	b.WriteString("  first drop, less stranded capacity) — the paper's §4 claim. The\n")
	b.WriteString("  baselines strand less at the checkpoint only because first-fit\n")
	b.WriteString("  concentrates load in low-index racks, leaving whole racks\n")
	b.WriteString("  untouched — the behavior that costs them inter-rack assignments.\n")
	return b.String()
}
