package experiments

import (
	"strings"
	"testing"

	"risa/internal/sim"
	"risa/internal/units"
)

// smallChurn is a ladder small enough for unit tests: two rungs,
// duration-capped so each cell stays in the thousands of arrivals.
func smallChurn() ChurnConfig {
	return ChurnConfig{
		Arrivals: 20000,
		Duration: 40000,
		Rungs: []ChurnRung{
			{Label: "55%", Target: 0.55},
			{Label: "overload", Target: 1.20},
		},
	}
}

func TestRunChurnLadder(t *testing.T) {
	c, err := DefaultSetup().RunChurn(smallChurn())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Cells) != 2*len(Algorithms) {
		t.Fatalf("cells = %d, want %d", len(c.Cells), 2*len(Algorithms))
	}
	for _, cell := range c.Cells {
		r := cell.Result
		if r == nil {
			t.Fatalf("%s/%s: no result", cell.Rung.Label, cell.Algorithm)
		}
		if r.Arrivals == 0 || len(r.Windows) == 0 {
			t.Fatalf("%s/%s: empty measurement (%d arrivals, %d windows)",
				cell.Rung.Label, cell.Algorithm, r.Arrivals, len(r.Windows))
		}
		if r.Arrivals != r.Accepted+r.Dropped {
			t.Errorf("%s/%s: %d arrivals != %d accepted + %d dropped",
				cell.Rung.Label, cell.Algorithm, r.Arrivals, r.Accepted, r.Dropped)
		}
		switch cell.Rung.Label {
		case "55%":
			if r.Dropped != 0 {
				t.Errorf("55%%/%s: %d drops at a comfortable operating point", cell.Algorithm, r.Dropped)
			}
			// The controller holds the binding resource near target.
			util := r.AvgUtil[units.CPU]
			if r.AvgUtil[units.RAM] > util {
				util = r.AvgUtil[units.RAM]
			}
			if util < 40 || util > 70 {
				t.Errorf("55%%/%s: binding utilization %.1f%%, want near 55", cell.Algorithm, util)
			}
		case "overload":
			if r.Dropped == 0 {
				t.Errorf("overload/%s: no drops while overloaded", cell.Algorithm)
			}
			acc := float64(r.Accepted) / float64(r.Arrivals)
			if acc < 0.70 || acc > 0.99 {
				t.Errorf("overload/%s: acceptance %.2f, want the 1/1.2-ish overload regime", cell.Algorithm, acc)
			}
		}
	}
	out := c.Render()
	for _, want := range []string{"rung 55%", "rung overload", "RISA-BF", "acc%/win"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestChurnDeterministicAcrossParallelism pins that the placement-side
// results of the churn grid are independent of the worker-pool width
// (only wall-clock fields may differ).
func TestChurnDeterministicAcrossParallelism(t *testing.T) {
	cfg := ChurnConfig{
		Arrivals: 5000,
		Duration: 30000,
		Rungs:    []ChurnRung{{Label: "60%", Target: 0.60}},
	}
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(1)
	serial, err := DefaultSetup().RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	pooled, err := DefaultSetup().RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Cells {
		a, b := serial.Cells[i].Result, pooled.Cells[i].Result
		if a.TotalArrivals != b.TotalArrivals || a.Accepted != b.Accepted || a.Dropped != b.Dropped {
			t.Errorf("%s: counts differ across pool widths: %d/%d/%d vs %d/%d/%d",
				serial.Cells[i].Algorithm,
				a.TotalArrivals, a.Accepted, a.Dropped, b.TotalArrivals, b.Accepted, b.Dropped)
		}
		if a.AvgUtil != b.AvgUtil {
			t.Errorf("%s: utilization differs across pool widths", serial.Cells[i].Algorithm)
		}
		if len(a.Windows) != len(b.Windows) {
			t.Errorf("%s: window count differs across pool widths", serial.Cells[i].Algorithm)
			continue
		}
		for w := range a.Windows {
			wa, wb := a.Windows[w], b.Windows[w]
			if wa.Arrivals != wb.Arrivals || wa.Accepted != wb.Accepted || wa.AvgUtil != wb.AvgUtil {
				t.Errorf("%s window %d differs across pool widths", serial.Cells[i].Algorithm, w)
			}
		}
	}
}

func TestRunChurnValidation(t *testing.T) {
	if _, err := DefaultSetup().RunChurn(ChurnConfig{Arrivals: -1}); err == nil {
		t.Error("negative arrivals must fail")
	}
	if _, err := DefaultSetup().RunChurn(ChurnConfig{
		Rungs: []ChurnRung{{Label: "bad", Target: 0}},
	}); err == nil {
		t.Error("zero target must fail")
	}
}

func TestRunChurnCell(t *testing.T) {
	res, err := DefaultSetup().RunChurnCell("RISA", ChurnRung{Label: "50%", Target: 0.5},
		sim.StreamConfig{Workload: sim.StreamWorkload{MaxArrivals: 2000}, Windows: sim.StreamWindows{Window: 3000}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalArrivals != 2000 {
		t.Errorf("arrivals = %d, want 2000", res.TotalArrivals)
	}
	if res.PlacementsPerSec() <= 0 {
		t.Error("placements/sec should be positive")
	}
	if _, err := DefaultSetup().RunChurnCell("nope", ChurnRung{Label: "x", Target: 0.5},
		sim.StreamConfig{Workload: sim.StreamWorkload{MaxArrivals: 10}, Windows: sim.StreamWindows{Window: 10}}); err == nil {
		t.Error("unknown algorithm must fail")
	}
}
