package experiments

import (
	"fmt"
	"sort"
	"strings"

	"risa/internal/metrics"
	"risa/internal/sim"
	"risa/internal/units"
	"risa/internal/workload"
)

// Fig5 reproduces Figure 5: the number of inter-rack VM assignments of the
// four algorithms on the §5.1 synthetic workload, plus the prose
// utilization numbers of §5.1.
type Fig5 struct {
	Results map[string]*sim.Result // by algorithm
}

// RunFig5 executes the Figure 5 experiment.
func (s Setup) RunFig5() (*Fig5, error) {
	tr, err := s.SyntheticTrace()
	if err != nil {
		return nil, err
	}
	res, err := s.RunAll(tr)
	if err != nil {
		return nil, err
	}
	return &Fig5{Results: res}, nil
}

// Render draws the figure as ASCII bars plus the §5.1 utilization lines.
func (f *Fig5) Render() string {
	var bars []metrics.Bar
	for _, alg := range Algorithms {
		bars = append(bars, metrics.Bar{Label: alg, Value: float64(f.Results[alg].InterRack)})
	}
	var b strings.Builder
	b.WriteString(metrics.RenderBars(
		"Figure 5: Number of inter-rack VM assignments (synthetic workload)",
		bars, 40, "%.0f"))
	b.WriteString("\n§5.1 prose numbers (time-averaged utilization, %):\n")
	for _, alg := range Algorithms {
		r := f.Results[alg]
		fmt.Fprintf(&b, "  %-8s CPU %.2f  RAM %.2f  STO %.2f  (scheduled %d, dropped %d)\n",
			alg, r.AvgUtil[units.CPU], r.AvgUtil[units.RAM], r.AvgUtil[units.Storage],
			r.Scheduled, r.Dropped)
	}
	return b.String()
}

// Fig6 reproduces Figure 6: the CPU and RAM request histograms of the
// three Azure-like workloads.
type Fig6 struct {
	Traces []*workload.Trace
}

// RunFig6 generates the three practical workloads.
func (s Setup) RunFig6() (*Fig6, error) {
	f := &Fig6{}
	for _, subset := range workload.Subsets() {
		tr, err := s.AzureTrace(subset)
		if err != nil {
			return nil, err
		}
		f.Traces = append(f.Traces, tr)
	}
	return f, nil
}

// Render draws per-subset CPU and RAM histograms.
func (f *Fig6) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: CPU and RAM distribution of the Azure-like traces\n\n")
	for _, tr := range f.Traces {
		for _, res := range []units.Resource{units.CPU, units.RAM} {
			var bars []metrics.Bar
			for _, vc := range tr.Histogram(res) {
				bars = append(bars, metrics.Bar{
					Label: fmt.Sprintf("%d %s", vc.Value, res.Native()),
					Value: float64(vc.Count),
				})
			}
			b.WriteString(metrics.RenderBars(
				fmt.Sprintf("%s — %v requests", tr.Name, res), bars, 40, "%.0f"))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// subsetOrder returns the matrix's subsets in paper order.
func (m *AzureMatrix) subsetOrder() []workload.AzureSubset {
	subs := make([]workload.AzureSubset, 0, len(m.Results))
	for s := range m.Results {
		subs = append(subs, s)
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i] < subs[j] })
	return subs
}

// RenderFig7 draws Figure 7: percentage of inter-rack VM assignments per
// workload and algorithm.
func (m *AzureMatrix) RenderFig7() string {
	var b strings.Builder
	b.WriteString("Figure 7: Percentage of inter-rack VM assignments\n")
	for _, sub := range m.subsetOrder() {
		var bars []metrics.Bar
		for _, alg := range Algorithms {
			bars = append(bars, metrics.Bar{Label: alg, Value: m.Results[sub][alg].InterRackPct})
		}
		b.WriteString(metrics.RenderBars(fmt.Sprintf("  %v", sub), bars, 40, "%.2f%%"))
	}
	return b.String()
}

// RenderFig8 draws Figure 8: intra- and inter-rack network utilization.
func (m *AzureMatrix) RenderFig8() string {
	var b strings.Builder
	b.WriteString("Figure 8: Network utilization (peak, %)\n")
	for _, which := range []string{"Intra", "Inter"} {
		fmt.Fprintf(&b, "%s-rack network utilization:\n", which)
		for _, sub := range m.subsetOrder() {
			var bars []metrics.Bar
			for _, alg := range Algorithms {
				r := m.Results[sub][alg]
				v := r.PeakIntraUtil
				if which == "Inter" {
					v = r.PeakInterUtil
				}
				bars = append(bars, metrics.Bar{Label: alg, Value: v})
			}
			b.WriteString(metrics.RenderBars(fmt.Sprintf("  %v", sub), bars, 40, "%.2f%%"))
		}
	}
	return b.String()
}

// RenderFig9 draws Figure 9: peak power consumption of optical components.
func (m *AzureMatrix) RenderFig9() string {
	var b strings.Builder
	b.WriteString("Figure 9: Power consumption for optical components (peak, kW)\n")
	for _, sub := range m.subsetOrder() {
		var bars []metrics.Bar
		for _, alg := range Algorithms {
			bars = append(bars, metrics.Bar{Label: alg, Value: m.Results[sub][alg].PeakPowerW / 1000})
		}
		b.WriteString(metrics.RenderBars(fmt.Sprintf("  %v", sub), bars, 40, "%.3f kW"))
	}
	return b.String()
}

// RenderFig10 draws Figure 10: average CPU-RAM round-trip latency.
func (m *AzureMatrix) RenderFig10() string {
	var b strings.Builder
	b.WriteString("Figure 10: Average CPU-RAM round-trip delay (ns)\n")
	for _, sub := range m.subsetOrder() {
		var bars []metrics.Bar
		for _, alg := range Algorithms {
			bars = append(bars, metrics.Bar{
				Label: alg,
				Value: float64(m.Results[sub][alg].MeanCPURAMLatency.Nanoseconds()),
			})
		}
		b.WriteString(metrics.RenderBars(fmt.Sprintf("  %v", sub), bars, 40, "%.0f ns"))
	}
	return b.String()
}

// RenderFig12 draws Figure 12: scheduler execution time on the practical
// workloads (wall-clock spent inside Schedule calls).
func (m *AzureMatrix) RenderFig12() string {
	var b strings.Builder
	b.WriteString("Figure 12: Execution time of practical workload (ms of scheduling)\n")
	for _, sub := range m.subsetOrder() {
		var bars []metrics.Bar
		for _, alg := range Algorithms {
			bars = append(bars, metrics.Bar{
				Label: alg,
				Value: float64(m.Results[sub][alg].SchedulingTime.Microseconds()) / 1000,
			})
		}
		b.WriteString(metrics.RenderBars(fmt.Sprintf("  %v", sub), bars, 40, "%.2f ms"))
	}
	return b.String()
}

// Fig11 reproduces Figure 11: scheduler execution time on the synthetic
// workload.
type Fig11 struct {
	Results map[string]*sim.Result
}

// RunFig11 executes the Figure 11 experiment: the same runs as Figure 5,
// but forced onto a single worker — the figure reports wall-clock
// scheduling time, and concurrent runs contending for cores would inflate
// each other's measurement. (Figure 12 reads timings from the shared
// Azure matrix; regenerate it with -parallel 1 when the absolute times
// matter — see EXPERIMENTS.md.)
func (s Setup) RunFig11() (*Fig11, error) {
	tr, err := s.SyntheticTrace()
	if err != nil {
		return nil, err
	}
	res, err := s.runAllOn(Engine{Workers: 1}, tr)
	if err != nil {
		return nil, err
	}
	return &Fig11{Results: res}, nil
}

// Render draws the figure.
func (f *Fig11) Render() string {
	var bars []metrics.Bar
	for _, alg := range Algorithms {
		bars = append(bars, metrics.Bar{
			Label: alg,
			Value: float64(f.Results[alg].SchedulingTime.Microseconds()) / 1000,
		})
	}
	return metrics.RenderBars(
		"Figure 11: Execution time of synthetic workload (ms of scheduling)",
		bars, 40, "%.2f ms")
}
