package experiments

import (
	"fmt"
	"strings"

	"risa/internal/baseline"
	"risa/internal/core"
	"risa/internal/power"
	"risa/internal/sched"
	"risa/internal/workload"
)

// Defrag is an extension beyond the paper: take a cluster that NULB has
// already populated (with its characteristic inter-rack placements) and
// run RISA's migration pass (core.Rebalance) over the live VMs. It
// quantifies how much of the baselines' placement damage is repairable
// after the fact — and therefore how much of RISA's advantage comes from
// deciding intra-rack *up front*.
type Defrag struct {
	Placed        int
	InterBefore   int
	InterAfter    int
	Migrated      int
	PowerBeforeKW float64
	PowerAfterKW  float64
}

// RunDefrag statically places the first n VMs of Azure-3000 with NULB,
// then rebalances with RISA.
func (s Setup) RunDefrag(n int) (*Defrag, error) {
	tr, err := s.AzureTrace(workload.Azure3000)
	if err != nil {
		return nil, err
	}
	if n > tr.Len() {
		n = tr.Len()
	}
	st, err := s.NewState()
	if err != nil {
		return nil, err
	}
	nulb := baseline.NewNULB(st)
	model, err := power.NewModel(s.Optics)
	if err != nil {
		return nil, err
	}

	out := &Defrag{}
	var live []*sched.Assignment
	for i := 0; i < n; i++ {
		a, err := nulb.Schedule(tr.VMs[i])
		if err != nil {
			continue
		}
		live = append(live, a)
		out.Placed++
		if a.InterRack() {
			out.InterBefore++
		}
	}
	powerOf := func() float64 {
		var w float64
		for _, a := range live {
			for _, fl := range a.Flows() {
				w += model.FlowPower(fl)
			}
		}
		return w
	}
	out.PowerBeforeKW = powerOf() / 1000

	out.Migrated = core.Rebalance(core.New(st), live)
	for _, a := range live {
		if a.InterRack() {
			out.InterAfter++
		}
	}
	out.PowerAfterKW = powerOf() / 1000
	return out, nil
}

// Render draws the before/after comparison.
func (d *Defrag) Render() string {
	var b strings.Builder
	b.WriteString("Extension: RISA migration pass over a NULB-populated cluster (Azure-3000)\n")
	fmt.Fprintf(&b, "  placed %d VMs; inter-rack %d → %d (%d migrated)\n",
		d.Placed, d.InterBefore, d.InterAfter, d.Migrated)
	fmt.Fprintf(&b, "  steady-state optical power %.3f kW → %.3f kW (−%.1f%%)\n",
		d.PowerBeforeKW, d.PowerAfterKW,
		(1-d.PowerAfterKW/d.PowerBeforeKW)*100)
	b.WriteString("  The migration pass converts the baseline's inter-rack placements\n")
	b.WriteString("  back to intra-rack wherever any single rack can absorb the VM —\n")
	b.WriteString("  recovering most of the optical power RISA would have saved by\n")
	b.WriteString("  deciding intra-rack up front (at the cost of VM migrations).\n")
	return b.String()
}
