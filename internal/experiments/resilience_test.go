package experiments

import (
	"reflect"
	"sync"
	"testing"

	"risa/internal/sim"
)

// stripWallClock zeroes a Result's wall-clock field so runs can be
// compared bit for bit.
func stripWallClock(results map[string]*sim.Result) {
	for _, r := range results {
		r.SchedulingTime = 0
	}
}

// resilienceResult runs the full experiment and strips wall-clock noise;
// it returns rather than fails so concurrent callers can use it too.
func resilienceResult(setup Setup) (*Resilience, error) {
	r, err := AzureSetupFrom(setup).RunResilience()
	if err != nil {
		return nil, err
	}
	stripWallClock(r.Healthy)
	stripWallClock(r.Faulty)
	return r, nil
}

func runResilience(t *testing.T, setup Setup) *Resilience {
	t.Helper()
	r, err := resilienceResult(setup)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestResilienceParallelismInvariance: the fault experiment's results
// are bit-identical between a strictly serial run and a pool-wide run —
// the regression guard for shared state sneaking into the fault paths
// (every cell builds its own datacenter, so pool width must not matter).
func TestResilienceParallelismInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two full resilience experiments")
	}
	defer SetParallelism(0)
	SetParallelism(1)
	serial := runResilience(t, DefaultSetup())
	SetParallelism(4)
	pooled := runResilience(t, DefaultSetup())
	if !reflect.DeepEqual(serial, pooled) {
		t.Error("resilience results differ between -parallel 1 and a 4-worker pool")
	}
}

// TestResilienceInterleavedAB extends the PR 4 InterleavedHygiene
// pattern to the fault paths: two whole resilience experiments with
// different seeds run concurrently (their simulations interleaving on
// the worker pool and the Go scheduler) must reproduce their isolated
// references exactly. A scratch buffer, pooled record or index shared
// across instances would make a placement depend on the other
// instance's timing and diverge.
func TestResilienceInterleavedAB(t *testing.T) {
	if testing.Short() {
		t.Skip("four full resilience experiments")
	}
	setupA := DefaultSetup()
	setupB := DefaultSetup()
	setupB.Seed = 2
	// Isolated references, one after the other.
	refA := runResilience(t, setupA)
	refB := runResilience(t, setupB)
	// The same two experiments, concurrently.
	var wg sync.WaitGroup
	var gotA, gotB *Resilience
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); gotA, errA = resilienceResult(setupA) }()
	go func() { defer wg.Done(); gotB, errB = resilienceResult(setupB) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("interleaved runs failed: %v / %v", errA, errB)
	}
	if !reflect.DeepEqual(refA, gotA) {
		t.Error("instance A diverged when interleaved with instance B")
	}
	if !reflect.DeepEqual(refB, gotB) {
		t.Error("instance B diverged when interleaved with instance A")
	}
}

// TestResiliencePlanShape pins the experiment's plan abstraction: the
// outage is the canonical whole-rack plan at the quarter and half marks.
func TestResiliencePlanShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full resilience experiment")
	}
	r := runResilience(t, DefaultSetup())
	if r.Plan == nil || len(r.Plan.Events) != 2 {
		t.Fatalf("plan = %+v, want the two-event rack outage", r.Plan)
	}
	fail, heal := r.Plan.Events[0], r.Plan.Events[1]
	if fail.Repair || fail.Rack != r.FailedRack || fail.T != r.FailAt {
		t.Errorf("fail event %+v does not match experiment %d@%d", fail, r.FailedRack, r.FailAt)
	}
	if !heal.Repair || heal.Rack != r.FailedRack || heal.T != r.HealAt {
		t.Errorf("heal event %+v does not match experiment %d@%d", heal, r.FailedRack, r.HealAt)
	}
	// The outage must bite: at least one algorithm drops more (or places
	// more inter-rack) under the fault than healthy.
	changed := false
	for _, alg := range Algorithms {
		if r.Faulty[alg].Dropped != r.Healthy[alg].Dropped ||
			r.Faulty[alg].InterRack != r.Healthy[alg].InterRack {
			changed = true
		}
	}
	if !changed {
		t.Error("fixture too weak: the outage changed nothing for any algorithm")
	}
}
