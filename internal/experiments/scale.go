package experiments

import (
	"fmt"
	"strings"
	"time"

	"risa/internal/sim"
	"risa/internal/workload"
)

// This file is the hyperscale experiment family — an extension beyond the
// paper, whose cluster is fixed at the Table 1 size of 18 racks. Zervas et
// al. (the NULB/NALB source) frame disaggregated scheduling as a question
// of fabric growth; the scale sweep answers it empirically: the same four
// schedulers, the same synthetic workload family, on clusters from the
// paper's 18 racks up to ~910× that (16384 racks ≈ 100k boxes), with the offered load scaled
// proportionally so every cluster size runs at the same operating point.
// The quantity under test is the per-VM decision time: with the
// cluster-level candidate index it grows sublinearly in rack count.

// DefaultScaleMaxRacks is the largest cluster of the default sweep ladder:
// ~910× the paper's 18 racks — 16384 racks ≈ 100k boxes, the scale
// Protean-class placement services operate at.
const DefaultScaleMaxRacks = 16384

// DefaultScaleVMsPerRack is the sweep's offered load per rack. The paper's
// synthetic workload is 2500 VMs on 18 racks (≈139/rack); the sweep uses a
// lighter density so the hyperscale points stay inside a smoke budget
// while still pushing every cluster size to the same steady-state
// utilization.
const DefaultScaleVMsPerRack = 50

// ScaleLadder returns the sweep's rack counts: the paper's 18 racks
// quadrupling up to maxRacks, with maxRacks itself always the last point.
// A maxRacks at or below 18 collapses the ladder to that single point.
func ScaleLadder(maxRacks int) []int {
	if maxRacks <= 18 {
		return []int{maxRacks}
	}
	var ladder []int
	for r := 18; r < maxRacks; r *= 4 {
		ladder = append(ladder, r)
	}
	return append(ladder, maxRacks)
}

// ScalePoint holds one cluster size's results for every algorithm.
type ScalePoint struct {
	Racks   int
	VMs     int // trace length at this point
	Results map[string]*sim.Result
}

// PerVMDecision returns the mean wall-clock scheduling decision time per
// VM arrival for one algorithm at this point.
func (p *ScalePoint) PerVMDecision(alg string) time.Duration {
	r := p.Results[alg]
	if n := r.Scheduled + r.Dropped; n > 0 {
		return r.SchedulingTime / time.Duration(n)
	}
	return 0
}

// ScaleSweep is the full rack-count × algorithm grid.
type ScaleSweep struct {
	Points     []ScalePoint
	VMsPerRack int
}

// scaleTrace generates the synthetic workload for one cluster size: VM
// count proportional to racks, arrival rate scaled up by the same factor
// (so the per-rack arrival rate — and with it the steady-state utilization
// — matches the paper's 18-rack operating point), and the lifetime
// schedule stretched so lifetimes grow at the same rate in simulated time
// rather than per request.
func (s Setup) scaleTrace(racks, vmsPerRack int) (*workload.Trace, error) {
	factor := float64(racks) / 18
	cfg := workload.DefaultSyntheticConfig()
	cfg.Seed = s.Seed
	cfg.N = racks * vmsPerRack
	cfg.MeanInterarrival /= factor
	if setSize := int(float64(cfg.SetSize) * factor); setSize > 0 {
		cfg.SetSize = setSize
	}
	tr, err := workload.Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	tr.Name = fmt.Sprintf("scale-%dr", racks)
	return tr, nil
}

// RunScale executes the sweep over the given rack counts (ScaleLadder
// order is preserved) with vmsPerRack VMs per rack per point; values ≤ 0
// select DefaultScaleVMsPerRack. Like Figure 11 the grid runs on a single
// worker: the sweep's headline metric is wall-clock decision time, and
// concurrent runs contending for cores would inflate each other's
// measurement.
func (s Setup) RunScale(rackCounts []int, vmsPerRack int) (*ScaleSweep, error) {
	if vmsPerRack <= 0 {
		vmsPerRack = DefaultScaleVMsPerRack
	}
	sweep := &ScaleSweep{VMsPerRack: vmsPerRack}
	var jobs []Job
	for _, racks := range rackCounts {
		setup := s
		setup.Topology.Racks = racks
		tr, err := setup.scaleTrace(racks, vmsPerRack)
		if err != nil {
			return nil, err
		}
		sweep.Points = append(sweep.Points, ScalePoint{
			Racks:   racks,
			VMs:     len(tr.VMs),
			Results: make(map[string]*sim.Result, len(Algorithms)),
		})
		for _, alg := range Algorithms {
			jobs = append(jobs, Job{Setup: setup, Algorithm: alg, Trace: tr})
		}
	}
	outcomes, err := Engine{Workers: 1}.RunChecked(jobs)
	if err != nil {
		return nil, err
	}
	for i, o := range outcomes {
		sweep.Points[i/len(Algorithms)].Results[o.Job.Algorithm] = o.Result
	}
	return sweep, nil
}

// Render draws the sweep as one table per cluster size plus a decision-time
// growth summary across sizes.
func (sw *ScaleSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale sweep: schedulers vs cluster size (synthetic workload, %d VMs/rack)\n",
		sw.VMsPerRack)
	for _, p := range sw.Points {
		fmt.Fprintf(&b, "racks=%d (%d VMs):\n", p.Racks, p.VMs)
		fmt.Fprintf(&b, "  %-8s %10s %8s %12s %14s\n",
			"alg", "scheduled", "dropped", "inter-rack%", "sched-µs/VM")
		for _, alg := range Algorithms {
			r := p.Results[alg]
			fmt.Fprintf(&b, "  %-8s %10d %8d %11.2f%% %14.2f\n",
				alg, r.Scheduled, r.Dropped, r.InterRackPct,
				float64(p.PerVMDecision(alg).Nanoseconds())/1000)
		}
	}
	if len(sw.Points) > 1 {
		first, last := sw.Points[0], sw.Points[len(sw.Points)-1]
		growth := float64(last.Racks) / float64(first.Racks)
		b.WriteString("Decision-time growth (last vs first point):\n")
		for _, alg := range Algorithms {
			d0, d1 := first.PerVMDecision(alg), last.PerVMDecision(alg)
			ratio := 0.0
			if d0 > 0 {
				ratio = float64(d1) / float64(d0)
			}
			fmt.Fprintf(&b, "  %-8s %.2fx decision time for %.0fx racks\n", alg, ratio, growth)
		}
	}
	return b.String()
}
