package experiments

import (
	"strings"
	"testing"
)

func TestScaleLadder(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1152, []int{18, 72, 288, 1152}},
		{288, []int{18, 72, 288}},
		{100, []int{18, 72, 100}},
		{19, []int{18, 19}},
		{18, []int{18}},
		{4, []int{4}},
	}
	for _, c := range cases {
		got := ScaleLadder(c.max)
		if len(got) != len(c.want) {
			t.Errorf("ScaleLadder(%d) = %v, want %v", c.max, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ScaleLadder(%d) = %v, want %v", c.max, got, c.want)
				break
			}
		}
	}
}

func TestScaleTraceScalesWithRacks(t *testing.T) {
	s := DefaultSetup()
	small, err := s.scaleTrace(18, 40)
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.scaleTrace(72, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(small.VMs) != 18*40 || len(big.VMs) != 72*40 {
		t.Fatalf("trace lengths %d/%d, want %d/%d", len(small.VMs), len(big.VMs), 18*40, 72*40)
	}
	// 4x the VMs at 4x the arrival rate: the traces should span a similar
	// stretch of simulated time, keeping the operating point fixed.
	smallEnd := small.VMs[len(small.VMs)-1].Arrival
	bigEnd := big.VMs[len(big.VMs)-1].Arrival
	if bigEnd > 2*smallEnd || smallEnd > 2*bigEnd {
		t.Errorf("trace horizons diverge: 18 racks end at t=%d, 72 racks at t=%d", smallEnd, bigEnd)
	}
}

func TestRunScaleSmallSweep(t *testing.T) {
	sweep, err := DefaultSetup().RunScale([]int{2, 4}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(sweep.Points))
	}
	for _, p := range sweep.Points {
		if len(p.Results) != len(Algorithms) {
			t.Errorf("racks=%d: %d algorithm results, want %d", p.Racks, len(p.Results), len(Algorithms))
		}
		for _, alg := range Algorithms {
			r := p.Results[alg]
			if r == nil {
				t.Fatalf("racks=%d: no result for %s", p.Racks, alg)
			}
			if r.Scheduled+r.Dropped != p.VMs {
				t.Errorf("racks=%d %s: %d+%d outcomes, want %d VMs",
					p.Racks, alg, r.Scheduled, r.Dropped, p.VMs)
			}
			if p.PerVMDecision(alg) <= 0 {
				t.Errorf("racks=%d %s: non-positive per-VM decision time", p.Racks, alg)
			}
		}
	}
	out := sweep.Render()
	for _, want := range []string{"racks=2", "racks=4", "Decision-time growth", "RISA-BF"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
