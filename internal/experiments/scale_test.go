package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestScaleLadder(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{DefaultScaleMaxRacks, []int{18, 72, 288, 1152, 4608, 16384}},
		{16384, []int{18, 72, 288, 1152, 4608, 16384}},
		{4608, []int{18, 72, 288, 1152, 4608}},
		{1152, []int{18, 72, 288, 1152}},
		{288, []int{18, 72, 288}},
		{100, []int{18, 72, 100}},
		{19, []int{18, 19}},
		{18, []int{18}},
		{4, []int{4}},
	}
	for _, c := range cases {
		got := ScaleLadder(c.max)
		if len(got) != len(c.want) {
			t.Errorf("ScaleLadder(%d) = %v, want %v", c.max, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ScaleLadder(%d) = %v, want %v", c.max, got, c.want)
				break
			}
		}
	}
}

// TestScaleLadderGeometry pins the ladder's shape for any maxRacks: it
// starts at the paper's 18 racks, quadruples rung to rung, ends exactly
// at maxRacks, and is strictly increasing — so the default ladder tops
// out at 16384 racks (≈ 100k boxes) in six rungs.
func TestScaleLadderGeometry(t *testing.T) {
	for _, max := range []int{19, 72, 100, 288, 1152, 4608, 16384, 20000} {
		ladder := ScaleLadder(max)
		if ladder[0] != 18 {
			t.Errorf("ScaleLadder(%d) starts at %d, want 18", max, ladder[0])
		}
		if last := ladder[len(ladder)-1]; last != max {
			t.Errorf("ScaleLadder(%d) ends at %d", max, last)
		}
		for i := 1; i < len(ladder); i++ {
			if ladder[i] <= ladder[i-1] {
				t.Errorf("ScaleLadder(%d) not strictly increasing: %v", max, ladder)
			}
			if i < len(ladder)-1 && ladder[i] != 4*ladder[i-1] {
				t.Errorf("ScaleLadder(%d) rung %d = %d, want 4×%d", max, i, ladder[i], ladder[i-1])
			}
		}
	}
	if n := len(ScaleLadder(DefaultScaleMaxRacks)); n != 6 {
		t.Errorf("default ladder has %d rungs, want 6", n)
	}
}

// TestScaleTraceLoadScaling drives the trace generator across the whole
// default ladder (light per-rack density to stay fast) and checks the
// fixed-operating-point contract at every rung: VM count proportional to
// racks, and the arrival horizon roughly flat — rate scaled by the same
// factor as the load, all the way to the 16384-rack point.
func TestScaleTraceLoadScaling(t *testing.T) {
	s := DefaultSetup()
	const vmsPerRack = 2
	base, err := s.scaleTrace(18, vmsPerRack)
	if err != nil {
		t.Fatal(err)
	}
	baseEnd := base.VMs[len(base.VMs)-1].Arrival
	for _, racks := range ScaleLadder(DefaultScaleMaxRacks) {
		tr, err := s.scaleTrace(racks, vmsPerRack)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.VMs) != racks*vmsPerRack {
			t.Errorf("racks=%d: %d VMs, want %d", racks, len(tr.VMs), racks*vmsPerRack)
		}
		end := tr.VMs[len(tr.VMs)-1].Arrival
		// ~(racks/18)× the VMs at ~(racks/18)× the rate: the horizon
		// stays within a small factor of the 18-rack point even at 910×
		// the load (the sampled interarrivals add jitter, hence 3×).
		if end > 3*baseEnd || baseEnd > 3*end {
			t.Errorf("racks=%d: horizon %d diverges from 18-rack horizon %d", racks, end, baseEnd)
		}
		if tr.Name != fmt.Sprintf("scale-%dr", racks) {
			t.Errorf("racks=%d: trace name %q", racks, tr.Name)
		}
	}
}

func TestScaleTraceScalesWithRacks(t *testing.T) {
	s := DefaultSetup()
	small, err := s.scaleTrace(18, 40)
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.scaleTrace(72, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(small.VMs) != 18*40 || len(big.VMs) != 72*40 {
		t.Fatalf("trace lengths %d/%d, want %d/%d", len(small.VMs), len(big.VMs), 18*40, 72*40)
	}
	// 4x the VMs at 4x the arrival rate: the traces should span a similar
	// stretch of simulated time, keeping the operating point fixed.
	smallEnd := small.VMs[len(small.VMs)-1].Arrival
	bigEnd := big.VMs[len(big.VMs)-1].Arrival
	if bigEnd > 2*smallEnd || smallEnd > 2*bigEnd {
		t.Errorf("trace horizons diverge: 18 racks end at t=%d, 72 racks at t=%d", smallEnd, bigEnd)
	}
}

func TestRunScaleSmallSweep(t *testing.T) {
	sweep, err := DefaultSetup().RunScale([]int{2, 4}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(sweep.Points))
	}
	for _, p := range sweep.Points {
		if len(p.Results) != len(Algorithms) {
			t.Errorf("racks=%d: %d algorithm results, want %d", p.Racks, len(p.Results), len(Algorithms))
		}
		for _, alg := range Algorithms {
			r := p.Results[alg]
			if r == nil {
				t.Fatalf("racks=%d: no result for %s", p.Racks, alg)
			}
			if r.Scheduled+r.Dropped != p.VMs {
				t.Errorf("racks=%d %s: %d+%d outcomes, want %d VMs",
					p.Racks, alg, r.Scheduled, r.Dropped, p.VMs)
			}
			if p.PerVMDecision(alg) <= 0 {
				t.Errorf("racks=%d %s: non-positive per-VM decision time", p.Racks, alg)
			}
		}
	}
	out := sweep.Render()
	for _, want := range []string{"racks=2", "racks=4", "Decision-time growth", "RISA-BF"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}
