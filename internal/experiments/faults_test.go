package experiments

import (
	"reflect"
	"strings"
	"testing"

	"risa/internal/sim"
)

// quickFaultsConfig is one small cell per knob so the grid stays fast.
func quickFaultsConfig() FaultsConfig {
	return FaultsConfig{
		Arrivals: 4000,
		Duration: 20000,
		Targets:  []float64{0.6},
		Rungs:    []FaultRung{{Label: "smoke", MTBF: 4000, MTTR: 500}},
		Evict:    true,
	}
}

// stripFaultWallClock zeroes the wall-clock fields of every cell.
func stripFaultWallClock(f *Faults) {
	for i := range f.Cells {
		r := f.Cells[i].Result
		r.SchedulingTime, r.WallTime = 0, 0
		r.LatencyP50, r.LatencyP95, r.LatencyP99 = 0, 0, 0
		r.ReplaceP50, r.ReplaceP95, r.ReplaceP99 = 0, 0, 0
		for t := range r.Tiers {
			r.Tiers[t].LatencyP50, r.Tiers[t].LatencyP95, r.Tiers[t].LatencyP99 = 0, 0, 0
		}
	}
}

// TestFaultsLadderDeterministicAcrossPoolWidths: the availability grid
// is bit-identical between a serial run and a pool-wide run — same
// plans, same placements, same availability metrics.
func TestFaultsLadderDeterministicAcrossPoolWidths(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1)
	serial, err := DefaultSetup().RunFaults(quickFaultsConfig())
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	pooled, err := DefaultSetup().RunFaults(quickFaultsConfig())
	if err != nil {
		t.Fatal(err)
	}
	stripFaultWallClock(serial)
	stripFaultWallClock(pooled)
	if !reflect.DeepEqual(serial, pooled) {
		t.Error("fault ladder differs between -parallel 1 and a 4-worker pool")
	}
	// The fixture must displace something, or the grid proves nothing.
	displaced := 0
	for _, cell := range serial.Cells {
		displaced += cell.Result.Displaced
	}
	if displaced == 0 {
		t.Error("fixture too weak: no cell displaced a VM")
	}
}

// TestFaultsGridShape: the default ladder is rung-major over targets and
// algorithms with a fault-free baseline first.
func TestFaultsGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full default ladder")
	}
	f, err := DefaultSetup().RunFaults(FaultsConfig{Arrivals: 2000, Duration: 16000})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(DefaultFaultRungs(0)) * 2 * len(Algorithms)
	if len(f.Cells) != wantCells {
		t.Fatalf("%d cells, want %d", len(f.Cells), wantCells)
	}
	if f.Cells[0].Rung.MTBF != 0 {
		t.Error("first rung should be the fault-free baseline")
	}
	for i, cell := range f.Cells {
		if cell.Algorithm != Algorithms[i%len(Algorithms)] {
			t.Fatalf("cell %d algorithm %s out of order", i, cell.Algorithm)
		}
		if cell.Result == nil {
			t.Fatalf("cell %d has no result", i)
		}
		if cell.Rung.MTBF == 0 && cell.Result.Displaced != 0 {
			t.Errorf("baseline cell %d displaced %d VMs", i, cell.Result.Displaced)
		}
	}
	out := f.Render()
	for _, want := range []string{"Availability ladder", "rung none", "rung calm", "rung storm", "NULB", "RISA-BF"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q", want)
		}
	}
}

func TestFaultsConfigValidation(t *testing.T) {
	bad := []FaultsConfig{
		{Arrivals: -1},
		{Duration: -5},
		{Targets: []float64{0}},
		{Rungs: []FaultRung{{Label: "x", MTBF: 100, MTTR: 0}}},
		{Rungs: []FaultRung{{Label: "x", MTBF: -1, MTTR: 10}}},
	}
	for i, cfg := range bad {
		if _, err := DefaultSetup().RunFaults(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestFaultCellKeepRunningVsEvict: the two recovery policies really
// differ — with eviction the displaced counter moves; without it the
// same cell keeps every VM in place.
func TestFaultCellKeepRunningVsEvict(t *testing.T) {
	cfg := sim.StreamConfig{Workload: sim.StreamWorkload{MaxArrivals: 4000, Duration: 20000}, Windows: sim.StreamWindows{Warmup: 5000, Window: 3000}}
	rung := FaultRung{Label: "smoke", MTBF: 4000, MTTR: 500}
	keep, err := DefaultSetup().RunFaultCell("RISA", 0.6, rung, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	evict, err := DefaultSetup().RunFaultCell("RISA", 0.6, rung, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if keep.Displaced != 0 {
		t.Errorf("keep-running cell displaced %d VMs", keep.Displaced)
	}
	if evict.Displaced == 0 {
		t.Error("evict cell displaced nothing")
	}
	// Every displaced VM resolves to exactly one of recovered or lost
	// (DisplacedQueued is a detour marker, not a third outcome).
	if evict.Recovered+evict.DisplacedLost != evict.Displaced {
		t.Errorf("displacement outcomes %d+%d do not sum to %d",
			evict.Recovered, evict.DisplacedLost, evict.Displaced)
	}
}
