package svc

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"risa/internal/faults"
	"risa/internal/sched"
	"risa/internal/sim"
	"risa/internal/topology"
	"risa/internal/workload"
)

// Journal and snapshot file names inside the engine's data directory.
const (
	journalFile  = "journal.wal"
	snapshotFile = "snapshot.gob"
)

// Engine is the daemon's single-writer state machine: one sim.Driver,
// one write-ahead journal, and the placement history. All methods must
// be called from one goroutine (the server's worker loop); the Engine
// has no locks by design — serialization is the concurrency model, as
// it is for the schedulers themselves.
//
// Durability contract: an operation is applied only after its journal
// record is fsync'd, and placement requests are deduplicated by VM ID,
// so an at-least-once client (retry until a response arrives) gets
// exactly-once placement across crashes — a retry of an operation that
// was journaled but not acknowledged returns the replayed outcome.
type Engine struct {
	cfg Config
	dir string

	j  *Journal
	st *sched.State
	d  *sim.Driver

	algo      string
	inService int // racks serving traffic; the rest are dark spares

	history []Outcome
	seen    map[int]int // VM ID → history index, the dedup map

	snapEvery int
	sinceSnap int
	replaying bool
}

// engineSnapshot is the on-disk snapshot: everything Open needs to
// resume without replaying the whole journal. History rides along so the
// placement log survives recovery in full.
type engineSnapshot struct {
	Config    Config
	JSeq      int64 // journal records ≤ JSeq are folded into this snapshot
	Algo      string
	InService int
	Driver    *sim.DriverSnapshot
	History   []Outcome
}

// Open builds an engine over the data directory dir, creating it on
// first run. With a snapshot present, the driver is restored from it and
// the journal suffix replayed; otherwise the full journal is replayed
// from genesis. Either way the resulting state is bit-identical to a
// process that executed the whole operation sequence without crashing.
// snapEvery is the number of journal records between automatic
// snapshots (≤0 uses 256).
func Open(dir string, cfg Config, snapEvery int) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if snapEvery <= 0 {
		snapEvery = 256
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, dir: dir, seen: map[int]int{}, snapEvery: snapEvery}

	snap, err := readSnapshot(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, err
	}
	if snap != nil && !sameShape(snap.Config, cfg) {
		return nil, fmt.Errorf("svc: snapshot was captured for a different datacenter shape (%+v)", snap.Config.Topology)
	}
	if snap != nil {
		if err := e.restore(snap); err != nil {
			return nil, err
		}
	} else {
		if err := e.genesis(); err != nil {
			return nil, err
		}
	}

	j, recs, err := openJournal(filepath.Join(dir, journalFile), cfg)
	if err != nil {
		return nil, err
	}
	e.j = j
	start := int64(0)
	if snap != nil {
		start = snap.JSeq
		if int64(len(recs)) < start {
			j.Close()
			return nil, fmt.Errorf("svc: snapshot covers journal seq %d but only %d records survive", start, len(recs))
		}
	}
	e.replaying = true
	for _, rec := range recs[int(start):] {
		if _, err := e.apply(rec); err != nil {
			j.Close()
			return nil, fmt.Errorf("svc: replaying journal record %d: %w", rec.Seq, err)
		}
	}
	e.replaying = false
	e.sinceSnap = len(recs) - int(start)
	return e, nil
}

// genesis builds the pristine datacenter: all configured racks plus the
// spares, with every spare's boxes failed (dark) through the driver's
// refcounts. Spare darkness is derived from the config, not journaled —
// both the uncrashed and the recovered process construct it identically.
func (e *Engine) genesis() error {
	tcfg := e.cfg.Topology
	tcfg.Racks += e.cfg.Spares
	st, err := sched.NewState(tcfg, e.cfg.Network)
	if err != nil {
		return err
	}
	sch, err := sched.New(e.cfg.Algo, st, sched.Options{})
	if err != nil {
		return err
	}
	e.st = st
	e.d = sim.NewDriver(st, sch)
	e.algo = e.cfg.Algo
	e.inService = e.cfg.Topology.Racks
	for r := e.inService; r < tcfg.Racks; r++ {
		if err := e.d.Apply(faults.Event{Tier: faults.RackTier, Rack: r}); err != nil {
			return err
		}
	}
	return nil
}

// restore rebuilds the engine from a snapshot: pristine state, scheduler
// by the snapshot's algorithm, driver via sim.RestoreDriver (which
// re-applies spare darkness from the snapshot's failure set), history
// and dedup map verbatim.
func (e *Engine) restore(snap *engineSnapshot) error {
	tcfg := e.cfg.Topology
	tcfg.Racks += e.cfg.Spares
	st, err := sched.NewState(tcfg, e.cfg.Network)
	if err != nil {
		return err
	}
	sch, err := sched.New(snap.Algo, st, sched.Options{})
	if err != nil {
		return err
	}
	d, err := sim.RestoreDriver(st, sch, snap.Driver)
	if err != nil {
		return err
	}
	e.st = st
	e.d = d
	e.algo = snap.Algo
	e.inService = snap.InService
	e.history = snap.History
	for i, o := range e.history {
		e.seen[o.VMID] = i
	}
	return nil
}

// Place journals and applies one placement request. A VM ID already
// decided returns its original outcome (idempotent retry).
func (e *Engine) Place(vm workload.VM) (Outcome, error) {
	if i, ok := e.seen[vm.ID]; ok {
		return e.history[i], nil
	}
	if err := vm.Validate(); err != nil {
		return Outcome{}, fmt.Errorf("svc: invalid VM: %w", err)
	}
	return e.commit(Record{Kind: RecordPlace, VM: vm})
}

// Mutate journals and applies one live fail/heal event at the current
// virtual time. Only box- and rack-scope events over in-service racks
// are accepted.
func (e *Engine) Mutate(ev faults.Event) error {
	if ev.Tier != faults.BoxTier && ev.Tier != faults.RackTier {
		return fmt.Errorf("svc: mutations are box- or rack-scope, got %v", ev.Tier)
	}
	if ev.Rack < 0 || ev.Rack >= e.inService {
		return fmt.Errorf("svc: rack %d outside the %d in-service racks", ev.Rack, e.inService)
	}
	if ev.Tier == faults.BoxTier && (ev.Box < 0 || ev.Box >= e.st.Cluster.Config().BoxesPerRack()) {
		return fmt.Errorf("svc: box %d outside %d boxes per rack", ev.Box, e.st.Cluster.Config().BoxesPerRack())
	}
	ev.T = e.d.Now()
	_, err := e.commit(Record{Kind: RecordMutate, Fault: ev})
	return err
}

// AddRack journals and applies bringing the next spare rack into
// service; it returns the global index of the new rack.
func (e *Engine) AddRack() (int, error) {
	if e.inService >= e.cfg.Topology.Racks+e.cfg.Spares {
		return -1, fmt.Errorf("svc: no spare racks left (%d in service)", e.inService)
	}
	rack := e.inService
	if _, err := e.commit(Record{Kind: RecordAddRack}); err != nil {
		return -1, err
	}
	return rack, nil
}

// Swap journals and applies a scheduler hot-swap. The algorithm must be
// registered; the swap happens at a decision boundary with the topology
// indexes settled (sim.Driver.SetScheduler).
func (e *Engine) Swap(algo string) error {
	if _, err := sched.New(algo, e.st, sched.Options{}); err != nil {
		return err
	}
	_, err := e.commit(Record{Kind: RecordSwap, Algo: algo})
	return err
}

// commit is the write path shared by all mutating operations: journal
// first (fsync'd), then apply, then maybe snapshot.
func (e *Engine) commit(rec Record) (Outcome, error) {
	if err := e.j.Append(&rec); err != nil {
		return Outcome{}, fmt.Errorf("svc: journal append: %w", err)
	}
	out, err := e.apply(rec)
	if err != nil {
		return Outcome{}, err
	}
	e.sinceSnap++
	if e.sinceSnap >= e.snapEvery {
		if err := e.WriteSnapshot(); err != nil {
			return Outcome{}, err
		}
	}
	return out, nil
}

// apply executes one journaled operation against the driver. It is the
// single interpretation point: the live path and crash replay both run
// through it, which is what makes recovery decision-for-decision
// faithful.
func (e *Engine) apply(rec Record) (Outcome, error) {
	switch rec.Kind {
	case RecordPlace:
		if i, ok := e.seen[rec.VM.ID]; ok {
			return e.history[i], nil // duplicate record: replay is idempotent
		}
		out := Outcome{Seq: rec.Seq, VMID: rec.VM.ID, Tier: rec.VM.Tier, CPUBox: -1, RAMBox: -1, STOBox: -1}
		a, t, err := e.d.Place(rec.VM)
		out.T = t
		if err != nil {
			out.Reason = err.Error()
		} else {
			out.Accepted = true
			out.CPUBox = globalBox(e.st.Cluster, a.CPU)
			out.RAMBox = globalBox(e.st.Cluster, a.RAM)
			out.STOBox = globalBox(e.st.Cluster, a.STO)
			out.InterRack = a.InterRack()
		}
		e.seen[out.VMID] = len(e.history)
		e.history = append(e.history, out)
		return out, nil
	case RecordMutate:
		return Outcome{}, e.d.Apply(rec.Fault)
	case RecordAddRack:
		if e.inService >= e.cfg.Topology.Racks+e.cfg.Spares {
			return Outcome{}, fmt.Errorf("svc: add-rack record %d but no spares left", rec.Seq)
		}
		if err := e.d.Apply(faults.Event{T: e.d.Now(), Repair: true, Tier: faults.RackTier, Rack: e.inService}); err != nil {
			return Outcome{}, err
		}
		e.inService++
		return Outcome{}, nil
	case RecordSwap:
		sch, err := sched.New(rec.Algo, e.st, sched.Options{})
		if err != nil {
			return Outcome{}, err
		}
		e.d.SetScheduler(sch)
		e.algo = rec.Algo
		return Outcome{}, nil
	default:
		return Outcome{}, fmt.Errorf("svc: unknown journal record kind %d", rec.Kind)
	}
}

// globalBox flattens a placement's box coordinate to the global box
// index (-1 for an empty placement).
func globalBox(cl *topology.Cluster, p topology.Placement) int {
	if p.IsZero() {
		return -1
	}
	return p.Box.Rack()*cl.Config().BoxesPerRack() + p.Box.Index()
}

// WriteSnapshot captures the engine at the current event boundary and
// atomically replaces the snapshot file (write-temp, fsync, rename).
// Journal records already folded in are remembered via JSeq, so the next
// Open replays only the suffix.
func (e *Engine) WriteSnapshot() error {
	ds, err := e.d.Snapshot()
	if err != nil {
		return err
	}
	snap := engineSnapshot{
		Config:    e.cfg,
		JSeq:      e.j.NextSeq() - 1,
		Algo:      e.algo,
		InService: e.inService,
		Driver:    ds,
		History:   e.history,
	}
	path := filepath.Join(e.dir, snapshotFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(&snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	e.sinceSnap = 0
	return nil
}

// readSnapshot decodes the snapshot file; a missing file is not an
// error (first run, or crash before the first snapshot).
func readSnapshot(path string) (*engineSnapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var snap engineSnapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return nil, fmt.Errorf("svc: snapshot undecodable: %w", err)
	}
	return &snap, nil
}

// Close writes a final snapshot and closes the journal. Skipping Close
// (a crash) is always safe — that is the point of the journal — but a
// graceful shutdown bounds the next start's replay to zero records.
func (e *Engine) Close() error {
	snapErr := e.WriteSnapshot()
	closeErr := e.j.Close()
	if snapErr != nil {
		return snapErr
	}
	return closeErr
}

// Algo returns the live scheduler algorithm name.
func (e *Engine) Algo() string { return e.algo }

// InService returns the number of racks currently serving traffic.
func (e *Engine) InService() int { return e.inService }

// Spares returns the number of dark spare racks remaining.
func (e *Engine) Spares() int { return e.cfg.Topology.Racks + e.cfg.Spares - e.inService }

// Now returns the engine's virtual time.
func (e *Engine) Now() int64 { return e.d.Now() }

// Resident returns the number of VMs currently placed.
func (e *Engine) Resident() int { return e.d.Resident() }

// History returns the placement log; the slice is owned by the engine
// and must not be mutated.
func (e *Engine) History() []Outcome { return e.history }

// WritePlacements renders the placement log, one deterministic line per
// decision — the artifact CI diffs between a crashed-and-recovered run
// and an uncrashed one.
func (e *Engine) WritePlacements(w io.Writer) error {
	for _, o := range e.history {
		if _, err := fmt.Fprintln(w, o.String()); err != nil {
			return err
		}
	}
	return nil
}
