package svc

import (
	"os"
	"path/filepath"
	"testing"

	"risa/internal/units"
	"risa/internal/workload"
)

// journalWith writes n place records and returns the journal path.
func journalWith(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "j.wal")
	j, recs, err := openJournal(path, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal returned %d records", len(recs))
	}
	for i := 0; i < n; i++ {
		rec := Record{Kind: RecordPlace, VM: workload.VM{ID: i + 1, Lifetime: 10, Req: units.Vec(1, 1, 0)}}
		if err := j.Append(&rec); err != nil {
			t.Fatal(err)
		}
		if rec.Seq != int64(i+1) {
			t.Fatalf("record %d assigned seq %d", i, rec.Seq)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func reopen(t *testing.T, path string) ([]Record, error) {
	t.Helper()
	j, recs, err := openJournal(path, testConfig())
	if err != nil {
		return nil, err
	}
	j.Close()
	return recs, nil
}

// TestJournalRoundtrip pins the happy path: append, reopen, same
// records, appends continue the sequence.
func TestJournalRoundtrip(t *testing.T) {
	path := journalWith(t, 5)
	recs, err := reopen(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("reopened %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != int64(i+1) || rec.Kind != RecordPlace || rec.VM.ID != i+1 {
			t.Fatalf("record %d corrupted on roundtrip: %+v", i, rec)
		}
	}
	j, _, err := openJournal(path, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.NextSeq() != 6 {
		t.Fatalf("NextSeq after reopen = %d, want 6", j.NextSeq())
	}
}

// TestJournalTornTailTolerated pins the crash-mid-append policy: a
// truncated final record is dropped, everything before it survives, and
// the file is usable for append again.
func TestJournalTornTailTolerated(t *testing.T) {
	path := journalWith(t, 5)
	for _, chop := range []int64{1, 5, 9} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, info.Size()-chop); err != nil {
			t.Fatal(err)
		}
		recs, err := reopen(t, path)
		if err != nil {
			t.Fatalf("chop %d: torn tail must be tolerated, got %v", chop, err)
		}
		if len(recs) != 4 {
			t.Fatalf("chop %d: %d records survive, want 4", chop, len(recs))
		}
		// restore a full 5-record journal for the next chop size
		path = journalWith(t, 5)
	}
}

// TestJournalTornTailTruncatedOnOpen pins that open removes the torn
// bytes: after reopening, an append lands at a clean frame boundary and
// the journal reads back whole.
func TestJournalTornTailTruncatedOnOpen(t *testing.T) {
	path := journalWith(t, 3)
	info, _ := os.Stat(path)
	if err := os.Truncate(path, info.Size()-2); err != nil {
		t.Fatal(err)
	}
	j, recs, err := openJournal(path, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records survive the torn tail, want 2", len(recs))
	}
	rec := Record{Kind: RecordAddRack}
	if err := j.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 3 {
		t.Fatalf("post-truncation append got seq %d, want 3", rec.Seq)
	}
	j.Close()
	recs, err = reopen(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Kind != RecordAddRack {
		t.Fatalf("journal after truncate+append reads %+v", recs)
	}
}

// TestJournalMidFileCorruptionRejected pins the other half of the
// policy: a flipped byte with intact data after it is not a torn tail —
// it is corruption, and recovery must refuse to replay around it.
func TestJournalMidFileCorruptionRejected(t *testing.T) {
	path := journalWith(t, 6)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reopen(t, path); err == nil {
		t.Fatal("mid-file corruption must be rejected, not replayed around")
	}
}

// TestJournalBadFinalFrameTolerated: a corrupted record is excusable
// only as the file's final frame (indistinguishable from a torn
// append); flip a byte in the last record's payload and the journal
// opens with one record fewer.
func TestJournalBadFinalFrameTolerated(t *testing.T) {
	path := journalWith(t, 4)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := reopen(t, path)
	if err != nil {
		t.Fatalf("bad final frame must read as a torn tail, got %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records survive, want 3", len(recs))
	}
}

// TestJournalShapeMismatchRejected pins the header check.
func TestJournalShapeMismatchRejected(t *testing.T) {
	path := journalWith(t, 1)
	other := testConfig()
	other.Topology.Racks = 9
	if _, _, err := openJournal(path, other); err == nil {
		t.Fatal("journal from a different datacenter shape must be rejected")
	}
}

// TestJournalNotAJournal pins the magic check.
func TestJournalNotAJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openJournal(path, testConfig()); err == nil {
		t.Fatal("garbage file must be rejected")
	}
}
