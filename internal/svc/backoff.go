package svc

import (
	"math/rand"
	"time"
)

// Backoff computes capped exponential retry delays with seeded jitter,
// for clients retrying into a full admission queue (cmd/workloadgen's
// HTTP mode, or any internal retry path). Without backoff a shed client
// spins on the daemon at line rate, turning backpressure into load; the
// cap bounds the worst-case retry gap and the jitter decorrelates
// retrying clients so they do not re-arrive in lockstep.
//
// Delays follow "equal jitter": attempt n draws uniformly from
// [ceil/2, ceil) where ceil = min(Cap, Base·2ⁿ). Every delay is
// positive and strictly below Cap, growth stops at the cap, and the
// sequence is deterministic for a given seed — which is what
// TestRetryBackoffBounded pins.
type Backoff struct {
	// Base is the first attempt's delay ceiling; Cap bounds every
	// ceiling after doubling.
	Base, Cap time.Duration

	attempt int
	rng     *rand.Rand
}

// NewBackoff builds a backoff with its own seeded jitter stream.
// Non-positive Base or Cap fall back to 10ms / 2s.
func NewBackoff(base, cap time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if cap <= 0 {
		cap = 2 * time.Second
	}
	if base > cap {
		base = cap
	}
	return &Backoff{Base: base, Cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next retry delay and advances the attempt counter.
func (b *Backoff) Next() time.Duration {
	ceil := b.Base << uint(b.attempt)
	if ceil <= 0 || ceil > b.Cap { // <<= overflow lands here too
		ceil = b.Cap
	} else {
		b.attempt++
	}
	half := ceil / 2
	if half <= 0 {
		return ceil
	}
	return half + time.Duration(b.rng.Int63n(int64(half)))
}

// Reset rewinds the attempt counter (after a success) without touching
// the jitter stream.
func (b *Backoff) Reset() { b.attempt = 0 }
