package svc

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"risa/internal/faults"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"

	_ "risa/internal/baseline" // register NULB, NALB
	_ "risa/internal/core"     // register RISA, RISA-BF
)

// testConfig is a small daemon shape: 4 in-service racks, 1 spare.
func testConfig() Config {
	tcfg := topology.DefaultConfig()
	tcfg.Racks = 4
	return Config{Topology: tcfg, Network: network.DefaultConfig(), Spares: 1, Algo: "RISA"}
}

// op is one scripted engine operation for the twin tests.
type op struct {
	kind    RecordKind
	vm      workload.VM
	fault   faults.Event
	algo    string
	addRack bool
}

// genOps derives a deterministic operation script from seed: mostly
// placements with monotone arrivals, seasoned with rack/box fail+heal
// pairs, at most one add-rack, and scheduler swaps.
func genOps(seed int64, n int) []op {
	rng := rand.New(rand.NewSource(seed))
	algos := sched.Registered()
	ops := make([]op, 0, n)
	var t int64
	addRacks := 0
	id := 0
	for len(ops) < n {
		switch k := rng.Intn(20); {
		case k < 15: // placement
			t += rng.Int63n(15)
			id++
			ops = append(ops, op{kind: RecordPlace, vm: workload.VM{
				ID:       id,
				Arrival:  t,
				Lifetime: 1 + rng.Int63n(120),
				Tier:     rng.Intn(workload.NumTiers),
				Req: units.Vec(
					units.Amount(1+rng.Int63n(32)),
					units.Amount(1+rng.Int63n(32)),
					units.Amount(64*rng.Int63n(4))),
			}})
		case k < 17: // fail+heal pair over an in-service rack
			ev := faults.Event{Tier: faults.RackTier, Rack: rng.Intn(4)}
			if rng.Intn(2) == 0 {
				ev.Tier = faults.BoxTier
				ev.Box = rng.Intn(6)
			}
			heal := ev
			heal.Repair = true
			ops = append(ops, op{kind: RecordMutate, fault: ev}, op{kind: RecordMutate, fault: heal})
		case k < 18 && addRacks == 0: // one add-rack per script at most
			addRacks++
			ops = append(ops, op{kind: RecordAddRack, addRack: true})
		default: // swap
			ops = append(ops, op{kind: RecordSwap, algo: algos[rng.Intn(len(algos))]})
		}
	}
	return ops[:n]
}

// applyOps runs the script's tail starting at from; the engine must
// already hold the effect of ops[:from].
func applyOps(t *testing.T, e *Engine, ops []op, from int) {
	t.Helper()
	for i := from; i < len(ops); i++ {
		var err error
		switch o := ops[i]; o.kind {
		case RecordPlace:
			_, err = e.Place(o.vm)
		case RecordMutate:
			err = e.Mutate(o.fault)
		case RecordAddRack:
			_, err = e.AddRack()
		case RecordSwap:
			err = e.Swap(o.algo)
		}
		if err != nil {
			t.Fatalf("op %d (%+v): %v", i, ops[i], err)
		}
	}
}

// assertTwins asserts decision-for-decision and state-level equality of
// the crashed-and-recovered engine b against the uncrashed twin a.
func assertTwins(t *testing.T, a, b *Engine) {
	t.Helper()
	if !reflect.DeepEqual(a.History(), b.History()) {
		ha, hb := a.History(), b.History()
		for i := range ha {
			if i >= len(hb) || ha[i] != hb[i] {
				t.Fatalf("histories diverge at %d:\n  uncrashed: %+v\n  recovered: %+v", i, ha[i], hb[i])
			}
		}
		t.Fatalf("recovered history has %d decisions, uncrashed %d", len(hb), len(ha))
	}
	if a.Now() != b.Now() || a.Resident() != b.Resident() || a.Algo() != b.Algo() || a.InService() != b.InService() {
		t.Fatalf("state diverged: now %d/%d resident %d/%d algo %s/%s racks %d/%d",
			a.Now(), b.Now(), a.Resident(), b.Resident(), a.Algo(), b.Algo(), a.InService(), b.InService())
	}
	sa, err := a.d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("driver snapshots differ after identical op sequences")
	}
}

// crash simulates kill -9: the journal file handle closes (the kernel
// would do the same) but no final snapshot is written and no in-memory
// state survives.
func (e *Engine) crash() { e.j.Close() }

// TestCrashReplayEquivalence is the deterministic core of the recovery
// contract: kill the engine at an op boundary, reopen from snapshot +
// journal, finish the script, and require bit-identical history and
// driver state against an uncrashed twin — including across swaps,
// mutations and an add-rack.
func TestCrashReplayEquivalence(t *testing.T) {
	cfg := testConfig()
	ops := genOps(42, 80)
	for _, crashAt := range []int{0, 1, 13, 40, 79, 80} {
		a, err := Open(t.TempDir(), cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		applyOps(t, a, ops, 0)

		dirB := t.TempDir()
		b, err := Open(dirB, cfg, 7) // frequent snapshots: exercise restore
		if err != nil {
			t.Fatal(err)
		}
		applyOps(t, b, ops[:crashAt], 0)
		b.crash()
		b2, err := Open(dirB, cfg, 7)
		if err != nil {
			t.Fatalf("crashAt %d: reopen: %v", crashAt, err)
		}
		applyOps(t, b2, ops, crashAt)
		assertTwins(t, a, b2)
		a.crash()
		b2.crash()
	}
}

// TestDoubleCrash kills the engine twice — the second time from an
// already-recovered process whose snapshots were taken mid-recovery —
// and still requires exact equivalence with the uncrashed twin.
func TestDoubleCrash(t *testing.T) {
	cfg := testConfig()
	ops := genOps(7, 60)
	a, err := Open(t.TempDir(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.crash()
	applyOps(t, a, ops, 0)

	dirB := t.TempDir()
	b, err := Open(dirB, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, b, ops[:20], 0)
	b.crash()
	b2, err := Open(dirB, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, b2, ops[:45], 20)
	b2.crash()
	b3, err := Open(dirB, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer b3.crash()
	applyOps(t, b3, ops, 45)
	assertTwins(t, a, b3)
}

// TestEngineDedup pins exactly-once semantics: retrying a decided VM ID
// returns the original outcome without re-placing.
func TestEngineDedup(t *testing.T) {
	e, err := Open(t.TempDir(), testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e.crash()
	vm := workload.VM{ID: 9, Lifetime: 50, Req: units.Vec(4, 8, 64)}
	first, err := e.Place(vm)
	if err != nil {
		t.Fatal(err)
	}
	resident := e.Resident()
	again, err := e.Place(vm)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("retry returned %+v, want original %+v", again, first)
	}
	if e.Resident() != resident {
		t.Fatalf("retry changed resident count %d → %d", resident, e.Resident())
	}
	if len(e.History()) != 1 {
		t.Fatalf("retry appended to history: %d entries", len(e.History()))
	}
}

// TestEngineAddRackSpares pins the spare-rack ladder: capacity grows per
// add-rack, mutations outside in-service racks are rejected, and the
// spares eventually run out.
func TestEngineAddRackSpares(t *testing.T) {
	e, err := Open(t.TempDir(), testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e.crash()
	if e.InService() != 4 || e.Spares() != 1 {
		t.Fatalf("genesis: %d in service, %d spares", e.InService(), e.Spares())
	}
	if err := e.Mutate(faults.Event{Tier: faults.RackTier, Rack: 4}); err == nil {
		t.Fatal("mutating a dark spare rack must be rejected")
	}
	rack, err := e.AddRack()
	if err != nil || rack != 4 {
		t.Fatalf("AddRack = %d, %v; want 4, nil", rack, err)
	}
	if e.Spares() != 0 {
		t.Fatalf("spares after add: %d", e.Spares())
	}
	if err := e.Mutate(faults.Event{Tier: faults.RackTier, Rack: 4}); err != nil {
		t.Fatalf("mutating the newly added rack: %v", err)
	}
	if _, err := e.AddRack(); err == nil {
		t.Fatal("AddRack with no spares left must fail")
	}
}

// TestEngineShapeMismatch pins the recovery compatibility check: state
// captured under one datacenter shape must not restore under another.
func TestEngineShapeMismatch(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Place(workload.VM{ID: 1, Lifetime: 10, Req: units.Vec(1, 1, 0)}); err != nil {
		t.Fatal(err)
	}
	e.crash()
	bigger := testConfig()
	bigger.Topology.Racks = 8
	if _, err := Open(dir, bigger, 0); err == nil {
		t.Fatal("reopening under a different shape must fail")
	}
}

// FuzzCrashReplay randomizes the crash-recovery twin test: a seeded op
// script, a crash at an arbitrary op boundary with aggressive snapshot
// cadence, recovery, and the script's remainder — recovered history and
// driver state must match the uncrashed twin exactly.
func FuzzCrashReplay(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(40), uint8(3))
	f.Add(int64(99), uint8(0), uint8(25), uint8(1))
	f.Add(int64(7), uint8(60), uint8(60), uint8(16))
	cfg := testConfig()
	f.Fuzz(func(t *testing.T, seed int64, crashAt, nOps, snapEvery uint8) {
		n := int(nOps)%64 + 1
		k := int(crashAt) % (n + 1)
		ops := genOps(seed, n)

		a, err := Open(t.TempDir(), cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer a.crash()
		applyOps(t, a, ops, 0)

		dirB := t.TempDir()
		b, err := Open(dirB, cfg, int(snapEvery)%9)
		if err != nil {
			t.Fatal(err)
		}
		applyOps(t, b, ops[:k], 0)
		b.crash()
		b2, err := Open(dirB, cfg, int(snapEvery)%9)
		if err != nil {
			t.Fatalf("reopen after crash at op %d/%d: %v", k, n, err)
		}
		defer b2.crash()
		applyOps(t, b2, ops, k)
		assertTwins(t, a, b2)
	})
}

// TestRecoveryWithoutSnapshot covers the genesis-replay path: delete the
// snapshot after a crash and recovery must still rebuild everything from
// the journal alone.
func TestRecoveryWithoutSnapshot(t *testing.T) {
	cfg := testConfig()
	ops := genOps(3, 40)
	a, err := Open(t.TempDir(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.crash()
	applyOps(t, a, ops, 0)

	dirB := t.TempDir()
	b, err := Open(dirB, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, b, ops, 0)
	b.crash()
	if err := os.Remove(filepath.Join(dirB, snapshotFile)); err != nil {
		t.Fatal(err)
	}
	b2, err := Open(dirB, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.crash()
	assertTwins(t, a, b2)
}
