package svc

import (
	"os"
	"os/signal"
	"syscall"
)

// NotifyShutdown registers for SIGINT and SIGTERM and returns the
// delivery channel plus a release function. It is the one signal
// plumbing shared by the daemon (graceful drain, second signal forces
// exit) and cmd/risasim (finish the current work, flush profiles and
// pending snapshots before exiting). The channel is buffered for two
// signals so a second, impatient signal is never dropped.
func NotifyShutdown() (<-chan os.Signal, func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch, func() { signal.Stop(ch) }
}
