package svc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"risa/internal/faults"
	"risa/internal/workload"
)

// journalMagic identifies the journal file format; bump the trailing
// digit on incompatible record changes.
const journalMagic = "risawal1"

// RecordKind discriminates the operations a journal record can carry.
type RecordKind uint8

// The journaled operation kinds. Everything that changes engine state is
// journaled before it is applied; reads are not.
const (
	// RecordPlace is a placement request (VM is set).
	RecordPlace RecordKind = iota + 1
	// RecordMutate is a live fail/heal mutation (Fault is set).
	RecordMutate
	// RecordSwap is a scheduler hot-swap (Algo is set).
	RecordSwap
	// RecordAddRack brings the next spare rack into service.
	RecordAddRack
)

// Record is one journaled operation. Seq numbers start at 1 and are
// strictly consecutive; a gap means the file was tampered with and is
// rejected at open.
type Record struct {
	Seq   int64
	Kind  RecordKind
	VM    workload.VM  // RecordPlace
	Fault faults.Event // RecordMutate
	Algo  string       // RecordSwap
}

// Journal is an append-only write-ahead log with per-record CRC framing.
// Every Append is fsync'd before it returns, so an acknowledged record
// survives kill -9. The frame is [4-byte length][4-byte CRC32][gob
// payload]; each record is a self-contained gob stream.
//
// Torn-tail policy (see openJournal): a record that fails its checksum
// or runs past end-of-file is tolerated — and truncated away — only if
// it is the file's final frame, the signature of a crash mid-append.
// A bad record with more data after it means mid-file corruption, which
// recovery must refuse rather than silently replay around.
type Journal struct {
	f       *os.File
	nextSeq int64
}

// openJournal opens (or creates) the journal at path, validates the
// header against cfg, scans every intact record, truncates a torn tail,
// and leaves the file positioned for append. The scanned records are
// returned for replay.
func openJournal(path string, cfg Config) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if info.Size() == 0 {
		if err := writeJournalHeader(f, cfg); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("svc: initialize journal: %w", err)
		}
		return &Journal{f: f, nextSeq: 1}, nil, nil
	}
	recs, end, err := scanJournal(f, cfg, info.Size())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if end < info.Size() {
		// Torn tail from a crash mid-append: drop it so the next append
		// starts at a clean frame boundary.
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	next := int64(1)
	if n := len(recs); n > 0 {
		next = recs[n-1].Seq + 1
	}
	return &Journal{f: f, nextSeq: next}, recs, nil
}

// writeJournalHeader writes the magic and the config echo frame, fsync'd.
func writeJournalHeader(f *os.File, cfg Config) error {
	if _, err := f.Write([]byte(journalMagic)); err != nil {
		return err
	}
	payload, err := gobBytes(&cfg)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame(payload)); err != nil {
		return err
	}
	return f.Sync()
}

// scanJournal validates the header and reads records until the end of
// the intact prefix, returning the records and the file offset where the
// intact prefix ends. A bad final frame is tolerated (torn tail); a bad
// frame with data after it is an error.
func scanJournal(f *os.File, cfg Config, size int64) ([]Record, int64, error) {
	r := &offsetReader{f: f}
	magic := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != journalMagic {
		return nil, 0, fmt.Errorf("svc: %s is not a risasvc journal", f.Name())
	}
	hdr, _, err := readFrame(r, size)
	if err != nil {
		return nil, 0, fmt.Errorf("svc: journal header unreadable: %w", err)
	}
	var onDisk Config
	if err := gob.NewDecoder(bytes.NewReader(hdr)).Decode(&onDisk); err != nil {
		return nil, 0, fmt.Errorf("svc: journal header undecodable: %w", err)
	}
	if !sameShape(onDisk, cfg) {
		return nil, 0, fmt.Errorf("svc: journal was written for a different datacenter shape (%+v)", onDisk.Topology)
	}
	var recs []Record
	end := r.off
	for r.off < size {
		payload, torn, err := readFrame(r, size)
		if torn {
			// The bad frame's declared extent reaches end-of-file: a crash
			// mid-append. Everything before it is intact.
			return recs, end, nil
		}
		if err != nil {
			return nil, 0, fmt.Errorf("svc: journal corrupt at offset %d: %w", end, err)
		}
		var rec Record
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); derr != nil {
			if r.off >= size {
				return recs, end, nil // undecodable final frame: torn tail
			}
			return nil, 0, fmt.Errorf("svc: journal record at offset %d undecodable: %v", end, derr)
		}
		if want := int64(len(recs)) + 1; rec.Seq != want {
			return nil, 0, fmt.Errorf("svc: journal record at offset %d has seq %d, want %d", end, rec.Seq, want)
		}
		recs = append(recs, rec)
		end = r.off
	}
	return recs, end, nil
}

// readFrame reads one [len][crc][payload] frame. torn is true when the
// frame's declared extent runs past size (the only way a crash mid-append
// can look); a checksum mismatch on a fully-present frame is an error and
// the caller decides whether its position (final or not) excuses it.
func readFrame(r *offsetReader, size int64) (payload []byte, torn bool, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, true, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if r.off+int64(n) > size {
		// The declared extent runs past end-of-file — a torn append (even a
		// garbage length lands here, since the payload was never written).
		return nil, true, io.ErrUnexpectedEOF
	}
	if maxFrame := uint32(1 << 26); n > maxFrame {
		return nil, false, fmt.Errorf("frame length %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, true, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		if r.off >= size {
			return nil, true, fmt.Errorf("final frame checksum mismatch")
		}
		return nil, false, fmt.Errorf("frame checksum mismatch")
	}
	return payload, false, nil
}

// Append journals one record and forces it to stable storage. The
// record's Seq is assigned here; the engine applies the operation only
// after Append returns.
func (j *Journal) Append(rec *Record) error {
	rec.Seq = j.nextSeq
	payload, err := gobBytes(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(frame(payload)); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.nextSeq++
	return nil
}

// NextSeq returns the sequence number the next Append will assign.
func (j *Journal) NextSeq() int64 { return j.nextSeq }

// Close closes the underlying file.
func (j *Journal) Close() error { return j.f.Close() }

// frame wraps payload in the [len][crc][payload] on-disk framing.
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// gobBytes encodes v as one self-contained gob stream.
func gobBytes(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// offsetReader tracks the read offset so the scanner can report where
// the intact prefix ends.
type offsetReader struct {
	f   *os.File
	off int64
}

// Read reads from the underlying file, advancing the tracked offset.
func (r *offsetReader) Read(p []byte) (int, error) {
	n, err := r.f.Read(p)
	r.off += int64(n)
	return n, err
}
