package svc

import (
	"testing"
	"time"
)

// TestRetryBackoffBounded pins the retry-path hardening contract: every
// delay is positive, no delay reaches the cap's ceiling, ceilings grow
// exponentially until the cap and then stay there, and the sequence is
// deterministic per seed (so a retrying client is reproducible in
// tests) while differing across seeds (so a fleet of shed clients
// decorrelates instead of re-arriving in lockstep).
func TestRetryBackoffBounded(t *testing.T) {
	const base, cap = 10 * time.Millisecond, 500 * time.Millisecond
	b := NewBackoff(base, cap, 42)
	var delays []time.Duration
	for i := 0; i < 64; i++ {
		d := b.Next()
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %s", i, d)
		}
		if d >= cap {
			t.Fatalf("attempt %d: delay %s at or above cap %s", i, d, cap)
		}
		delays = append(delays, d)
	}
	// Growth: the ceiling doubles, so by attempt 6 (ceiling 640ms → cap)
	// delays must be drawn from [cap/2, cap); the tail is cap-bounded.
	for i := 7; i < len(delays); i++ {
		if delays[i] < cap/2 {
			t.Fatalf("attempt %d: delay %s below capped floor %s", i, delays[i], cap/2)
		}
	}
	// Early attempts stay under their small ceilings.
	if delays[0] >= 2*base {
		t.Fatalf("first delay %s exceeds base ceiling %s", delays[0], base)
	}

	// Deterministic per seed.
	b2 := NewBackoff(base, cap, 42)
	for i := range delays {
		if d := b2.Next(); d != delays[i] {
			t.Fatalf("same seed diverged at attempt %d: %s vs %s", i, d, delays[i])
		}
	}
	// Different seeds decorrelate (identical whole sequences would defeat
	// the jitter's purpose).
	b3 := NewBackoff(base, cap, 43)
	same := true
	for i := range delays {
		if b3.Next() != delays[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}

	// Reset rewinds growth: the next delay is small again.
	b.Reset()
	if d := b.Next(); d >= 2*base {
		t.Fatalf("post-Reset delay %s exceeds base ceiling", d)
	}
}
