// Package svc is the placement-as-a-service layer: a crash-tolerant
// daemon core that owns one live simulated datacenter (a sim.Driver)
// and serves placement traffic through a bounded admission queue.
//
// The package separates three concerns:
//
//   - Engine (engine.go, journal.go): the single-writer state machine.
//     Every state-changing operation — place, fail/heal, add-rack,
//     scheduler swap — is appended to an fsync'd write-ahead journal
//     before it is applied, and periodic snapshots (snapshot.gob,
//     written at event boundaries via sim.DriverSnapshot) bound replay
//     time. After a crash, Open restores the latest snapshot and
//     replays the journal suffix; because every decision is a pure
//     function of the operation sequence, the recovered daemon is
//     bit-identical to one that never crashed.
//
//   - Queue (queue.go): bounded admission with tier-aware backpressure.
//     Service order is strict FIFO (so a queued swap is a barrier:
//     requests admitted before it decide under the old algorithm);
//     tiers matter at overflow, where the lowest-priority queued
//     request is shed to make room for a better one. Expired or
//     abandoned requests are dropped at dequeue, never half-placed.
//
//   - Server (server.go): the HTTP/JSON surface and the worker loop
//     draining the queue through the engine, plus graceful drain on
//     shutdown.
//
// Backoff (backoff.go) is the capped, seeded-jitter retry delay used by
// clients (cmd/workloadgen's HTTP mode) when the daemon sheds them, and
// signals.go is the SIGINT/SIGTERM plumbing shared with cmd/risasim.
package svc

import (
	"fmt"

	"risa/internal/network"
	"risa/internal/topology"
)

// Config fixes the daemon's datacenter shape and genesis scheduler. It
// is echoed into the journal header and every snapshot; Open refuses to
// recover state captured under a different shape.
type Config struct {
	// Topology describes the in-service cluster at genesis. Racks is the
	// number of racks initially serving traffic.
	Topology topology.Config
	// Network describes the optical fabric.
	Network network.Config
	// Spares is the number of spare racks built dark (all boxes failed at
	// genesis, deterministically) beyond Topology.Racks. POST /addrack
	// brings the next spare into service; the cluster's total footprint
	// never changes at runtime, which keeps every index and snapshot
	// shape stable.
	Spares int
	// Algo names the genesis scheduler (a sched registry name). POST
	// /swap changes the live algorithm; the journal remembers.
	Algo string
}

// Validate checks the configuration without building anything.
func (c Config) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if err := c.Network.Validate(); err != nil {
		return err
	}
	if c.Spares < 0 {
		return fmt.Errorf("svc: negative spare rack count %d", c.Spares)
	}
	if c.Algo == "" {
		return fmt.Errorf("svc: empty genesis algorithm")
	}
	return nil
}

// sameShape reports whether two configs describe the same datacenter
// (the recovery compatibility check). The genesis algorithm is excluded:
// the live algorithm is journaled state, not shape.
func sameShape(a, b Config) bool {
	return a.Topology == b.Topology && a.Network == b.Network && a.Spares == b.Spares
}

// Outcome is one placement decision, the unit of the daemon's placement
// log. It is plain serializable data: box coordinates are global box
// indices (rack*boxesPerRack+box, -1 when the VM requests none of that
// resource), and no field depends on wall-clock time — two runs that
// process the same operations produce byte-identical logs.
type Outcome struct {
	// Seq is the journal sequence number of the operation that produced
	// this decision.
	Seq int64
	// VMID, Tier echo the request.
	VMID int
	Tier int
	// T is the virtual time the decision was made at.
	T int64
	// Accepted reports whether the VM was placed; Reason carries the
	// scheduler's rejection reason otherwise.
	Accepted bool
	Reason   string
	// CPUBox, RAMBox, STOBox are the global box indices of the placement
	// (-1 for resources the VM does not request, and for rejections).
	CPUBox, RAMBox, STOBox int
	// InterRack reports whether the placement spans racks.
	InterRack bool
}

// String renders the outcome as one deterministic placement-log line.
func (o Outcome) String() string {
	if !o.Accepted {
		return fmt.Sprintf("seq=%d vm=%d tier=%d t=%d reject reason=%q",
			o.Seq, o.VMID, o.Tier, o.T, o.Reason)
	}
	return fmt.Sprintf("seq=%d vm=%d tier=%d t=%d place cpu=%d ram=%d sto=%d interrack=%v",
		o.Seq, o.VMID, o.Tier, o.T, o.CPUBox, o.RAMBox, o.STOBox, o.InterRack)
}
