package svc

import (
	"context"
	"sync"

	"risa/internal/faults"
	"risa/internal/workload"
)

// opKind discriminates the operations that flow through the admission
// queue to the worker loop.
type opKind int

const (
	opPlace opKind = iota
	opMutate
	opAddRack
	opSwap
	opStats
	opPlacements
	opSnapshot
)

// item is one queued operation plus its reply channel. Placement items
// carry the request context so an expired or abandoned request can be
// dropped at dequeue without ever touching the engine.
type item struct {
	ctx   context.Context
	kind  opKind
	tier  int // shed priority; barrierTier entries are never shed
	vm    workload.VM
	fault faults.Event
	algo  string
	res   chan response
}

// barrierTier marks data-lane entries that must never be shed: a queued
// scheduler swap is a FIFO barrier, not sheddable load.
const barrierTier = -1

// response is the worker's (or the queue's, for shed entries) reply.
// Every item's res channel must be buffered (capacity 1): exactly one
// response is ever sent per item, and the sender must never block on a
// handler that gave up waiting.
type response struct {
	status     int // HTTP status semantics
	retryAfter int // seconds hint, set with status 429
	outcome    *Outcome
	body       any    // JSON payload for non-place operations
	text       []byte // plain-text payload (placement log)
	err        error
}

// queue is the daemon's bounded admission queue. Two lanes share one
// lock: the data lane (placements and the swap barrier) is bounded and
// strictly FIFO — service order is admission order, so a queued swap
// separates old-algorithm decisions from new — and the control lane
// (mutations, reads) is unbounded and always served first, which is how
// live mutations land "between decisions" without waiting behind load.
//
// Tier-aware backpressure: when the data lane is full, the queue sheds
// the latest-admitted entry of the worst (numerically highest) tier
// strictly worse than the newcomer's — tier 2 spot load is pushed out
// before tier 0 is ever refused — and the shed request is answered 429
// with a depth-scaled Retry-After. A newcomer no better than everything
// queued is itself refused.
type queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	data    []*item
	control []*item
	cap     int
	closed  bool
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// enqueueData admits one data-lane item, shedding a worse-tier entry if
// the lane is full. It reports whether the item was admitted; when it
// was not, the caller answers 429 with the returned Retry-After hint.
func (q *queue) enqueueData(it *item) (admitted bool, retryAfter int) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false, 1
	}
	if len(q.data) >= q.cap && it.tier != barrierTier {
		victim := -1
		worst := it.tier
		for i, d := range q.data {
			if d.tier >= worst { // >= : prefer the latest-admitted of the worst tier
				worst = d.tier
				if d.tier > it.tier {
					victim = i
				}
			}
		}
		if victim < 0 {
			hint := q.retryAfterLocked()
			q.mu.Unlock()
			return false, hint
		}
		shed := q.data[victim]
		q.data = append(q.data[:victim], q.data[victim+1:]...)
		hint := q.retryAfterLocked()
		q.mu.Unlock()
		shed.res <- response{status: 429, retryAfter: hint}
		q.mu.Lock()
	}
	q.data = append(q.data, it)
	q.cond.Signal()
	q.mu.Unlock()
	return true, 0
}

// enqueueControl admits one control-lane item; the lane is unbounded
// (operator traffic, not load).
func (q *queue) enqueueControl(it *item) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.control = append(q.control, it)
	q.cond.Signal()
	return true
}

// pop blocks for the next item — control lane first — and returns nil
// once the queue is closed and fully drained.
func (q *queue) pop() *item {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.control) > 0 {
			it := q.control[0]
			q.control = q.control[1:]
			return it
		}
		if len(q.data) > 0 {
			it := q.data[0]
			q.data = q.data[1:]
			return it
		}
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
}

// depth returns the data-lane occupancy.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.data)
}

// close stops admission; pop keeps returning queued items until both
// lanes are empty, then nil.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// rejectAll answers every queued item with status (the drain-deadline
// escape hatch) and empties both lanes.
func (q *queue) rejectAll(status int) {
	q.mu.Lock()
	items := append(append([]*item(nil), q.control...), q.data...)
	q.control, q.data = nil, nil
	q.cond.Broadcast()
	q.mu.Unlock()
	for _, it := range items {
		it.res <- response{status: status}
	}
}

// retryAfterLocked scales the Retry-After hint with queue depth: a just-
// full queue suggests 1 s, a deeply backed-up one proportionally more.
func (q *queue) retryAfterLocked() int {
	return 1 + len(q.data)/64
}
