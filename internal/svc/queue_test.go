package svc

import (
	"testing"
	"time"
)

func dataItem(tier int) *item {
	return &item{kind: opPlace, tier: tier, res: make(chan response, 1)}
}

// mustAdmit admits one data item or fails the test.
func mustAdmit(t *testing.T, q *queue, it *item) {
	t.Helper()
	if ok, _ := q.enqueueData(it); !ok {
		t.Fatalf("tier %d item rejected with depth %d", it.tier, q.depth())
	}
}

// TestQueueShedOrder pins tier-aware backpressure: a full queue sheds
// the latest-admitted entry of the worst tier to admit a better one,
// and refuses a newcomer that is no better than anything queued.
func TestQueueShedOrder(t *testing.T) {
	q := newQueue(3)
	worst1, worst2, mid := dataItem(2), dataItem(2), dataItem(1)
	mustAdmit(t, q, worst1)
	mustAdmit(t, q, mid)
	mustAdmit(t, q, worst2)

	// Tier 0 arrives: the LATEST tier-2 entry is shed, not the oldest.
	best := dataItem(0)
	mustAdmit(t, q, best)
	select {
	case resp := <-worst2.res:
		if resp.status != 429 || resp.retryAfter < 1 {
			t.Fatalf("shed response = %+v", resp)
		}
	default:
		t.Fatal("latest worst-tier entry was not shed")
	}
	select {
	case <-worst1.res:
		t.Fatal("older worst-tier entry shed too")
	default:
	}

	// Another tier-2 arrival: nothing queued is worse, so it is refused.
	if ok, hint := q.enqueueData(dataItem(2)); ok || hint < 1 {
		t.Fatalf("no-worse newcomer admitted (ok=%v hint=%d)", ok, hint)
	}

	// Service order stays FIFO among survivors: worst1, mid, best.
	for i, want := range []*item{worst1, mid, best} {
		if got := q.pop(); got != want {
			t.Fatalf("pop %d: got tier %d, want tier %d", i, got.tier, want.tier)
		}
	}
}

// TestQueueBarrierNeverShed pins the swap barrier: it bypasses the cap,
// is never chosen as a shed victim, and keeps its FIFO position.
func TestQueueBarrierNeverShed(t *testing.T) {
	q := newQueue(1)
	first := dataItem(0)
	mustAdmit(t, q, first)
	barrier := &item{kind: opSwap, tier: barrierTier, res: make(chan response, 1)}
	mustAdmit(t, q, barrier) // over cap: barriers are not load
	// A tier-0 newcomer cannot shed the tier-0 entry nor the barrier.
	if ok, _ := q.enqueueData(dataItem(0)); ok {
		t.Fatal("newcomer admitted past a full queue with no worse tier")
	}
	if got := q.pop(); got != first {
		t.Fatal("barrier jumped the FIFO order")
	}
	if got := q.pop(); got != barrier {
		t.Fatal("barrier lost its queue position")
	}
}

// TestQueueControlLaneFirst pins that control traffic (mutations,
// reads) is served before queued load.
func TestQueueControlLaneFirst(t *testing.T) {
	q := newQueue(4)
	place := dataItem(0)
	mustAdmit(t, q, place)
	ctrl := &item{kind: opStats, res: make(chan response, 1)}
	if !q.enqueueControl(ctrl) {
		t.Fatal("control item rejected")
	}
	if got := q.pop(); got != ctrl {
		t.Fatal("control lane was not served first")
	}
	if got := q.pop(); got != place {
		t.Fatal("data item lost")
	}
}

// TestQueueCloseDrains pins shutdown: close stops admission but pop
// still drains queued items, then reports exhaustion with nil.
func TestQueueCloseDrains(t *testing.T) {
	q := newQueue(4)
	it := dataItem(1)
	mustAdmit(t, q, it)
	q.close()
	if ok, _ := q.enqueueData(dataItem(0)); ok {
		t.Fatal("admission after close")
	}
	if q.enqueueControl(&item{kind: opStats, res: make(chan response, 1)}) {
		t.Fatal("control admission after close")
	}
	if got := q.pop(); got != it {
		t.Fatal("queued item lost on close")
	}
	done := make(chan *item, 1)
	go func() { done <- q.pop() }()
	select {
	case got := <-done:
		if got != nil {
			t.Fatalf("pop after drain returned %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not return nil after close+drain")
	}
}

// TestQueueRejectAll pins the drain-deadline escape hatch: every queued
// item is answered with the given status and the lanes empty.
func TestQueueRejectAll(t *testing.T) {
	q := newQueue(4)
	a, b := dataItem(0), dataItem(2)
	mustAdmit(t, q, a)
	mustAdmit(t, q, b)
	c := &item{kind: opStats, res: make(chan response, 1)}
	q.enqueueControl(c)
	q.rejectAll(503)
	for _, it := range []*item{a, b, c} {
		select {
		case resp := <-it.res:
			if resp.status != 503 {
				t.Fatalf("rejectAll answered %d, want 503", resp.status)
			}
		default:
			t.Fatal("queued item not answered by rejectAll")
		}
	}
	if q.depth() != 0 {
		t.Fatalf("depth after rejectAll = %d", q.depth())
	}
}
