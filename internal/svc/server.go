package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"risa/internal/faults"
	"risa/internal/units"
	"risa/internal/workload"
)

// Server is the daemon's HTTP surface: handlers admit operations into
// the queue, one worker goroutine drains it through the Engine, and
// Shutdown drains gracefully. The worker is the engine's only caller,
// which is the whole concurrency story — no engine locks, no torn
// decisions.
type Server struct {
	eng *Engine
	q   *queue

	draining   atomic.Bool
	expired    atomic.Int64
	shed       atomic.Int64
	workerDone chan struct{}
}

// NewServer wires a server over an open engine. queueCap bounds the
// data lane (≤0 uses 256).
func NewServer(eng *Engine, queueCap int) *Server {
	if queueCap <= 0 {
		queueCap = 256
	}
	return &Server{eng: eng, q: newQueue(queueCap), workerDone: make(chan struct{})}
}

// Start launches the worker loop. Call exactly once.
func (s *Server) Start() { go s.worker() }

// Shutdown drains gracefully: admission stops (new placements get 503),
// queued work is served until ctx expires — whatever is still queued
// then is answered 503 — and the engine closes with a final snapshot.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.q.close()
	select {
	case <-s.workerDone:
	case <-ctx.Done():
		s.q.rejectAll(http.StatusServiceUnavailable)
		<-s.workerDone
	}
	return s.eng.Close()
}

// worker is the single engine writer: it pops queue items — control
// lane first — applies them, and answers. Placement items whose context
// expired while queued are dropped here with 504, before any journal or
// scheduler work: never half-placed.
func (s *Server) worker() {
	defer close(s.workerDone)
	for {
		it := s.q.pop()
		if it == nil {
			return
		}
		if it.ctx != nil && it.ctx.Err() != nil {
			s.expired.Add(1)
			it.res <- response{status: http.StatusGatewayTimeout}
			continue
		}
		switch it.kind {
		case opPlace:
			out, err := s.eng.Place(it.vm)
			if err != nil {
				it.res <- response{status: http.StatusInternalServerError, err: err}
				continue
			}
			it.res <- response{status: http.StatusOK, outcome: &out}
		case opMutate:
			s.answer(it, s.eng.Mutate(it.fault), map[string]bool{"ok": true})
		case opAddRack:
			rack, err := s.eng.AddRack()
			s.answer(it, err, map[string]int{"rack": rack, "in_service_racks": s.eng.InService()})
		case opSwap:
			s.answer(it, s.eng.Swap(it.algo), map[string]string{"algo": it.algo})
		case opSnapshot:
			s.answer(it, s.eng.WriteSnapshot(), map[string]bool{"ok": true})
		case opStats:
			it.res <- response{status: http.StatusOK, body: s.stats()}
		case opPlacements:
			var buf bytes.Buffer
			if err := s.eng.WritePlacements(&buf); err != nil {
				it.res <- response{status: http.StatusInternalServerError, err: err}
				continue
			}
			it.res <- response{status: http.StatusOK, text: buf.Bytes()}
		default:
			it.res <- response{status: http.StatusInternalServerError, err: fmt.Errorf("svc: unknown op kind %d", it.kind)}
		}
	}
}

// answer maps an engine verdict onto a response: engine errors on the
// operator endpoints are request problems (bad scope, unknown algorithm,
// no spares), so they answer 400.
func (s *Server) answer(it *item, err error, body any) {
	if err != nil {
		it.res <- response{status: http.StatusBadRequest, err: err}
		return
	}
	it.res <- response{status: http.StatusOK, body: body}
}

// Stats is the GET /stats payload. Decision counters are recomputed
// from the placement history, so they survive crash recovery exactly;
// shed/expired counters are process-local backpressure telemetry.
type Stats struct {
	// Algo is the live scheduler algorithm.
	Algo string `json:"algo"`
	// Now is the engine's virtual time.
	Now int64 `json:"now"`
	// Resident is the number of VMs currently placed.
	Resident int `json:"resident"`
	// InServiceRacks and SpareRacks partition the cluster's racks.
	InServiceRacks int `json:"in_service_racks"`
	SpareRacks     int `json:"spare_racks"`
	// QueueDepth is the data-lane occupancy.
	QueueDepth int `json:"queue_depth"`
	// Draining reports whether shutdown has begun.
	Draining bool `json:"draining"`
	// AcceptedByTier and RejectedByTier count decisions per VM tier.
	AcceptedByTier [workload.NumTiers]int64 `json:"accepted_by_tier"`
	RejectedByTier [workload.NumTiers]int64 `json:"rejected_by_tier"`
	// Shed counts requests evicted by tier-aware backpressure; Expired
	// counts requests dropped at dequeue past their deadline.
	Shed    int64 `json:"shed"`
	Expired int64 `json:"expired"`
}

// stats assembles the Stats payload (worker goroutine only: it reads
// engine state).
func (s *Server) stats() Stats {
	st := Stats{
		Algo:           s.eng.Algo(),
		Now:            s.eng.Now(),
		Resident:       s.eng.Resident(),
		InServiceRacks: s.eng.InService(),
		SpareRacks:     s.eng.Spares(),
		QueueDepth:     s.q.depth(),
		Draining:       s.draining.Load(),
		Shed:           s.shed.Load(),
		Expired:        s.expired.Load(),
	}
	for _, o := range s.eng.History() {
		if o.Tier < 0 || o.Tier >= workload.NumTiers {
			continue
		}
		if o.Accepted {
			st.AcceptedByTier[o.Tier]++
		} else {
			st.RejectedByTier[o.Tier]++
		}
	}
	return st
}

// PlaceRequest is the POST /place body. Resource amounts are in native
// units (cores for CPU, GB for RAM and storage); Arrival and Lifetime
// are virtual time (arrival earlier than the daemon's clock is clamped
// forward). DeadlineMS, when positive, bounds the request's real queue
// wait: past it the request is dropped undecided with 504.
type PlaceRequest struct {
	ID         int   `json:"id"`
	Tier       int   `json:"tier"`
	Arrival    int64 `json:"arrival"`
	Lifetime   int64 `json:"lifetime"`
	CPU        int64 `json:"cpu"`
	RAM        int64 `json:"ram"`
	Storage    int64 `json:"storage"`
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// MutateRequest is the POST /fail and POST /heal body: Scope is "box"
// or "rack"; Box is required only for box scope.
type MutateRequest struct {
	Scope string `json:"scope"`
	Rack  int    `json:"rack"`
	Box   int    `json:"box"`
}

// SwapRequest is the POST /swap body.
type SwapRequest struct {
	Algo string `json:"algo"`
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /place", s.handlePlace)
	mux.HandleFunc("POST /fail", func(w http.ResponseWriter, r *http.Request) { s.handleMutate(w, r, false) })
	mux.HandleFunc("POST /heal", func(w http.ResponseWriter, r *http.Request) { s.handleMutate(w, r, true) })
	mux.HandleFunc("POST /addrack", func(w http.ResponseWriter, r *http.Request) {
		s.control(w, &item{kind: opAddRack, res: make(chan response, 1)})
	})
	mux.HandleFunc("POST /swap", s.handleSwap)
	mux.HandleFunc("POST /snapshot", func(w http.ResponseWriter, r *http.Request) {
		s.control(w, &item{kind: opSnapshot, res: make(chan response, 1)})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		s.control(w, &item{kind: opStats, res: make(chan response, 1)})
	})
	mux.HandleFunc("GET /placements", func(w http.ResponseWriter, r *http.Request) {
		s.control(w, &item{kind: opPlacements, res: make(chan response, 1)})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handlePlace admits one placement request into the data lane and waits
// for its verdict.
func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req PlaceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	vm := workload.VM{
		ID:       req.ID,
		Arrival:  req.Arrival,
		Lifetime: req.Lifetime,
		Tier:     req.Tier,
		Req:      units.Vec(units.Amount(req.CPU), units.Amount(req.RAM), units.Amount(req.Storage)),
	}
	if err := vm.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	it := &item{ctx: ctx, kind: opPlace, tier: vm.Tier, vm: vm, res: make(chan response, 1)}
	if ok, hint := s.q.enqueueData(it); !ok {
		s.shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(hint))
		writeError(w, http.StatusTooManyRequests, "queue full")
		return
	}
	resp := <-it.res
	if resp.status == http.StatusTooManyRequests {
		s.shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(resp.retryAfter))
		writeError(w, resp.status, "shed by higher-priority load")
		return
	}
	s.write(w, resp, func() any { return resp.outcome })
}

// handleMutate serves /fail and /heal through the control lane.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request, repair bool) {
	var req MutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	ev := faults.Event{Repair: repair, Rack: req.Rack, Box: req.Box}
	switch req.Scope {
	case "box":
		ev.Tier = faults.BoxTier
	case "rack":
		ev.Tier = faults.RackTier
	default:
		writeError(w, http.StatusBadRequest, "scope must be box or rack")
		return
	}
	s.control(w, &item{kind: opMutate, fault: ev, res: make(chan response, 1)})
}

// handleSwap rides the data lane as a FIFO barrier: placements admitted
// before it decide under the old algorithm, later ones under the new.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	var req SwapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	it := &item{kind: opSwap, tier: barrierTier, algo: req.Algo, res: make(chan response, 1)}
	if ok, _ := s.q.enqueueData(it); !ok {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	resp := <-it.res
	s.write(w, resp, func() any { return resp.body })
}

// control enqueues one control-lane item and writes its response.
func (s *Server) control(w http.ResponseWriter, it *item) {
	if !s.q.enqueueControl(it) {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	resp := <-it.res
	s.write(w, resp, func() any { return resp.body })
}

// write renders one response: errors as {"error": ...}, text payloads
// verbatim, everything else as JSON.
func (s *Server) write(w http.ResponseWriter, resp response, body func() any) {
	if resp.status != http.StatusOK {
		msg := http.StatusText(resp.status)
		if resp.err != nil {
			msg = resp.err.Error()
		}
		writeError(w, resp.status, msg)
		return
	}
	if resp.text != nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(resp.text)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body())
}

// writeError answers one error as a JSON object.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
