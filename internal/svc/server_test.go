package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer opens an engine in a temp dir and serves it over
// httptest. The cleanup shuts the worker down gracefully.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	eng, err := Open(t.TempDir(), testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(eng, 8)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func post(t *testing.T, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("%s: bad JSON response: %v", url, err)
	}
	return resp, m
}

// TestServerEndToEnd drives the whole HTTP surface: placements land,
// mutations and swaps succeed, stats and the placement log reflect it
// all, and bad requests answer 400.
func TestServerEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	for i := 1; i <= 5; i++ {
		resp, m := post(t, ts.URL+"/place",
			fmt.Sprintf(`{"id":%d,"tier":%d,"arrival":%d,"lifetime":500,"cpu":4,"ram":8,"storage":64}`, i, i%3, i*10))
		if resp.StatusCode != 200 {
			t.Fatalf("place %d: status %d (%v)", i, resp.StatusCode, m)
		}
		if m["Accepted"] != true {
			t.Fatalf("place %d not accepted: %v", i, m)
		}
	}

	// Idempotent retry: same ID returns the same decision.
	_, first := post(t, ts.URL+"/place", `{"id":1,"tier":1,"arrival":10,"lifetime":500,"cpu":4,"ram":8,"storage":64}`)
	if first["Seq"] != float64(1) {
		t.Fatalf("retried place did not return the original outcome: %v", first)
	}

	if resp, m := post(t, ts.URL+"/fail", `{"scope":"rack","rack":2}`); resp.StatusCode != 200 {
		t.Fatalf("fail: %d %v", resp.StatusCode, m)
	}
	if resp, m := post(t, ts.URL+"/heal", `{"scope":"rack","rack":2}`); resp.StatusCode != 200 {
		t.Fatalf("heal: %d %v", resp.StatusCode, m)
	}
	if resp, _ := post(t, ts.URL+"/fail", `{"scope":"rack","rack":99}`); resp.StatusCode != 400 {
		t.Fatalf("out-of-range fail answered %d, want 400", resp.StatusCode)
	}
	if resp, m := post(t, ts.URL+"/addrack", `{}`); resp.StatusCode != 200 || m["rack"] != float64(4) {
		t.Fatalf("addrack: %d %v", resp.StatusCode, m)
	}
	if resp, _ := post(t, ts.URL+"/swap", `{"algo":"NULB"}`); resp.StatusCode != 200 {
		t.Fatal("swap to NULB failed")
	}
	if resp, _ := post(t, ts.URL+"/swap", `{"algo":"NOPE"}`); resp.StatusCode != 400 {
		t.Fatal("swap to unknown algorithm must answer 400")
	}
	if resp, _ := post(t, ts.URL+"/place", `{"id":100,"tier":0,"lifetime":0,"cpu":4,"ram":8,"storage":64}`); resp.StatusCode != 400 {
		t.Fatal("invalid VM must answer 400 before touching the queue")
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Algo != "NULB" || st.Resident != 5 || st.InServiceRacks != 5 {
		t.Fatalf("stats after the script: %+v", st)
	}

	resp, err = http.Get(ts.URL + "/placements")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 || !strings.Contains(lines[0], "seq=1 vm=1") {
		t.Fatalf("placement log:\n%s", buf.String())
	}
}

// TestServerExpiredRequestDropped pins the deadline contract: a request
// whose context expires while queued is answered 504 at dequeue and
// never reaches the engine.
func TestServerExpiredRequestDropped(t *testing.T) {
	eng, err := Open(t.TempDir(), testConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(eng, 8)
	// No Start yet: queue the item first, so its deadline lapses before
	// the worker ever runs — deterministic, no sleep races.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	it := &item{ctx: ctx, kind: opPlace, tier: 0, res: make(chan response, 1)}
	if ok, _ := s.q.enqueueData(it); !ok {
		t.Fatal("enqueue failed")
	}
	s.Start()
	select {
	case resp := <-it.res:
		if resp.status != http.StatusGatewayTimeout {
			t.Fatalf("expired item answered %d, want 504", resp.status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("expired item never answered")
	}
	if len(eng.History()) != 0 {
		t.Fatal("expired item reached the engine")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	s.Shutdown(shutCtx)
}

// TestServerDrain pins graceful shutdown: after Shutdown begins, new
// placements answer 503 and the engine has written its final snapshot
// (the next Open replays nothing).
func TestServerDrain(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, testConfig(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(eng, 8)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, _ := post(t, ts.URL+"/place", `{"id":1,"tier":0,"lifetime":100,"cpu":1,"ram":1,"storage":0}`); resp.StatusCode != 200 {
		t.Fatal("warm-up place failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if resp, _ := post(t, ts.URL+"/place", `{"id":2,"tier":0,"lifetime":100,"cpu":1,"ram":1,"storage":0}`); resp.StatusCode != 503 {
		t.Fatal("placement after drain must answer 503")
	}

	// The final snapshot must carry the full state: reopen and compare.
	eng2, err := Open(dir, testConfig(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.crash()
	if len(eng2.History()) != 1 || eng2.Resident() != 1 {
		t.Fatalf("reopened after graceful drain: %d decisions, %d resident", len(eng2.History()), eng2.Resident())
	}
}
