package power

import (
	"math"
	"testing"
	"time"

	"risa/internal/network"
	"risa/internal/optics"
	"risa/internal/topology"
	"risa/internal/units"
)

func testSetup(t testing.TB) (*topology.Cluster, *network.Fabric, *Model) {
	t.Helper()
	cl, err := topology.New(topology.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fab, err := network.NewFabric(cl, network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(optics.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cl, fab, m
}

func intraFlow(t testing.TB, cl *topology.Cluster, fab *network.Fabric, bw units.Bandwidth) *network.Flow {
	t.Helper()
	rack := cl.Rack(0)
	fl, err := fab.AllocateFlow(rack.BoxesOf(units.CPU)[0], rack.BoxesOf(units.RAM)[0], bw, network.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	return fl
}

func interFlow(t testing.TB, cl *topology.Cluster, fab *network.Fabric, bw units.Bandwidth) *network.Flow {
	t.Helper()
	fl, err := fab.AllocateFlow(cl.Rack(0).BoxesOf(units.CPU)[0], cl.Rack(1).BoxesOf(units.RAM)[0], bw, network.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	return fl
}

func TestNewModelRejectsBadConfig(t *testing.T) {
	cfg := optics.DefaultConfig()
	cfg.Alpha = 0.1
	if _, err := NewModel(cfg); err == nil {
		t.Error("bad optics config should fail")
	}
}

func TestTransceiverPowerByShape(t *testing.T) {
	cl, fab, m := testSetup(t)
	intra := intraFlow(t, cl, fab, 100)
	inter := interFlow(t, cl, fab, 100)
	// 100 Gb/s x 22.5 pJ/bit = 2.25 W per traversal.
	if got := m.TransceiverPower(intra); math.Abs(got-4*2.25) > 1e-9 {
		t.Errorf("intra transceiver power = %g, want 9", got)
	}
	if got := m.TransceiverPower(inter); math.Abs(got-6*2.25) > 1e-9 {
		t.Errorf("inter transceiver power = %g, want 13.5", got)
	}
}

func TestTrimmingPowerByShape(t *testing.T) {
	cl, fab, m := testSetup(t)
	intra := intraFlow(t, cl, fab, 10)
	inter := interFlow(t, cl, fab, 10)
	cfg := optics.DefaultConfig()
	trimBox, _ := cfg.PathTrimmingPower(64)
	trimRack, _ := cfg.PathTrimmingPower(256)
	trimInter, _ := cfg.PathTrimmingPower(512)
	wantIntra := 2*trimBox + trimRack
	wantInter := 2*trimBox + 2*trimRack + trimInter
	if got := m.TrimmingPower(intra); math.Abs(got-wantIntra) > 1e-12 {
		t.Errorf("intra trimming = %g, want %g", got, wantIntra)
	}
	if got := m.TrimmingPower(inter); math.Abs(got-wantInter) > 1e-12 {
		t.Errorf("inter trimming = %g, want %g", got, wantInter)
	}
	// An inter-rack flow always costs more than intra at equal bandwidth.
	if m.FlowPower(inter) <= m.FlowPower(intra) {
		t.Error("inter-rack flow should cost more power")
	}
}

func TestSetupEnergy(t *testing.T) {
	cl, fab, m := testSetup(t)
	intra := intraFlow(t, cl, fab, 10)
	cfg := optics.DefaultConfig()
	sBox, _ := cfg.PathSwitchingEnergy(64)
	sRack, _ := cfg.PathSwitchingEnergy(256)
	want := 2*sBox + sRack
	if got := m.SetupEnergy(intra); math.Abs(got-want) > 1e-15 {
		t.Errorf("setup energy = %g, want %g", got, want)
	}
}

func TestFlowEnergyEquation1(t *testing.T) {
	cl, fab, m := testSetup(t)
	fl := intraFlow(t, cl, fab, 20)
	lifetime := 100 * time.Second
	got := m.FlowEnergy(fl, lifetime)
	want := m.SetupEnergy(fl) + (m.TrimmingPower(fl)+m.TransceiverPower(fl))*100
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("FlowEnergy = %g, want %g", got, want)
	}
	// Energy grows with lifetime.
	if m.FlowEnergy(fl, 2*lifetime) <= got {
		t.Error("energy must grow with lifetime")
	}
}

func TestAccountantAddRemove(t *testing.T) {
	cl, fab, m := testSetup(t)
	a := NewAccountant(m)
	if a.Power() != 0 || a.ActiveFlows() != 0 {
		t.Fatal("fresh accountant should be empty")
	}
	fl1 := intraFlow(t, cl, fab, 50)
	fl2 := interFlow(t, cl, fab, 50)
	a.Add(fl1)
	p1 := a.Power()
	a.Add(fl2)
	if a.Power() <= p1 {
		t.Error("power must rise with a second flow")
	}
	if a.ActiveFlows() != 2 {
		t.Errorf("flows = %d", a.ActiveFlows())
	}
	if a.PeakPower() != a.Power() {
		t.Error("peak should track the max")
	}
	peak := a.PeakPower()
	a.Remove(fl2)
	if math.Abs(a.Power()-p1) > 1e-9 {
		t.Errorf("power after remove = %g, want %g", a.Power(), p1)
	}
	if a.PeakPower() != peak {
		t.Error("peak must not fall on remove")
	}
	a.Remove(fl1)
	if a.Power() != 0 || a.ActiveFlows() != 0 {
		t.Error("empty accountant should be at zero")
	}
}

func TestAccountantEnergyIntegration(t *testing.T) {
	cl, fab, m := testSetup(t)
	a := NewAccountant(m)
	fl := intraFlow(t, cl, fab, 100)
	a.Add(fl)
	setup := m.SetupEnergy(fl)
	a.AdvanceSeconds(10)
	want := setup + a.Power()*10
	if got := a.EnergyJoules(); math.Abs(got-want) > 1e-9 {
		t.Errorf("energy = %g, want %g", got, want)
	}
	a.Remove(fl)
	a.AdvanceSeconds(100) // zero power: no extra energy
	if got := a.EnergyJoules(); math.Abs(got-want) > 1e-9 {
		t.Errorf("energy after idle = %g, want %g", got, want)
	}
}

func TestAccountantGuards(t *testing.T) {
	_, _, m := testSetup(t)
	a := NewAccountant(m)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Remove on empty accountant should panic")
			}
		}()
		a.Remove(&network.Flow{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative time step should panic")
			}
		}()
		a.AdvanceSeconds(-1)
	}()
}

func TestAccountantModelAccessor(t *testing.T) {
	_, _, m := testSetup(t)
	a := NewAccountant(m)
	if a.Model() != m {
		t.Error("Model accessor broken")
	}
	if a.Model().Config().Alpha != 0.9 {
		t.Error("config should round-trip")
	}
}

// Scale sanity: the paper's Figure 9 reports single-digit kW for thousands
// of concurrent VMs. Check a thousand typical intra-rack flows land in
// that ballpark (0.5-5 kW).
func TestPowerScaleSanity(t *testing.T) {
	cl, fab, m := testSetup(t)
	a := NewAccountant(m)
	for i := 0; i < 1000; i++ {
		rack := cl.Rack(i % cl.NumRacks())
		fl, err := fab.AllocateFlow(rack.BoxesOf(units.CPU)[i%2], rack.BoxesOf(units.RAM)[i%2], 22, network.FirstFit)
		if err != nil {
			t.Fatalf("flow %d: %v", i, err)
		}
		a.Add(fl)
	}
	kw := a.Power() / 1000
	if kw < 0.5 || kw > 5 {
		t.Errorf("1000 typical flows draw %.2f kW, expected 0.5-5 kW", kw)
	}
}
