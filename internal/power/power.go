// Package power converts active optical circuits into electrical power and
// energy figures, combining the device models of package optics with the
// path shapes of package network.
//
// Two views are exposed:
//
//   - Model: stateless per-flow arithmetic — steady-state power of a flow
//     (transceivers + MRR cell trimming along every crossed switch) and the
//     per-VM setup/lifetime energy of the paper's Equation 1.
//   - Accountant: an integrator that tracks the cluster's aggregate optical
//     power as flows come and go, its peak, and the time-integrated energy.
//
// The paper's Figure 9 ("power consumption for optical components") is the
// Accountant's peak power over a scheduling run.
package power

import (
	"fmt"
	"time"

	"risa/internal/network"
	"risa/internal/optics"
)

// Model precomputes the per-switch-class path constants so per-flow power
// is a handful of multiplications.
type Model struct {
	cfg optics.Config

	trimBox, trimRack, trimInter    float64 // W per path crossing
	setupBox, setupRack, setupInter float64 // J per path setup
}

// NewModel builds a Model from an optics configuration.
func NewModel(cfg optics.Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg}
	var err error
	if m.trimBox, err = cfg.PathTrimmingPower(cfg.BoxPorts); err != nil {
		return nil, err
	}
	if m.trimRack, err = cfg.PathTrimmingPower(cfg.RackPorts); err != nil {
		return nil, err
	}
	if m.trimInter, err = cfg.PathTrimmingPower(cfg.InterRackPorts); err != nil {
		return nil, err
	}
	if m.setupBox, err = cfg.PathSwitchingEnergy(cfg.BoxPorts); err != nil {
		return nil, err
	}
	if m.setupRack, err = cfg.PathSwitchingEnergy(cfg.RackPorts); err != nil {
		return nil, err
	}
	if m.setupInter, err = cfg.PathSwitchingEnergy(cfg.InterRackPorts); err != nil {
		return nil, err
	}
	return m, nil
}

// Config returns the optics configuration the model was built from.
func (m *Model) Config() optics.Config { return m.cfg }

// TransceiverPower returns the steady-state transceiver power of a flow:
// one transceiver pair per link traversal (4 intra-rack, 6 inter-rack),
// each at 22.5 pJ/bit × the flow's bandwidth.
func (m *Model) TransceiverPower(fl *network.Flow) float64 {
	return float64(fl.LinkTraversals()) * m.cfg.TransceiverPower(fl.BW())
}

// TrimmingPower returns the steady-state MRR trimming power of the
// switches a flow crosses: α·n·P_trim per switch, n depending on the
// switch class.
func (m *Model) TrimmingPower(fl *network.Flow) float64 {
	return float64(fl.BoxSwitchCrossings())*m.trimBox +
		float64(fl.RackSwitchCrossings())*m.trimRack +
		float64(fl.InterRackSwitchCrossings())*m.trimInter
}

// FlowPower returns the total steady-state optical power of one active
// flow in watts.
func (m *Model) FlowPower(fl *network.Flow) float64 {
	return m.TransceiverPower(fl) + m.TrimmingPower(fl)
}

// SetupEnergy returns the one-shot switch reconfiguration energy of
// establishing a flow: (n/2)·P_sw·lat_sw summed over crossed switches
// (first term of Equation 1).
func (m *Model) SetupEnergy(fl *network.Flow) float64 {
	return float64(fl.BoxSwitchCrossings())*m.setupBox +
		float64(fl.RackSwitchCrossings())*m.setupRack +
		float64(fl.InterRackSwitchCrossings())*m.setupInter
}

// FlowEnergy evaluates the full Equation 1 for a flow held for the given
// lifetime, plus the transceiver energy over that lifetime, in joules.
func (m *Model) FlowEnergy(fl *network.Flow, lifetime time.Duration) float64 {
	return m.SetupEnergy(fl) +
		(m.TrimmingPower(fl)+m.TransceiverPower(fl))*lifetime.Seconds()
}

// Accountant integrates cluster-wide optical power over (simulated) time.
// It is not safe for concurrent use; the simulator drives it from one
// goroutine.
type Accountant struct {
	model  *Model
	power  float64 // current aggregate W
	peak   float64 // maximum aggregate W seen
	energy float64 // integrated J (steady-state terms)
	setup  float64 // accumulated one-shot setup J
	flows  int
}

// NewAccountant returns an empty accountant over the model.
func NewAccountant(m *Model) *Accountant { return &Accountant{model: m} }

// Model returns the accountant's power model.
func (a *Accountant) Model() *Model { return a.model }

// Add registers an established flow: its steady-state power joins the
// aggregate and its setup energy is charged once.
func (a *Accountant) Add(fl *network.Flow) {
	a.power += a.model.FlowPower(fl)
	a.setup += a.model.SetupEnergy(fl)
	a.flows++
	if a.power > a.peak {
		a.peak = a.power
	}
}

// Remove unregisters a flow that is being torn down.
func (a *Accountant) Remove(fl *network.Flow) {
	if a.flows == 0 {
		panic("power: Remove with no active flows")
	}
	a.power -= a.model.FlowPower(fl)
	a.flows--
	// Drift guard: with every flow gone the aggregate must be zero up to
	// float64 accumulation error. The tolerance scales with the peak
	// aggregate — a hyperscale run sums millions of additions and
	// subtractions, so its residue grows with the magnitudes involved
	// (relative drift is ~1e-16 per operation) — with an absolute floor
	// for tiny runs.
	if a.flows == 0 && a.power > a.peak*1e-9+1e-9 {
		panic(fmt.Sprintf("power: %g W left with no active flows (peak %g W)", a.power, a.peak))
	}
	if a.power < 0 {
		a.power = 0 // guard against float drift
	}
}

// AdvanceSeconds integrates the current power over dt simulated seconds.
func (a *Accountant) AdvanceSeconds(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("power: negative time step %g", dt))
	}
	a.energy += a.power * dt
}

// Power returns the current aggregate steady-state power in watts.
func (a *Accountant) Power() float64 { return a.power }

// PeakPower returns the maximum aggregate power seen so far in watts.
func (a *Accountant) PeakPower() float64 { return a.peak }

// EnergyJoules returns the integrated energy: steady-state power over time
// plus all one-shot setup energies.
func (a *Accountant) EnergyJoules() float64 { return a.energy + a.setup }

// ActiveFlows returns the number of currently registered flows.
func (a *Accountant) ActiveFlows() int { return a.flows }
