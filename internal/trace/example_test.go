package trace_test

import (
	"bytes"
	"fmt"

	"risa/internal/trace"
	"risa/internal/units"
	"risa/internal/workload"
)

func Example() {
	tr := &workload.Trace{Name: "demo", VMs: []workload.VM{
		{ID: 0, Arrival: 0, Lifetime: 6300, Req: units.Vec(8, 16, 128)},
	}}
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		panic(err)
	}
	fmt.Print(buf.String())
	back, err := trace.Read(&buf, "demo")
	if err != nil {
		panic(err)
	}
	fmt.Println("round-trip VMs:", back.Len())
	// Output:
	// id,arrival,lifetime,cpu_cores,ram_gb,sto_gb
	// 0,0,6300,8,16,128
	// round-trip VMs: 1
}
