// Package trace serializes VM workloads as CSV so experiments are
// replayable and traces can be exchanged with other tools.
//
// Format (one header line, then one row per VM):
//
//	id,arrival,lifetime,cpu_cores,ram_gb,sto_gb
//	0,12,6300,8,16,128
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"risa/internal/units"
	"risa/internal/workload"
)

// header is the canonical column list.
var header = []string{"id", "arrival", "lifetime", "cpu_cores", "ram_gb", "sto_gb"}

// Write encodes a trace as CSV.
func Write(w io.Writer, tr *workload.Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	row := make([]string, len(header))
	for _, v := range tr.VMs {
		row[0] = strconv.Itoa(v.ID)
		row[1] = strconv.FormatInt(v.Arrival, 10)
		row[2] = strconv.FormatInt(v.Lifetime, 10)
		row[3] = strconv.FormatInt(int64(v.Req[units.CPU]), 10)
		row[4] = strconv.FormatInt(int64(v.Req[units.RAM]), 10)
		row[5] = strconv.FormatInt(int64(v.Req[units.Storage]), 10)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing VM %d: %w", v.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Read decodes a CSV trace written by Write. The result is validated.
func Read(r io.Reader, name string) (*workload.Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(header)
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	for i, col := range header {
		if first[i] != col {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, first[i], col)
		}
	}
	tr := &workload.Trace{Name: name}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		vals := make([]int64, len(header))
		for i, s := range rec {
			vals[i], err = strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d column %s: %w", line, header[i], err)
			}
		}
		tr.VMs = append(tr.VMs, workload.VM{
			ID:       int(vals[0]),
			Arrival:  vals[1],
			Lifetime: vals[2],
			Req: units.Vec(units.Amount(vals[3]), units.Amount(vals[4]),
				units.Amount(vals[5])),
		})
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
