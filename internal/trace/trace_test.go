package trace

import (
	"bytes"
	"strings"
	"testing"

	"risa/internal/units"
	"risa/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	orig, err := workload.Synthetic(workload.DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf, orig.Name)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("round-trip length %d, want %d", got.Len(), orig.Len())
	}
	for i := range orig.VMs {
		if got.VMs[i] != orig.VMs[i] {
			t.Fatalf("VM %d: got %+v, want %+v", i, got.VMs[i], orig.VMs[i])
		}
	}
	if got.Name != orig.Name {
		t.Errorf("name %q, want %q", got.Name, orig.Name)
	}
}

func TestWriteFormat(t *testing.T) {
	tr := &workload.Trace{VMs: []workload.VM{
		{ID: 0, Arrival: 12, Lifetime: 6300, Req: units.Vec(8, 16, 128)},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	want := "id,arrival,lifetime,cpu_cores,ram_gb,sto_gb\n0,12,6300,8,16,128\n"
	if buf.String() != want {
		t.Errorf("output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	in := "id,arrival,lifetime,cpu,ram,sto\n0,0,1,1,1,1\n"
	if _, err := Read(strings.NewReader(in), "x"); err == nil {
		t.Error("wrong header should fail")
	}
}

func TestReadRejectsBadFieldCount(t *testing.T) {
	in := "id,arrival,lifetime,cpu_cores,ram_gb,sto_gb\n0,0,1,1,1\n"
	if _, err := Read(strings.NewReader(in), "x"); err == nil {
		t.Error("short row should fail")
	}
}

func TestReadRejectsNonNumeric(t *testing.T) {
	in := "id,arrival,lifetime,cpu_cores,ram_gb,sto_gb\n0,0,abc,1,1,1\n"
	if _, err := Read(strings.NewReader(in), "x"); err == nil {
		t.Error("non-numeric field should fail")
	}
}

func TestReadRejectsInvalidTrace(t *testing.T) {
	// Lifetime 0 fails workload validation.
	in := "id,arrival,lifetime,cpu_cores,ram_gb,sto_gb\n0,0,0,1,1,1\n"
	if _, err := Read(strings.NewReader(in), "x"); err == nil {
		t.Error("invalid VM should fail")
	}
	// Arrivals out of order.
	in = "id,arrival,lifetime,cpu_cores,ram_gb,sto_gb\n0,10,5,1,1,1\n1,5,5,1,1,1\n"
	if _, err := Read(strings.NewReader(in), "x"); err == nil {
		t.Error("unordered trace should fail")
	}
}

func TestReadEmptyTrace(t *testing.T) {
	in := "id,arrival,lifetime,cpu_cores,ram_gb,sto_gb\n"
	tr, err := Read(strings.NewReader(in), "empty")
	if err != nil {
		t.Fatalf("empty trace should parse: %v", err)
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestReadMissingHeader(t *testing.T) {
	if _, err := Read(strings.NewReader(""), "x"); err == nil {
		t.Error("empty input should fail")
	}
}
