package workload

import (
	"fmt"
	"math/rand"
)

// TierMix is the priority-tier distribution of a generated workload: a
// weight per tier, sampled independently for each arrival. The zero value
// is "tiers disabled" — generators draw nothing from the RNG and every VM
// stays tier 0, so pre-tier workloads remain bit-identical draw for draw.
type TierMix struct {
	// Weights holds one non-negative weight per tier; they need not sum
	// to 1 (the sampler normalizes). All-zero disables tier sampling.
	Weights [NumTiers]float64
}

// DefaultTierMix returns the production-like mix used by the SLO ladder:
// 20% tier-0 (critical), 30% tier-1 (standard), 50% tier-2 (spot-like) —
// the rough shape of the priority classes in the Azure trace line.
func DefaultTierMix() TierMix {
	return TierMix{Weights: [NumTiers]float64{0.2, 0.3, 0.5}}
}

// Enabled reports whether any tier weight is set; disabled mixes consume
// no RNG draws and assign tier 0 to every VM.
func (m TierMix) Enabled() bool {
	for _, w := range m.Weights {
		if w != 0 {
			return true
		}
	}
	return false
}

// Validate rejects negative weights; an all-zero mix is valid (disabled).
func (m TierMix) Validate() error {
	for t, w := range m.Weights {
		if w < 0 {
			return fmt.Errorf("workload: tier %d weight %g is negative", t, w)
		}
	}
	return nil
}

// sample draws one tier from the mix using a single uniform variate from
// rng. Callers must only invoke it when Enabled() — the draw is part of
// the stream's counted RNG sequence, so whether it happens at all must be
// a pure function of the config.
func (m TierMix) sample(rng *rand.Rand) int {
	var total float64
	for _, w := range m.Weights {
		total += w
	}
	x := rng.Float64() * total
	for t, w := range m.Weights {
		x -= w
		if x < 0 && w > 0 {
			return t
		}
	}
	// Floating-point tail: land on the last tier with positive weight.
	for t := NumTiers - 1; t >= 0; t-- {
		if m.Weights[t] > 0 {
			return t
		}
	}
	return 0
}
