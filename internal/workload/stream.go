package workload

import (
	"fmt"
	"math"
	"math/rand"

	"risa/internal/units"
)

// Stream is a pull-based iterator over VM arrivals: the open-ended
// counterpart of Trace. Next returns the next arrival and true, or a zero
// VM and false once the stream is exhausted; arrivals must be yielded in
// non-decreasing Arrival order. Finite traces adapt via NewTraceStream;
// the generator streams (SyntheticConfig.NewStream, NewAzureEmpirical)
// never exhaust and rely on the consumer's stop criterion.
//
// A Stream owns all of its randomness, so a given seed yields one
// arrival sequence regardless of how the consumer interleaves its pulls
// with other work (asserted by TestStreamDeterministicAcrossPullPatterns).
type Stream interface {
	// Name labels the workload the stream produces (Trace.Name's role).
	Name() string
	// Next yields the next arrival, or ok=false when the stream is done.
	Next() (vm VM, ok bool)
}

// UtilizationObserver is implemented by streams whose arrival process
// adapts to cluster feedback. The simulator calls ObserveUtilization with
// the binding (maximum per-resource) compute utilization, as a fraction
// in [0, 1], after every arrival it processes; streams without a
// controller ignore the calls.
type UtilizationObserver interface {
	ObserveUtilization(util float64)
}

// TraceStream adapts a finite, materialized Trace to the Stream
// interface. The simulator consumes every workload through this adapter,
// so finite-trace runs and open-ended runs share one event loop.
type TraceStream struct {
	tr *Trace
	i  int
}

// NewTraceStream returns a Stream yielding the trace's VMs in order.
func NewTraceStream(tr *Trace) *TraceStream { return &TraceStream{tr: tr} }

// Name implements Stream.
func (s *TraceStream) Name() string { return s.tr.Name }

// Next implements Stream.
func (s *TraceStream) Next() (VM, bool) {
	if s.i >= len(s.tr.VMs) {
		return VM{}, false
	}
	vm := s.tr.VMs[s.i]
	s.i++
	return vm, true
}

// Take materializes the next n arrivals of a stream as a Trace (fewer if
// the stream exhausts first). Taking the first N arrivals of a generator
// stream reproduces the finite generator with the same configuration
// exactly: Synthetic is implemented as Take over its own stream.
func Take(s Stream, n int) *Trace {
	tr := &Trace{Name: s.Name(), VMs: make([]VM, 0, n)}
	for i := 0; i < n; i++ {
		vm, ok := s.Next()
		if !ok {
			break
		}
		tr.VMs = append(tr.VMs, vm)
	}
	return tr
}

// Default controller constants. The occupancy the controller steers
// responds to rate changes with a lag of one VM lifetime — hundreds of
// arrivals — so the per-observation gain must keep the integrated
// correction over that lag near unity or the loop limit-cycles between
// overfilling (mass drops) and overcorrecting; 0.001 is stable for the
// repository's workloads (≈600–900 arrivals per lifetime). The clamp
// keeps a mis-seeded rate from over- or under-shooting by more than 64×.
const (
	defaultControllerGain = 0.001
	defaultMaxAdjust      = 64.0
)

// UtilizationController steers an open-ended generator's arrival rate so
// the cluster holds a target occupancy: a multiplicative-proportional
// controller on the rate multiplier,
//
//	mult ← clamp(mult · exp(Gain · (Target − util)))
//
// which is stationary exactly when the observed binding-resource
// utilization equals Target. A Target above 1 can never be reached, so
// the multiplier rises to its clamp and the generator sustains overload —
// that is how the churn experiment's overload rung is expressed.
//
// The controller only scales the gaps a generator draws; it never touches
// the generator's random stream, so two equally-seeded streams yield the
// same request sequence whether or not they are controlled (arrival
// *times* differ, sizes and order do not).
type UtilizationController struct {
	// Target is the desired binding-resource occupancy as a fraction;
	// must be positive.
	Target float64
	// Gain is the per-observation adjustment strength (default 0.001;
	// see defaultControllerGain on why larger gains destabilize).
	Gain float64
	// MaxAdjust clamps the multiplier to [1/MaxAdjust, MaxAdjust]; it
	// must be at least 1 (or 0 for the default of 64) — a band narrower
	// than 1 would be empty.
	MaxAdjust float64

	mult float64
}

// Validate checks the controller's parameters.
func (c *UtilizationController) Validate() error {
	if c.Target <= 0 {
		return fmt.Errorf("workload: controller target must be positive, got %g", c.Target)
	}
	if c.Gain < 0 {
		return fmt.Errorf("workload: negative controller gain %g", c.Gain)
	}
	if c.MaxAdjust != 0 && c.MaxAdjust < 1 {
		return fmt.Errorf("workload: controller max-adjust must be >= 1 (or 0 for the default), got %g", c.MaxAdjust)
	}
	return nil
}

// Multiplier returns the current rate multiplier (1 before any feedback).
func (c *UtilizationController) Multiplier() float64 {
	if c.mult == 0 {
		return 1
	}
	return c.mult
}

// ObserveUtilization feeds one occupancy observation (a fraction) back
// into the controller.
func (c *UtilizationController) ObserveUtilization(util float64) {
	gain := c.Gain
	if gain == 0 {
		gain = defaultControllerGain
	}
	max := c.MaxAdjust
	if max == 0 {
		max = defaultMaxAdjust
	}
	m := c.Multiplier() * math.Exp(gain*(c.Target-util))
	if m > max {
		m = max
	}
	if m < 1/max {
		m = 1 / max
	}
	c.mult = m
}

// SyntheticStream is the open-ended form of the §5.1 synthetic generator:
// the same request-size distributions and arrival process as Synthetic,
// but unbounded — Next never exhausts and the consumer decides when to
// stop. The finite Synthetic is exactly this stream's first N arrivals.
type SyntheticStream struct {
	cfg SyntheticConfig
	src *CountingSource
	rng *rand.Rand
	now float64
	i   int
}

// NewStream returns the open-ended generator stream for the
// configuration. N is ignored (the stream never exhausts); everything
// else — arrival model, request ranges, lifetime schedule, seed and
// optional Controller — applies as in Synthetic. For a stationary
// workload (steady-state churn) set LifetimeStep to 0, otherwise the
// per-set lifetime growth makes occupancy drift upward forever.
func (c SyntheticConfig) NewStream() (*SyntheticStream, error) {
	if err := c.validateStream(); err != nil {
		return nil, err
	}
	src := NewCountingSource(c.Seed)
	return &SyntheticStream{cfg: c, src: src, rng: rand.New(src)}, nil
}

// Name implements Stream.
func (s *SyntheticStream) Name() string {
	if s.cfg.Arrivals != Poisson {
		return "synthetic-" + s.cfg.Arrivals.String()
	}
	return "synthetic"
}

// Next implements Stream. It draws exactly one interarrival gap, one CPU
// size and one RAM size per call, in that order — plus one tier draw at
// the end when the config's TierMix is enabled — so the random stream is
// consumed identically however the caller paces its pulls.
func (s *SyntheticStream) Next() (VM, bool) {
	c := s.cfg
	gap := c.gap(s.rng, s.now)
	if c.Controller != nil {
		gap /= c.Controller.Multiplier()
	}
	s.now += gap
	cpu := c.CPUMin + units.Amount(s.rng.Int63n(int64(c.CPUMax-c.CPUMin)+1))
	ram := c.RAMMin + units.Amount(s.rng.Int63n(int64(c.RAMMax-c.RAMMin)+1))
	vm := VM{
		ID:       s.i,
		Arrival:  int64(math.Round(s.now)),
		Lifetime: c.LifetimeBase + c.LifetimeStep*int64(s.i/c.SetSize),
		Req:      units.Vec(cpu, ram, c.StorageGB),
	}
	if c.Tiers.Enabled() {
		vm.Tier = c.Tiers.sample(s.rng)
	}
	s.i++
	return vm, true
}

// ObserveUtilization implements UtilizationObserver by forwarding to the
// configured Controller, if any.
func (s *SyntheticStream) ObserveUtilization(util float64) {
	if s.cfg.Controller != nil {
		s.cfg.Controller.ObserveUtilization(util)
	}
}

// Controller returns the configured rate controller (nil when the stream
// is uncontrolled).
func (s *SyntheticStream) Controller() *UtilizationController { return s.cfg.Controller }

// AzureEmpiricalConfig parameterizes the open-ended Azure-empirical
// generator: CPU and RAM sizes are resampled with replacement from the
// paper's Figure 6 per-subset histograms (so the long-run marginals
// converge to the empirical ones instead of matching them exactly like
// the finite AzureLike), lifetimes are exponential, arrivals Poisson.
// Zero-valued fields fall back to the same defaults as AzureConfig.
type AzureEmpiricalConfig struct {
	Subset           AzureSubset
	MeanInterarrival float64      // default 10, like the synthetic workload
	LifetimeMean     float64      // default per-subset calibrated value
	StorageGB        units.Amount // default 128
	Seed             int64
	// Controller optionally steers the arrival rate toward a target
	// occupancy (see UtilizationController).
	Controller *UtilizationController
	// Tiers, when enabled, draws a priority tier per VM from the mix
	// (one extra RNG draw at the end of each Next); the zero value keeps
	// the random stream bit-identical to pre-tier runs.
	Tiers TierMix
}

// AzureEmpiricalStream resamples the Azure request mix open-endedly.
type AzureEmpiricalStream struct {
	cfg      AzureEmpiricalConfig
	name     string
	src      *CountingSource
	rng      *rand.Rand
	cpu, ram cumulativeHist
	now      float64
	i        int
}

// NewAzureEmpirical returns the open-ended Azure-empirical stream.
func NewAzureEmpirical(c AzureEmpiricalConfig) (*AzureEmpiricalStream, error) {
	spec, err := Spec(c.Subset)
	if err != nil {
		return nil, err
	}
	if c.MeanInterarrival == 0 {
		c.MeanInterarrival = 10
	}
	if c.LifetimeMean == 0 {
		c.LifetimeMean = spec.DefaultLifetimeMean
	}
	if c.StorageGB == 0 {
		c.StorageGB = 128
	}
	if c.MeanInterarrival < 0 || c.LifetimeMean < 0 || c.StorageGB < 0 {
		return nil, fmt.Errorf("workload: negative azure-empirical parameters (interarrival %g, lifetime %g, storage %d)",
			c.MeanInterarrival, c.LifetimeMean, c.StorageGB)
	}
	if c.Controller != nil {
		if err := c.Controller.Validate(); err != nil {
			return nil, err
		}
	}
	if err := c.Tiers.Validate(); err != nil {
		return nil, err
	}
	src := NewCountingSource(c.Seed)
	return &AzureEmpiricalStream{
		cfg:  c,
		name: "azure-empirical-" + spec.Name,
		src:  src,
		rng:  rand.New(src),
		cpu:  newCumulativeHist(spec.CPU),
		ram:  newCumulativeHist(spec.RAM),
	}, nil
}

// Name implements Stream.
func (s *AzureEmpiricalStream) Name() string { return s.name }

// Next implements Stream. Per call it draws one gap, one CPU sample, one
// RAM sample and one lifetime, in that order — plus one tier draw at the
// end when the config's TierMix is enabled.
func (s *AzureEmpiricalStream) Next() (VM, bool) {
	c := s.cfg
	gap := s.rng.ExpFloat64() * c.MeanInterarrival
	if c.Controller != nil {
		gap /= c.Controller.Multiplier()
	}
	s.now += gap
	cpu := s.cpu.sample(s.rng)
	ram := s.ram.sample(s.rng)
	life := int64(math.Round(s.rng.ExpFloat64() * c.LifetimeMean))
	if life < 1 {
		life = 1
	}
	vm := VM{
		ID:       s.i,
		Arrival:  int64(math.Round(s.now)),
		Lifetime: life,
		Req:      units.Vec(cpu, ram, c.StorageGB),
	}
	if c.Tiers.Enabled() {
		vm.Tier = c.Tiers.sample(s.rng)
	}
	s.i++
	return vm, true
}

// ObserveUtilization implements UtilizationObserver by forwarding to the
// configured Controller, if any.
func (s *AzureEmpiricalStream) ObserveUtilization(util float64) {
	if s.cfg.Controller != nil {
		s.cfg.Controller.ObserveUtilization(util)
	}
}

// Controller returns the configured rate controller (nil when the stream
// is uncontrolled).
func (s *AzureEmpiricalStream) Controller() *UtilizationController { return s.cfg.Controller }

// cumulativeHist supports weighted sampling with replacement from a
// ValueCount histogram.
type cumulativeHist struct {
	values []units.Amount
	cum    []int64 // cum[i] = Σ counts[0..i]
	total  int64
}

// newCumulativeHist precomputes the cumulative counts.
func newCumulativeHist(bars []ValueCount) cumulativeHist {
	h := cumulativeHist{
		values: make([]units.Amount, len(bars)),
		cum:    make([]int64, len(bars)),
	}
	for i, b := range bars {
		h.total += int64(b.Count)
		h.values[i] = b.Value
		h.cum[i] = h.total
	}
	return h
}

// sample draws one value with probability proportional to its count.
func (h cumulativeHist) sample(rng *rand.Rand) units.Amount {
	x := rng.Int63n(h.total)
	for i, c := range h.cum {
		if x < c {
			return h.values[i]
		}
	}
	return h.values[len(h.values)-1] // unreachable: cum[last] == total
}
