package workload

import (
	"fmt"
	"math"
	"math/rand"

	"risa/internal/units"
)

// AzureSubset names one of the three slices of the 2017 Azure trace the
// paper evaluates: the first 3000, 5000 and 7500 VMs.
type AzureSubset int

// The three practical workloads of §5.2.
const (
	Azure3000 AzureSubset = iota
	Azure5000
	Azure7500
)

// String returns the paper's workload label.
func (s AzureSubset) String() string {
	switch s {
	case Azure3000:
		return "Azure-3000"
	case Azure5000:
		return "Azure-5000"
	case Azure7500:
		return "Azure-7500"
	default:
		return fmt.Sprintf("AzureSubset(%d)", int(s))
	}
}

// Subsets lists the three subsets in paper order.
func Subsets() []AzureSubset { return []AzureSubset{Azure3000, Azure5000, Azure7500} }

// AzureSpec pins the exact request mix of one subset: the CPU-core and
// RAM-GB histograms read off the paper's Figure 6, plus the fixed 128 GB
// storage the paper assumes for every Azure VM.
type AzureSpec struct {
	Name string
	N    int
	CPU  []ValueCount // cores → VM count, Σ = N
	RAM  []ValueCount // GB    → VM count, Σ = N
	// DefaultLifetimeMean is the calibrated mean exponential lifetime (in
	// time units). The values are chosen so peak storage utilization (the
	// binding resource for the fixed 128 GB per VM) climbs across the
	// subsets — ~64 %, ~82 %, ~93 % — without ever dropping a VM, which
	// is the regime of the paper's §5.2 (zero drops, utilization growing
	// with subset size). See EXPERIMENTS.md for the calibration.
	DefaultLifetimeMean float64
}

// azureSpecs holds the Figure 6 histograms. CPU bars sit at 1/2/4/8 cores;
// RAM bars at 4/8/16/32/64 GB (bin centers of the paper's 10-bin
// histograms; only these five bins are non-empty in the figure).
var azureSpecs = map[AzureSubset]AzureSpec{
	Azure3000: {
		Name: "Azure-3000", N: 3000,
		CPU:                 []ValueCount{{1, 1326}, {2, 1269}, {4, 316}, {8, 89}},
		RAM:                 []ValueCount{{4, 2591}, {8, 299}, {16, 15}, {32, 17}, {64, 78}},
		DefaultLifetimeMean: 18000,
	},
	Azure5000: {
		Name: "Azure-5000", N: 5000,
		CPU:                 []ValueCount{{1, 1931}, {2, 2514}, {4, 444}, {8, 111}},
		RAM:                 []ValueCount{{4, 4439}, {8, 427}, {16, 39}, {32, 17}, {64, 78}},
		DefaultLifetimeMean: 20500,
	},
	Azure7500: {
		Name: "Azure-7500", N: 7500,
		CPU:                 []ValueCount{{1, 4153}, {2, 2536}, {4, 507}, {8, 304}},
		RAM:                 []ValueCount{{4, 6682}, {8, 488}, {16, 203}, {32, 19}, {64, 108}},
		DefaultLifetimeMean: 22500,
	},
}

// Spec returns the pinned request mix of a subset.
func Spec(s AzureSubset) (AzureSpec, error) {
	sp, ok := azureSpecs[s]
	if !ok {
		return AzureSpec{}, fmt.Errorf("workload: unknown Azure subset %d", int(s))
	}
	return sp, nil
}

// AzureConfig parameterizes the Azure-like generator. Zero-valued fields
// fall back to the paper-calibrated defaults.
type AzureConfig struct {
	Subset           AzureSubset
	MeanInterarrival float64 // default 10, like the synthetic workload
	LifetimeMean     float64 // default per-subset calibrated value
	StorageGB        units.Amount
	Seed             int64
}

// AzureLike generates a trace whose CPU and RAM histograms match the
// paper's Figure 6 exactly: the marginal multisets are fully enumerated
// and shuffled independently, then zipped, so every generated trace has
// the precise per-value counts of the figure regardless of seed.
func AzureLike(c AzureConfig) (*Trace, error) {
	spec, err := Spec(c.Subset)
	if err != nil {
		return nil, err
	}
	if c.MeanInterarrival == 0 {
		c.MeanInterarrival = 10
	}
	if c.MeanInterarrival < 0 {
		return nil, fmt.Errorf("workload: negative interarrival %g", c.MeanInterarrival)
	}
	if c.LifetimeMean == 0 {
		c.LifetimeMean = spec.DefaultLifetimeMean
	}
	if c.LifetimeMean < 0 {
		return nil, fmt.Errorf("workload: negative lifetime mean %g", c.LifetimeMean)
	}
	if c.StorageGB == 0 {
		c.StorageGB = 128
	}
	if c.StorageGB < 0 {
		return nil, fmt.Errorf("workload: negative storage %d", c.StorageGB)
	}

	rng := rand.New(rand.NewSource(c.Seed))
	cpus := expand(spec.CPU, spec.N)
	rams := expand(spec.RAM, spec.N)
	rng.Shuffle(len(cpus), func(i, j int) { cpus[i], cpus[j] = cpus[j], cpus[i] })
	rng.Shuffle(len(rams), func(i, j int) { rams[i], rams[j] = rams[j], rams[i] })

	tr := &Trace{Name: spec.Name, VMs: make([]VM, 0, spec.N)}
	var now float64
	for i := 0; i < spec.N; i++ {
		now += rng.ExpFloat64() * c.MeanInterarrival
		life := int64(math.Round(rng.ExpFloat64() * c.LifetimeMean))
		if life < 1 {
			life = 1
		}
		tr.VMs = append(tr.VMs, VM{
			ID:       i,
			Arrival:  int64(math.Round(now)),
			Lifetime: life,
			Req:      units.Vec(cpus[i], rams[i], c.StorageGB),
		})
	}
	return tr, nil
}

// expand unrolls a histogram into its multiset of values.
func expand(bars []ValueCount, n int) []units.Amount {
	out := make([]units.Amount, 0, n)
	for _, b := range bars {
		for i := 0; i < b.Count; i++ {
			out = append(out, b.Value)
		}
	}
	if len(out) != n {
		panic(fmt.Sprintf("workload: histogram sums to %d, want %d", len(out), n))
	}
	return out
}
