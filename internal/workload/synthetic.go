package workload

import (
	"fmt"
	"math/rand"

	"risa/internal/units"
)

// ArrivalModel selects the arrival process of the synthetic generator.
type ArrivalModel int

const (
	// Poisson is the paper's process: exponential interarrival gaps.
	Poisson ArrivalModel = iota
	// Uniform draws gaps uniformly in [0, 2·mean] — same rate, bounded
	// burstiness.
	Uniform
	// Bursty alternates on/off phases of BurstPeriod time units each:
	// during the on phase the arrival rate is BurstFactor× the base rate,
	// during the off phase 1/BurstFactor×. It stresses the schedulers
	// with cloud-like demand spikes (an extension beyond the paper).
	Bursty
)

// String names the model.
func (m ArrivalModel) String() string {
	switch m {
	case Poisson:
		return "poisson"
	case Uniform:
		return "uniform"
	case Bursty:
		return "bursty"
	default:
		return fmt.Sprintf("ArrivalModel(%d)", int(m))
	}
}

// SyntheticConfig describes the paper's §5.1 synthetic random workload:
// CPU uniform in 1..32 cores, RAM uniform in 1..32 GB, storage fixed at
// 128 GB, Poisson arrivals with a mean interarrival of 10 time units, and
// a lifetime of 6300 time units that grows by 360 for every completed set
// of 100 requests. 2500 VMs in total.
type SyntheticConfig struct {
	N                int          // number of VMs
	MeanInterarrival float64      // mean of the interarrival gap
	CPUMin, CPUMax   units.Amount // cores, inclusive uniform range
	RAMMin, RAMMax   units.Amount // GB, inclusive uniform range
	StorageGB        units.Amount // fixed storage per VM
	LifetimeBase     int64        // lifetime of the first set of VMs
	LifetimeStep     int64        // lifetime increment per completed set
	SetSize          int          // requests per lifetime set
	Seed             int64

	// Arrivals selects the arrival process (default Poisson, the paper's).
	Arrivals ArrivalModel
	// BurstFactor and BurstPeriod parameterize the Bursty model; zero
	// values default to 4× and 2000 time units.
	BurstFactor float64
	BurstPeriod float64

	// Controller, when non-nil, scales the arrival rate by the
	// controller's multiplier — only meaningful for the open-ended
	// NewStream form, where the simulator feeds occupancy back (see
	// UtilizationController). The finite Synthetic never receives
	// feedback, so a controller leaves it unchanged.
	Controller *UtilizationController

	// Tiers, when enabled, draws a priority tier per VM from the mix
	// (one extra RNG draw at the end of each Next). The zero value keeps
	// the generator's random stream bit-identical to pre-tier runs.
	Tiers TierMix
}

// DefaultSyntheticConfig returns the paper's exact parameters.
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		N:                2500,
		MeanInterarrival: 10,
		CPUMin:           1, CPUMax: 32,
		RAMMin: 1, RAMMax: 32,
		StorageGB:    128,
		LifetimeBase: 6300,
		LifetimeStep: 360,
		SetSize:      100,
		Seed:         1,
	}
}

// Validate checks generator sanity for the finite Synthetic form.
func (c SyntheticConfig) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("workload: synthetic N must be positive, got %d", c.N)
	}
	return c.validateStream()
}

// validateStream checks everything Validate does except N, which the
// open-ended stream form ignores.
func (c SyntheticConfig) validateStream() error {
	if c.MeanInterarrival <= 0 {
		return fmt.Errorf("workload: mean interarrival must be positive, got %g", c.MeanInterarrival)
	}
	if c.CPUMin <= 0 || c.CPUMax < c.CPUMin {
		return fmt.Errorf("workload: bad CPU range [%d,%d]", c.CPUMin, c.CPUMax)
	}
	if c.RAMMin <= 0 || c.RAMMax < c.RAMMin {
		return fmt.Errorf("workload: bad RAM range [%d,%d]", c.RAMMin, c.RAMMax)
	}
	if c.StorageGB <= 0 {
		return fmt.Errorf("workload: storage must be positive, got %d", c.StorageGB)
	}
	if c.LifetimeBase <= 0 || c.LifetimeStep < 0 || c.SetSize <= 0 {
		return fmt.Errorf("workload: bad lifetime schedule base=%d step=%d set=%d",
			c.LifetimeBase, c.LifetimeStep, c.SetSize)
	}
	if c.Arrivals < Poisson || c.Arrivals > Bursty {
		return fmt.Errorf("workload: unknown arrival model %d", int(c.Arrivals))
	}
	if c.BurstFactor < 0 || c.BurstPeriod < 0 {
		return fmt.Errorf("workload: negative burst parameters (%g, %g)", c.BurstFactor, c.BurstPeriod)
	}
	if c.Controller != nil {
		if err := c.Controller.Validate(); err != nil {
			return err
		}
	}
	return c.Tiers.Validate()
}

// gap draws one interarrival gap at simulated time now.
func (c SyntheticConfig) gap(rng *rand.Rand, now float64) float64 {
	switch c.Arrivals {
	case Uniform:
		return rng.Float64() * 2 * c.MeanInterarrival
	case Bursty:
		factor, period := c.BurstFactor, c.BurstPeriod
		if factor == 0 {
			factor = 4
		}
		if period == 0 {
			period = 2000
		}
		mean := c.MeanInterarrival / factor // on phase: factor× the rate
		if int64(now/period)%2 == 1 {
			mean = c.MeanInterarrival * factor // off phase
		}
		return rng.ExpFloat64() * mean
	default:
		return rng.ExpFloat64() * c.MeanInterarrival
	}
}

// Synthetic generates the workload deterministically from c.Seed: the
// first N arrivals of the open-ended stream with the same configuration
// (see SyntheticConfig.NewStream), so finite traces and streams with one
// seed agree arrival for arrival.
func Synthetic(c SyntheticConfig) (*Trace, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s, err := c.NewStream()
	if err != nil {
		return nil, err
	}
	return Take(s, c.N), nil
}
