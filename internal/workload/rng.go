package workload

import (
	"fmt"
	"math/rand"
)

// CountingSource wraps math/rand's default Source64 and counts how many
// times the source has been stepped. Because both Int63 and Uint64
// advance the underlying generator by exactly one step, the count fully
// determines the generator's position regardless of which mix of
// distribution methods (ExpFloat64, Int63n with its rejection loop,
// Float64, ...) consumed the draws. That makes the source snapshottable
// with two numbers — seed and draw count — and restorable by replay:
// reseed and step Draws() times.
//
// rand.New type-asserts Source64 at construction and delegates Int63 and
// Uint64 straight to the source, so a rand.Rand over a CountingSource
// produces bit-identical value sequences to one over the bare source
// with the same seed.
type CountingSource struct {
	src  rand.Source64
	seed int64
	n    uint64
}

// NewCountingSource returns a counting source seeded like
// rand.NewSource(seed).
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 implements rand.Source.
func (s *CountingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *CountingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

// Seed implements rand.Source: it reseeds the generator and resets the
// draw count.
func (s *CountingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.seed = seed
	s.n = 0
}

// SeedValue returns the seed the source was last (re)seeded with.
func (s *CountingSource) SeedValue() int64 { return s.seed }

// Draws returns how many times the source has been stepped since it was
// last (re)seeded.
func (s *CountingSource) Draws() uint64 { return s.n }

// Replay repositions the source at exactly draws steps past seed, the
// state a source reports as (SeedValue, Draws) after producing that many
// values.
func (s *CountingSource) Replay(seed int64, draws uint64) {
	s.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Int63()
	}
	s.n = draws
}

// StreamState is the serializable position of a workload stream: enough
// to rebuild an equally-configured stream mid-sequence so it yields the
// exact arrivals the original would have yielded next. Generator streams
// record their RNG position as a draw count (see CountingSource) plus
// the simulated clock and arrival index; trace streams only need the
// index. ControllerMult preserves the rate controller's multiplier for
// controlled streams (1 for uncontrolled ones).
type StreamState struct {
	Name           string
	Index          int
	Now            float64
	Draws          uint64
	ControllerMult float64
}

// StreamSnapshotter is implemented by streams that can capture and
// restore their position. RestoreStreamState must only be called on a
// pristine stream built with the same configuration (same seed, same
// distributions) as the one that produced the state; the Name field
// guards against gross mismatches.
type StreamSnapshotter interface {
	// StreamState captures the stream's position without perturbing it.
	StreamState() StreamState
	// RestoreStreamState repositions the stream. It fails if the state's
	// Name does not match the stream's.
	RestoreStreamState(st StreamState) error
}

// checkStreamName rejects state captured from a differently-named stream.
func checkStreamName(got, want string) error {
	if got != want {
		return fmt.Errorf("workload: stream state is for %q, not %q", got, want)
	}
	return nil
}

// StreamState implements StreamSnapshotter.
func (s *TraceStream) StreamState() StreamState {
	return StreamState{Name: s.Name(), Index: s.i, ControllerMult: 1}
}

// RestoreStreamState implements StreamSnapshotter.
func (s *TraceStream) RestoreStreamState(st StreamState) error {
	if err := checkStreamName(st.Name, s.Name()); err != nil {
		return err
	}
	if st.Index < 0 || st.Index > len(s.tr.VMs) {
		return fmt.Errorf("workload: stream index %d out of range for trace of %d VMs", st.Index, len(s.tr.VMs))
	}
	s.i = st.Index
	return nil
}

// controllerMult reads a controller's multiplier, defaulting to 1.
func controllerMult(c *UtilizationController) float64 {
	if c == nil {
		return 1
	}
	return c.Multiplier()
}

// restoreControllerMult writes a captured multiplier back.
func restoreControllerMult(c *UtilizationController, mult float64) {
	if c != nil {
		c.mult = mult
	}
}

// StreamState implements StreamSnapshotter.
func (s *SyntheticStream) StreamState() StreamState {
	return StreamState{
		Name:           s.Name(),
		Index:          s.i,
		Now:            s.now,
		Draws:          s.src.Draws(),
		ControllerMult: controllerMult(s.cfg.Controller),
	}
}

// RestoreStreamState implements StreamSnapshotter.
func (s *SyntheticStream) RestoreStreamState(st StreamState) error {
	if err := checkStreamName(st.Name, s.Name()); err != nil {
		return err
	}
	s.src.Replay(s.cfg.Seed, st.Draws)
	s.i = st.Index
	s.now = st.Now
	restoreControllerMult(s.cfg.Controller, st.ControllerMult)
	return nil
}

// StreamState implements StreamSnapshotter.
func (s *AzureEmpiricalStream) StreamState() StreamState {
	return StreamState{
		Name:           s.Name(),
		Index:          s.i,
		Now:            s.now,
		Draws:          s.src.Draws(),
		ControllerMult: controllerMult(s.cfg.Controller),
	}
}

// RestoreStreamState implements StreamSnapshotter.
func (s *AzureEmpiricalStream) RestoreStreamState(st StreamState) error {
	if err := checkStreamName(st.Name, s.Name()); err != nil {
		return err
	}
	s.src.Replay(s.cfg.Seed, st.Draws)
	s.i = st.Index
	s.now = st.Now
	restoreControllerMult(s.cfg.Controller, st.ControllerMult)
	return nil
}
