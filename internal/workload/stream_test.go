package workload

import (
	"testing"

	"risa/internal/units"
)

// pull drains n arrivals from a stream, failing the test if it exhausts.
func pull(t *testing.T, s Stream, n int) []VM {
	t.Helper()
	out := make([]VM, 0, n)
	for i := 0; i < n; i++ {
		vm, ok := s.Next()
		if !ok {
			t.Fatalf("stream %q exhausted after %d arrivals, want %d", s.Name(), i, n)
		}
		out = append(out, vm)
	}
	return out
}

// sameVMs compares two arrival sequences exactly.
func sameVMs(t *testing.T, got, want []VM, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d arrivals, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: arrival %d differs: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestStreamDeterministicAcrossPullPatterns is the determinism contract
// of the Stream interface: the same seed yields the same arrival
// sequence whether the consumer drains the stream in one go or pulls it
// in irregular chunks interleaved with pulls from unrelated streams.
func TestStreamDeterministicAcrossPullPatterns(t *testing.T) {
	const n = 600
	build := func(name string) []Stream {
		switch name {
		case "synthetic":
			cfg := DefaultSyntheticConfig()
			cfg.Seed = 42
			a, err := cfg.NewStream()
			if err != nil {
				t.Fatal(err)
			}
			b, err := cfg.NewStream()
			if err != nil {
				t.Fatal(err)
			}
			return []Stream{a, b}
		case "azure-empirical":
			cfg := AzureEmpiricalConfig{Subset: Azure5000, Seed: 42}
			a, err := NewAzureEmpirical(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewAzureEmpirical(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return []Stream{a, b}
		}
		t.Fatalf("unknown generator %q", name)
		return nil
	}
	for _, name := range []string{"synthetic", "azure-empirical"} {
		t.Run(name, func(t *testing.T) {
			pair := build(name)
			straight := pull(t, pair[0], n)

			// Irregular pull pattern: chunks of growing size, interleaved
			// with pulls from a decoy stream that must not perturb it.
			decoyCfg := DefaultSyntheticConfig()
			decoyCfg.Seed = 7
			decoy, err := decoyCfg.NewStream()
			if err != nil {
				t.Fatal(err)
			}
			var chunked []VM
			for chunk := 1; len(chunked) < n; chunk = chunk*2 + 1 {
				take := chunk
				if take > n-len(chunked) {
					take = n - len(chunked)
				}
				chunked = append(chunked, pull(t, pair[1], take)...)
				pull(t, decoy, 3)
			}
			sameVMs(t, chunked, straight, name)
		})
	}
}

// TestSyntheticIsStreamPrefix pins Synthetic's implementation contract:
// the finite trace is exactly the open-ended stream's first N arrivals,
// for every arrival model.
func TestSyntheticIsStreamPrefix(t *testing.T) {
	for _, model := range []ArrivalModel{Poisson, Uniform, Bursty} {
		cfg := DefaultSyntheticConfig()
		cfg.N = 400
		cfg.Arrivals = model
		cfg.Seed = 9
		tr, err := Synthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := cfg.NewStream()
		if err != nil {
			t.Fatal(err)
		}
		sameVMs(t, pull(t, s, cfg.N), tr.VMs, model.String())
		if s.Name() != tr.Name {
			t.Errorf("%v: stream name %q != trace name %q", model, s.Name(), tr.Name)
		}
	}
}

// TestTraceStreamAdapter checks the finite adapter yields the trace
// exactly and then exhausts.
func TestTraceStreamAdapter(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.N = 50
	tr, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewTraceStream(tr)
	if s.Name() != tr.Name {
		t.Errorf("adapter name %q != trace name %q", s.Name(), tr.Name)
	}
	sameVMs(t, pull(t, s, 50), tr.VMs, "trace-stream")
	if _, ok := s.Next(); ok {
		t.Error("adapter should exhaust after the trace's last VM")
	}
}

// TestTakeRoundTrip checks Take materializes a stream prefix as a valid
// trace.
func TestTakeRoundTrip(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	s, err := cfg.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	tr := Take(s, 200)
	if tr.Len() != 200 {
		t.Fatalf("Take returned %d VMs, want 200", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAzureEmpiricalSupport checks every resampled VM is valid and draws
// its sizes from the Figure 6 histogram support.
func TestAzureEmpiricalSupport(t *testing.T) {
	spec, err := Spec(Azure3000)
	if err != nil {
		t.Fatal(err)
	}
	support := func(bars []ValueCount) map[units.Amount]bool {
		m := make(map[units.Amount]bool)
		for _, b := range bars {
			m[b.Value] = true
		}
		return m
	}
	cpus, rams := support(spec.CPU), support(spec.RAM)
	s, err := NewAzureEmpirical(AzureEmpiricalConfig{Subset: Azure3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range pull(t, s, 2000) {
		if err := vm.Validate(); err != nil {
			t.Fatal(err)
		}
		if !cpus[vm.Req[units.CPU]] {
			t.Fatalf("CPU size %d outside the Figure 6 support", vm.Req[units.CPU])
		}
		if !rams[vm.Req[units.RAM]] {
			t.Fatalf("RAM size %d outside the Figure 6 support", vm.Req[units.RAM])
		}
		if vm.Req[units.Storage] != 128 {
			t.Fatalf("storage %d, want the default 128", vm.Req[units.Storage])
		}
	}
}

// TestUtilizationController checks the control law's direction, fixpoint
// and clamp.
func TestUtilizationController(t *testing.T) {
	c := &UtilizationController{Target: 0.75}
	if m := c.Multiplier(); m != 1 {
		t.Fatalf("initial multiplier %g, want 1", m)
	}
	c.ObserveUtilization(0.50) // below target: rate must rise
	if c.Multiplier() <= 1 {
		t.Errorf("multiplier %g after under-target feedback, want > 1", c.Multiplier())
	}
	up := c.Multiplier()
	c.ObserveUtilization(0.75) // at target: stationary
	if c.Multiplier() != up {
		t.Errorf("multiplier moved at target: %g -> %g", up, c.Multiplier())
	}
	for i := 0; i < 200000; i++ {
		c.ObserveUtilization(1.0) // far above target, forever
	}
	if m := c.Multiplier(); m < 1.0/64-1e-12 || m > 1.0/64+1e-9 {
		t.Errorf("multiplier %g, want clamped at 1/64", m)
	}
	for i := 0; i < 400000; i++ {
		c.ObserveUtilization(0)
	}
	if m := c.Multiplier(); m > 64+1e-9 {
		t.Errorf("multiplier %g, want clamped at 64", m)
	}
	if err := (&UtilizationController{}).Validate(); err == nil {
		t.Error("zero target must not validate")
	}
	if err := (&UtilizationController{Target: 0.5, MaxAdjust: 0.5}).Validate(); err == nil {
		t.Error("max-adjust below 1 must not validate: the clamp band would be empty")
	}
}

// TestControllerOnlyRescalesTime checks the controller contract that it
// never touches the generator's random stream: a controlled stream under
// heavy feedback yields the same request sizes, lifetimes and order as
// an uncontrolled equally-seeded one — only the arrival times move.
func TestControllerOnlyRescalesTime(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Seed = 11
	plain, err := cfg.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	ctl := &UtilizationController{Target: 0.9, Gain: 0.5}
	cfgC := cfg
	cfgC.Controller = ctl
	controlled, err := cfgC.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		a, _ := plain.Next()
		b, _ := controlled.Next()
		controlled.ObserveUtilization(0.2) // keep the controller moving
		if a.Req != b.Req || a.Lifetime != b.Lifetime || a.ID != b.ID {
			t.Fatalf("arrival %d: controlled stream perturbed the draw: %+v vs %+v", i, a, b)
		}
	}
	if ctl.Multiplier() <= 1 {
		t.Errorf("controller never engaged: multiplier %g", ctl.Multiplier())
	}
}
