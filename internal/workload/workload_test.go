package workload

import (
	"math"
	"testing"
	"testing/quick"

	"risa/internal/units"
)

func TestVMValidate(t *testing.T) {
	good := VM{ID: 0, Arrival: 0, Lifetime: 10, Req: units.Vec(1, 1, 1)}
	if err := good.Validate(); err != nil {
		t.Errorf("good VM invalid: %v", err)
	}
	bad := []VM{
		{Arrival: -1, Lifetime: 10, Req: units.Vec(1, 1, 1)},
		{Arrival: 0, Lifetime: 0, Req: units.Vec(1, 1, 1)},
		{Arrival: 0, Lifetime: -3, Req: units.Vec(1, 1, 1)},
		{Arrival: 0, Lifetime: 10, Req: units.Vec(-1, 1, 1)},
		{Arrival: 0, Lifetime: 10, Req: units.Vec(0, 0, 0)},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad VM %d should fail validation", i)
		}
	}
}

func TestVMDeparture(t *testing.T) {
	v := VM{Arrival: 100, Lifetime: 50}
	if v.Departure() != 150 {
		t.Errorf("Departure = %d", v.Departure())
	}
}

func TestTraceValidateOrdering(t *testing.T) {
	tr := &Trace{Name: "x", VMs: []VM{
		{ID: 0, Arrival: 10, Lifetime: 1, Req: units.Vec(1, 1, 1)},
		{ID: 1, Arrival: 5, Lifetime: 1, Req: units.Vec(1, 1, 1)},
	}}
	if err := tr.Validate(); err == nil {
		t.Error("out-of-order trace should fail")
	}
}

func TestTraceStats(t *testing.T) {
	tr := &Trace{VMs: []VM{
		{Arrival: 0, Lifetime: 10, Req: units.Vec(2, 4, 128)},
		{Arrival: 5, Lifetime: 20, Req: units.Vec(4, 8, 128)},
	}}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Makespan() != 25 {
		t.Errorf("Makespan = %d", tr.Makespan())
	}
	mean := tr.MeanRequest()
	if mean[units.CPU] != 3 || mean[units.RAM] != 6 || mean[units.Storage] != 128 {
		t.Errorf("MeanRequest = %v", mean)
	}
	demand := tr.TotalDemandTime()
	if demand[units.CPU] != 2*10+4*20 {
		t.Errorf("TotalDemandTime CPU = %g", demand[units.CPU])
	}
	empty := &Trace{}
	if m := empty.MeanRequest(); m[units.CPU] != 0 {
		t.Error("empty trace mean should be zero")
	}
}

func TestTraceHistogram(t *testing.T) {
	tr := &Trace{VMs: []VM{
		{Req: units.Vec(1, 4, 128)},
		{Req: units.Vec(1, 8, 128)},
		{Req: units.Vec(2, 4, 128)},
	}}
	h := tr.Histogram(units.CPU)
	want := []ValueCount{{1, 2}, {2, 1}}
	if len(h) != len(want) || h[0] != want[0] || h[1] != want[1] {
		t.Errorf("CPU histogram = %v, want %v", h, want)
	}
	hr := tr.Histogram(units.RAM)
	if len(hr) != 2 || hr[0] != (ValueCount{4, 2}) || hr[1] != (ValueCount{8, 1}) {
		t.Errorf("RAM histogram = %v", hr)
	}
}

func TestDefaultSyntheticConfigMatchesPaper(t *testing.T) {
	c := DefaultSyntheticConfig()
	if c.N != 2500 || c.MeanInterarrival != 10 || c.CPUMax != 32 ||
		c.RAMMax != 32 || c.StorageGB != 128 ||
		c.LifetimeBase != 6300 || c.LifetimeStep != 360 || c.SetSize != 100 {
		t.Errorf("DefaultSyntheticConfig = %+v does not match §5.1", c)
	}
}

func TestSyntheticGeneration(t *testing.T) {
	tr, err := Synthetic(DefaultSyntheticConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if tr.Len() != 2500 {
		t.Fatalf("N = %d", tr.Len())
	}
	for _, v := range tr.VMs {
		if v.Req[units.CPU] < 1 || v.Req[units.CPU] > 32 {
			t.Fatalf("VM %d CPU out of range: %d", v.ID, v.Req[units.CPU])
		}
		if v.Req[units.RAM] < 1 || v.Req[units.RAM] > 32 {
			t.Fatalf("VM %d RAM out of range: %d", v.ID, v.Req[units.RAM])
		}
		if v.Req[units.Storage] != 128 {
			t.Fatalf("VM %d storage = %d, want 128", v.ID, v.Req[units.Storage])
		}
	}
	// Lifetime schedule: VM 0..99 → 6300, VM 100..199 → 6660, VM 2400+ → 6300+24*360.
	if tr.VMs[0].Lifetime != 6300 || tr.VMs[99].Lifetime != 6300 {
		t.Error("first set lifetime wrong")
	}
	if tr.VMs[100].Lifetime != 6660 {
		t.Errorf("second set lifetime = %d", tr.VMs[100].Lifetime)
	}
	if tr.VMs[2499].Lifetime != 6300+24*360 {
		t.Errorf("last set lifetime = %d", tr.VMs[2499].Lifetime)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, _ := Synthetic(DefaultSyntheticConfig())
	b, _ := Synthetic(DefaultSyntheticConfig())
	if len(a.VMs) != len(b.VMs) {
		t.Fatal("lengths differ")
	}
	for i := range a.VMs {
		if a.VMs[i] != b.VMs[i] {
			t.Fatalf("VM %d differs between identical seeds", i)
		}
	}
	c2 := DefaultSyntheticConfig()
	c2.Seed = 2
	c, _ := Synthetic(c2)
	same := true
	for i := range a.VMs {
		if a.VMs[i].Req != c.VMs[i].Req {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestSyntheticMeanInterarrival(t *testing.T) {
	tr, _ := Synthetic(DefaultSyntheticConfig())
	last := tr.VMs[tr.Len()-1].Arrival
	mean := float64(last) / float64(tr.Len())
	if mean < 8 || mean > 12 {
		t.Errorf("empirical mean interarrival = %g, want ≈10", mean)
	}
}

func TestSyntheticUniformMeans(t *testing.T) {
	tr, _ := Synthetic(DefaultSyntheticConfig())
	m := tr.MeanRequest()
	// Uniform 1..32 has mean 16.5; 2500 samples → s.e. ≈ 0.18.
	if math.Abs(m[units.CPU]-16.5) > 1 {
		t.Errorf("CPU mean = %g, want ≈16.5", m[units.CPU])
	}
	if math.Abs(m[units.RAM]-16.5) > 1 {
		t.Errorf("RAM mean = %g, want ≈16.5", m[units.RAM])
	}
}

func TestSyntheticConfigValidation(t *testing.T) {
	mutations := []func(*SyntheticConfig){
		func(c *SyntheticConfig) { c.N = 0 },
		func(c *SyntheticConfig) { c.MeanInterarrival = 0 },
		func(c *SyntheticConfig) { c.CPUMin = 0 },
		func(c *SyntheticConfig) { c.CPUMax = c.CPUMin - 1 },
		func(c *SyntheticConfig) { c.RAMMin = -1 },
		func(c *SyntheticConfig) { c.StorageGB = 0 },
		func(c *SyntheticConfig) { c.LifetimeBase = 0 },
		func(c *SyntheticConfig) { c.LifetimeStep = -1 },
		func(c *SyntheticConfig) { c.SetSize = 0 },
	}
	for i, m := range mutations {
		c := DefaultSyntheticConfig()
		m(&c)
		if _, err := Synthetic(c); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestAzureSubsetString(t *testing.T) {
	if Azure3000.String() != "Azure-3000" || Azure7500.String() != "Azure-7500" {
		t.Error("subset names wrong")
	}
	if AzureSubset(9).String() == "" {
		t.Error("unknown subset should render")
	}
	if len(Subsets()) != 3 {
		t.Error("3 subsets expected")
	}
}

func TestAzureSpecsSumExactly(t *testing.T) {
	for _, s := range Subsets() {
		spec, err := Spec(s)
		if err != nil {
			t.Fatal(err)
		}
		var cpuSum, ramSum int
		for _, b := range spec.CPU {
			cpuSum += b.Count
		}
		for _, b := range spec.RAM {
			ramSum += b.Count
		}
		if cpuSum != spec.N || ramSum != spec.N {
			t.Errorf("%v: CPU Σ=%d RAM Σ=%d, want %d", s, cpuSum, ramSum, spec.N)
		}
	}
	if _, err := Spec(AzureSubset(42)); err == nil {
		t.Error("unknown subset should fail")
	}
}

// The generated traces must reproduce the paper's Figure 6 histograms
// exactly — this IS the Figure 6 reproduction check.
func TestAzureLikeMatchesFigure6(t *testing.T) {
	for _, s := range Subsets() {
		spec, _ := Spec(s)
		tr, err := AzureLike(AzureConfig{Subset: s, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: invalid trace: %v", s, err)
		}
		if tr.Len() != spec.N {
			t.Fatalf("%v: N = %d, want %d", s, tr.Len(), spec.N)
		}
		gotCPU := tr.Histogram(units.CPU)
		if len(gotCPU) != len(spec.CPU) {
			t.Fatalf("%v: CPU histogram has %d bars, want %d", s, len(gotCPU), len(spec.CPU))
		}
		for i, b := range spec.CPU {
			if gotCPU[i] != b {
				t.Errorf("%v: CPU bar %d = %+v, want %+v", s, i, gotCPU[i], b)
			}
		}
		gotRAM := tr.Histogram(units.RAM)
		for i, b := range spec.RAM {
			if gotRAM[i] != b {
				t.Errorf("%v: RAM bar %d = %+v, want %+v", s, i, gotRAM[i], b)
			}
		}
		for _, v := range tr.VMs {
			if v.Req[units.Storage] != 128 {
				t.Fatalf("%v: VM %d storage = %d, want 128", s, v.ID, v.Req[units.Storage])
			}
		}
	}
}

func TestAzureLikeSeedIndependentHistograms(t *testing.T) {
	a, _ := AzureLike(AzureConfig{Subset: Azure3000, Seed: 1})
	b, _ := AzureLike(AzureConfig{Subset: Azure3000, Seed: 99})
	ha, hb := a.Histogram(units.CPU), b.Histogram(units.CPU)
	for i := range ha {
		if ha[i] != hb[i] {
			t.Error("histograms must be identical across seeds")
		}
	}
	// But the zip order should differ.
	same := true
	for i := range a.VMs {
		if a.VMs[i].Req != b.VMs[i].Req {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should permute requests differently")
	}
}

func TestAzureLikeDefaults(t *testing.T) {
	tr, err := AzureLike(AzureConfig{Subset: Azure3000})
	if err != nil {
		t.Fatal(err)
	}
	// Default interarrival 10 → last arrival around 30000.
	last := float64(tr.VMs[tr.Len()-1].Arrival)
	if last < 20000 || last > 40000 {
		t.Errorf("last arrival = %g, want ≈30000", last)
	}
	// Default lifetime mean 18000 ± sampling noise.
	var sum float64
	for _, v := range tr.VMs {
		sum += float64(v.Lifetime)
	}
	mean := sum / float64(tr.Len())
	if mean < 17000 || mean > 19000 {
		t.Errorf("mean lifetime = %g, want ≈18000", mean)
	}
}

func TestAzureLikeRejectsNegatives(t *testing.T) {
	if _, err := AzureLike(AzureConfig{Subset: Azure3000, MeanInterarrival: -1}); err == nil {
		t.Error("negative interarrival should fail")
	}
	if _, err := AzureLike(AzureConfig{Subset: Azure3000, LifetimeMean: -1}); err == nil {
		t.Error("negative lifetime should fail")
	}
	if _, err := AzureLike(AzureConfig{Subset: Azure3000, StorageGB: -1}); err == nil {
		t.Error("negative storage should fail")
	}
	if _, err := AzureLike(AzureConfig{Subset: AzureSubset(9)}); err == nil {
		t.Error("unknown subset should fail")
	}
}

// Property: every Azure-like trace is valid and arrival-ordered for any
// seed.
func TestAzureLikeAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr, err := AzureLike(AzureConfig{Subset: Azure3000, Seed: seed})
		return err == nil && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestArrivalModelString(t *testing.T) {
	if Poisson.String() != "poisson" || Uniform.String() != "uniform" || Bursty.String() != "bursty" {
		t.Error("model names wrong")
	}
	if ArrivalModel(9).String() == "" {
		t.Error("unknown model should render")
	}
}

func TestUniformArrivals(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Arrivals = Uniform
	tr, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Name != "synthetic-uniform" {
		t.Errorf("name = %q", tr.Name)
	}
	// Same overall rate: mean gap ≈ 10.
	mean := float64(tr.VMs[tr.Len()-1].Arrival) / float64(tr.Len())
	if mean < 8 || mean > 12 {
		t.Errorf("uniform mean gap = %g, want ≈10", mean)
	}
	// Uniform gaps are bounded by 2×mean.
	for i := 1; i < tr.Len(); i++ {
		if gap := tr.VMs[i].Arrival - tr.VMs[i-1].Arrival; gap > 20 {
			t.Fatalf("gap %d exceeds the uniform bound", gap)
		}
	}
}

func TestBurstyArrivalsAlternate(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Arrivals = Bursty
	tr, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Count arrivals in on vs off phases (period 2000): the on phases
	// must receive far more.
	var on, off int
	for _, v := range tr.VMs {
		if (v.Arrival/2000)%2 == 0 {
			on++
		} else {
			off++
		}
	}
	if on < 4*off {
		t.Errorf("bursty arrivals not bursty: on=%d off=%d", on, off)
	}
}

func TestBurstyCustomParameters(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Arrivals = Bursty
	cfg.BurstFactor = 10
	cfg.BurstPeriod = 500
	tr, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestArrivalModelValidation(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Arrivals = ArrivalModel(9)
	if _, err := Synthetic(cfg); err == nil {
		t.Error("unknown arrival model should fail")
	}
	cfg = DefaultSyntheticConfig()
	cfg.BurstFactor = -1
	if _, err := Synthetic(cfg); err == nil {
		t.Error("negative burst factor should fail")
	}
}
