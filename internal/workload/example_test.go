package workload_test

import (
	"fmt"

	"risa/internal/units"
	"risa/internal/workload"
)

func ExampleSynthetic() {
	cfg := workload.DefaultSyntheticConfig()
	tr, err := workload.Synthetic(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.Len(), "VMs")
	fmt.Println("first lifetime:", tr.VMs[0].Lifetime)
	fmt.Println("storage per VM:", tr.VMs[0].Req[units.Storage], "GB")
	// Output:
	// 2500 VMs
	// first lifetime: 6300
	// storage per VM: 128 GB
}

func ExampleAzureLike() {
	tr, err := workload.AzureLike(workload.AzureConfig{Subset: workload.Azure3000, Seed: 1})
	if err != nil {
		panic(err)
	}
	// The CPU histogram matches the paper's Figure 6 exactly, whatever
	// the seed.
	for _, bar := range tr.Histogram(units.CPU) {
		fmt.Printf("%d cores: %d VMs\n", bar.Value, bar.Count)
	}
	// Output:
	// 1 cores: 1326 VMs
	// 2 cores: 1269 VMs
	// 4 cores: 316 VMs
	// 8 cores: 89 VMs
}
