// Package workload defines VM requests and the two workload families of
// the RISA paper's evaluation: the synthetic random workload of §5.1 and
// the Azure-like practical workloads of §5.2.
//
// The real 2017 Azure trace is not redistributable; per DESIGN.md §4 the
// Azure-like generator reproduces the paper's own Figure 6 per-subset
// CPU/RAM histograms exactly (the marginals are sampled without
// replacement, so the generated counts match the figure to the VM).
//
// Both families also exist in open-ended form: Stream is a pull-based
// arrival iterator, with the finite Trace adapted by NewTraceStream and
// unbounded generators (SyntheticConfig.NewStream, NewAzureEmpirical)
// optionally rate-steered toward a target cluster occupancy by a
// UtilizationController — the engine behind the steady-state churn
// experiments (DESIGN.md §8).
package workload

import (
	"fmt"
	"sort"

	"risa/internal/units"
)

// NumTiers is the number of priority tiers a VM can carry: tier 0 is the
// highest priority (Protean's "high-priority / never evict" class), tier
// NumTiers-1 the lowest (spot-like, first to be preempted).
const NumTiers = 3

// VM is one virtual-machine request: a compute vector plus its arrival
// time and lifetime in simulation time units.
type VM struct {
	ID       int
	Arrival  int64 // time units since simulation start
	Lifetime int64 // time units the VM stays resident once scheduled
	Req      units.Vector

	// Tier is the VM's priority tier in [0, NumTiers): lower is more
	// important. The zero value (tier 0, the default for every workload
	// that predates tiers) is the highest priority, so untiered runs
	// behave exactly as before — nothing ever preempts tier 0.
	Tier int
}

// Departure returns the time the VM releases its resources.
func (v VM) Departure() int64 { return v.Arrival + v.Lifetime }

// Validate checks a single request for physical sanity.
func (v VM) Validate() error {
	if v.Arrival < 0 {
		return fmt.Errorf("workload: VM %d has negative arrival %d", v.ID, v.Arrival)
	}
	if v.Lifetime <= 0 {
		return fmt.Errorf("workload: VM %d has non-positive lifetime %d", v.ID, v.Lifetime)
	}
	if !v.Req.NonNegative() {
		return fmt.Errorf("workload: VM %d has negative request %v", v.ID, v.Req)
	}
	if v.Req.IsZero() {
		return fmt.Errorf("workload: VM %d requests nothing", v.ID)
	}
	if v.Tier < 0 || v.Tier >= NumTiers {
		return fmt.Errorf("workload: VM %d tier %d outside [0,%d)", v.ID, v.Tier, NumTiers)
	}
	return nil
}

// Trace is an arrival-ordered sequence of VM requests.
type Trace struct {
	Name string
	VMs  []VM
}

// Validate checks every VM and that arrivals are non-decreasing.
func (t *Trace) Validate() error {
	for i, v := range t.VMs {
		if err := v.Validate(); err != nil {
			return err
		}
		if i > 0 && v.Arrival < t.VMs[i-1].Arrival {
			return fmt.Errorf("workload: trace %q not arrival-ordered at index %d", t.Name, i)
		}
	}
	return nil
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.VMs) }

// Makespan returns the latest departure time in the trace, i.e. the time
// by which every VM has left even if all were scheduled.
func (t *Trace) Makespan() int64 {
	var m int64
	for _, v := range t.VMs {
		if d := v.Departure(); d > m {
			m = d
		}
	}
	return m
}

// MeanRequest returns the arithmetic mean request vector (floating point,
// per resource).
func (t *Trace) MeanRequest() [units.NumResources]float64 {
	var sum units.Vector
	for _, v := range t.VMs {
		sum = sum.Add(v.Req)
	}
	var mean [units.NumResources]float64
	if len(t.VMs) == 0 {
		return mean
	}
	for r := range sum {
		mean[r] = float64(sum[r]) / float64(len(t.VMs))
	}
	return mean
}

// ValueCount is one bar of a request-size histogram: how many VMs ask for
// exactly Value of some resource.
type ValueCount struct {
	Value units.Amount
	Count int
}

// Histogram tallies the exact request sizes of one resource across the
// trace, sorted by value. This regenerates the paper's Figure 6.
func (t *Trace) Histogram(r units.Resource) []ValueCount {
	counts := make(map[units.Amount]int)
	for _, v := range t.VMs {
		counts[v.Req[r]]++
	}
	out := make([]ValueCount, 0, len(counts))
	for val, n := range counts {
		out = append(out, ValueCount{Value: val, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// TotalDemandTime returns Σ lifetime·request per resource — the VM-time
// integral used to compute time-averaged utilization upper bounds.
func (t *Trace) TotalDemandTime() [units.NumResources]float64 {
	var out [units.NumResources]float64
	for _, v := range t.VMs {
		for r := range v.Req {
			out[r] += float64(v.Req[r]) * float64(v.Lifetime)
		}
	}
	return out
}
