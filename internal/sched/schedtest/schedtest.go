// Package schedtest is a reusable conformance suite for sched.Scheduler
// implementations: every algorithm in the repository (and any future one)
// must satisfy the same behavioral contract — failed schedules leave the
// datacenter untouched, releases restore exactly what was taken,
// scheduling is deterministic, and resource accounting is conserved under
// churn. The baseline and core packages each run this suite over their
// schedulers.
package schedtest

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"risa/internal/core"
	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/sim"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// Factory builds a scheduler bound to the given state.
type Factory func(st *sched.State) sched.Scheduler

// Conformance runs the full contract suite against the factory.
func Conformance(t *testing.T, name string, mk Factory) {
	t.Run(name+"/ScheduleRelease", func(t *testing.T) { scheduleRelease(t, mk) })
	t.Run(name+"/FailureLeavesState", func(t *testing.T) { failureLeavesState(t, mk) })
	t.Run(name+"/Deterministic", func(t *testing.T) { deterministic(t, mk) })
	t.Run(name+"/ChurnConservation", func(t *testing.T) { churnConservation(t, mk) })
	t.Run(name+"/RespectsBoxFailure", func(t *testing.T) { respectsBoxFailure(t, mk) })
	t.Run(name+"/InterleavedHygiene", func(t *testing.T) { interleavedHygiene(t, mk) })
	t.Run(name+"/FailedBoxNeverPlaced", func(t *testing.T) { failedBoxNeverPlaced(t, mk) })
	t.Run(name+"/HealedBoxReusable", func(t *testing.T) { healedBoxReusable(t, mk) })
	t.Run(name+"/FaultInterleavedHygiene", func(t *testing.T) { faultInterleavedHygiene(t, mk) })
	t.Run(name+"/SnapshotHygiene", func(t *testing.T) { snapshotHygiene(t, mk) })
	t.Run(name+"/TierOrderRespected", func(t *testing.T) { tierOrderRespected(t, mk) })
	t.Run(name+"/PreemptionNeverLeaks", func(t *testing.T) { preemptionNeverLeaks(t, mk) })
	t.Run(name+"/PreemptionHygiene", func(t *testing.T) { preemptionHygiene(t, mk) })
}

func newState(t *testing.T) *sched.State {
	t.Helper()
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func snapshot(st *sched.State) [5]int64 {
	return [5]int64{
		int64(st.Cluster.TotalFree(units.CPU)),
		int64(st.Cluster.TotalFree(units.RAM)),
		int64(st.Cluster.TotalFree(units.Storage)),
		int64(st.Fabric.IntraRackFree()),
		int64(st.Fabric.InterRackFree()),
	}
}

func checkAll(t *testing.T, st *sched.State) {
	t.Helper()
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Fatalf("cluster invariants: %v", err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Fatalf("fabric invariants: %v", err)
	}
}

// scheduleRelease: a successful schedule consumes resources; releasing it
// restores the exact prior state.
func scheduleRelease(t *testing.T, mk Factory) {
	st := newState(t)
	s := mk(st)
	before := snapshot(st)
	a, err := s.Schedule(workload.VM{ID: 1, Lifetime: 10, Req: units.Vec(8, 16, 128)})
	if err != nil {
		t.Fatalf("fresh cluster must accept a typical VM: %v", err)
	}
	if snapshot(st) == before {
		t.Fatal("schedule consumed nothing")
	}
	s.Release(a)
	if snapshot(st) != before {
		t.Fatal("release did not restore the prior state")
	}
	checkAll(t, st)
}

// failureLeavesState: an impossible request must not change anything.
func failureLeavesState(t *testing.T, mk Factory) {
	st := newState(t)
	s := mk(st)
	before := snapshot(st)
	if _, err := s.Schedule(workload.VM{ID: 1, Lifetime: 10, Req: units.Vec(1<<40, 16, 128)}); err == nil {
		t.Fatal("impossible request must fail")
	}
	if snapshot(st) != before {
		t.Fatal("failed schedule disturbed the state")
	}
	checkAll(t, st)
}

// deterministic: two fresh schedulers on identical states produce
// identical placements for an identical request stream.
func deterministic(t *testing.T, mk Factory) {
	place := func() []string {
		st := newState(t)
		s := mk(st)
		rng := rand.New(rand.NewSource(42))
		var out []string
		for i := 0; i < 200; i++ {
			vm := workload.VM{ID: i, Lifetime: 10, Req: units.Vec(
				units.Amount(rng.Int63n(32)+1),
				units.Amount(rng.Int63n(32)+1),
				128)}
			a, err := s.Schedule(vm)
			if err != nil {
				out = append(out, "drop")
				continue
			}
			out = append(out, a.CPU.Box.String()+a.RAM.Box.String()+a.STO.Box.String())
		}
		return out
	}
	a, b := place(), place()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement %d differs between identical runs: %s vs %s", i, a[i], b[i])
		}
	}
}

// churnConservation: random schedule/release interleavings preserve all
// invariants, and releasing everything restores the pristine state.
func churnConservation(t *testing.T, mk Factory) {
	st := newState(t)
	s := mk(st)
	before := snapshot(st)
	rng := rand.New(rand.NewSource(7))
	var live []*sched.Assignment
	for step := 0; step < 600; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			s.Release(live[i])
			live = append(live[:i], live[i+1:]...)
		} else {
			vm := workload.VM{ID: step, Lifetime: 10, Req: units.Vec(
				units.Amount(rng.Int63n(32)+1),
				units.Amount(rng.Int63n(64)+1),
				128)}
			if a, err := s.Schedule(vm); err == nil {
				live = append(live, a)
			}
		}
	}
	checkAll(t, st)
	for _, a := range live {
		s.Release(a)
	}
	if snapshot(st) != before {
		t.Fatal("full release did not restore the pristine state")
	}
	checkAll(t, st)
}

// interleavedHygiene: two scheduler instances driven decision-by-decision
// in alternation on independent datacenters must behave exactly like two
// isolated runs. This is the property test behind the scratch-buffer and
// pool reuse discipline (DESIGN.md §9): every instance owns its Scratch
// and every State its pools, so nothing an instance buffers between
// decisions may leak into — or depend on — another instance's timing. A
// leak (say, a shared mask buffer or a placement record recycled across
// states) shows up as a placement diverging from the isolated reference.
func interleavedHygiene(t *testing.T, mk Factory) {
	type run struct {
		s    sched.Scheduler
		st   *sched.State
		rng  *rand.Rand
		live []*sched.Assignment
		sig  []string
	}
	newRun := func(seed int64) *run {
		st := newState(t)
		return &run{s: mk(st), st: st, rng: rand.New(rand.NewSource(seed))}
	}
	// step performs one scripted decision: a release of a random live VM
	// one time in three, a schedule otherwise, appending a signature of
	// what happened. The script depends only on the run's own seed.
	step := func(r *run, i int) {
		if len(r.live) > 0 && r.rng.Intn(3) == 0 {
			j := r.rng.Intn(len(r.live))
			r.s.Release(r.live[j])
			r.live = append(r.live[:j], r.live[j+1:]...)
			r.sig = append(r.sig, "release")
			return
		}
		vm := workload.VM{ID: i, Lifetime: 10, Req: units.Vec(
			units.Amount(r.rng.Int63n(32)+1),
			units.Amount(r.rng.Int63n(64)+1),
			128)}
		a, err := r.s.Schedule(vm)
		if err != nil {
			r.sig = append(r.sig, "drop")
			return
		}
		r.live = append(r.live, a)
		r.sig = append(r.sig, fmt.Sprint(a.CPU.Box, a.RAM.Box, a.STO.Box))
	}
	const steps = 400
	// Isolated references: each script runs start to finish on its own.
	ref1, ref2 := newRun(11), newRun(22)
	for i := 0; i < steps; i++ {
		step(ref1, i)
	}
	for i := 0; i < steps; i++ {
		step(ref2, i)
	}
	// Interleaved: the same two scripts, alternating one decision at a
	// time, so every decision of one instance runs against the other's
	// freshly used buffers.
	il1, il2 := newRun(11), newRun(22)
	for i := 0; i < steps; i++ {
		step(il1, i)
		step(il2, i)
	}
	for i := 0; i < steps; i++ {
		if il1.sig[i] != ref1.sig[i] {
			t.Fatalf("run 1 step %d: interleaved %q != isolated %q", i, il1.sig[i], ref1.sig[i])
		}
		if il2.sig[i] != ref2.sig[i] {
			t.Fatalf("run 2 step %d: interleaved %q != isolated %q", i, il2.sig[i], ref2.sig[i])
		}
	}
	checkAll(t, il1.st)
	checkAll(t, il2.st)
}

// failedBoxNeverPlaced: under a churn of random failures and repairs, no
// scheduler ever places a component onto a box that is failed at
// decision time — including boxes it used moments earlier, whose warm
// cursors and cached candidates are the adversarial case ("mid-decision"
// state: whatever an algorithm buffered across decisions must not leak a
// now-failed box into a placement).
func failedBoxNeverPlaced(t *testing.T, mk Factory) {
	st := newState(t)
	before := snapshot(st)
	s := mk(st)
	rng := rand.New(rand.NewSource(13))
	boxes := st.Cluster.Boxes()
	var live []*sched.Assignment
	for step := 0; step < 800; step++ {
		switch rng.Intn(8) {
		case 0: // fail a random box
			st.Cluster.SetBoxFailed(boxes[rng.Intn(len(boxes))], true)
		case 1: // heal a random box
			st.Cluster.SetBoxFailed(boxes[rng.Intn(len(boxes))], false)
		case 2: // release a random live VM (failed boxes included)
			if len(live) > 0 {
				i := rng.Intn(len(live))
				s.Release(live[i])
				live = append(live[:i], live[i+1:]...)
			}
		default:
			vm := workload.VM{ID: step, Lifetime: 10, Req: units.Vec(
				units.Amount(rng.Int63n(32)+1),
				units.Amount(rng.Int63n(64)+1),
				128)}
			a, err := s.Schedule(vm)
			if err != nil {
				continue
			}
			for _, p := range []topology.Placement{a.CPU, a.RAM, a.STO} {
				if !p.IsZero() && p.Box.Failed() {
					t.Fatalf("step %d: VM %d placed onto failed %v", step, vm.ID, p.Box)
				}
			}
			live = append(live, a)
			// Adversarial: sometimes kill the box the scheduler just
			// used, so its freshest cursor points at failed hardware.
			if rng.Intn(4) == 0 {
				st.Cluster.SetBoxFailed(a.CPU.Box, true)
			}
		}
		if step%97 == 0 {
			checkAll(t, st)
		}
	}
	for _, a := range live {
		s.Release(a)
	}
	for _, b := range boxes {
		st.Cluster.SetBoxFailed(b, false)
	}
	if snapshot(st) != before {
		t.Fatal("release + repair did not restore the pristine state")
	}
	checkAll(t, st)
}

// healedBoxReusable: a repaired box is indistinguishable from one that
// never failed. A state that lived through an outage — placements made
// before the failure and released into it, churn routed around the hole,
// everything released, then repaired — must serve a fresh arrival
// sequence bit-identically to a never-failed state: capacity, index
// tiers and fabric fully restored.
func healedBoxReusable(t *testing.T, mk Factory) {
	signature := func(exercise bool) []string {
		st := newState(t)
		if exercise {
			s := mk(st)
			rng := rand.New(rand.NewSource(99))
			place := func(n int) []*sched.Assignment {
				var live []*sched.Assignment
				for i := 0; i < n; i++ {
					vm := workload.VM{ID: i, Lifetime: 10, Req: units.Vec(
						units.Amount(rng.Int63n(32)+1),
						units.Amount(rng.Int63n(64)+1),
						128)}
					if a, err := s.Schedule(vm); err == nil {
						live = append(live, a)
					}
				}
				return live
			}
			preOutage := place(60)
			for _, ri := range []int{0, 1} {
				for _, b := range st.Cluster.Rack(ri).Boxes() {
					st.Cluster.SetBoxFailed(b, true)
				}
			}
			// Departures into the outage: the freed capacity stays hidden
			// until the repair.
			for _, a := range preOutage {
				s.Release(a)
			}
			// Churn around the hole, fully released again.
			for _, a := range place(40) {
				s.Release(a)
			}
			for _, ri := range []int{0, 1} {
				for _, b := range st.Cluster.Rack(ri).Boxes() {
					st.Cluster.SetBoxFailed(b, false)
				}
			}
		}
		// A fresh scheduler instance on the (healed or never-failed)
		// state: placements must not depend on the state's history.
		s := mk(st)
		rng := rand.New(rand.NewSource(7))
		var sig []string
		for i := 0; i < 150; i++ {
			vm := workload.VM{ID: 1000 + i, Lifetime: 10, Req: units.Vec(
				units.Amount(rng.Int63n(32)+1),
				units.Amount(rng.Int63n(64)+1),
				128)}
			a, err := s.Schedule(vm)
			if err != nil {
				sig = append(sig, "drop")
				continue
			}
			sig = append(sig, fmt.Sprint(a.CPU.Box, a.RAM.Box, a.STO.Box))
		}
		checkAll(t, st)
		return sig
	}
	healed, never := signature(true), signature(false)
	for i := range never {
		if healed[i] != never[i] {
			t.Fatalf("fresh arrival %d: healed state placed %q, never-failed %q", i, healed[i], never[i])
		}
	}
}

// faultInterleavedHygiene is InterleavedHygiene over the fault paths:
// the per-decision scripts also fail and heal boxes and displace VMs off
// failed hardware (core.Displace — the eviction transaction the
// simulator uses), and two instances alternating decision-by-decision
// must still match their isolated references exactly.
func faultInterleavedHygiene(t *testing.T, mk Factory) {
	type run struct {
		s    sched.Scheduler
		st   *sched.State
		rng  *rand.Rand
		live []*sched.Assignment
		sig  []string
	}
	newRun := func(seed int64) *run {
		st := newState(t)
		return &run{s: mk(st), st: st, rng: rand.New(rand.NewSource(seed))}
	}
	step := func(r *run, i int) {
		boxes := r.st.Cluster.Boxes()
		switch r.rng.Intn(8) {
		case 0:
			b := boxes[r.rng.Intn(len(boxes))]
			r.st.Cluster.SetBoxFailed(b, true)
			r.sig = append(r.sig, "fail "+b.String())
			return
		case 1:
			b := boxes[r.rng.Intn(len(boxes))]
			r.st.Cluster.SetBoxFailed(b, false)
			r.sig = append(r.sig, "heal "+b.String())
			return
		case 2: // displace the first live VM stranded on failed hardware
			for j, a := range r.live {
				if !a.OnFailedHardware() {
					continue
				}
				if core.Displace(r.st, r.s, a) {
					r.sig = append(r.sig, fmt.Sprint("displaced", a.CPU.Box, a.RAM.Box, a.STO.Box))
				} else {
					// Lost: the record is emptied; pool it and drop it
					// from the live set like the simulator does.
					r.st.ReleaseVM(a)
					r.live = append(r.live[:j], r.live[j+1:]...)
					r.sig = append(r.sig, "displace-lost")
				}
				return
			}
			r.sig = append(r.sig, "nothing-stranded")
			return
		case 3:
			if len(r.live) > 0 {
				j := r.rng.Intn(len(r.live))
				r.s.Release(r.live[j])
				r.live = append(r.live[:j], r.live[j+1:]...)
				r.sig = append(r.sig, "release")
				return
			}
			fallthrough
		default:
			vm := workload.VM{ID: i, Lifetime: 10, Req: units.Vec(
				units.Amount(r.rng.Int63n(32)+1),
				units.Amount(r.rng.Int63n(64)+1),
				128)}
			a, err := r.s.Schedule(vm)
			if err != nil {
				r.sig = append(r.sig, "drop")
				return
			}
			r.live = append(r.live, a)
			r.sig = append(r.sig, fmt.Sprint(a.CPU.Box, a.RAM.Box, a.STO.Box))
		}
	}
	const steps = 400
	ref1, ref2 := newRun(31), newRun(32)
	for i := 0; i < steps; i++ {
		step(ref1, i)
	}
	for i := 0; i < steps; i++ {
		step(ref2, i)
	}
	il1, il2 := newRun(31), newRun(32)
	for i := 0; i < steps; i++ {
		step(il1, i)
		step(il2, i)
	}
	for i := 0; i < steps; i++ {
		if il1.sig[i] != ref1.sig[i] {
			t.Fatalf("run 1 step %d: interleaved %q != isolated %q", i, il1.sig[i], ref1.sig[i])
		}
		if il2.sig[i] != ref2.sig[i] {
			t.Fatalf("run 2 step %d: interleaved %q != isolated %q", i, il2.sig[i], ref2.sig[i])
		}
	}
	checkAll(t, il1.st)
	checkAll(t, il2.st)
}

// snapshotHygiene extends the interleaved-hygiene family to the snapshot
// plane: interleaving sim.CaptureState (and restores into third
// instances) into the A/B decision script must not perturb either
// instance. Capture is read-only and restore targets a separate pristine
// state, so the scripted signatures must equal the isolated,
// never-snapshotted references exactly — and every restored twin must
// itself pass invariants and re-capture to an identical snapshot. The
// script is the fault-interleaved one (fail/heal/displace included), so
// captures also happen with failed hardware and stranded VMs in flight.
func snapshotHygiene(t *testing.T, mk Factory) {
	type run struct {
		s    sched.Scheduler
		st   *sched.State
		rng  *rand.Rand
		live []*sched.Assignment
		sig  []string
	}
	newRun := func(seed int64) *run {
		st := newState(t)
		return &run{s: mk(st), st: st, rng: rand.New(rand.NewSource(seed))}
	}
	step := func(r *run, i int) {
		boxes := r.st.Cluster.Boxes()
		switch r.rng.Intn(8) {
		case 0:
			b := boxes[r.rng.Intn(len(boxes))]
			r.st.Cluster.SetBoxFailed(b, true)
			r.sig = append(r.sig, "fail "+b.String())
			return
		case 1:
			b := boxes[r.rng.Intn(len(boxes))]
			r.st.Cluster.SetBoxFailed(b, false)
			r.sig = append(r.sig, "heal "+b.String())
			return
		case 2:
			for j, a := range r.live {
				if !a.OnFailedHardware() {
					continue
				}
				if core.Displace(r.st, r.s, a) {
					r.sig = append(r.sig, fmt.Sprint("displaced", a.CPU.Box, a.RAM.Box, a.STO.Box))
				} else {
					r.st.ReleaseVM(a)
					r.live = append(r.live[:j], r.live[j+1:]...)
					r.sig = append(r.sig, "displace-lost")
				}
				return
			}
			r.sig = append(r.sig, "nothing-stranded")
			return
		case 3:
			if len(r.live) > 0 {
				j := r.rng.Intn(len(r.live))
				r.s.Release(r.live[j])
				r.live = append(r.live[:j], r.live[j+1:]...)
				r.sig = append(r.sig, "release")
				return
			}
			fallthrough
		default:
			vm := workload.VM{ID: i, Lifetime: 10, Req: units.Vec(
				units.Amount(r.rng.Int63n(32)+1),
				units.Amount(r.rng.Int63n(64)+1),
				128)}
			a, err := r.s.Schedule(vm)
			if err != nil {
				r.sig = append(r.sig, "drop")
				return
			}
			r.live = append(r.live, a)
			r.sig = append(r.sig, fmt.Sprint(a.CPU.Box, a.RAM.Box, a.STO.Box))
		}
	}
	// snapshotAndRestore captures the run's state, restores it into a
	// fresh third instance and cross-checks the roundtrip. Everything it
	// does must be invisible to the run itself.
	snapshotAndRestore := func(r *run, i int) {
		snap, err := sim.CaptureState(r.st, r.s, r.live)
		if err != nil {
			t.Fatalf("step %d: capture: %v", i, err)
		}
		st2 := newState(t)
		s2 := mk(st2)
		live2, err := sim.RestoreState(st2, s2, snap)
		if err != nil {
			t.Fatalf("step %d: restore: %v", i, err)
		}
		checkAll(t, st2)
		snap2, err := sim.CaptureState(st2, s2, live2)
		if err != nil {
			t.Fatalf("step %d: re-capture: %v", i, err)
		}
		if !reflect.DeepEqual(snap, snap2) {
			t.Fatalf("step %d: restored state re-captures differently", i)
		}
	}
	const steps = 400
	ref1, ref2 := newRun(41), newRun(42)
	for i := 0; i < steps; i++ {
		step(ref1, i)
	}
	for i := 0; i < steps; i++ {
		step(ref2, i)
	}
	il1, il2 := newRun(41), newRun(42)
	for i := 0; i < steps; i++ {
		step(il1, i)
		step(il2, i)
		if i%50 == 25 {
			snapshotAndRestore(il1, i)
			snapshotAndRestore(il2, i)
		}
	}
	for i := 0; i < steps; i++ {
		if il1.sig[i] != ref1.sig[i] {
			t.Fatalf("run 1 step %d: snapshot-interleaved %q != isolated %q", i, il1.sig[i], ref1.sig[i])
		}
		if il2.sig[i] != ref2.sig[i] {
			t.Fatalf("run 2 step %d: snapshot-interleaved %q != isolated %q", i, il2.sig[i], ref2.sig[i])
		}
	}
	checkAll(t, il1.st)
	checkAll(t, il2.st)
}

// respectsBoxFailure: no scheduler may place anything on a failed box.
func respectsBoxFailure(t *testing.T, mk Factory) {
	st := newState(t)
	s := mk(st)
	// Fail all of rack 0 and rack 1.
	for _, ri := range []int{0, 1} {
		for _, b := range st.Cluster.Rack(ri).Boxes() {
			st.Cluster.SetBoxFailed(b, true)
		}
	}
	for i := 0; i < 50; i++ {
		a, err := s.Schedule(workload.VM{ID: i, Lifetime: 10, Req: units.Vec(8, 16, 128)})
		if err != nil {
			continue
		}
		for _, p := range []topology.Placement{a.CPU, a.RAM, a.STO} {
			if p.Box.Rack() < 2 {
				t.Fatalf("VM %d placed on failed rack %d", i, p.Box.Rack())
			}
		}
	}
	checkAll(t, st)
}
