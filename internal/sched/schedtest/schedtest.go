// Package schedtest is a reusable conformance suite for sched.Scheduler
// implementations: every algorithm in the repository (and any future one)
// must satisfy the same behavioral contract — failed schedules leave the
// datacenter untouched, releases restore exactly what was taken,
// scheduling is deterministic, and resource accounting is conserved under
// churn. The baseline and core packages each run this suite over their
// schedulers.
package schedtest

import (
	"fmt"
	"math/rand"
	"testing"

	"risa/internal/network"
	"risa/internal/sched"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// Factory builds a scheduler bound to the given state.
type Factory func(st *sched.State) sched.Scheduler

// Conformance runs the full contract suite against the factory.
func Conformance(t *testing.T, name string, mk Factory) {
	t.Run(name+"/ScheduleRelease", func(t *testing.T) { scheduleRelease(t, mk) })
	t.Run(name+"/FailureLeavesState", func(t *testing.T) { failureLeavesState(t, mk) })
	t.Run(name+"/Deterministic", func(t *testing.T) { deterministic(t, mk) })
	t.Run(name+"/ChurnConservation", func(t *testing.T) { churnConservation(t, mk) })
	t.Run(name+"/RespectsBoxFailure", func(t *testing.T) { respectsBoxFailure(t, mk) })
	t.Run(name+"/InterleavedHygiene", func(t *testing.T) { interleavedHygiene(t, mk) })
}

func newState(t *testing.T) *sched.State {
	t.Helper()
	st, err := sched.NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func snapshot(st *sched.State) [5]int64 {
	return [5]int64{
		int64(st.Cluster.TotalFree(units.CPU)),
		int64(st.Cluster.TotalFree(units.RAM)),
		int64(st.Cluster.TotalFree(units.Storage)),
		int64(st.Fabric.IntraRackFree()),
		int64(st.Fabric.InterRackFree()),
	}
}

func checkAll(t *testing.T, st *sched.State) {
	t.Helper()
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Fatalf("cluster invariants: %v", err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Fatalf("fabric invariants: %v", err)
	}
}

// scheduleRelease: a successful schedule consumes resources; releasing it
// restores the exact prior state.
func scheduleRelease(t *testing.T, mk Factory) {
	st := newState(t)
	s := mk(st)
	before := snapshot(st)
	a, err := s.Schedule(workload.VM{ID: 1, Lifetime: 10, Req: units.Vec(8, 16, 128)})
	if err != nil {
		t.Fatalf("fresh cluster must accept a typical VM: %v", err)
	}
	if snapshot(st) == before {
		t.Fatal("schedule consumed nothing")
	}
	s.Release(a)
	if snapshot(st) != before {
		t.Fatal("release did not restore the prior state")
	}
	checkAll(t, st)
}

// failureLeavesState: an impossible request must not change anything.
func failureLeavesState(t *testing.T, mk Factory) {
	st := newState(t)
	s := mk(st)
	before := snapshot(st)
	if _, err := s.Schedule(workload.VM{ID: 1, Lifetime: 10, Req: units.Vec(1<<40, 16, 128)}); err == nil {
		t.Fatal("impossible request must fail")
	}
	if snapshot(st) != before {
		t.Fatal("failed schedule disturbed the state")
	}
	checkAll(t, st)
}

// deterministic: two fresh schedulers on identical states produce
// identical placements for an identical request stream.
func deterministic(t *testing.T, mk Factory) {
	place := func() []string {
		st := newState(t)
		s := mk(st)
		rng := rand.New(rand.NewSource(42))
		var out []string
		for i := 0; i < 200; i++ {
			vm := workload.VM{ID: i, Lifetime: 10, Req: units.Vec(
				units.Amount(rng.Int63n(32)+1),
				units.Amount(rng.Int63n(32)+1),
				128)}
			a, err := s.Schedule(vm)
			if err != nil {
				out = append(out, "drop")
				continue
			}
			out = append(out, a.CPU.Box.String()+a.RAM.Box.String()+a.STO.Box.String())
		}
		return out
	}
	a, b := place(), place()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement %d differs between identical runs: %s vs %s", i, a[i], b[i])
		}
	}
}

// churnConservation: random schedule/release interleavings preserve all
// invariants, and releasing everything restores the pristine state.
func churnConservation(t *testing.T, mk Factory) {
	st := newState(t)
	s := mk(st)
	before := snapshot(st)
	rng := rand.New(rand.NewSource(7))
	var live []*sched.Assignment
	for step := 0; step < 600; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			s.Release(live[i])
			live = append(live[:i], live[i+1:]...)
		} else {
			vm := workload.VM{ID: step, Lifetime: 10, Req: units.Vec(
				units.Amount(rng.Int63n(32)+1),
				units.Amount(rng.Int63n(64)+1),
				128)}
			if a, err := s.Schedule(vm); err == nil {
				live = append(live, a)
			}
		}
	}
	checkAll(t, st)
	for _, a := range live {
		s.Release(a)
	}
	if snapshot(st) != before {
		t.Fatal("full release did not restore the pristine state")
	}
	checkAll(t, st)
}

// interleavedHygiene: two scheduler instances driven decision-by-decision
// in alternation on independent datacenters must behave exactly like two
// isolated runs. This is the property test behind the scratch-buffer and
// pool reuse discipline (DESIGN.md §9): every instance owns its Scratch
// and every State its pools, so nothing an instance buffers between
// decisions may leak into — or depend on — another instance's timing. A
// leak (say, a shared mask buffer or a placement record recycled across
// states) shows up as a placement diverging from the isolated reference.
func interleavedHygiene(t *testing.T, mk Factory) {
	type run struct {
		s    sched.Scheduler
		st   *sched.State
		rng  *rand.Rand
		live []*sched.Assignment
		sig  []string
	}
	newRun := func(seed int64) *run {
		st := newState(t)
		return &run{s: mk(st), st: st, rng: rand.New(rand.NewSource(seed))}
	}
	// step performs one scripted decision: a release of a random live VM
	// one time in three, a schedule otherwise, appending a signature of
	// what happened. The script depends only on the run's own seed.
	step := func(r *run, i int) {
		if len(r.live) > 0 && r.rng.Intn(3) == 0 {
			j := r.rng.Intn(len(r.live))
			r.s.Release(r.live[j])
			r.live = append(r.live[:j], r.live[j+1:]...)
			r.sig = append(r.sig, "release")
			return
		}
		vm := workload.VM{ID: i, Lifetime: 10, Req: units.Vec(
			units.Amount(r.rng.Int63n(32)+1),
			units.Amount(r.rng.Int63n(64)+1),
			128)}
		a, err := r.s.Schedule(vm)
		if err != nil {
			r.sig = append(r.sig, "drop")
			return
		}
		r.live = append(r.live, a)
		r.sig = append(r.sig, fmt.Sprint(a.CPU.Box, a.RAM.Box, a.STO.Box))
	}
	const steps = 400
	// Isolated references: each script runs start to finish on its own.
	ref1, ref2 := newRun(11), newRun(22)
	for i := 0; i < steps; i++ {
		step(ref1, i)
	}
	for i := 0; i < steps; i++ {
		step(ref2, i)
	}
	// Interleaved: the same two scripts, alternating one decision at a
	// time, so every decision of one instance runs against the other's
	// freshly used buffers.
	il1, il2 := newRun(11), newRun(22)
	for i := 0; i < steps; i++ {
		step(il1, i)
		step(il2, i)
	}
	for i := 0; i < steps; i++ {
		if il1.sig[i] != ref1.sig[i] {
			t.Fatalf("run 1 step %d: interleaved %q != isolated %q", i, il1.sig[i], ref1.sig[i])
		}
		if il2.sig[i] != ref2.sig[i] {
			t.Fatalf("run 2 step %d: interleaved %q != isolated %q", i, il2.sig[i], ref2.sig[i])
		}
	}
	checkAll(t, il1.st)
	checkAll(t, il2.st)
}

// respectsBoxFailure: no scheduler may place anything on a failed box.
func respectsBoxFailure(t *testing.T, mk Factory) {
	st := newState(t)
	s := mk(st)
	// Fail all of rack 0 and rack 1.
	for _, ri := range []int{0, 1} {
		for _, b := range st.Cluster.Rack(ri).Boxes() {
			st.Cluster.SetBoxFailed(b, true)
		}
	}
	for i := 0; i < 50; i++ {
		a, err := s.Schedule(workload.VM{ID: i, Lifetime: 10, Req: units.Vec(8, 16, 128)})
		if err != nil {
			continue
		}
		for _, p := range []topology.Placement{a.CPU, a.RAM, a.STO} {
			if p.Box.Rack() < 2 {
				t.Fatalf("VM %d placed on failed rack %d", i, p.Box.Rack())
			}
		}
	}
	checkAll(t, st)
}
