package schedtest

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"risa/internal/core"
	"risa/internal/sched"
	"risa/internal/units"
	"risa/internal/workload"
)

// This file holds the preemption leg of the conformance suite. The
// contract under test is core.Preempt over sched.PreemptScratch: a
// higher-priority arrival that failed to place may displace a minimal,
// cheapest-first set of strictly-lower-tier victims; a failed attempt
// must restore every victim bit-for-bit; and the pooled records flowing
// through the transaction must balance exactly.

// preemptAttempt runs one preemption attempt for vm over the whole live
// set, mirroring what the simulator does after a successful preempt:
// victims leave the live set and their cleared records go back to the
// pool. It returns the arrival's assignment (nil when preemption
// refused), the victims' VM identities in post-sort (cheapest-first)
// order, and the updated live set.
func preemptAttempt(st *sched.State, s sched.Scheduler, scr *sched.Scratch,
	vm workload.VM, live []*sched.Assignment) (*sched.Assignment, []workload.VM, []*sched.Assignment) {
	ps := scr.Preemption()
	ps.Reset()
	for j, a := range live {
		ps.Add(a, j)
	}
	a, k := core.Preempt(st, s, ps, vm)
	if a == nil {
		return nil, nil, live
	}
	victims := make([]workload.VM, 0, k)
	idxs := make([]int, 0, k)
	for v := 0; v < k; v++ {
		victims = append(victims, ps.Victim(v).VM)
		idxs = append(idxs, ps.Ref(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(idxs)))
	for _, j := range idxs {
		st.ReleaseVM(live[j])
		live = append(live[:j], live[j+1:]...)
	}
	return a, victims, append(live, a)
}

// tierOrderRespected: preemption only ever displaces strictly-lower-tier
// victims, chooses them as the cheapest-first prefix of the eligible set
// (cost = summed request, ties by VM id — checked against an independent
// oracle), refuses entirely for an arrival of the lowest tier, and a
// refused attempt leaves the datacenter untouched.
func tierOrderRespected(t *testing.T, mk Factory) {
	st := newState(t)
	s := mk(st)
	pristine := snapshot(st)
	rng := rand.New(rand.NewSource(51))
	var live []*sched.Assignment
	var scr sched.Scratch

	// Saturate the cluster with tier-1 and tier-2 VMs.
	id := 0
	for drops := 0; drops < 20; id++ {
		vm := workload.VM{ID: id, Lifetime: 10, Tier: 1 + rng.Intn(2), Req: units.Vec(
			units.Amount(rng.Int63n(32)+1),
			units.Amount(rng.Int63n(64)+1),
			128)}
		if a, err := s.Schedule(vm); err == nil {
			live = append(live, a)
		} else {
			drops++
		}
	}

	// failingVM draws arrivals of the given tier until one fails to
	// place; successes stay live so the cluster remains saturated.
	failingVM := func(tier int) workload.VM {
		for {
			id++
			vm := workload.VM{ID: id, Lifetime: 10, Tier: tier, Req: units.Vec(
				units.Amount(rng.Int63n(32)+1),
				units.Amount(rng.Int63n(64)+1),
				128)}
			a, err := s.Schedule(vm)
			if err != nil {
				return vm
			}
			live = append(live, a)
		}
	}

	// oracle computes the eligible victim list for an arrival tier the
	// way the contract promises to order it: strictly lower tiers only,
	// cheapest summed request first, VM id breaking ties.
	oracle := func(tier int) []workload.VM {
		type cand struct {
			vm   workload.VM
			cost int64
		}
		var elig []cand
		for _, a := range live {
			if a.VM.Tier <= tier {
				continue
			}
			var cost int64
			for _, amt := range a.VM.Req {
				cost += int64(amt)
			}
			elig = append(elig, cand{a.VM, cost})
		}
		sort.Slice(elig, func(i, j int) bool {
			if elig[i].cost != elig[j].cost {
				return elig[i].cost < elig[j].cost
			}
			return elig[i].vm.ID < elig[j].vm.ID
		})
		out := make([]workload.VM, len(elig))
		for i, c := range elig {
			out[i] = c.vm
		}
		return out
	}

	// A lowest-tier arrival has nobody strictly below it: preemption must
	// refuse and disturb nothing.
	lowest := failingVM(workload.NumTiers - 1)
	before := snapshot(st)
	if a, _, _ := preemptAttempt(st, s, &scr, lowest, live); a != nil {
		t.Fatalf("tier-%d arrival preempted someone; no strictly lower tier exists", lowest.Tier)
	}
	if snapshot(st) != before {
		t.Fatal("refused preemption disturbed the state")
	}

	// Higher-tier arrivals: several rounds each of tier 1 (may only evict
	// tier 2) and tier 0 (may evict tiers 1 and 2), every victim set
	// checked against the oracle prefix.
	for round := 0; round < 6; round++ {
		tier := round % 2 // alternate tier 1, tier 0
		vm := failingVM(tier)
		want := oracle(vm.Tier)
		a, victims, nl := preemptAttempt(st, s, &scr, vm, live)
		live = nl
		if a == nil {
			continue // genuinely unplaceable even with every victim gone
		}
		t.Logf("round %d: tier-%d preempted %d victims", round, vm.Tier, len(victims))
		if len(victims) == 0 || len(victims) > len(want) {
			t.Fatalf("round %d: %d victims for %d eligible", round, len(victims), len(want))
		}
		for i, v := range victims {
			if v.Tier <= vm.Tier {
				t.Fatalf("round %d: tier-%d arrival evicted tier-%d VM %d", round, vm.Tier, v.Tier, v.ID)
			}
			if v.ID != want[i].ID {
				t.Fatalf("round %d: victim %d is VM %d, oracle says cheapest-first prefix has VM %d",
					round, i, v.ID, want[i].ID)
			}
		}
		checkAll(t, st)
	}

	for _, a := range live {
		s.Release(a)
	}
	if snapshot(st) != pristine {
		t.Fatal("full release did not restore the pristine state")
	}
	checkAll(t, st)
}

// preemptionNeverLeaks: the preemption transaction balances its pooled
// assignment records exactly. A scripted tiered churn — schedules,
// releases, successful preemptions (victim shells pooled like the
// simulator does) and impossible arrivals that force the full
// hold-release-restore walk over every victim — runs twice on the same
// State with a fresh scheduler each pass. The second, identical pass must
// be served entirely from the records pooled by the first: if any path
// lost a record (or handed one back twice), State.AllocatedAssignments
// grows and the test fails.
func preemptionNeverLeaks(t *testing.T, mk Factory) {
	st := newState(t)
	pristine := snapshot(st)
	var scr sched.Scratch
	pass := func() {
		s := mk(st)
		rng := rand.New(rand.NewSource(77))
		var live []*sched.Assignment
		for i := 0; i < 500; i++ {
			if len(live) > 0 && rng.Intn(4) == 0 {
				j := rng.Intn(len(live))
				s.Release(live[j])
				live = append(live[:j], live[j+1:]...)
				continue
			}
			vm := workload.VM{ID: i, Lifetime: 10, Tier: rng.Intn(workload.NumTiers), Req: units.Vec(
				units.Amount(rng.Int63n(32)+1),
				units.Amount(rng.Int63n(64)+1),
				128)}
			if rng.Intn(40) == 0 {
				// Impossible arrival: Preempt releases every eligible
				// victim one by one, still fails, and must restore them
				// all bit-for-bit in reverse.
				vm.Req = units.Vec(1<<40, 16, 128)
			}
			a, err := s.Schedule(vm)
			if err == nil {
				live = append(live, a)
				continue
			}
			_, _, live = preemptAttempt(st, s, &scr, vm, live)
			if i%101 == 0 {
				checkAll(t, st)
			}
		}
		checkAll(t, st)
		for _, a := range live {
			s.Release(a)
		}
		if snapshot(st) != pristine {
			t.Fatal("full release did not restore the pristine state")
		}
	}
	pass()
	allocated := st.AllocatedAssignments()
	pass()
	if got := st.AllocatedAssignments(); got != allocated {
		t.Fatalf("second identical pass allocated fresh records: %d -> %d (a preemption path leaked assignment records instead of pooling them)", allocated, got)
	}
}

// preemptionHygiene is InterleavedHygiene over the preemption path: two
// instances alternate tiered decisions — schedule, release, and
// preempt-on-failure — and must match their isolated references exactly,
// victim sets included. This is what makes PreemptScratch safe to pool
// per driver: nothing a preemption attempt buffers (candidate lists,
// victim holds, sorter state) may leak into or depend on another
// instance's timing.
func preemptionHygiene(t *testing.T, mk Factory) {
	type run struct {
		s    sched.Scheduler
		st   *sched.State
		rng  *rand.Rand
		live []*sched.Assignment
		scr  sched.Scratch
		sig  []string
	}
	newRun := func(seed int64) *run {
		st := newState(t)
		return &run{s: mk(st), st: st, rng: rand.New(rand.NewSource(seed))}
	}
	step := func(r *run, i int) {
		if len(r.live) > 0 && r.rng.Intn(4) == 0 {
			j := r.rng.Intn(len(r.live))
			r.s.Release(r.live[j])
			r.live = append(r.live[:j], r.live[j+1:]...)
			r.sig = append(r.sig, "release")
			return
		}
		vm := workload.VM{ID: i, Lifetime: 10, Tier: r.rng.Intn(workload.NumTiers), Req: units.Vec(
			units.Amount(r.rng.Int63n(32)+1),
			units.Amount(r.rng.Int63n(64)+1),
			128)}
		a, err := r.s.Schedule(vm)
		if err == nil {
			r.live = append(r.live, a)
			r.sig = append(r.sig, fmt.Sprint("t", vm.Tier, a.CPU.Box, a.RAM.Box, a.STO.Box))
			return
		}
		a, victims, nl := preemptAttempt(r.st, r.s, &r.scr, vm, r.live)
		r.live = nl
		if a == nil {
			r.sig = append(r.sig, "preempt-fail")
			return
		}
		ids := ""
		for _, v := range victims {
			ids += fmt.Sprint(" v", v.ID)
		}
		r.sig = append(r.sig, fmt.Sprint("preempt t", vm.Tier, a.CPU.Box, a.RAM.Box, a.STO.Box, ids))
	}
	const steps = 500
	ref1, ref2 := newRun(61), newRun(62)
	for i := 0; i < steps; i++ {
		step(ref1, i)
	}
	for i := 0; i < steps; i++ {
		step(ref2, i)
	}
	il1, il2 := newRun(61), newRun(62)
	for i := 0; i < steps; i++ {
		step(il1, i)
		step(il2, i)
	}
	for i := 0; i < steps; i++ {
		if il1.sig[i] != ref1.sig[i] {
			t.Fatalf("run 1 step %d: interleaved %q != isolated %q", i, il1.sig[i], ref1.sig[i])
		}
		if il2.sig[i] != ref2.sig[i] {
			t.Fatalf("run 2 step %d: interleaved %q != isolated %q", i, il2.sig[i], ref2.sig[i])
		}
	}
	checkAll(t, il1.st)
	checkAll(t, il2.st)
}
