package sched

import (
	"fmt"
	"sort"
)

// Options carries per-instance construction knobs for registered
// scheduler factories. It is empty today — every algorithm's paper
// variant is registered under its own name (RISA-BF is a separate entry,
// not a RISA option) — and exists so New's signature can grow knobs
// without touching every call site. The zero Options is always valid.
type Options struct{}

// Factory constructs one scheduler instance bound to st. Factories are
// registered once per algorithm name via Register.
type Factory func(st *State, opts Options) Scheduler

var registry = map[string]Factory{}

// Register records a factory under the algorithm's paper name. It is
// called from the implementing packages' init functions — core registers
// RISA and RISA-BF, baseline registers NULB and NALB — so importing a
// package makes its algorithms constructible through New. Registering a
// name twice panics: two algorithms must not share a name.
func Register(name string, f Factory) {
	if f == nil {
		panic("sched: nil factory registered for " + name)
	}
	if _, dup := registry[name]; dup {
		panic("sched: duplicate scheduler registration: " + name)
	}
	registry[name] = f
}

// New constructs a registered scheduler bound to st. It is the single
// construction path for algorithms chosen by name — experiments, the
// CLI and the concurrent agent pool all go through it — replacing the
// switch-on-name construction that used to be scattered across callers.
func New(name string, st *State, opts Options) (Scheduler, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (registered: %v)", name, Registered())
	}
	return f(st, opts), nil
}

// Registered returns the registered algorithm names in sorted order.
func Registered() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
