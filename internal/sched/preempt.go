package sched

import (
	"fmt"
	"sort"

	"risa/internal/network"
	"risa/internal/topology"
	"risa/internal/units"
)

// PreemptScratch is the pooled victim-selection workspace of the
// preemption transaction (core.Preempt). One preemption attempt gathers
// candidate victims, filters and cost-sorts them, then releases a growing
// prefix while recording each victim's exact holdings so a failed attempt
// can restore every victim bit-for-bit. All of that state lives here in
// reusable buffers, so the preempt decision path — like Schedule itself —
// touches no allocator once the buffers reach their high-water size
// (BenchmarkScheduleOnePreempt pins this at 0 allocs/op).
//
// A PreemptScratch follows the Scratch ownership rules: it belongs to one
// driver (the simulator's stream loop), is valid only between Reset and
// the end of the attempt, and is not safe for concurrent use.
type PreemptScratch struct {
	cands []*Assignment
	refs  []int
	costs []int64
	holds []victimHold

	sorter victimSorter
}

// victimHold is the exact holdings of one released victim: enough to
// re-carve its placements (RestorePlacement) and flows (RestoreFlow)
// should the preemption attempt fail. Buffers are pooled per slot.
type victimHold struct {
	boxes  [units.NumResources]*topology.Box
	shares [units.NumResources][]topology.BrickShare
	flows  [2]flowHold
}

// flowHold records one optical flow's reservation for exact replay.
type flowHold struct {
	present   bool
	bw        units.Bandwidth
	interRack bool
	interPod  bool
	refs      []network.LinkRef
}

// Reset empties the scratch for a new preemption attempt, keeping every
// buffer's capacity.
func (p *PreemptScratch) Reset() {
	for i := range p.cands {
		p.cands[i] = nil
	}
	p.cands = p.cands[:0]
	p.refs = p.refs[:0]
	p.costs = p.costs[:0]
	p.holds = p.holds[:0]
}

// Add registers one candidate victim. ref is an opaque caller-side index
// (the simulator passes the victim's event-heap slot) handed back via Ref
// for the consumed prefix after a successful preemption.
func (p *PreemptScratch) Add(a *Assignment, ref int) {
	var cost int64
	for _, amt := range a.VM.Req {
		cost += int64(amt)
	}
	p.cands = append(p.cands, a)
	p.refs = append(p.refs, ref)
	p.costs = append(p.costs, cost)
	if n := len(p.cands); n <= cap(p.holds) {
		p.holds = p.holds[:n] // reuse the slot's pooled buffers
	} else {
		p.holds = append(p.holds, victimHold{})
	}
}

// Len returns the current number of candidates.
func (p *PreemptScratch) Len() int { return len(p.cands) }

// Victim returns candidate i (in post-sort order).
func (p *PreemptScratch) Victim(i int) *Assignment { return p.cands[i] }

// Ref returns the caller-side ref of candidate i (in post-sort order).
func (p *PreemptScratch) Ref(i int) int { return p.refs[i] }

// FilterEligible drops every candidate an arrival of the given tier may
// not preempt: victims of an equal or higher priority (tier <= the
// arrival's — tier 0 is highest, so only strictly larger tier numbers are
// preemptible), victims on failed hardware, and victims with a flow over
// a failed link. The tier rule is the TierOrderRespected conformance
// property enforced at the transaction itself, not just at call sites;
// the hardware rules are restore safety — RestorePlacement/RestoreFlow
// reject failed boxes and links, and a victim on failed hardware frees no
// usable capacity anyway (its holdings are pending eviction, not supply).
func (p *PreemptScratch) FilterEligible(tier int) {
	w := 0
	for i, a := range p.cands {
		if a.VM.Tier <= tier || a.OnFailedHardware() ||
			flowOnFailedLink(a.CPURAMFlow) || flowOnFailedLink(a.RAMSTOFlow) {
			continue
		}
		p.cands[w], p.refs[w], p.costs[w] = a, p.refs[i], p.costs[i]
		w++
	}
	for i := w; i < len(p.cands); i++ {
		p.cands[i] = nil
	}
	p.cands = p.cands[:w]
	p.refs = p.refs[:w]
	p.costs = p.costs[:w]
	p.holds = p.holds[:w]
}

// SortByCost orders candidates cheapest-first by freed capacity (the sum
// of the victim's request vector), ties broken by VM id ascending — a
// total order, so victim selection is deterministic.
func (p *PreemptScratch) SortByCost() {
	p.sorter.s = p
	sort.Sort(&p.sorter)
	p.sorter.s = nil
}

// HoldAndRelease captures candidate i's exact holdings into its pooled
// hold slot and releases them via ReleaseVMKeep: the capacity joins the
// free pool for the preemptor's next placement attempt while the cleared
// record stays with its owner (the simulator's departure event), ready
// for either Restore or final release.
func (p *PreemptScratch) HoldAndRelease(st *State, i int) {
	a := p.cands[i]
	h := &p.holds[i]
	for _, r := range units.Resources() {
		pl := placementOf(a, r)
		h.boxes[r] = pl.Box
		h.shares[r] = append(h.shares[r][:0], pl.Shares...)
	}
	holdFlow(st, &h.flows[0], a.CPURAMFlow)
	holdFlow(st, &h.flows[1], a.RAMSTOFlow)
	st.ReleaseVMKeep(a)
}

// Restore re-carves candidate i's held placements and flows back into its
// kept record, exactly as they were before HoldAndRelease. Between the
// release and this call nothing else may mutate the state (the preemption
// transaction runs inside one simulator event), so the freed capacity is
// still free and replay cannot fail; an error here is a program bug and
// panics.
func (p *PreemptScratch) Restore(st *State, i int) {
	a := p.cands[i]
	h := &p.holds[i]
	for _, r := range units.Resources() {
		if h.boxes[r] == nil {
			continue
		}
		pl, err := st.Cluster.RestorePlacement(h.boxes[r], h.shares[r])
		if err != nil {
			panic(fmt.Sprintf("sched: preempt restore: %v", err))
		}
		dst := placementOf(a, r)
		dst.Box, dst.Total = pl.Box, pl.Total
		dst.Shares = append(dst.Shares[:0], pl.Shares...)
	}
	a.CPURAMFlow = restoreFlow(st, &h.flows[0])
	a.RAMSTOFlow = restoreFlow(st, &h.flows[1])
}

// placementOf maps a resource to its placement field on the assignment.
func placementOf(a *Assignment, r units.Resource) *topology.Placement {
	switch r {
	case units.CPU:
		return &a.CPU
	case units.RAM:
		return &a.RAM
	default:
		return &a.STO
	}
}

// holdFlow records one flow's reservation (bandwidth, link path, span
// flags) into a pooled flowHold.
func holdFlow(st *State, h *flowHold, fl *network.Flow) {
	h.refs = h.refs[:0]
	h.present = fl != nil
	if fl == nil {
		return
	}
	h.bw = fl.BW()
	h.interRack, h.interPod = fl.InterRack(), fl.InterPod()
	for _, l := range fl.Links() {
		h.refs = append(h.refs, st.Fabric.Ref(l))
	}
}

// restoreFlow replays one held flow reservation; see Restore on why
// failure panics.
func restoreFlow(st *State, h *flowHold) *network.Flow {
	if !h.present {
		return nil
	}
	fl, err := st.Fabric.RestoreFlow(h.bw, h.refs, h.interRack, h.interPod)
	if err != nil {
		panic(fmt.Sprintf("sched: preempt restore: %v", err))
	}
	return fl
}

// flowOnFailedLink reports whether any link carrying the flow is failed.
func flowOnFailedLink(fl *network.Flow) bool {
	if fl == nil {
		return false
	}
	for _, l := range fl.Links() {
		if l.Failed() {
			return true
		}
	}
	return false
}

// victimSorter is the reusable sort.Interface view SortByCost sorts
// through, keeping cands/refs/costs parallel.
type victimSorter struct {
	s *PreemptScratch
}

// Len implements sort.Interface.
func (v *victimSorter) Len() int { return len(v.s.cands) }

// Less implements sort.Interface: ascending cost, then VM id.
func (v *victimSorter) Less(i, j int) bool {
	if v.s.costs[i] != v.s.costs[j] {
		return v.s.costs[i] < v.s.costs[j]
	}
	return v.s.cands[i].VM.ID < v.s.cands[j].VM.ID
}

// Swap implements sort.Interface.
func (v *victimSorter) Swap(i, j int) {
	s := v.s
	s.cands[i], s.cands[j] = s.cands[j], s.cands[i]
	s.refs[i], s.refs[j] = s.refs[j], s.refs[i]
	s.costs[i], s.costs[j] = s.costs[j], s.costs[i]
}
