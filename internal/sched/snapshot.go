package sched

import (
	"risa/internal/network"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// SchedulerState is the serializable semantic state of a scheduler: the
// round-robin rack cursor and the per-rack, per-resource next-fit box
// cursors that persist across decisions. Purely diagnostic counters
// (decision statistics) are deliberately excluded — they never influence
// a placement. Stateless schedulers have a zero SchedulerState.
type SchedulerState struct {
	Cursor     int
	BoxCursors [][units.NumResources]int
}

// StatefulScheduler is implemented by schedulers whose decisions depend
// on state carried across Schedule calls. Snapshot capture records that
// state and restore replays it, so a restored scheduler makes exactly
// the decisions the original would have made next.
type StatefulScheduler interface {
	// SchedulerState captures the decision-relevant carried state.
	SchedulerState() SchedulerState
	// RestoreSchedulerState replays previously captured state.
	RestoreSchedulerState(st SchedulerState)
}

// CursorState returns a copy of the scratch's persistent next-fit
// cursors, for snapshot capture.
func (s *Scratch) CursorState() [][units.NumResources]int {
	if len(s.cursors) == 0 {
		return nil
	}
	out := make([][units.NumResources]int, len(s.cursors))
	copy(out, s.cursors)
	return out
}

// RestoreCursorState replaces the scratch's persistent next-fit cursors
// with a captured copy.
func (s *Scratch) RestoreCursorState(cur [][units.NumResources]int) {
	s.cursors = s.cursors[:0]
	s.cursors = append(s.cursors, cur...)
}

// RestoreAssignment binds already-restored placements and flows to a
// pooled assignment record, completing the snapshot replay of one live
// VM. The placements must have been re-carved via
// Cluster.RestorePlacement and the flows via Fabric.RestoreFlow, so the
// planes already account for them; this call only rebuilds the record
// that ties them together.
func (s *State) RestoreAssignment(vm workload.VM, cpu, ram, sto topology.Placement, cpuram, ramsto *network.Flow) *Assignment {
	a := s.getAssignment(vm)
	a.CPU, a.RAM, a.STO = cpu, ram, sto
	a.CPURAMFlow, a.RAMSTOFlow = cpuram, ramsto
	return a
}
