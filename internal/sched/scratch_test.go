package sched

import (
	"testing"

	"risa/internal/network"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

func testState(t *testing.T) *State {
	t.Helper()
	st, err := NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testTriple(st *State) BoxTriple {
	rack := st.Cluster.Rack(0)
	return BoxTriple{
		units.CPU:     rack.BoxesOf(units.CPU)[0],
		units.RAM:     rack.BoxesOf(units.RAM)[0],
		units.Storage: rack.BoxesOf(units.Storage)[0],
	}
}

func TestScratchMaskClearedAndSized(t *testing.T) {
	var s Scratch
	m := s.Mask(units.CPU, 4)
	if len(m) != 4 {
		t.Fatalf("mask len = %d, want 4", len(m))
	}
	m[1], m[3] = true, true
	// Re-requesting must clear previous contents and keep independence
	// between resources.
	other := s.Mask(units.RAM, 4)
	for i, v := range other {
		if v {
			t.Fatalf("RAM mask slot %d dirty", i)
		}
	}
	if !m[1] || !m[3] {
		t.Fatal("requesting another resource's mask disturbed the first")
	}
	m2 := s.Mask(units.CPU, 3)
	for i, v := range m2 {
		if v {
			t.Fatalf("reused mask slot %d not cleared", i)
		}
	}
}

func TestScratchMaskReusesBacking(t *testing.T) {
	var s Scratch
	m := s.Mask(units.CPU, 64)
	m2 := s.Mask(units.CPU, 32)
	if &m[0] != &m2[0] {
		t.Fatal("smaller mask request must reuse the grown backing array")
	}
	if avg := testing.AllocsPerRun(100, func() { s.Mask(units.CPU, 64) }); avg != 0 {
		t.Fatalf("mask reuse allocates %.2f times per call, want 0", avg)
	}
}

func TestScratchCursorsDenseAndPersistent(t *testing.T) {
	var s Scratch
	c5 := s.Cursors(5)
	c5[units.RAM] = 7
	if got := s.Cursors(5)[units.RAM]; got != 7 {
		t.Fatalf("cursor not persistent: %d", got)
	}
	if got := s.Cursors(2)[units.RAM]; got != 0 {
		t.Fatalf("untouched cursor = %d, want 0", got)
	}
	if avg := testing.AllocsPerRun(100, func() { s.Cursors(5) }); avg != 0 {
		t.Fatalf("cursor lookup allocates %.2f times per call, want 0", avg)
	}
}

func TestScratchSortBoxesByKeyDescStable(t *testing.T) {
	st := testState(t)
	var s Scratch
	boxes := s.Boxes()
	keys := s.Keys()
	// Three boxes with keys 1, 3, 1: descending stable order is the
	// 3-key box first, then the two 1-key boxes in input order.
	all := st.Cluster.Rack(0).Boxes()
	boxes = append(boxes, all[0], all[1], all[2])
	keys = append(keys, 1, 3, 1)
	s.SetBoxes(boxes)
	s.SetKeys(keys)
	s.SortBoxesByKeyDesc(boxes, keys)
	if boxes[0] != all[1] || boxes[1] != all[0] || boxes[2] != all[2] {
		t.Fatalf("sorted order wrong: %v %v %v", boxes[0], boxes[1], boxes[2])
	}
	if keys[0] != 3 || keys[1] != 1 || keys[2] != 1 {
		t.Fatalf("keys not permuted with boxes: %v", keys)
	}
}

// TestAssignmentPoolRecycles pins the pooling contract: a released
// assignment record is handed back by the next AllocateVM, with its
// brick-share buffers intact, and the steady-state round trip allocates
// nothing.
func TestAssignmentPoolRecycles(t *testing.T) {
	st := testState(t)
	vm := workload.VM{ID: 1, Lifetime: 1, Req: units.Vec(8, 16, 128)}
	a1, err := st.AllocateVM(vm, testTriple(st), network.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	st.ReleaseVM(a1)
	a2, err := st.AllocateVM(vm, testTriple(st), network.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1 {
		t.Fatal("second AllocateVM did not recycle the released record")
	}
	st.ReleaseVM(a2)
	if avg := testing.AllocsPerRun(200, func() {
		a, err := st.AllocateVM(vm, testTriple(st), network.FirstFit)
		if err != nil {
			t.Fatal(err)
		}
		st.ReleaseVM(a)
	}); avg != 0 {
		t.Fatalf("steady-state AllocateVM+ReleaseVM allocates %.2f times, want 0", avg)
	}
}

// TestAssignmentPoolFailedAllocateRecycles: a failed AllocateVM must roll
// back fully and still return its record to the pool.
func TestAssignmentPoolFailedAllocateRecycles(t *testing.T) {
	st := testState(t)
	free := st.Cluster.TotalFree(units.CPU)
	boxes := testTriple(st)
	// Request more CPU than one box holds: the placement fails.
	vm := workload.VM{ID: 1, Lifetime: 1, Req: units.Vec(1<<40, 16, 128)}
	if _, err := st.AllocateVM(vm, boxes, network.FirstFit); err == nil {
		t.Fatal("oversized request must fail")
	}
	if got := st.Cluster.TotalFree(units.CPU); got != free {
		t.Fatalf("failed allocate leaked CPU: %d != %d", got, free)
	}
	if len(st.freeAssignments) != 1 {
		t.Fatalf("failed allocate left %d pooled records, want 1", len(st.freeAssignments))
	}
}

// TestReleaseVMKeepAdoptProtocol covers the rebalance hand-off: a record
// released with ReleaseVMKeep stays with the caller, and Adopt moves a
// fresh assignment's contents into it while retiring the donor shell.
func TestReleaseVMKeepAdoptProtocol(t *testing.T) {
	st := testState(t)
	vm := workload.VM{ID: 1, Lifetime: 1, Req: units.Vec(8, 16, 128)}
	a, err := st.AllocateVM(vm, testTriple(st), network.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	st.ReleaseVMKeep(a)
	if len(st.freeAssignments) != 0 {
		t.Fatal("ReleaseVMKeep must not pool the record")
	}
	if !a.CPU.IsZero() || a.CPURAMFlow != nil {
		t.Fatal("ReleaseVMKeep must clear the record's holdings")
	}
	fresh, err := st.AllocateVM(vm, testTriple(st), network.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	st.Adopt(a, fresh)
	if a.CPU.IsZero() || a.CPURAMFlow == nil {
		t.Fatal("Adopt did not move the placement into the kept record")
	}
	if len(st.freeAssignments) != 1 {
		t.Fatal("Adopt must retire the donor shell to the pool")
	}
	donor := st.freeAssignments[0]
	if donor != fresh {
		t.Fatal("pooled shell is not the donor")
	}
	// The donor must not alias the adopted record's share buffers: a
	// later allocation through the pool would otherwise scribble over the
	// live placement.
	if donor.CPU.Shares != nil && len(a.CPU.Shares) > 0 &&
		cap(donor.CPU.Shares) > 0 {
		d := donor.CPU.Shares[:1]
		if &d[0] == &a.CPU.Shares[0] {
			t.Fatal("donor shell aliases the adopted record's shares")
		}
	}
	st.ReleaseVM(a)
}

// TestReleaseVMDoubleReleaseIsNoop: releasing the same record twice must
// not corrupt the pool (a double insertion would hand one record to two
// future VMs).
func TestReleaseVMDoubleReleaseIsNoop(t *testing.T) {
	st := testState(t)
	vm := workload.VM{ID: 1, Lifetime: 1, Req: units.Vec(8, 16, 128)}
	a, err := st.AllocateVM(vm, testTriple(st), network.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	st.ReleaseVM(a)
	st.ReleaseVM(a)
	if len(st.freeAssignments) != 1 {
		t.Fatalf("double release pooled the record %d times, want 1", len(st.freeAssignments))
	}
}
