// Optimistic propose/commit: the concurrency vocabulary the agent pool
// (sim's Concurrency.Agents) drives. N agents each hold a Proposer and
// compute single-rack placement claims in parallel against a settled,
// read-only view of the state; a coordinator then commits the claims
// serially in arrival order, validating each against the per-rack
// generation counters (topology.Rack.Gen, network.Fabric.RackGen). A
// claim whose rack moved since propose time loses with
// ErrProposalConflict and is redone serially. See DESIGN.md §12.
package sched

import (
	"errors"

	"risa/internal/network"
	"risa/internal/workload"
)

// ErrProposalConflict reports that a proposal failed its generation
// check at commit time: another commit (or a fault event) mutated the
// proposal's rack between propose and commit. Conflicts are an expected
// outcome of optimistic concurrency, not a fault — the loser's VM is
// re-placed serially, never dropped on account of the conflict.
var ErrProposalConflict = errors.New("sched: proposal conflict (rack state changed since propose)")

// RackClaim pins one rack's generation counters as observed at propose
// time; a commit is valid only while every claimed rack still carries
// the observed generations.
type RackClaim struct {
	// Rack is the rack index the claim covers.
	Rack int
	// CompGen is the rack's compute generation at propose time.
	CompGen uint64
	// NetGen is the rack's network generation at propose time.
	NetGen uint64
}

// Proposal is one agent's optimistic placement claim: a fully chosen
// placement plus the generations under which it was computed. Proposals
// are plain values — computing and committing them allocates nothing
// beyond what AllocateVM's pooled transaction does.
type Proposal struct {
	// VM is the request the proposal places.
	VM workload.VM
	// Boxes is the chosen box per resource (nil for zero-request
	// resources).
	Boxes BoxTriple
	// Policy picks links when the commit reserves the flows.
	Policy network.Policy
	// Claims pins every distinct rack the placement touches — a single
	// entry for an intra-rack claim, up to three when a fallback-tier
	// claim spans racks. Only the first NClaims entries are meaningful.
	Claims [3]RackClaim
	// NClaims is the number of valid entries in Claims.
	NClaims int
}

// Claim appends one rack's observed generations to the proposal's claim
// set; callers must not claim the same rack twice.
func (p *Proposal) Claim(rack int, compGen, netGen uint64) {
	p.Claims[p.NClaims] = RackClaim{Rack: rack, CompGen: compGen, NetGen: netGen}
	p.NClaims++
}

// Proposer is implemented by schedulers that can compute placement
// claims against a read-only view of the state — the contract an agent
// pool instance must satisfy. Propose must not mutate the Cluster or
// Fabric (per-instance scratch state such as cursors is fine), so that
// N agents may propose concurrently between commits.
type Proposer interface {
	Scheduler
	// Propose computes a single-rack placement claim for vm, preferring
	// the racks shard allows. ok is false when the scheduler found no
	// single-rack placement — the caller then schedules the VM serially
	// (see ConclusiveProposer for how much of that redo can be skipped).
	Propose(vm workload.VM, shard RackMask) (Proposal, bool)
}

// ConclusiveProposer is implemented by Proposers whose Propose checks
// EVERY placement tier read-only before giving up — the intra-rack walk
// spills over past the shard to every rack, and the fallback tier's
// choice is feasibility-checked too — so a false return certifies that
// no placement passed anywhere in the cluster at the settle point of
// the round. The agent loop exploits the certificate: between a round's
// settle and its commits, capacity and bandwidth only shrink (commits
// allocate; departures, repairs and injections all flush the round
// first), so nothing can have become feasible and the VM is dropped —
// or re-queued, with the retry queue on — without any serial redo.
// The certificate is deterministic but approximate in one corner: the
// read-only checks pin the boxes a round-start choice takes, while a
// serial re-walk after intervening commits could pick different boxes
// whose links still fit. Agent mode accepts that divergence the same
// way it accepts commit-order conflicts.
type ConclusiveProposer interface {
	Proposer
	// DropConclusive records a VM that a conclusive Propose failure
	// proved unplaceable — the scheduler-side bookkeeping for a drop
	// that needed no serial redo — and returns the error the drop
	// surfaces to the caller.
	DropConclusive(vm workload.VM) error
}

// CommitProposal validates a proposal's generation counters and, when
// they all still hold, performs the placement through the shared
// AllocateVM transaction. It returns ErrProposalConflict when any
// claimed generation moved since propose time. A commit may also fail
// with an allocation error even at unchanged generations — the
// proposal's flows are feasibility-checked hop-by-hop, not jointly, and
// a multi-rack claim's generations do not cover shared pod uplinks —
// and the caller treats that exactly like a conflict: redo serially.
// AllocateVM re-validates every resource it takes, so a stale claim can
// never corrupt state; the generation check only avoids doomed
// transactions.
func (s *State) CommitProposal(p Proposal) (*Assignment, error) {
	for _, c := range p.Claims[:p.NClaims] {
		if s.Cluster.RackGen(c.Rack) != c.CompGen || s.Fabric.RackGen(c.Rack) != c.NetGen {
			return nil, ErrProposalConflict
		}
	}
	return s.AllocateVM(p.VM, p.Boxes, p.Policy)
}
