package sched

import (
	"testing"

	"risa/internal/network"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

func newState(t testing.TB) *State {
	t.Helper()
	st, err := NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func vmReq(cpu, ram, sto units.Amount) workload.VM {
	return workload.VM{ID: 1, Lifetime: 100, Req: units.Vec(cpu, ram, sto)}
}

func TestNewStateRejectsBadConfigs(t *testing.T) {
	bad := topology.DefaultConfig()
	bad.Racks = 0
	if _, err := NewState(bad, network.DefaultConfig()); err == nil {
		t.Error("bad topology config should fail")
	}
	badNet := network.DefaultConfig()
	badNet.BoxUplinks = 0
	if _, err := NewState(topology.DefaultConfig(), badNet); err == nil {
		t.Error("bad network config should fail")
	}
}

func TestAllocateVMIntraRack(t *testing.T) {
	st := newState(t)
	rack := st.Cluster.Rack(0)
	boxes := BoxTriple{
		units.CPU:     rack.BoxesOf(units.CPU)[0],
		units.RAM:     rack.BoxesOf(units.RAM)[0],
		units.Storage: rack.BoxesOf(units.Storage)[0],
	}
	vm := vmReq(8, 16, 128)
	a, err := st.AllocateVM(vm, boxes, network.FirstFit)
	if err != nil {
		t.Fatalf("AllocateVM: %v", err)
	}
	if a.InterRack() {
		t.Error("same-rack assignment reported inter-rack")
	}
	if a.CPURAMLatency() != IntraRackCPURAMLatency {
		t.Errorf("latency = %v, want 110ns", a.CPURAMLatency())
	}
	if len(a.Flows()) != 2 {
		t.Errorf("flows = %d, want 2", len(a.Flows()))
	}
	// CPU-RAM flow: 16 GB = 4 RAM units → 20 Gb/s; RAM-STO: 2 units → 2.
	if a.CPURAMFlow.BW() != 20 {
		t.Errorf("CPU-RAM bw = %v, want 20", a.CPURAMFlow.BW())
	}
	if a.RAMSTOFlow.BW() != 2 {
		t.Errorf("RAM-STO bw = %v, want 2", a.RAMSTOFlow.BW())
	}
	// Compute landed.
	if a.CPU.Total != 8 || a.RAM.Total != 16 || a.STO.Total != 128 {
		t.Errorf("placements: %d/%d/%d", a.CPU.Total, a.RAM.Total, a.STO.Total)
	}
	st.ReleaseVM(a)
	if st.Cluster.TotalFree(units.CPU) != st.Cluster.TotalCapacity(units.CPU) {
		t.Error("release did not restore CPU")
	}
	if st.Fabric.IntraRackFree() != st.Fabric.IntraRackCapacity() {
		t.Error("release did not restore bandwidth")
	}
}

func TestAllocateVMInterRack(t *testing.T) {
	st := newState(t)
	boxes := BoxTriple{
		units.CPU:     st.Cluster.Rack(0).BoxesOf(units.CPU)[0],
		units.RAM:     st.Cluster.Rack(1).BoxesOf(units.RAM)[0],
		units.Storage: st.Cluster.Rack(1).BoxesOf(units.Storage)[0],
	}
	a, err := st.AllocateVM(vmReq(8, 16, 128), boxes, network.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if !a.InterRack() {
		t.Error("cross-rack assignment should be inter-rack")
	}
	if a.CPURAMLatency() != InterRackCPURAMLatency {
		t.Errorf("latency = %v, want 330ns", a.CPURAMLatency())
	}
	if !a.CPURAMFlow.InterRack() {
		t.Error("CPU-RAM flow should be inter-rack")
	}
	if a.RAMSTOFlow.InterRack() {
		t.Error("RAM-STO flow is rack-local here")
	}
	st.ReleaseVM(a)
}

func TestAllocateVMStorageOnlyInterRack(t *testing.T) {
	// CPU+RAM in rack 0, storage in rack 1: the VM is inter-rack even
	// though CPU-RAM latency is intra.
	st := newState(t)
	boxes := BoxTriple{
		units.CPU:     st.Cluster.Rack(0).BoxesOf(units.CPU)[0],
		units.RAM:     st.Cluster.Rack(0).BoxesOf(units.RAM)[0],
		units.Storage: st.Cluster.Rack(1).BoxesOf(units.Storage)[0],
	}
	a, err := st.AllocateVM(vmReq(8, 16, 128), boxes, network.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if !a.InterRack() {
		t.Error("assignment spans racks")
	}
	if a.CPURAMLatency() != IntraRackCPURAMLatency {
		t.Error("CPU-RAM latency should still be intra-rack")
	}
	st.ReleaseVM(a)
}

func TestAllocateVMZeroStorage(t *testing.T) {
	st := newState(t)
	rack := st.Cluster.Rack(0)
	boxes := BoxTriple{
		units.CPU: rack.BoxesOf(units.CPU)[0],
		units.RAM: rack.BoxesOf(units.RAM)[0],
	}
	a, err := st.AllocateVM(vmReq(8, 16, 0), boxes, network.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if !a.STO.IsZero() {
		t.Error("no storage requested, none should be placed")
	}
	if a.RAMSTOFlow != nil {
		t.Error("no RAM-STO flow expected")
	}
	if len(a.Flows()) != 1 {
		t.Errorf("flows = %d, want 1", len(a.Flows()))
	}
	st.ReleaseVM(a)
}

func TestAllocateVMCPUOnly(t *testing.T) {
	st := newState(t)
	boxes := BoxTriple{units.CPU: st.Cluster.Rack(0).BoxesOf(units.CPU)[0]}
	a, err := st.AllocateVM(vmReq(16, 0, 0), boxes, network.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPURAMFlow != nil || a.RAMSTOFlow != nil {
		t.Error("CPU-only VM needs no flows")
	}
	if a.InterRack() {
		t.Error("single placement cannot be inter-rack")
	}
	if a.CPURAMLatency() != IntraRackCPURAMLatency {
		t.Error("degenerate latency should be intra")
	}
	st.ReleaseVM(a)
}

func TestAllocateVMRollsBackOnComputeFailure(t *testing.T) {
	st := newState(t)
	rack := st.Cluster.Rack(0)
	ramBox := rack.BoxesOf(units.RAM)[0]
	// Fill the RAM box so the second placement step fails after CPU
	// succeeded.
	if _, err := st.Cluster.Allocate(ramBox, ramBox.Capacity()); err != nil {
		t.Fatal(err)
	}
	cpuFree := st.Cluster.TotalFree(units.CPU)
	boxes := BoxTriple{
		units.CPU:     rack.BoxesOf(units.CPU)[0],
		units.RAM:     ramBox,
		units.Storage: rack.BoxesOf(units.Storage)[0],
	}
	if _, err := st.AllocateVM(vmReq(8, 16, 128), boxes, network.FirstFit); err == nil {
		t.Fatal("allocation into full RAM box should fail")
	}
	if st.Cluster.TotalFree(units.CPU) != cpuFree {
		t.Error("CPU placement leaked on rollback")
	}
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAllocateVMRollsBackOnNetworkFailure(t *testing.T) {
	st := newState(t)
	rack := st.Cluster.Rack(0)
	cpuBox := rack.BoxesOf(units.CPU)[0]
	ramBox := rack.BoxesOf(units.RAM)[0]
	stoBox := rack.BoxesOf(units.Storage)[0]
	// Saturate the CPU box's uplinks so the CPU-RAM flow cannot be
	// placed.
	for i := 0; i < st.Fabric.Config().BoxUplinks; i++ {
		if _, err := st.Fabric.AllocateFlow(cpuBox, stoBox, 200, network.FirstFit); err != nil {
			t.Fatal(err)
		}
	}
	cpuFree := st.Cluster.TotalFree(units.CPU)
	intraFree := st.Fabric.IntraRackFree()
	boxes := BoxTriple{units.CPU: cpuBox, units.RAM: ramBox, units.Storage: stoBox}
	if _, err := st.AllocateVM(vmReq(8, 16, 128), boxes, network.FirstFit); err == nil {
		t.Fatal("flow through saturated box should fail")
	}
	if st.Cluster.TotalFree(units.CPU) != cpuFree {
		t.Error("compute leaked on network rollback")
	}
	if st.Fabric.IntraRackFree() != intraFree {
		t.Error("bandwidth leaked on network rollback")
	}
}

func TestAllocateVMRejectsWrongKindBox(t *testing.T) {
	st := newState(t)
	rack := st.Cluster.Rack(0)
	boxes := BoxTriple{
		units.CPU:     rack.BoxesOf(units.RAM)[0], // wrong kind on purpose
		units.RAM:     rack.BoxesOf(units.RAM)[0],
		units.Storage: rack.BoxesOf(units.Storage)[0],
	}
	if _, err := st.AllocateVM(vmReq(8, 16, 128), boxes, network.FirstFit); err == nil {
		t.Error("RAM box offered for CPU should fail")
	}
}

func TestAllocateVMRejectsMissingBox(t *testing.T) {
	st := newState(t)
	boxes := BoxTriple{units.CPU: st.Cluster.Rack(0).BoxesOf(units.CPU)[0]}
	if _, err := st.AllocateVM(vmReq(8, 16, 128), boxes, network.FirstFit); err == nil {
		t.Error("missing RAM box should fail")
	}
}

func TestReleaseVMNil(t *testing.T) {
	st := newState(t)
	st.ReleaseVM(nil) // must not panic
}

func TestReleaseVMIdempotent(t *testing.T) {
	st := newState(t)
	rack := st.Cluster.Rack(0)
	boxes := BoxTriple{
		units.CPU:     rack.BoxesOf(units.CPU)[0],
		units.RAM:     rack.BoxesOf(units.RAM)[0],
		units.Storage: rack.BoxesOf(units.Storage)[0],
	}
	a, err := st.AllocateVM(vmReq(8, 16, 128), boxes, network.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	st.ReleaseVM(a)
	st.ReleaseVM(a) // second release is a no-op thanks to cleared fields
	if err := st.Cluster.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := st.Fabric.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRackMask(t *testing.T) {
	var nilMask RackMask
	if !nilMask.Allows(0) || !nilMask.Allows(99) {
		t.Error("nil mask allows everything")
	}
	m := RackMask{true, false, true}
	if !m.Allows(0) || m.Allows(1) || !m.Allows(2) {
		t.Error("mask misbehaves")
	}
	if m.Allows(3) || m.Allows(99) {
		t.Error("out-of-range rack should be denied")
	}
}

func TestScarcestResource(t *testing.T) {
	st := newState(t)
	// Fresh cluster: CPU 18432 cores, RAM 18432 GB, STO 294912 GB free.
	// Request 8/16/128: CRs 0.00043 / 0.00087 / 0.00043 → RAM scarcest.
	r, ok := ScarcestResource(st.Cluster, units.Vec(8, 16, 128))
	if !ok || r != units.RAM {
		t.Errorf("scarcest = %v, ok=%v; want RAM", r, ok)
	}
	// Zero request → none.
	if _, ok := ScarcestResource(st.Cluster, units.Vec(0, 0, 0)); ok {
		t.Error("zero request has no scarcest resource")
	}
	// Only storage requested.
	r, ok = ScarcestResource(st.Cluster, units.Vec(0, 0, 128))
	if !ok || r != units.Storage {
		t.Errorf("storage-only scarcest = %v", r)
	}
}

func TestLatencyConstants(t *testing.T) {
	if IntraRackCPURAMLatency.Nanoseconds() != 110 {
		t.Errorf("intra latency = %v, want 110ns", IntraRackCPURAMLatency)
	}
	if InterRackCPURAMLatency.Nanoseconds() != 330 {
		t.Errorf("inter latency = %v, want 330ns", InterRackCPURAMLatency)
	}
}
