package sched

import (
	"sort"

	"risa/internal/topology"
	"risa/internal/units"
)

// Scratch is a reusable per-scheduler decision workspace. Every scheduling
// decision needs a handful of transient buffers — candidate rack masks,
// candidate box lists, sort keys, per-rack packing cursors — and before
// this type existed each algorithm allocated them fresh on every call
// (RISA built a RackMask per resource per SUPER_RACK decision and kept its
// box cursors in a map[int]; NULB/NALB grew a new BFS level slice per VM).
// A Scratch owns one copy of each buffer and hands out cleared views, so
// the steady-state decision path touches no allocator at all once the
// buffers have reached their high-water size.
//
// Ownership discipline (DESIGN.md §9): a Scratch belongs to exactly one
// scheduler instance and its buffers are valid only until that scheduler's
// next decision. Nothing handed out by a Scratch may be retained across
// Schedule calls — anything that outlives the decision (the Assignment,
// its placements, its flows) lives in the State's pools instead, whose
// lifetime matches the VM's. Schedulers are not safe for concurrent use
// and neither is their Scratch.
type Scratch struct {
	masks   [units.NumResources]RackMask
	boxes   []*topology.Box
	keys    []units.Bandwidth
	cursors [][units.NumResources]int
	sorter  boxSorter
	preempt PreemptScratch
}

// Preemption returns the scratch's pooled victim-selection workspace for
// the preemption transaction (see PreemptScratch). The same ownership
// rules apply: one driver, no concurrent use.
func (s *Scratch) Preemption() *PreemptScratch { return &s.preempt }

// Mask returns the scratch rack mask for resource r, resized to n racks
// and cleared. The mask stays valid until the next Mask call for the same
// resource; masks of distinct resources can be in flight together (RISA's
// SUPER_RACK holds all three at once).
func (s *Scratch) Mask(r units.Resource, n int) RackMask {
	if cap(s.masks[r]) < n {
		s.masks[r] = make(RackMask, n)
	}
	m := s.masks[r][:n]
	for i := range m {
		m[i] = false
	}
	return m
}

// Boxes returns the emptied scratch candidate-box buffer. Appending to the
// returned slice may grow it; callers must store the result back via
// SetBoxes (or simply not reuse the old header) — the usual
// `level = append(level, ...)` idiom handles this naturally.
func (s *Scratch) Boxes() []*topology.Box { return s.boxes[:0] }

// SetBoxes stores a (possibly grown) candidate buffer back into the
// scratch so its capacity is kept for the next decision.
func (s *Scratch) SetBoxes(b []*topology.Box) { s.boxes = b }

// Cursors returns the per-resource packing cursors of rack i, creating
// dense storage up to that rack on first use. The cursors persist across
// decisions — they are next-fit state, not per-decision scratch — but live
// here because they share the Scratch's lifetime and single-owner rule.
func (s *Scratch) Cursors(i int) *[units.NumResources]int {
	for len(s.cursors) <= i {
		// Grow to the high-water rack index; append doubles capacity so
		// this settles after the first pass over the cluster.
		s.cursors = append(s.cursors, [units.NumResources]int{})
	}
	return &s.cursors[i]
}

// SortBoxesByKeyDesc stable-sorts the candidate boxes in descending key
// order, keys matching boxes by index (NALB's bandwidth-ordered BFS
// level). Both slices must have equal length. Precomputing the keys — one
// per box instead of one per comparison — is also what makes the sort
// O(n log n) fabric probes cheaper, and sorting through a *boxSorter view
// avoids the per-call closure and reflection allocations of
// sort.SliceStable.
func (s *Scratch) SortBoxesByKeyDesc(boxes []*topology.Box, keys []units.Bandwidth) {
	s.sorter.boxes, s.sorter.keys = boxes, keys
	sort.Stable(&s.sorter)
	s.sorter.boxes, s.sorter.keys = nil, nil
}

// Keys returns the emptied scratch key buffer parallel to Boxes; the same
// store-back rule applies (SetKeys).
func (s *Scratch) Keys() []units.Bandwidth { return s.keys[:0] }

// SetKeys stores a grown key buffer back into the scratch.
func (s *Scratch) SetKeys(k []units.Bandwidth) { s.keys = k }

// boxSorter is the reusable sort.Interface view SortBoxesByKeyDesc sorts
// through.
type boxSorter struct {
	boxes []*topology.Box
	keys  []units.Bandwidth
}

// Len implements sort.Interface.
func (b *boxSorter) Len() int { return len(b.boxes) }

// Less implements sort.Interface: descending key order.
func (b *boxSorter) Less(i, j int) bool { return b.keys[i] > b.keys[j] }

// Swap implements sort.Interface, keeping keys parallel to boxes.
func (b *boxSorter) Swap(i, j int) {
	b.boxes[i], b.boxes[j] = b.boxes[j], b.boxes[i]
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
}
