package sched

import (
	"strings"
	"testing"

	"risa/internal/network"
	"risa/internal/topology"
	"risa/internal/workload"
)

// stubScheduler is a minimal Scheduler for registry tests; the sched
// package itself registers nothing (algorithms live in core/baseline).
type stubScheduler struct{ st *State }

func (s *stubScheduler) Name() string { return "stub" }
func (s *stubScheduler) Schedule(vm workload.VM) (*Assignment, error) {
	return nil, ErrProposalConflict
}
func (s *stubScheduler) Release(a *Assignment) {}

func registryState(t *testing.T) *State {
	t.Helper()
	st, err := NewState(topology.DefaultConfig(), network.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRegistryNewAndRegistered(t *testing.T) {
	Register("test-stub", func(st *State, opts Options) Scheduler { return &stubScheduler{st: st} })
	defer delete(registry, "test-stub")
	st := registryState(t)
	s, err := New("test-stub", st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "stub" {
		t.Errorf("factory built %q", s.Name())
	}
	names := Registered()
	found := false
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Errorf("Registered() not sorted: %v", names)
		}
	}
	for _, n := range names {
		if n == "test-stub" {
			found = true
		}
	}
	if !found {
		t.Errorf("test-stub missing from Registered(): %v", names)
	}
}

func TestRegistryUnknownName(t *testing.T) {
	st := registryState(t)
	if _, err := New("no-such-algorithm", st, Options{}); err == nil {
		t.Fatal("unknown name must error")
	} else if !strings.Contains(err.Error(), "no-such-algorithm") {
		t.Errorf("error %q does not name the unknown algorithm", err)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	Register("test-dup", func(st *State, opts Options) Scheduler { return &stubScheduler{st: st} })
	defer delete(registry, "test-dup")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	Register("test-dup", func(st *State, opts Options) Scheduler { return &stubScheduler{st: st} })
}

func TestRegistryNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil factory must panic")
		}
	}()
	Register("test-nil", nil)
}

// TestRackMaskAllows pins the shard vocabulary: a nil mask allows every
// rack, a non-nil mask exactly its true entries (out of range: false).
func TestRackMaskAllows(t *testing.T) {
	var all RackMask
	if !all.Allows(0) || !all.Allows(17) {
		t.Error("nil mask must allow every rack")
	}
	m := RackMask{false, true, false}
	for i, want := range []bool{false, true, false} {
		if m.Allows(i) != want {
			t.Errorf("mask.Allows(%d) = %v, want %v", i, m.Allows(i), want)
		}
	}
	if m.Allows(3) {
		t.Error("past-the-end racks must not be allowed")
	}
}
