// Package sched defines the vocabulary shared by every scheduling
// algorithm in the repository: the mutable datacenter state (compute
// cluster + optical fabric), the result of placing one VM, the transaction
// that allocates compute and network together with rollback, and the
// Scheduler interface the simulator drives.
//
// The algorithms themselves live in package baseline (NULB, NALB — Zervas
// et al.) and package core (RISA, RISA-BF — the paper's contribution).
package sched

import (
	"fmt"
	"time"

	"risa/internal/network"
	"risa/internal/topology"
	"risa/internal/units"
	"risa/internal/workload"
)

// CPU-RAM round-trip latencies assumed by the paper (§5.2, from Zervas et
// al.): 110 ns within a rack, 330 ns across racks.
const (
	IntraRackCPURAMLatency = 110 * time.Nanosecond
	InterRackCPURAMLatency = 330 * time.Nanosecond
)

// State bundles the mutable planes every scheduler operates on, plus the
// assignment pool: released placement records are recycled into later
// Schedule calls so the steady-state path allocates nothing (the optical
// flows are pooled symmetrically inside the Fabric). The pool is part of
// the memory discipline documented in DESIGN.md §9: an Assignment belongs
// to its VM from AllocateVM until ReleaseVM, and must not be touched after
// release — ReleaseVM recycles it.
type State struct {
	Cluster *topology.Cluster
	Fabric  *network.Fabric

	freeAssignments []*Assignment
	allocated       int
}

// NewState builds a fresh datacenter from the two configurations.
func NewState(tcfg topology.Config, ncfg network.Config) (*State, error) {
	cl, err := topology.New(tcfg)
	if err != nil {
		return nil, err
	}
	fab, err := network.NewFabric(cl, ncfg)
	if err != nil {
		return nil, err
	}
	return &State{Cluster: cl, Fabric: fab}, nil
}

// Units returns the unit configuration of the underlying cluster.
func (s *State) Units() units.Config { return s.Cluster.Config().Units }

// Assignment records everything a scheduled VM holds so it can be
// inspected (inter-rack? latency?) and released. Assignments are pooled:
// AllocateVM takes them from the owning State's free list and ReleaseVM
// returns them, so an assignment must not be read after its release.
type Assignment struct {
	VM workload.VM

	// Compute placements; a placement is zero when the VM requests none
	// of that resource.
	CPU, RAM, STO topology.Placement

	// Optical circuits; nil when either endpoint requests nothing.
	CPURAMFlow, RAMSTOFlow *network.Flow

	// pooled marks an assignment sitting on the State's free list, making
	// a double ReleaseVM a no-op instead of a double pool insertion.
	pooled bool
}

// InterRack reports whether the assignment spans racks at all, i.e. the
// paper's "inter-rack VM assignment" (Figures 5 and 7).
func (a *Assignment) InterRack() bool {
	racks := make([]int, 0, 3)
	for _, p := range []topology.Placement{a.CPU, a.RAM, a.STO} {
		if !p.IsZero() {
			racks = append(racks, p.Box.Rack())
		}
	}
	for _, r := range racks[1:] {
		if r != racks[0] {
			return true
		}
	}
	return false
}

// CPURAMLatency returns the round-trip latency between the VM's CPU and
// RAM placements under the paper's constants. VMs without both placements
// report the intra-rack figure (their traffic never leaves a box).
func (a *Assignment) CPURAMLatency() time.Duration {
	if a.CPU.IsZero() || a.RAM.IsZero() {
		return IntraRackCPURAMLatency
	}
	if a.CPU.Box.Rack() != a.RAM.Box.Rack() {
		return InterRackCPURAMLatency
	}
	return IntraRackCPURAMLatency
}

// InterPod reports whether any of the assignment's flows crosses pods
// (always false on the paper's two-tier fabric; see the three-tier
// extension in package network).
func (a *Assignment) InterPod() bool {
	for _, fl := range a.Flows() {
		if fl.InterPod() {
			return true
		}
	}
	return false
}

// OnFailedHardware reports whether any of the assignment's compute
// placements sits on a box currently marked failed — the condition under
// which the fault subsystem's eviction policy displaces the VM.
func (a *Assignment) OnFailedHardware() bool {
	return (!a.CPU.IsZero() && a.CPU.Box.Failed()) ||
		(!a.RAM.IsZero() && a.RAM.Box.Failed()) ||
		(!a.STO.IsZero() && a.STO.Box.Failed())
}

// Flows returns the assignment's non-nil flows.
func (a *Assignment) Flows() []*network.Flow {
	var out []*network.Flow
	if a.CPURAMFlow != nil {
		out = append(out, a.CPURAMFlow)
	}
	if a.RAMSTOFlow != nil {
		out = append(out, a.RAMSTOFlow)
	}
	return out
}

// Scheduler is the contract the simulator drives. Implementations are
// stateful (they own placement cursors and bind to one State) and not safe
// for concurrent use.
type Scheduler interface {
	// Name returns the algorithm's paper name (NULB, NALB, RISA, RISA-BF).
	Name() string
	// Schedule places the VM or returns an error describing why it was
	// dropped. A failed Schedule leaves the state untouched.
	Schedule(vm workload.VM) (*Assignment, error)
	// Release returns an assignment's compute and network resources.
	Release(a *Assignment)
}

// BoxTriple names the chosen box per resource; entries for zero-request
// resources are nil.
type BoxTriple [units.NumResources]*topology.Box

// AllocateVM is the shared placement transaction: it carves the VM's
// compute out of the chosen boxes and reserves both optical flows under
// the given link policy. On any failure everything is rolled back and the
// state is exactly as before. Because every compute mutation goes through
// Cluster.Allocate/Release here, the per-rack free-capacity index
// (topology's MaxFree/FitsWholeVM/Free) stays current for every scheduler
// with no extra bookkeeping on their part — including mid-transaction
// rollbacks.
func (s *State) AllocateVM(vm workload.VM, boxes BoxTriple, policy network.Policy) (*Assignment, error) {
	a := s.getAssignment(vm)
	cfg := s.Units()
	fail := func(err error) (*Assignment, error) {
		s.Fabric.ReleaseFlow(a.RAMSTOFlow)
		s.Fabric.ReleaseFlow(a.CPURAMFlow)
		s.Cluster.Release(a.STO)
		s.Cluster.Release(a.RAM)
		s.Cluster.Release(a.CPU)
		s.putAssignment(a)
		return nil, err
	}
	if err := s.place(vm, boxes, units.CPU, &a.CPU); err != nil {
		return fail(err)
	}
	if err := s.place(vm, boxes, units.RAM, &a.RAM); err != nil {
		return fail(err)
	}
	if err := s.place(vm, boxes, units.Storage, &a.STO); err != nil {
		return fail(err)
	}
	if !a.CPU.IsZero() && !a.RAM.IsZero() {
		fl, err := s.Fabric.AllocateFlow(a.CPU.Box, a.RAM.Box, cfg.CPURAMDemand(vm.Req), policy)
		if err != nil {
			return fail(err)
		}
		a.CPURAMFlow = fl
	}
	if !a.RAM.IsZero() && !a.STO.IsZero() {
		fl, err := s.Fabric.AllocateFlow(a.RAM.Box, a.STO.Box, cfg.RAMSTODemand(vm.Req), policy)
		if err != nil {
			return fail(err)
		}
		a.RAMSTOFlow = fl
	}
	return a, nil
}

// place carves one resource component of vm out of its chosen box into
// *dst, reusing dst's brick-share buffer.
func (s *State) place(vm workload.VM, boxes BoxTriple, r units.Resource, dst *topology.Placement) error {
	if vm.Req[r] == 0 {
		return nil
	}
	if boxes[r] == nil {
		return fmt.Errorf("sched: VM %d requests %v but no box chosen", vm.ID, r)
	}
	if boxes[r].Kind() != r {
		return fmt.Errorf("sched: VM %d: box %v chosen for %v", vm.ID, boxes[r], r)
	}
	p, err := s.Cluster.AllocateInto(boxes[r], vm.Req[r], dst.Shares[:0])
	if err != nil {
		return err
	}
	*dst = p
	return nil
}

// getAssignment pops a recycled assignment from the pool (or allocates the
// pool's first few) and binds it to vm. The recycled record keeps its
// brick-share buffers so re-placing through it allocates nothing.
func (s *State) getAssignment(vm workload.VM) *Assignment {
	n := len(s.freeAssignments)
	if n == 0 {
		s.allocated++
		return &Assignment{VM: vm}
	}
	a := s.freeAssignments[n-1]
	s.freeAssignments[n-1] = nil
	s.freeAssignments = s.freeAssignments[:n-1]
	a.pooled = false
	a.VM = vm
	return a
}

// putAssignment clears a released assignment — keeping its share buffers —
// and pushes it onto the pool.
func (s *State) putAssignment(a *Assignment) {
	a.VM = workload.VM{}
	clearPlacement(&a.CPU)
	clearPlacement(&a.RAM)
	clearPlacement(&a.STO)
	a.CPURAMFlow, a.RAMSTOFlow = nil, nil
	a.pooled = true
	s.freeAssignments = append(s.freeAssignments, a)
}

// AllocatedAssignments returns how many assignment records this State has
// ever allocated (pool misses). A record leak cannot be detected from the
// pool's size — a leaked record is simply replaced by a fresh allocation
// that does return — but it shows up here: replaying an identical warm
// script must not grow this counter (the PreemptionNeverLeaks conformance
// property).
func (s *State) AllocatedAssignments() int { return s.allocated }

// clearPlacement empties a placement while keeping its share buffer's
// capacity for reuse.
func clearPlacement(p *topology.Placement) {
	p.Box = nil
	p.Total = 0
	p.Shares = p.Shares[:0]
}

// ReleaseVM returns an assignment's resources and recycles the record into
// the State's assignment pool; it is the shared Release implementation.
// The assignment must not be used after this call (a second ReleaseVM of
// the same record is a guarded no-op).
func (s *State) ReleaseVM(a *Assignment) {
	if a == nil || a.pooled {
		return
	}
	s.releaseResources(a)
	s.putAssignment(a)
}

// ReleaseVMKeep returns an assignment's resources but leaves the record
// with the caller instead of recycling it. core.Rebalance needs this: it
// releases a live assignment, re-places the VM, and copies the new
// placement back into the caller-visible record — which must therefore
// stay out of the pool while it happens.
func (s *State) ReleaseVMKeep(a *Assignment) {
	if a == nil || a.pooled {
		return
	}
	s.releaseResources(a)
	a.CPURAMFlow, a.RAMSTOFlow = nil, nil
	clearPlacement(&a.CPU)
	clearPlacement(&a.RAM)
	clearPlacement(&a.STO)
}

// releaseResources returns the compute and network holdings of a without
// touching the record's pool state.
func (s *State) releaseResources(a *Assignment) {
	s.Fabric.ReleaseFlow(a.CPURAMFlow)
	s.Fabric.ReleaseFlow(a.RAMSTOFlow)
	s.Cluster.Release(a.CPU)
	s.Cluster.Release(a.RAM)
	s.Cluster.Release(a.STO)
}

// Adopt moves src's contents into dst and retires src's emptied shell to
// the pool. It is the hand-back half of the ReleaseVMKeep protocol: after
// re-placing a VM, Rebalance and the fault subsystem's displacement adopt
// the fresh assignment into the record their caller holds. src must not
// be used afterwards.
//
// dst's (cleared) brick-share buffers are handed to the pooled shell
// rather than dropped: without that swap every adoption would retire a
// buffer-less record, and the next Schedule drawing it from the pool
// would re-grow all three share slices — a per-displacement allocation
// the fault path's zero-alloc contract (BenchmarkScheduleOneUnderFaults)
// forbids.
func (s *State) Adopt(dst, src *Assignment) {
	cpuBuf := dst.CPU.Shares[:0]
	ramBuf := dst.RAM.Shares[:0]
	stoBuf := dst.STO.Shares[:0]
	*dst = *src
	// Detach src's buffers before pooling the shell: dst now owns them,
	// and the shell inherits dst's old buffers.
	*src = Assignment{}
	src.CPU.Shares = cpuBuf
	src.RAM.Shares = ramBuf
	src.STO.Shares = stoBuf
	s.putAssignment(src)
}

// RackMask restricts a search to a subset of racks; nil allows every rack.
type RackMask []bool

// Allows reports whether rack i passes the mask.
func (m RackMask) Allows(i int) bool { return m == nil || (i < len(m) && m[i]) }

// Span returns the half-open rack range [lo, hi) covering every allowed
// rack, so a masked walk can clamp itself instead of probing racks the
// mask would reject anyway (the agent pool's shards are contiguous, so
// the span is exact there). A nil mask spans everything: hi is -1 and
// the caller substitutes its own rack count. An all-false mask returns
// lo == hi == 0, an empty walk.
func (m RackMask) Span() (lo, hi int) {
	if m == nil {
		return 0, -1
	}
	lo = len(m)
	for i, ok := range m {
		if !ok {
			continue
		}
		if i < lo {
			lo = i
		}
		hi = i + 1
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// ScarcestResource returns the requested resource with the highest
// contention ratio (request over cluster-wide availability), the first
// step of NULB/NALB and of RISA's SUPER_RACK fallback. Ties break in
// canonical resource order; resources the VM does not request are skipped.
func ScarcestResource(cl *topology.Cluster, req units.Vector) (units.Resource, bool) {
	best := units.Resource(-1)
	bestCR := -1.0
	for _, r := range units.Resources() {
		if req[r] <= 0 {
			continue
		}
		if cr := cl.ContentionRatio(r, req[r]); cr > bestCR {
			best, bestCR = r, cr
		}
	}
	return best, best >= 0
}
