// Package metrics provides the small statistical toolkit the simulator
// and the experiment harness share: streaming summaries, time-weighted
// averages, and an ASCII bar renderer used to print the paper's figures
// in the terminal.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Summary accumulates a stream of observations (Welford's algorithm) and
// reports count, mean, min, max and standard deviation.
type Summary struct {
	n         int
	mean, m2  float64
	min, max  float64
	populated bool
}

// Observe adds one sample.
func (s *Summary) Observe(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.populated || x < s.min {
		s.min = x
	}
	if !s.populated || x > s.max {
		s.max = x
	}
	s.populated = true
}

// Count returns the number of samples.
func (s *Summary) Count() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the sample standard deviation (0 for < 2 samples).
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// TimeWeighted integrates a piecewise-constant signal over time and
// reports its time average and peak. Call Set whenever the signal changes;
// time must be non-decreasing.
type TimeWeighted struct {
	lastT    float64
	value    float64
	integral float64
	peak     float64
	started  bool
	startT   float64
}

// Set records that the signal takes the given value from time t onward.
func (w *TimeWeighted) Set(t, value float64) {
	if !w.started {
		w.started = true
		w.startT = t
	} else {
		if t < w.lastT {
			panic(fmt.Sprintf("metrics: time went backwards: %g < %g", t, w.lastT))
		}
		w.integral += w.value * (t - w.lastT)
	}
	w.lastT = t
	w.value = value
	if value > w.peak {
		w.peak = value
	}
}

// Average returns the time average of the signal up to time end.
func (w *TimeWeighted) Average(end float64) float64 {
	if !w.started || end <= w.startT {
		return 0
	}
	integral := w.integral + w.value*(end-w.lastT)
	return integral / (end - w.startT)
}

// Peak returns the largest value the signal took.
func (w *TimeWeighted) Peak() float64 { return w.peak }

// sparkRunes are the eight block heights of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a sequence of values as a one-line unicode chart,
// scaled to the sequence's own maximum. Empty input yields an empty
// string; an all-zero sequence renders the lowest block.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	out := make([]rune, len(values))
	for i, v := range values {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}

// Bar is one labeled value of a chart.
type Bar struct {
	Label string
	Value float64
}

// RenderBars draws a horizontal ASCII bar chart; it is how cmd/risasim
// prints the paper's figures. Values are scaled to width characters;
// the numeric value is appended using the format verb (e.g. "%.1f").
func RenderBars(title string, bars []Bar, width int, format string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	labelWidth := 0
	for _, bar := range bars {
		if len(bar.Label) > labelWidth {
			labelWidth = len(bar.Label)
		}
	}
	var max float64
	for _, bar := range bars {
		if bar.Value > max {
			max = bar.Value
		}
	}
	for _, bar := range bars {
		n := 0
		if max > 0 {
			n = int(math.Round(bar.Value / max * float64(width)))
		}
		fmt.Fprintf(&b, "  %-*s |%s%s "+format+"\n",
			labelWidth, bar.Label,
			strings.Repeat("█", n), strings.Repeat(" ", width-n), bar.Value)
	}
	return b.String()
}
