package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Error("empty summary should be zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %g", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	// Sample std dev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Errorf("StdDev = %g, want %g", s.StdDev(), want)
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Observe(-5)
	s.Observe(5)
	if s.Min() != -5 || s.Max() != 5 || s.Mean() != 0 {
		t.Errorf("min/max/mean = %g/%g/%g", s.Min(), s.Max(), s.Mean())
	}
}

func TestSummarySingleSample(t *testing.T) {
	var s Summary
	s.Observe(42)
	if s.StdDev() != 0 {
		t.Error("single sample has no deviation")
	}
	if s.Min() != 42 || s.Max() != 42 {
		t.Error("single sample is both min and max")
	}
}

// Property: mean is always within [min, max]. Inputs are kept within a
// sane magnitude — Welford is not designed for sums overflowing float64.
func TestSummaryMeanBoundedProperty(t *testing.T) {
	f := func(xs []int32) bool {
		if len(xs) == 0 {
			return true
		}
		var s Summary
		for _, x := range xs {
			s.Observe(float64(x))
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeWeightedConstantSignal(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 5)
	if got := w.Average(10); got != 5 {
		t.Errorf("constant average = %g", got)
	}
	if w.Peak() != 5 {
		t.Errorf("peak = %g", w.Peak())
	}
}

func TestTimeWeightedSteps(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 0)
	w.Set(10, 100) // 0 for [0,10), 100 for [10,20)
	if got := w.Average(20); got != 50 {
		t.Errorf("average = %g, want 50", got)
	}
	if w.Peak() != 100 {
		t.Errorf("peak = %g", w.Peak())
	}
}

func TestTimeWeightedLateStart(t *testing.T) {
	var w TimeWeighted
	w.Set(100, 10)
	// Averaging window starts at the first Set.
	if got := w.Average(200); got != 10 {
		t.Errorf("average = %g, want 10", got)
	}
	if got := w.Average(100); got != 0 {
		t.Errorf("zero-length window average = %g", got)
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var w TimeWeighted
	if w.Average(10) != 0 || w.Peak() != 0 {
		t.Error("empty signal should be zero")
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	var w TimeWeighted
	w.Set(10, 1)
	defer func() {
		if recover() == nil {
			t.Error("backwards time should panic")
		}
	}()
	w.Set(5, 2)
}

func TestRenderBars(t *testing.T) {
	out := RenderBars("Figure X", []Bar{
		{"NULB", 255},
		{"RISA", 7},
	}, 10, "%.0f")
	if !strings.Contains(out, "Figure X") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "NULB") || !strings.Contains(out, "RISA") {
		t.Error("missing labels")
	}
	if !strings.Contains(out, "255") || !strings.Contains(out, "7") {
		t.Error("missing values")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("expected 3 lines, got %d", len(lines))
	}
	// The max bar fills the width.
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) {
		t.Error("max bar should fill the width")
	}
}

func TestRenderBarsZeroValues(t *testing.T) {
	out := RenderBars("Z", []Bar{{"a", 0}, {"b", 0}}, 5, "%.0f")
	if strings.Contains(out, "█") {
		t.Error("zero values should draw no bars")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	out := Sparkline([]float64{0, 0, 0})
	if out != "▁▁▁" {
		t.Errorf("all-zero sparkline = %q", out)
	}
	out = Sparkline([]float64{0, 50, 100})
	runes := []rune(out)
	if len(runes) != 3 {
		t.Fatalf("length = %d", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Errorf("scaling wrong: %q", out)
	}
	// Monotone input renders monotone blocks.
	out = Sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	prev := rune(0)
	for _, r := range out {
		if r < prev {
			t.Errorf("non-monotone render: %q", out)
		}
		prev = r
	}
}

func TestSparklineNegativeClamped(t *testing.T) {
	out := []rune(Sparkline([]float64{-5, 10}))
	if out[0] != '▁' {
		t.Errorf("negative value should clamp to lowest block, got %q", string(out))
	}
}
