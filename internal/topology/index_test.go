package topology

import (
	"fmt"
	"math/rand"
	"testing"

	"risa/internal/units"
)

// bruteMaxFree is the pre-index implementation of Rack.MaxFree: a full
// scan in box-index order with a strict comparison, so it returns the
// earliest box attaining the maximum.
func bruteMaxFree(r *Rack, k units.Resource) (units.Amount, *Box) {
	var best *Box
	var max units.Amount
	for _, b := range r.BoxesOf(k) {
		if f := b.Free(); f > max {
			max = f
			best = b
		}
	}
	return max, best
}

// bruteFits is the pre-index implementation of Rack.FitsWholeVM.
func bruteFits(r *Rack, req units.Vector) bool {
	for _, k := range units.Resources() {
		if req[k] == 0 {
			continue
		}
		if max, _ := bruteMaxFree(r, k); max < req[k] {
			return false
		}
	}
	return true
}

// bruteFree is the pre-index implementation of Rack.Free.
func bruteFree(r *Rack, k units.Resource) units.Amount {
	var total units.Amount
	for _, b := range r.BoxesOf(k) {
		total += b.Free()
	}
	return total
}

// bruteNextRackWith is the pre-index candidate scan: the first rack at or
// after from whose true MaxFree covers need.
func bruteNextRackWith(c *Cluster, k units.Resource, need units.Amount, from int) int {
	if from < 0 {
		from = 0
	}
	for i := from; i < c.NumRacks(); i++ {
		if max, _ := bruteMaxFree(c.Rack(i), k); max >= need {
			return i
		}
	}
	return -1
}

// bruteNextRackFits is the pre-index pool scan: the first rack at or after
// from that fits the whole request.
func bruteNextRackFits(c *Cluster, req units.Vector, from int) int {
	if from < 0 {
		from = 0
	}
	for i := from; i < c.NumRacks(); i++ {
		if bruteFits(c.Rack(i), req) {
			return i
		}
	}
	return -1
}

// checkIndexAgainstBrute compares every rack's indexed answers with the
// brute-force scans, including returned-box identity (the index preserves
// the earliest-max tie-break of the original code).
func checkIndexAgainstBrute(t *testing.T, c *Cluster, rng *rand.Rand) {
	t.Helper()
	for _, rack := range c.Racks() {
		for _, k := range units.Resources() {
			wantMax, wantBox := bruteMaxFree(rack, k)
			gotMax, gotBox := rack.MaxFree(k)
			if gotMax != wantMax || gotBox != wantBox {
				t.Fatalf("rack %d %v: MaxFree = %d/%v, brute force = %d/%v",
					rack.Index(), k, gotMax, gotBox, wantMax, wantBox)
			}
			if got, want := rack.Free(k), bruteFree(rack, k); got != want {
				t.Fatalf("rack %d %v: Free = %d, brute force = %d", rack.Index(), k, got, want)
			}
		}
		req := units.Vec(
			units.Amount(rng.Intn(600)),
			units.Amount(rng.Intn(600)),
			units.Amount(rng.Intn(9000)),
		)
		if got, want := rack.FitsWholeVM(req), bruteFits(rack, req); got != want {
			t.Fatalf("rack %d: FitsWholeVM(%v) = %v, brute force = %v", rack.Index(), req, got, want)
		}
	}
	// Cluster-level candidate queries: NextRackWith and NextRackFits must
	// return exactly the rack a linear scan in ascending index order would,
	// from random starting points (including out-of-range ones) and at
	// random needs — the order the schedulers' placements depend on.
	for _, k := range units.Resources() {
		need := units.Amount(rng.Intn(10000))
		from := rng.Intn(c.NumRacks()+2) - 1
		if got, want := c.NextRackWith(k, need, from), bruteNextRackWith(c, k, need, from); got != want {
			t.Fatalf("NextRackWith(%v, %d, %d) = %d, brute force = %d", k, need, from, got, want)
		}
	}
	req := units.Vec(
		units.Amount(rng.Intn(600)),
		units.Amount(rng.Intn(600)),
		units.Amount(rng.Intn(9000)),
	)
	from := rng.Intn(c.NumRacks()+2) - 1
	if got, want := c.NextRackFits(req, from), bruteNextRackFits(c, req, from); got != want {
		t.Fatalf("NextRackFits(%v, %d) = %d, brute force = %d", req, from, got, want)
	}
}

// TestIndexMatchesBruteForce drives random alloc/release/fail/restore
// sequences and asserts after every operation that the incremental index
// agrees with a brute-force scan — the equivalence the scheduling hot
// path relies on.
func TestIndexMatchesBruteForce(t *testing.T) {
	configs := map[string]Config{
		"default": DefaultConfig(),
		"skewed": {
			Racks: 5, CPUBoxes: 1, RAMBoxes: 3, STOBoxes: 4,
			BricksPerBox: 4, UnitsPerBrick: 8, Units: units.DefaultConfig(),
		},
		"single-box": {
			Racks: 3, CPUBoxes: 1, RAMBoxes: 1, STOBoxes: 1,
			BricksPerBox: 2, UnitsPerBrick: 4, Units: units.DefaultConfig(),
		},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			c := mustCluster(t, cfg)
			rng := rand.New(rand.NewSource(42))
			var live []Placement
			var failed []*Box
			const ops = 4000
			for i := 0; i < ops; i++ {
				switch op := rng.Intn(10); {
				case op < 4: // allocate a random amount from a random box
					b := c.Boxes()[rng.Intn(len(c.Boxes()))]
					if b.Free() == 0 {
						continue
					}
					amount := units.Amount(rng.Int63n(int64(b.Free()))) + 1
					p, err := c.Allocate(b, amount)
					if err != nil {
						if !b.Failed() {
							t.Fatalf("op %d: allocate %d from healthy %v: %v", i, amount, b, err)
						}
						continue
					}
					live = append(live, p)
				case op < 8: // release a random live placement
					if len(live) == 0 {
						continue
					}
					j := rng.Intn(len(live))
					c.Release(live[j])
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
				case op < 9: // fail a random box
					b := c.Boxes()[rng.Intn(len(c.Boxes()))]
					if !b.Failed() {
						c.SetBoxFailed(b, true)
						failed = append(failed, b)
					}
				default: // restore a random failed box
					if len(failed) == 0 {
						continue
					}
					j := rng.Intn(len(failed))
					c.SetBoxFailed(failed[j], false)
					failed[j] = failed[len(failed)-1]
					failed = failed[:len(failed)-1]
				}
				checkIndexAgainstBrute(t, c, rng)
				if i%100 == 0 {
					if err := c.CheckInvariants(); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
				}
			}
			// Drain everything and verify the index lands back on a fully
			// free cluster.
			for _, b := range failed {
				c.SetBoxFailed(b, false)
			}
			for _, p := range live {
				c.Release(p)
			}
			checkIndexAgainstBrute(t, c, rng)
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for _, k := range units.Resources() {
				if c.TotalFree(k) != c.TotalCapacity(k) {
					t.Errorf("drained cluster: free %v != capacity", k)
				}
			}
		})
	}
}

// TestClusterIndexEnumerationUnderChurn lets the candidate tree's bounds
// go deeply stale (many mutations between queries, unlike the per-op
// checks above) and then enumerates full candidate sets, which must match
// a brute-force sweep exactly — order included. This is the INTRA_RACK_POOL
// / SUPER_RACK construction pattern.
func TestClusterIndexEnumerationUnderChurn(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	rng := rand.New(rand.NewSource(99))
	var live []Placement
	var failed []*Box
	for round := 0; round < 60; round++ {
		// A burst of mutations with no intervening reads.
		for i := 0; i < 150; i++ {
			switch op := rng.Intn(10); {
			case op < 5:
				b := c.Boxes()[rng.Intn(len(c.Boxes()))]
				if b.Free() == 0 {
					continue
				}
				p, err := c.Allocate(b, units.Amount(rng.Int63n(int64(b.Free())))+1)
				if err == nil {
					live = append(live, p)
				}
			case op < 8:
				if len(live) == 0 {
					continue
				}
				j := rng.Intn(len(live))
				c.Release(live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			case op < 9:
				b := c.Boxes()[rng.Intn(len(c.Boxes()))]
				if !b.Failed() {
					c.SetBoxFailed(b, true)
					failed = append(failed, b)
				}
			default:
				if len(failed) == 0 {
					continue
				}
				j := rng.Intn(len(failed))
				c.SetBoxFailed(failed[j], false)
				failed[j] = failed[len(failed)-1]
				failed = failed[:len(failed)-1]
			}
		}
		// Enumerate every candidate per kind and the whole-VM pool.
		for _, k := range units.Resources() {
			need := units.Amount(rng.Intn(600))
			var got, want []int
			for i := c.NextRackWith(k, need, 0); i >= 0; i = c.NextRackWith(k, need, i+1) {
				got = append(got, i)
			}
			for i := bruteNextRackWith(c, k, need, 0); i >= 0; i = bruteNextRackWith(c, k, need, i+1) {
				want = append(want, i)
			}
			if len(got) != len(want) {
				t.Fatalf("round %d: %v candidates for %d: got %v, want %v", round, k, need, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("round %d: %v candidates for %d: got %v, want %v", round, k, need, got, want)
				}
			}
		}
		req := units.Vec(
			units.Amount(rng.Intn(300)),
			units.Amount(rng.Intn(300)),
			units.Amount(rng.Intn(5000)),
		)
		var got, want []int
		for i := c.NextRackFits(req, 0); i >= 0; i = c.NextRackFits(req, i+1) {
			got = append(got, i)
		}
		for i := bruteNextRackFits(c, req, 0); i >= 0; i = bruteNextRackFits(c, req, i+1) {
			want = append(want, i)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("round %d: pool for %v: got %v, want %v", round, req, got, want)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestIndexSurvivesFailureChurn focuses on the failure-injection paths of
// failure_test.go: releases into failed boxes must not disturb the index,
// and restores must re-expose exactly the right amounts.
func TestIndexSurvivesFailureChurn(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	rack := c.Rack(0)
	box := rack.BoxesOf(units.RAM)[0]
	p, err := c.Allocate(box, 100)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBoxFailed(box, true)
	checkIndexAgainstBrute(t, c, rng)
	// Release while failed: capacity stays hidden.
	c.Release(p)
	checkIndexAgainstBrute(t, c, rng)
	if got, _ := rack.MaxFree(units.RAM); got != box.Capacity() {
		t.Errorf("max free with box 0 failed = %d, want the healthy box's %d", got, box.Capacity())
	}
	c.SetBoxFailed(box, false)
	checkIndexAgainstBrute(t, c, rng)
	if got := rack.Free(units.RAM); got != 2*box.Capacity() {
		t.Errorf("restored rack free = %d, want %d", got, 2*box.Capacity())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
