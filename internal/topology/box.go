package topology

import (
	"fmt"

	"risa/internal/units"
)

// Brick is the smallest pooling granularity inside a box. All communication
// within a brick is electronic; the optical fabric starts at the brick's
// link to the box switch.
type Brick struct {
	capacity units.Amount
	free     units.Amount
}

// Capacity returns the brick's total native amount.
func (b *Brick) Capacity() units.Amount { return b.capacity }

// Free returns the brick's currently unallocated native amount.
func (b *Brick) Free() units.Amount { return b.free }

// Box is a chassis holding a single resource kind, divided into bricks.
// A VM's share of one resource always comes from a single box (the paper
// restricts requests to at most one box worth of each resource) but may
// span several bricks inside it.
type Box struct {
	rack   int            // rack index within the cluster
	index  int            // box index within the rack (across all kinds)
	kindIx int            // box index among boxes of the same kind in the rack
	visIx  int            // dense per-kind cluster id: rack*BoxKindCount(kind)+kindIx
	kind   units.Resource // the single resource this box holds
	bricks []Brick
	free   units.Amount // cached sum of brick free amounts
	cap    units.Amount // sum of brick capacities
	failed bool         // failed boxes accept no new placements
}

// Rack returns the index of the rack containing the box.
func (b *Box) Rack() int { return b.rack }

// Index returns the box's position within its rack, counted across all
// resource kinds (0 .. BoxesPerRack-1).
func (b *Box) Index() int { return b.index }

// KindIndex returns the box's position among same-kind boxes in its rack.
func (b *Box) KindIndex() int { return b.kindIx }

// Kind returns the resource kind the box holds.
func (b *Box) Kind() units.Resource { return b.kind }

// Bricks returns the number of bricks in the box.
func (b *Box) Bricks() int { return len(b.bricks) }

// Brick returns a read-only view of brick i.
func (b *Box) Brick(i int) *Brick { return &b.bricks[i] }

// Capacity returns the box's total native amount.
func (b *Box) Capacity() units.Amount { return b.cap }

// Free returns the native amount available to new placements: the
// unallocated amount, or zero while the box is failed.
func (b *Box) Free() units.Amount {
	if b.failed {
		return 0
	}
	return b.free
}

// Used returns the allocated native amount.
func (b *Box) Used() units.Amount { return b.cap - b.free }

// Failed reports whether the box is marked failed (see Cluster.SetBoxFailed).
func (b *Box) Failed() bool { return b.failed }

// String identifies the box for logs and errors.
func (b *Box) String() string {
	return fmt.Sprintf("%v-box r%d/b%d", b.kind, b.rack, b.index)
}

// BrickShare records how much of a placement landed on one brick.
type BrickShare struct {
	Brick  int
	Amount units.Amount
}

// Placement records a compute allocation inside a single box so it can be
// released later. The zero Placement is "nothing allocated".
type Placement struct {
	Box    *Box
	Shares []BrickShare
	Total  units.Amount
}

// IsZero reports whether the placement holds no allocation.
func (p Placement) IsZero() bool { return p.Box == nil || p.Total == 0 }

// allocate carves amount out of the box, greedily filling bricks in index
// order (first-fit across bricks). It returns the per-brick shares —
// appended onto buf, which callers on the zero-allocation hot path pass in
// from a recycled placement record (nil is fine and simply allocates) — or
// an error if the box lacks capacity; on error the box is unchanged.
func (b *Box) allocate(amount units.Amount, buf []BrickShare) (Placement, error) {
	if amount <= 0 {
		return Placement{}, fmt.Errorf("topology: allocation amount must be positive, got %d", amount)
	}
	if b.failed {
		return Placement{}, fmt.Errorf("topology: %v is failed", b)
	}
	if amount > b.free {
		return Placement{}, fmt.Errorf("topology: %v has %d %s free, need %d",
			b, b.free, b.kind.Native(), amount)
	}
	p := Placement{Box: b, Total: amount, Shares: buf}
	remaining := amount
	for i := range b.bricks {
		if remaining == 0 {
			break
		}
		br := &b.bricks[i]
		if br.free == 0 {
			continue
		}
		take := br.free
		if take > remaining {
			take = remaining
		}
		br.free -= take
		remaining -= take
		p.Shares = append(p.Shares, BrickShare{Brick: i, Amount: take})
	}
	if remaining != 0 {
		// Cannot happen while free is the sum of brick free amounts;
		// guard against bookkeeping bugs loudly.
		panic(fmt.Sprintf("topology: %v free counter out of sync (short %d)", b, remaining))
	}
	b.free -= amount
	return p, nil
}

// release returns a placement's amounts to their bricks. It panics if the
// placement does not belong to this box or would overfill a brick, since
// that always indicates double-release or cross-box corruption.
func (b *Box) release(p Placement) {
	if p.Box != b {
		panic(fmt.Sprintf("topology: releasing placement of %v on %v", p.Box, b))
	}
	for _, s := range p.Shares {
		br := &b.bricks[s.Brick]
		if br.free+s.Amount > br.capacity {
			panic(fmt.Sprintf("topology: releasing %d onto brick %d of %v overflows capacity", s.Amount, s.Brick, b))
		}
		br.free += s.Amount
	}
	b.free += p.Total
}
