package topology

import (
	"fmt"

	"risa/internal/units"
)

// Rack groups the boxes that share one intra-rack optical switch.
type Rack struct {
	index  int
	boxes  []*Box                     // all boxes, in intra-rack index order
	byKind [units.NumResources][]*Box // same boxes grouped by resource kind
	// vis is the rack's window into the cluster's per-kind visible-free
	// vectors (Cluster.vis): vis[k][i] == byKind[k][i].Free() at all times.
	// The hot box scans (kindIndex.rescan, the packing policies, the BFS
	// levels) read these contiguous amounts instead of chasing the box
	// pointers, which is what keeps the per-decision cost flat at
	// hyperscale rack counts.
	vis [units.NumResources][]units.Amount
	idx [units.NumResources]kindIndex // incremental free-capacity index
	gen uint64                        // compute generation (see Gen)
}

// Index returns the rack's position in the cluster.
func (r *Rack) Index() int { return r.index }

// Boxes returns all boxes of the rack in index order. The slice is shared;
// callers must not modify it.
func (r *Rack) Boxes() []*Box { return r.boxes }

// BoxesOf returns the rack's boxes of kind k in index order. The slice is
// shared; callers must not modify it.
func (r *Rack) BoxesOf(k units.Resource) []*Box { return r.byKind[k] }

// FreeVecOf returns the rack's visible-free vector for kind k:
// FreeVecOf(k)[i] == BoxesOf(k)[i].Free() (0 while the box is failed),
// maintained on every mutation. The slice is shared and read-only for
// callers; it aliases the cluster-wide vector (Cluster.FreeVec), so the
// structure-of-arrays scan order equals the box-pointer scan order.
func (r *Rack) FreeVecOf(k units.Resource) []units.Amount { return r.vis[k] }

// MaxFree returns the largest free amount of kind k available in any single
// box of the rack, and the earliest box attaining it (nil when nothing is
// free). RISA's INTRA_RACK_POOL test is built on this: a rack can host a
// whole VM iff MaxFree ≥ request for every kind. The answer comes from the
// rack's incremental index, so the amortized cost is O(1) rather than a
// scan of the rack's boxes.
func (r *Rack) MaxFree(k units.Resource) (units.Amount, *Box) {
	ix := &r.idx[k]
	if ix.dirty {
		ix.rescan(r.byKind[k], r.vis[k])
	}
	return ix.max, ix.best
}

// FitsWholeVM reports whether some single box per kind can hold each
// component of req, i.e. the rack qualifies for RISA's INTRA_RACK_POOL.
func (r *Rack) FitsWholeVM(req units.Vector) bool {
	for _, k := range units.Resources() {
		if req[k] == 0 {
			continue
		}
		if max, _ := r.MaxFree(k); max < req[k] {
			return false
		}
	}
	return true
}

// Free returns the total free amount of kind k across the rack's healthy
// boxes, maintained incrementally (O(1)).
func (r *Rack) Free(k units.Resource) units.Amount { return r.idx[k].total }

// Cluster is the complete disaggregated datacenter compute plane.
type Cluster struct {
	cfg   Config
	racks []*Rack
	boxes []*Box // rack-major flattened order
	free  units.Vector
	cap   units.Vector

	// vis is the structure-of-arrays mirror of the boxes' visible free
	// amounts: per resource kind, one contiguous vector indexed by the
	// dense per-kind box id (Box.visIx = rack*BoxKindCount(kind)+kindIx),
	// holding exactly Box.Free() — the unallocated amount, or 0 while the
	// box is failed. Every mutation that changes a box's visible free
	// amount syncs its slot (syncVis), so the decision-loop scans read
	// cache-line-packed amounts instead of walking box pointers. The
	// regular per-rack box layout (Config) is what makes the dense id
	// well-defined.
	vis [units.NumResources][]units.Amount

	// cidx is the cluster-level candidate index: per resource kind, a
	// max-tree over rack indices bounding each rack's cached MaxFree, so
	// schedulers can enumerate qualifying racks without scanning all of
	// them. See clusterindex.go.
	cidx [units.NumResources]maxTree
}

// New builds the regular cluster described by cfg. Boxes within each rack
// are laid out kind-major: all CPU boxes first, then RAM, then storage,
// mirroring the id assignment of the paper's toy examples.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg}
	for _, kind := range units.Resources() {
		c.vis[kind] = make([]units.Amount, cfg.Racks*cfg.BoxKindCount(kind))
	}
	for ri := 0; ri < cfg.Racks; ri++ {
		rack := &Rack{index: ri}
		idx := 0
		for _, kind := range units.Resources() {
			brickCap := cfg.BrickCapacity(kind)
			perKind := cfg.BoxKindCount(kind)
			rack.vis[kind] = c.vis[kind][ri*perKind : (ri+1)*perKind : (ri+1)*perKind]
			for ki := 0; ki < perKind; ki++ {
				box := &Box{
					rack:   ri,
					index:  idx,
					kindIx: ki,
					visIx:  ri*perKind + ki,
					kind:   kind,
					bricks: make([]Brick, cfg.BricksPerBox),
				}
				for bi := range box.bricks {
					box.bricks[bi] = Brick{capacity: brickCap, free: brickCap}
				}
				box.cap = brickCap * units.Amount(cfg.BricksPerBox)
				box.free = box.cap
				c.vis[kind][box.visIx] = box.free
				rack.boxes = append(rack.boxes, box)
				rack.byKind[kind] = append(rack.byKind[kind], box)
				c.boxes = append(c.boxes, box)
				c.free[kind] += box.cap
				c.cap[kind] += box.cap
				idx++
			}
		}
		rack.initIndex()
		c.racks = append(c.racks, rack)
	}
	c.initCandidateIndex()
	return c, nil
}

// syncVis refreshes b's slot in the visible-free vectors after a mutation
// of its free amount or failure flag. It is the single write point of the
// structure-of-arrays mirror.
func (c *Cluster) syncVis(b *Box) { c.vis[b.kind][b.visIx] = b.Free() }

// FreeVec returns the cluster-wide visible-free vector for kind k,
// indexed by the dense per-kind box id rack*BoxKindCount(k)+kindIx.
// FreeVec(k)[id] == that box's Free() at all times. The slice is shared
// and read-only for callers.
func (c *Cluster) FreeVec(k units.Resource) []units.Amount { return c.vis[k] }

// Config returns the configuration the cluster was built from.
func (c *Cluster) Config() Config { return c.cfg }

// Racks returns the cluster's racks in index order (shared slice).
func (c *Cluster) Racks() []*Rack { return c.racks }

// Rack returns rack i.
func (c *Cluster) Rack(i int) *Rack { return c.racks[i] }

// NumRacks returns the number of racks.
func (c *Cluster) NumRacks() int { return len(c.racks) }

// Boxes returns every box in rack-major order (shared slice).
func (c *Cluster) Boxes() []*Box { return c.boxes }

// TotalCapacity returns the cluster-wide capacity of kind k.
func (c *Cluster) TotalCapacity(k units.Resource) units.Amount { return c.cap[k] }

// TotalFree returns the cluster-wide free amount of kind k.
func (c *Cluster) TotalFree(k units.Resource) units.Amount { return c.free[k] }

// Utilization returns the used fraction of kind k in [0,1].
func (c *Cluster) Utilization(k units.Resource) float64 {
	if c.cap[k] == 0 {
		return 0
	}
	return float64(c.cap[k]-c.free[k]) / float64(c.cap[k])
}

// ContentionRatio returns the paper's CR for a request component: the
// amount requested over the total currently available amount of that
// resource. A ratio > 1 means the cluster cannot satisfy the component at
// all; an infinite ratio (no free resource) is reported as a large finite
// number so comparisons stay total.
func (c *Cluster) ContentionRatio(k units.Resource, req units.Amount) float64 {
	if req <= 0 {
		return 0
	}
	if c.free[k] == 0 {
		return float64(req) * 1e9
	}
	return float64(req) / float64(c.free[k])
}

// Allocate carves amount of box's kind out of box, updating cluster totals.
func (c *Cluster) Allocate(box *Box, amount units.Amount) (Placement, error) {
	return c.AllocateInto(box, amount, nil)
}

// AllocateInto is Allocate with a caller-provided brick-share buffer: the
// placement's Shares are appended onto buf (usually the emptied buffer of
// a recycled placement record), so steady-state allocation reuses the
// record's memory instead of growing a fresh slice per placement. Passing
// nil reproduces Allocate exactly.
func (c *Cluster) AllocateInto(box *Box, amount units.Amount, buf []BrickShare) (Placement, error) {
	p, err := box.allocate(amount, buf)
	if err != nil {
		return Placement{}, err
	}
	c.free[box.kind] -= amount
	c.syncVis(box)
	c.racks[box.rack].noteDecrease(box, amount)
	return p, nil
}

// Release returns a placement's resources to its box and cluster totals.
// Releasing the zero placement is a no-op. Releasing into a failed box is
// legal (the VM departs either way) but the freed capacity only rejoins
// the cluster totals when the box is restored.
func (c *Cluster) Release(p Placement) {
	if p.IsZero() {
		return
	}
	p.Box.release(p)
	if !p.Box.failed {
		c.free[p.Box.kind] += p.Total
		c.syncVis(p.Box)
		c.noteRackIncrease(p.Box, p.Total)
	}
}

// SetBoxFailed marks a box failed or restores it. A failed box accepts no
// new placements and reports zero free capacity; existing placements stay
// accounted and may still be released (the freed capacity rejoins the
// totals at repair time — see Release). Toggling is idempotent.
//
// Repair re-seeds both index tiers exactly rather than relying on the
// lazy self-repair of the query paths: the rack's kind index is rescanned
// (so max/best are exact and clean even when earlier decreases had left
// it dirty) and the cluster candidate tree's bound for the rack is set to
// that exact maximum (a lazy raise would leave a slack upper bound
// whenever the rack index was dirty at repair time). Repairs are rare, so
// the O(boxes-of-kind) rescan is free compared to leaving every
// post-repair query to tighten the bounds itself.
func (c *Cluster) SetBoxFailed(b *Box, failed bool) {
	if b.failed == failed {
		return
	}
	b.failed = failed
	c.syncVis(b)
	if failed {
		c.free[b.kind] -= b.free
		c.racks[b.rack].noteDecrease(b, b.free)
	} else {
		c.free[b.kind] += b.free
		c.reseedOnRepair(b)
	}
}

// reseedOnRepair restores the rack-tier and cluster-tier indices to their
// exact values after b returned to service. b.failed must already be
// false so the rescan sees the box's true free amount.
func (c *Cluster) reseedOnRepair(b *Box) {
	rack := c.racks[b.rack]
	rack.gen++
	ix := &rack.idx[b.kind]
	ix.total += b.free
	ix.rescan(rack.byKind[b.kind], rack.vis[b.kind])
	c.cidx[b.kind].set(b.rack, ix.max)
}

// Preoccupy permanently consumes amount from the given box; it is used by
// tests and the toy-example experiments to reconstruct the paper's Table 3
// availability state. The returned placement may be released like any
// other.
func (c *Cluster) Preoccupy(rack, kindIndex int, kind units.Resource, amount units.Amount) (Placement, error) {
	if rack < 0 || rack >= len(c.racks) {
		return Placement{}, fmt.Errorf("topology: rack %d out of range", rack)
	}
	boxes := c.racks[rack].BoxesOf(kind)
	if kindIndex < 0 || kindIndex >= len(boxes) {
		return Placement{}, fmt.Errorf("topology: %v box %d out of range in rack %d", kind, kindIndex, rack)
	}
	return c.Allocate(boxes[kindIndex], amount)
}

// Stranded returns, per resource, the free amount sitting in racks that
// cannot host the reference request as a whole — capacity that exists but
// is unusable for a typical VM because a complementary resource (or a
// large-enough single box) is missing in that rack. Stranded resources
// are the paper's core motivation (§1) and reducing them is RISA-BF's
// stated goal (§4).
func (c *Cluster) Stranded(ref units.Vector) units.Vector {
	var out units.Vector
	for _, rack := range c.racks {
		if rack.FitsWholeVM(ref) {
			continue
		}
		for _, k := range units.Resources() {
			out[k] += rack.Free(k)
		}
	}
	return out
}

// StrandedFraction returns Stranded as a fraction of the cluster's total
// free amount per resource (0 when nothing is free).
func (c *Cluster) StrandedFraction(ref units.Vector) [units.NumResources]float64 {
	stranded := c.Stranded(ref)
	var out [units.NumResources]float64
	for _, k := range units.Resources() {
		if c.free[k] > 0 {
			out[k] = float64(stranded[k]) / float64(c.free[k])
		}
	}
	return out
}

// CheckInvariants verifies all bookkeeping identities: per-box free equals
// the sum of brick frees, 0 ≤ free ≤ capacity everywhere, and cluster
// totals equal the sums over boxes. It is meant for tests and returns the
// first violation found.
func (c *Cluster) CheckInvariants() error {
	var free, cap units.Vector
	for _, b := range c.boxes {
		var brickFree, brickCap units.Amount
		for i := range b.bricks {
			br := &b.bricks[i]
			if br.free < 0 || br.free > br.capacity {
				return fmt.Errorf("%v brick %d free %d out of [0,%d]", b, i, br.free, br.capacity)
			}
			brickFree += br.free
			brickCap += br.capacity
		}
		if brickFree != b.free {
			return fmt.Errorf("%v cached free %d != brick sum %d", b, b.free, brickFree)
		}
		if brickCap != b.cap {
			return fmt.Errorf("%v cached capacity %d != brick sum %d", b, b.cap, brickCap)
		}
		if !b.failed {
			free[b.kind] += b.free
		}
		cap[b.kind] += b.cap
		// The structure-of-arrays mirror must hold exactly the box's
		// visible free amount at its dense per-kind id.
		if want := c.cfg.BoxKindCount(b.kind)*b.rack + b.kindIx; b.visIx != want {
			return fmt.Errorf("%v dense id %d != %d", b, b.visIx, want)
		}
		if got := c.vis[b.kind][b.visIx]; got != b.Free() {
			return fmt.Errorf("%v free vector holds %d, box visible free is %d", b, got, b.Free())
		}
	}
	for _, k := range units.Resources() {
		if len(c.vis[k]) != c.cfg.BoxKindCount(k)*len(c.racks) {
			return fmt.Errorf("%v free vector has %d slots for %d boxes",
				k, len(c.vis[k]), c.cfg.BoxKindCount(k)*len(c.racks))
		}
	}
	if free != c.free {
		return fmt.Errorf("cluster free %v != box sum %v", c.free, free)
	}
	if cap != c.cap {
		return fmt.Errorf("cluster capacity %v != box sum %v", c.cap, cap)
	}
	for _, rack := range c.racks {
		for _, k := range units.Resources() {
			ix := &rack.idx[k]
			var total, max units.Amount
			var best *Box
			for _, b := range rack.byKind[k] {
				f := b.Free()
				total += f
				if f > max {
					max, best = f, b
				}
			}
			if ix.total != total {
				return fmt.Errorf("rack %d %v index total %d != scan %d", rack.index, k, ix.total, total)
			}
			if !ix.dirty && (ix.max != max || ix.best != best) {
				return fmt.Errorf("rack %d %v index max %d/%v != scan %d/%v",
					rack.index, k, ix.max, ix.best, max, best)
			}
			// The cluster-level candidate tree must never under-estimate a
			// rack: a too-small bound would hide a qualifying rack from
			// NextRackWith/NextRackFits and change placements.
			if ub := c.cidx[k].leaf(rack.index); ub < max {
				return fmt.Errorf("rack %d %v candidate bound %d < true max %d", rack.index, k, ub, max)
			}
		}
	}
	for _, k := range units.Resources() {
		if err := c.cidx[k].checkTree(); err != nil {
			return fmt.Errorf("%v candidate tree: %w", k, err)
		}
	}
	return nil
}
