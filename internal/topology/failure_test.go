package topology

import (
	"testing"

	"risa/internal/units"
)

func TestSetBoxFailedHidesCapacity(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	box := c.Rack(0).BoxesOf(units.CPU)[0]
	total := c.TotalFree(units.CPU)
	c.SetBoxFailed(box, true)
	if !box.Failed() {
		t.Fatal("box should report failed")
	}
	if box.Free() != 0 {
		t.Errorf("failed box Free = %d, want 0", box.Free())
	}
	if got := c.TotalFree(units.CPU); got != total-box.Capacity() {
		t.Errorf("cluster free = %d, want %d", got, total-box.Capacity())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Allocation into the failed box is refused.
	if _, err := c.Allocate(box, 8); err == nil {
		t.Error("failed box must refuse allocations")
	}
	// Restore brings the capacity back.
	c.SetBoxFailed(box, false)
	if c.TotalFree(units.CPU) != total {
		t.Error("restore should return the capacity")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSetBoxFailedIdempotent(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	box := c.Rack(0).BoxesOf(units.RAM)[0]
	total := c.TotalFree(units.RAM)
	c.SetBoxFailed(box, true)
	c.SetBoxFailed(box, true) // no double subtraction
	if got := c.TotalFree(units.RAM); got != total-box.Capacity() {
		t.Errorf("double-fail corrupted totals: %d", got)
	}
	c.SetBoxFailed(box, false)
	c.SetBoxFailed(box, false)
	if c.TotalFree(units.RAM) != total {
		t.Error("double-restore corrupted totals")
	}
}

func TestReleaseIntoFailedBox(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	box := c.Rack(0).BoxesOf(units.Storage)[0]
	p, err := c.Allocate(box, 128)
	if err != nil {
		t.Fatal(err)
	}
	totalAfterAlloc := c.TotalFree(units.Storage)
	c.SetBoxFailed(box, true)
	// The VM departs while the box is down: release succeeds, but the
	// freed capacity stays hidden until restore.
	c.Release(p)
	if got := c.TotalFree(units.Storage); got != totalAfterAlloc-(box.Capacity()-128) {
		t.Errorf("release onto failed box leaked into totals: %d", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
	c.SetBoxFailed(box, false)
	if box.Free() != box.Capacity() {
		t.Error("restored box should be fully free")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestRepairReseedsIndexTiers pins the repair-path contract behind the
// fault subsystem: healing a box must leave both index tiers exact — the
// rack's kind index rescanned clean and the cluster candidate bound
// tightened to the true maximum — not merely self-repairing upper
// bounds. Before the re-seed fix, healing a box while the rack index was
// dirty left the index dirty and the candidate bound slack (stuck at the
// pre-failure maximum).
func TestRepairReseedsIndexTiers(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	rack := c.Rack(0)
	k := units.CPU
	b0, b1 := rack.BoxesOf(k)[0], rack.BoxesOf(k)[1]
	// Shrink the non-best box (index stays clean), then the best box
	// (index goes dirty with the candidate bound stale at 512).
	if _, err := c.Allocate(b1, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate(b0, 200); err != nil {
		t.Fatal(err)
	}
	c.SetBoxFailed(b0, true)
	c.SetBoxFailed(b0, false)

	ix := &rack.idx[k]
	if ix.dirty {
		t.Error("rack kind index left dirty after repair")
	}
	wantMax, wantBest := b1.Free(), b1 // 412 > the healed box's 312
	if ix.max != wantMax || ix.best != wantBest {
		t.Errorf("rack index after repair = (%d, %v), want exact (%d, %v)",
			ix.max, ix.best, wantMax, wantBest)
	}
	if got := c.cidx[k].leaf(0); got != wantMax {
		t.Errorf("cluster candidate bound %d after repair, want exact %d", got, wantMax)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestReleaseIntoFailedThenHealedBox covers the interaction of the
// Release failed-box skip path with repair, in both orders: a VM
// departing while its box is down (the freed capacity must surface at
// repair, with both index tiers exact), and a VM departing after its box
// already recovered (a plain healthy-path release).
func TestReleaseIntoFailedThenHealedBox(t *testing.T) {
	k := units.CPU
	for _, order := range []string{"release-then-heal", "heal-then-release"} {
		c := mustCluster(t, DefaultConfig())
		total := c.TotalFree(k)
		rack := c.Rack(0)
		box := rack.BoxesOf(k)[0]
		p, err := c.Allocate(box, 128)
		if err != nil {
			t.Fatal(err)
		}
		c.SetBoxFailed(box, true)
		if order == "release-then-heal" {
			c.Release(p)
			c.SetBoxFailed(box, false)
		} else {
			c.SetBoxFailed(box, false)
			c.Release(p)
		}
		if got := c.TotalFree(k); got != total {
			t.Errorf("%s: cluster free = %d, want pristine %d", order, got, total)
		}
		if got := rack.Free(k); got != 2*box.Capacity() {
			t.Errorf("%s: rack free = %d, want %d", order, got, 2*box.Capacity())
		}
		if max, best := rack.MaxFree(k); max != box.Capacity() || best != box {
			t.Errorf("%s: MaxFree = (%d, %v), want (%d, %v)", order, max, best, box.Capacity(), box)
		}
		if got := c.cidx[k].leaf(0); got != box.Capacity() {
			t.Errorf("%s: candidate bound %d, want exact %d", order, got, box.Capacity())
		}
		// The restored capacity must be findable through the query tier.
		if got := c.NextRackWith(k, box.Capacity(), 0); got != 0 {
			t.Errorf("%s: NextRackWith full box = rack %d, want 0", order, got)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", order, err)
		}
	}
}

func TestFailedBoxExcludedFromRackViews(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	rack := c.Rack(0)
	for _, b := range rack.BoxesOf(units.RAM) {
		c.SetBoxFailed(b, true)
	}
	if max, _ := rack.MaxFree(units.RAM); max != 0 {
		t.Errorf("rack max free = %d with all RAM failed", max)
	}
	if rack.Free(units.RAM) != 0 {
		t.Error("rack free should be zero")
	}
	if rack.FitsWholeVM(units.Vec(1, 1, 1)) {
		t.Error("rack without RAM cannot fit a VM")
	}
	// Other racks are unaffected.
	if !c.Rack(1).FitsWholeVM(units.Vec(1, 1, 1)) {
		t.Error("healthy rack should still fit")
	}
}

func TestUsedSurvivesFailure(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	box := c.Rack(0).BoxesOf(units.CPU)[0]
	if _, err := c.Allocate(box, 100); err != nil {
		t.Fatal(err)
	}
	c.SetBoxFailed(box, true)
	if box.Used() != 100 {
		t.Errorf("Used = %d after failure, want 100", box.Used())
	}
}

func TestStrandedMetric(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	ref := units.Vec(16, 16, 128)
	// Fresh cluster: nothing stranded.
	if got := c.Stranded(ref); !got.IsZero() {
		t.Errorf("fresh cluster stranded = %v", got)
	}
	// Exhaust rack 0's RAM: its free CPU and storage become stranded for
	// the reference VM.
	for _, b := range c.Rack(0).BoxesOf(units.RAM) {
		if _, err := c.Allocate(b, b.Free()); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Stranded(ref)
	if got[units.CPU] != 2*512 {
		t.Errorf("stranded CPU = %d, want %d", got[units.CPU], 2*512)
	}
	if got[units.Storage] != 2*8192 {
		t.Errorf("stranded STO = %d, want %d", got[units.Storage], 2*8192)
	}
	if got[units.RAM] != 0 {
		t.Errorf("stranded RAM = %d, want 0 (none free there)", got[units.RAM])
	}
	frac := c.StrandedFraction(ref)
	wantCPU := float64(2*512) / float64(18*2*512)
	if frac[units.CPU] != wantCPU {
		t.Errorf("stranded CPU fraction = %g, want %g", frac[units.CPU], wantCPU)
	}
}

func TestStrandedCountsFailedRacks(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	ref := units.Vec(8, 16, 128)
	// Fail rack 3's CPU boxes: the rack cannot host the reference VM, but
	// its failed boxes contribute no free capacity either — only the
	// healthy RAM/storage there is stranded.
	for _, b := range c.Rack(3).BoxesOf(units.CPU) {
		c.SetBoxFailed(b, true)
	}
	got := c.Stranded(ref)
	if got[units.CPU] != 0 {
		t.Errorf("failed CPU should not count as stranded free: %d", got[units.CPU])
	}
	if got[units.RAM] != 2*512 || got[units.Storage] != 2*8192 {
		t.Errorf("healthy complements should be stranded: %v", got)
	}
}

func TestStrandedFractionEmptyCluster(t *testing.T) {
	cfg := DefaultConfig()
	c := mustCluster(t, cfg)
	// Exhaust everything: fractions must be 0 (no free capacity at all).
	for _, b := range c.Boxes() {
		if _, err := c.Allocate(b, b.Free()); err != nil {
			t.Fatal(err)
		}
	}
	frac := c.StrandedFraction(units.Vec(1, 1, 1))
	for _, k := range units.Resources() {
		if frac[k] != 0 {
			t.Errorf("fraction %v = %g with nothing free", k, frac[k])
		}
	}
}
