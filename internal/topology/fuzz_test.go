package topology

import (
	"testing"

	"risa/internal/units"
)

// FuzzClusterIndex drives a small cluster through an arbitrary
// allocate/release/fail/heal sequence decoded from the fuzz input and
// checks, after every operation, that (a) CheckInvariants holds — which
// includes the rack kind indices and the cluster candidate tree — and
// (b) the two query tiers agree with a brute-force rescan of the boxes:
// MaxFree/Free per rack and NextRackWith over the whole cluster. The
// boxes' brick counters are the ground truth (CheckInvariants ties the
// cached sums to them), so any divergence the fuzzer finds is an index
// maintenance bug, not an oracle artifact.
//
// The seed corpus covers every opcode and the failed-then-healed release
// orders; CI additionally runs a 30 s fuzz smoke (see ci.yml).
func FuzzClusterIndex(f *testing.F) {
	// One op is three bytes: opcode, unit selector, amount selector.
	f.Add([]byte{0, 0, 10, 0, 1, 200, 1, 0, 0})                  // alloc, alloc, release
	f.Add([]byte{0, 3, 255, 2, 3, 0, 1, 0, 0, 3, 3, 0})          // alloc, fail, release-into-failed, heal
	f.Add([]byte{2, 0, 0, 3, 0, 0, 0, 0, 50, 1, 0, 0})           // fail, heal, alloc, release
	f.Add([]byte{0, 2, 128, 0, 2, 128, 2, 2, 0, 2, 2, 0})        // double-fail idempotence
	f.Add([]byte{3, 5, 0, 3, 5, 0, 0, 5, 64, 2, 5, 0})           // heal-healthy no-op, alloc, fail
	f.Add([]byte{0, 1, 40, 0, 0, 90, 2, 0, 0, 3, 0, 0, 1, 0, 0}) // dirty-index fail/heal cycle
	f.Fuzz(func(t *testing.T, ops []byte) {
		cfg := DefaultConfig()
		cfg.Racks = 3
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		boxes := c.Boxes()
		var live []Placement
		for i := 0; i+2 < len(ops); i += 3 {
			op, sel, amt := ops[i], ops[i+1], ops[i+2]
			switch op % 4 {
			case 0: // allocate: amount scaled to the box capacity, never 0
				b := boxes[int(sel)%len(boxes)]
				amount := units.Amount(amt)%b.Capacity() + 1
				if p, err := c.Allocate(b, amount); err == nil {
					live = append(live, p)
				}
			case 1: // release a live placement (covers failed boxes too)
				if len(live) > 0 {
					j := int(sel) % len(live)
					c.Release(live[j])
					live = append(live[:j], live[j+1:]...)
				}
			case 2:
				c.SetBoxFailed(boxes[int(sel)%len(boxes)], true)
			case 3:
				c.SetBoxFailed(boxes[int(sel)%len(boxes)], false)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i/3, err)
			}
			checkIndexAgainstBruteForce(t, c, i/3, units.Amount(amt)+1)
		}
	})
}

// checkIndexAgainstBruteForce compares every indexed query against a
// direct scan of the boxes: the cached rack totals and maxima, the SoA
// visible-free vectors (rack views and the cluster-wide slice, element
// for element against Free()), the candidate tree behind NextRackWith,
// and the whole-VM leapfrog behind NextRackFits.
func checkIndexAgainstBruteForce(t *testing.T, c *Cluster, op int, need units.Amount) {
	t.Helper()
	for _, k := range units.Resources() {
		firstFit := -1
		vec := c.FreeVec(k)
		off := 0
		for _, rack := range c.Racks() {
			var total, max units.Amount
			var best *Box
			rv := rack.FreeVecOf(k)
			for i, b := range rack.BoxesOf(k) {
				f := b.Free()
				total += f
				if f > max {
					max, best = f, b
				}
				if rv[i] != f {
					t.Fatalf("op %d: rack %d FreeVecOf(%v)[%d] = %d, Free %d",
						op, rack.Index(), k, i, rv[i], f)
				}
				if vec[off+i] != f {
					t.Fatalf("op %d: FreeVec(%v)[%d] = %d, Free %d", op, k, off+i, vec[off+i], f)
				}
			}
			off += len(rack.BoxesOf(k))
			if got := rack.Free(k); got != total {
				t.Fatalf("op %d: rack %d Free(%v) = %d, scan %d", op, rack.Index(), k, got, total)
			}
			if gm, gb := rack.MaxFree(k); gm != max || gb != best {
				t.Fatalf("op %d: rack %d MaxFree(%v) = (%d, %v), scan (%d, %v)",
					op, rack.Index(), k, gm, gb, max, best)
			}
			if firstFit < 0 && max >= need {
				firstFit = rack.Index()
			}
		}
		if got := c.NextRackWith(k, need, 0); got != firstFit {
			t.Fatalf("op %d: NextRackWith(%v, %d) = %d, scan %d", op, k, need, got, firstFit)
		}
	}
	// NextRackFits' leapfrog against a linear FitsWholeVM scan (the rack
	// maxima it reads were verified against the box scan above).
	req := units.Vec(need, need, need)
	want := -1
	for _, rack := range c.Racks() {
		if rack.FitsWholeVM(req) {
			want = rack.Index()
			break
		}
	}
	if got := c.NextRackFits(req, 0); got != want {
		t.Fatalf("op %d: NextRackFits(%v, 0) = %d, scan %d", op, req, got, want)
	}
}
