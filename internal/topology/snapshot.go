package topology

import (
	"fmt"

	"risa/internal/units"
)

// RestorePlacement re-carves an exact recorded brick-share pattern out of
// box b, updating the box, rack-index and cluster totals the same way
// AllocateInto does. It is the replay primitive snapshot restoration is
// built on: Box.allocate is first-fit across bricks and therefore cannot
// reproduce an arbitrary historical share pattern, while RestorePlacement
// reproduces the bricks bit-for-bit. The box must be healthy — restore
// replays placements onto a pristine cluster first and applies failures
// afterwards. On error the box is left unchanged.
func (c *Cluster) RestorePlacement(b *Box, shares []BrickShare) (Placement, error) {
	if b.failed {
		return Placement{}, fmt.Errorf("topology: cannot restore placement onto failed %v", b)
	}
	if len(shares) == 0 {
		return Placement{}, fmt.Errorf("topology: cannot restore an empty placement onto %v", b)
	}
	var total units.Amount
	for n, s := range shares {
		if s.Brick < 0 || s.Brick >= len(b.bricks) {
			rollbackShares(b, shares[:n])
			return Placement{}, fmt.Errorf("topology: restored share names brick %d of %v (has %d)", s.Brick, b, len(b.bricks))
		}
		br := &b.bricks[s.Brick]
		if s.Amount <= 0 || s.Amount > br.free {
			rollbackShares(b, shares[:n])
			return Placement{}, fmt.Errorf("topology: restored share of %d does not fit brick %d of %v (free %d)",
				s.Amount, s.Brick, b, br.free)
		}
		br.free -= s.Amount
		total += s.Amount
	}
	b.free -= total
	c.free[b.kind] -= total
	c.syncVis(b)
	c.racks[b.rack].noteDecrease(b, total)
	p := Placement{Box: b, Total: total}
	p.Shares = append(p.Shares, shares...)
	return p, nil
}

// rollbackShares undoes the brick carving of a partially applied restore.
// Only bricks were touched so far; box and cluster totals are updated
// once at the end of RestorePlacement.
func rollbackShares(b *Box, applied []BrickShare) {
	for _, s := range applied {
		b.bricks[s.Brick].free += s.Amount
	}
}

// FailedBoxes returns the rack-major global indices (positions in Boxes)
// of every currently failed box, for snapshot capture.
func (c *Cluster) FailedBoxes() []int {
	var out []int
	for i, b := range c.boxes {
		if b.failed {
			out = append(out, i)
		}
	}
	return out
}
