package topology

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"risa/internal/units"
)

func mustCluster(t testing.TB, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Racks != 18 {
		t.Errorf("cluster size = %d racks, want 18", cfg.Racks)
	}
	if cfg.BoxesPerRack() != 6 {
		t.Errorf("rack size = %d boxes, want 6", cfg.BoxesPerRack())
	}
	if cfg.BricksPerBox != 8 {
		t.Errorf("box size = %d bricks, want 8", cfg.BricksPerBox)
	}
	if cfg.UnitsPerBrick != 16 {
		t.Errorf("brick size = %d units, want 16", cfg.UnitsPerBrick)
	}
	// Derived capacities: 8 bricks x 16 units = 128 units per box.
	if got := cfg.BoxCapacity(units.CPU); got != 512 {
		t.Errorf("CPU box = %d cores, want 512", got)
	}
	if got := cfg.BoxCapacity(units.RAM); got != 512 {
		t.Errorf("RAM box = %d GB, want 512", got)
	}
	if got := cfg.BoxCapacity(units.Storage); got != 8192 {
		t.Errorf("STO box = %d GB, want 8192", got)
	}
	if got := cfg.ClusterCapacity(units.CPU); got != 512*2*18 {
		t.Errorf("cluster CPU = %d cores, want %d", got, 512*2*18)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Racks = 0 },
		func(c *Config) { c.CPUBoxes = 0 },
		func(c *Config) { c.RAMBoxes = -1 },
		func(c *Config) { c.STOBoxes = 0 },
		func(c *Config) { c.BricksPerBox = 0 },
		func(c *Config) { c.UnitsPerBrick = 0 },
		func(c *Config) { c.Units.CPUUnitCores = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New should reject mutation %d", i)
		}
	}
}

func TestValidateRejectsKindsWithZeroBoxesClusterWide(t *testing.T) {
	// A kind with zero boxes cluster-wide makes every workload
	// unschedulable; the scale sweep's config construction makes this an
	// easy mistake, so Validate must name the offending kind.
	for _, k := range units.Resources() {
		cfg := DefaultConfig()
		switch k {
		case units.CPU:
			cfg.CPUBoxes = 0
		case units.RAM:
			cfg.RAMBoxes = 0
		case units.Storage:
			cfg.STOBoxes = 0
		}
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("%v: config with zero boxes cluster-wide validated", k)
		}
		if want := fmt.Sprintf("%v has no boxes cluster-wide", k); !strings.Contains(err.Error(), want) {
			t.Errorf("%v: error %q does not name the kind (want substring %q)", k, err, want)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%v: New accepted a kind with zero boxes cluster-wide", k)
		}
	}
}

func TestBoxKindCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BoxKindCount(invalid) should panic")
		}
	}()
	DefaultConfig().BoxKindCount(units.Resource(9))
}

func TestNewLaysOutKindMajor(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	if c.NumRacks() != 18 {
		t.Fatalf("racks = %d", c.NumRacks())
	}
	rack := c.Rack(0)
	wantKinds := []units.Resource{
		units.CPU, units.CPU, units.RAM, units.RAM, units.Storage, units.Storage,
	}
	boxes := rack.Boxes()
	if len(boxes) != len(wantKinds) {
		t.Fatalf("rack has %d boxes, want %d", len(boxes), len(wantKinds))
	}
	for i, b := range boxes {
		if b.Kind() != wantKinds[i] {
			t.Errorf("box %d kind = %v, want %v", i, b.Kind(), wantKinds[i])
		}
		if b.Index() != i {
			t.Errorf("box %d reports index %d", i, b.Index())
		}
		if b.Rack() != 0 {
			t.Errorf("box %d reports rack %d", i, b.Rack())
		}
	}
	if got := len(rack.BoxesOf(units.CPU)); got != 2 {
		t.Errorf("CPU boxes per rack = %d, want 2", got)
	}
	for ki, b := range rack.BoxesOf(units.RAM) {
		if b.KindIndex() != ki {
			t.Errorf("RAM box kind index = %d, want %d", b.KindIndex(), ki)
		}
	}
	if got := len(c.Boxes()); got != 18*6 {
		t.Errorf("cluster has %d boxes, want %d", got, 18*6)
	}
}

func TestAllocateReleaseRoundTrip(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	box := c.Rack(3).BoxesOf(units.RAM)[1]
	before := box.Free()
	p, err := c.Allocate(box, 100)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if box.Free() != before-100 {
		t.Errorf("box free = %d, want %d", box.Free(), before-100)
	}
	if c.TotalFree(units.RAM) != c.TotalCapacity(units.RAM)-100 {
		t.Errorf("cluster free not decremented")
	}
	if box.Used() != 100 {
		t.Errorf("Used = %d, want 100", box.Used())
	}
	c.Release(p)
	if box.Free() != before {
		t.Errorf("release did not restore free: %d vs %d", box.Free(), before)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestAllocateSpansBricksFirstFit(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	box := c.Rack(0).BoxesOf(units.CPU)[0]
	// One brick holds 16 units x 4 cores = 64 cores. Allocating 100 cores
	// must span bricks 0 and 1.
	p, err := c.Allocate(box, 100)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if len(p.Shares) != 2 {
		t.Fatalf("placement spans %d bricks, want 2 (%v)", len(p.Shares), p.Shares)
	}
	if p.Shares[0] != (BrickShare{Brick: 0, Amount: 64}) {
		t.Errorf("first share = %+v", p.Shares[0])
	}
	if p.Shares[1] != (BrickShare{Brick: 1, Amount: 36}) {
		t.Errorf("second share = %+v", p.Shares[1])
	}
	if box.Brick(0).Free() != 0 || box.Brick(1).Free() != 28 {
		t.Errorf("brick frees = %d,%d; want 0,28", box.Brick(0).Free(), box.Brick(1).Free())
	}
	if box.Brick(0).Capacity() != 64 {
		t.Errorf("brick capacity = %d, want 64", box.Brick(0).Capacity())
	}
}

func TestAllocateErrors(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	box := c.Rack(0).BoxesOf(units.CPU)[0]
	if _, err := c.Allocate(box, 0); err == nil {
		t.Error("zero allocation should fail")
	}
	if _, err := c.Allocate(box, -4); err == nil {
		t.Error("negative allocation should fail")
	}
	if _, err := c.Allocate(box, box.Capacity()+1); err == nil {
		t.Error("over-capacity allocation should fail")
	}
	// Failures must not disturb state.
	if box.Free() != box.Capacity() {
		t.Errorf("failed allocations changed free to %d", box.Free())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestReleaseZeroPlacementIsNoop(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	c.Release(Placement{})
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	box := c.Rack(0).BoxesOf(units.CPU)[0]
	p, err := c.Allocate(box, box.Capacity())
	if err != nil {
		t.Fatal(err)
	}
	c.Release(p)
	defer func() {
		if recover() == nil {
			t.Error("double release should panic")
		}
	}()
	c.Release(p)
}

func TestReleaseWrongBoxPanics(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	boxA := c.Rack(0).BoxesOf(units.CPU)[0]
	boxB := c.Rack(0).BoxesOf(units.CPU)[1]
	p, err := c.Allocate(boxA, 8)
	if err != nil {
		t.Fatal(err)
	}
	p.Box = boxB // corrupt
	defer func() {
		if recover() == nil {
			t.Error("cross-box release should panic")
		}
	}()
	boxA.release(p)
}

func TestMaxFreeAndFitsWholeVM(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	rack := c.Rack(0)
	max, best := rack.MaxFree(units.CPU)
	if max != 512 || best == nil {
		t.Fatalf("MaxFree = %d,%v", max, best)
	}
	// Consume most of one CPU box; max free should follow the other box.
	if _, err := c.Allocate(rack.BoxesOf(units.CPU)[0], 500); err != nil {
		t.Fatal(err)
	}
	max, best = rack.MaxFree(units.CPU)
	if max != 512 || best.KindIndex() != 1 {
		t.Errorf("MaxFree after fill = %d, box %v", max, best)
	}
	if !rack.FitsWholeVM(units.Vec(512, 512, 8192)) {
		t.Error("rack should fit a full-box VM")
	}
	if rack.FitsWholeVM(units.Vec(513, 1, 1)) {
		t.Error("rack cannot fit 513 cores in one box")
	}
	// Zero components are ignored.
	if !rack.FitsWholeVM(units.Vec(0, 0, 0)) {
		t.Error("zero request fits anywhere")
	}
}

func TestRackFree(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	rack := c.Rack(2)
	if got := rack.Free(units.Storage); got != 2*8192 {
		t.Errorf("rack storage free = %d, want %d", got, 2*8192)
	}
	if _, err := c.Allocate(rack.BoxesOf(units.Storage)[0], 128); err != nil {
		t.Fatal(err)
	}
	if got := rack.Free(units.Storage); got != 2*8192-128 {
		t.Errorf("rack storage free = %d after alloc", got)
	}
}

func TestUtilization(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	if u := c.Utilization(units.CPU); u != 0 {
		t.Errorf("fresh utilization = %v", u)
	}
	total := c.TotalCapacity(units.CPU)
	if _, err := c.Allocate(c.Rack(0).BoxesOf(units.CPU)[0], 512); err != nil {
		t.Fatal(err)
	}
	want := 512.0 / float64(total)
	if u := c.Utilization(units.CPU); u != want {
		t.Errorf("utilization = %v, want %v", u, want)
	}
}

func TestContentionRatio(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	free := float64(c.TotalFree(units.RAM))
	if got := c.ContentionRatio(units.RAM, 16); got != 16/free {
		t.Errorf("CR = %v, want %v", got, 16/free)
	}
	if got := c.ContentionRatio(units.RAM, 0); got != 0 {
		t.Errorf("CR of zero request = %v", got)
	}
	// Exhaust RAM: ratio must become enormous but finite.
	for _, rack := range c.Racks() {
		for _, b := range rack.BoxesOf(units.RAM) {
			if _, err := c.Allocate(b, b.Free()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := c.ContentionRatio(units.RAM, 1); got < 1e8 {
		t.Errorf("CR with no free RAM = %v, want huge", got)
	}
}

func TestPreoccupy(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	if _, err := c.Preoccupy(0, 0, units.CPU, 512); err != nil {
		t.Fatalf("Preoccupy: %v", err)
	}
	if got, _ := c.Rack(0).MaxFree(units.CPU); got != 512 {
		t.Errorf("other CPU box max free = %d", got)
	}
	if c.Rack(0).BoxesOf(units.CPU)[0].Free() != 0 {
		t.Error("preoccupied box should be full")
	}
	if _, err := c.Preoccupy(99, 0, units.CPU, 1); err == nil {
		t.Error("bad rack should fail")
	}
	if _, err := c.Preoccupy(0, 9, units.CPU, 1); err == nil {
		t.Error("bad box index should fail")
	}
}

// Property: any sequence of random allocations and releases preserves all
// bookkeeping invariants, and releasing everything restores a pristine
// cluster.
func TestRandomAllocReleaseProperty(t *testing.T) {
	cfg := Config{
		Racks: 3, CPUBoxes: 2, RAMBoxes: 2, STOBoxes: 2,
		BricksPerBox: 4, UnitsPerBrick: 4, Units: units.DefaultConfig(),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := mustCluster(t, cfg)
		freshFree := c.free
		var live []Placement
		for step := 0; step < 200; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				c.Release(live[i])
				live = append(live[:i], live[i+1:]...)
			} else {
				box := c.boxes[rng.Intn(len(c.boxes))]
				amount := units.Amount(rng.Int63n(int64(box.Capacity())) + 1)
				if p, err := c.Allocate(box, amount); err == nil {
					live = append(live, p)
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
		}
		for _, p := range live {
			c.Release(p)
		}
		return c.free == freshFree && c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: an allocation that fails leaves every box untouched.
func TestFailedAllocationLeavesStateProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := mustCluster(t, DefaultConfig())
		box := c.boxes[rng.Intn(len(c.boxes))]
		// Fill the box almost completely, then over-ask.
		if _, err := c.Allocate(box, box.Capacity()-1); err != nil {
			return false
		}
		before := box.Free()
		if _, err := c.Allocate(box, 2); err == nil {
			return false
		}
		return box.Free() == before && c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestToyExampleConfig(t *testing.T) {
	// The paper's toy examples (Table 3) use boxes of 64 cores, 64 GB RAM
	// and 512 GB storage. That is representable with 4 bricks x 4 units
	// and a 32 GB storage unit.
	cfg := Config{
		Racks: 2, CPUBoxes: 2, RAMBoxes: 2, STOBoxes: 2,
		BricksPerBox: 4, UnitsPerBrick: 4,
		Units: units.Config{CPUUnitCores: 4, RAMUnitGB: 4, STOUnitGB: 32},
	}
	if got := cfg.BoxCapacity(units.CPU); got != 64 {
		t.Errorf("toy CPU box = %d cores, want 64", got)
	}
	if got := cfg.BoxCapacity(units.RAM); got != 64 {
		t.Errorf("toy RAM box = %d GB, want 64", got)
	}
	if got := cfg.BoxCapacity(units.Storage); got != 512 {
		t.Errorf("toy STO box = %d GB, want 512", got)
	}
}

func TestBoxString(t *testing.T) {
	c := mustCluster(t, DefaultConfig())
	got := c.Rack(1).BoxesOf(units.RAM)[0].String()
	if got != "RAM-box r1/b2" {
		t.Errorf("String = %q", got)
	}
}
