package topology

import "risa/internal/units"

// maxTree is a flat max-segment tree over rack indices. For one resource
// kind it stores, per rack, an UPPER BOUND on that rack's cached MaxFree;
// internal nodes hold the maximum of their children. It answers the
// cluster-level candidate query every scheduler's rack scan reduces to —
// "smallest rack index ≥ from whose best box could hold `need`" — in
// O(log racks) per candidate instead of a linear sweep over all racks.
//
// The bound is deliberately lazy, mirroring the rack-level kindIndex:
// decreases (allocate, fail) can only lower a rack's true maximum, so the
// stale value already stored is a valid upper bound and the tree is not
// touched at all. Increases (release, restore) raise the bound — exactly
// when the rack's own index is clean, conservatively by the grown box's
// free amount when it is dirty. Queries self-repair: a candidate leaf is
// verified against the rack's true MaxFree (which may trigger the rack's
// own O(boxes) rescan) and tightened to it, charging the repair to the
// mutation that staled it. The tree therefore never claims a qualifying
// rack does not exist, and never yields a rack without verifying it.
type maxTree struct {
	n    int            // number of racks (leaves in use)
	size int            // power-of-two leaf span
	node []units.Amount // 1-based heap layout; leaves at node[size+i]
}

// unusedLeaf marks padding leaves past the last rack; it is below every
// legal bound (free amounts are ≥ 0) so padding never qualifies.
const unusedLeaf = units.Amount(-1)

// newMaxTree returns a tree for n racks with every bound set to unusedLeaf;
// callers seed real leaves with set.
func newMaxTree(n int) maxTree {
	size := 1
	for size < n {
		size <<= 1
	}
	t := maxTree{n: n, size: size, node: make([]units.Amount, 2*size)}
	for i := range t.node {
		t.node[i] = unusedLeaf
	}
	return t
}

// leaf returns rack i's current bound.
func (t *maxTree) leaf(i int) units.Amount { return t.node[t.size+i] }

// set stores rack i's bound exactly and fixes the ancestor maxima.
func (t *maxTree) set(i int, v units.Amount) {
	x := t.size + i
	if t.node[x] == v {
		return
	}
	t.node[x] = v
	for x >>= 1; x >= 1; x >>= 1 {
		m := t.node[2*x]
		if r := t.node[2*x+1]; r > m {
			m = r
		}
		if t.node[x] == m {
			break
		}
		t.node[x] = m
	}
}

// raise lifts rack i's bound to at least v.
func (t *maxTree) raise(i int, v units.Amount) {
	if v > t.node[t.size+i] {
		t.set(i, v)
	}
}

// firstAtLeast returns the smallest rack index ≥ from whose bound is ≥
// need, or -1. Candidates still need verification against the rack's true
// MaxFree — see Cluster.NextRackWith.
func (t *maxTree) firstAtLeast(from int, need units.Amount) int {
	if from < 0 {
		from = 0
	}
	if from >= t.n {
		return -1
	}
	return t.search(1, 0, t.size-1, from, need)
}

// search walks the subtree rooted at x (covering leaves lo..hi) left to
// right, pruning subtrees wholly before from or whose maximum bound is
// below need.
func (t *maxTree) search(x, lo, hi, from int, need units.Amount) int {
	if hi < from || t.node[x] < need {
		return -1
	}
	if lo == hi {
		return lo
	}
	mid := (lo + hi) / 2
	if i := t.search(2*x, lo, mid, from, need); i >= 0 {
		return i
	}
	return t.search(2*x+1, mid+1, hi, from, need)
}

// initCandidateIndex seeds the per-kind trees from the freshly built
// racks' (clean, exact) kind indexes.
func (c *Cluster) initCandidateIndex() {
	for _, k := range units.Resources() {
		c.cidx[k] = newMaxTree(len(c.racks))
		for i, rack := range c.racks {
			c.cidx[k].set(i, rack.idx[k].max)
		}
	}
}

// noteRackIncrease propagates a box's grown free amount into both the
// rack-level index and the cluster-level candidate tree. When the rack's
// index is clean its maximum is exact and the tree bound is tightened to
// it; when dirty, the true maximum is unknown but can only have grown to
// the raised box's free amount, so the bound is lifted to cover it.
// Decreases need no counterpart: a shrinking maximum leaves the stored
// bound a valid upper bound, and the next query tightens it lazily.
func (c *Cluster) noteRackIncrease(b *Box, delta units.Amount) {
	rack := c.racks[b.rack]
	rack.noteIncrease(b, delta)
	ix := &rack.idx[b.kind]
	if ix.dirty {
		c.cidx[b.kind].raise(b.rack, b.Free())
	} else {
		c.cidx[b.kind].set(b.rack, ix.max)
	}
}

// NextRackWith returns the smallest rack index ≥ from whose MaxFree(k) is
// at least need, or -1 when no such rack exists. It is the cluster-level
// candidate query behind RISA's SUPER_RACK and NULB/NALB's rack scans:
// candidates come from the per-kind tree in ascending rack order — the
// exact order the pre-index linear sweeps used — and every candidate is
// verified against (and the tree tightened to) the rack's true maximum, so
// the answer is identical to scanning all racks. Amortized cost is
// O(log racks) per returned rack.
func (c *Cluster) NextRackWith(k units.Resource, need units.Amount, from int) int {
	t := &c.cidx[k]
	// Fast path: when candidates are dense (lightly loaded clusters, small
	// needs) the very next rack usually qualifies; one leaf probe then
	// costs what one iteration of the pre-index linear scan did, and the
	// logarithmic descent is reserved for skipping sparse regions.
	if from >= 0 && from < t.n && t.leaf(from) >= need {
		max, _ := c.racks[from].MaxFree(k)
		if max >= need {
			return from
		}
		t.set(from, max)
		from++
	}
	for {
		i := t.firstAtLeast(from, need)
		if i < 0 {
			return -1
		}
		max, _ := c.racks[i].MaxFree(k)
		if max != t.leaf(i) {
			t.set(i, max)
		}
		if max >= need {
			return i
		}
		from = i + 1
	}
}

// NextRackFits returns the smallest rack index ≥ from that FitsWholeVM(req)
// — the cluster-level form of RISA's INTRA_RACK_POOL test — or -1. It
// leapfrogs the per-kind candidate sequences: the current candidate is
// advanced to each requested kind's next qualifying rack until one pass
// leaves it unmoved, at which point every kind qualifies. Resources with a
// zero request never constrain, matching FitsWholeVM.
func (c *Cluster) NextRackFits(req units.Vector, from int) int {
	i := from
	if i < 0 {
		i = 0
	}
	for i < len(c.racks) {
		advanced := false
		for _, k := range units.Resources() {
			if req[k] == 0 {
				continue
			}
			j := c.NextRackWith(k, req[k], i)
			if j < 0 {
				return -1
			}
			if j > i {
				i = j
				advanced = true
			}
		}
		if !advanced {
			return i
		}
	}
	return -1
}
