package topology

import (
	"fmt"

	"risa/internal/units"
)

// maxTree is a flat max-tree over rack indices. For one resource kind it
// stores, per rack, an UPPER BOUND on that rack's cached MaxFree;
// internal nodes hold the maximum of their children. It answers the
// cluster-level candidate query every scheduler's rack scan reduces to —
// "smallest rack index ≥ from whose best box could hold `need`" — in
// O(log racks) per candidate instead of a linear sweep over all racks.
//
// Layout: an 8-ary tree stored level by level, leaves in levels[0], each
// internal node covering a contiguous group of 8 children. Eight 8-byte
// amounts are exactly one 64-byte cache line, so every descent step reads
// one line of children instead of the two scattered probes per level a
// binary heap costs; at 16k racks that is 5 level hops instead of 14.
// Every level is padded to a multiple of 8 with unusedLeaf (strictly
// below any legal bound) so child groups are always full; building stops
// once a level fits in one group, and queries start by scanning that top
// group. The query/update semantics are identical to the binary
// segment-tree this layout replaced — same candidates in the same order —
// so placements cannot change.
//
// The bound is deliberately lazy, mirroring the rack-level kindIndex:
// decreases (allocate, fail) can only lower a rack's true maximum, so the
// stale value already stored is a valid upper bound and the tree is not
// touched at all. Increases (release, restore) raise the bound — exactly
// when the rack's own index is clean, conservatively by the grown box's
// free amount when it is dirty. Queries self-repair: a candidate leaf is
// verified against the rack's true MaxFree (which may trigger the rack's
// own O(boxes) rescan) and tightened to it, charging the repair to the
// mutation that staled it. The tree therefore never claims a qualifying
// rack does not exist, and never yields a rack without verifying it.
type maxTree struct {
	n      int              // number of racks (leaves in use)
	levels [][]units.Amount // levels[0] = leaves; each padded to a multiple of fanout
}

// fanout is the tree arity: 8 children × 8-byte amounts = one 64-byte
// cache line per child group.
const fanout = 8

// unusedLeaf marks padding slots past the last real element of a level;
// it is below every legal bound (free amounts are ≥ 0) so padding never
// qualifies.
const unusedLeaf = units.Amount(-1)

// padded returns n rounded up to a multiple of fanout.
func padded(n int) int { return (n + fanout - 1) / fanout * fanout }

// newMaxTree returns a tree for n racks with every bound set to
// unusedLeaf; callers seed real leaves with set.
func newMaxTree(n int) maxTree {
	t := maxTree{n: n}
	for w := padded(n); ; w = padded(w / fanout) {
		level := make([]units.Amount, w)
		for i := range level {
			level[i] = unusedLeaf
		}
		t.levels = append(t.levels, level)
		if w <= fanout {
			return t
		}
	}
}

// leaf returns rack i's current bound.
func (t *maxTree) leaf(i int) units.Amount { return t.levels[0][i] }

// set stores rack i's bound exactly and fixes the ancestor maxima,
// stopping at the first ancestor whose stored maximum is already right.
func (t *maxTree) set(i int, v units.Amount) {
	if t.levels[0][i] == v {
		return
	}
	t.levels[0][i] = v
	for j := 0; j+1 < len(t.levels); j++ {
		g := i / fanout
		m := unusedLeaf
		for _, c := range t.levels[j][g*fanout : g*fanout+fanout] {
			if c > m {
				m = c
			}
		}
		if t.levels[j+1][g] == m {
			return
		}
		t.levels[j+1][g] = m
		i = g
	}
}

// raise lifts rack i's bound to at least v.
func (t *maxTree) raise(i int, v units.Amount) {
	if v > t.levels[0][i] {
		t.set(i, v)
	}
}

// firstAtLeast returns the smallest rack index ≥ from whose bound is ≥
// need, or -1. Candidates still need verification against the rack's true
// MaxFree — see Cluster.NextRackWith.
func (t *maxTree) firstAtLeast(from int, need units.Amount) int {
	if from < 0 {
		from = 0
	}
	if from >= t.n {
		return -1
	}
	top := len(t.levels) - 1
	for i := range t.levels[top] {
		if r := t.search(top, i, from, need); r >= 0 {
			return r
		}
	}
	return -1
}

// search walks the subtree rooted at element i of level j left to right,
// pruning subtrees wholly before from or whose maximum bound is below
// need. An element at level j covers 8^j consecutive leaves.
func (t *maxTree) search(j, i, from int, need units.Amount) int {
	// Last leaf covered by this element: (i+1)*8^j - 1.
	if (i+1)<<(3*uint(j))-1 < from || t.levels[j][i] < need {
		return -1
	}
	if j == 0 {
		return i
	}
	for c := i * fanout; c < i*fanout+fanout; c++ {
		if r := t.search(j-1, c, from, need); r >= 0 {
			return r
		}
	}
	return -1
}

// checkTree verifies the tree's structural invariants for tests: every
// internal node equals the maximum of its child group, and every padding
// slot still holds unusedLeaf.
func (t *maxTree) checkTree() error {
	for j := 0; j+1 < len(t.levels); j++ {
		lower, upper := t.levels[j], t.levels[j+1]
		for g := 0; g < len(lower)/fanout; g++ {
			m := unusedLeaf
			for _, c := range lower[g*fanout : g*fanout+fanout] {
				if c > m {
					m = c
				}
			}
			if upper[g] != m {
				return fmt.Errorf("level %d node %d = %d, children max %d", j+1, g, upper[g], m)
			}
		}
		for g := len(lower) / fanout; g < len(upper); g++ {
			if upper[g] != unusedLeaf {
				return fmt.Errorf("level %d padding node %d = %d", j+1, g, upper[g])
			}
		}
	}
	for i := t.n; i < len(t.levels[0]); i++ {
		if t.levels[0][i] != unusedLeaf {
			return fmt.Errorf("padding leaf %d = %d", i, t.levels[0][i])
		}
	}
	return nil
}

// initCandidateIndex seeds the per-kind trees from the freshly built
// racks' (clean, exact) kind indexes.
func (c *Cluster) initCandidateIndex() {
	for _, k := range units.Resources() {
		c.cidx[k] = newMaxTree(len(c.racks))
		for i, rack := range c.racks {
			c.cidx[k].set(i, rack.idx[k].max)
		}
	}
}

// noteRackIncrease propagates a box's grown free amount into both the
// rack-level index and the cluster-level candidate tree. When the rack's
// index is clean its maximum is exact and the tree bound is tightened to
// it; when dirty, the true maximum is unknown but can only have grown to
// the raised box's free amount, so the bound is lifted to cover it.
// Decreases need no counterpart: a shrinking maximum leaves the stored
// bound a valid upper bound, and the next query tightens it lazily.
func (c *Cluster) noteRackIncrease(b *Box, delta units.Amount) {
	rack := c.racks[b.rack]
	rack.noteIncrease(b, delta)
	ix := &rack.idx[b.kind]
	if ix.dirty {
		c.cidx[b.kind].raise(b.rack, b.Free())
	} else {
		c.cidx[b.kind].set(b.rack, ix.max)
	}
}

// NextRackWith returns the smallest rack index ≥ from whose MaxFree(k) is
// at least need, or -1 when no such rack exists. It is the cluster-level
// candidate query behind RISA's SUPER_RACK and NULB/NALB's rack scans:
// candidates come from the per-kind tree in ascending rack order — the
// exact order the pre-index linear sweeps used — and every candidate is
// verified against (and the tree tightened to) the rack's true maximum, so
// the answer is identical to scanning all racks. Amortized cost is
// O(log racks) per returned rack.
func (c *Cluster) NextRackWith(k units.Resource, need units.Amount, from int) int {
	t := &c.cidx[k]
	// Fast path: when candidates are dense (lightly loaded clusters, small
	// needs) the very next rack usually qualifies; one leaf probe then
	// costs what one iteration of the pre-index linear scan did, and the
	// logarithmic descent is reserved for skipping sparse regions.
	if from >= 0 && from < t.n && t.leaf(from) >= need {
		max, _ := c.racks[from].MaxFree(k)
		if max >= need {
			return from
		}
		t.set(from, max)
		from++
	}
	for {
		i := t.firstAtLeast(from, need)
		if i < 0 {
			return -1
		}
		max, _ := c.racks[i].MaxFree(k)
		if max != t.leaf(i) {
			t.set(i, max)
		}
		if max >= need {
			return i
		}
		from = i + 1
	}
}

// NextRackFits returns the smallest rack index ≥ from that FitsWholeVM(req)
// — the cluster-level form of RISA's INTRA_RACK_POOL test — or -1. It
// leapfrogs the per-kind candidate sequences: the current candidate is
// advanced to each requested kind's next qualifying rack until one pass
// leaves it unmoved, at which point every kind qualifies. Resources with a
// zero request never constrain, matching FitsWholeVM.
func (c *Cluster) NextRackFits(req units.Vector, from int) int {
	i := from
	if i < 0 {
		i = 0
	}
	for i < len(c.racks) {
		advanced := false
		for _, k := range units.Resources() {
			if req[k] == 0 {
				continue
			}
			j := c.NextRackWith(k, req[k], i)
			if j < 0 {
				return -1
			}
			if j > i {
				i = j
				advanced = true
			}
		}
		if !advanced {
			return i
		}
	}
	return -1
}
