package topology_test

import (
	"fmt"

	"risa/internal/topology"
	"risa/internal/units"
)

func ExampleNew() {
	cl, err := topology.New(topology.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println("racks:", cl.NumRacks())
	fmt.Println("boxes:", len(cl.Boxes()))
	fmt.Println("CPU capacity:", cl.TotalCapacity(units.CPU), "cores")
	fmt.Println("STO capacity:", cl.TotalCapacity(units.Storage), "GB")
	// Output:
	// racks: 18
	// boxes: 108
	// CPU capacity: 18432 cores
	// STO capacity: 294912 GB
}

func ExampleCluster_Allocate() {
	cl, err := topology.New(topology.DefaultConfig())
	if err != nil {
		panic(err)
	}
	box := cl.Rack(0).BoxesOf(units.RAM)[0]
	p, err := cl.Allocate(box, 100)
	if err != nil {
		panic(err)
	}
	fmt.Println("allocated:", p.Total, "GB across", len(p.Shares), "bricks")
	fmt.Println("box free:", box.Free(), "GB")
	cl.Release(p)
	fmt.Println("after release:", box.Free(), "GB")
	// Output:
	// allocated: 100 GB across 2 bricks
	// box free: 412 GB
	// after release: 512 GB
}

func ExampleRack_FitsWholeVM() {
	cl, err := topology.New(topology.DefaultConfig())
	if err != nil {
		panic(err)
	}
	rack := cl.Rack(0)
	fmt.Println(rack.FitsWholeVM(units.Vec(8, 16, 128)))
	fmt.Println(rack.FitsWholeVM(units.Vec(513, 16, 128))) // > one box
	// Output:
	// true
	// false
}
