// Package topology models the disaggregated datacenter of the RISA paper:
// a cluster of racks, each rack holding boxes that each contain a single
// resource kind (CPU, RAM or storage), each box divided into bricks that
// hold a fixed number of allocation units.
//
// The package owns all compute-capacity bookkeeping: allocating a VM's
// share of a resource inside a box (possibly spanning bricks) and releasing
// it when the VM departs. Network capacity lives in package network.
package topology

import (
	"fmt"

	"risa/internal/units"
)

// Config describes the regular cluster architecture of Table 1 in the
// paper: 18 racks, 6 boxes per rack, 8 bricks per box, 16 units per brick.
// The paper does not fix the resource mix of the 6 boxes; we default to
// 2 CPU + 2 RAM + 2 storage per rack (see DESIGN.md §3 for the
// cross-check against the paper's reported utilizations).
type Config struct {
	Racks         int   // number of racks in the cluster
	CPUBoxes      int   // CPU boxes per rack
	RAMBoxes      int   // RAM boxes per rack
	STOBoxes      int   // storage boxes per rack
	BricksPerBox  int   // bricks in every box
	UnitsPerBrick int64 // allocation units per brick
	Units         units.Config
}

// DefaultConfig returns the Table 1 architecture: an 18-rack cluster with
// 6 boxes per rack (2 of each kind), 8 bricks per box and 16 units per
// brick, using the default unit sizes.
func DefaultConfig() Config {
	return Config{
		Racks:         18,
		CPUBoxes:      2,
		RAMBoxes:      2,
		STOBoxes:      2,
		BricksPerBox:  8,
		UnitsPerBrick: 16,
		Units:         units.DefaultConfig(),
	}
}

// Validate checks structural sanity of the configuration.
func (c Config) Validate() error {
	if c.Racks <= 0 {
		return fmt.Errorf("topology: need at least one rack, got %d", c.Racks)
	}
	if c.CPUBoxes < 0 || c.RAMBoxes < 0 || c.STOBoxes < 0 {
		return fmt.Errorf("topology: negative box counts (cpu=%d ram=%d sto=%d)",
			c.CPUBoxes, c.RAMBoxes, c.STOBoxes)
	}
	// Every resource kind must exist somewhere in the cluster: a VM always
	// requests storage (and usually all three kinds), so a kind with zero
	// boxes cluster-wide makes every workload unschedulable — easy to
	// construct by accident when sweeping rack counts and box mixes.
	for _, k := range units.Resources() {
		if c.BoxKindCount(k)*c.Racks <= 0 {
			return fmt.Errorf("topology: %v has no boxes cluster-wide (%d per rack × %d racks)",
				k, c.BoxKindCount(k), c.Racks)
		}
	}
	if c.BricksPerBox <= 0 {
		return fmt.Errorf("topology: bricks per box must be positive, got %d", c.BricksPerBox)
	}
	if c.UnitsPerBrick <= 0 {
		return fmt.Errorf("topology: units per brick must be positive, got %d", c.UnitsPerBrick)
	}
	return c.Units.Validate()
}

// BoxesPerRack returns the total number of boxes in one rack.
func (c Config) BoxesPerRack() int { return c.CPUBoxes + c.RAMBoxes + c.STOBoxes }

// BoxKindCount returns how many boxes of kind r each rack holds.
func (c Config) BoxKindCount(r units.Resource) int {
	switch r {
	case units.CPU:
		return c.CPUBoxes
	case units.RAM:
		return c.RAMBoxes
	case units.Storage:
		return c.STOBoxes
	default:
		panic(fmt.Sprintf("topology: invalid resource %d", int(r)))
	}
}

// BrickCapacity returns the native amount one brick of kind r holds.
func (c Config) BrickCapacity(r units.Resource) units.Amount {
	return c.Units.AmountOfUnits(r, c.UnitsPerBrick)
}

// BoxCapacity returns the native amount one box of kind r holds.
func (c Config) BoxCapacity(r units.Resource) units.Amount {
	return c.BrickCapacity(r) * units.Amount(c.BricksPerBox)
}

// ClusterCapacity returns the total native amount of resource r in the
// whole cluster.
func (c Config) ClusterCapacity(r units.Resource) units.Amount {
	return c.BoxCapacity(r) * units.Amount(c.BoxKindCount(r)*c.Racks)
}
