package topology

import (
	"math/rand"
	"testing"

	"risa/internal/units"
)

// clusterOracle is an independent brute-force model of the cluster's
// free-capacity state: per box it tracks only (free, failed), never
// reading the Box counters or the vis vectors it is checked against. The
// box granularity is exact — allocate spreads across bricks first-fit, so
// it succeeds iff the box is healthy and holds the amount — which makes
// every query below derivable by a direct scan.
type clusterOracle struct {
	free   map[*Box]units.Amount
	failed map[*Box]bool
}

func newClusterOracle(c *Cluster) *clusterOracle {
	o := &clusterOracle{
		free:   make(map[*Box]units.Amount),
		failed: make(map[*Box]bool),
	}
	for _, b := range c.Boxes() {
		o.free[b] = b.Capacity()
	}
	return o
}

// visible is the amount a scheduler may still place on b: the unallocated
// amount, or zero while failed.
func (o *clusterOracle) visible(b *Box) units.Amount {
	if o.failed[b] {
		return 0
	}
	return o.free[b]
}

// canAllocate predicts whether Cluster.Allocate(b, amount) succeeds.
func (o *clusterOracle) canAllocate(b *Box, amount units.Amount) bool {
	return amount > 0 && !o.failed[b] && amount <= o.free[b]
}

func (o *clusterOracle) allocate(b *Box, amount units.Amount) { o.free[b] -= amount }
func (o *clusterOracle) release(p Placement)                  { o.free[p.Box] += p.Total }
func (o *clusterOracle) setFailed(b *Box, failed bool)        { o.failed[b] = failed }

// maxFree returns one rack's maximum visible free for kind k and the box
// holding it (first-in-kind-order among equals, MaxFree's tie-break).
func (o *clusterOracle) maxFree(rack *Rack, k units.Resource) (units.Amount, *Box) {
	var max units.Amount
	var best *Box
	for _, b := range rack.BoxesOf(k) {
		if f := o.visible(b); f > max {
			max, best = f, b
		}
	}
	return max, best
}

// check compares every SoA/index query surface against the model: the
// rack and cluster visible-free vectors element for element, the cached
// rack totals and maxima, and the two cluster-level candidate queries.
func (o *clusterOracle) check(t *testing.T, c *Cluster, op int, need units.Amount) {
	t.Helper()
	for _, k := range units.Resources() {
		vec := c.FreeVec(k)
		if want := c.NumRacks() * c.Config().BoxKindCount(k); len(vec) != want {
			t.Fatalf("op %d: FreeVec(%v) has %d entries, want %d", op, k, len(vec), want)
		}
		off := 0
		firstWith := -1
		for _, rack := range c.Racks() {
			rv := rack.FreeVecOf(k)
			var total units.Amount
			for i, b := range rack.BoxesOf(k) {
				f := o.visible(b)
				total += f
				if rv[i] != f {
					t.Fatalf("op %d: rack %d FreeVecOf(%v)[%d] = %d, oracle %d",
						op, rack.Index(), k, i, rv[i], f)
				}
				if vec[off+i] != f {
					t.Fatalf("op %d: FreeVec(%v)[%d] = %d, oracle %d", op, k, off+i, vec[off+i], f)
				}
			}
			off += len(rack.BoxesOf(k))
			if got := rack.Free(k); got != total {
				t.Fatalf("op %d: rack %d Free(%v) = %d, oracle %d", op, rack.Index(), k, got, total)
			}
			max, best := o.maxFree(rack, k)
			if gm, gb := rack.MaxFree(k); gm != max || gb != best {
				t.Fatalf("op %d: rack %d MaxFree(%v) = (%d, %v), oracle (%d, %v)",
					op, rack.Index(), k, gm, gb, max, best)
			}
			if firstWith < 0 && max >= need {
				firstWith = rack.Index()
			}
		}
		if got := c.NextRackWith(k, need, 0); got != firstWith {
			t.Fatalf("op %d: NextRackWith(%v, %d, 0) = %d, oracle %d", op, k, need, got, firstWith)
		}
	}
	// NextRackFits against a direct every-kind scan, for a request vector
	// demanding `need` of everything and for one with a zero component
	// (zero requests must not constrain).
	for _, req := range []units.Vector{
		units.Vec(need, need, need),
		units.Vec(0, need, need),
	} {
		fits := -1
		for _, rack := range c.Racks() {
			ok := true
			for _, k := range units.Resources() {
				if req[k] == 0 {
					continue
				}
				if max, _ := o.maxFree(rack, k); max < req[k] {
					ok = false
					break
				}
			}
			if ok {
				fits = rack.Index()
				break
			}
		}
		if got := c.NextRackFits(req, 0); got != fits {
			t.Fatalf("op %d: NextRackFits(%v, 0) = %d, oracle %d", op, req, got, fits)
		}
	}
}

// TestClusterAgainstOracle drives a small cluster through seeded random
// alloc/release/fail/heal sequences and checks every query surface
// against the independent model after each operation — the differential
// property pin behind the SoA layout: Free/MaxFree/FreeVec/FreeVecOf/
// NextRackWith/NextRackFits answer exactly as a scan of (capacity −
// allocated, failed) pairs says they must, no matter how lazily the
// index tiers repair themselves underneath.
func TestClusterAgainstOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42, 20260808} {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Racks = 4
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		o := newClusterOracle(c)
		boxes := c.Boxes()
		var live []Placement
		for op := 0; op < 400; op++ {
			b := boxes[rng.Intn(len(boxes))]
			switch rng.Intn(5) {
			case 0, 1: // allocate, biased so the cluster actually fills
				amount := units.Amount(rng.Int63n(int64(b.Capacity()))) + 1
				want := o.canAllocate(b, amount)
				p, err := c.Allocate(b, amount)
				if got := err == nil; got != want {
					t.Fatalf("seed %d op %d: Allocate(%v, %d) success = %v, oracle %v (err %v)",
						seed, op, b, amount, got, want, err)
				}
				if err == nil {
					o.allocate(b, amount)
					live = append(live, p)
				}
			case 2: // release a live placement (failed boxes included)
				if len(live) > 0 {
					j := rng.Intn(len(live))
					c.Release(live[j])
					o.release(live[j])
					live = append(live[:j], live[j+1:]...)
				}
			case 3:
				c.SetBoxFailed(b, true)
				o.setFailed(b, true)
			case 4:
				c.SetBoxFailed(b, false)
				o.setFailed(b, false)
			}
			if rng.Intn(16) == 0 {
				c.Settle() // exercise the eager-repair path mid-sequence
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
			o.check(t, c, op, units.Amount(rng.Int63n(int64(cfg.BoxCapacity(units.CPU))+8)))
		}
	}
}
