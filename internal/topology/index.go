package topology

import "risa/internal/units"

// kindIndex is the incremental free-capacity index a rack keeps for one
// resource kind. It caches the two aggregates every scheduler's hot path
// asks for — the rack's total free amount and the largest single-box free
// amount — so MaxFree, FitsWholeVM and Free are O(1) instead of scanning
// every box on every call.
//
// Maintenance is O(1) per mutation: increases (release, restore) can only
// raise the maximum, which is checked directly; decreases (allocate, fail)
// can only invalidate the maximum when they hit the current best box, in
// which case the index goes dirty and the next read pays one scan of the
// rack's same-kind boxes. The cached best box is always the earliest box
// attaining the maximum, exactly what a brute-force scan in index order
// returns, so the index is observationally identical to the pre-index
// code (index_test.go asserts this under random alloc/release/failure
// sequences).
type kindIndex struct {
	total units.Amount // sum of Free() over the rack's boxes of the kind
	max   units.Amount // largest Free() among those boxes (while !dirty)
	best  *Box         // earliest box attaining max; nil when max is 0
	dirty bool         // max/best must be recomputed on next read
}

// rescan rebuilds max/best from a brute-force scan in box-index order.
// The scan reads the rack's visible-free vector (vis[i] == boxes[i].Free()
// by the structure-of-arrays invariant) so it walks one contiguous amount
// slice instead of chasing the box pointers; the earliest strictly-greater
// argmax is the same either way.
func (ix *kindIndex) rescan(boxes []*Box, vis []units.Amount) {
	ix.max, ix.best = 0, nil
	for i, f := range vis {
		if f > ix.max {
			ix.max, ix.best = f, boxes[i]
		}
	}
	ix.dirty = false
}

// initIndex seeds every kind's index from the rack's freshly built boxes.
func (r *Rack) initIndex() {
	for _, k := range units.Resources() {
		ix := &r.idx[k]
		ix.total = 0
		for _, b := range r.byKind[k] {
			ix.total += b.Free()
		}
		ix.rescan(r.byKind[k], r.vis[k])
	}
}

// noteIncrease records that b's visible free amount grew by delta (release
// into a healthy box, or a failed box being restored). b.Free() must
// already reflect the change.
func (r *Rack) noteIncrease(b *Box, delta units.Amount) {
	r.gen++
	ix := &r.idx[b.kind]
	ix.total += delta
	if ix.dirty {
		return
	}
	f := b.Free()
	if f > ix.max || (f == ix.max && ix.best != nil && b.kindIx < ix.best.kindIx) {
		ix.max, ix.best = f, b
	}
}

// noteDecrease records that b's visible free amount shrank by delta
// (allocation, or the box failing). Only a shrink of the current best box
// can lower the maximum, so only that case marks the index dirty.
func (r *Rack) noteDecrease(b *Box, delta units.Amount) {
	r.gen++
	ix := &r.idx[b.kind]
	ix.total -= delta
	if b == ix.best {
		ix.dirty = true
	}
}
