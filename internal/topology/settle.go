package topology

import "risa/internal/units"

// Gen returns the rack's compute generation: a counter bumped by every
// mutation of the rack's visible free capacity (allocate, release, fail,
// repair). Optimistic schedulers record it when proposing a placement
// and compare it at commit time — an unchanged generation proves the
// rack's compute state is exactly as the proposal saw it (DESIGN.md
// §12). Generation maintenance is pure integer arithmetic, so the
// serial hot path stays allocation-free and bit-identical.
func (r *Rack) Gen() uint64 { return r.gen }

// RackGen returns rack i's compute generation (see Rack.Gen).
func (c *Cluster) RackGen(i int) uint64 { return c.racks[i].gen }

// Settle materializes every lazy index tier: dirty rack-level kind
// indexes are rescanned and the cluster-level candidate bounds
// tightened to the exact maxima. After Settle, MaxFree, FitsWholeVM,
// NextRackWith and NextRackFits are pure reads until the next mutation
// — the precondition for the concurrent propose phase, where multiple
// agents query the same cluster without synchronization (DESIGN.md
// §12). Cost is one dirty-flag sweep over racks×kinds plus a rescan
// per dirty index, charged once per propose round.
func (c *Cluster) Settle() {
	for i, rack := range c.racks {
		for _, k := range units.Resources() {
			ix := &rack.idx[k]
			if ix.dirty {
				ix.rescan(rack.byKind[k], rack.vis[k])
			}
			c.cidx[k].set(i, ix.max)
		}
	}
}
