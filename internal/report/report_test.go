package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"risa/internal/sim"
	"risa/internal/units"
)

func sampleResult() *sim.Result {
	r := &sim.Result{
		Algorithm:         "RISA",
		Workload:          "Azure-3000",
		Scheduled:         3000,
		Dropped:           0,
		InterRack:         0,
		InterRackPct:      0,
		AvgIntraUtil:      5.5,
		PeakIntraUtil:     8.3,
		MeanCPURAMLatency: 110 * time.Nanosecond,
		PeakPowerW:        3499,
		AvgPowerW:         2100,
		EnergyJ:           1e8,
		Eq1EnergyJ:        9e7,
		SchedulingTime:    4 * time.Millisecond,
		Makespan:          120000,
	}
	r.AvgUtil[units.CPU] = 3.1
	r.PeakUtil[units.Storage] = 63.9
	return r
}

func TestFromResult(t *testing.T) {
	run := FromResult(sampleResult())
	if run.Algorithm != "RISA" || run.Workload != "Azure-3000" {
		t.Error("labels lost")
	}
	if run.MeanCPURAMLatencyNs != 110 {
		t.Errorf("latency = %d", run.MeanCPURAMLatencyNs)
	}
	if run.SchedulingTimeUs != 4000 {
		t.Errorf("sched time = %d", run.SchedulingTimeUs)
	}
	if run.AvgUtilPct["CPU"] != 3.1 || run.PeakUtilPct["STO"] != 63.9 {
		t.Errorf("util maps wrong: %v / %v", run.AvgUtilPct, run.PeakUtilPct)
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	d := NewDocument(7)
	d.Add(sampleResult())
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 7 || got.SchemaVersion != Version {
		t.Errorf("provenance lost: %+v", got)
	}
	run, ok := got.Runs["Azure-3000/RISA"]
	if !ok {
		t.Fatalf("run key missing; have %v", got.Runs)
	}
	if run.PeakPowerW != 3499 {
		t.Errorf("power = %g", run.PeakPowerW)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	in := `{"schema_version": 99, "runs": {}}`
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Error("wrong schema version should fail")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
}

func TestWriteIsIndentedJSON(t *testing.T) {
	d := NewDocument(1)
	d.Add(sampleResult())
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\n  \"runs\"") {
		t.Error("output should be indented")
	}
	if !strings.Contains(out, "\"inter_rack_pct\"") {
		t.Error("snake_case fields expected")
	}
}
