// Package report serializes experiment results as JSON so runs can be
// archived, diffed across machines, or consumed by external plotting
// tools (the ASCII figures of cmd/risasim are for humans; this is for
// pipelines).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"risa/internal/sim"
	"risa/internal/units"
)

// Version identifies the report schema.
const Version = 1

// Run is the JSON projection of one simulation result.
type Run struct {
	Algorithm string `json:"algorithm"`
	Workload  string `json:"workload"`

	Scheduled    int     `json:"scheduled"`
	Dropped      int     `json:"dropped"`
	InterRack    int     `json:"inter_rack"`
	InterRackPct float64 `json:"inter_rack_pct"`

	AvgUtilPct  map[string]float64 `json:"avg_util_pct"`
	PeakUtilPct map[string]float64 `json:"peak_util_pct"`

	AvgIntraUtilPct  float64 `json:"avg_intra_util_pct"`
	PeakIntraUtilPct float64 `json:"peak_intra_util_pct"`
	AvgInterUtilPct  float64 `json:"avg_inter_util_pct"`
	PeakInterUtilPct float64 `json:"peak_inter_util_pct"`

	MeanCPURAMLatencyNs int64 `json:"mean_cpu_ram_latency_ns"`

	PeakPowerW float64 `json:"peak_power_w"`
	AvgPowerW  float64 `json:"avg_power_w"`
	EnergyJ    float64 `json:"energy_j"`
	Eq1EnergyJ float64 `json:"eq1_energy_j"`

	SchedulingTimeUs int64 `json:"scheduling_time_us"`
	Makespan         int64 `json:"makespan_tu"`
}

// FromResult converts a simulation result.
func FromResult(r *sim.Result) Run {
	run := Run{
		Algorithm:           r.Algorithm,
		Workload:            r.Workload,
		Scheduled:           r.Scheduled,
		Dropped:             r.Dropped,
		InterRack:           r.InterRack,
		InterRackPct:        r.InterRackPct,
		AvgUtilPct:          make(map[string]float64, units.NumResources),
		PeakUtilPct:         make(map[string]float64, units.NumResources),
		AvgIntraUtilPct:     r.AvgIntraUtil,
		PeakIntraUtilPct:    r.PeakIntraUtil,
		AvgInterUtilPct:     r.AvgInterUtil,
		PeakInterUtilPct:    r.PeakInterUtil,
		MeanCPURAMLatencyNs: r.MeanCPURAMLatency.Nanoseconds(),
		PeakPowerW:          r.PeakPowerW,
		AvgPowerW:           r.AvgPowerW,
		EnergyJ:             r.EnergyJ,
		Eq1EnergyJ:          r.Eq1EnergyJ,
		SchedulingTimeUs:    r.SchedulingTime.Microseconds(),
		Makespan:            r.Makespan,
	}
	for _, k := range units.Resources() {
		run.AvgUtilPct[k.String()] = r.AvgUtil[k]
		run.PeakUtilPct[k.String()] = r.PeakUtil[k]
	}
	return run
}

// Document is a full experiment archive: every run of a risasim
// invocation plus provenance.
type Document struct {
	SchemaVersion int       `json:"schema_version"`
	GeneratedAt   time.Time `json:"generated_at"`
	Seed          int64     `json:"seed"`
	// Runs is keyed "workload/algorithm".
	Runs map[string]Run `json:"runs"`
}

// NewDocument starts an empty archive.
func NewDocument(seed int64) *Document {
	return &Document{
		SchemaVersion: Version,
		GeneratedAt:   time.Now().UTC(),
		Seed:          seed,
		Runs:          make(map[string]Run),
	}
}

// Add records one result under "workload/algorithm".
func (d *Document) Add(r *sim.Result) {
	d.Runs[fmt.Sprintf("%s/%s", r.Workload, r.Algorithm)] = FromResult(r)
}

// Write emits the document as indented JSON.
func (d *Document) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Read parses a document written by Write and validates the schema.
func Read(r io.Reader) (*Document, error) {
	var d Document
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	if d.SchemaVersion != Version {
		return nil, fmt.Errorf("report: schema version %d, want %d", d.SchemaVersion, Version)
	}
	return &d, nil
}
