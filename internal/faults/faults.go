// Package faults models hardware failure and repair for the simulator: a
// time-ordered Plan of fail/repair events at box, rack or pod
// granularity, plus a seeded stochastic generator that draws each unit's
// outages from per-tier MTBF/MTTR exponentials (see gen.go).
//
// A Plan is pure data — it names hardware by index and says nothing about
// what failure means. The simulator interprets it: each event toggles
// topology.Cluster.SetBoxFailed over the event's scope, and the optional
// eviction policy decides what happens to VMs resident on failed hardware
// (sim.Config.Evict). DESIGN.md §10 documents the full fault model.
package faults

import (
	"fmt"
	"sort"
)

// Tier is the blast radius of one fault event.
type Tier int

const (
	// BoxTier fails or repairs a single box.
	BoxTier Tier = iota
	// RackTier fails or repairs every box of one rack at once.
	RackTier
	// PodTier fails or repairs every rack of one pod (a contiguous group
	// of Plan.PodSize racks) at once.
	PodTier
)

// String names the tier for logs and errors.
func (t Tier) String() string {
	switch t {
	case BoxTier:
		return "box"
	case RackTier:
		return "rack"
	case PodTier:
		return "pod"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Event is one timed fault or repair. Only the index fields of the
// event's tier are meaningful: Rack and Box for BoxTier, Rack for
// RackTier, Pod for PodTier.
type Event struct {
	// T is the simulated time the event fires.
	T int64
	// Repair distinguishes a repair (true) from a failure (false).
	Repair bool
	// Tier is the event's blast radius.
	Tier Tier
	// Pod is the failing/recovering pod index (PodTier only).
	Pod int
	// Rack is the rack index (BoxTier and RackTier).
	Rack int
	// Box is the box index within the rack, counted across all resource
	// kinds like topology.Box.Index (BoxTier only).
	Box int
}

// String renders the event for logs.
func (e Event) String() string {
	verb := "fail"
	if e.Repair {
		verb = "repair"
	}
	switch e.Tier {
	case BoxTier:
		return fmt.Sprintf("t=%d %s box r%d/b%d", e.T, verb, e.Rack, e.Box)
	case RackTier:
		return fmt.Sprintf("t=%d %s rack %d", e.T, verb, e.Rack)
	default:
		return fmt.Sprintf("t=%d %s pod %d", e.T, verb, e.Pod)
	}
}

// less is the canonical event order: time first; at equal times repairs
// before failures (returned capacity is visible to whatever breaks at the
// same instant, and a unit repaired and re-failed in the same tick ends
// failed), then wider tiers before narrower ones, then unit indices. The
// generator sorts with it, so a Plan is deterministic given its inputs,
// and Validate enforces it so hand-built plans replay the same way.
func (e Event) less(o Event) bool {
	if e.T != o.T {
		return e.T < o.T
	}
	if e.Repair != o.Repair {
		return e.Repair
	}
	if e.Tier != o.Tier {
		return e.Tier > o.Tier
	}
	if e.Pod != o.Pod {
		return e.Pod < o.Pod
	}
	if e.Rack != o.Rack {
		return e.Rack < o.Rack
	}
	return e.Box < o.Box
}

// Plan is a time-ordered fault schedule.
type Plan struct {
	// PodSize is the racks-per-pod grouping PodTier events address; it
	// must be positive when the plan contains pod events (align it with
	// network.Config.RacksPerPod on three-tier fabrics).
	PodSize int
	// Events in canonical order (see Event.less).
	Events []Event
}

// RackFailure returns the minimal plan of one whole-rack outage: rack
// fails at failAt and is repaired at healAt. It is the plan behind the
// classic resilience experiment.
func RackFailure(rack int, failAt, healAt int64) *Plan {
	return &Plan{Events: []Event{
		{T: failAt, Tier: RackTier, Rack: rack},
		{T: healAt, Tier: RackTier, Rack: rack, Repair: true},
	}}
}

// Validate checks the plan against a cluster of the given dimensions:
// event order, index ranges, and pod addressing.
func (p *Plan) Validate(racks, boxesPerRack int) error {
	for i, e := range p.Events {
		if e.T < 0 {
			return fmt.Errorf("faults: event %d (%v) before t=0", i, e)
		}
		if i > 0 && e.less(p.Events[i-1]) {
			return fmt.Errorf("faults: event %d (%v) out of order after %v", i, e, p.Events[i-1])
		}
		switch e.Tier {
		case BoxTier:
			if e.Rack < 0 || e.Rack >= racks || e.Box < 0 || e.Box >= boxesPerRack {
				return fmt.Errorf("faults: event %d (%v) outside %d racks × %d boxes", i, e, racks, boxesPerRack)
			}
		case RackTier:
			if e.Rack < 0 || e.Rack >= racks {
				return fmt.Errorf("faults: event %d (%v) outside %d racks", i, e, racks)
			}
		case PodTier:
			if p.PodSize <= 0 {
				return fmt.Errorf("faults: event %d (%v) needs a positive PodSize, got %d", i, e, p.PodSize)
			}
			if e.Pod < 0 || e.Pod*p.PodSize >= racks {
				return fmt.Errorf("faults: event %d (%v) outside %d racks at pod size %d", i, e, racks, p.PodSize)
			}
		default:
			return fmt.Errorf("faults: event %d (%v) has invalid tier", i, e)
		}
	}
	return nil
}

// PodRacks returns the rack index range [lo, hi) a pod event covers on a
// cluster of the given rack count.
func (p *Plan) PodRacks(pod, racks int) (lo, hi int) {
	lo = pod * p.PodSize
	hi = lo + p.PodSize
	if hi > racks {
		hi = racks
	}
	return lo, hi
}

// sortEvents puts events into canonical order.
func sortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool { return events[i].less(events[j]) })
}
