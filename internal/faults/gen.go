package faults

import (
	"fmt"
	"math"
	"math/rand"
)

// TierRates parameterizes one tier's outage process: every unit of the
// tier alternates exponentially distributed up and down periods (a
// classic alternating-renewal availability model), so over a long horizon
// a unit is down a fraction MTTR/(MTBF+MTTR) of the time.
type TierRates struct {
	// MTBF is the mean up time between failures in simulated time units;
	// zero or negative disables the tier.
	MTBF float64
	// MTTR is the mean down time until repair; must be positive when the
	// tier is enabled. Down periods are rounded up to at least one time
	// unit so every failure is observable.
	MTTR float64
}

// enabled reports whether the tier generates any events.
func (r TierRates) enabled() bool { return r.MTBF > 0 }

// GenConfig parameterizes the stochastic plan generator.
type GenConfig struct {
	// Seed fixes the generated plan completely: every unit derives its
	// own random stream from (Seed, tier, unit index) via a splitmix64
	// hash, so plans are reproducible and two units' outages are
	// independent but stable — adding racks does not reshuffle the
	// outages of existing ones.
	Seed int64
	// Horizon bounds generation: failures strike strictly before it
	// (repairs may complete after it; the consumer's stop criterion
	// decides whether they matter). Must be positive.
	Horizon int64
	// Racks and BoxesPerRack give the cluster dimensions the plan
	// addresses (match topology.Config.Racks / Config.BoxesPerRack()).
	Racks, BoxesPerRack int
	// PodSize groups racks into pods for the pod tier; required when Pod
	// is enabled.
	PodSize int
	// Box, Rack and Pod are the per-tier outage processes; disabled tiers
	// contribute no events.
	Box, Rack, Pod TierRates
}

// validate checks the generator configuration.
func (c GenConfig) validate() error {
	if c.Horizon <= 0 {
		return fmt.Errorf("faults: generator horizon must be positive, got %d", c.Horizon)
	}
	if c.Racks <= 0 || c.BoxesPerRack <= 0 {
		return fmt.Errorf("faults: generator needs cluster dimensions, got %d racks × %d boxes", c.Racks, c.BoxesPerRack)
	}
	for _, tier := range []struct {
		name  string
		rates TierRates
	}{{"box", c.Box}, {"rack", c.Rack}, {"pod", c.Pod}} {
		if tier.rates.enabled() && tier.rates.MTTR <= 0 {
			return fmt.Errorf("faults: %s tier has MTBF %g but MTTR %g (must be positive)",
				tier.name, tier.rates.MTBF, tier.rates.MTTR)
		}
	}
	if c.Pod.enabled() && c.PodSize <= 0 {
		return fmt.Errorf("faults: pod tier enabled but pod size is %d", c.PodSize)
	}
	return nil
}

// Generate draws a Plan from the configuration: one independent
// alternating-renewal outage process per box, rack and pod unit of the
// enabled tiers, merged into canonical order. The result is a pure
// function of the configuration.
func Generate(cfg GenConfig) (*Plan, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Plan{PodSize: cfg.PodSize}
	if cfg.Box.enabled() {
		for rack := 0; rack < cfg.Racks; rack++ {
			for box := 0; box < cfg.BoxesPerRack; box++ {
				unit := rack*cfg.BoxesPerRack + box
				p.Events = genUnit(p.Events, cfg.Box, cfg.Horizon,
					unitRNG(cfg.Seed, BoxTier, unit),
					Event{Tier: BoxTier, Rack: rack, Box: box})
			}
		}
	}
	if cfg.Rack.enabled() {
		for rack := 0; rack < cfg.Racks; rack++ {
			p.Events = genUnit(p.Events, cfg.Rack, cfg.Horizon,
				unitRNG(cfg.Seed, RackTier, rack),
				Event{Tier: RackTier, Rack: rack})
		}
	}
	if cfg.Pod.enabled() {
		pods := (cfg.Racks + cfg.PodSize - 1) / cfg.PodSize
		for pod := 0; pod < pods; pod++ {
			p.Events = genUnit(p.Events, cfg.Pod, cfg.Horizon,
				unitRNG(cfg.Seed, PodTier, pod),
				Event{Tier: PodTier, Pod: pod})
		}
	}
	sortEvents(p.Events)
	return p, nil
}

// genUnit appends one unit's fail/repair pairs onto events: up periods
// drawn from Exp(MTBF), down periods from Exp(MTTR) rounded up to at
// least one time unit, starting up at t=0 and stopping at the first
// failure on or past the horizon. proto carries the unit's addressing.
func genUnit(events []Event, rates TierRates, horizon int64, rng *rand.Rand, proto Event) []Event {
	t := 0.0
	for {
		failT := int64(math.Round(t + rng.ExpFloat64()*rates.MTBF))
		if failT >= horizon {
			return events
		}
		down := int64(math.Round(rng.ExpFloat64() * rates.MTTR))
		if down < 1 {
			down = 1
		}
		fail, repair := proto, proto
		fail.T = failT
		repair.T = failT + down
		repair.Repair = true
		events = append(events, fail, repair)
		t = float64(repair.T)
	}
}

// unitRNG derives a unit's private random stream from the plan seed and
// the unit's (tier, index) address via splitmix64.
func unitRNG(seed int64, tier Tier, unit int) *rand.Rand {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ uint64(tier)<<32 ^ uint64(uint32(unit)))
	return rand.New(rand.NewSource(int64(h)))
}

// splitmix64 is the standard 64-bit finalizer-style mixer (Steele et
// al.), good enough to decorrelate adjacent (seed, tier, unit) triples.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
