package faults

import (
	"fmt"
	"reflect"
	"testing"
)

func genConfig() GenConfig {
	return GenConfig{
		Seed:         1,
		Horizon:      100000,
		Racks:        18,
		BoxesPerRack: 6,
		PodSize:      6,
		Box:          TierRates{MTBF: 20000, MTTR: 2000},
		Rack:         TierRates{MTBF: 60000, MTTR: 4000},
		Pod:          TierRates{MTBF: 90000, MTTR: 8000},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(genConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(genConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	cfg := genConfig()
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
	if len(a.Events) == 0 {
		t.Fatal("plan is empty at these rates")
	}
}

// TestGenerateStableUnderGrowth: adding racks must not reshuffle the
// outage schedule of the racks that already existed — each unit owns its
// random stream.
func TestGenerateStableUnderGrowth(t *testing.T) {
	small, err := Generate(genConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := genConfig()
	cfg.Racks = 36
	big, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(p *Plan, racks int) []Event {
		var out []Event
		for _, e := range p.Events {
			switch e.Tier {
			case BoxTier, RackTier:
				if e.Rack < racks {
					out = append(out, e)
				}
			case PodTier:
				if e.Pod*p.PodSize < racks {
					out = append(out, e)
				}
			}
		}
		return out
	}
	if !reflect.DeepEqual(filter(small, 18), filter(big, 18)) {
		t.Fatal("growing the cluster reshuffled existing units' outages")
	}
}

// TestGeneratePairing: per unit, events alternate fail/repair with
// strictly increasing times, and every failure strikes before the
// horizon.
func TestGeneratePairing(t *testing.T) {
	cfg := genConfig()
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(cfg.Racks, cfg.BoxesPerRack); err != nil {
		t.Fatal(err)
	}
	type unitState struct {
		down  bool
		lastT int64
	}
	units := map[string]*unitState{}
	for _, e := range p.Events {
		key := fmt.Sprintf("%v/%d/%d/%d", e.Tier, e.Pod, e.Rack, e.Box)
		st := units[key]
		if st == nil {
			st = &unitState{}
			units[key] = st
		}
		if e.Repair == !st.down {
			t.Fatalf("%v: unit %s was %v", e, key, map[bool]string{true: "already down", false: "not down"}[!st.down])
		}
		if st.down && e.T <= st.lastT || !st.down && e.T < st.lastT {
			t.Fatalf("%v: unit %s time did not advance past %d", e, key, st.lastT)
		}
		if !e.Repair && e.T >= cfg.Horizon {
			t.Fatalf("%v: failure on or past horizon %d", e, cfg.Horizon)
		}
		st.down = !e.Repair
		st.lastT = e.T
	}
}

func TestGenerateDisabledTiers(t *testing.T) {
	cfg := genConfig()
	cfg.Box = TierRates{}
	cfg.Rack = TierRates{}
	cfg.Pod = TierRates{}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 0 {
		t.Fatalf("disabled tiers generated %d events", len(p.Events))
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []func(*GenConfig){
		func(c *GenConfig) { c.Horizon = 0 },
		func(c *GenConfig) { c.Racks = 0 },
		func(c *GenConfig) { c.BoxesPerRack = 0 },
		func(c *GenConfig) { c.Box.MTTR = 0 },
		func(c *GenConfig) { c.PodSize = 0 },
	}
	for i, mutate := range bad {
		cfg := genConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []Plan{
		{Events: []Event{{T: -1, Tier: RackTier}}},
		{Events: []Event{{T: 5, Tier: RackTier}, {T: 4, Tier: RackTier}}},
		{Events: []Event{{T: 0, Tier: RackTier, Rack: 18}}},
		{Events: []Event{{T: 0, Tier: BoxTier, Rack: 0, Box: 6}}},
		{Events: []Event{{T: 0, Tier: PodTier, Pod: 0}}},             // no PodSize
		{PodSize: 6, Events: []Event{{T: 0, Tier: PodTier, Pod: 3}}}, // past last rack
		{Events: []Event{{T: 0, Tier: Tier(9)}}},
		// Equal-time order violation: a failure sorted before a repair.
		{Events: []Event{{T: 7, Tier: RackTier, Rack: 1}, {T: 7, Tier: RackTier, Rack: 0, Repair: true}}},
	}
	for i, p := range bad {
		if err := p.Validate(18, 6); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
	good := RackFailure(0, 100, 200)
	if err := good.Validate(18, 6); err != nil {
		t.Errorf("RackFailure plan rejected: %v", err)
	}
}

func TestPodRacks(t *testing.T) {
	p := Plan{PodSize: 6}
	if lo, hi := p.PodRacks(1, 18); lo != 6 || hi != 12 {
		t.Errorf("pod 1 covers [%d,%d), want [6,12)", lo, hi)
	}
	// A trailing partial pod is clamped to the cluster.
	if lo, hi := p.PodRacks(2, 16); lo != 12 || hi != 16 {
		t.Errorf("trailing pod covers [%d,%d), want [12,16)", lo, hi)
	}
}
