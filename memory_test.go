package risa

import (
	"runtime"
	"testing"

	"risa/internal/experiments"
)

// TestMemoryPerBoxBudget pins the per-box heap footprint of a fully
// indexed scheduler state (topology + SoA free vectors + candidate trees
// + fabric + pools) at the hyperscale rungs: the budget in DESIGN.md §15
// is 2 KiB/box, measured ~1.7 KiB/box, and — the property that actually
// matters — flat in cluster size, so a 16384-rack/98304-box state stays
// under ~200 MB. A superlinear structure (per-box-pair tables, dense
// rack×rack matrices) blows the budget at the top rung long before it
// would OOM a laptop, which is the point of checking 1152 and 16384.
func TestMemoryPerBoxBudget(t *testing.T) {
	const budgetBytes = 2048
	for _, racks := range []int{1152, 16384} {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		setup := experiments.DefaultSetup()
		setup.Topology.Racks = racks
		st, err := setup.NewState()
		if err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		boxes := len(st.Cluster.Boxes())
		perBox := float64(after.HeapAlloc-before.HeapAlloc) / float64(boxes)
		t.Logf("racks=%d boxes=%d: %.0f B/box", racks, boxes, perBox)
		if perBox > budgetBytes {
			t.Errorf("racks=%d: %.0f B/box exceeds the %d B budget (DESIGN.md §15)",
				racks, perBox, budgetBytes)
		}
		runtime.KeepAlive(st)
	}
}
