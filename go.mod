module risa

go 1.22
