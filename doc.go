// Package risa is a full reproduction of "RISA: Round-Robin Intra-Rack
// Friendly Scheduling Algorithm for Disaggregated Datacenters" (Kabir,
// Kim, Nikdast — SC-W 2023, DOI 10.1145/3624062.3624228).
//
// The library simulates the paper's disaggregated datacenter — racks of
// single-resource boxes connected by a two-tier optical circuit-switched
// fabric — and implements all four schedulers it evaluates: the NULB and
// NALB baselines (Zervas et al.) and the RISA / RISA-BF contribution.
// Beyond the paper's finite traces, a streaming workload engine
// (workload.Stream + sim.RunStream) sustains open-ended arrival streams
// at a controlled occupancy for steady-state churn experiments, and a
// fault subsystem (internal/faults + sim.Config.Faults) plays stochastic
// hardware outage plans — with optional displaced-VM recovery — for the
// availability ladder.
//
// Start with DESIGN.md for the system inventory, experiment index and
// steady-state methodology, EXPERIMENTS.md for measured-vs-paper
// numbers, cmd/risasim to regenerate any table or figure, and
// examples/quickstart for the API.
package risa
