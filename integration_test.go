package risa

import (
	"bytes"
	"testing"

	"risa/internal/experiments"
	"risa/internal/report"
	"risa/internal/trace"
	"risa/internal/units"
	"risa/internal/workload"
)

// TestEndToEndPipeline exercises the full user journey: generate a
// workload, archive it as CSV, replay it through every scheduler, and
// archive the results as a JSON report — asserting cross-module
// consistency at each step.
func TestEndToEndPipeline(t *testing.T) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.N = 300
	tr, err := workload.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// CSV round trip.
	var csvBuf bytes.Buffer
	if err := trace.Write(&csvBuf, tr); err != nil {
		t.Fatal(err)
	}
	replayed, err := trace.Read(&csvBuf, tr.Name)
	if err != nil {
		t.Fatal(err)
	}

	// Simulation across all algorithms, both trace copies.
	setup := experiments.DefaultSetup()
	doc := report.NewDocument(setup.Seed)
	for _, alg := range experiments.Algorithms {
		direct, err := setup.RunOne(alg, tr)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		fromCSV, err := setup.RunOne(alg, replayed)
		if err != nil {
			t.Fatalf("%s replay: %v", alg, err)
		}
		if direct.InterRack != fromCSV.InterRack || direct.Scheduled != fromCSV.Scheduled ||
			direct.PeakPowerW != fromCSV.PeakPowerW {
			t.Errorf("%s: CSV replay diverged from direct run", alg)
		}
		doc.Add(direct)
	}

	// JSON round trip.
	var jsonBuf bytes.Buffer
	if err := doc.Write(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	got, err := report.Read(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != len(experiments.Algorithms) {
		t.Errorf("archived %d runs, want %d", len(got.Runs), len(experiments.Algorithms))
	}
	run, ok := got.Runs["synthetic/RISA"]
	if !ok {
		t.Fatal("RISA run missing from archive")
	}
	if run.Scheduled != 300 {
		t.Errorf("archived scheduled = %d", run.Scheduled)
	}
}

// TestCrossAlgorithmConsistency: when nobody drops, all four algorithms
// consume identical total compute (placement differs, usage cannot).
func TestCrossAlgorithmConsistency(t *testing.T) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.N = 150
	tr, err := workload.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	setup := experiments.DefaultSetup()
	results, err := setup.RunAll(tr)
	if err != nil {
		t.Fatal(err)
	}
	base := results["NULB"]
	for _, alg := range experiments.Algorithms {
		r := results[alg]
		if r.Dropped != 0 {
			t.Fatalf("%s dropped on a light workload", alg)
		}
		for _, k := range units.Resources() {
			if r.PeakUtil[k] != base.PeakUtil[k] {
				t.Errorf("%s peak %v util %.4f != NULB %.4f", alg, k, r.PeakUtil[k], base.PeakUtil[k])
			}
		}
		if r.PeakIntraUtil != base.PeakIntraUtil {
			t.Errorf("%s intra util differs", alg)
		}
	}
}
