#!/usr/bin/env bash
# Allocation ratchet for the scheduling hot path.
#
# Unlike timings, allocs/op is deterministic on a given Go version — the
# allocator is not subject to machine drift — so this guard is a plain
# ratchet against a recorded baseline rather than benchguard.sh's
# interleaved A/B dance: run the guarded benchmarks with -benchmem,
# compare each benchmark's allocs/op against scripts/ci/allocs-baseline.txt,
# and fail when any benchmark allocates MORE than its recorded value.
# Allocating less prints a reminder to tighten the baseline (ratchets only
# move one way; tightening is a deliberate commit, not an automatic one).
#
# Two benchmark sets run at different iteration counts:
#   - per-decision benchmarks at ITERS (default 1000x) so one-time pool
#     warm-up amortizes to zero and the steady-state contract is what is
#     measured (the baseline records 0 for all of them);
#   - whole-run benchmarks (the churn cell) at 1x, where the recorded
#     value is the per-cell setup cost — state construction, stream,
#     windows — that a regression in any layer's hot path would inflate.
#
# The baseline is recorded on the CI Go version (see ci.yml's allocs job);
# other Go versions may count runtime-internal allocations differently,
# so local runs on a different toolchain are advisory.
#
# Usage: allocguard.sh
# Environment: ITERS (default 1000x), OUT (default alloc-guard),
#   BASELINE (default scripts/ci/allocs-baseline.txt).
set -euo pipefail

ITERS=${ITERS:-1000x}
OUT=${OUT:-alloc-guard}
BASELINE=${BASELINE:-scripts/ci/allocs-baseline.txt}
HOT='BenchmarkScheduleOne$|BenchmarkScheduleOneAllocs|BenchmarkScheduleOneUnderFaults|BenchmarkScheduleOneResumed|BenchmarkScheduleOnePreempt|BenchmarkDriverPlace|BenchmarkAllocateVM$|BenchmarkProposeCommit$'
RUN='BenchmarkChurnSteadyState$|BenchmarkChurnAgents/agents4'
# The SoA hot path at hyperscale: the same zero-alloc contract on the
# 16384-rack (~100k box) cluster, where a stray per-decision allocation
# would also be a cache-behavior regression. NALB is pinned at 1152 racks
# instead — its global best-uplink scan is Θ(fitting boxes) by definition,
# so its 16k pre-load alone (~450k NALB decisions) would dominate the job.
SCALE='BenchmarkScheduleOneScale$/^racks=16384$/^(NULB|RISA|RISA-BF)$'
SCALE_NALB='BenchmarkScheduleOneScale$/^racks=1152$/^NALB$'

mkdir -p "$OUT"
: >"$OUT/measured.txt"

# Go appends a -GOMAXPROCS suffix to benchmark names whenever
# GOMAXPROCS != 1 (the 1-CPU calibration container omits it, multi-core
# CI runners do not); strip it so the baseline is host-independent. The
# pattern only strips a trailing -<digits>, so names like RISA-BF are
# untouched.
normalize='{name=$1; sub(/-[0-9]+$/, "", name); print name, $(NF-1)}'

echo "== allocguard: per-decision benchmarks ($ITERS)"
go test -run '^$' -bench "$HOT" -benchmem -benchtime "$ITERS" -count 1 . \
  | tee -a "$OUT/bench.txt" \
  | { grep -E '^Benchmark' || true; } \
  | awk "$normalize" >>"$OUT/measured.txt"

echo "== allocguard: whole-run benchmarks (1x)"
go test -run '^$' -bench "$RUN" -benchmem -benchtime 1x -count 1 . \
  | tee -a "$OUT/bench.txt" \
  | { grep -E '^Benchmark' || true; } \
  | awk "$normalize" >>"$OUT/measured.txt"

echo "== allocguard: hyperscale decision benchmarks ($ITERS)"
for pat in "$SCALE" "$SCALE_NALB"; do
  go test -run '^$' -bench "$pat" -benchmem -benchtime "$ITERS" -count 1 . \
    | tee -a "$OUT/bench.txt" \
    | { grep -E '^Benchmark' || true; } \
    | awk "$normalize" >>"$OUT/measured.txt"
done

awk '
  FNR == NR {
    if ($0 ~ /^#/ || NF < 2) next
    base[$1] = $2 + 0
    next
  }
  {
    name = $1; measured = $2 + 0; seen[name] = 1
    if (!(name in base)) {
      printf "NEW %s: %d allocs/op unguarded — add it to the baseline\n", name, measured
      bad = 1
      next
    }
    if (measured > base[name]) {
      printf "REGRESSION %s: %d allocs/op, baseline %d\n", name, measured, base[name]
      bad = 1
    } else if (measured < base[name]) {
      printf "improved %s: %d allocs/op, baseline %d — consider tightening the baseline\n", name, measured, base[name]
    } else {
      printf "ok %s: %d allocs/op\n", name, measured
    }
  }
  END {
    for (name in base) {
      if (!(name in seen)) {
        printf "MISSING %s: guarded benchmark did not run\n", name
        bad = 1
      }
    }
    exit bad
  }
' "$BASELINE" "$OUT/measured.txt" | tee "$OUT/verdict.txt"
test "${PIPESTATUS[0]}" -eq 0
