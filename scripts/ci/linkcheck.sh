#!/usr/bin/env bash
# linkcheck.sh — verify that every relative markdown link in the
# repository's documentation points at a file or directory that exists.
#
# Usage (from the repository root):
#
#   scripts/ci/linkcheck.sh [file.md ...]
#
# With no arguments it checks the standing doc set. External links
# (http/https/mailto) are not fetched — CI must not depend on third-party
# uptime — and pure-anchor links (#section) are skipped; a relative
# link's own anchor suffix is ignored.
set -euo pipefail

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(README.md DESIGN.md EXPERIMENTS.md PAPERS.md CHANGES.md ROADMAP.md)
fi

fail=0
for md in "${files[@]}"; do
  if [ ! -f "$md" ]; then
    echo "linkcheck: $md: no such file"
    fail=1
    continue
  fi
  dir=$(dirname "$md")
  # Inline links: [text](target). Reference-style links are not used in
  # this repo; add them here if that changes.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"        # strip an anchor suffix
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "linkcheck: $md: broken link -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done

if [ $fail -ne 0 ]; then
  echo "linkcheck: FAILED"
  exit 1
fi
echo "linkcheck: OK (${files[*]})"
