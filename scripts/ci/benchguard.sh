#!/usr/bin/env bash
# Interleaved A/B benchmark regression guard.
#
# Small shared CI runners drift by ±30% over the course of minutes, so
# running all base iterations followed by all head iterations confounds
# machine drift with real regressions. Instead base and head run in strict
# alternation (one A/B pair per round), per-round ratios are computed from
# matching pairs, and the build fails only when EVERY round reproduces a
# slowdown of more than FACTOR x for some benchmark — drift moves both
# sides of a pair together, a real regression moves every pair.
#
# Usage: benchguard.sh <base-ref>
# Environment: ROUNDS (default 4), BENCH (regex, default BenchmarkScheduleOne),
#   BENCHTIME (default 200ms), FACTOR (default 2.0), OUT (default bench-ab).
set -euo pipefail

BASE_REF=${1:?usage: benchguard.sh <base-ref>}
ROUNDS=${ROUNDS:-4}
BENCH=${BENCH:-BenchmarkScheduleOne}
BENCHTIME=${BENCHTIME:-200ms}
FACTOR=${FACTOR:-2.0}
OUT=${OUT:-bench-ab}

mkdir -p "$OUT"
rm -f "$OUT"/base.txt "$OUT"/head.txt "$OUT"/base-rounds.txt "$OUT"/head-rounds.txt

base_dir=$(mktemp -d)
git worktree add --detach "$base_dir" "$BASE_REF" >/dev/null
trap 'git worktree remove --force "$base_dir" >/dev/null 2>&1 || true' EXIT

for i in $(seq "$ROUNDS"); do
  echo "== round $i/$ROUNDS: base ($BASE_REF)"
  # Benchmarks that exist only on head simply produce no base lines; a
  # base ref that cannot run the pattern at all must not fail the guard.
  (cd "$base_dir" && go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -count 1 . 2>&1 || true) \
    | tee -a "$OUT/base.txt" \
    | { grep -E '^Benchmark' || true; } | sed "s/^/round$i /" >>"$OUT/base-rounds.txt"
  echo "== round $i/$ROUNDS: head"
  go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -count 1 . \
    | tee -a "$OUT/head.txt" \
    | { grep -E '^Benchmark' || true; } | sed "s/^/round$i /" >>"$OUT/head-rounds.txt"
done

# Human-readable report for the uploaded artifact. benchstat aggregates the
# interleaved rounds (count 1 per round, ROUNDS samples per side); the
# pass/fail decision below is ours, not benchstat's.
if command -v benchstat >/dev/null 2>&1 || go install golang.org/x/perf/cmd/benchstat@latest; then
  PATH="$PATH:$(go env GOPATH)/bin" benchstat "$OUT/base.txt" "$OUT/head.txt" | tee "$OUT/benchstat.txt" || true
fi

awk -v factor="$FACTOR" '
  FNR == NR { base[$1 SUBSEP $2] = $4; next }
  { head[$1 SUBSEP $2] = $4; names[$2] = 1; rounds[$1] = 1 }
  END {
    bad = 0
    for (n in names) {
      best = -1; have = 0
      for (r in rounds) {
        key = r SUBSEP n
        if (!(key in base) || !(key in head) || base[key] + 0 <= 0) continue
        have++
        ratio = head[key] / base[key]
        if (best < 0 || ratio < best) best = ratio
      }
      # Reproducible: every paired round regressed by more than factor.
      if (have >= 2 && best > factor) {
        printf "REGRESSION %s: >%.1fx slower in all %d interleaved rounds (best round %.2fx)\n", n, factor, have, best
        bad = 1
      }
    }
    if (!bad) print "benchguard: no reproducible regression above " factor "x"
    exit bad
  }
' "$OUT/base-rounds.txt" "$OUT/head-rounds.txt" | tee "$OUT/verdict.txt"
test "${PIPESTATUS[0]}" -eq 0
