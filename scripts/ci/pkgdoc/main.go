// Command pkgdoc is the CI documentation ratchet: it walks every Go
// package in the repository and fails when a package lacks a package
// comment or an exported top-level identifier lacks a doc comment.
//
// Usage (from the repository root):
//
//	go run ./scripts/ci/pkgdoc
//
// The check is syntactic (go/parser, no type checking), so it is fast
// and dependency-free. Test files are exempt, as are exported methods on
// unexported types' receivers only insofar as they still appear as
// top-level declarations — document those too; godoc readers see them
// through interfaces.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	var problems []string
	err := filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		if name := info.Name(); path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
			return filepath.SkipDir
		}
		problems = append(problems, checkDir(path)...)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pkgdoc: %v\n", err)
		os.Exit(2)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("pkgdoc: %d documentation problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses one directory's non-test files and reports its
// documentation problems.
func checkDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse error: %v", dir, err)}
	}
	var out []string
	for name, pkg := range pkgs {
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasDoc = true
			}
		}
		if !hasDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		}
		for _, f := range pkg.Files {
			out = append(out, checkFile(fset, f)...)
		}
	}
	return out
}

// checkFile reports the file's undocumented exported declarations.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		out = append(out, fmt.Sprintf("%s: exported %s %s has no doc comment",
			fset.Position(pos), kind, name))
	}
	for _, d := range f.Decls {
		switch decl := d.(type) {
		case *ast.FuncDecl:
			if decl.Name.IsExported() && decl.Doc == nil {
				report(decl.Pos(), "func", decl.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range decl.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && decl.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range sp.Names {
						if n.IsExported() && decl.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							report(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return out
}
