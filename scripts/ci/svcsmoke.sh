#!/usr/bin/env bash
# Crash-recovery smoke for the risasvc daemon: the end-to-end check of
# the restore-then-replay contract, on top of the unit equivalence suite
# in internal/svc.
#
# Run A places a workload against an uncrashed daemon and dumps its
# placement log. Run B sends the same trace, paced, and the daemon is
# kill -9'd mid-run and restarted on the same data directory while the
# client retries through the outage with capped backoff; requests the
# journal had already made durable dedup on retry, the rest re-place.
# Once both runs have decided every VM, the two /placements logs must be
# byte-identical — a daemon that lost, duplicated or reordered a single
# decision across the crash diffs here.
#
# Both runs use one client worker: placement logs are sequence-exact, so
# the comparison needs a deterministic request order (saturation runs
# with -workers N>1 trade that away; this smoke does not).
#
# Usage: svcsmoke.sh
# Environment: PORT (default 18231), COUNT (default 300, VMs per run),
#   DIR (default svc-smoke, scratch + report directory).
set -euo pipefail

PORT=${PORT:-18231}
COUNT=${COUNT:-300}
DIR=${DIR:-svc-smoke}

rm -rf "$DIR"
mkdir -p "$DIR"
go build -o "$DIR/risasvc" ./cmd/risasvc
go build -o "$DIR/workloadgen" ./cmd/workloadgen

trap 'kill $(jobs -p) 2>/dev/null || true' EXIT

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "daemon at $1 never became ready" >&2
  return 1
}

echo "== svc-smoke: run A (uncrashed reference)"
"$DIR/risasvc" -addr "127.0.0.1:$PORT" -dir "$DIR/a-data" &
A_PID=$!
wait_ready "http://127.0.0.1:$PORT"
"$DIR/workloadgen" -url "http://127.0.0.1:$PORT" -count "$COUNT"
curl -fsS "http://127.0.0.1:$PORT/placements" >"$DIR/a.log"
kill -TERM "$A_PID"
wait "$A_PID" || true

echo "== svc-smoke: run B (kill -9 mid-run, restart, client retries through)"
PORT_B=$((PORT + 1))
"$DIR/risasvc" -addr "127.0.0.1:$PORT_B" -dir "$DIR/b-data" &
B_PID=$!
wait_ready "http://127.0.0.1:$PORT_B"
# Pace the client so the crash lands mid-run (~1/3 through), not after it.
"$DIR/workloadgen" -url "http://127.0.0.1:$PORT_B" -count "$COUNT" -rate 100 &
CLIENT_PID=$!
sleep 1
kill -9 "$B_PID"
wait "$B_PID" || true
"$DIR/risasvc" -addr "127.0.0.1:$PORT_B" -dir "$DIR/b-data" &
B2_PID=$!
wait "$CLIENT_PID"
curl -fsS "http://127.0.0.1:$PORT_B/placements" >"$DIR/b.log"
kill -TERM "$B2_PID"
wait "$B2_PID" || true

diff "$DIR/a.log" "$DIR/b.log"
echo "svc-smoke: $(wc -l <"$DIR/a.log") placements identical across kill -9 + restore-then-replay"
