package main

import (
	"testing"

	"risa/internal/network"
	"risa/internal/optics"
	"risa/internal/topology"
)

func TestRunDefaults(t *testing.T) {
	if err := run(topology.DefaultConfig(), network.DefaultConfig(), optics.DefaultConfig()); err != nil {
		t.Error(err)
	}
}

func TestRunRejectsBadTopology(t *testing.T) {
	bad := topology.DefaultConfig()
	bad.Racks = 0
	if err := run(bad, network.DefaultConfig(), optics.DefaultConfig()); err == nil {
		t.Error("invalid topology should fail")
	}
}

func TestRunRejectsBadNetwork(t *testing.T) {
	bad := network.DefaultConfig()
	bad.BoxUplinks = -1
	if err := run(topology.DefaultConfig(), bad, optics.DefaultConfig()); err == nil {
		t.Error("invalid fabric should fail")
	}
}

func TestRunRejectsBadOptics(t *testing.T) {
	bad := optics.DefaultConfig()
	bad.BoxPorts = 63 // not a power of two
	if err := run(topology.DefaultConfig(), network.DefaultConfig(), bad); err == nil {
		t.Error("invalid optics should fail")
	}
}
