// Command ddcinspect dumps the simulated disaggregated datacenter: the
// Table 1 cluster architecture, derived capacities, the optical fabric
// provisioning and the device-model constants. Useful for sanity-checking
// a configuration before running experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	"risa/internal/network"
	"risa/internal/optics"
	"risa/internal/topology"
	"risa/internal/units"
)

func main() {
	racks := flag.Int("racks", 18, "racks in the cluster")
	uplinks := flag.Int("uplinks", 16, "uplinks per box")
	flag.Parse()

	tcfg := topology.DefaultConfig()
	tcfg.Racks = *racks
	ncfg := network.DefaultConfig()
	ncfg.BoxUplinks = *uplinks
	if err := run(tcfg, ncfg, optics.DefaultConfig()); err != nil {
		fmt.Fprintf(os.Stderr, "ddcinspect: %v\n", err)
		os.Exit(1)
	}
}

func run(tcfg topology.Config, ncfg network.Config, ocfg optics.Config) error {
	cl, err := topology.New(tcfg)
	if err != nil {
		return err
	}
	fab, err := network.NewFabric(cl, ncfg)
	if err != nil {
		return err
	}

	fmt.Println("Disaggregated datacenter (Table 1 architecture)")
	fmt.Printf("  racks              %d\n", tcfg.Racks)
	fmt.Printf("  boxes per rack     %d  (%d CPU / %d RAM / %d STO)\n",
		tcfg.BoxesPerRack(), tcfg.CPUBoxes, tcfg.RAMBoxes, tcfg.STOBoxes)
	fmt.Printf("  bricks per box     %d\n", tcfg.BricksPerBox)
	fmt.Printf("  units per brick    %d\n", tcfg.UnitsPerBrick)
	fmt.Printf("  unit sizes         %d cores / %d GB RAM / %d GB storage\n",
		tcfg.Units.CPUUnitCores, tcfg.Units.RAMUnitGB, tcfg.Units.STOUnitGB)
	fmt.Println("Derived capacities")
	for _, r := range units.Resources() {
		fmt.Printf("  %-4v box %6d %-6s cluster %9d %s\n",
			r, tcfg.BoxCapacity(r), r.Native(), cl.TotalCapacity(r), r.Native())
	}
	fmt.Println("Optical fabric")
	fmt.Printf("  link capacity       %v (8 x 25 Gb/s SiP channels)\n", ncfg.LinkCapacity)
	fmt.Printf("  box uplinks         %d per box\n", ncfg.BoxUplinks)
	fmt.Printf("  rack uplinks        %d per rack\n", ncfg.RackUplinks)
	fmt.Printf("  intra-rack capacity %v\n", fab.IntraRackCapacity())
	fmt.Printf("  inter-rack capacity %v\n", fab.InterRackCapacity())
	fmt.Println("Optical device models")
	for _, sw := range []struct {
		name  string
		ports int
	}{{"box switch", ocfg.BoxPorts}, {"rack switch", ocfg.RackPorts}, {"inter-rack switch", ocfg.InterRackPorts}} {
		cells, err := optics.PathCells(sw.ports)
		if err != nil {
			return err
		}
		lat, err := ocfg.SwitchLatency(sw.ports)
		if err != nil {
			return err
		}
		trim, err := ocfg.PathTrimmingPower(sw.ports)
		if err != nil {
			return err
		}
		fmt.Printf("  %-18s %3d ports, %2d cells/path, lat_sw %v, trim %.1f mW/path\n",
			sw.name, sw.ports, cells, lat, trim*1000)
	}
	fmt.Printf("  MRR cell powers     trim %.2f mW, switch %.2f mW, alpha %.2f\n",
		ocfg.PTrimCell*1000, ocfg.PSwCell*1000, ocfg.Alpha)
	fmt.Printf("  transceiver         %.1f pJ/bit (%.2f W per loaded link)\n",
		ocfg.TransceiverJPerBit*1e12, ocfg.TransceiverPower(ncfg.LinkCapacity))
	return nil
}
