// Command risasvc is the placement-as-a-service daemon: it owns one
// live simulated datacenter and serves placement requests over
// HTTP/JSON through a bounded, tier-aware admission queue, with live
// cluster mutation endpoints, scheduler hot-swap, graceful drain on
// SIGTERM, and crash recovery from an fsync'd write-ahead journal plus
// periodic snapshots (see internal/svc and DESIGN.md §14).
//
// Usage:
//
//	risasvc -addr :8080 -dir /var/lib/risasvc -algo RISA -racks 18 -spare-racks 2
//
// Endpoints: POST /place /fail /heal /addrack /swap /snapshot,
// GET /stats /placements /healthz.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"risa/internal/network"
	"risa/internal/svc"
	"risa/internal/topology"

	_ "risa/internal/baseline" // register NULB, NALB
	_ "risa/internal/core"     // register RISA, RISA-BF
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dir          = flag.String("dir", "risasvc-data", "data directory for journal and snapshots")
		algo         = flag.String("algo", "RISA", "genesis scheduler algorithm")
		racks        = flag.Int("racks", 18, "in-service racks at genesis")
		spares       = flag.Int("spare-racks", 2, "dark spare racks available to /addrack")
		uplinks      = flag.Int("uplinks", 16, "box uplinks per box switch")
		queueCap     = flag.Int("queue", 256, "admission queue capacity (data lane)")
		snapEvery    = flag.Int("snapshot-every", 256, "journal records between automatic snapshots")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "graceful-drain deadline on shutdown")
	)
	flag.Parse()

	tcfg := topology.DefaultConfig()
	tcfg.Racks = *racks
	ncfg := network.DefaultConfig()
	ncfg.BoxUplinks = *uplinks
	cfg := svc.Config{Topology: tcfg, Network: ncfg, Spares: *spares, Algo: *algo}

	eng, err := svc.Open(*dir, cfg, *snapEvery)
	if err != nil {
		fmt.Fprintln(os.Stderr, "risasvc:", err)
		os.Exit(1)
	}
	srv := svc.NewServer(eng, *queueCap)
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errC := make(chan error, 1)
	go func() { errC <- httpSrv.ListenAndServe() }()

	sigC, release := svc.NotifyShutdown()
	defer release()
	fmt.Fprintf(os.Stderr, "risasvc: serving on %s (algo %s, %d racks + %d spares, data %s)\n",
		*addr, eng.Algo(), eng.InService(), eng.Spares(), *dir)

	select {
	case err := <-errC:
		fmt.Fprintln(os.Stderr, "risasvc:", err)
		os.Exit(1)
	case sig := <-sigC:
		fmt.Fprintf(os.Stderr, "risasvc: %v — draining (deadline %s; signal again to force)\n", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigC // second signal: abandon the drain deadline early
		cancel()
	}()
	httpSrv.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "risasvc: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "risasvc: drained, final snapshot written")
}
