// Command risasim reproduces the tables and figures of the RISA paper
// (Kabir et al., SC-W 2023) on the simulated disaggregated datacenter.
//
// Usage:
//
//	risasim -exp all                 # every experiment
//	risasim -exp fig5                # one figure: toy1 toy2 fig5..fig12
//	risasim -exp fig9 -seed 7        # different workload seed
//	risasim -exp fig5 -uplinks 4     # fabric provisioning ablation
//	risasim -exp azure -parallel 8   # experiment grid on 8 workers
//	risasim -exp all -parallel 1     # force strictly serial runs
//	risasim -exp scale               # cluster-size sweep, 18 → 16384 racks
//	risasim -exp scale -racks 288    # sweep capped at 288 racks
//	risasim -exp fig5 -racks 36      # any experiment on a larger cluster
//	risasim -exp churn               # steady-state ladder, 100k arrivals/rung
//	risasim -exp churn -target-util 0.8   # one rung at 80% occupancy
//	risasim -exp churn -duration 50000    # time-capped rungs (smoke)
//	risasim -exp churn -agents 4          # serial vs 4 concurrent allocation agents
//	risasim -exp faults              # availability ladder, MTBF × utilization
//	risasim -exp faults -evict       # with displaced-VM recovery
//	risasim -exp faults -mtbf 10000 -mttr 1000   # one custom MTBF rung
//	risasim -exp faults -target-util 0.75 -duration 30000   # quick cell
//	risasim -exp faults -tiers 0.2,0.3,0.5       # priority-tiered arrivals
//	risasim -exp faults -tiers 0.2,0.3,0.5 -preempt  # ... with preemption
//	risasim -exp slo                 # SLO ladder: tiers + preemption × faults × utilization
//	risasim -exp slo -tiers 0.5,0.3,0.2          # custom priority mix
//	risasim -exp churn -clone        # ladder on shared warm snapshots (one warmup per rung)
//	risasim -exp faults -clone       # availability ladder on shared fault-free warm states
//	risasim -exp churn -snapshot warm.gob     # save the warm state, then finish the run
//	risasim -exp churn -restore warm.gob      # resume the saved warm state (skips warmup)
//	risasim -exp churn -cpuprofile cpu.pprof   # profile the hot path
//	risasim -exp all -memprofile mem.pprof     # heap profile on clean exit
//
// The experiment ↔ paper mapping lives in DESIGN.md §5; measured-vs-paper
// numbers are recorded in EXPERIMENTS.md.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"risa/internal/experiments"
	"risa/internal/report"
	"risa/internal/sim"
	"risa/internal/svc"
	"risa/internal/workload"
)

// options holds the parsed command line; parseArgs keeps it separate from
// main so the flag plumbing is testable.
type options struct {
	exp        string
	seed       int64
	uplinks    int
	parallel   int
	racks      int
	racksSet   bool // -racks given explicitly (an explicit 18 caps the scale ladder)
	jsonPath   string
	duration   int64
	targetUtil float64
	mtbf       int64
	mttr       int64
	evict      bool
	preempt    bool
	tiers      string
	tierMix    workload.TierMix // parsed -tiers (zero when the flag is absent)
	clone      bool
	agents     int
	snapshot   string
	restore    string
	cpuprofile string
	memprofile string
}

// parseArgs parses and validates the command line.
func parseArgs(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("risasim", flag.ContinueOnError)
	fs.StringVar(&o.exp, "exp", "all", "experiment to run: toy1, toy2, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, pool, seeds, scale, churn, faults, slo, resilience, defrag, stranding, queue, threetier, ablations, azure, all")
	fs.Int64Var(&o.seed, "seed", 1, "workload generation seed")
	fs.IntVar(&o.uplinks, "uplinks", 0, "override box uplinks per box (0 = calibrated default)")
	fs.IntVar(&o.parallel, "parallel", 0, "worker-pool width for experiment grids (0 = one per CPU, 1 = serial)")
	fs.IntVar(&o.racks, "racks", 18, "cluster size in racks; for -exp scale, the sweep's largest point")
	fs.StringVar(&o.jsonPath, "json", "", "also archive every run as a JSON report at this path")
	fs.Int64Var(&o.duration, "duration", 0, "for -exp churn/faults/slo: cap each cell's simulated time in time units (0 = churn: arrival budget only, faults/slo: 50000)")
	fs.Float64Var(&o.targetUtil, "target-util", 0, "for -exp churn/faults/slo: run one utilization rung at this binding-occupancy fraction instead of the ladder (>= 1 sustains overload, 0 = full ladder)")
	fs.Int64Var(&o.mtbf, "mtbf", 0, "for -exp faults/slo: per-box mean time between failures in time units (0 = default calm/storm MTBF ladder)")
	fs.Int64Var(&o.mttr, "mttr", experiments.DefaultFaultMTTR, "for -exp faults/slo: per-box mean time to repair in time units")
	fs.BoolVar(&o.evict, "evict", false, "for -exp faults: evict VMs from failed hardware and re-place them through the scheduler (default: VMs ride out outages in place)")
	fs.BoolVar(&o.preempt, "preempt", false, "for -exp faults: let higher-tier arrivals preempt strictly-lower-tier residents when placement fails (victims re-enter through the retry queue; pair with -tiers)")
	fs.StringVar(&o.tiers, "tiers", "", "for -exp faults/slo: priority mix as three comma-separated weights, highest tier first (e.g. 0.2,0.3,0.5; empty = faults untiered, slo default mix)")
	fs.IntVar(&o.agents, "agents", 1, "for -exp churn: also run each rung with this many concurrent allocation agents (1 = serial only)")
	fs.BoolVar(&o.clone, "clone", false, "for -exp churn/faults: share one warm state per rung across all algorithm cells instead of warming each cell separately (controlled comparison; not comparable to the fresh-warmup ladder)")
	fs.StringVar(&o.snapshot, "snapshot", "", "for -exp churn: warm one RISA cell, save its warm state to this file, then finish the run")
	fs.StringVar(&o.restore, "restore", "", "for -exp churn: resume a warm state saved by -snapshot, skipping the warmup")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile of the whole invocation to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file on clean exit")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "racks" {
			o.racksSet = true
		}
	})
	if o.racks < 1 {
		return o, fmt.Errorf("-racks must be at least 1, got %d", o.racks)
	}
	if o.parallel < 0 {
		return o, fmt.Errorf("-parallel must be non-negative, got %d", o.parallel)
	}
	if o.uplinks < 0 {
		return o, fmt.Errorf("-uplinks must be non-negative, got %d", o.uplinks)
	}
	if o.duration < 0 {
		return o, fmt.Errorf("-duration must be non-negative, got %d", o.duration)
	}
	if o.targetUtil < 0 || o.targetUtil > 4 {
		return o, fmt.Errorf("-target-util must be 0 (full ladder) or in (0, 4], got %g", o.targetUtil)
	}
	if o.mtbf < 0 {
		return o, fmt.Errorf("-mtbf must be non-negative, got %d", o.mtbf)
	}
	if o.mttr <= 0 {
		return o, fmt.Errorf("-mttr must be positive, got %d", o.mttr)
	}
	if o.agents < 1 {
		return o, fmt.Errorf("-agents must be at least 1, got %d", o.agents)
	}
	if o.agents > 1 && o.exp != "churn" {
		return o, fmt.Errorf("-agents requires -exp churn, got -exp %s", o.exp)
	}
	if o.preempt && o.exp != "faults" {
		return o, fmt.Errorf("-preempt requires -exp faults (the slo experiment always preempts), got -exp %s", o.exp)
	}
	if o.tiers != "" {
		if o.exp != "faults" && o.exp != "slo" {
			return o, fmt.Errorf("-tiers requires -exp faults or -exp slo, got -exp %s", o.exp)
		}
		mix, err := parseTiers(o.tiers)
		if err != nil {
			return o, err
		}
		o.tierMix = mix
	}
	if o.agents > 1 && o.clone {
		return o, fmt.Errorf("-agents and -clone are mutually exclusive (agent mode cannot resume snapshots)")
	}
	if o.snapshot != "" && o.restore != "" {
		return o, fmt.Errorf("-snapshot and -restore are mutually exclusive")
	}
	if (o.snapshot != "" || o.restore != "") && o.exp != "churn" {
		return o, fmt.Errorf("-snapshot/-restore require -exp churn, got -exp %s", o.exp)
	}
	return o, nil
}

// parseTiers parses the -tiers flag: exactly workload.NumTiers
// comma-separated non-negative weights, highest-priority tier first, at
// least one of them positive. Weights are relative — they need not sum
// to 1.
func parseTiers(s string) (workload.TierMix, error) {
	var mix workload.TierMix
	parts := strings.Split(s, ",")
	if len(parts) != workload.NumTiers {
		return mix, fmt.Errorf("-tiers needs exactly %d comma-separated weights, got %q", workload.NumTiers, s)
	}
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return mix, fmt.Errorf("-tiers weight %d: %w", i, err)
		}
		mix.Weights[i] = w
	}
	if err := mix.Validate(); err != nil {
		return mix, fmt.Errorf("-tiers: %w", err)
	}
	if !mix.Enabled() {
		return mix, fmt.Errorf("-tiers needs at least one positive weight, got %q", s)
	}
	return mix, nil
}

// faultsConfig turns the fault flags into the availability-ladder
// configuration: the default MTBF × utilization grid, narrowed to one
// MTBF rung by -mtbf (keeping the fault-free baseline for comparison)
// and to one utilization rung by -target-util, time-capped by -duration.
func faultsConfig(o options) experiments.FaultsConfig {
	cfg := experiments.FaultsConfig{Duration: o.duration, MTTR: o.mttr, Evict: o.evict, Clone: o.clone, Tiers: o.tierMix, Preempt: o.preempt}
	if o.mtbf > 0 {
		cfg.Rungs = []experiments.FaultRung{
			{Label: "none"},
			{Label: fmt.Sprintf("mtbf=%d", o.mtbf), MTBF: o.mtbf, MTTR: o.mttr},
		}
	}
	if o.targetUtil > 0 {
		cfg.Targets = []float64{o.targetUtil}
	}
	return cfg
}

// sloConfig turns the flags into the SLO-ladder configuration: the
// default fault × utilization grid with the default priority mix,
// narrowed to one MTBF rung by -mtbf and one utilization rung by
// -target-util, time-capped by -duration, with -tiers overriding the
// mix.
func sloConfig(o options) experiments.SLOConfig {
	cfg := experiments.SLOConfig{Duration: o.duration, MTTR: o.mttr, Tiers: o.tierMix}
	if o.mtbf > 0 {
		cfg.Rungs = []experiments.FaultRung{
			{Label: "none"},
			{Label: fmt.Sprintf("mtbf=%d", o.mtbf), MTBF: o.mtbf, MTTR: o.mttr},
		}
	}
	if o.targetUtil > 0 {
		cfg.Targets = []float64{o.targetUtil}
	}
	return cfg
}

// churnConfig turns the churn flags into the experiment configuration:
// the default 100k-arrival ladder, narrowed to one custom rung when
// -target-util is given and time-capped by -duration.
func churnConfig(o options) experiments.ChurnConfig {
	cfg := experiments.ChurnConfig{Duration: o.duration, Clone: o.clone}
	if o.agents > 1 {
		// Run the serial rung alongside the agent rung so the table shows
		// the concurrency effect per utilization level.
		cfg.Agents = []int{1, o.agents}
	}
	if o.targetUtil > 0 {
		// %.4g keeps labels clean for fractions like 0.55, where
		// targetUtil*100 is not exactly 55 in float64.
		cfg.Rungs = []experiments.ChurnRung{
			{Label: fmt.Sprintf("%.4g%%", o.targetUtil*100), Target: o.targetUtil},
		}
	}
	return cfg
}

// scaleMaxRacks returns the largest point of the -exp scale ladder: the
// -racks flag when given explicitly, the 16384-rack default otherwise.
func scaleMaxRacks(o options) int {
	if o.racksSet {
		return o.racks
	}
	return experiments.DefaultScaleMaxRacks
}

// buildSetup turns the options into the experiment setup they describe.
func buildSetup(o options) experiments.Setup {
	setup := experiments.DefaultSetup()
	setup.Seed = o.seed
	setup.Topology.Racks = o.racks
	if o.uplinks > 0 {
		setup.Network.BoxUplinks = o.uplinks
	}
	return setup
}

// profiles holds the open pprof outputs of one invocation; the zero value
// means profiling is off. stop is idempotent (sync.Once) because both the
// clean exit path and the signal handler flush profiles, in either order.
type profiles struct {
	cpu, mem *os.File
	once     sync.Once
	err      error
}

// startProfiles validates the -cpuprofile/-memprofile paths by creating
// the files up front — a bad path must fail before the experiments run,
// not after — and starts the CPU profile.
func startProfiles(o options) (*profiles, error) {
	p := &profiles{}
	var err error
	if o.cpuprofile != "" {
		if p.cpu, err = os.Create(o.cpuprofile); err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(p.cpu); err != nil {
			p.cpu.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	if o.memprofile != "" {
		if p.mem, err = os.Create(o.memprofile); err != nil {
			if p.cpu != nil {
				pprof.StopCPUProfile()
				p.cpu.Close()
			}
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
	}
	return p, nil
}

// stop finishes the CPU profile and writes the heap profile. It runs on
// clean exits and on SIGINT/SIGTERM — an interrupted profiling run keeps
// the samples gathered so far instead of losing the files — but never on
// error exits, so a failed experiment cannot leave a truncated profile
// masquerading as a complete one.
func (p *profiles) stop() error {
	p.once.Do(func() { p.err = p.flush() })
	return p.err
}

func (p *profiles) flush() error {
	if p.cpu != nil {
		pprof.StopCPUProfile()
		if err := p.cpu.Close(); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	if p.mem != nil {
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(p.mem); err != nil {
			p.mem.Close()
			return fmt.Errorf("-memprofile: %w", err)
		}
		if err := p.mem.Close(); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	return nil
}

func main() {
	opts, err := parseArgs(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/-help: usage already printed, a clean exit
		}
		fmt.Fprintf(os.Stderr, "risasim: %v\n", err)
		os.Exit(2)
	}
	experiments.SetParallelism(opts.parallel)
	setup := buildSetup(opts)

	prof, err := startProfiles(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "risasim: %v\n", err)
		os.Exit(2)
	}
	// SIGINT/SIGTERM (the daemon's signal plumbing, svc.NotifyShutdown):
	// flush the pprof outputs before exiting so an interrupted profiling
	// run keeps its samples. The -snapshot save path needs no handling —
	// it writes its file atomically at the end of the warm run, so an
	// interrupt aborts it cleanly rather than leaving a truncated state.
	sigC, release := svc.NotifyShutdown()
	defer release()
	go func() {
		sig := <-sigC
		fmt.Fprintf(os.Stderr, "risasim: %v — flushing profiles before exit\n", sig)
		if err := prof.stop(); err != nil {
			fmt.Fprintf(os.Stderr, "risasim: %v\n", err)
		}
		code := 1
		if s, ok := sig.(syscall.Signal); ok {
			code = 128 + int(s)
		}
		os.Exit(code)
	}()
	if opts.jsonPath != "" {
		archive = report.NewDocument(opts.seed)
	}
	if opts.snapshot != "" || opts.restore != "" {
		err := error(nil)
		if opts.snapshot != "" {
			err = runSnapshotSave(opts, opts.snapshot)
		} else {
			err = runSnapshotRestore(opts.restore)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "risasim: %v\n", err)
			os.Exit(1)
		}
		if err := prof.stop(); err != nil {
			fmt.Fprintf(os.Stderr, "risasim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(setup, opts.exp, scaleMaxRacks(opts), churnConfig(opts), faultsConfig(opts), sloConfig(opts)); err != nil {
		fmt.Fprintf(os.Stderr, "risasim: %v\n", err)
		os.Exit(1)
	}
	if err := prof.stop(); err != nil {
		fmt.Fprintf(os.Stderr, "risasim: %v\n", err)
		os.Exit(1)
	}
	if archive != nil {
		f, err := os.Create(opts.jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "risasim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := archive.Write(f); err != nil {
			fmt.Fprintf(os.Stderr, "risasim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("JSON report written to %s (%d runs)\n", opts.jsonPath, len(archive.Runs))
	}
}

// archive collects every simulation result of the invocation when -json
// is given.
var archive *report.Document

// record adds results to the archive if one is active.
func record(results map[string]*sim.Result) {
	if archive == nil {
		return
	}
	for _, r := range results {
		archive.Add(r)
	}
}

// run executes one experiment name against the setup; scaleMax is the
// largest point of the -exp scale ladder (≤ 0 selects the 16384-rack
// default), churn the -exp churn configuration, faultsCfg the -exp
// faults one and sloCfg the -exp slo one (zero values = default
// ladders).
func run(setup experiments.Setup, exp string, scaleMax int, churn experiments.ChurnConfig, faultsCfg experiments.FaultsConfig, sloCfg experiments.SLOConfig) error {
	needMatrix := map[string]bool{
		"fig7": true, "fig8": true, "fig9": true, "fig10": true, "fig12": true,
		"azure": true, "all": true,
	}
	var matrix *experiments.AzureMatrix
	if needMatrix[exp] {
		// The practical-workload figures run under the storage-heavy rack
		// composition (see experiments.AzureSetup), keeping the caller's
		// seed, cluster size and fabric overrides.
		azureSetup := experiments.AzureSetupFrom(setup)
		var err error
		matrix, err = azureSetup.RunAzureMatrix()
		if err != nil {
			return err
		}
		for _, perAlg := range matrix.Results {
			record(perAlg)
		}
	}

	show := func(name string) bool { return exp == name || exp == "all" || (exp == "azure" && needMatrix[name]) }

	if show("toy1") {
		out, err := experiments.RunToy1()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if show("toy2") {
		out, err := experiments.RunToy2()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if show("fig5") {
		f, err := setup.RunFig5()
		if err != nil {
			return err
		}
		record(f.Results)
		fmt.Println(f.Render())
	}
	if show("fig6") {
		f, err := setup.RunFig6()
		if err != nil {
			return err
		}
		fmt.Println(f.Render())
	}
	if show("fig7") {
		fmt.Println(matrix.RenderFig7())
	}
	if show("fig8") {
		fmt.Println(matrix.RenderFig8())
	}
	if show("fig9") {
		fmt.Println(matrix.RenderFig9())
	}
	if show("fig10") {
		fmt.Println(matrix.RenderFig10())
	}
	if show("fig11") {
		f, err := setup.RunFig11()
		if err != nil {
			return err
		}
		fmt.Println(f.Render())
	}
	if show("fig12") {
		fmt.Println(matrix.RenderFig12())
	}
	if exp == "seeds" {
		sweep, err := setup.RunSeedSweep([]int64{1, 2, 3, 4, 5})
		if err != nil {
			return err
		}
		fmt.Println(sweep.Render())
	}
	if exp == "scale" {
		if scaleMax <= 0 {
			scaleMax = experiments.DefaultScaleMaxRacks
		}
		sweep, err := setup.RunScale(experiments.ScaleLadder(scaleMax), 0)
		if err != nil {
			return err
		}
		fmt.Println(sweep.Render())
	}
	if exp == "churn" {
		c, err := setup.RunChurn(churn)
		if err != nil {
			return err
		}
		fmt.Println(c.Render())
	}
	if exp == "faults" {
		f, err := setup.RunFaults(faultsCfg)
		if err != nil {
			return err
		}
		fmt.Println(f.Render())
	}
	if exp == "slo" {
		o, err := setup.RunSLO(sloCfg)
		if err != nil {
			return err
		}
		fmt.Println(o.Render())
	}
	if exp == "threetier" || exp == "all" {
		azureSetup := experiments.AzureSetupFrom(setup)
		tt, err := azureSetup.RunThreeTier()
		if err != nil {
			return err
		}
		fmt.Println(tt.Render())
	}
	if exp == "queue" || exp == "all" {
		q, err := setup.RunQueueing()
		if err != nil {
			return err
		}
		fmt.Println(q.Render())
	}
	if exp == "stranding" || exp == "all" {
		st, err := setup.RunStranding()
		if err != nil {
			return err
		}
		fmt.Println(st.Render())
	}
	if exp == "defrag" || exp == "all" {
		azureSetup := experiments.AzureSetupFrom(setup)
		d, err := azureSetup.RunDefrag(2000)
		if err != nil {
			return err
		}
		fmt.Println(d.Render())
	}
	if exp == "resilience" || exp == "all" {
		azureSetup := experiments.AzureSetupFrom(setup)
		r, err := azureSetup.RunResilience()
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	}
	if exp == "pool" || exp == "all" {
		p, err := setup.RunPoolOccupancy()
		if err != nil {
			return err
		}
		fmt.Println(p.Render())
	}
	if exp == "ablations" || exp == "all" {
		if err := runAblations(setup); err != nil {
			return err
		}
	}
	if !needMatrix[exp] {
		switch exp {
		case "toy1", "toy2", "fig5", "fig6", "fig11", "pool", "ablations", "seeds", "scale", "churn", "faults", "slo", "resilience", "defrag", "stranding", "queue", "threetier":
		default:
			return fmt.Errorf("unknown experiment %q", exp)
		}
	}
	return nil
}

// runAblations executes the DESIGN.md §6 design-choice studies.
func runAblations(setup experiments.Setup) error {
	rr, err := setup.RunRoundRobinAblation(900)
	if err != nil {
		return err
	}
	fmt.Println(rr.Render())
	packing, err := setup.RunPackingAblation()
	if err != nil {
		return err
	}
	fmt.Println(packing.Render())
	sweep, err := setup.RunUplinkSweep([]int{2, 4, 8, 16})
	if err != nil {
		return err
	}
	fmt.Println(sweep.Render())
	alpha, err := setup.RunAlphaSweep([]float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
	if err != nil {
		return err
	}
	fmt.Println(alpha.Render())
	mix, err := setup.RunBoxMixAblation()
	if err != nil {
		return err
	}
	fmt.Println(mix.Render())
	return nil
}
