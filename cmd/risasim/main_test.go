package main

import (
	"testing"

	"risa/internal/experiments"
)

func quickSetup() experiments.Setup {
	return experiments.DefaultSetup()
}

func TestRunToyExperiments(t *testing.T) {
	for _, exp := range []string{"toy1", "toy2"} {
		if err := run(quickSetup(), exp); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(quickSetup(), "fig99"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunFig6(t *testing.T) {
	if err := run(quickSetup(), "fig6"); err != nil {
		t.Error(err)
	}
}

func TestRunFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthetic run")
	}
	if err := run(quickSetup(), "fig5"); err != nil {
		t.Error(err)
	}
}

func TestRecordWithoutArchiveIsNoop(t *testing.T) {
	archive = nil
	record(nil) // must not panic
}
