package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"testing"

	"risa/internal/experiments"
)

func quickSetup() experiments.Setup {
	return experiments.DefaultSetup()
}

func TestRunToyExperiments(t *testing.T) {
	for _, exp := range []string{"toy1", "toy2"} {
		if err := run(quickSetup(), exp, 0, experiments.ChurnConfig{}, experiments.FaultsConfig{}, experiments.SLOConfig{}); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(quickSetup(), "fig99", 0, experiments.ChurnConfig{}, experiments.FaultsConfig{}, experiments.SLOConfig{}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunFig6(t *testing.T) {
	if err := run(quickSetup(), "fig6", 0, experiments.ChurnConfig{}, experiments.FaultsConfig{}, experiments.SLOConfig{}); err != nil {
		t.Error(err)
	}
}

func TestRunFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("full synthetic run")
	}
	if err := run(quickSetup(), "fig5", 0, experiments.ChurnConfig{}, experiments.FaultsConfig{}, experiments.SLOConfig{}); err != nil {
		t.Error(err)
	}
}

func TestRecordWithoutArchiveIsNoop(t *testing.T) {
	archive = nil
	record(nil) // must not panic
}

func TestParseArgsDefaults(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.exp != "all" || o.seed != 1 || o.racks != 18 || o.parallel != 0 || o.uplinks != 0 {
		t.Errorf("unexpected defaults: %+v", o)
	}
}

func TestParseArgsFlagPlumbing(t *testing.T) {
	o, err := parseArgs([]string{"-exp", "scale", "-racks", "288", "-parallel", "4", "-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if o.exp != "scale" || o.racks != 288 || o.parallel != 4 || o.seed != 7 {
		t.Errorf("flags not plumbed: %+v", o)
	}
	setup := buildSetup(o)
	if setup.Topology.Racks != 288 {
		t.Errorf("-racks not applied to topology: %d", setup.Topology.Racks)
	}
	if setup.Seed != 7 {
		t.Errorf("-seed not applied: %d", setup.Seed)
	}
}

func TestParseArgsRejectsInvalidValues(t *testing.T) {
	for _, args := range [][]string{
		{"-racks", "0"},
		{"-racks", "-3"},
		{"-parallel", "-1"},
		{"-uplinks", "-2"},
		{"-racks", "x"},
		{"-nosuchflag"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("parseArgs(%v) should fail", args)
		}
	}
}

func TestBuildSetupAppliesUplinkOverride(t *testing.T) {
	o, err := parseArgs([]string{"-uplinks", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if got := buildSetup(o).Network.BoxUplinks; got != 4 {
		t.Errorf("-uplinks not applied: %d", got)
	}
	o, err = parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := buildSetup(o).Network.BoxUplinks; got != experiments.DefaultSetup().Network.BoxUplinks {
		t.Errorf("uplinks default not calibrated: %d", got)
	}
}

func TestScaleMaxRacksFollowsRacksFlag(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := scaleMaxRacks(o); got != experiments.DefaultScaleMaxRacks {
		t.Errorf("default scale max = %d, want %d", got, experiments.DefaultScaleMaxRacks)
	}
	for _, racks := range []string{"288", "18", "4"} {
		o, err := parseArgs([]string{"-racks", racks})
		if err != nil {
			t.Fatal(err)
		}
		// An explicit -racks always caps the ladder, even at the default
		// value: `-racks 18` means a single-point sweep at the paper size.
		if got := scaleMaxRacks(o); fmt.Sprint(got) != racks {
			t.Errorf("scale max with -racks %s = %d", racks, got)
		}
	}
}

func TestRunScaleExperimentWiring(t *testing.T) {
	// A 2-rack "sweep" keeps the wiring test fast: run must accept the
	// scale experiment and render without error.
	setup := quickSetup()
	setup.Topology.Racks = 2
	if err := run(setup, "scale", 2, experiments.ChurnConfig{}, experiments.FaultsConfig{}, experiments.SLOConfig{}); err != nil {
		t.Error(err)
	}
}

func TestParseArgsHelpIsErrHelp(t *testing.T) {
	// -h must surface flag.ErrHelp so main can exit 0 after the usage
	// text, not report a spurious error.
	if _, err := parseArgs([]string{"-h"}); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("parseArgs(-h) = %v, want flag.ErrHelp", err)
	}
}

func TestParseArgsChurnFlags(t *testing.T) {
	o, err := parseArgs([]string{"-exp", "churn", "-duration", "50000", "-target-util", "0.8"})
	if err != nil {
		t.Fatal(err)
	}
	if o.exp != "churn" || o.duration != 50000 || o.targetUtil != 0.8 {
		t.Errorf("churn flags not plumbed: %+v", o)
	}
	cfg := churnConfig(o)
	if cfg.Duration != 50000 {
		t.Errorf("-duration not applied: %d", cfg.Duration)
	}
	if len(cfg.Rungs) != 1 || cfg.Rungs[0].Target != 0.8 || cfg.Rungs[0].Label != "80%" {
		t.Errorf("-target-util not applied: %+v", cfg.Rungs)
	}

	o, err = parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg := churnConfig(o); len(cfg.Rungs) != 0 || cfg.Duration != 0 {
		t.Errorf("default churn config should select the ladder: %+v", cfg)
	}

	for _, args := range [][]string{
		{"-duration", "-1"},
		{"-target-util", "-0.5"},
		{"-target-util", "9"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("parseArgs(%v) should fail", args)
		}
	}
}

func TestParseArgsProfileFlags(t *testing.T) {
	o, err := parseArgs([]string{"-cpuprofile", "cpu.pprof", "-memprofile", "mem.pprof"})
	if err != nil {
		t.Fatal(err)
	}
	if o.cpuprofile != "cpu.pprof" || o.memprofile != "mem.pprof" {
		t.Errorf("profile flags not plumbed: %+v", o)
	}
	if o, err := parseArgs(nil); err != nil || o.cpuprofile != "" || o.memprofile != "" {
		t.Errorf("profile flags must default to off: %+v (%v)", o, err)
	}
}

func TestProfilesLifecycle(t *testing.T) {
	dir := t.TempDir()
	cpu := dir + "/cpu.pprof"
	mem := dir + "/mem.pprof"
	p, err := startProfiles(options{cpuprofile: cpu, memprofile: mem})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", path)
		}
	}
}

func TestProfilesOffIsNoop(t *testing.T) {
	p, err := startProfiles(options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesRejectsBadPaths(t *testing.T) {
	missing := t.TempDir() + "/no/such/dir/out.pprof"
	if _, err := startProfiles(options{cpuprofile: missing}); err == nil {
		t.Error("bad -cpuprofile path must fail up front")
	}
	if _, err := startProfiles(options{memprofile: missing}); err == nil {
		t.Error("bad -memprofile path must fail up front")
	}
	// A bad mem path must not leave a CPU profile running.
	good := t.TempDir() + "/cpu.pprof"
	if _, err := startProfiles(options{cpuprofile: good, memprofile: missing}); err == nil {
		t.Error("bad -memprofile path must fail even with a valid -cpuprofile")
	}
	p, err := startProfiles(options{cpuprofile: good})
	if err != nil {
		t.Fatalf("CPU profiling left running by the failed start: %v", err)
	}
	if err := p.stop(); err != nil {
		t.Fatal(err)
	}
}

func TestRunChurnExperimentWiring(t *testing.T) {
	// A short duration-capped ladder keeps the wiring test fast.
	if err := run(quickSetup(), "churn", 0, experiments.ChurnConfig{
		Arrivals: 4000,
		Duration: 30000,
		Rungs:    []experiments.ChurnRung{{Label: "50%", Target: 0.5}},
	}, experiments.FaultsConfig{}, experiments.SLOConfig{}); err != nil {
		t.Error(err)
	}
}

func TestParseArgsFaultFlags(t *testing.T) {
	o, err := parseArgs([]string{"-exp", "faults", "-mtbf", "10000", "-mttr", "500", "-evict", "-target-util", "0.75", "-duration", "30000"})
	if err != nil {
		t.Fatal(err)
	}
	if o.exp != "faults" || o.mtbf != 10000 || o.mttr != 500 || !o.evict {
		t.Errorf("fault flags not plumbed: %+v", o)
	}
	cfg := faultsConfig(o)
	if cfg.Duration != 30000 || cfg.MTTR != 500 || !cfg.Evict {
		t.Errorf("fault config not built: %+v", cfg)
	}
	// -mtbf narrows the ladder to the fault-free baseline plus one rung.
	if len(cfg.Rungs) != 2 || cfg.Rungs[0].MTBF != 0 || cfg.Rungs[1].MTBF != 10000 || cfg.Rungs[1].MTTR != 500 {
		t.Errorf("-mtbf not applied: %+v", cfg.Rungs)
	}
	if len(cfg.Targets) != 1 || cfg.Targets[0] != 0.75 {
		t.Errorf("-target-util not applied: %+v", cfg.Targets)
	}

	o, err = parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.mttr != experiments.DefaultFaultMTTR || o.evict {
		t.Errorf("fault flag defaults wrong: %+v", o)
	}
	if cfg := faultsConfig(o); len(cfg.Rungs) != 0 || len(cfg.Targets) != 0 {
		t.Errorf("default fault config should select the ladders: %+v", cfg)
	}

	for _, args := range [][]string{
		{"-mtbf", "-5"},
		{"-mttr", "0"},
		{"-mttr", "-2"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("parseArgs(%v) should fail", args)
		}
	}
}

func TestRunFaultsExperimentWiring(t *testing.T) {
	// One short cell: a single MTBF rung at one target, time-capped.
	if err := run(quickSetup(), "faults", 0, experiments.ChurnConfig{}, experiments.FaultsConfig{
		Arrivals: 4000,
		Duration: 20000,
		Targets:  []float64{0.5},
		Rungs:    []experiments.FaultRung{{Label: "smoke", MTBF: 4000, MTTR: 500}},
		Evict:    true,
	}, experiments.SLOConfig{}); err != nil {
		t.Error(err)
	}
}
