// Snapshot/restore: crash-recovery for long churn runs. -snapshot warms
// one RISA churn cell to the warmup boundary, saves the warm state to a
// file, then finishes the run; -restore skips the warmup entirely by
// resuming the saved state. Both print the same deterministic metrics
// table (wall-clock lines are prefixed "wall" so tooling can strip
// them), which is how CI checks the two paths agree.
package main

import (
	"encoding/gob"
	"fmt"
	"os"
	"strings"

	"risa/internal/experiments"
	"risa/internal/sim"
	"risa/internal/units"
)

// snapshotFile is the on-disk format of -snapshot: the warm snapshot
// plus every parameter needed to rebuild the identical cell on restore.
// Restore trusts the file, not the command line — a snapshot resumed
// under different topology or stream parameters would silently diverge.
type snapshotFile struct {
	Target   float64
	Arrivals int
	Duration int64
	Warmup   int64
	Window   int64
	Seed     int64
	Racks    int
	Uplinks  int
	Snap     *sim.Snapshot
}

// snapshotCell describes the one churn cell the -snapshot/-restore pair
// runs: RISA at the -target-util rung (default 0.75), time-capped by
// -duration (default 100 000 tu).
func snapshotCell(o options) snapshotFile {
	f := snapshotFile{
		Target:   o.targetUtil,
		Arrivals: 100000,
		Duration: o.duration,
		Seed:     o.seed,
		Racks:    o.racks,
		Uplinks:  o.uplinks,
	}
	if f.Target == 0 {
		f.Target = 0.75
	}
	if f.Duration == 0 {
		f.Duration = 100000
	}
	f.Warmup, f.Window = experiments.ChurnPhases(f.Duration)
	return f
}

// setupFor rebuilds the experiment setup a snapshot file describes.
func (f snapshotFile) setupFor() experiments.Setup {
	setup := experiments.DefaultSetup()
	setup.Seed = f.Seed
	setup.Topology.Racks = f.Racks
	if f.Uplinks > 0 {
		setup.Network.BoxUplinks = f.Uplinks
	}
	return setup
}

// rung returns the file's utilization rung in -exp churn label style.
func (f snapshotFile) rung() experiments.ChurnRung {
	return experiments.ChurnRung{Label: fmt.Sprintf("%.4g%%", f.Target*100), Target: f.Target}
}

// streamCfg returns the cell's full-run stream configuration.
func (f snapshotFile) streamCfg() sim.StreamConfig {
	return sim.StreamConfig{
		Workload: sim.StreamWorkload{MaxArrivals: f.Arrivals, Duration: f.Duration},
		Windows:  sim.StreamWindows{Warmup: f.Warmup, Window: f.Window},
	}
}

// runSnapshotSave implements -snapshot: warm the cell under RISA to the
// warmup boundary, write the snapshot to path, then resume it in-process
// to the end of the budget and print the metrics table.
func runSnapshotSave(o options, path string) error {
	f := snapshotCell(o)
	warmCfg := f.streamCfg()
	warmCfg.Snapshot.At = f.Warmup
	setup := f.setupFor()
	snap, err := setup.WarmChurnCell("RISA", f.rung(), warmCfg)
	if err != nil {
		return fmt.Errorf("-snapshot: %w", err)
	}
	f.Snap = snap
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-snapshot: %w", err)
	}
	if err := gob.NewEncoder(out).Encode(f); err != nil {
		out.Close()
		return fmt.Errorf("-snapshot %s: %w", path, err)
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("-snapshot %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "warm state at t=%d written to %s\n", snap.T, path)
	res, err := setup.ResumeChurnCell("RISA", f.rung(), snap, f.streamCfg())
	if err != nil {
		return fmt.Errorf("-snapshot: %w", err)
	}
	fmt.Print(renderSnapshotCell(f, res))
	return nil
}

// runSnapshotRestore implements -restore: load the snapshot file, resume
// the run it describes, and print the same table -snapshot printed.
func runSnapshotRestore(path string) error {
	in, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("-restore: %w", err)
	}
	defer in.Close()
	var f snapshotFile
	if err := gob.NewDecoder(in).Decode(&f); err != nil {
		return fmt.Errorf("-restore %s: %w", path, err)
	}
	if f.Snap == nil {
		return fmt.Errorf("-restore %s: no snapshot in file", path)
	}
	setup := f.setupFor()
	res, err := setup.ResumeChurnCell("RISA", f.rung(), f.Snap, f.streamCfg())
	if err != nil {
		return fmt.Errorf("-restore: %w", err)
	}
	fmt.Print(renderSnapshotCell(f, res))
	return nil
}

// renderSnapshotCell formats one resumed cell. Every line is
// deterministic except those prefixed "wall", which carry the wall-clock
// observations (scheduling latency percentiles and elapsed time) — strip
// them (grep -v '^wall') to compare a -snapshot run against a -restore
// of its own file.
func renderSnapshotCell(f snapshotFile, r *sim.SteadyState) string {
	var b strings.Builder
	fmt.Fprintf(&b, "churn cell RISA @ %s (seed %d, %d racks), resumed from warm state at t=%d\n",
		f.rung().Label, f.Seed, f.Racks, f.Warmup)
	fmt.Fprintf(&b, "arrivals %d  accepted %d  dropped %d  resident %d  end t=%d\n",
		r.Arrivals, r.Accepted, r.Dropped, r.Resident, r.End)
	fmt.Fprintf(&b, "avg util  CPU %.2f%%  RAM %.2f%%  STO %.2f%%  rate-mult %.4f\n",
		r.AvgUtil[units.CPU], r.AvgUtil[units.RAM], r.AvgUtil[units.Storage], r.RateMultiplier)
	for _, w := range r.Windows {
		fmt.Fprintf(&b, "window [%6d,%6d)  arrivals %5d  accepted %5d  acc %6.2f%%  util %.2f/%.2f/%.2f\n",
			w.Start, w.End, w.Arrivals, w.Accepted, w.AcceptancePct(),
			w.AvgUtil[units.CPU], w.AvgUtil[units.RAM], w.AvgUtil[units.Storage])
	}
	fmt.Fprintf(&b, "wall sched p50 %v  p95 %v  p99 %v  (%d samples)\n",
		r.LatencyP50, r.LatencyP95, r.LatencyP99, r.LatencySamples)
	fmt.Fprintf(&b, "wall elapsed %v  scheduling %v\n", r.WallTime, r.SchedulingTime)
	return b.String()
}
